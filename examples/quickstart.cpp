//===- examples/quickstart.cpp - Five-minute tour of TaskCheck ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 1 program, end to end:
//
//   Task T1: X = 10; spawn T2; Y = Y + 1; X = Y; spawn T3
//   Task T2: a = X; a = a + 1; X = a
//   Task T3: X = Y; Y = Y + 1
//
// The run you observe executes each task's accesses back to back — no
// interleaving ever happens — yet the checker reports that T2's read-write
// of X can be torn by T3's parallel write in *another* schedule for this
// same input. That is the paper's core point: detection from one trace,
// without interleaving exploration.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "instrument/ToolContext.h"

using namespace avc;

int main() {
  // 1. Pick a tool. ToolKind::Atomicity is the paper's checker.
  ToolContext Tool(ToolKind::Atomicity);

  // 2. Wrap the shared locations you expect tasks to access atomically in
  //    Tracked<T> — the stand-in for the paper's type-qualifier
  //    annotations. Unwrapped data is not checked.
  Tracked<int> X;
  Tracked<int> Y;

  // 3. Run the task-parallel program under the tool.
  Tool.run([&] {
    X = 10; // T1 / step S11

    spawn([&] {      // T2
      int A = X;     //   a = X
      A = A + 1;     //   a = a + 1   (local, untracked)
      X = A;         //   X = a
    });

    Y = Y + 1; // T1 / step S12 (accesses Y only; serial with T3 below)

    spawn([&] {    // T3
      X = Y.load(); //   X = Y (the parallel write to X)
      Y = Y + 1;
    });

    avc::sync(); // wait for T2 and T3 (POSIX also has a ::sync, hence avc::)
  });

  // 4. Inspect the findings.
  std::printf("quickstart: the observed schedule was serial, and yet...\n");
  Tool.printReport();

  CheckerStats Stats = Tool.atomicityChecker()->stats();
  std::printf("\nchecker statistics: %llu locations, %llu DPST nodes, "
              "%llu LCA queries (%llu served by the cache)\n",
              static_cast<unsigned long long>(Stats.NumLocations),
              static_cast<unsigned long long>(Stats.NumDpstNodes),
              static_cast<unsigned long long>(Stats.Lca.NumQueries),
              static_cast<unsigned long long>(Stats.Lca.NumCacheHits));
  return Tool.numViolations() > 0 ? 0 : 1; // the bug must be found
}
