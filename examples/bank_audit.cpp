//===- examples/bank_audit.cpp - Data-race-free atomicity bugs ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
//
// A bank transfers money between accounts while an auditor snapshots the
// books. Every access is protected by a lock, so the program has **no data
// races** — and still loses money: the transfer checks the balance in one
// critical section and withdraws in another (check-then-act), and the
// auditor reads the two accounts in separate critical sections (an
// inconsistent multi-variable snapshot).
//
// This is Section 3.3 of the paper in running code: lock versioning makes
// the checker see "two different critical sections" even though both use
// the same lock, and the multi-variable atomic group extends the
// single-location analysis to the (accountA, accountB) pair.
//
// Build & run:  ./build/examples/bank_audit [--profile=trace.json]
// (--profile records the buggy run's observability session as a
// Perfetto-loadable trace; CI validates it with tools/validate_trace.py.)
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <string>

#include "instrument/ToolContext.h"
#include "runtime/Mutex.h"
#include "support/ArgParse.h"

using namespace avc;

namespace {

struct Bank {
  Tracked<long> AccountA{1000};
  Tracked<long> AccountB{1000};
  Mutex Ledger;
};

/// Buggy transfer: check and act in *separate* critical sections.
void transferBuggy(Bank &Bank, long Amount) {
  bool HasFunds;
  {
    MutexGuard Guard(Bank.Ledger);
    HasFunds = Bank.AccountA.load() >= Amount; // check...
  }
  if (!HasFunds)
    return;
  {
    MutexGuard Guard(Bank.Ledger); // ...act in a NEW critical section:
    Bank.AccountA -= Amount;       // the balance may have changed!
    Bank.AccountB += Amount;
  }
}

/// Fixed transfer: one critical section spans check and act.
void transferFixed(Bank &Bank, long Amount) {
  MutexGuard Guard(Bank.Ledger);
  if (Bank.AccountA.load() < Amount)
    return;
  Bank.AccountA -= Amount;
  Bank.AccountB += Amount;
}

size_t auditRun(bool Buggy, const std::string &ProfilePath = "") {
  ToolContext::Options Opts;
  Opts.Tool = ToolKind::Atomicity;
  Opts.Checker.ProfilePath = ProfilePath;
  ToolContext Tool(Opts);
  Bank Bank;
  // The two balances must be consistent *together*: declare the group so
  // the checker shares one metadata instance across both locations, and
  // name it so reports read like diagnostics, not hexdumps.
  Tool.atomicGroup<long>({&Bank.AccountA, &Bank.AccountB});
  Tool.nameLocation(Bank.AccountA, "ledger{accountA,accountB}");

  Tool.run([&] {
    for (int I = 0; I < 4; ++I)
      spawn([&Bank, Buggy] {
        if (Buggy)
          transferBuggy(Bank, 100);
        else
          transferFixed(Bank, 100);
      });
    avc::sync();
  });

  std::printf("  %s transfers: ", Buggy ? "buggy" : "fixed");
  Tool.printReport();
  return Tool.numViolations();
}

} // namespace

int main(int argc, char **argv) {
  std::string ProfilePath;
  ArgParser Parser;
  Parser.stringOption("profile", ProfilePath);
  if (!Parser.parse(argc, argv))
    return 2;
  if (!ProfilePath.empty() && !ensureWritableFile(ProfilePath)) {
    std::fprintf(stderr, "error: --profile path '%s' is not writable\n",
                 ProfilePath.c_str());
    return 2;
  }

  std::printf("bank_audit: check-then-act under a lock is race-free and "
              "still broken\n\n");
  // Only the buggy run is profiled: sessions are one-at-a-time and the
  // interesting trace is the one with violations in it.
  size_t BuggyFindings = auditRun(/*Buggy=*/true, ProfilePath);
  size_t FixedFindings = auditRun(/*Buggy=*/false);

  std::printf("\nburied lede: the buggy variant produced %zu report(s), the "
              "fixed one %zu — with no data race anywhere.\n",
              BuggyFindings, FixedFindings);
  return (BuggyFindings > 0 && FixedFindings == 0) ? 0 : 1;
}
