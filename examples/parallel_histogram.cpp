//===- examples/parallel_histogram.cpp - Step-granularity atomicity -------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
//
// A parallel histogram over tracked bins, three ways:
//
//   1. lock per increment   — data-race free, but one step touches a bin in
//                             many critical sections: a parallel step can
//                             interleave between them (flagged);
//   2. lock per chunk       — each step's accesses to the bins share one
//                             critical section: atomic per step (clean);
//   3. privatize + reduce   — per-step scratch, bins written only at the
//                             join: no sharing at all (clean and fastest).
//
// Variant 1 is subtle: its *final counts are correct* (each increment is
// individually atomic), so testing never catches it — but if any step ever
// assumes two of its own bin accesses see an unchanged bin, that
// assumption is false. The checker reports exactly this step-granularity
// exposure, the same property Velodrome checks for threads.
//
// Build & run:  ./build/examples/parallel_histogram
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <vector>

#include "instrument/ToolContext.h"
#include "runtime/Mutex.h"
#include "runtime/Parallel.h"

using namespace avc;

namespace {

constexpr size_t NumBins = 16;
constexpr size_t NumSamples = 4096;

size_t binOf(size_t Sample) { return (Sample * 2654435761u) % NumBins; }

size_t runVariant(int Variant, const char *Label) {
  ToolContext Tool(ToolKind::Atomicity);
  TrackedArray<long> Bins(NumBins);
  Mutex BinLock;

  Tool.run([&] {
    parallelFor<size_t>(0, NumSamples, 256, [&](size_t Lo, size_t Hi) {
      switch (Variant) {
      case 1: // lock per increment: many critical sections per step
        for (size_t I = Lo; I < Hi; ++I) {
          MutexGuard Guard(BinLock);
          Bins[binOf(I)] += 1;
        }
        break;
      case 2: // lock per chunk: one critical section per step
      {
        MutexGuard Guard(BinLock);
        for (size_t I = Lo; I < Hi; ++I)
          Bins[binOf(I)] += 1;
        break;
      }
      case 3: // privatize, then publish under one critical section
      {
        long Local[NumBins] = {0};
        for (size_t I = Lo; I < Hi; ++I)
          ++Local[binOf(I)];
        MutexGuard Guard(BinLock);
        for (size_t B = 0; B < NumBins; ++B)
          if (Local[B] != 0)
            Bins[B] += Local[B];
        break;
      }
      }
    });
  });

  long Total = 0;
  for (size_t B = 0; B < NumBins; ++B)
    Total += Bins[B].raw();
  std::printf("  variant %d (%-18s): total %ld (correct), %zu atomicity "
              "report(s)\n",
              Variant, Label, Total, Tool.numViolations());
  return Tool.numViolations();
}

} // namespace

int main() {
  std::printf("parallel_histogram: all three variants compute the same "
              "correct counts...\n");
  size_t V1 = runVariant(1, "lock/increment");
  size_t V2 = runVariant(2, "lock/chunk");
  size_t V3 = runVariant(3, "privatize+reduce");
  std::printf("\n...but only variants 2 and 3 give each step an atomic view "
              "of the bins.\n");
  return (V1 > 0 && V2 == 0 && V3 == 0) ? 0 : 1;
}
