//===- examples/trace_explorer.cpp - Offline trace analysis ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
//
// The checkers are plain ExecutionObservers, so they work offline: record
// or synthesize a trace once, replay it into any tool. This example drives
// the paper's trace-generator experiment (Section 4) interactively:
//
//   trace_explorer                       # analyze a random program
//   trace_explorer --seed=7 --tasks=12   # pick the program
//   trace_explorer --dump                # also print the trace and DPST
//   trace_explorer --file=trace.txt      # analyze a recorded trace file
//
// For the generated program, the example replays (a) the serial depth-first
// schedule and (b) a randomized schedule into the atomicity checker and
// Velodrome, showing that the structural checker's verdict is schedule
// independent while the trace-bound baseline's is not.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "checker/AtomicityChecker.h"
#include "checker/Velodrome.h"
#include "dpst/DpstDot.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceIO.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

struct ReplayResult {
  std::set<MemAddr> Violating;
  size_t VelodromeCycles;
  CheckerStats Stats;
  std::string Dot;
};

ReplayResult analyze(const Trace &Events, bool WantDot) {
  AtomicityChecker Checker;
  VelodromeChecker Velodrome;
  replayTrace(Events, std::vector<ExecutionObserver *>{&Checker, &Velodrome});

  ReplayResult Result;
  for (const Violation &V : Checker.violations().snapshot())
    Result.Violating.insert(V.Addr);
  Result.VelodromeCycles = Velodrome.numViolations();
  Result.Stats = Checker.stats();
  if (WantDot)
    Result.Dot = dpstToDot(Checker.dpst());
  return Result;
}

void printResult(const char *Label, const ReplayResult &Result) {
  std::printf("%-22s %zu violating location(s) [",
              Label, Result.Violating.size());
  for (MemAddr Addr : Result.Violating)
    std::printf(" 0x%llx", static_cast<unsigned long long>(Addr));
  std::printf(" ]  velodrome cycles: %zu\n", Result.VelodromeCycles);
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Seed = 1;
  uint32_t Tasks = 10;
  bool Dump = false;
  const char *File = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::sscanf(argv[I], "--seed=%llu",
                    reinterpret_cast<unsigned long long *>(&Seed)) == 1)
      continue;
    if (std::sscanf(argv[I], "--tasks=%u", &Tasks) == 1)
      continue;
    if (std::strncmp(argv[I], "--file=", 7) == 0) {
      File = argv[I] + 7;
      continue;
    }
    if (std::strcmp(argv[I], "--dump") == 0)
      Dump = true;
  }

  if (File) {
    std::ifstream Input(File);
    if (!Input) {
      std::fprintf(stderr, "error: cannot open %s\n", File);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << Input.rdbuf();
    size_t ErrorLine = 0;
    std::optional<Trace> Events = traceFromText(Buffer.str(), &ErrorLine);
    if (!Events) {
      std::fprintf(stderr, "error: %s:%zu: malformed trace line\n", File,
                   ErrorLine);
      return 1;
    }
    ReplayResult Result = analyze(*Events, Dump);
    printResult("recorded trace:", Result);
    if (Dump)
      std::printf("\n%s\n", Result.Dot.c_str());
    return 0;
  }

  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = Tasks;
  Opts.NumLocations = 3;
  Opts.NumLocks = 2;
  Opts.LockedFraction = 0.3;
  GenProgram Program = generateProgram(Opts);
  std::printf("generated program: seed=%llu, %zu tasks, %u locations\n\n",
              static_cast<unsigned long long>(Seed), Program.Tasks.size(),
              Program.NumLocations);

  Trace Serial = linearizeSerial(Program);
  Trace Random = linearizeRandom(Program, Seed * 31 + 1);

  ReplayResult SerialResult = analyze(Serial, Dump);
  ReplayResult RandomResult = analyze(Random, /*WantDot=*/false);
  printResult("serial schedule:", SerialResult);
  printResult("random schedule:", RandomResult);

  if (SerialResult.Violating == RandomResult.Violating)
    std::printf("\nthe structural checker's verdict is schedule independent"
                " (Velodrome's usually is not).\n");

  if (Dump) {
    std::printf("\n--- serial trace ---\n%s", traceToText(Serial).c_str());
    std::printf("\n--- DPST (graphviz) ---\n%s", SerialResult.Dot.c_str());
  }
  return 0;
}
