//===- bench/table1_characteristics.cpp - Reproduces Table 1 --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 1: per benchmark, the number of unique dynamic memory
/// locations accessed, the number of nodes in the DPST, the number of LCA
/// queries, and the percentage of unique LCA queries. The paper's published
/// values (full-size inputs on their testbed) print alongside for shape
/// comparison; our inputs are synthetic and smaller, so absolute counts are
/// expected to be lower while the relative profile (which benchmarks are
/// location-heavy, query-heavy, or query-free) must match.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

namespace {

struct PaperRow {
  const char *Locations;
  const char *Nodes;
  const char *Lcas;
  const char *PercentUnique;
};

// Table 1 of the paper, in benchmark order.
const PaperRow PaperTable1[13] = {
    {"10M", "1,352", "0", "-NA-"},      // blackscholes
    {"5,101", "915,537", "11,567", "56.32"}, // bodytrack
    {"4.58M", "530,952", "234,781", "49.87"}, // streamcluster
    {"26.76M", "144M", "9.87M", "64.41"},    // swaptions
    {"19.73M", "759,830", "7.41M", "61.35"}, // fluidanimate
    {"6.28M", "91.17M", "4.31M", "62.11"},   // convexhull
    {"9.12M", "4.87M", "8.19M", "65.76"},    // delrefine
    {"20M", "4.14M", "97,437", "61.38"},     // deltriang
    {"638,282", "198,379", "39,836", "54.55"}, // karatsuba
    {"40M", "220,788", "18.29M", "83.86"},   // kmeans
    {"1.13M", "18.69M", "539,031", "53.13"}, // nearestneigh
    {"3.89M", "6.28M", "61.48M", "91.13"},   // raycast
    {"26,984", "2,443", "8,165", "56.67"},   // sort
};

} // namespace

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);

  std::printf("Table 1: benchmark characteristics (ours at --scale=%.2f | "
              "paper at full size)\n",
              Config.Scale);
  std::printf("%-14s %22s %22s %22s %18s\n", "benchmark",
              "locations(ours|paper)", "dpst-nodes(ours|paper)",
              "lca-queries(ours|paper)", "%unique(ours|paper)");

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  for (size_t I = 0; I < Count; ++I) {
    ToolContext::Options Opts;
    Opts.Tool = ToolKind::Atomicity;
    Opts.Checker.NumThreads = Config.Threads;
    Opts.Checker.TrackUniquePairs = true;
    ToolContext Tool(Opts);
    Tool.run([&] { Table[I].Run(Config.Scale); });
    CheckerStats Stats = Tool.atomicityChecker()->stats();

    char Unique[16];
    if (Stats.Lca.NumQueries == 0)
      std::snprintf(Unique, sizeof(Unique), "-NA-");
    else
      std::snprintf(Unique, sizeof(Unique), "%.2f",
                    Stats.Lca.percentUnique());
    std::printf("%-14s %12s | %-8s %12s | %-8s %12s | %-8s %8s | %-6s\n",
                Table[I].Name,
                humanCount(double(Stats.NumLocations)).c_str(),
                PaperTable1[I].Locations,
                humanCount(double(Stats.NumDpstNodes)).c_str(),
                PaperTable1[I].Nodes,
                humanCount(double(Stats.Lca.NumQueries)).c_str(),
                PaperTable1[I].Lcas, Unique, PaperTable1[I].PercentUnique);
    if (Tool.numViolations() != 0)
      std::printf("  WARNING: %zu unexpected violations in %s\n",
                  Tool.numViolations(), Table[I].Name);
  }
  std::printf("\nShape checks: blackscholes performs zero LCA queries; "
              "kmeans and raycast are query-heavy with the highest unique "
              "fractions.\n");
  return 0;
}
