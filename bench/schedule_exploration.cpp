//===- bench/schedule_exploration.cpp - Velodrome + explorer cost ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Quantifies the paper's Section 5 argument: a trace-bound checker like
/// Velodrome "has to be combined with an interleaving explorer to detect
/// atomicity violations possible in other schedules". For each generated
/// buggy program, this harness replays randomized schedules into Velodrome
/// until it reports a violation, and charges the DPST-based checker exactly
/// one (serial!) trace. The output is the distribution of schedules an
/// explorer needs — the multiplier on Velodrome's per-run cost that a fair
/// end-to-end comparison with Figure 13 would include.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>
#include <vector>

#include "checker/AtomicityChecker.h"
#include "checker/Velodrome.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

bool velodromeFinds(const Trace &Events) {
  VelodromeChecker Checker;
  replayTrace(Events, Checker);
  return Checker.numViolations() > 0;
}

bool structuralFinds(const Trace &Events) {
  AtomicityChecker Checker;
  replayTrace(Events, Checker);
  return !Checker.violations().empty();
}

/// A "needle" program: one task performs a back-to-back read-write of the
/// target location (the narrowest vulnerable window) buried in \p Padding
/// private operations on each side, and one parallel task performs the
/// single interleaving write, likewise padded. A random scheduler must
/// land the write inside the two-instruction window for Velodrome to see
/// anything; the expected number of schedules grows with the padding.
GenProgram needleProgram(unsigned Padding) {
  GenProgram Program;
  Program.NumLocations = 3;
  Program.NumLocks = 0;
  Program.Tasks.resize(3);

  GenTask &Root = Program.Tasks[0];
  Root.Ops.push_back({GenOp::Kind::Spawn, 1});
  Root.Ops.push_back({GenOp::Kind::Spawn, 2});

  // The victim buries its two-instruction vulnerable window inside private
  // work, so the window is a 1-in-(2*Padding+1) slice of its schedule.
  GenTask &Victim = Program.Tasks[1];
  for (unsigned P = 0; P < Padding; ++P)
    Victim.Ops.push_back({GenOp::Kind::Read, 1});
  Victim.Ops.push_back({GenOp::Kind::Read, 0});  // the vulnerable pair:
  Victim.Ops.push_back({GenOp::Kind::Write, 0}); // adjacent read-write
  for (unsigned P = 0; P < Padding; ++P)
    Victim.Ops.push_back({GenOp::Kind::Read, 1});

  // The writer's single interleaving write hides in private work too.
  GenTask &Writer = Program.Tasks[2];
  for (unsigned P = 0; P < Padding; ++P)
    Writer.Ops.push_back({GenOp::Kind::Read, 2});
  Writer.Ops.push_back({GenOp::Kind::Write, 0}); // must land in the window
  for (unsigned P = 0; P < Padding; ++P)
    Writer.Ops.push_back({GenOp::Kind::Read, 2});

  return Program;
}

void runNeedleSweep(unsigned MaxSchedules) {
  std::printf("\nNeedle programs: one two-instruction vulnerable window, "
              "one interleaving write, P ops of padding around it\n");
  std::printf("  %-8s %-12s %-10s %-10s %-14s\n", "padding", "mean", "p50",
              "p90", "not found");
  for (unsigned Padding : {0u, 4u, 16u, 64u, 256u}) {
    GenProgram Program = needleProgram(Padding);
    // Sanity: the structural checker needs one serial trace.
    if (!structuralFinds(linearizeSerial(Program))) {
      std::printf("  needle program unexpectedly clean (bug)\n");
      return;
    }
    std::vector<unsigned> Needed;
    unsigned Unfound = 0;
    for (uint64_t Trial = 0; Trial < 100; ++Trial) {
      unsigned Found = 0;
      for (unsigned S = 1; S <= MaxSchedules; ++S)
        if (velodromeFinds(
                linearizeRandom(Program, Trial * 7919 + S * 104729))) {
          Found = S;
          break;
        }
      if (Found == 0)
        ++Unfound;
      else
        Needed.push_back(Found);
    }
    std::sort(Needed.begin(), Needed.end());
    double Mean = 0;
    for (unsigned N : Needed)
      Mean += N;
    if (!Needed.empty())
      Mean /= static_cast<double>(Needed.size());
    auto Pct = [&](double P) -> unsigned {
      return Needed.empty()
                 ? 0
                 : Needed[static_cast<size_t>(P * (Needed.size() - 1))];
    };
    std::printf("  %-8u %-12.1f %-10u %-10u %u/100\n", Padding, Mean,
                Pct(0.5), Pct(0.9), Unfound);
  }
  std::printf("  (the structural checker finds each needle from 1 serial "
              "trace at every padding level)\n");
}

} // namespace

int main(int argc, char **argv) {
  unsigned NumPrograms = 300;
  unsigned MaxSchedules = 64;
  for (int I = 1; I < argc; ++I) {
    if (std::sscanf(argv[I], "--programs=%u", &NumPrograms) == 1)
      continue;
    if (std::sscanf(argv[I], "--max-schedules=%u", &MaxSchedules) == 1)
      continue;
  }

  std::vector<unsigned> SchedulesNeeded;
  unsigned Unfound = 0, Considered = 0, StructuralMissed = 0;

  for (uint64_t Seed = 1; Considered < NumPrograms; ++Seed) {
    TraceGenOptions Opts;
    Opts.Seed = Seed;
    Opts.NumTasks = 4 + Seed % 10;
    Opts.NumLocations = 1 + Seed % 3;
    Opts.NumLocks = Seed % 3;
    Opts.MaxOpsPerTask = 4 + Seed % 6;
    Opts.LockedFraction = (Seed % 4) * 0.2;
    GenProgram Program = generateProgram(Opts);
    Trace Serial = linearizeSerial(Program);

    // Consider only programs our checker flags from the single serial
    // trace (the detection_suite harness validates these against the
    // unbounded-history oracle).
    if (!structuralFinds(Serial))
      continue;
    ++Considered;

    // The explorer: replay random schedules until Velodrome notices.
    unsigned Needed = 0;
    for (unsigned S = 1; S <= MaxSchedules; ++S) {
      if (velodromeFinds(linearizeRandom(Program, Seed * 1009 + S))) {
        Needed = S;
        break;
      }
    }
    if (Needed == 0)
      ++Unfound;
    else
      SchedulesNeeded.push_back(Needed);
    if (structuralFinds(Serial) == false)
      ++StructuralMissed; // defensive; cannot happen by construction
  }

  std::sort(SchedulesNeeded.begin(), SchedulesNeeded.end());
  auto Percentile = [&](double P) -> unsigned {
    if (SchedulesNeeded.empty())
      return 0;
    size_t Index = static_cast<size_t>(P * (SchedulesNeeded.size() - 1));
    return SchedulesNeeded[Index];
  };
  double MeanNeeded = 0;
  for (unsigned N : SchedulesNeeded)
    MeanNeeded += N;
  if (!SchedulesNeeded.empty())
    MeanNeeded /= static_cast<double>(SchedulesNeeded.size());

  std::printf("Schedule-exploration cost of trace-bound checking "
              "(%u buggy programs, explorer budget %u schedules)\n\n",
              NumPrograms, MaxSchedules);
  std::printf("  DPST-based checker: 1 trace per program, any schedule "
              "(including serial), %u/%u found\n",
              NumPrograms - StructuralMissed, NumPrograms);
  std::printf("  Velodrome + random explorer:\n");
  std::printf("    schedules needed  mean %.1f   p50 %u   p90 %u   p99 %u\n",
              MeanNeeded, Percentile(0.50), Percentile(0.90),
              Percentile(0.99));
  std::printf("    not found within the budget: %u/%u programs\n", Unfound,
              NumPrograms);
  std::printf("\nReading: multiply Velodrome's Figure 13 overhead by the "
              "schedules-needed distribution for an end-to-end comparison; "
              "the structural checker pays its (similar) overhead once.\n");

  runNeedleSweep(MaxSchedules * 4);
  return 0;
}
