//===- bench/micro_dpst.cpp - DPST microbenchmarks ------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks for the DPST primitives underlying
/// Figures 13/14: node appends, LCA-based parallel queries at controlled
/// depths for both layouts, cache hit/miss costs, and tree-order compares.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "BenchCommon.h"
#include "dpst/Dpst.h"
#include "dpst/LcaCache.h"
#include "dpst/ParallelismOracle.h"
#include "support/Random.h"

using namespace avc;

namespace {

DpstLayout layoutFor(int64_t Arg) {
  return Arg == 0 ? DpstLayout::Array : DpstLayout::Linked;
}

void BM_DpstAppend(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Dpst> Tree = createDpst(layoutFor(State.range(0)));
    NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
    State.ResumeTiming();
    for (int I = 0; I < 4096; ++I)
      benchmark::DoNotOptimize(
          Tree->addNode(Root, DpstNodeKind::Step, 0));
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_DpstAppend)->Arg(0)->Arg(1)->ArgNames({"layout"});

/// Builds a comb of the requested depth: two step leaves whose LCA walk
/// spans `depth` levels.
struct DeepPair {
  std::unique_ptr<Dpst> Tree;
  NodeId Left, Right;
};

DeepPair buildDeepPair(DpstLayout Layout, int Depth) {
  DeepPair Pair;
  Pair.Tree = createDpst(Layout);
  NodeId Spine = Pair.Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId Async = Pair.Tree->addNode(Spine, DpstNodeKind::Async, 1);
  Pair.Left = Pair.Tree->addNode(Async, DpstNodeKind::Step, 1);
  for (int I = 0; I < Depth; ++I)
    Spine = Pair.Tree->addNode(Spine, DpstNodeKind::Finish, 0);
  Pair.Right = Pair.Tree->addNode(Spine, DpstNodeKind::Step, 0);
  return Pair;
}

void BM_LcaParallelQuery(benchmark::State &State) {
  DeepPair Pair = buildDeepPair(layoutFor(State.range(0)),
                                static_cast<int>(State.range(1)));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Pair.Tree->logicallyParallelUncached(Pair.Left, Pair.Right));
}
BENCHMARK(BM_LcaParallelQuery)
    ->Args({0, 8})
    ->Args({0, 64})
    ->Args({0, 512})
    ->Args({1, 8})
    ->Args({1, 64})
    ->Args({1, 512})
    ->ArgNames({"layout", "depth"});

void BM_TreeOrderCompare(benchmark::State &State) {
  DeepPair Pair = buildDeepPair(layoutFor(State.range(0)), 64);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Pair.Tree->treeOrderedBefore(Pair.Left, Pair.Right));
}
BENCHMARK(BM_TreeOrderCompare)->Arg(0)->Arg(1)->ArgNames({"layout"});

void BM_OracleCachedHit(benchmark::State &State) {
  DeepPair Pair = buildDeepPair(DpstLayout::Array, 512);
  ParallelismOracle Oracle(*Pair.Tree);
  Oracle.logicallyParallel(Pair.Left, Pair.Right); // warm the cache
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Oracle.logicallyParallel(Pair.Left, Pair.Right));
}
BENCHMARK(BM_OracleCachedHit);

void BM_OracleUncached(benchmark::State &State) {
  DeepPair Pair = buildDeepPair(DpstLayout::Array, 512);
  ParallelismOracle::Options Opts;
  Opts.EnableCache = false;
  ParallelismOracle Oracle(*Pair.Tree, Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Oracle.logicallyParallel(Pair.Left, Pair.Right));
}
BENCHMARK(BM_OracleUncached);

/// The Figure 14 effect needs out-of-cache trees: at the paper's scale
/// (10^6..10^8 nodes) every walk hop misses, and the array layout's packed
/// 16-byte records beat the linked layout's scattered ~56-byte heap nodes.
/// Builds a bushy random tree of `nodes` nodes and queries random leaves.
void BM_LcaQueryHugeTree(benchmark::State &State) {
  DpstLayout Layout = layoutFor(State.range(0));
  size_t NumNodes = static_cast<size_t>(State.range(1));
  std::unique_ptr<Dpst> Tree = createDpst(Layout);
  SplitMix64 Rng(7);
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  std::vector<NodeId> Scopes{Root};
  std::vector<NodeId> Steps;
  while (Tree->numNodes() < NumNodes) {
    NodeId Scope = Scopes[Rng.nextBelow(Scopes.size())];
    switch (Rng.nextBelow(3)) {
    case 0:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Finish, 0));
      break;
    case 1:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Async, 0));
      break;
    default:
      Steps.push_back(Tree->addNode(Scope, DpstNodeKind::Step, 0));
      break;
    }
  }
  SplitMix64 Query(13);
  for (auto _ : State) {
    NodeId A = Steps[Query.nextBelow(Steps.size())];
    NodeId B = Steps[Query.nextBelow(Steps.size())];
    if (A == B)
      continue;
    benchmark::DoNotOptimize(Tree->logicallyParallelUncached(A, B));
  }
}
BENCHMARK(BM_LcaQueryHugeTree)
    ->Args({0, 1 << 14})
    ->Args({1, 1 << 14})
    ->Args({0, 1 << 21})
    ->Args({1, 1 << 21})
    ->ArgNames({"layout", "nodes"});

//===----------------------------------------------------------------------===//
// Query-mode depth sweep (the query-acceleration ablation)
//===----------------------------------------------------------------------===//

QueryMode modeFor(int64_t Arg) { return static_cast<QueryMode>(Arg); }

/// Degenerate-deep sweep: the comb from buildDeepPair puts the LCA at the
/// root, so Walk pays the full `depth` pointer chase while Label resolves
/// at the first packed-word compare. The acceptance shape: Label flat
/// across 10..10k, Walk linear.
void BM_QueryModeDeepComb(benchmark::State &State) {
  QueryMode Mode = modeFor(State.range(0));
  DeepPair Pair = buildDeepPair(DpstLayout::Array,
                                static_cast<int>(State.range(1)));
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Pair.Tree->logicallyParallel(Pair.Left, Pair.Right, Mode));
}
BENCHMARK(BM_QueryModeDeepComb)
    ->Args({0, 10})
    ->Args({0, 100})
    ->Args({0, 1000})
    ->Args({0, 10000})
    ->Args({1, 10})
    ->Args({1, 100})
    ->Args({1, 1000})
    ->Args({1, 10000})
    ->Args({2, 10})
    ->Args({2, 100})
    ->Args({2, 1000})
    ->Args({2, 10000})
    ->ArgNames({"mode", "depth"});

/// Worst case for labels: two sibling steps at the *bottom* of the chain,
/// so the fork paths agree for `depth` entries before diverging. Label
/// degrades to a word-compare scan (8 bytes/step), Lift stays O(log d).
void BM_QueryModeDeepLca(benchmark::State &State) {
  QueryMode Mode = modeFor(State.range(0));
  int Depth = static_cast<int>(State.range(1));
  std::unique_ptr<Dpst> Tree = createDpst(DpstLayout::Array);
  NodeId Spine = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  for (int I = 0; I < Depth; ++I)
    Spine = Tree->addNode(Spine, DpstNodeKind::Finish, 0);
  NodeId Async = Tree->addNode(Spine, DpstNodeKind::Async, 1);
  NodeId Left = Tree->addNode(Async, DpstNodeKind::Step, 1);
  NodeId Right = Tree->addNode(Spine, DpstNodeKind::Step, 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(Tree->logicallyParallel(Left, Right, Mode));
}
BENCHMARK(BM_QueryModeDeepLca)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->ArgNames({"mode", "depth"});

/// Balanced case: random leaf pairs in a bushy tree (depth ~ log nodes),
/// the shape real task-parallel programs produce. All modes are fast here;
/// the sweep shows none of them regresses the common case.
void BM_QueryModeBushyTree(benchmark::State &State) {
  QueryMode Mode = modeFor(State.range(0));
  size_t NumNodes = static_cast<size_t>(State.range(1));
  std::unique_ptr<Dpst> Tree = createDpst(DpstLayout::Array);
  SplitMix64 Rng(7);
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  std::vector<NodeId> Scopes{Root};
  std::vector<NodeId> Steps;
  while (Tree->numNodes() < NumNodes) {
    NodeId Scope = Scopes[Rng.nextBelow(Scopes.size())];
    switch (Rng.nextBelow(3)) {
    case 0:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Finish, 0));
      break;
    case 1:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Async, 0));
      break;
    default:
      Steps.push_back(Tree->addNode(Scope, DpstNodeKind::Step, 0));
      break;
    }
  }
  SplitMix64 Query(13);
  for (auto _ : State) {
    NodeId A = Steps[Query.nextBelow(Steps.size())];
    NodeId B = Steps[Query.nextBelow(Steps.size())];
    if (A == B)
      continue;
    benchmark::DoNotOptimize(Tree->logicallyParallel(A, B, Mode));
  }
}
BENCHMARK(BM_QueryModeBushyTree)
    ->Args({0, 1 << 16})
    ->Args({1, 1 << 16})
    ->Args({2, 1 << 16})
    ->ArgNames({"mode", "nodes"});

void BM_LcaCacheLookup(benchmark::State &State) {
  LcaCache Cache(16);
  SplitMix64 Rng(42);
  for (int I = 0; I < 10000; ++I) {
    NodeId A = static_cast<NodeId>(Rng.nextBelow(1 << 20));
    NodeId B = A + 1 + static_cast<NodeId>(Rng.nextBelow(1 << 10));
    Cache.insert(A, B, (A & 1) != 0);
  }
  SplitMix64 Query(42);
  for (auto _ : State) {
    NodeId A = static_cast<NodeId>(Query.nextBelow(1 << 20));
    NodeId B = A + 1 + static_cast<NodeId>(Query.nextBelow(1 << 10));
    benchmark::DoNotOptimize(Cache.lookup(A, B));
  }
}
BENCHMARK(BM_LcaCacheLookup);

} // namespace

int main(int argc, char **argv) {
  return avc::bench::runMicroBenchmarks(argc, argv);
}
