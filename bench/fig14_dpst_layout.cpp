//===- bench/fig14_dpst_layout.cpp - Reproduces Figure 14 -----------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 14: the checker's slowdown with the DPST overlaid on
/// a linear array of nodes versus a pointer-linked tree. The paper reports
/// 4.2x (array) vs 5.1x (linked) geomean, with the gap concentrated in the
/// LCA-query-heavy applications.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);

  std::printf("Figure 14: array-DPST vs linked-DPST slowdown "
              "(scale=%.2f, reps=%u, threads=%u)\n",
              Config.Scale, Config.Reps, Config.Threads);
  std::printf("%-14s %12s %12s %12s %12s %12s\n", "benchmark", "base(ms)",
              "array(ms)", "linked(ms)", "array(x)", "linked(x)");

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  std::vector<double> ArraySlowdowns, LinkedSlowdowns;

  for (size_t I = 0; I < Count; ++I) {
    const Workload &W = Table[I];
    double Base =
        timeAverage(W, baselineOptions(Config), Config.Scale, Config.Reps);
    double Array = timeAverage(W, checkerOptions(Config, DpstLayout::Array),
                               Config.Scale, Config.Reps);
    double Linked =
        timeAverage(W, checkerOptions(Config, DpstLayout::Linked),
                    Config.Scale, Config.Reps);
    double ArrayX = Array / Base;
    double LinkedX = Linked / Base;
    ArraySlowdowns.push_back(ArrayX);
    LinkedSlowdowns.push_back(LinkedX);
    std::printf("%-14s %12.2f %12.2f %12.2f %11.2fx %11.2fx\n", W.Name,
                Base * 1e3, Array * 1e3, Linked * 1e3, ArrayX, LinkedX);
  }

  std::printf("%-14s %12s %12s %12s %11.2fx %11.2fx\n", "geomean", "", "",
              "", geometricMean(ArraySlowdowns),
              geometricMean(LinkedSlowdowns));
  std::printf("\nPaper reports: array 4.2x vs linked 5.1x (geomean); "
              "LCA-heavy applications benefit most from the array layout.\n");
  return 0;
}
