//===- bench/fig14_dpst_layout.cpp - Reproduces Figure 14 -----------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 14: the checker's slowdown with the DPST overlaid on
/// a linear array of nodes versus a pointer-linked tree. The paper reports
/// 4.2x (array) vs 5.1x (linked) geomean, with the gap concentrated in the
/// LCA-query-heavy applications.
///
/// The layout only matters while queries *walk* the tree, so each layout is
/// timed in Walk mode (the paper's algorithm, where the Figure 14 gap
/// lives) and in Label mode (the query-acceleration index answers from its
/// own flat arrays, collapsing the layout difference).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);

  std::printf("Figure 14: array-DPST vs linked-DPST slowdown, Walk vs "
              "Label queries (scale=%.2f, reps=%u, threads=%u)\n",
              Config.Scale, Config.Reps, Config.Threads);
  std::printf("%-14s %10s %11s %11s %11s %11s\n", "benchmark", "base(ms)",
              "arr/walk(x)", "lnk/walk(x)", "arr/labl(x)", "lnk/labl(x)");

  struct Column {
    const char *Name;
    DpstLayout Layout;
    QueryMode Mode;
  };
  const Column Columns[] = {
      {"array_walk", DpstLayout::Array, QueryMode::Walk},
      {"linked_walk", DpstLayout::Linked, QueryMode::Walk},
      {"array_label", DpstLayout::Array, QueryMode::Label},
      {"linked_label", DpstLayout::Linked, QueryMode::Label},
  };
  constexpr size_t NumColumns = sizeof(Columns) / sizeof(Columns[0]);

  JsonReport Report;
  Report.meta("experiment", "fig14_dpst_layout");
  Report.meta("scale", Config.Scale);
  Report.meta("reps", static_cast<double>(Config.Reps));
  Report.meta("threads", static_cast<double>(Config.Threads));

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  std::vector<double> Slowdowns[NumColumns];

  for (size_t I = 0; I < Count; ++I) {
    const Workload &W = Table[I];
    // Interleave the configurations across repetitions so machine drift
    // shifts every column equally (same rationale as fig13).
    double Base = 0;
    double Times[NumColumns] = {};
    for (unsigned R = 0; R < Config.Reps; ++R) {
      Base += timeOnce(W, baselineOptions(Config), Config.Scale);
      for (size_t C = 0; C < NumColumns; ++C) {
        ToolContext::Options Opts = checkerOptions(Config, Columns[C].Layout);
        Opts.Checker.Query = Columns[C].Mode;
        Times[C] += timeOnce(W, Opts, Config.Scale);
      }
    }
    Base /= Config.Reps;
    JsonReport::Row &Row =
        Report.row().field("benchmark", W.Name).field("base_ms", Base * 1e3);
    double Xs[NumColumns];
    for (size_t C = 0; C < NumColumns; ++C) {
      Times[C] /= Config.Reps;
      Xs[C] = Times[C] / Base;
      Slowdowns[C].push_back(Xs[C]);
      Row.field(std::string(Columns[C].Name) + "_ms", Times[C] * 1e3)
          .field(std::string(Columns[C].Name) + "_x", Xs[C]);
    }
    std::printf("%-14s %10.2f %10.2fx %10.2fx %10.2fx %10.2fx\n", W.Name,
                Base * 1e3, Xs[0], Xs[1], Xs[2], Xs[3]);
  }

  std::printf("%-14s %10s %10.2fx %10.2fx %10.2fx %10.2fx\n", "geomean", "",
              geometricMean(Slowdowns[0]), geometricMean(Slowdowns[1]),
              geometricMean(Slowdowns[2]), geometricMean(Slowdowns[3]));
  for (size_t C = 0; C < NumColumns; ++C)
    Report.meta(std::string("geomean_") + Columns[C].Name + "_x",
                geometricMean(Slowdowns[C]));
  if (!Config.JsonPath.empty() && !Report.write(Config.JsonPath))
    return 1;

  std::printf("\nPaper reports: array 4.2x vs linked 5.1x (geomean) under "
              "walked queries; the label index answers from its own flat "
              "arrays, so in Label mode the layout gap should collapse.\n");
  return 0;
}
