//===- bench/fig13_preanalysis.cpp - Site pre-analysis ablation -----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Reruns the Figure 13 overhead experiment with the site pre-analysis
/// gate off, on, and in profile mode, on the atomicity checker. Reports
/// per-benchmark slowdowns versus the uninstrumented baseline, the skip
/// counters (sequential-region and per-site tiers), the pruned-site
/// census, and the violation count under every mode — the counts must
/// agree, the gate only removes provably irrelevant work.
///
/// The committed artifact (BENCH_fig13_preanalysis.json) backs the PR 7
/// acceptance gate: geomean_preanalysis_on_x must stay below
/// geomean_preanalysis_off_x (see ci.yml and tools/bench_compare.py
/// --not-above-key).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

namespace {

/// Live warmup window for the profile leg: long enough that classification
/// rests on a meaningful prefix, short enough that the classified fast
/// path covers most of the run.
constexpr uint32_t ProfileWarmup = 1024;

} // namespace

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);

  std::printf("Figure 13 + site pre-analysis: slowdown vs uninstrumented "
              "baseline (scale=%.2f, reps=%u, threads=%u, profile "
              "warmup=%u)\n",
              Config.Scale, Config.Reps, Config.Threads, ProfileWarmup);
  JsonReport Report;
  Report.meta("experiment", "fig13_preanalysis");
  Report.meta("scale", Config.Scale);
  Report.meta("reps", static_cast<double>(Config.Reps));
  Report.meta("threads", static_cast<double>(Config.Threads));
  Report.meta("profile_warmup", static_cast<double>(ProfileWarmup));
  std::printf("%-14s %9s %8s %8s %8s %7s %7s %10s %10s %7s %6s\n",
              "benchmark", "base(ms)", "off(x)", "on(x)", "prof(x)",
              "seqskip", "sitskip", "pruned", "sites", "viol", "match");

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  std::vector<double> OffSlowdowns, OnSlowdowns, ProfileSlowdowns;
  bool AllMatch = true;

  for (size_t I = 0; I < Count; ++I) {
    const Workload &W = Table[I];
    ToolContext::Options OffOpts = checkerOptions(Config, DpstLayout::Array);
    ToolContext::Options OnOpts = OffOpts;
    OnOpts.Checker.Preanalysis = PreanalysisMode::On;
    ToolContext::Options ProfileOpts = OffOpts;
    ProfileOpts.Checker.Preanalysis = PreanalysisMode::Profile;
    ProfileOpts.Checker.PreanalysisWarmup = ProfileWarmup;

    // Interleave the configurations across repetitions (machine drift
    // shifts every column equally; see fig13_overhead.cpp).
    double Base = 0, Off = 0, On = 0, Profile = 0;
    for (unsigned R = 0; R < Config.Reps; ++R) {
      Base += timeOnce(W, baselineOptions(Config), Config.Scale);
      Off += timeOnce(W, OffOpts, Config.Scale);
      On += timeOnce(W, OnOpts, Config.Scale);
      Profile += timeOnce(W, ProfileOpts, Config.Scale);
    }
    Base /= Config.Reps;
    Off /= Config.Reps;
    On /= Config.Reps;
    Profile /= Config.Reps;

    CheckerStats OffStats = statsOnce(W, OffOpts, Config.Scale);
    CheckerStats OnStats = statsOnce(W, OnOpts, Config.Scale);
    CheckerStats ProfileStats = statsOnce(W, ProfileOpts, Config.Scale);
    const PreanalysisStats &Pre = OnStats.Pre;
    uint64_t Pruned = Pre.NumSequentialOnly + Pre.NumReadOnlyAfterInit;
    bool Match = OffStats.NumViolations == OnStats.NumViolations &&
                 OffStats.NumViolations == ProfileStats.NumViolations;
    AllMatch &= Match;

    double OffX = Off / Base;
    double OnX = On / Base;
    double ProfileX = Profile / Base;
    OffSlowdowns.push_back(OffX);
    OnSlowdowns.push_back(OnX);
    ProfileSlowdowns.push_back(ProfileX);
    std::printf("%-14s %9.2f %7.2fx %7.2fx %7.2fx %7llu %7llu %10llu "
                "%10llu %7llu %6s\n",
                W.Name, Base * 1e3, OffX, OnX, ProfileX,
                static_cast<unsigned long long>(Pre.NumSeqSkips),
                static_cast<unsigned long long>(Pre.NumSiteSkips),
                static_cast<unsigned long long>(Pruned),
                static_cast<unsigned long long>(Pre.NumSites),
                static_cast<unsigned long long>(OffStats.NumViolations),
                Match ? "yes" : "NO");
    Report.row()
        .field("benchmark", W.Name)
        .field("base_ms", Base * 1e3)
        .field("off_ms", Off * 1e3)
        .field("on_ms", On * 1e3)
        .field("profile_ms", Profile * 1e3)
        .field("off_x", OffX)
        .field("on_x", OnX)
        .field("profile_x", ProfileX)
        .field("pre_seq_skips", double(Pre.NumSeqSkips))
        .field("pre_site_skips", double(Pre.NumSiteSkips))
        .field("pre_sites", double(Pre.NumSites))
        .field("pre_sequential_only", double(Pre.NumSequentialOnly))
        .field("pre_read_only_after_init", double(Pre.NumReadOnlyAfterInit))
        .field("pre_fixed_lockset", double(Pre.NumFixedLockset))
        .field("pre_generic", double(Pre.NumGeneric))
        .field("profile_downgrades", double(ProfileStats.Pre.NumDowngrades))
        .field("violations_off", double(OffStats.NumViolations))
        .field("violations_on", double(OnStats.NumViolations))
        .field("violations_profile", double(ProfileStats.NumViolations))
        .field("violations_match", Match ? 1.0 : 0.0);
  }

  double GeoOff = geometricMean(OffSlowdowns);
  double GeoOn = geometricMean(OnSlowdowns);
  double GeoProfile = geometricMean(ProfileSlowdowns);
  std::printf("%-14s %9s %7.2fx %7.2fx %7.2fx\n", "geomean", "", GeoOff,
              GeoOn, GeoProfile);
  std::printf("pre-analysis on/off overhead ratio: %.3f (violation sets %s "
              "across modes)\n",
              GeoOn / GeoOff, AllMatch ? "identical" : "DIVERGED");
  Report.meta("geomean_preanalysis_off_x", GeoOff);
  Report.meta("geomean_preanalysis_on_x", GeoOn);
  Report.meta("geomean_preanalysis_profile_x", GeoProfile);
  Report.meta("preanalysis_on_over_off", GeoOn / GeoOff);
  Report.meta("all_violations_match", AllMatch ? 1.0 : 0.0);
  if (!Config.JsonPath.empty() && !Report.write(Config.JsonPath))
    return 1;
  return AllMatch ? 0 : 1;
}
