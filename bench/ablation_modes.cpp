//===- bench/ablation_modes.cpp - Design-choice ablations ------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Ablations for the design decisions DESIGN.md calls out, measured as
/// geomean slowdowns across the 13 benchmarks:
///   - the parallelism-query algorithm: fork-path labels (default) vs
///     binary lifting vs the paper's LCA walk with and without the
///     Section 4 cache (DESIGN.md "Constant-time parallelism queries");
///   - the per-task access-path cache on/off (DESIGN.md "Access-path
///     cache");
///   - complete metadata (20 entries + the interleaver-check fix) vs the
///     paper-literal 12-entry configuration;
///   - the unbounded-history basic checker (Section 3.1) as the upper
///     bound the fixed metadata exists to avoid.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

namespace {

struct ModeSpec {
  const char *Name;
  ToolContext::Options (*Make)(const BenchConfig &);
};

ToolContext::Options makeDefault(const BenchConfig &Config) {
  return checkerOptions(Config, DpstLayout::Array);
}

ToolContext::Options makeLift(const BenchConfig &Config) {
  ToolContext::Options Opts = checkerOptions(Config, DpstLayout::Array);
  Opts.Checker.Query = QueryMode::Lift;
  return Opts;
}

ToolContext::Options makeWalkCached(const BenchConfig &Config) {
  ToolContext::Options Opts = checkerOptions(Config, DpstLayout::Array);
  Opts.Checker.Query = QueryMode::Walk;
  return Opts;
}

ToolContext::Options makeWalkNoCache(const BenchConfig &Config) {
  ToolContext::Options Opts =
      checkerOptions(Config, DpstLayout::Array, /*EnableCache=*/false);
  Opts.Checker.Query = QueryMode::Walk;
  return Opts;
}

ToolContext::Options makePaperLiteral(const BenchConfig &Config) {
  // Engine-specific knobs ride in an extras block the options only point
  // at; static so it outlives every ToolContext built from these options.
  static const AtomicityExtras PaperLiteral = [] {
    AtomicityExtras Extras;
    Extras.ExtraInterleaverChecks = false;
    Extras.CompleteMetadata = false;
    return Extras;
  }();
  ToolContext::Options Opts = checkerOptions(Config, DpstLayout::Array);
  Opts.Extras = &PaperLiteral;
  return Opts;
}

ToolContext::Options makeNoCache(const BenchConfig &Config) {
  ToolContext::Options Opts = checkerOptions(Config, DpstLayout::Array);
  Opts.Checker.EnableAccessCache = false;
  return Opts;
}

ToolContext::Options makeBasic(const BenchConfig &Config) {
  ToolContext::Options Opts;
  Opts.Tool = ToolKind::Basic;
  Opts.Checker.NumThreads = Config.Threads;
  return Opts;
}

ToolContext::Options makeRace(const BenchConfig &Config) {
  ToolContext::Options Opts;
  Opts.Tool = ToolKind::Race;
  Opts.Checker.NumThreads = Config.Threads;
  return Opts;
}

const ModeSpec Modes[] = {
    {"default(label-queries)", makeDefault},
    {"query-lift", makeLift},
    {"query-walk(+lca-cache)", makeWalkCached},
    {"query-walk(no-cache)", makeWalkNoCache},
    {"paper-literal(12-entry)", makePaperLiteral},
    {"no-access-cache", makeNoCache},
    {"basic(unbounded)", makeBasic},
    {"race-detector(all-sets)", makeRace},
};

} // namespace

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);
  // The basic checker is quadratic in per-location access counts; a lower
  // default scale keeps this ablation affordable.
  if (Config.Scale > 0.1)
    Config.Scale = 0.1;

  std::printf("Ablation: checker configuration vs slowdown "
              "(scale=%.2f, reps=%u)\n",
              Config.Scale, Config.Reps);
  JsonReport Report;
  Report.meta("experiment", "ablation_modes");
  Report.meta("scale", Config.Scale);
  Report.meta("reps", static_cast<double>(Config.Reps));
  Report.meta("threads", static_cast<double>(Config.Threads));

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);

  std::vector<double> Baselines(Count);
  for (size_t I = 0; I < Count; ++I)
    Baselines[I] = timeAverage(Table[I], baselineOptions(Config),
                               Config.Scale, Config.Reps);

  std::printf("%-26s %12s %14s\n", "configuration", "geomean(x)", "worst(x)");
  for (const ModeSpec &Mode : Modes) {
    std::vector<double> Slowdowns;
    double Worst = 0;
    const char *WorstName = "";
    for (size_t I = 0; I < Count; ++I) {
      double Time = timeAverage(Table[I], Mode.Make(Config), Config.Scale,
                                Config.Reps);
      double X = Time / Baselines[I];
      Slowdowns.push_back(X);
      if (X > Worst) {
        Worst = X;
        WorstName = Table[I].Name;
      }
    }
    std::printf("%-26s %11.2fx %9.2fx (%s)\n", Mode.Name,
                geometricMean(Slowdowns), Worst, WorstName);
    Report.row()
        .field("configuration", Mode.Name)
        .field("geomean_x", geometricMean(Slowdowns))
        .field("worst_x", Worst)
        .field("worst_benchmark", WorstName);
  }
  if (!Config.JsonPath.empty() && !Report.write(Config.JsonPath))
    return 1;

  std::printf("\nExpected shape: label and lift queries match or beat the "
              "cached walk and clearly beat the uncached walk on LCA-heavy "
              "benchmarks; the complete-metadata checks cost little over "
              "the paper-literal configuration; the unbounded basic checker "
              "is the most expensive (it is quadratic per location) — the "
              "cost the paper's fixed metadata removes.\n");
  return 0;
}
