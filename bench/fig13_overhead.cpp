//===- bench/fig13_overhead.cpp - Reproduces Figure 13 --------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 13: per benchmark, the execution-time slowdown of
/// (a) our atomicity checker and (b) the reimplemented Velodrome baseline,
/// both relative to an uninstrumented run. The paper reports geometric
/// means of 4.2x (ours) and 4.6x (Velodrome) over five runs each, with
/// kmeans, raycast, and swaptions as the high-overhead outliers.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);

  std::printf("Figure 13: slowdown vs uninstrumented baseline "
              "(scale=%.2f, reps=%u, threads=%u)\n",
              Config.Scale, Config.Reps, Config.Threads);
  std::printf("%-14s %12s %12s %12s %12s %12s\n", "benchmark", "base(ms)",
              "ours(ms)", "velo(ms)", "ours(x)", "velodrome(x)");

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  std::vector<double> OursSlowdowns, VeloSlowdowns;

  for (size_t I = 0; I < Count; ++I) {
    const Workload &W = Table[I];
    double Base =
        timeAverage(W, baselineOptions(Config), Config.Scale, Config.Reps);
    double Ours = timeAverage(W, checkerOptions(Config, DpstLayout::Array),
                              Config.Scale, Config.Reps);
    double Velo =
        timeAverage(W, velodromeOptions(Config), Config.Scale, Config.Reps);
    double OursX = Ours / Base;
    double VeloX = Velo / Base;
    OursSlowdowns.push_back(OursX);
    VeloSlowdowns.push_back(VeloX);
    std::printf("%-14s %12.2f %12.2f %12.2f %11.2fx %11.2fx\n", W.Name,
                Base * 1e3, Ours * 1e3, Velo * 1e3, OursX, VeloX);
  }

  std::printf("%-14s %12s %12s %12s %11.2fx %11.2fx\n", "geomean", "", "",
              "", geometricMean(OursSlowdowns),
              geometricMean(VeloSlowdowns));
  std::printf("\nPaper reports: ours 4.2x, Velodrome 4.6x (geomean); "
              "kmeans/raycast/swaptions highest.\n");
  std::printf("Reminder: Velodrome checks only the observed schedule; our "
              "checker covers all schedules for the input at similar or "
              "lower cost.\n");
  return 0;
}
