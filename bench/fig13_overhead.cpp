//===- bench/fig13_overhead.cpp - Reproduces Figure 13 --------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 13: per benchmark, the execution-time slowdown of
/// (a) our atomicity checker and (b) the reimplemented Velodrome baseline,
/// both relative to an uninstrumented run. The paper reports geometric
/// means of 4.2x (ours) and 4.6x (Velodrome) over five runs each, with
/// kmeans, raycast, and swaptions as the high-overhead outliers.
///
/// Additionally times the checker with the per-task access-path cache
/// disabled (nocache) and reports the verdict/path hit rates per benchmark,
/// so the cache's contribution to the overhead reduction is visible
/// directly.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);

  std::printf("Figure 13: slowdown vs uninstrumented baseline "
              "(scale=%.2f, reps=%u, threads=%u, query-mode=%s)\n",
              Config.Scale, Config.Reps, Config.Threads,
              queryModeName(Config.Query));
  JsonReport Report;
  Report.meta("experiment", "fig13_overhead");
  Report.meta("scale", Config.Scale);
  Report.meta("reps", static_cast<double>(Config.Reps));
  Report.meta("threads", static_cast<double>(Config.Threads));
  Report.meta("query_mode", queryModeName(Config.Query));
  std::printf("%-14s %9s %9s %10s %9s %10s %8s %9s %8s %9s %7s %7s\n",
              "benchmark", "base(ms)", "ours(ms)", "nocache(ms)", "velo(ms)",
              "vclock(ms)", "ours(x)", "nocache(x)", "velo(x)", "vclock(x)",
              "hit%", "path%");

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  std::vector<double> OursSlowdowns, NoCacheSlowdowns, VeloSlowdowns,
      VClockSlowdowns;

  for (size_t I = 0; I < Count; ++I) {
    const Workload &W = Table[I];
    ToolContext::Options OursOpts = checkerOptions(Config, DpstLayout::Array);
    ToolContext::Options NoCacheOpts = OursOpts;
    NoCacheOpts.Checker.EnableAccessCache = false;
    // Interleave the configurations across repetitions: slow machine drift
    // then shifts every column equally instead of biasing whichever config
    // happened to run its block of reps during a slow phase.
    double Base = 0, Ours = 0, NoCache = 0, Velo = 0, VClock = 0;
    for (unsigned R = 0; R < Config.Reps; ++R) {
      Base += timeOnce(W, baselineOptions(Config), Config.Scale);
      Ours += timeOnce(W, OursOpts, Config.Scale);
      NoCache += timeOnce(W, NoCacheOpts, Config.Scale);
      Velo += timeOnce(W, velodromeOptions(Config), Config.Scale);
      VClock += timeOnce(W, vclockOptions(Config), Config.Scale);
    }
    Base /= Config.Reps;
    Ours /= Config.Reps;
    NoCache /= Config.Reps;
    Velo /= Config.Reps;
    VClock /= Config.Reps;
    CheckerStats Stats = statsOnce(W, OursOpts, Config.Scale);
    double OursX = Ours / Base;
    double NoCacheX = NoCache / Base;
    double VeloX = Velo / Base;
    double VClockX = VClock / Base;
    OursSlowdowns.push_back(OursX);
    NoCacheSlowdowns.push_back(NoCacheX);
    VeloSlowdowns.push_back(VeloX);
    VClockSlowdowns.push_back(VClockX);
    std::printf("%-14s %9.2f %9.2f %10.2f %9.2f %10.2f %7.2fx %8.2fx "
                "%7.2fx %8.2fx %6.1f%% %6.1f%%\n",
                W.Name, Base * 1e3, Ours * 1e3, NoCache * 1e3, Velo * 1e3,
                VClock * 1e3, OursX, NoCacheX, VeloX, VClockX,
                Stats.cacheHitRate(), Stats.cachePathHitRate());
    Report.row()
        .field("benchmark", W.Name)
        .field("base_ms", Base * 1e3)
        .field("ours_ms", Ours * 1e3)
        .field("nocache_ms", NoCache * 1e3)
        .field("velodrome_ms", Velo * 1e3)
        .field("vclock_ms", VClock * 1e3)
        .field("ours_x", OursX)
        .field("nocache_x", NoCacheX)
        .field("velodrome_x", VeloX)
        .field("vclock_x", VClockX)
        .field("cache_hit_pct", Stats.cacheHitRate())
        .field("cache_path_hit_pct", Stats.cachePathHitRate())
        .field("cache_evictions", double(Stats.NumCacheEvictions))
        .field("lockset_snapshots", double(Stats.NumLockSnapshots));
  }

  std::printf("%-14s %9s %9s %10s %9s %10s %7.2fx %8.2fx %7.2fx %8.2fx\n",
              "geomean", "", "", "", "", "", geometricMean(OursSlowdowns),
              geometricMean(NoCacheSlowdowns), geometricMean(VeloSlowdowns),
              geometricMean(VClockSlowdowns));
  Report.meta("geomean_ours_x", geometricMean(OursSlowdowns));
  Report.meta("geomean_nocache_x", geometricMean(NoCacheSlowdowns));
  Report.meta("geomean_velodrome_x", geometricMean(VeloSlowdowns));
  Report.meta("geomean_vclock_x", geometricMean(VClockSlowdowns));
  if (!Config.JsonPath.empty() && !Report.write(Config.JsonPath))
    return 1;
  std::printf("\nPaper reports: ours 4.2x, Velodrome 4.6x (geomean); "
              "kmeans/raycast/swaptions highest.\n");
  std::printf("Reminder: Velodrome checks only the observed schedule; our "
              "checker covers all schedules for the input at similar or "
              "lower cost.\n");
  return 0;
}
