//===- bench/BenchCommon.h - Shared harness for the experiments -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common machinery for the table/figure reproduction binaries: argument
/// parsing (--scale, --reps, --threads), repeated timed runs of a workload
/// under a tool configuration, and fixed-width table printing.
///
/// The paper executes each benchmark five times on a 16-core Xeon and
/// reports the average slowdown versus an uninstrumented baseline; we do
/// the same with a configurable repetition count and input scale sized for
/// a small container. Absolute times are not comparable; the slowdown
/// *shape* is the reproduced quantity (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_BENCH_BENCHCOMMON_H
#define AVC_BENCH_BENCHCOMMON_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "instrument/ToolContext.h"
#include "support/ArgParse.h"
#include "support/JsonReport.h"
#include "support/Statistics.h"
#include "support/Timing.h"
#include "workloads/Workloads.h"

namespace avc {
namespace bench {

/// Command-line configuration shared by the experiment binaries.
struct BenchConfig {
  double Scale = 1.0;  ///< workload input scale (1.0 = default size)
  unsigned Reps = 3;   ///< timed repetitions per configuration
  unsigned Threads = 1;///< worker threads (1 = deterministic)
  /// Parallelism-query algorithm for the checker configurations.
  QueryMode Query = QueryMode::Label;
  /// Destination for machine-readable results; empty = table output only.
  std::string JsonPath;
};

/// Peels `--json=PATH` / `--json PATH` off \p Argv (compacting it in
/// place) and returns the path, or "" if absent. Separate from parseArgs
/// so the google-benchmark binaries can strip our flag before handing the
/// remaining argv to benchmark::Initialize, which rejects unknown flags.
/// Fails fast (exit 2) on a parse error or an unwritable destination.
inline std::string extractJsonPath(int &Argc, char **Argv) {
  std::string Path;
  ArgParser Parser;
  Parser.stringOption("json", Path);
  if (!Parser.parseKnown(Argc, Argv))
    std::exit(2);
  if (!Path.empty() && !ensureWritableFile(Path)) {
    std::fprintf(stderr, "error: --json path '%s' is not writable\n",
                 Path.c_str());
    std::exit(2);
  }
  return Path;
}

inline BenchConfig parseArgs(int Argc, char **Argv) {
  BenchConfig Config;
  Config.JsonPath = extractJsonPath(Argc, Argv);
  bool Help = false;
  ArgParser Parser;
  Parser.doubleOption("scale", Config.Scale)
      .unsignedOption("reps", Config.Reps)
      .unsignedOption("threads", Config.Threads)
      .option("query-mode",
              [&Config](const char *V) {
                if (parseQueryMode(V, Config.Query))
                  return true;
                std::fprintf(stderr, "error: unknown query mode '%s'\n", V);
                return false;
              })
      .flag("help", Help);
  if (!Parser.parse(Argc, Argv))
    std::exit(2);
  if (Help) {
    std::printf("usage: %s [--scale=S] [--reps=N] [--threads=T]\n"
                "          [--query-mode=walk|lift|label] [--json=PATH]\n",
                Argv[0]);
    std::exit(0);
  }
  if (Config.Reps == 0)
    Config.Reps = 1;
  if (Config.Threads == 0)
    Config.Threads = 1;
  return Config;
}

/// Runs \p W once under a fresh tool context and returns wall seconds.
inline double timeOnce(const workloads::Workload &W,
                       ToolContext::Options Opts, double Scale) {
  ToolContext Tool(Opts);
  Timer T;
  Tool.run([&] { W.Run(Scale); });
  return T.elapsedSeconds();
}

/// Average wall seconds over \p Reps runs.
inline double timeAverage(const workloads::Workload &W,
                          ToolContext::Options Opts, double Scale,
                          unsigned Reps) {
  std::vector<double> Times;
  Times.reserve(Reps);
  for (unsigned R = 0; R < Reps; ++R)
    Times.push_back(timeOnce(W, Opts, Scale));
  return arithmeticMean(Times);
}

/// Runs \p W once under a fresh atomicity-checker context and returns the
/// checker's statistics snapshot (e.g. to report filter hit rates next to
/// the timing columns). \p Opts must select ToolKind::Atomicity.
inline CheckerStats statsOnce(const workloads::Workload &W,
                              ToolContext::Options Opts, double Scale) {
  ToolContext Tool(Opts);
  Tool.run([&] { W.Run(Scale); });
  const AtomicityChecker *Checker = Tool.atomicityChecker();
  return Checker ? Checker->stats() : CheckerStats();
}

/// Convenience builders for the standard tool configurations.
inline ToolContext::Options baselineOptions(const BenchConfig &Config) {
  ToolContext::Options Opts;
  Opts.Tool = ToolKind::None;
  Opts.Checker.NumThreads = Config.Threads;
  return Opts;
}

inline ToolContext::Options checkerOptions(const BenchConfig &Config,
                                           DpstLayout Layout,
                                           bool EnableCache = true) {
  ToolContext::Options Opts;
  Opts.Tool = ToolKind::Atomicity;
  Opts.Checker.NumThreads = Config.Threads;
  Opts.Checker.Layout = Layout;
  Opts.Checker.Query = Config.Query;
  Opts.Checker.EnableLcaCache = EnableCache;
  return Opts;
}

inline ToolContext::Options velodromeOptions(const BenchConfig &Config) {
  ToolContext::Options Opts;
  Opts.Tool = ToolKind::Velodrome;
  Opts.Checker.NumThreads = Config.Threads;
  return Opts;
}

inline ToolContext::Options vclockOptions(const BenchConfig &Config) {
  ToolContext::Options Opts;
  Opts.Tool = ToolKind::VClock;
  Opts.Checker.NumThreads = Config.Threads;
  return Opts;
}

/// Formats a count with M/K suffixes the way Table 1 does.
inline std::string humanCount(double Value) {
  char Buffer[32];
  if (Value >= 1e6)
    std::snprintf(Buffer, sizeof(Buffer), "%.2fM", Value / 1e6);
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.0f", Value);
  return std::string(Buffer);
}

//===----------------------------------------------------------------------===//
// Machine-readable output (--json=PATH)
//===----------------------------------------------------------------------===//

// The emitter itself lives in support/JsonReport.h (shared with taskcheck
// --json); re-exported here for the bench binaries.
using avc::JsonReport;
using avc::jsonNumber;
using avc::jsonQuote;

/// main() body shared by the google-benchmark micro binaries: peels our
/// --json flag off argv and rewrites it into the library's own
/// --benchmark_out flags (console table still prints; the file gets
/// google-benchmark's JSON format). Replaces BENCHMARK_MAIN().
inline int runMicroBenchmarks(int Argc, char **Argv) {
  std::string JsonPath = extractJsonPath(Argc, Argv);
  std::vector<char *> Args(Argv, Argv + Argc);
  std::string OutFlag = "--benchmark_out=" + JsonPath;
  std::string FormatFlag = "--benchmark_out_format=json";
  if (!JsonPath.empty()) {
    Args.push_back(OutFlag.data());
    Args.push_back(FormatFlag.data());
  }
  int NewArgc = static_cast<int>(Args.size());
  benchmark::Initialize(&NewArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(NewArgc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!JsonPath.empty())
    std::printf("wrote %s\n", JsonPath.c_str());
  benchmark::Shutdown();
  return 0;
}

} // namespace bench
} // namespace avc

#endif // AVC_BENCH_BENCHCOMMON_H
