//===- bench/trace_scale.cpp - Trace format + batch replay at scale -------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Throughput of the trace-at-scale pipeline: recorder ingest (events
/// appended per second through the lock-free per-worker buffers), binary
/// encode/decode (single-thread and block-parallel), the binary/text size
/// ratio, and end-to-end batch checking of a trace fleet across worker
/// counts. Four numbers feed the CI gates (tools/bench_compare.py):
/// decode_events_per_sec (floor 10M/s), binary_text_ratio (ceiling 0.25),
/// batch_scaling_t8_over_t1 — the batch wall ratio at min(8, cores)
/// workers vs one, normalized by that worker count, so near-linear scaling
/// reads ~1.0 on any core count (ceiling 1.5) — and vclock_scale_ratio
/// (ceiling 2.0): the vclock engine's replay-rate ratio between a 1x and
/// a 10x-length trace at fixed parallelism width, asserting the
/// vector-clock pass stays linear in trace length.
///
//===----------------------------------------------------------------------===//

#include <filesystem>
#include <fstream>
#include <thread>

#include "BenchCommon.h"
#include "trace/BatchReplay.h"
#include "trace/TraceCodec.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceIO.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"

using namespace avc;
using namespace avc::bench;

namespace {

/// One large generated trace, ~12 events per task.
Trace bigTrace(uint64_t Seed, uint32_t NumTasks) {
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = NumTasks;
  Opts.NumLocations = 64;
  Opts.NumLocks = 8;
  Opts.LockedFraction = 0.3;
  return linearizeRandom(generateProgram(Opts), Seed * 131 + 7);
}

double bestOf(unsigned Reps, double (*Fn)(const Trace &), const Trace &T) {
  double Best = Fn(T);
  for (unsigned R = 1; R < Reps; ++R)
    Best = std::min(Best, Fn(T));
  return Best;
}

double timeIngest(const Trace &Events) {
  TraceRecorder Recorder;
  Timer T;
  replayTrace(Events, Recorder);
  return T.elapsedSeconds();
}

double timeEncode(const Trace &Events) {
  Timer T;
  std::string Encoded = encodeTrace(Events);
  double Secs = T.elapsedSeconds();
  benchmark::DoNotOptimize(Encoded.data());
  return Secs;
}

/// A trace whose LENGTH scales through ops-per-task at a fixed task count,
/// so parallelism width — and with it the vclock engine's live-clock
/// width — stays constant while the event count grows. Scaling NumTasks
/// instead would widen the clocks with the trace and conflate the two.
Trace opsScaledTrace(uint64_t Seed, uint32_t OpsScale) {
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = 256;
  Opts.NumLocations = 64;
  Opts.NumLocks = 8;
  Opts.LockedFraction = 0.3;
  Opts.MinOpsPerTask = 200 * OpsScale;
  Opts.MaxOpsPerTask = 600 * OpsScale;
  return linearizeRandom(generateProgram(Opts), Seed * 131 + 7);
}

double timeVClockReplay(const Trace &Events) {
  VectorClockAtomicity Tool{VectorClockAtomicity::Options()};
  Timer T;
  replayTrace(Events, Tool);
  return T.elapsedSeconds();
}

} // namespace

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);
  unsigned HwCores = std::max(1u, std::thread::hardware_concurrency());

  // ~1.2M events at scale 1 — enough for stable per-event timing, small
  // enough for a CI container.
  uint32_t NumTasks = std::max(64u, uint32_t(100000 * Config.Scale));
  Trace Events = bigTrace(42, NumTasks);
  double NumEvents = double(Events.size());

  std::printf("Trace-at-scale: %zu events, %u hardware core(s), reps=%u\n\n",
              Events.size(), HwCores, Config.Reps);
  JsonReport Report;
  Report.meta("experiment", "trace_scale");
  Report.meta("scale", Config.Scale);
  Report.meta("reps", double(Config.Reps));
  Report.meta("hw_concurrency", double(HwCores));
  Report.meta("events", NumEvents);

  // --- Recorder ingest: every event through the lock-free append path.
  double IngestSecs = bestOf(Config.Reps, timeIngest, Events);
  double IngestRate = NumEvents / IngestSecs;
  std::printf("%-28s %10.1fM events/s\n", "recorder ingest (1 thread)",
              IngestRate / 1e6);
  Report.meta("ingest_events_per_sec", IngestRate);

  // --- Codec: encode, decode, parallel decode, size ratio.
  double EncodeSecs = bestOf(Config.Reps, timeEncode, Events);
  std::string Encoded = encodeTrace(Events);
  std::string Text = traceToText(Events);
  double Ratio = double(Encoded.size()) / double(Text.size());
  std::printf("%-28s %10.1fM events/s\n", "binary encode",
              NumEvents / EncodeSecs / 1e6);
  std::printf("%-28s %10zu -> %zu bytes (%.1f%% of text, %.2f B/event)\n",
              "binary size", Text.size(), Encoded.size(), Ratio * 100,
              double(Encoded.size()) / NumEvents);
  Report.meta("encode_events_per_sec", NumEvents / EncodeSecs);
  Report.meta("binary_bytes", double(Encoded.size()));
  Report.meta("text_bytes", double(Text.size()));
  Report.meta("binary_text_ratio", Ratio);

  double DecodeSecs = 0;
  for (unsigned R = 0; R < Config.Reps; ++R) {
    Timer T;
    std::optional<Trace> Decoded = decodeTrace(Encoded);
    double Secs = T.elapsedSeconds();
    if (!Decoded || Decoded->size() != Events.size()) {
      std::fprintf(stderr, "error: decode round-trip failed\n");
      return 1;
    }
    DecodeSecs = R ? std::min(DecodeSecs, Secs) : Secs;
  }
  double DecodeRate = NumEvents / DecodeSecs;
  std::printf("%-28s %10.1fM events/s (CI floor: 10M/s)\n",
              "binary decode (1 thread)", DecodeRate / 1e6);
  Report.meta("decode_events_per_sec", DecodeRate);

  double ParSecs = 0;
  for (unsigned R = 0; R < Config.Reps; ++R) {
    Timer T;
    std::optional<Trace> Decoded = decodeTraceParallel(Encoded, HwCores);
    double Secs = T.elapsedSeconds();
    if (!Decoded || *Decoded != Events) {
      std::fprintf(stderr, "error: parallel decode mismatch\n");
      return 1;
    }
    ParSecs = R ? std::min(ParSecs, Secs) : Secs;
  }
  std::printf("%-28s %10.1fM events/s (%u thread(s))\n",
              "binary decode (parallel)", NumEvents / ParSecs / 1e6, HwCores);
  Report.meta("decode_parallel_events_per_sec", NumEvents / ParSecs);

  // --- Batch replay: a fleet of stored traces checked across workers.
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "avc_trace_scale";
  fs::create_directories(Dir);
  std::vector<std::string> Paths;
  uint32_t FleetTasks = std::max(32u, NumTasks / 16);
  uint64_t FleetEvents = 0;
  for (uint64_t I = 0; I < 8; ++I) {
    Trace T = bigTrace(100 + I, FleetTasks);
    FleetEvents += T.size();
    fs::path P = Dir / ("trace" + std::to_string(I) + ".avctrace");
    std::ofstream Out(P, std::ios::binary);
    std::string Bytes = encodeTrace(T);
    Out.write(Bytes.data(), std::streamsize(Bytes.size()));
    Paths.push_back(P.string());
  }
  std::printf("\nbatch: 8 traces, %llu events total, tool=atomicity\n",
              (unsigned long long)FleetEvents);
  std::printf("%-10s %12s %14s\n", "workers", "wall(ms)", "events/s");

  constexpr unsigned WorkerCounts[] = {1, 2, 4, 8};
  double Walls[4] = {0, 0, 0, 0};
  for (unsigned WI = 0; WI < 4; ++WI) {
    BatchOptions Opts;
    Opts.Tool = ToolKind::Atomicity;
    Opts.NumWorkers = WorkerCounts[WI];
    for (unsigned R = 0; R < Config.Reps; ++R) {
      BatchResult Result = runBatch(Paths, Opts);
      if (Result.NumFailed) {
        std::fprintf(stderr, "error: batch run failed\n");
        return 1;
      }
      Walls[WI] = R ? std::min(Walls[WI], Result.WallMs) : Result.WallMs;
    }
    std::printf("%-10u %12.2f %14.1fM\n", WorkerCounts[WI], Walls[WI],
                double(FleetEvents) / (Walls[WI] * 1e-3) / 1e6);
    char Key[32];
    std::snprintf(Key, sizeof(Key), "batch_wall_ms_t%u", WorkerCounts[WI]);
    Report.meta(Key, Walls[WI]);
  }
  // Core-normalized scaling, measured at the worker count the machine can
  // actually exercise: with C cores, G = min(8, C) workers should give
  // W_G = W_1 / G, so G * W_G / W_1 reads ~1.0 under perfect scaling and
  // >1.5 means the batch fan-out is losing parallelism. Worker counts
  // beyond the core count only measure oversubscription, so they are
  // reported above but excluded from the gate.
  unsigned GateWorkers = std::min(8u, HwCores);
  unsigned GateIdx = 0;
  for (unsigned WI = 0; WI < 4; ++WI)
    if (WorkerCounts[WI] <= GateWorkers)
      GateIdx = WI;
  double Scaling =
      double(WorkerCounts[GateIdx]) * Walls[GateIdx] / Walls[0];
  std::printf("\ncore-normalized scaling at %u worker(s): %.2f "
              "(1.0 = perfect scaling; CI gate <= 1.5)\n",
              WorkerCounts[GateIdx], Scaling);
  Report.meta("batch_gate_workers", double(WorkerCounts[GateIdx]));
  Report.meta("batch_scaling_t8_over_t1", Scaling);

  // --- Batch replay under the vclock engine: same fleet, registry-built
  // vector-clock instances instead of the DPST checker.
  {
    BatchOptions Opts;
    Opts.Tool = ToolKind::VClock;
    Opts.NumWorkers = GateWorkers;
    double Wall = 0;
    for (unsigned R = 0; R < Config.Reps; ++R) {
      BatchResult Result = runBatch(Paths, Opts);
      if (Result.NumFailed) {
        std::fprintf(stderr, "error: vclock batch run failed\n");
        return 1;
      }
      Wall = R ? std::min(Wall, Result.WallMs) : Result.WallMs;
    }
    std::printf("\nbatch tool=vclock, %u worker(s): %.2f ms (%.1fM "
                "events/s)\n",
                GateWorkers, Wall,
                double(FleetEvents) / (Wall * 1e-3) / 1e6);
    Report.meta("batch_vclock_wall_ms", Wall);
    Report.meta("batch_vclock_events_per_sec",
                double(FleetEvents) / (Wall * 1e-3));
  }

  // --- VClock linear-time probe: replay throughput at 1x vs 10x trace
  // length, task count (= parallelism width) held fixed. A linear-time
  // engine holds its events/s as the trace grows, so the 1x/10x rate
  // ratio reads ~1.0; super-linear blowup (e.g. unpruned clock growth)
  // drags the 10x rate down and pushes the ratio over the CI ceiling
  // of 2.0 (tools/bench_compare.py --key vclock_scale_ratio).
  {
    Trace Small = opsScaledTrace(7, 1);
    Trace Large = opsScaledTrace(7, 10);
    double SmallSecs = bestOf(Config.Reps, timeVClockReplay, Small);
    double LargeSecs = bestOf(Config.Reps, timeVClockReplay, Large);
    double SmallRate = double(Small.size()) / SmallSecs;
    double LargeRate = double(Large.size()) / LargeSecs;
    double RateRatio = SmallRate / LargeRate;
    std::printf("\nvclock linear-time probe (256 tasks, ops-per-task "
                "scaled)\n");
    std::printf("%-28s %10.1fM events/s (%zu events)\n", "vclock replay 1x",
                SmallRate / 1e6, Small.size());
    std::printf("%-28s %10.1fM events/s (%zu events)\n", "vclock replay 10x",
                LargeRate / 1e6, Large.size());
    std::printf("%-28s %10.2f (1.0 = linear; CI gate <= 2.0)\n",
                "rate ratio 1x/10x", RateRatio);
    Report.meta("vclock_events_small", double(Small.size()));
    Report.meta("vclock_events_large", double(Large.size()));
    Report.meta("vclock_events_per_sec_1x", SmallRate);
    Report.meta("vclock_events_per_sec_10x", LargeRate);
    Report.meta("vclock_scale_ratio", RateRatio);
  }

  std::error_code Ec;
  fs::remove_all(Dir, Ec);

  if (!Config.JsonPath.empty() && !Report.write(Config.JsonPath))
    return 1;
  return 0;
}
