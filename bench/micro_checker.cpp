//===- bench/micro_checker.cpp - Checker hot-path microbenchmarks ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks for the per-access costs that dominate
/// the Figure 13 overheads: the checker's three access classes (Figure 6),
/// lockset snapshots, shadow-memory resolution, and Velodrome's per-access
/// work for comparison.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "BenchCommon.h"
#include "checker/AtomicityChecker.h"
#include "checker/LockSet.h"
#include "checker/ShadowMemory.h"
#include "checker/Velodrome.h"
#include "obs/Obs.h"
#include "trace/TraceEvent.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

/// A checker warmed with a two-task parallel program; Addr events can then
/// be driven directly through the observer interface.
struct WarmChecker {
  AtomicityChecker Checker;

  WarmChecker() {
    Checker.onProgramStart(0);
    Checker.onTaskSpawn(0, nullptr, 1);
    Checker.onTaskSpawn(0, nullptr, 2);
  }
};

void BM_FirstAccesses(benchmark::State &State) {
  // Fresh location per access: the Figure 7 path (blackscholes profile).
  WarmChecker Warm;
  MemAddr Addr = 0x100000;
  for (auto _ : State) {
    Warm.Checker.onWrite(1, Addr);
    Addr += 8;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_FirstAccesses);

void BM_RepeatedSameStepAccess(benchmark::State &State) {
  // Same step re-reading one location: Figure 9 with no parallel entries.
  WarmChecker Warm;
  Warm.Checker.onRead(1, 0x200000);
  for (auto _ : State)
    Warm.Checker.onRead(1, 0x200000);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RepeatedSameStepAccess);

void BM_SharedReadByParallelTasks(benchmark::State &State) {
  // Two parallel tasks alternating reads of one hot location: the kmeans
  // profile (single-entry updates with cached LCA queries).
  WarmChecker Warm;
  for (auto _ : State) {
    Warm.Checker.onRead(1, 0x300000);
    Warm.Checker.onRead(2, 0x300000);
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_SharedReadByParallelTasks);

void BM_LockedAccess(benchmark::State &State) {
  // Acquire + access + release per iteration: the fluidanimate profile.
  WarmChecker Warm;
  for (auto _ : State) {
    Warm.Checker.onLockAcquire(1, 7);
    Warm.Checker.onWrite(1, 0x400000);
    Warm.Checker.onLockRelease(1, 7);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_LockedAccess);

void BM_LockSetSnapshotDepth(benchmark::State &State) {
  HeldLocks Held;
  for (int64_t I = 0; I < State.range(0); ++I)
    Held.acquire(static_cast<LockId>(I + 1), static_cast<LockToken>(I + 100));
  for (auto _ : State)
    benchmark::DoNotOptimize(Held.snapshot());
}
BENCHMARK(BM_LockSetSnapshotDepth)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->ArgNames({"held"});

void BM_LockSetDisjointness(benchmark::State &State) {
  LockSet A({1, 5, 9, 13});
  LockSet B({2, 6, 10, 14});
  for (auto _ : State)
    benchmark::DoNotOptimize(A.disjointWith(B));
}
BENCHMARK(BM_LockSetDisjointness);

void BM_ShadowGetOrCreateHot(benchmark::State &State) {
  ShadowMemory<uint64_t> Shadow;
  Shadow.getOrCreate(0x123456);
  for (auto _ : State)
    benchmark::DoNotOptimize(Shadow.getOrCreate(0x123456));
}
BENCHMARK(BM_ShadowGetOrCreateHot);

void BM_ShadowGetOrCreateSpread(benchmark::State &State) {
  ShadowMemory<uint64_t> Shadow;
  MemAddr Addr = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Shadow.getOrCreate(Addr));
    Addr += 64;
  }
}
BENCHMARK(BM_ShadowGetOrCreateSpread);

void BM_VelodromeSharedAccess(benchmark::State &State) {
  VelodromeChecker Velodrome;
  Velodrome.onProgramStart(0);
  Velodrome.onTaskSpawn(0, nullptr, 1);
  Velodrome.onTaskSpawn(0, nullptr, 2);
  for (auto _ : State) {
    Velodrome.onRead(1, 0x500000);
    Velodrome.onRead(2, 0x500000);
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_VelodromeSharedAccess);

void BM_PaperLiteralVsComplete(benchmark::State &State) {
  // Per-access cost of the completeness fixes (extra checks + dual slots).
  AtomicityChecker::Options Opts;
  Opts.ExtraInterleaverChecks = State.range(0) != 0;
  Opts.CompleteMetadata = State.range(0) != 0;
  AtomicityChecker Checker(Opts);
  Checker.onProgramStart(0);
  Checker.onTaskSpawn(0, nullptr, 1);
  Checker.onTaskSpawn(0, nullptr, 2);
  Checker.onWrite(1, 0x600000);
  Checker.onRead(1, 0x600000);
  for (auto _ : State) {
    Checker.onRead(2, 0x600000);
    Checker.onWrite(2, 0x600000);
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_PaperLiteralVsComplete)->Arg(0)->Arg(1)->ArgNames({"complete"});

/// The access-path cache's verdict tier head to head with the full slow
/// path: one step re-reading a promoted location, with the cache on
/// (verdict hit, no shadow walk / snapshot / location lock) vs off.
void BM_RepeatedAccessCacheOnOff(benchmark::State &State) {
  AtomicityChecker::Options Opts;
  Opts.EnableAccessCache = State.range(0) != 0;
  AtomicityChecker Checker(Opts);
  Checker.onProgramStart(0);
  Checker.onTaskSpawn(0, nullptr, 1);
  Checker.onRead(1, 0x800000);
  Checker.onRead(1, 0x800000); // promotes RR: further reads are redundant
  for (auto _ : State)
    Checker.onRead(1, 0x800000);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RepeatedAccessCacheOnOff)->Arg(0)->Arg(1)->ArgNames({"cache"});

/// Worst case for the direct-mapped cache: two addresses fighting over one
/// slot of a deliberately tiny table. The claim() aging policy keeps the
/// resident entry in place while the neighbor's conflicts stay store-free,
/// so the measured cost is the probe plus the periodic displacement.
void BM_AccessCacheCollisionThrash(benchmark::State &State) {
  AtomicityChecker::Options Opts;
  Opts.AccessCacheSlots = 2;
  AtomicityChecker Checker(Opts);
  Checker.onProgramStart(0);
  Checker.onTaskSpawn(0, nullptr, 1);
  // Find two tracked addresses that share a slot in a 2-slot table.
  AccessCache<int, int> Probe;
  Probe.init(2);
  MemAddr A = 0x900000;
  MemAddr B = A + 8;
  while (Probe.slotIndexFor(B) != Probe.slotIndexFor(A))
    B += 8;
  for (auto _ : State) {
    Checker.onWrite(1, A);
    Checker.onWrite(1, B);
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_AccessCacheCollisionThrash);

/// Per-access checker cost under each parallelism-query mode: two parallel
/// tasks hammering one shared location, so every access runs a Par()
/// query end to end through the configured algorithm.
void BM_SharedReadByQueryMode(benchmark::State &State) {
  AtomicityChecker::Options Opts;
  Opts.Query = static_cast<QueryMode>(State.range(0));
  AtomicityChecker Checker(Opts);
  Checker.onProgramStart(0);
  Checker.onTaskSpawn(0, nullptr, 1);
  Checker.onTaskSpawn(0, nullptr, 2);
  for (auto _ : State) {
    Checker.onRead(1, 0x700000);
    Checker.onRead(2, 0x700000);
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_SharedReadByQueryMode)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"mode"});

/// The disabled-instrumentation contract (DESIGN.md §9): with no session
/// active a span site costs one relaxed load and one predicted branch, so
/// this should be indistinguishable from an empty loop.
void BM_ObsSpanDisabled(benchmark::State &State) {
  for (auto _ : State) {
    AVC_OBS_SPAN(obs::Cat::Checker, "bench/span");
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

/// Enabled cost per span (two clock reads + two ring pushes); the tiny
/// ring wraps constantly, which is the steady state of an over-long run.
void BM_ObsSpanEnabled(benchmark::State &State) {
  obs::SessionOptions Opts;
  Opts.RingCapacity = size_t(1) << 12;
  if (!obs::beginSession(Opts)) {
    State.SkipWithError("an obs session was already active");
    return;
  }
  for (auto _ : State) {
    AVC_OBS_SPAN(obs::Cat::Checker, "bench/span");
    benchmark::ClobberMemory();
  }
  State.SetItemsProcessed(State.iterations());
  obs::abandonSession();
}
BENCHMARK(BM_ObsSpanEnabled);

} // namespace

int main(int argc, char **argv) {
  return avc::bench::runMicroBenchmarks(argc, argv);
}
