//===- bench/fig13_threads.cpp - Fig 13 overhead across worker counts -----===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The multicore companion to fig13_overhead: per benchmark and per worker
/// count (1/2/4/8), the checker's slowdown over an uninstrumented run *at
/// the same worker count*. The ratio isolates the checker's own
/// synchronization cost from the runtime's parallel speedup (or
/// oversubscription cost): if the sharded metadata, the seqlock probe, and
/// the thread-private fast paths do their job, the overhead column stays
/// flat as workers are added; a checker that funnels its accesses through
/// contended locks shows a rising curve instead. The per-count geomeans
/// and their 8-vs-1 ratio are exported for the CI scaling gate
/// (tools/bench_compare.py --key=scaling_t8_over_t1 --max-value=1.5).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace avc;
using namespace avc::bench;
using namespace avc::workloads;

int main(int argc, char **argv) {
  BenchConfig Config = parseArgs(argc, argv);
  constexpr unsigned ThreadCounts[] = {1, 2, 4, 8};

  std::printf("Figure 13 across workers: checker slowdown vs uninstrumented "
              "baseline at the same worker count (scale=%.2f, reps=%u, "
              "query-mode=%s)\n",
              Config.Scale, Config.Reps, queryModeName(Config.Query));
  JsonReport Report;
  Report.meta("experiment", "fig13_threads");
  Report.meta("scale", Config.Scale);
  Report.meta("reps", static_cast<double>(Config.Reps));
  Report.meta("query_mode", queryModeName(Config.Query));
  std::printf("%-14s %8s %10s %10s %8s\n", "benchmark", "threads", "base(ms)",
              "ours(ms)", "ours(x)");

  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  std::vector<double> Slowdowns[4];

  for (size_t I = 0; I < Count; ++I) {
    const Workload &W = Table[I];
    for (unsigned TI = 0; TI < 4; ++TI) {
      BenchConfig ThreadConfig = Config;
      ThreadConfig.Threads = ThreadCounts[TI];
      // Interleave the two configurations across repetitions: slow machine
      // drift then shifts both columns equally instead of biasing one.
      double Base = 0, Ours = 0;
      for (unsigned R = 0; R < Config.Reps; ++R) {
        Base += timeOnce(W, baselineOptions(ThreadConfig), Config.Scale);
        Ours += timeOnce(W, checkerOptions(ThreadConfig, DpstLayout::Array),
                         Config.Scale);
      }
      Base /= Config.Reps;
      Ours /= Config.Reps;
      double OursX = Ours / Base;
      Slowdowns[TI].push_back(OursX);
      std::printf("%-14s %8u %10.2f %10.2f %7.2fx\n", W.Name,
                  ThreadCounts[TI], Base * 1e3, Ours * 1e3, OursX);
      Report.row()
          .field("benchmark", W.Name)
          .field("threads", static_cast<double>(ThreadCounts[TI]))
          .field("base_ms", Base * 1e3)
          .field("ours_ms", Ours * 1e3)
          .field("ours_x", OursX);
    }
  }

  double Geomeans[4];
  for (unsigned TI = 0; TI < 4; ++TI) {
    Geomeans[TI] = geometricMean(Slowdowns[TI]);
    char Key[32];
    std::snprintf(Key, sizeof(Key), "geomean_t%u_x", ThreadCounts[TI]);
    Report.meta(Key, Geomeans[TI]);
    std::printf("%-14s %8u %10s %10s %7.2fx\n", "geomean", ThreadCounts[TI],
                "", "", Geomeans[TI]);
  }
  double Scaling = Geomeans[3] / Geomeans[0];
  Report.meta("scaling_t8_over_t1", Scaling);
  std::printf("\n8-worker vs 1-worker overhead ratio: %.2fx "
              "(flat = 1.0; the CI gate requires <= 1.5)\n",
              Scaling);
  if (!Config.JsonPath.empty() && !Report.write(Config.JsonPath))
    return 1;
  return 0;
}
