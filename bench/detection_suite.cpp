//===- bench/detection_suite.cpp - Section 4 detection validation ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Regenerates the paper's detection results (Section 4, "Detection of
/// atomicity violations"):
///  - the 36-program suite lives in tests/ViolationSuiteTest.cpp (run via
///    ctest); this binary covers the trace-generator half: "Our prototype
///    successfully detects all atomicity violations for a given input by
///    examining one execution trace";
///  - per generated program, the optimized checker's per-location verdicts
///    are compared against the unbounded-history reference on a *serial*
///    observation and on randomized schedules, and against Velodrome to
///    quantify how much a trace-bound tool misses.
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <set>

#include "checker/AtomicityChecker.h"
#include "checker/BasicChecker.h"
#include "checker/Velodrome.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

std::set<MemAddr> checkerVerdicts(const Trace &Events, bool PaperLiteral) {
  AtomicityChecker::Options Opts;
  if (PaperLiteral) {
    Opts.ExtraInterleaverChecks = false;
    Opts.CompleteMetadata = false;
  }
  AtomicityChecker Checker(Opts);
  replayTrace(Events, Checker);
  std::set<MemAddr> Found;
  for (const Violation &V : Checker.violations().snapshot())
    Found.insert(V.Addr);
  return Found;
}

std::set<MemAddr> referenceVerdicts(const Trace &Events) {
  BasicChecker Checker;
  replayTrace(Events, Checker);
  std::set<MemAddr> Found;
  for (const Violation &V : Checker.violations().snapshot())
    Found.insert(V.Addr);
  return Found;
}

size_t velodromeCount(const Trace &Events) {
  VelodromeChecker Checker;
  replayTrace(Events, Checker);
  return Checker.numViolations();
}

} // namespace

int main(int argc, char **argv) {
  unsigned NumPrograms = 600;
  for (int I = 1; I < argc; ++I)
    if (std::sscanf(argv[I], "--programs=%u", &NumPrograms) == 1)
      break;

  unsigned Buggy = 0;
  unsigned SerialAgree = 0, RandomAgree = 0;
  unsigned LiteralMisses = 0;
  unsigned VeloFoundSerial = 0, VeloFoundRandom = 0;

  for (uint64_t Seed = 1; Seed <= NumPrograms; ++Seed) {
    TraceGenOptions Opts;
    Opts.Seed = Seed;
    Opts.NumTasks = 4 + Seed % 12;
    Opts.NumLocations = 1 + Seed % 4;
    Opts.NumLocks = Seed % 3;
    Opts.MaxOpsPerTask = 4 + Seed % 8;
    Opts.LockedFraction = (Seed % 4) * 0.2;
    Opts.SyncFraction = (Seed % 5) * 0.08;
    GenProgram Program = generateProgram(Opts);

    Trace Serial = linearizeSerial(Program);
    Trace Random = linearizeRandom(Program, Seed * 101 + 7);

    std::set<MemAddr> Reference = referenceVerdicts(Serial);
    if (!Reference.empty())
      ++Buggy;
    if (checkerVerdicts(Serial, /*PaperLiteral=*/false) == Reference)
      ++SerialAgree;
    if (checkerVerdicts(Random, /*PaperLiteral=*/false) == Reference)
      ++RandomAgree;
    if (checkerVerdicts(Serial, /*PaperLiteral=*/true) != Reference)
      ++LiteralMisses;
    if (!Reference.empty()) {
      // A serial observation hides interleavings from trace-bound tools.
      if (velodromeCount(Serial) > 0)
        ++VeloFoundSerial;
      if (velodromeCount(Random) > 0)
        ++VeloFoundRandom;
    }
  }

  std::printf("Detection validation over %u generated programs "
              "(Section 4 trace-generator experiment)\n",
              NumPrograms);
  std::printf("  programs containing violations (reference oracle): %u\n",
              Buggy);
  std::printf("  our checker matches the oracle on the serial trace:  %u/%u\n",
              SerialAgree, NumPrograms);
  std::printf("  our checker matches on a randomized schedule:        %u/%u\n",
              RandomAgree, NumPrograms);
  std::printf("  paper-literal metadata diverged on:                  %u "
              "programs (documented completeness gaps)\n",
              LiteralMisses);
  std::printf("  Velodrome (trace-bound) detects from serial trace:   %u/%u "
              "buggy programs\n",
              VeloFoundSerial, Buggy);
  std::printf("  Velodrome detects from one randomized schedule:      %u/%u "
              "buggy programs\n",
              VeloFoundRandom, Buggy);
  std::printf("\nShape: our checker finds every violation from a single "
              "trace regardless of the schedule; Velodrome only sees what "
              "the schedule exposes (0 from serial traces).\n");
  return (SerialAgree == NumPrograms && RandomAgree == NumPrograms) ? 0 : 1;
}
