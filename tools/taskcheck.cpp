//===- tools/taskcheck.cpp - Command-line front end ------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
//
// One binary that drives everything in the repository:
//
//   taskcheck --list
//       enumerate tools and built-in workloads
//   taskcheck --tool=atomicity --workload=kmeans [--scale=1] [--threads=4]
//       run a benchmark kernel under a tool, print findings + statistics
//   taskcheck --tool=race --trace=trace.txt
//       replay a recorded/generated trace file into a tool
//   taskcheck --generate --seed=7 --tasks=12 [--random-schedule]
//       print a generated program's trace (pipe into --trace=- later)
//   taskcheck --tool=atomicity --trace=trace.txt --dot
//       additionally dump the DPST as Graphviz
//   taskcheck --tool=atomicity --workload=kmeans --trace-out=run.avctrace
//       record the workload's event stream straight to a binary trace
//   taskcheck convert in.txt out.avctrace
//       convert between the text and binary trace formats (by sniffing)
//   taskcheck batch --tool=race --workers=8 traces/ extra.avctrace
//       check a fleet of stored traces in parallel, one JSON report
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "checker/AtomicityChecker.h"
#include "checker/ToolRegistry.h"
#include "dpst/DpstDot.h"
#include "instrument/ToolContext.h"
#include "obs/Obs.h"
#include "support/ArgParse.h"
#include "support/JsonReport.h"
#include "support/Timing.h"
#include "trace/BatchReplay.h"
#include "trace/ServeLoop.h"
#include "trace/TraceCodec.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceIO.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"
#include "workloads/Workloads.h"

using namespace avc;

namespace {

struct CliOptions {
  std::string Tool = "atomicity";
  std::string Workload;
  std::string TraceFile;
  bool List = false;
  bool Generate = false;
  bool RandomSchedule = false;
  bool Dot = false;
  /// Access-path cache configuration (--access-cache=on|off|<slots>).
  bool CacheEnabled = true;
  unsigned CacheSlots = DefaultAccessCacheSlots;
  /// Site pre-analysis front end (--preanalysis=on|off|profile:N).
  PreanalysisMode Preanalysis = PreanalysisMode::Off;
  uint32_t PreanalysisWarmup = DefaultPreanalysisWarmup;
  /// Machine-readable per-run counters destination (--json=PATH).
  std::string JsonPath;
  /// Observability-trace destination (--profile=PATH, Perfetto-loadable).
  std::string ProfilePath;
  /// Binary recording destination for workload runs (--trace-out=PATH).
  std::string TraceOutPath;
  double Scale = 1.0;
  unsigned Threads = 1;
  uint64_t Seed = 1;
  uint32_t Tasks = 10;
  QueryMode Query = QueryMode::Label;
};

int usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [--list]\n"
      "       %s --tool=<t> --workload=<w> [--scale=S] [--threads=N]\n"
      "           [--access-cache=on|off|<slots>]  per-task access-path "
      "cache\n"
      "           [--preanalysis=on|off|profile:N]  site pre-analysis "
      "fast paths\n"
      "           [--query-mode=walk|lift|label]  parallelism-query "
      "algorithm\n"
      "           [--json=PATH]  write per-run counters as JSON\n"
      "           [--profile=PATH]  record a tracing session as a "
      "Perfetto-loadable Chrome trace\n"
      "           [--trace-out=PATH]  record the run as a binary trace\n"
      "       %s --tool=<t> --trace=<file> [--dot]   (text or binary)\n"
      "       %s --generate [--seed=K] [--tasks=N] [--random-schedule]\n"
      "       %s convert <in> <out>  [--block-events=N]\n"
      "       %s batch --tool=<t> [--workers=N] [--json=PATH] "
      "<dir|file>...\n"
      "       %s serve --queue=DIR --tool=<t> [--metrics=PATH] "
      "[--health=PATH] [--results=PATH]\n"
      "tools: %s (default atomicity); --tool=list shows "
      "descriptions\n",
      Prog, Prog, Prog, Prog, Prog, Prog, Prog,
      ToolRegistry::instance().names().c_str());
  return 2;
}

/// Registry names plus the "list" pseudo-value, for --tool= validation.
std::vector<std::string> toolChoices() {
  std::vector<std::string> Choices;
  for (const ToolRegistration &Reg : ToolRegistry::instance().all())
    Choices.push_back(Reg.Name);
  Choices.push_back("list");
  return Choices;
}

/// Prints every registered tool with its one-line description
/// (--tool=list and the --list tool section).
void printToolTable() {
  std::printf("tools:\n");
  for (const ToolRegistration &Reg : ToolRegistry::instance().all())
    std::printf("  %-12s %s\n", Reg.Name.c_str(), Reg.Description.c_str());
}

/// Registers the analysis-configuration options every command shares
/// (query mode, access cache, pre-analysis) on \p Parser.
void addAnalysisOptions(ArgParser &Parser, CliOptions &Opts) {
  Parser
      .option("query-mode",
              [&Opts](const char *V) {
                if (parseQueryMode(V, Opts.Query))
                  return true;
                std::fprintf(stderr, "error: unknown query mode '%s'\n", V);
                return false;
              })
      .option("access-cache",
              [&Opts](const char *V) {
                if (std::strcmp(V, "on") == 0) {
                  Opts.CacheEnabled = true;
                  Opts.CacheSlots = DefaultAccessCacheSlots;
                  return true;
                }
                if (std::strcmp(V, "off") == 0) {
                  Opts.CacheEnabled = false;
                  return true;
                }
                char *End = nullptr;
                unsigned long Slots = std::strtoul(V, &End, 10);
                if (End == V || *End != '\0' || Slots == 0) {
                  std::fprintf(stderr,
                               "error: --access-cache wants on, off, or a "
                               "slot count, got '%s'\n",
                               V);
                  return false;
                }
                Opts.CacheEnabled = true;
                Opts.CacheSlots = static_cast<unsigned>(Slots);
                return true;
              })
      .option("preanalysis",
              [&Opts](const char *V) {
                if (std::strcmp(V, "on") == 0) {
                  Opts.Preanalysis = PreanalysisMode::On;
                  Opts.PreanalysisWarmup = DefaultPreanalysisWarmup;
                  return true;
                }
                if (std::strcmp(V, "off") == 0) {
                  Opts.Preanalysis = PreanalysisMode::Off;
                  return true;
                }
                if (std::strncmp(V, "profile:", 8) == 0) {
                  char *End = nullptr;
                  unsigned long N = std::strtoul(V + 8, &End, 10);
                  if (End != V + 8 && *End == '\0' && N > 0 &&
                      N <= ~0u) {
                    Opts.Preanalysis = PreanalysisMode::Profile;
                    Opts.PreanalysisWarmup = static_cast<uint32_t>(N);
                    return true;
                  }
                }
                std::fprintf(stderr,
                             "error: --preanalysis wants on, off, or "
                             "profile:N, got '%s'\n",
                             V);
                return false;
              });
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  ArgParser Parser;
  Parser.choiceOption("tool", Opts.Tool, toolChoices)
      .stringOption("workload", Opts.Workload)
      .stringOption("trace", Opts.TraceFile)
      .doubleOption("scale", Opts.Scale)
      .unsignedOption("threads", Opts.Threads)
      .u64Option("seed", Opts.Seed)
      .u32Option("tasks", Opts.Tasks)
      .stringOption("json", Opts.JsonPath)
      .stringOption("profile", Opts.ProfilePath)
      .stringOption("trace-out", Opts.TraceOutPath)
      .flag("list", Opts.List)
      .flag("generate", Opts.Generate)
      .flag("random-schedule", Opts.RandomSchedule)
      .flag("dot", Opts.Dot)
      .removed("no-filter", "was removed; use --access-cache=off");
  addAnalysisOptions(Parser, Opts);
  return Parser.parse(Argc, Argv);
}

/// Resolves \p Name against the registry; on failure prints an error
/// carrying the full tool listing and returns null.
const ToolRegistration *resolveTool(const std::string &Name) {
  const ToolRegistration *Reg = ToolRegistry::instance().find(Name);
  if (!Reg)
    std::fprintf(stderr, "error: unknown tool '%s' (tools: %s)\n",
                 Name.c_str(), ToolRegistry::instance().names().c_str());
  return Reg;
}

int listEverything() {
  printToolTable();
  std::printf("\nworkloads (Table 1 order):\n");
  size_t Count = 0;
  const workloads::Workload *Table = workloads::allWorkloads(Count);
  for (size_t I = 0; I < Count; ++I)
    std::printf("  %s\n", Table[I].Name);
  return 0;
}

int generateTrace(const CliOptions &Opts) {
  TraceGenOptions GenOpts;
  GenOpts.Seed = Opts.Seed;
  GenOpts.NumTasks = Opts.Tasks;
  GenOpts.NumLocations = 3;
  GenOpts.NumLocks = 2;
  GenOpts.LockedFraction = 0.3;
  GenProgram Program = generateProgram(GenOpts);
  Trace Events = Opts.RandomSchedule
                     ? linearizeRandom(Program, Opts.Seed * 31 + 1)
                     : linearizeSerial(Program);
  std::fputs(traceToText(Events).c_str(), stdout);
  return 0;
}

//===----------------------------------------------------------------------===//
// Machine-readable per-run counters (--json=PATH)
//===----------------------------------------------------------------------===//

/// Shared meta block for every taskcheck JSON report.
void jsonMeta(JsonReport &Report, const CliOptions &Opts, ToolKind Kind,
              const char *Source) {
  Report.meta("experiment", "taskcheck");
  Report.meta("tool", toolKindName(Kind));
  Report.meta("source", Source);
  Report.meta("query_mode", queryModeName(Opts.Query));
  Report.meta("access_cache", Opts.CacheEnabled ? "on" : "off");
  Report.meta("access_cache_slots",
              Opts.CacheEnabled ? double(Opts.CacheSlots) : 0.0);
  Report.meta("preanalysis", preanalysisModeName(Opts.Preanalysis));
  if (Opts.Preanalysis != PreanalysisMode::Off)
    Report.meta("preanalysis_warmup", double(Opts.PreanalysisWarmup));
}

bool writeJsonIfRequested(const CliOptions &Opts, JsonReport &Report) {
  if (Opts.JsonPath.empty())
    return true;
  return Report.write(Opts.JsonPath);
}

/// RAII observability session for offline trace replay. Workload runs go
/// through ToolContext::run, which manages its own session; the replay
/// path drives a checker directly, so the session brackets the whole
/// replay and the trace is written when this leaves scope (replay is
/// single-threaded, so the drain point is trivially quiescent).
/// Must be declared AFTER the checker it profiles: the end-of-session
/// gauge sample calls into the checker, so the session has to unwind
/// first.
struct ProfileSession {
  std::string Path;
  bool Recording = false;

  explicit ProfileSession(std::string P) : Path(std::move(P)) {
    if (!Path.empty())
      Recording = obs::beginSession();
  }
  ~ProfileSession() {
    if (Recording)
      obs::endSession(Path);
  }
};

/// Reads a whole file (or stdin for "-") into \p Bytes in binary mode.
bool readFileBytes(const std::string &Path, std::string &Bytes) {
  std::stringstream Buffer;
  if (Path == "-") {
    Buffer << std::cin.rdbuf();
  } else {
    std::ifstream Input(Path, std::ios::binary);
    if (!Input) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return false;
    }
    Buffer << Input.rdbuf();
  }
  Bytes = Buffer.str();
  return true;
}

int runTraceFile(const CliOptions &Opts, const ToolRegistration &Reg) {
  std::string Bytes;
  if (!readFileBytes(Opts.TraceFile, Bytes))
    return 1;
  std::string Error;
  std::optional<Trace> Events = parseTraceAuto(Bytes, &Error);
  if (!Events) {
    std::fprintf(stderr, "error: %s: %s\n", Opts.TraceFile.c_str(),
                 Error.c_str());
    return 1;
  }

  // Pseudo-tools with no factory (none) only parse and count.
  if (!Reg.Factory) {
    ProfileSession Profile(Opts.ProfilePath);
    std::printf("[none] trace parsed: %zu events\n", Events->size());
    JsonReport Report;
    jsonMeta(Report, Opts, Reg.Kind, "trace");
    Report.row().field("events", double(Events->size()));
    if (!writeJsonIfRequested(Opts, Report))
      return 1;
    return 0;
  }

  // Offline replay: one engine instance built through the registry, driven
  // and reported entirely through the CheckerTool interface.
  ToolOptions ToolOpts;
  ToolOpts.EnableAccessCache = Opts.CacheEnabled;
  ToolOpts.AccessCacheSlots = Opts.CacheSlots;
  ToolOpts.Query = Opts.Query;
  ToolOpts.Preanalysis = Opts.Preanalysis;
  ToolOpts.PreanalysisWarmup = Opts.PreanalysisWarmup;
  std::unique_ptr<CheckerTool> Tool = Reg.Factory(ToolOpts, nullptr);
  ProfileSession Profile(Opts.ProfilePath);
  Tool->registerObsGauges();
  replayTraceTwoPass(*Events, *Tool);
  std::printf("[%s] %zu violation(s)\n", Tool->name(),
              Tool->numViolations());
  Tool->printReport(stdout);
  Tool->printStats(stdout);
  if (Opts.Dot)
    if (const AtomicityChecker *Checker =
            dynamic_cast<const AtomicityChecker *>(Tool.get()))
      std::printf("\n%s", dpstToDot(Checker->dpst()).c_str());
  JsonReport Report;
  jsonMeta(Report, Opts, Reg.Kind, "trace");
  Tool->emitJsonStats(Report.row());
  if (!writeJsonIfRequested(Opts, Report))
    return 1;
  return Tool->numViolations() == 0 ? 0 : 1;
}

int runWorkload(const CliOptions &Opts, ToolKind Kind) {
  size_t Count = 0;
  const workloads::Workload *Table = workloads::allWorkloads(Count);
  const workloads::Workload *Chosen = nullptr;
  for (size_t I = 0; I < Count; ++I)
    if (Opts.Workload == Table[I].Name)
      Chosen = &Table[I];
  if (!Chosen) {
    std::fprintf(stderr, "error: unknown workload '%s' (see --list)\n",
                 Opts.Workload.c_str());
    return 1;
  }

  ToolContext::Options ToolOpts;
  ToolOpts.Tool = Kind;
  ToolOpts.Checker.NumThreads = Opts.Threads;
  ToolOpts.Checker.EnableAccessCache = Opts.CacheEnabled;
  ToolOpts.Checker.AccessCacheSlots = Opts.CacheSlots;
  ToolOpts.Checker.Query = Opts.Query;
  ToolOpts.Checker.Preanalysis = Opts.Preanalysis;
  ToolOpts.Checker.PreanalysisWarmup = Opts.PreanalysisWarmup;
  ToolOpts.Checker.ProfilePath = Opts.ProfilePath;
  ToolContext Tool(ToolOpts);
  TraceRecorder Recorder;
  if (!Opts.TraceOutPath.empty())
    Tool.runtime().addObserver(&Recorder);
  Timer T;
  Tool.run([&] { Chosen->Run(Opts.Scale); });
  double Seconds = T.elapsedSeconds();

  if (!Opts.TraceOutPath.empty()) {
    std::string Encoded = encodeTrace(Recorder.trace());
    std::ofstream Out(Opts.TraceOutPath, std::ios::binary);
    if (!Out || !Out.write(Encoded.data(), std::streamsize(Encoded.size()))) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   Opts.TraceOutPath.c_str());
      return 1;
    }
    const TraceRecorderStats &RecStats = Recorder.stats();
    std::printf("recorded %llu events to %s (%llu buffers, %llu runs, "
                "%llu contended merges)\n",
                static_cast<unsigned long long>(RecStats.NumEvents),
                Opts.TraceOutPath.c_str(),
                static_cast<unsigned long long>(RecStats.NumWorkerBuffers),
                static_cast<unsigned long long>(RecStats.NumRuns),
                static_cast<unsigned long long>(RecStats.NumContendedMerges));
  }

  Tool.printReport();
  std::printf("wall time: %.1f ms (%s, scale %.2f, %u thread(s))\n",
              Seconds * 1e3, toolKindName(Kind), Opts.Scale, Opts.Threads);
  if (const CheckerTool *Engine = Tool.tool())
    Engine->printStats(stdout);

  if (!Opts.JsonPath.empty()) {
    JsonReport Report;
    jsonMeta(Report, Opts, Kind, "workload");
    Report.meta("workload", Opts.Workload);
    Report.meta("scale", Opts.Scale);
    Report.meta("threads", double(Opts.Threads));
    JsonReport::Row &Row = Report.row();
    Row.field("wall_ms", Seconds * 1e3);
    if (const CheckerTool *Engine = Tool.tool())
      Engine->emitJsonStats(Row);
    if (!Report.write(Opts.JsonPath))
      return 1;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// taskcheck convert <in> <out>
//===----------------------------------------------------------------------===//

/// Converts between the text and binary trace formats. Direction follows
/// the input: binary input decodes to text, text input encodes to binary.
int runConvert(int Argc, char **Argv, const char *Prog) {
  uint32_t BlockEvents = DefaultTraceBlockEvents;
  ArgParser Parser;
  Parser.u32Option("block-events", BlockEvents);
  if (!Parser.parseKnown(Argc, Argv) || Argc != 3) {
    std::fprintf(stderr,
                 "usage: %s convert <in> <out> [--block-events=N]\n", Prog);
    return 2;
  }
  std::string InPath = Argv[1], OutPath = Argv[2];
  if (BlockEvents == 0) {
    std::fprintf(stderr, "error: --block-events must be positive\n");
    return 2;
  }

  std::string Bytes;
  if (!readFileBytes(InPath, Bytes))
    return 1;
  std::string Error;
  std::optional<Trace> Events = parseTraceAuto(Bytes, &Error);
  if (!Events) {
    std::fprintf(stderr, "error: %s: %s\n", InPath.c_str(), Error.c_str());
    return 1;
  }
  bool ToText = isBinaryTrace(Bytes);
  std::string Out =
      ToText ? traceToText(*Events) : encodeTrace(*Events, BlockEvents);
  std::ofstream Output(OutPath, std::ios::binary);
  if (!Output || !Output.write(Out.data(), std::streamsize(Out.size()))) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("converted %zu events to %s: %zu -> %zu bytes (%.1f%%)\n",
              Events->size(), ToText ? "text" : "binary", Bytes.size(),
              Out.size(),
              Bytes.empty() ? 0.0 : 100.0 * double(Out.size()) /
                                        double(Bytes.size()));
  return 0;
}

//===----------------------------------------------------------------------===//
// taskcheck batch --tool=<t> <dir|file>...
//===----------------------------------------------------------------------===//

/// Expands the positional arguments into a flat trace list: directories
/// contribute their regular files in sorted order, everything else is
/// taken verbatim.
bool expandTracePaths(int Argc, char **Argv,
                      std::vector<std::string> &Paths) {
  namespace fs = std::filesystem;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--", 2) == 0) {
      // parseKnown leaves unknown flags behind; a typo must not silently
      // become a trace path.
      std::fprintf(stderr, "error: unknown argument '%s'\n", Argv[I]);
      return false;
    }
    std::error_code Ec;
    if (fs::is_directory(Argv[I], Ec)) {
      std::vector<std::string> Dir;
      for (const fs::directory_entry &Entry :
           fs::directory_iterator(Argv[I], Ec))
        if (Entry.is_regular_file())
          Dir.push_back(Entry.path().string());
      if (Ec) {
        std::fprintf(stderr, "error: cannot list %s: %s\n", Argv[I],
                     Ec.message().c_str());
        return false;
      }
      std::sort(Dir.begin(), Dir.end());
      Paths.insert(Paths.end(), Dir.begin(), Dir.end());
    } else {
      Paths.push_back(Argv[I]);
    }
  }
  return true;
}

int runBatchCommand(int Argc, char **Argv, const char *Prog) {
  CliOptions Opts;
  unsigned Workers = 1;
  ArgParser Parser;
  Parser
      .choiceOption("tool", Opts.Tool,
                    [] {
                      std::vector<std::string> Choices;
                      for (const ToolRegistration &Reg :
                           ToolRegistry::instance().all())
                        Choices.push_back(Reg.Name);
                      return Choices;
                    })
      .unsignedOption("workers", Workers)
      .stringOption("json", Opts.JsonPath);
  addAnalysisOptions(Parser, Opts);
  // parseKnown: flags are consumed, the trace paths survive as
  // positionals.
  if (!Parser.parseKnown(Argc, Argv)) {
    std::fprintf(stderr,
                 "usage: %s batch --tool=<t> [--workers=N] [--json=PATH] "
                 "[--preanalysis=...] [--query-mode=...] "
                 "[--access-cache=...] <dir|file>...\n",
                 Prog);
    return 2;
  }

  const ToolRegistration *Reg = resolveTool(Opts.Tool);
  if (!Reg)
    return 2;
  if (!Opts.JsonPath.empty() && !ensureWritableFile(Opts.JsonPath)) {
    std::fprintf(stderr, "error: --json path '%s' is not writable\n",
                 Opts.JsonPath.c_str());
    return 2;
  }

  std::vector<std::string> Paths;
  if (!expandTracePaths(Argc, Argv, Paths))
    return 2;
  if (Paths.empty()) {
    std::fprintf(stderr, "error: no traces given (pass files or a "
                         "directory)\n");
    return 2;
  }

  BatchOptions BatchOpts;
  BatchOpts.Tool = Reg->Kind;
  BatchOpts.Checker.Query = Opts.Query;
  BatchOpts.Checker.Preanalysis = Opts.Preanalysis;
  BatchOpts.Checker.PreanalysisWarmup = Opts.PreanalysisWarmup;
  BatchOpts.Checker.EnableAccessCache = Opts.CacheEnabled;
  BatchOpts.Checker.AccessCacheSlots = Opts.CacheSlots;
  BatchOpts.NumWorkers = Workers;

  BatchResult Result = runBatch(Paths, BatchOpts);
  for (const BatchTraceResult &Trace : Result.Traces) {
    if (!Trace.ok())
      std::printf("  %-40s ERROR: %s\n", Trace.Path.c_str(),
                  Trace.Error.c_str());
    else
      std::printf("  %-40s %8llu events  %4llu violation(s)  %8.1f ms\n",
                  Trace.Path.c_str(),
                  static_cast<unsigned long long>(Trace.NumEvents),
                  static_cast<unsigned long long>(Trace.NumViolations),
                  Trace.WallMs);
  }
  std::printf("[batch:%s] %zu trace(s), %llu events, %llu violation(s) in "
              "%llu trace(s), %llu error(s); %.1f ms with %u worker(s)\n",
              Reg->Name.c_str(), Result.Traces.size(),
              static_cast<unsigned long long>(Result.TotalEvents),
              static_cast<unsigned long long>(Result.TotalViolations),
              static_cast<unsigned long long>(Result.NumFlagged),
              static_cast<unsigned long long>(Result.NumFailed),
              Result.WallMs, Workers);

  if (!Opts.JsonPath.empty()) {
    JsonReport Report;
    batchToJson(Result, BatchOpts, Report);
    if (!Report.write(Opts.JsonPath))
      return 2;
  }
  return Result.exitCode();
}

//===----------------------------------------------------------------------===//
// taskcheck serve --queue=DIR --tool=<t>
//===----------------------------------------------------------------------===//

int runServeCommand(int Argc, char **Argv, const char *Prog) {
  CliOptions Opts;
  ServeOptions Serve;
  unsigned Workers = 1;
  ArgParser Parser;
  Parser
      .choiceOption("tool", Opts.Tool,
                    [] {
                      std::vector<std::string> Choices;
                      for (const ToolRegistration &Reg :
                           ToolRegistry::instance().all())
                        Choices.push_back(Reg.Name);
                      return Choices;
                    })
      .unsignedOption("workers", Workers)
      .stringOption("queue", Serve.QueueDir)
      .stringOption("metrics", Serve.MetricsPath)
      .stringOption("health", Serve.HealthPath)
      .stringOption("results", Serve.ResultsPath)
      .u64Option("poll-ms", Serve.PollMs)
      .u64Option("snapshot-ms", Serve.SnapshotMs)
      .unsignedOption("max-batch", Serve.MaxBatch);
  addAnalysisOptions(Parser, Opts);
  if (!Parser.parse(Argc, Argv) || Serve.QueueDir.empty() ||
      Serve.MaxBatch == 0) {
    std::fprintf(stderr,
                 "usage: %s serve --queue=DIR --tool=<t> [--workers=N] "
                 "[--metrics=PATH] [--health=PATH] [--results=PATH] "
                 "[--poll-ms=N] [--snapshot-ms=N] [--max-batch=N] "
                 "[--preanalysis=...] [--query-mode=...] "
                 "[--access-cache=...]\n"
                 "note: keep --metrics/--health/--results outside the "
                 "queue directory (top-level queue files are claimed as "
                 "traces)\n",
                 Prog);
    return 2;
  }

  const ToolRegistration *Reg = resolveTool(Opts.Tool);
  if (!Reg)
    return 2;

  Serve.Batch.Tool = Reg->Kind;
  Serve.Batch.Checker.Query = Opts.Query;
  Serve.Batch.Checker.Preanalysis = Opts.Preanalysis;
  Serve.Batch.Checker.PreanalysisWarmup = Opts.PreanalysisWarmup;
  Serve.Batch.Checker.EnableAccessCache = Opts.CacheEnabled;
  Serve.Batch.Checker.AccessCacheSlots = Opts.CacheSlots;
  Serve.Batch.NumWorkers = Workers;

  std::printf("[serve:%s] draining %s with %u worker(s); touch %s/stop to "
              "shut down\n",
              Reg->Name.c_str(), Serve.QueueDir.c_str(), Workers,
              Serve.QueueDir.c_str());
  ServeStats Stats = runServe(Serve);
  if (!Stats.Ok) {
    std::fprintf(stderr, "error: %s\n", Stats.Error.c_str());
    return 2;
  }
  std::printf("[serve:%s] stop requested: %llu claimed, %llu checked, "
              "%llu failed, %llu violation(s) in %llu trace(s), %llu "
              "claim race(s), %llu heartbeat(s)\n",
              Reg->Name.c_str(),
              static_cast<unsigned long long>(Stats.NumClaimed),
              static_cast<unsigned long long>(Stats.NumChecked),
              static_cast<unsigned long long>(Stats.NumFailed),
              static_cast<unsigned long long>(Stats.NumViolations),
              static_cast<unsigned long long>(Stats.NumFlagged),
              static_cast<unsigned long long>(Stats.NumClaimRaces),
              static_cast<unsigned long long>(Stats.NumHeartbeats));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  // Subcommands first: their argument grammars have positionals the flag
  // parser must not see.
  if (argc >= 2 && std::strcmp(argv[1], "convert") == 0)
    return runConvert(argc - 1, argv + 1, argv[0]);
  if (argc >= 2 && std::strcmp(argv[1], "batch") == 0)
    return runBatchCommand(argc - 1, argv + 1, argv[0]);
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0)
    return runServeCommand(argc - 1, argv + 1, argv[0]);

  CliOptions Opts;
  if (!parseArgs(argc, argv, Opts))
    return usage(argv[0]);
  if (Opts.Tool == "list") {
    printToolTable();
    return 0;
  }
  if (Opts.List)
    return listEverything();
  if (Opts.Generate)
    return generateTrace(Opts);

  // Output destinations fail before the run, not after it.
  if (!Opts.JsonPath.empty() && !ensureWritableFile(Opts.JsonPath)) {
    std::fprintf(stderr, "error: --json path '%s' is not writable\n",
                 Opts.JsonPath.c_str());
    return 1;
  }
  if (!Opts.ProfilePath.empty() && !ensureWritableFile(Opts.ProfilePath)) {
    std::fprintf(stderr, "error: --profile path '%s' is not writable\n",
                 Opts.ProfilePath.c_str());
    return 1;
  }
  if (!Opts.TraceOutPath.empty()) {
    if (Opts.Workload.empty()) {
      std::fprintf(stderr,
                   "error: --trace-out records workload runs; pass "
                   "--workload too\n");
      return 1;
    }
    if (!ensureWritableFile(Opts.TraceOutPath)) {
      std::fprintf(stderr, "error: --trace-out path '%s' is not writable\n",
                   Opts.TraceOutPath.c_str());
      return 1;
    }
  }

  const ToolRegistration *Reg = resolveTool(Opts.Tool);
  if (!Reg)
    return usage(argv[0]);
  if (!Opts.TraceFile.empty())
    return runTraceFile(Opts, *Reg);
  if (!Opts.Workload.empty())
    return runWorkload(Opts, Reg->Kind);
  return usage(argv[0]);
}
