#!/usr/bin/env python3
"""Dump and validate a binary trace file (src/trace/TraceCodec.h).

Reads only the fixed-layout parts of the format -- header, block index,
trailer -- without decoding event payloads, so it stays cheap on huge
files and is an independent (non-C++) check that the on-disk layout
matches the spec:

    file    := header block* index trailer
    header  := "AVCTRACE" magic(8) | version u32 | flags u32
    block   := payload_bytes u32 | num_events u32 | payload
    index   := { offset u64 | payload_bytes u32 | num_events u32 } * blocks
    trailer := index_offset u64 | total_events u64 | num_blocks u32
               | trailer_magic u32 ("AVCT")

All integers little-endian. Exit 0 if the file is structurally valid,
1 otherwise.

    trace_info.py run.avctrace            # validate + summary
    trace_info.py run.avctrace --blocks   # also dump the block index
"""

import argparse
import struct
import sys

MAGIC = b"AVCTRACE"
TRAILER_MAGIC = 0x54435641  # "AVCT" little-endian
HEADER_BYTES = 16
BLOCK_HEADER_BYTES = 8
INDEX_ENTRY_BYTES = 16
TRAILER_BYTES = 24
SUPPORTED_VERSION = 1


def fail(path, message):
    sys.exit(f"error: {path}: {message}")


def read_info(path):
    with open(path, "rb") as f:
        data = f.read()

    if len(data) < HEADER_BYTES + TRAILER_BYTES:
        fail(path, f"file too small ({len(data)} bytes) to be a binary trace")
    if data[:8] != MAGIC:
        fail(path, "bad magic (not a binary trace file)")
    version, flags = struct.unpack_from("<II", data, 8)
    if version != SUPPORTED_VERSION:
        fail(path, f"unsupported format version {version}")
    if flags != 0:
        fail(path, f"unknown flags {flags:#x}")

    index_offset, total_events, num_blocks, trailer_magic = struct.unpack_from(
        "<QQII", data, len(data) - TRAILER_BYTES)
    if trailer_magic != TRAILER_MAGIC:
        fail(path, "bad trailer magic (truncated or corrupt file)")

    index_end = len(data) - TRAILER_BYTES
    if index_offset > index_end:
        fail(path, f"index offset {index_offset} beyond file")
    if index_end - index_offset != num_blocks * INDEX_ENTRY_BYTES:
        fail(path, f"index size mismatch: {index_end - index_offset} bytes "
                   f"for {num_blocks} block(s)")

    blocks = []
    expected_offset = HEADER_BYTES
    event_tally = 0
    for i in range(num_blocks):
        offset, payload_bytes, num_events = struct.unpack_from(
            "<QII", data, index_offset + i * INDEX_ENTRY_BYTES)
        if offset != expected_offset:
            fail(path, f"block {i}: offset {offset}, expected "
                       f"{expected_offset} (blocks must be contiguous)")
        if offset + BLOCK_HEADER_BYTES + payload_bytes > index_offset:
            fail(path, f"block {i}: payload runs past the index")
        hdr_payload, hdr_events = struct.unpack_from("<II", data, offset)
        if (hdr_payload, hdr_events) != (payload_bytes, num_events):
            fail(path, f"block {i}: block header ({hdr_payload}, "
                       f"{hdr_events}) disagrees with index entry "
                       f"({payload_bytes}, {num_events})")
        blocks.append((offset, payload_bytes, num_events))
        expected_offset = offset + BLOCK_HEADER_BYTES + payload_bytes
        event_tally += num_events
    if expected_offset != index_offset:
        fail(path, f"gap between last block and index "
                   f"({expected_offset} vs {index_offset})")
    if event_tally != total_events:
        fail(path, f"block event counts sum to {event_tally}, trailer "
                   f"says {total_events}")

    return len(data), version, total_events, blocks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="binary trace file (*.avctrace)")
    parser.add_argument("--blocks", action="store_true",
                        help="dump the block index")
    args = parser.parse_args()

    size, version, total_events, blocks = read_info(args.trace)
    payload = sum(b[1] for b in blocks)
    print(f"{args.trace}: valid binary trace")
    print(f"  version:       {version}")
    print(f"  file size:     {size} bytes")
    print(f"  events:        {total_events}")
    print(f"  blocks:        {len(blocks)}")
    if total_events:
        print(f"  bytes/event:   {payload / total_events:.2f} (payload only)")
    if args.blocks:
        print(f"  {'block':>7} {'offset':>12} {'payload':>10} {'events':>8}")
        for i, (offset, payload_bytes, num_events) in enumerate(blocks):
            print(f"  {i:>7} {offset:>12} {payload_bytes:>10} "
                  f"{num_events:>8}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
