#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against a committed baseline.

Reads two reports in the repository's {"meta": {...}, "rows": [...]} shape
(support/JsonReport.h) and fails (exit 1) if the watched metric regressed
by more than the allowed fraction. Used by the CI bench-regression smoke:

    bench_compare.py BENCH_fig13_overhead.json fresh.json \
        --key geomean_ours_x --max-regression 0.20

Higher metric values are assumed to be worse (slowdown factors); pass
--lower-is-better=no for throughput-style metrics.

A second mode validates a single report against an absolute bound instead
of a baseline — used for invariants that must hold of the artifact itself,
like the fig13_threads scaling gate (8-worker overhead within 1.5x of
1-worker overhead):

    bench_compare.py BENCH_fig13_threads.json \
        --key scaling_t8_over_t1 --max-value 1.5

or a floor for throughput-style metrics, like the binary trace decode
rate gate:

    bench_compare.py BENCH_trace_scale.json \
        --key decode_events_per_sec --min-value 10000000

A third mode compares two meta keys within one report -- used by the site
pre-analysis gate, which must never make the checker slower than running
with the gate off (with a small noise margin):

    bench_compare.py fig13_preanalysis.json \
        --key geomean_preanalysis_on_x \
        --not-above-key geomean_preanalysis_off_x --margin 0.05
"""

import argparse
import json
import sys


def load_metric(path, key):
    with open(path) as f:
        data = json.load(f)
    meta = data.get("meta", {})
    if key not in meta:
        sys.exit(f"error: {path}: no meta key '{key}' "
                 f"(has: {', '.join(sorted(meta)) or 'none'})")
    value = meta[key]
    if not isinstance(value, (int, float)):
        sys.exit(f"error: {path}: meta.{key} is not numeric: {value!r}")
    return float(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", nargs="?",
                        help="freshly generated JSON (omit with --max-value)")
    parser.add_argument("--key", default="geomean_ours_x",
                        help="meta key to compare (default: geomean_ours_x)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional regression (default: 0.20)")
    parser.add_argument("--max-value", type=float, default=None,
                        help="absolute bound: check meta.KEY of the single "
                             "given report instead of comparing two reports")
    parser.add_argument("--min-value", type=float, default=None,
                        help="absolute floor: fail if meta.KEY of the single "
                             "given report is below this value")
    parser.add_argument("--not-above-key", default=None,
                        help="key-vs-key bound: fail if meta.KEY of the "
                             "single given report exceeds this other meta "
                             "key (times 1 + --margin)")
    parser.add_argument("--margin", type=float, default=0.0,
                        help="allowed fractional slack for --not-above-key "
                             "(default: 0.0)")
    parser.add_argument("--lower-is-better", choices=["yes", "no"],
                        default="yes",
                        help="whether smaller metric values are better")
    args = parser.parse_args()

    if args.not_above_key is not None:
        if args.fresh is not None:
            parser.error("--not-above-key takes a single report")
        if args.max_value is not None:
            parser.error("--not-above-key and --max-value are exclusive")
        value = load_metric(args.baseline, args.key)
        bound = load_metric(args.baseline, args.not_above_key)
        limit = bound * (1.0 + args.margin)
        print(f"{args.key}: {value:.4g} vs {args.not_above_key}: "
              f"{bound:.4g} (limit {limit:.4g}, margin +{args.margin:.0%})")
        if value > limit:
            print(f"FAIL: {args.key} exceeds {args.not_above_key}",
                  file=sys.stderr)
            return 1
        print("OK")
        return 0
    if args.max_value is not None or args.min_value is not None:
        if args.fresh is not None:
            parser.error("--max-value/--min-value take a single report")
        value = load_metric(args.baseline, args.key)
        if args.max_value is not None:
            print(f"{args.key}: {value:.4g} (bound {args.max_value:.4g})")
            if value > args.max_value:
                print(f"FAIL: {args.key} exceeds the absolute bound",
                      file=sys.stderr)
                return 1
        if args.min_value is not None:
            print(f"{args.key}: {value:.4g} (floor {args.min_value:.4g})")
            if value < args.min_value:
                print(f"FAIL: {args.key} is below the absolute floor",
                      file=sys.stderr)
                return 1
        print("OK")
        return 0
    if args.fresh is None:
        parser.error("two reports required unless --max-value or "
                     "--min-value is given")

    baseline = load_metric(args.baseline, args.key)
    fresh = load_metric(args.fresh, args.key)
    if baseline <= 0:
        sys.exit(f"error: baseline {args.key} is non-positive: {baseline}")

    if args.lower_is_better == "yes":
        change = fresh / baseline - 1.0  # positive = got slower = regression
    else:
        change = baseline / fresh - 1.0 if fresh > 0 else float("inf")

    print(f"{args.key}: baseline {baseline:.4g}, fresh {fresh:.4g}, "
          f"change {change:+.1%} (limit +{args.max_regression:.0%})")
    if change > args.max_regression:
        print(f"FAIL: {args.key} regressed beyond the allowed margin",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
