#!/usr/bin/env python3
"""Validate a Prometheus text-exposition snapshot written by
`taskcheck serve --metrics` (src/obs/MetricsExport.cpp).

Lints the exposition format so CI catches a malformed or incomplete
snapshot before a scraper would:

  - every line is a comment (# HELP / # TYPE) or a `name[{labels}] value`
    sample with a valid metric name and a finite numeric value,
  - every sample belongs to a metric announced by a preceding # TYPE, and
    each metric carries exactly one HELP and one TYPE line,
  - counter and gauge metrics expose exactly one sample,
  - histogram metrics expose non-decreasing cumulative buckets with
    increasing le= bounds, a trailing +Inf bucket whose count equals
    `_count`, and a `_sum` sample,
  - every metric passed via --require is present (the serve smoke's
    required-metric whitelist).

    validate_metrics.py metrics.prom --require taskcheck_traces_checked_total ...
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")


def fail(path, message):
    sys.exit(f"error: {path}: {message}")


def parse_value(text):
    if text == "+Inf":
        return math.inf
    try:
        return float(text)
    except ValueError:
        return None


def base_metric(sample_name, types):
    """Maps a histogram series name back to its announced metric."""
    for suffix in ("_bucket", "_sum", "_count"):
        root = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
        if root and types.get(root) == "histogram":
            return root
    return sample_name


def validate(path, required):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail(path, "empty snapshot")

    helps = {}
    types = {}
    samples = {}  # metric -> list of (labels, value)
    for index, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not NAME_RE.match(parts[2]):
                fail(path, f"line {index}: malformed HELP line")
            if parts[2] in helps:
                fail(path, f"line {index}: duplicate HELP for {parts[2]}")
            helps[parts[2]] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not NAME_RE.match(parts[2]):
                fail(path, f"line {index}: malformed TYPE line")
            if parts[3] not in ("counter", "gauge", "histogram"):
                fail(path, f"line {index}: unknown type {parts[3]!r}")
            if parts[2] in types:
                fail(path, f"line {index}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal exposition
        match = SAMPLE_RE.match(line)
        if not match:
            fail(path, f"line {index}: not a valid sample: {line!r}")
        value = parse_value(match.group("value"))
        if value is None or math.isnan(value):
            fail(path, f"line {index}: non-numeric value {match.group('value')!r}")
        metric = base_metric(match.group("name"), types)
        if metric not in types:
            fail(path, f"line {index}: sample {match.group('name')!r} has "
                       f"no preceding # TYPE")
        samples.setdefault(metric, []).append((match.group("labels"), value))

    for metric, kind in types.items():
        if metric not in helps:
            fail(path, f"{metric}: TYPE without HELP")
        series = samples.get(metric)
        if not series:
            fail(path, f"{metric}: announced but exposes no samples")
        if kind in ("counter", "gauge"):
            if len(series) != 1:
                fail(path, f"{metric}: expected one sample, got {len(series)}")
            if kind == "counter" and series[0][1] < 0:
                fail(path, f"{metric}: negative counter")
            continue
        # Histogram: cumulative buckets, +Inf last, then _sum and _count.
        buckets = [(labels, value) for labels, value in series
                   if labels is not None]
        scalars = [(labels, value) for labels, value in series
                   if labels is None]
        if len(scalars) != 2:
            fail(path, f"{metric}: expected _sum and _count, got "
                       f"{len(scalars)} unlabelled samples")
        if len(buckets) < 2:
            fail(path, f"{metric}: needs at least one finite bucket and +Inf")
        last_bound = -math.inf
        last_count = -1
        for labels, value in buckets:
            match = re.match(r'^le="([^"]+)"$', labels)
            if not match:
                fail(path, f"{metric}: bucket with malformed labels "
                           f"{labels!r}")
            bound = parse_value(match.group(1))
            if bound is None:
                fail(path, f"{metric}: bucket bound {match.group(1)!r}")
            if bound <= last_bound:
                fail(path, f"{metric}: bucket bounds not increasing")
            if value < last_count:
                fail(path, f"{metric}: cumulative bucket counts decrease")
            last_bound, last_count = bound, value
        if last_bound != math.inf:
            fail(path, f"{metric}: last bucket must be +Inf")
        count = scalars[1][1]  # _sum renders before _count
        if count != last_count:
            fail(path, f"{metric}: +Inf bucket {last_count} != _count {count}")

    missing = [name for name in required if name not in types]
    if missing:
        fail(path, f"required metric(s) missing: {', '.join(missing)}")

    histograms = sum(1 for kind in types.values() if kind == "histogram")
    print(f"{path} ok: {len(types)} metrics ({histograms} histograms), "
          f"{len(required)} required present")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", help="Prometheus text-exposition file")
    parser.add_argument("--require", nargs="*", default=[],
                        help="metric names that must be present")
    args = parser.parse_args()
    validate(args.snapshot, args.require)


if __name__ == "__main__":
    main()
