#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by `taskcheck --profile`.

Checks the invariants the exporter (src/obs/ObsExport.cpp) promises, so CI
catches a malformed profile before anyone loads it into Perfetto:

  - the file parses as JSON and traceEvents is a non-empty array,
  - every event uses an allowed phase (M, X, C, i, B, E),
  - per tid, B/E events balance as a properly nested name-matched stack
    (sanitizeSpans must have removed every orphan),
  - timestamps are non-decreasing in file order,
  - exactly one obs/self-accounting event exists, and its estimated
    overhead is below --max-overhead-pct when given.

    validate_trace.py run.trace.json [--max-overhead-pct 10]
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"M", "X", "C", "i", "B", "E"}


def fail(path, message):
    sys.exit(f"error: {path}: {message}")


def validate(path, max_overhead_pct):
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as e:
            fail(path, f"not valid JSON: {e}")

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents is missing or empty")

    open_spans = {}  # tid -> stack of open Begin names
    last_ts = None
    self_accounting = []
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ALLOWED_PHASES:
            fail(path, f"event {index}: disallowed phase {phase!r}")
        if phase == "M":
            continue  # metadata rows carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail(path, f"event {index}: missing numeric ts")
        if last_ts is not None and ts < last_ts:
            fail(path, f"event {index}: ts {ts} decreases from {last_ts}")
        last_ts = ts
        tid = event.get("tid")
        name = event.get("name")
        if phase == "B":
            open_spans.setdefault(tid, []).append(name)
        elif phase == "E":
            stack = open_spans.get(tid, [])
            if not stack:
                fail(path, f"event {index}: E {name!r} with no open span "
                           f"on tid {tid}")
            if stack[-1] != name:
                fail(path, f"event {index}: E {name!r} closes B "
                           f"{stack[-1]!r} on tid {tid}")
            stack.pop()
        if name == "obs/self-accounting":
            self_accounting.append(event)

    for tid, stack in open_spans.items():
        if stack:
            fail(path, f"tid {tid}: {len(stack)} span(s) left open "
                       f"({', '.join(repr(n) for n in stack)})")

    if len(self_accounting) != 1:
        fail(path, f"expected exactly one obs/self-accounting event, "
                   f"found {len(self_accounting)}")
    args = self_accounting[0].get("args", {})
    overhead = args.get("estimated_overhead_pct")
    if not isinstance(overhead, (int, float)):
        fail(path, "self-accounting event lacks estimated_overhead_pct")
    if max_overhead_pct is not None and overhead > max_overhead_pct:
        fail(path, f"estimated tracing overhead {overhead:.2f}% exceeds "
                   f"the allowed {max_overhead_pct:.2f}%")

    spans = sum(1 for e in events if e.get("ph") == "B")
    print(f"{path} ok: {len(events)} events, {spans} spans, "
          f"~{overhead:.2f}% estimated tracing overhead")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--max-overhead-pct", type=float, default=None,
                        help="fail if the self-reported tracing overhead "
                             "exceeds this percentage")
    args = parser.parse_args()
    validate(args.trace, args.max_overhead_pct)


if __name__ == "__main__":
    main()
