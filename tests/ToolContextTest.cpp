//===- tests/ToolContextTest.cpp - Tool front-end tests -------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "instrument/ToolContext.h"

#include <gtest/gtest.h>

#include "runtime/Mutex.h"
#include "runtime/Parallel.h"

using namespace avc;

namespace {

/// A tiny buggy program: two parallel tasks do an unprotected RMW on the
/// same tracked counter.
void buggyProgram(Tracked<int> &Counter) {
  spawn([&] { Counter += 1; });
  spawn([&] { Counter += 1; });
}

TEST(ToolContext, AtomicityToolFlagsBuggyProgram) {
  ToolContext Tool(ToolKind::Atomicity);
  Tracked<int> Counter;
  Tool.run([&] { buggyProgram(Counter); });
  EXPECT_GE(Tool.numViolations(), 1u);
  ASSERT_NE(Tool.atomicityChecker(), nullptr);
  EXPECT_EQ(Tool.basicChecker(), nullptr);
  EXPECT_EQ(Tool.velodromeChecker(), nullptr);
}

TEST(ToolContext, BasicToolFlagsBuggyProgram) {
  ToolContext Tool(ToolKind::Basic);
  Tracked<int> Counter;
  Tool.run([&] { buggyProgram(Counter); });
  EXPECT_GE(Tool.numViolations(), 1u);
}

TEST(ToolContext, VelodromeSeesNothingInSerialSchedule) {
  // One thread => the observed schedule is serial, and the trace-bound
  // baseline finds nothing even though the program is buggy. This is the
  // paper's core motivation demonstrated end to end.
  ToolContext Tool(ToolKind::Velodrome, /*NumThreads=*/1);
  Tracked<int> Counter;
  Tool.run([&] { buggyProgram(Counter); });
  EXPECT_EQ(Tool.numViolations(), 0u);
}

TEST(ToolContext, NoneToolReportsNothing) {
  ToolContext Tool(ToolKind::None);
  Tracked<int> Counter;
  Tool.run([&] { buggyProgram(Counter); });
  EXPECT_EQ(Tool.numViolations(), 0u);
  EXPECT_EQ(Counter.raw(), 2); // the program still ran
}

TEST(ToolContext, CleanProgramStaysClean) {
  ToolContext Tool(ToolKind::Atomicity);
  Tracked<int> Counter;
  avc::Mutex Lock;
  Tool.run([&] {
    parallelFor<int>(0, 64, 4, [&](int Lo, int Hi) {
      // One critical section per step: the step's accesses to Counter all
      // share a lockset, so the region is atomic.
      avc::MutexGuard Guard(Lock);
      for (int I = Lo; I < Hi; ++I)
        Counter += 1;
    });
  });
  EXPECT_EQ(Tool.numViolations(), 0u);
  EXPECT_EQ(Counter.raw(), 64);
}

/// Locking *inside* the loop instead: each iteration is its own critical
/// section, so one step touches the counter in several sections and a
/// parallel step's locked increment can interleave between them. Under the
/// paper's step-granularity atomicity spec this is a real violation
/// (Section 3.3's "two accesses ... in different critical sections").
TEST(ToolContext, PerIterationLockingIsNotStepAtomic) {
  ToolContext Tool(ToolKind::Atomicity);
  Tracked<int> Counter;
  avc::Mutex Lock;
  Tool.run([&] {
    parallelForEach<int>(0, 64, 4, [&](int) {
      avc::MutexGuard Guard(Lock);
      Counter += 1;
    });
  });
  EXPECT_GE(Tool.numViolations(), 1u);
  EXPECT_EQ(Counter.raw(), 64); // data-race free, yet not atomic
}

TEST(ToolContext, AtomicGroupViaTrackedPointers) {
  ToolContext Tool(ToolKind::Atomicity);
  Tracked<long> Balance, Audit;
  Tool.atomicGroup<long>({&Balance, &Audit});
  Tool.run([&] {
    spawn([&] {
      long B = Balance.load(); // read one member...
      Audit.store(B);          // ...write the other: a pattern on the group
    });
    spawn([&] { Balance.store(100); });
  });
  EXPECT_GE(Tool.numViolations(), 1u);
}

TEST(ToolContext, NamedLocationsAppearInReports) {
  ToolContext Tool(ToolKind::Atomicity);
  Tracked<int> Counter;
  Tool.nameLocation(Counter, "request-counter");
  Tool.run([&] { buggyProgram(Counter); });
  ASSERT_GE(Tool.numViolations(), 1u);
  std::string Text =
      Tool.atomicityChecker()->violations().snapshot().front().toString();
  EXPECT_NE(Text.find("'request-counter'"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("0x"), std::string::npos)
      << "named locations should not print raw addresses: " << Text;
}

TEST(ToolContext, PrintReportIsWellFormed) {
  ToolContext Tool(ToolKind::Atomicity);
  Tracked<int> Counter;
  Tool.run([&] { buggyProgram(Counter); });

  char Buffer[4096] = {0};
  std::FILE *Stream = fmemopen(Buffer, sizeof(Buffer) - 1, "w");
  ASSERT_NE(Stream, nullptr);
  Tool.printReport(Stream);
  std::fclose(Stream);
  std::string Text(Buffer);
  EXPECT_NE(Text.find("[atomicity]"), std::string::npos);
  EXPECT_NE(Text.find("atomicity violation"), std::string::npos);
}

TEST(ToolContext, ToolKindNames) {
  EXPECT_STREQ(toolKindName(ToolKind::None), "none");
  EXPECT_STREQ(toolKindName(ToolKind::Atomicity), "atomicity");
  EXPECT_STREQ(toolKindName(ToolKind::Basic), "basic");
  EXPECT_STREQ(toolKindName(ToolKind::Velodrome), "velodrome");
}

TEST(ToolContext, MultiThreadedRunStillDetects) {
  ToolContext Tool(ToolKind::Atomicity, /*NumThreads=*/4);
  Tracked<int> Counter;
  Tool.run([&] { buggyProgram(Counter); });
  EXPECT_GE(Tool.numViolations(), 1u);
}

} // namespace
