//===- tests/ViolationSuiteData.h - The 36-program violation suite -*-C++-*===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's validation suite as data: 36 violating programs covering
/// every unserializable pattern, lock shapes, multi-variable groups, deep
/// task structures and observation orders — plus clean twins that must stay
/// silent. Shared between ViolationSuiteTest.cpp (trace replay through
/// every checker configuration) and MulticoreMatrixTest.cpp (live execution
/// on 1/2/4/8 workers, asserting the detected sets match the single-worker
/// run).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TESTS_VIOLATIONSUITEDATA_H
#define AVC_TESTS_VIOLATIONSUITEDATA_H

#include <functional>
#include <set>
#include <vector>

#include "CheckerTestUtil.h"

namespace avc {
namespace suite {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x1008;
constexpr MemAddr Z = 0x1010;
constexpr LockId L1 = 1;
constexpr LockId L2 = 2;
constexpr LockId L3 = 3;

struct Scenario {
  const char *Name;
  std::function<TraceBuilder()> Build;
  std::set<MemAddr> ViolatingLocations;
  /// Locations forming one multi-variable atomic group (empty = none).
  std::vector<MemAddr> Group;
};

inline std::vector<Scenario> buildSuite() {
  std::vector<Scenario> Suite;
  auto Add = [&](const char *Name, std::set<MemAddr> Locs,
                 std::function<TraceBuilder()> Build,
                 std::vector<MemAddr> Group = {}) {
    Suite.push_back({Name, std::move(Build), std::move(Locs),
                     std::move(Group)});
  };

  // --- 1-5: the five unserializable patterns between parallel siblings ---
  Add("01_rwr_siblings", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).read(1, X).write(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("02_rww_siblings", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(1, X).write(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("03_wrw_siblings", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.write(1, X).write(1, X).read(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("04_wwr_siblings", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.write(1, X).read(1, X).write(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("05_www_siblings", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.write(1, X).write(1, X).write(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });

  // --- 6-11: task-structure variations ---
  Add("06_interleaver_is_grandchild", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2).spawn(2, 3);
    T.read(1, X).write(1, X).write(3, X);
    return T.end(3).end(2).end(1).sync(0).end(0), T;
  });
  Add("07_interleaver_is_parent_continuation", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1);
    T.write(1, X).write(1, X);
    T.read(0, X); // parent's continuation step runs parallel to the child
    return T.end(1).sync(0).end(0), T;
  });
  Add("08_pattern_in_parent_interleaver_in_child", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1);
    T.read(0, X).write(0, X); // parent continuation's pattern
    T.write(1, X);
    return T.end(1).sync(0).end(0), T;
  });
  Add("09_explicit_task_group", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1, /*Group=*/7).spawn(0, 2, /*Group=*/7);
    T.read(1, X).write(1, X).write(2, X);
    T.end(1).end(2).wait(0, 7).end(0);
    return T;
  });
  Add("10_nested_groups", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1, 7); // outer group
    T.spawn(0, 2, 8); // inner group (nested scope)
    T.write(2, X).write(2, X).read(1, X);
    T.end(2).wait(0, 8).end(1).wait(0, 7).end(0);
    return T;
  });
  Add("11_cross_subtree_cousins", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.spawn(1, 3).spawn(2, 4);
    T.read(3, X).write(3, X).write(4, X);
    return T.end(3).end(4).end(1).end(2).sync(0).end(0), T;
  });

  // --- 12-16: locks ---
  Add("12_paper_fig11_lock_versioning", {X}, [] {
    TraceBuilder T;
    T.write(0, X);
    T.spawn(0, 1).spawn(0, 2);
    T.acq(2, L1).write(2, X).rel(2, L1);
    T.acq(1, L1).read(1, X).rel(1, L1);
    T.acq(1, L1).write(1, X).rel(1, L1);
    return T.end(2).end(1).sync(0).end(0), T;
  });
  Add("13_www_two_critical_sections_same_lock", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).write(1, X).rel(1, L1);
    T.acq(1, L1).write(1, X).rel(1, L1);
    T.acq(2, L1).write(2, X).rel(2, L1);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("14_locked_interleaver_unlocked_pattern", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(1, X); // no locks in the pattern
    T.acq(2, L1).write(2, X).rel(2, L1);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("15_pattern_under_two_different_locks", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).read(1, X).rel(1, L1);
    T.acq(1, L2).write(1, X).rel(1, L2);
    T.acq(2, L3).write(2, X).rel(2, L3);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("16_nested_locks_disjoint_pattern", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).acq(1, L2).read(1, X).rel(1, L2).rel(1, L1);
    T.acq(1, L3).write(1, X).rel(1, L3);
    T.write(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });

  // --- 17-18: multi-variable groups ---
  Add("17_group_rww_across_variables", {X, Y}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(1, Y).write(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  }, {X, Y});
  Add("18_group_wrw_reader_on_other_member", {X, Y}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.write(1, X).write(1, Y).read(2, Y);
    return T.end(1).end(2).sync(0).end(0), T;
  }, {X, Y});

  // --- 19-21: observation orders (schedule generalization) ---
  Add("19_interleaver_before_pattern", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.write(2, X).read(1, X).write(1, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("20_interleaver_between_pattern_accesses", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(2, X).write(1, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("21_serial_depth_first_observation", {X}, [] {
    // The schedule a single worker produces: each child runs to completion
    // at its spawn; the trace itself is serializable, the structure is not.
    TraceBuilder T;
    T.spawn(0, 1);
    T.read(1, X).write(1, X);
    T.end(1);
    T.spawn(0, 2);
    T.write(2, X);
    T.end(2).sync(0).end(0);
    return T;
  });

  // --- 22-23: fixed-size metadata robustness ---
  Add("22_three_readers_then_ww", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2).spawn(0, 3).spawn(0, 4);
    T.read(1, X).read(2, X).read(3, X);
    T.write(4, X).write(4, X);
    return T.end(1).end(2).end(3).end(4).sync(0).end(0), T;
  });
  Add("23_three_writers_then_rr", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2).spawn(0, 3).spawn(0, 4);
    T.write(1, X).write(2, X).write(3, X);
    T.read(4, X).read(4, X);
    return T.end(1).end(2).end(3).end(4).sync(0).end(0), T;
  });

  // --- 24-27: structure depth and shape ---
  Add("24_deep_spawn_chain", {X}, [] {
    TraceBuilder T;
    for (TaskId Task = 0; Task < 8; ++Task)
      T.spawn(Task, Task + 1);
    T.read(8, X).write(8, X);
    T.write(0, X); // the root's continuation is parallel to the whole chain
    for (TaskId Task = 8; Task > 0; --Task)
      T.end(Task);
    T.sync(0).end(0);
    return T;
  });
  Add("25_uncle_and_nephew", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1);      // uncle
    T.spawn(0, 2);      // parent of the nephew
    T.spawn(2, 3);      // nephew
    T.write(1, X).write(1, X).read(3, X);
    return T.end(3).end(2).end(1).sync(0).end(0), T;
  });
  Add("26_wide_fanout_last_child_violates", {X}, [] {
    TraceBuilder T;
    for (TaskId Child = 1; Child <= 12; ++Child)
      T.spawn(0, Child);
    T.write(12, X).write(12, X);
    T.read(1, X);
    for (TaskId Child = 1; Child <= 12; ++Child)
      T.end(Child);
    T.sync(0).end(0);
    return T;
  });
  Add("27_counter_increment_race", {X}, [] {
    // The classic lost-update: two tasks do x = x + 1 unprotected.
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(1, X);
    T.read(2, X).write(2, X);
    return T.end(1).end(2).sync(0).end(0), T;
  });

  // --- 28-30: idiomatic bug shapes ---
  Add("28_bank_check_then_act", {X}, [] {
    // balance check (read) then withdraw (write) racing a deposit.
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).read(1, X).rel(1, L1); // check under lock
    T.acq(1, L1).write(1, X).rel(1, L1); // act in a second section
    T.acq(2, L1).write(2, X).rel(2, L1); // concurrent deposit
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("29_double_check_flag", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).read(1, X); // double-check idiom
    T.write(2, X);           // flag flips in between
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("30_pattern_from_later_critical_sections", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    // First CS pair is self-contained; the *third* access pairs with the
    // first into a vulnerable pattern.
    T.acq(1, L1).read(1, X).write(1, X).rel(1, L1);
    T.acq(1, L2).write(1, X).rel(1, L2);
    T.acq(2, L3).write(2, X).rel(2, L3);
    return T.end(1).end(2).sync(0).end(0), T;
  });

  // --- 31-36: composites ---
  Add("31_two_independent_violations", {X, Y}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(1, X).write(2, X);
    T.write(2, Y).write(2, Y).read(1, Y);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("32_violating_and_clean_locations_mixed", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(1, X).write(2, X); // violates
    T.read(1, Y).write(2, Z);             // single accesses: clean
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("33_root_step_is_interleaver", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1);
    T.write(1, X).write(1, X);
    T.read(0, X); // root continuation, still before sync
    return T.end(1).sync(0).end(0), T;
  });
  Add("34_sibling_after_nested_join", {X}, [] {
    TraceBuilder T;
    T.spawn(0, 1);
    T.spawn(1, 2);
    T.read(2, X).write(2, X); // grandchild pattern
    T.end(2).sync(1).end(1);
    T.spawn(0, 3);            // sibling spawned after child 1 finished...
    T.write(3, X);            // ...but no sync between: still parallel
    return T.end(3).sync(0).end(0), T;
  });
  Add("35_second_write_slot_carries_violation", {X}, [] {
    // W1 holds a serial writer (the root); the violation is only visible
    // through W2 — the paper's running example shape.
    TraceBuilder T;
    T.write(0, X);
    T.spawn(0, 1).spawn(0, 2);
    T.write(2, X);
    T.read(1, X).write(1, X);
    return T.end(2).end(1).sync(0).end(0), T;
  });
  Add("36_group_with_locks", {X, Y}, [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).read(1, X).rel(1, L1);
    T.acq(1, L2).write(1, Y).rel(1, L2);
    T.acq(2, L3).write(2, X).rel(2, L3);
    return T.end(1).end(2).sync(0).end(0), T;
  }, {X, Y});

  return Suite;
}

/// Clean twins: programs that look like the violating ones but are safe;
/// every checker must stay silent (the "without false positives" half).
inline std::vector<Scenario> buildCleanSuite() {
  std::vector<Scenario> Suite;
  auto Add = [&](const char *Name, std::function<TraceBuilder()> Build,
                 std::vector<MemAddr> Group = {}) {
    Suite.push_back({Name, std::move(Build), {}, std::move(Group)});
  };

  Add("c01_serial_tasks", [] {
    TraceBuilder T;
    T.spawn(0, 1);
    T.read(1, X).write(1, X);
    T.end(1).sync(0);
    T.spawn(0, 2);
    T.write(2, X);
    return T.end(2).sync(0).end(0), T;
  });
  Add("c02_single_critical_section", [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).read(1, X).write(1, X).rel(1, L1);
    T.acq(2, L1).write(2, X).rel(2, L1);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("c03_parallel_reads_only", [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2).spawn(0, 3);
    T.read(1, X).read(1, X).read(2, X).read(3, X).read(3, X);
    return T.end(1).end(2).end(3).sync(0).end(0), T;
  });
  Add("c04_disjoint_locations", [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.read(1, X).write(1, X).read(2, Y).write(2, Y);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("c05_pattern_broken_by_spawn", [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.write(2, X).read(1, X);
    T.spawn(1, 3);
    T.write(1, X);
    return T.end(3).end(2).end(1).sync(0).end(0), T;
  });
  Add("c06_pattern_broken_by_sync", [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.write(2, X).read(1, X).sync(1).write(1, X);
    return T.end(2).end(1).sync(0).end(0), T;
  });
  Add("c07_shared_lock_held_across_pattern", [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).acq(1, L2).read(1, X).rel(1, L2).write(1, X).rel(1, L1);
    T.acq(2, L1).write(2, X).rel(2, L1);
    return T.end(1).end(2).sync(0).end(0), T;
  });
  Add("c08_group_accessed_atomically", [] {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    T.acq(1, L1).read(1, X).write(1, Y).rel(1, L1);
    T.acq(2, L1).write(2, X).rel(2, L1);
    return T.end(1).end(2).sync(0).end(0), T;
  }, {X, Y});
  Add("c09_interleaver_serial_with_pattern", [] {
    TraceBuilder T;
    T.write(0, X); // root before any spawn
    T.spawn(0, 1);
    T.read(1, X).write(1, X);
    return T.end(1).sync(0).end(0), T;
  });
  Add("c10_write_joined_before_pattern", [] {
    TraceBuilder T;
    T.spawn(0, 1);
    T.write(1, X);
    T.end(1).sync(0);
    T.read(0, X).write(0, X); // root pattern after the join
    return T.end(0), T;
  });

  return Suite;
}

} // namespace suite
} // namespace avc

#endif // AVC_TESTS_VIOLATIONSUITEDATA_H
