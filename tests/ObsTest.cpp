//===- tests/ObsTest.cpp - Observability layer ----------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The observability layer (obs/): the lossy per-thread ring (wraparound
/// keeps the newest events, incremental drains are loss-free), session
/// lifecycle (inert when disabled, begin/end pairing, cross-thread
/// recording drained at quiescence — the test the TSan job leans on),
/// Chrome-trace export validity (structure, B/E balance after
/// sanitization, timestamp monotonicity, double-valued gauges), and
/// deterministic gauge sampling across identical runs.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/ObsExport.h"
#include "obs/ObsRing.h"

using namespace avc;
using namespace avc::obs;

namespace {

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

size_t countOccurrences(const std::string &Text, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Text.find(Needle); Pos != std::string::npos;
       Pos = Text.find(Needle, Pos + Needle.size()))
    ++Count;
  return Count;
}

/// Values of every exported sample of the named counter/gauge, in file
/// order (the file is timestamp-sorted, so this is the time series).
std::vector<std::string> valueSeries(const std::string &Text,
                                     const std::string &Name) {
  std::vector<std::string> Values;
  std::string Needle = "\"name\": \"" + Name + "\"";
  for (size_t Pos = Text.find(Needle); Pos != std::string::npos;
       Pos = Text.find(Needle, Pos + Needle.size())) {
    size_t LineEnd = Text.find('\n', Pos);
    size_t ValPos = Text.find("\"value\": ", Pos);
    if (ValPos == std::string::npos || ValPos > LineEnd)
      continue;
    ValPos += 9;
    size_t ValEnd = Text.find_first_of("},", ValPos);
    Values.push_back(Text.substr(ValPos, ValEnd - ValPos));
  }
  return Values;
}

//===----------------------------------------------------------------------===//
// Ring
//===----------------------------------------------------------------------===//

Event makeEvent(uint64_t Seq) {
  Event E;
  E.Ts = Seq;
  E.Name = "ring/test";
  E.Value = Seq;
  E.Ph = Phase::Instant;
  E.Category = Cat::Runtime;
  return E;
}

TEST(ObsRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Ring(1, 1).capacity(), 16u);
  EXPECT_EQ(Ring(16, 1).capacity(), 16u);
  EXPECT_EQ(Ring(20, 1).capacity(), 32u);
  EXPECT_EQ(Ring(1024, 1).capacity(), 1024u);
}

TEST(ObsRingTest, WraparoundKeepsNewestEvents) {
  Ring R(16, 1);
  for (uint64_t I = 0; I < 40; ++I)
    R.push(makeEvent(I));
  std::vector<uint64_t> Seen;
  uint64_t DroppedNow = R.drain([&](const Event &E) {
    Seen.push_back(E.Value);
  });
  EXPECT_EQ(DroppedNow, 24u);
  EXPECT_EQ(R.dropped(), 24u);
  EXPECT_EQ(R.pushed(), 40u);
  ASSERT_EQ(Seen.size(), 16u);
  for (uint64_t I = 0; I < 16; ++I)
    EXPECT_EQ(Seen[I], 24 + I) << "oldest-first suffix window";
}

TEST(ObsRingTest, IncrementalDrainsAreLossFree) {
  Ring R(16, 1);
  for (uint64_t I = 0; I < 10; ++I)
    R.push(makeEvent(I));
  std::vector<uint64_t> Seen;
  EXPECT_EQ(R.drain([&](const Event &E) { Seen.push_back(E.Value); }), 0u);
  EXPECT_EQ(Seen.size(), 10u);
  // The second batch alone would overflow a 16-slot ring if the cursor did
  // not advance; after a drain it fits with no loss.
  for (uint64_t I = 10; I < 24; ++I)
    R.push(makeEvent(I));
  EXPECT_EQ(R.drain([&](const Event &E) { Seen.push_back(E.Value); }), 0u);
  ASSERT_EQ(Seen.size(), 24u);
  for (uint64_t I = 0; I < 24; ++I)
    EXPECT_EQ(Seen[I], I);
  EXPECT_EQ(R.dropped(), 0u);
}

//===----------------------------------------------------------------------===//
// Session lifecycle
//===----------------------------------------------------------------------===//

TEST(ObsSessionTest, DisabledInstrumentationIsInert) {
  ASSERT_FALSE(sessionActive());
  EXPECT_FALSE(enabled());
  EXPECT_EQ(sessionEventCount(), 0u);
  // All front-end entry points must be safe no-ops with no session.
  instant(Cat::Runtime, "noop", 1);
  counter(Cat::Runtime, "noop", 2);
  tick();
  addGauge("noop", [] { return 0.0; });
  { AVC_OBS_SPAN(Cat::Runtime, "noop/span"); }
  { AVC_OBS_SPAN_SAMPLED(Cat::Checker, "noop/sampled", 8); }
  EXPECT_EQ(sessionEventCount(), 0u);
}

TEST(ObsSessionTest, SecondBeginIsRejected) {
  ASSERT_TRUE(beginSession());
  EXPECT_TRUE(sessionActive());
  EXPECT_TRUE(enabled());
  EXPECT_FALSE(beginSession()) << "nested sessions are not supported";
  abandonSession();
  EXPECT_FALSE(sessionActive());
  EXPECT_FALSE(enabled());
}

TEST(ObsSessionTest, EndWithoutBeginFails) {
  ASSERT_FALSE(sessionActive());
  EXPECT_FALSE(endSession(tempPath("obs_no_session.json")));
}

// The drain-protocol test the TSan configuration exercises: many threads
// record into their own rings while the collector stays out, then a single
// post-join endSession drains everything.
TEST(ObsSessionTest, CrossThreadRecordingDrainsAtQuiescence) {
  SessionOptions Opts;
  Opts.RingCapacity = size_t(1) << 12;
  ASSERT_TRUE(beginSession(Opts));

  constexpr int NumThreads = 4;
  constexpr int PerThread = 1000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([T] {
      for (int I = 0; I < PerThread; ++I) {
        AVC_OBS_SPAN(Cat::Runtime, "test/span", uint64_t(T) + 1);
        instant(Cat::Checker, "test/instant", uint64_t(I));
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  // Each iteration records Begin + Instant + End; nothing was dropped at
  // this ring size, and only the four worker threads own rings.
  EXPECT_EQ(sessionEventCount(), uint64_t(NumThreads) * PerThread * 3);

  std::string Path = tempPath("obs_cross_thread.json");
  ASSERT_TRUE(endSession(Path));
  std::string Text = slurp(Path);
  EXPECT_EQ(countOccurrences(Text, "\"ph\": \"B\""),
            size_t(NumThreads) * PerThread);
  EXPECT_EQ(countOccurrences(Text, "\"ph\": \"E\""),
            size_t(NumThreads) * PerThread);
  EXPECT_EQ(countOccurrences(Text, "\"name\": \"test/instant\""),
            size_t(NumThreads) * PerThread);
  EXPECT_NE(Text.find("\"events_dropped\": 0"), std::string::npos);
  // One thread_name metadata row per ring.
  EXPECT_EQ(countOccurrences(Text, "\"name\": \"thread_name\""),
            size_t(NumThreads));
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

TEST(ObsExportTest, TraceJsonIsStructurallyValid) {
  ASSERT_TRUE(beginSession());
  {
    AVC_OBS_SPAN(Cat::Runtime, "outer", 7);
    { AVC_OBS_SPAN(Cat::Checker, "inner"); }
    instant(Cat::Dpst, "point", 3);
    counter(Cat::Runtime, "count", 42);
  }
  // A gauge sample with a non-integral double exercises the bit-cast
  // encoding end to end.
  record(Phase::Gauge, Cat::Gauge, "gauge/direct",
         std::bit_cast<uint64_t>(2.5));
  // An unmatched Begin must be sanitized away, not emitted.
  record(Phase::Begin, Cat::Runtime, "orphan/begin");

  std::string Path = tempPath("obs_export.json");
  ASSERT_TRUE(endSession(Path));
  std::string Text = slurp(Path);

  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.front(), '{');
  EXPECT_EQ(Text.substr(Text.size() - 2), "}\n");
  EXPECT_NE(Text.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(Text.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(Text.find("\"name\": \"process_name\""), std::string::npos);
  EXPECT_NE(Text.find("\"name\": \"obs/self-accounting\""),
            std::string::npos);
  EXPECT_NE(Text.find("\"otherData\""), std::string::npos);

  // Spans balance after sanitization; the orphan Begin is gone and counted.
  EXPECT_EQ(countOccurrences(Text, "\"ph\": \"B\""),
            countOccurrences(Text, "\"ph\": \"E\""));
  EXPECT_EQ(Text.find("orphan/begin"), std::string::npos);
  EXPECT_NE(Text.find("\"events_orphaned\": 1"), std::string::npos);

  // Span argument, instant, counter, and double-gauge payloads.
  EXPECT_NE(Text.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(Text.find("\"args\": {\"value\": 7}"), std::string::npos);
  EXPECT_NE(Text.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(Text.find("\"args\": {\"value\": 42}"), std::string::npos);
  EXPECT_EQ(valueSeries(Text, "gauge/direct"),
            std::vector<std::string>{"2.5"});

  // Timestamps are non-decreasing in file order (the exporter sorts; the
  // validator script checks the same invariant in CI).
  double LastTs = -1.0;
  for (size_t Pos = Text.find("\"ts\": "); Pos != std::string::npos;
       Pos = Text.find("\"ts\": ", Pos + 6)) {
    double Ts = std::atof(Text.c_str() + Pos + 6);
    EXPECT_GE(Ts, LastTs);
    LastTs = Ts;
  }
  EXPECT_GE(LastTs, 0.0);
}

TEST(ObsExportTest, SampledSpanCarriesSamplingFactor) {
  ASSERT_TRUE(beginSession());
  for (int I = 0; I < 20; ++I) {
    AVC_OBS_SPAN_SAMPLED(Cat::Checker, "sampled/span", 8);
  }
  std::string Path = tempPath("obs_sampled.json");
  ASSERT_TRUE(endSession(Path));
  std::string Text = slurp(Path);
  // 20 occurrences at every-8th sampling: iterations 0, 8, 16 are timed.
  EXPECT_EQ(countOccurrences(Text, "\"name\": \"sampled/span\""), 6u);
  EXPECT_EQ(valueSeries(Text, "sampled/span"),
            (std::vector<std::string>{"8", "8", "8"}));
}

//===----------------------------------------------------------------------===//
// Gauges
//===----------------------------------------------------------------------===//

TEST(ObsGaugeTest, SamplingIsDeterministic) {
  auto RunOnce = [](const std::string &Path) {
    SessionOptions Opts;
    Opts.GaugePeriod = 4;
    ASSERT_TRUE(beginSession(Opts));
    std::atomic<int> Finished{0};
    addGauge("gauge/test-ticks",
             [&] { return double(Finished.load(std::memory_order_relaxed)); });
    for (int I = 0; I < 20; ++I) {
      Finished.fetch_add(1, std::memory_order_relaxed);
      tick();
    }
    ASSERT_TRUE(endSession(Path));
  };

  std::string PathA = tempPath("obs_gauge_a.json");
  std::string PathB = tempPath("obs_gauge_b.json");
  RunOnce(PathA);
  RunOnce(PathB);

  // Sampled on ticks 4, 8, 12, 16, 20, plus the final end-of-session
  // sample — identical runs produce identical series.
  std::vector<std::string> Expected{"4", "8", "12", "16", "20", "20"};
  EXPECT_EQ(valueSeries(slurp(PathA), "gauge/test-ticks"), Expected);
  EXPECT_EQ(valueSeries(slurp(PathB), "gauge/test-ticks"), Expected);
}

//===----------------------------------------------------------------------===//
// Metrics-plane bridge
//===----------------------------------------------------------------------===//

// Ring wraparound drops were internal-only until the metrics plane; a
// serve deployment alerts on obs_ring_dropped_total, so the end-of-session
// accounting must reach the process registry.
TEST(ObsMetricsBridge, RingDropsReachTheMetricsRegistry) {
  using metrics::MetricsRegistry;
  auto DroppedTotal = [] {
    const metrics::MetricSample *Sample =
        MetricsRegistry::instance().snapshot().find(
            metrics::names::ObsRingDroppedTotal);
    return Sample ? Sample->Value : 0.0;
  };
  double Before = DroppedTotal();

  SessionOptions Opts;
  Opts.RingCapacity = 16;
  ASSERT_TRUE(beginSession(Opts));
  constexpr uint64_t NumInstants = 100;
  for (uint64_t I = 0; I < NumInstants; ++I)
    instant(Cat::Checker, "drop/instant", I);
  ASSERT_TRUE(endSession(tempPath("obs_dropped_metric.json")));

  // 100 pushes into a 16-slot ring lose at least 84 events; the process
  // registry accumulates, so assert on the delta.
  EXPECT_GE(DroppedTotal() - Before, double(NumInstants - 16));
}

} // namespace
