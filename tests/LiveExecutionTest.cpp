//===- tests/LiveExecutionTest.cpp - Generator programs on the runtime ----===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Bridges the two halves of the system: generated programs are *executed*
/// on the real work-stealing runtime (with Tracked locations and real
/// Mutexes), not just replayed as traces. The live checker's per-location
/// verdicts must equal the trace-replay verdicts for the same program —
/// across thread counts, which exercises cross-worker DPST construction,
/// shadow-memory races, and the concurrent metadata paths end to end.
///
//===----------------------------------------------------------------------===//

#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "checker/AtomicityChecker.h"
#include "instrument/ToolContext.h"
#include "runtime/Mutex.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

/// Executes \p Program on the live runtime inside \p Tool. Task bodies
/// interpret their GenOps against tracked storage and real mutexes;
/// spawned children run as real tasks in the implicit scope, and Sync ops
/// become real avc::sync() calls.
class LiveInterpreter {
public:
  LiveInterpreter(const GenProgram &Program)
      : Program(Program), Data(Program.NumLocations),
        Locks(std::make_unique<Mutex[]>(Program.NumLocks
                                            ? Program.NumLocks
                                            : 1)) {}

  void run(ToolContext &Tool) {
    Tool.run([this] { runTask(0); });
  }

  /// Maps each tracked element to the synthetic address the trace replay
  /// uses, so verdicts can be compared location by location.
  std::map<MemAddr, MemAddr> liveToSynthetic() const {
    std::map<MemAddr, MemAddr> Out;
    for (uint32_t L = 0; L < Program.NumLocations; ++L)
      Out[Data[L].address()] = GenProgram::addressOf(L);
    return Out;
  }

private:
  void runTask(uint32_t GenIndex) {
    for (const GenOp &Op : Program.Tasks[GenIndex].Ops) {
      switch (Op.K) {
      case GenOp::Kind::Read:
        Data[Op.Index].load();
        break;
      case GenOp::Kind::Write:
        Data[Op.Index].store(1);
        break;
      case GenOp::Kind::Acquire:
        Locks[Op.Index].lock();
        break;
      case GenOp::Kind::Release:
        Locks[Op.Index].unlock();
        break;
      case GenOp::Kind::Sync:
        avc::sync();
        break;
      case GenOp::Kind::Spawn: {
        uint32_t Child = Op.Index;
        spawn([this, Child] { runTask(Child); });
        break;
      }
      }
    }
  }

  const GenProgram &Program;
  TrackedArray<int> Data;
  std::unique_ptr<Mutex[]> Locks;
};

std::set<MemAddr> replayVerdicts(const GenProgram &Program) {
  AtomicityChecker Checker;
  replayTrace(linearizeSerial(Program), Checker);
  std::set<MemAddr> Out;
  for (const Violation &V : Checker.violations().snapshot())
    Out.insert(V.Addr);
  return Out;
}

class LiveSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, unsigned>> {};

TEST_P(LiveSweep, LiveVerdictsMatchReplay) {
  auto [Seed, Threads] = GetParam();
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = 3 + Seed % 10;
  Opts.NumLocations = 1 + Seed % 4;
  Opts.NumLocks = Seed % 3;
  Opts.MinOpsPerTask = 2;
  Opts.MaxOpsPerTask = 3 + Seed % 7;
  Opts.LockedFraction = (Seed % 4) * 0.2;
  Opts.SyncFraction = (Seed % 5) * 0.08;
  GenProgram Program = generateProgram(Opts);

  ToolContext Tool(ToolKind::Atomicity, Threads);
  LiveInterpreter Interp(Program);
  Interp.run(Tool);

  std::set<MemAddr> Live;
  for (const Violation &V : Tool.atomicityChecker()->violations().snapshot())
    Live.insert(V.Addr);

  // Translate the live (real) addresses to the generator's synthetic ones.
  std::map<MemAddr, MemAddr> Translate = Interp.liveToSynthetic();
  std::set<MemAddr> LiveTranslated;
  for (MemAddr Addr : Live) {
    auto It = Translate.find(Addr);
    ASSERT_NE(It, Translate.end()) << "violation on unknown location";
    LiveTranslated.insert(It->second);
  }

  EXPECT_EQ(LiveTranslated, replayVerdicts(Program))
      << "seed " << Seed << " threads " << Threads;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LiveSweep,
    ::testing::Combine(::testing::Range<uint64_t>(1, 26),
                       ::testing::Values(1u, 4u)),
    [](const auto &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_threads" +
             std::to_string(std::get<1>(Info.param));
    });

} // namespace
