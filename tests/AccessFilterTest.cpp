//===- tests/AccessFilterTest.cpp - Redundant-access fast path ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The per-task redundant-access filter (AccessFilter.h): unit tests for
/// the table itself, checker-level tests pinning down exactly which
/// accesses may take the fast path (and that step changes and lock
/// releases invalidate recorded verdicts), a randomized equivalence sweep
/// proving the filter never changes detection verdicts, and a
/// multi-threaded live regression covering concurrent first accesses
/// (the metadataFor lost-CAS path) with the fast path active.
///
//===----------------------------------------------------------------------===//

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "checker/AccessFilter.h"
#include "instrument/ToolContext.h"
#include "trace/TraceGenerator.h"
#include "CheckerTestUtil.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x2000;
constexpr LockId L1 = 1;

//===----------------------------------------------------------------------===//
// AccessFilter unit tests
//===----------------------------------------------------------------------===//

TEST(AccessFilter, RecordsAndHitsPerKind) {
  AccessFilter Filter;
  EXPECT_FALSE(Filter.isRedundant(X, 5, 0, AccessKind::Read));

  Filter.record(X, 5, 0, /*ReadRedundant=*/true, /*WriteRedundant=*/false);
  EXPECT_TRUE(Filter.isRedundant(X, 5, 0, AccessKind::Read));
  EXPECT_FALSE(Filter.isRedundant(X, 5, 0, AccessKind::Write));
  EXPECT_FALSE(Filter.isRedundant(Y, 5, 0, AccessKind::Read));

  Filter.record(X, 5, 0, true, true);
  EXPECT_TRUE(Filter.isRedundant(X, 5, 0, AccessKind::Read));
  EXPECT_TRUE(Filter.isRedundant(X, 5, 0, AccessKind::Write));
}

TEST(AccessFilter, LaterVerdictOverwritesEarlier) {
  AccessFilter Filter;
  Filter.record(X, 5, 0, true, true);
  // An access of one kind can un-prove the other kind (see record() docs);
  // the latest verdict wins.
  Filter.record(X, 5, 0, true, false);
  EXPECT_TRUE(Filter.isRedundant(X, 5, 0, AccessKind::Read));
  EXPECT_FALSE(Filter.isRedundant(X, 5, 0, AccessKind::Write));
}

TEST(AccessFilter, StepChangeInvalidates) {
  AccessFilter Filter;
  Filter.record(X, 5, 0, true, true);
  EXPECT_FALSE(Filter.isRedundant(X, 6, 0, AccessKind::Read));
  EXPECT_FALSE(Filter.isRedundant(X, 6, 0, AccessKind::Write));
  // The old step's entry is still intact until overwritten.
  EXPECT_TRUE(Filter.isRedundant(X, 5, 0, AccessKind::Read));
}

TEST(AccessFilter, EpochChangeInvalidates) {
  AccessFilter Filter;
  Filter.record(X, 5, /*Epoch=*/3, true, true);
  EXPECT_TRUE(Filter.isRedundant(X, 5, 3, AccessKind::Read));
  EXPECT_FALSE(Filter.isRedundant(X, 5, 4, AccessKind::Read));
  EXPECT_FALSE(Filter.isRedundant(X, 5, 2, AccessKind::Write));
}

TEST(AccessFilter, NoHitVerdictNeverEvicts) {
  AccessFilter Filter;
  Filter.record(X, 5, 0, true, true);
  // Both-false verdicts for other (possibly colliding) addresses must not
  // evict a useful entry: they can never produce a hit themselves.
  for (MemAddr Addr = 0x8000; Addr < 0x8000 + 8 * 1024; Addr += 8)
    Filter.record(Addr, 5, 0, false, false);
  EXPECT_TRUE(Filter.isRedundant(X, 5, 0, AccessKind::Read));
  EXPECT_TRUE(Filter.isRedundant(X, 5, 0, AccessKind::Write));
}

TEST(AccessFilter, ClearDropsEverything) {
  AccessFilter Filter;
  Filter.record(X, 5, 0, true, true);
  Filter.record(Y, 5, 0, true, false);
  Filter.clear();
  EXPECT_FALSE(Filter.isRedundant(X, 5, 0, AccessKind::Read));
  EXPECT_FALSE(Filter.isRedundant(Y, 5, 0, AccessKind::Read));
}

//===----------------------------------------------------------------------===//
// Checker-level fast-path behavior
//===----------------------------------------------------------------------===//

/// Unlocked repeated accesses: the second access of a kind forms and
/// promotes the same-step pattern (RR/WW), after which further accesses of
/// that kind are redundant. 5 writes then 5 reads by one step: writes 3-5
/// and reads 3-5 take the fast path.
TEST(CheckerFastPath, RepeatedAccessesHitOncePatternPromoted) {
  TraceBuilder T;
  for (int I = 0; I < 5; ++I)
    T.write(0, X);
  for (int I = 0; I < 5; ++I)
    T.read(0, X);
  T.end(0);

  auto Checker = runOptimized(T);
  CheckerStats Stats = Checker->stats();
  EXPECT_TRUE(Stats.AccessFilterEnabled);
  EXPECT_EQ(Stats.NumWrites, 5u); // filtered accesses still count
  EXPECT_EQ(Stats.NumReads, 5u);
  EXPECT_EQ(Stats.NumLocations, 1u);
  EXPECT_EQ(Stats.NumFilterHitWrites, 3u);
  EXPECT_EQ(Stats.NumFilterHitReads, 3u);
  EXPECT_EQ(Stats.NumFilterHits, 6u);
  EXPECT_DOUBLE_EQ(Stats.filterHitRate(), 60.0);
  EXPECT_TRUE(Checker->violations().empty());
}

/// With the filter disabled every access walks the slow path and the hit
/// counters stay zero, but the access counters are identical.
TEST(CheckerFastPath, DisabledFilterCountsNoHits) {
  TraceBuilder T;
  for (int I = 0; I < 5; ++I)
    T.write(0, X);
  T.end(0);

  AtomicityChecker::Options Opts;
  Opts.EnableAccessFilter = false;
  auto Checker = runOptimized(T, Opts);
  CheckerStats Stats = Checker->stats();
  EXPECT_FALSE(Stats.AccessFilterEnabled);
  EXPECT_EQ(Stats.NumWrites, 5u);
  EXPECT_EQ(Stats.NumFilterHits, 0u);
  EXPECT_DOUBLE_EQ(Stats.filterHitRate(), 0.0);
}

/// Inside one critical section a repeated access is redundant immediately
/// (the interim and current locksets share the acquire token, so no
/// pattern can form between them): writes 2-5 hit.
TEST(CheckerFastPath, LockedRepeatsRedundantImmediately) {
  TraceBuilder T;
  T.acq(0, L1);
  for (int I = 0; I < 5; ++I)
    T.write(0, X);
  T.rel(0, L1).end(0);

  CheckerStats Stats = runOptimized(T)->stats();
  EXPECT_EQ(Stats.NumWrites, 5u);
  EXPECT_EQ(Stats.NumFilterHitWrites, 4u);
}

/// A sync starts a new step node; verdicts recorded for the previous step
/// must not match. Three writes before and after a sync: only the third
/// write of each step is redundant.
TEST(CheckerFastPath, StepChangeForcesSlowPath) {
  TraceBuilder T;
  T.write(0, X).write(0, X).write(0, X);
  T.sync(0);
  T.write(0, X).write(0, X).write(0, X);
  T.end(0);

  CheckerStats Stats = runOptimized(T)->stats();
  EXPECT_EQ(Stats.NumWrites, 6u);
  EXPECT_EQ(Stats.NumFilterHitWrites, 2u);
}

/// Releasing a lock bumps the task's filter epoch: the write after rel()
/// must take the slow path (its lockset is now disjoint from the interim
/// write's, forming the WW pattern a parallel reader then violates). With
/// a stale filter verdict the pattern would never form and the violation
/// would be lost.
TEST(CheckerFastPath, LockReleaseInvalidatesAndPatternStillForms) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L1).write(1, X).write(1, X).rel(1, L1).write(1, X);
  T.read(2, X);
  T.end(1).end(2).sync(0).end(0);

  auto Checker = runOptimized(T);
  CheckerStats Stats = Checker->stats();
  // write2 hits (locked repeat); write3 misses (epoch bumped by rel).
  EXPECT_EQ(Stats.NumFilterHitWrites, 1u);
  std::set<MemAddr> Found;
  for (const Violation &V : Checker->violations().snapshot())
    Found.insert(V.Addr);
  EXPECT_EQ(Found, std::set<MemAddr>{X}) << "WRW across the release";
}

/// Acquiring a lock does NOT invalidate: fresh tokens can never intersect
/// an older interim lockset, so redundancy verdicts survive acquires.
TEST(CheckerFastPath, LockAcquirePreservesHits) {
  TraceBuilder T;
  T.write(0, X).write(0, X).write(0, X); // third write is redundant
  T.acq(0, L1);
  T.write(0, X); // still redundant: WW already promoted, acquire is free
  T.rel(0, L1).end(0);

  CheckerStats Stats = runOptimized(T)->stats();
  EXPECT_EQ(Stats.NumWrites, 4u);
  EXPECT_EQ(Stats.NumFilterHitWrites, 2u);
}

//===----------------------------------------------------------------------===//
// Randomized equivalence: the filter never changes detection verdicts
//===----------------------------------------------------------------------===//

std::set<MemAddr> verdicts(const Trace &Events, bool EnableFilter) {
  AtomicityChecker::Options Opts;
  Opts.EnableAccessFilter = EnableFilter;
  AtomicityChecker Checker(Opts);
  replayTrace(Events, Checker);
  std::set<MemAddr> Out;
  for (const Violation &V : Checker.violations().snapshot())
    Out.insert(V.Addr);
  return Out;
}

class FilterEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FilterEquivalence, SameViolationsWithAndWithoutFilter) {
  uint64_t Seed = GetParam();
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = 4 + Seed % 12;
  Opts.NumLocations = 1 + Seed % 4;
  Opts.NumLocks = Seed % 3;
  Opts.MinOpsPerTask = 3;
  Opts.MaxOpsPerTask = 6 + Seed % 10; // long op runs: repeats are common
  Opts.LockedFraction = (Seed % 5) * 0.2;
  Opts.SyncFraction = (Seed % 4) * 0.1;
  GenProgram Program = generateProgram(Opts);

  for (const Trace &Events :
       {linearizeSerial(Program), linearizeRandom(Program, Seed * 31 + 1)}) {
    std::set<MemAddr> WithFilter = verdicts(Events, true);
    std::set<MemAddr> WithoutFilter = verdicts(Events, false);
    EXPECT_EQ(WithFilter, WithoutFilter) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterEquivalence,
                         ::testing::Range<uint64_t>(1, 41),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Multi-threaded live regression: concurrent first accesses + fast path
//===----------------------------------------------------------------------===//

/// Many parallel tasks perform their first accesses to the same tracked
/// locations at once — racing metadataFor's install CAS (the loser must
/// adopt the winner's metadata, not its own dead pool entry) — and then
/// repeat accesses so the fast path engages while other workers mutate the
/// same GlobalMetadata. Every location carries a WW pattern and parallel
/// interleaving writes, so the full violation set must be reported under
/// every schedule, with the filter on and off.
TEST(LiveConcurrency, ConcurrentFirstAccessesKeepFullDetection) {
  constexpr unsigned NumTasks = 16;
  constexpr unsigned NumLocations = 8;
  constexpr unsigned Iters = 4; // repeats make the fast path engage
  constexpr unsigned Threads = 4;

  for (bool Filter : {true, false}) {
    for (int Rep = 0; Rep < 3; ++Rep) {
      ToolContext::Options ToolOpts;
      ToolOpts.Tool = ToolKind::Atomicity;
      ToolOpts.NumThreads = Threads;
      ToolOpts.Checker.EnableAccessFilter = Filter;
      ToolContext Tool(ToolOpts);

      TrackedArray<int> Data(NumLocations);
      Tool.run([&] {
        for (unsigned T = 0; T < NumTasks; ++T)
          spawn([&Data] {
            for (unsigned I = 0; I < Iters; ++I)
              for (unsigned L = 0; L < NumLocations; ++L) {
                Data[L].store(1);
                Data[L].load();
                Data[L].load();
                Data[L].store(2);
              }
          });
      });

      std::set<MemAddr> Expected;
      for (unsigned L = 0; L < NumLocations; ++L)
        Expected.insert(Data[L].address());
      std::set<MemAddr> Found;
      for (const Violation &V :
           Tool.atomicityChecker()->violations().snapshot())
        Found.insert(V.Addr);
      EXPECT_EQ(Found, Expected)
          << "filter " << (Filter ? "on" : "off") << " rep " << Rep;

      CheckerStats Stats = Tool.atomicityChecker()->stats();
      EXPECT_EQ(Stats.NumReads, uint64_t(NumTasks) * Iters * NumLocations * 2);
      EXPECT_EQ(Stats.NumWrites,
                uint64_t(NumTasks) * Iters * NumLocations * 2);
      EXPECT_EQ(Stats.NumFilterHits > 0, Filter);
    }
  }
}

} // namespace
