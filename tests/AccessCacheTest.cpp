//===- tests/AccessCacheTest.cpp - Per-task access-path cache -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The per-task access-path cache (AccessCache.h): unit tests for the
/// direct-mapped table itself (two-tier probe fields, the claim() aging
/// policy, pooled-table generation invalidation, deliberate slot
/// collisions), checker-level tests pinning down exactly which accesses
/// take the verdict tier (and that step changes and lock releases
/// invalidate recorded verdicts while acquires do not), the
/// version-cached lockset snapshot, PointerMap-growth invalidation of the
/// path tier, a randomized equivalence matrix proving the cache never
/// changes detection verdicts at any slot count, and a multi-threaded live
/// regression covering concurrent first accesses with the cache active.
///
//===----------------------------------------------------------------------===//

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "checker/AccessCache.h"
#include "instrument/ToolContext.h"
#include "support/PointerMap.h"
#include "trace/TraceGenerator.h"
#include "CheckerTestUtil.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x2000;
constexpr LockId L1 = 1;

/// Concrete instantiation for the unit tests; the metadata types only have
/// to be distinct pointer targets.
struct FakeGlobal {
  int Tag = 0;
};
struct FakeLocal {
  int Tag = 0;
};
using TestCache = AccessCache<FakeGlobal, FakeLocal>;

/// Finds an address != Addr that maps to the same direct-mapped slot.
MemAddr collidingAddress(const TestCache &Cache, MemAddr Addr) {
  size_t Want = Cache.slotIndexFor(Addr);
  for (MemAddr Candidate = Addr + 8;; Candidate += 8)
    if (Cache.slotIndexFor(Candidate) == Want)
      return Candidate;
}

//===----------------------------------------------------------------------===//
// AccessCache unit tests
//===----------------------------------------------------------------------===//

TEST(AccessCache, InitRoundsUpAndDisables) {
  TestCache Cache;
  EXPECT_FALSE(Cache.enabled());
  EXPECT_EQ(Cache.numSlots(), 0u);

  Cache.init(3);
  EXPECT_TRUE(Cache.enabled());
  EXPECT_EQ(Cache.numSlots(), 4u); // next power of two

  Cache.init(256);
  EXPECT_EQ(Cache.numSlots(), 256u);

  Cache.init(0); // 0 disables
  EXPECT_FALSE(Cache.enabled());
  EXPECT_EQ(Cache.numSlots(), 0u);
}

TEST(AccessCache, StampRecordsBothTiers) {
  TestCache Cache;
  Cache.init(16);
  FakeGlobal Meta;
  FakeLocal Local;

  EXPECT_FALSE(Cache.stamp(X, &Meta, &Local, /*Step=*/5, /*Epoch=*/3,
                           /*MapGen=*/7, /*ReadRedundant=*/true,
                           /*WriteRedundant=*/false));
  TestCache::Entry &E = Cache.entryFor(X);
  EXPECT_EQ(E.Addr, X);
  EXPECT_EQ(E.Meta, &Meta);
  EXPECT_EQ(E.Local, &Local);
  EXPECT_EQ(E.Step, 5u);
  EXPECT_EQ(E.Epoch, 3u);
  EXPECT_EQ(E.MapGen, 7u);
  EXPECT_EQ(E.Bits, TestCache::ReadBit);

  // The later verdict overwrites the earlier one wholesale.
  Cache.stamp(X, &Meta, &Local, 5, 3, 7, false, true);
  EXPECT_EQ(Cache.entryFor(X).Bits, TestCache::WriteBit);
  Cache.stamp(X, &Meta, &Local, 5, 3, 7, true, true);
  EXPECT_EQ(Cache.entryFor(X).Bits, TestCache::ReadBit | TestCache::WriteBit);
}

TEST(AccessCache, AlwaysStampEvictsCollidingNeighbor) {
  TestCache Cache;
  Cache.init(4);
  FakeGlobal Meta;
  FakeLocal Local;
  MemAddr Other = collidingAddress(Cache, X);
  ASSERT_EQ(Cache.slotIndexFor(X), Cache.slotIndexFor(Other));

  Cache.stamp(X, &Meta, &Local, 5, 0, 0, true, true);
  // stamp() (the path-tier upgrade) takes the slot unconditionally — a
  // no-verdict stamp still keeps the resolved pointers — and reports the
  // displaced live neighbor as an eviction.
  EXPECT_TRUE(Cache.stamp(Other, &Meta, &Local, 5, 0, 0, false, false));
  EXPECT_EQ(Cache.entryFor(X).Addr, Other);
  // Re-stamping the same address is not an eviction.
  EXPECT_FALSE(Cache.stamp(Other, &Meta, &Local, 6, 0, 0, false, false));
}

TEST(AccessCache, ClaimAgesLiveConflicts) {
  TestCache Cache;
  Cache.init(4);
  FakeGlobal Meta;
  FakeLocal Local;
  MemAddr Other = collidingAddress(Cache, X);

  // First touch of an empty slot is stored immediately, with no verdicts
  // and no eviction.
  EXPECT_FALSE(Cache.claim(X, &Meta, &Local, 5, 0, 0));
  EXPECT_EQ(Cache.entryFor(X).Addr, X);
  EXPECT_EQ(Cache.entryFor(X).Bits, 0u);

  // A live conflicting entry survives ClaimPeriod-1 claim attempts (a
  // streaming neighbor must not dirty the line per access)...
  for (uint32_t I = 1; I < TestCache::ClaimPeriod; ++I) {
    EXPECT_FALSE(Cache.claim(Other, &Meta, &Local, 5, 0, 0));
    EXPECT_EQ(Cache.entryFor(X).Addr, X) << "conflict " << I;
  }
  // ...and the ClaimPeriod-th displaces it: an eviction.
  EXPECT_TRUE(Cache.claim(Other, &Meta, &Local, 5, 0, 0));
  EXPECT_EQ(Cache.entryFor(X).Addr, Other);

  // Re-claiming the resident address refreshes it at once, no eviction.
  EXPECT_FALSE(Cache.claim(Other, &Meta, &Local, 6, 0, 0));
  EXPECT_EQ(Cache.entryFor(X).Step, 6u);
}

TEST(AccessCache, ClaimReplacesStaleEntryImmediately) {
  TestCache Cache;
  Cache.init(4);
  FakeGlobal Meta;
  FakeLocal Local;
  MemAddr Other = collidingAddress(Cache, X);

  // An entry whose MapGen no longer matches is dead weight: the newcomer
  // takes the slot without waiting out the aging tick, and it does not
  // count as an eviction.
  Cache.stamp(X, &Meta, &Local, 5, 0, /*MapGen=*/1, true, true);
  EXPECT_FALSE(Cache.claim(Other, &Meta, &Local, 5, 0, /*MapGen=*/2));
  EXPECT_EQ(Cache.entryFor(X).Addr, Other);
}

TEST(AccessCache, PoolReuseInvalidatesWithoutClearing) {
  TestCache::Pool Pool;
  FakeGlobal Meta;
  FakeLocal Local;

  TestCache Cache;
  Cache.acquire(Pool, 8);
  ASSERT_TRUE(Cache.enabled());
  uint32_t Gen0 = Cache.generation();
  Cache.stamp(X, &Meta, &Local, 5, 0, 0, true, true);
  EXPECT_EQ(Cache.entryFor(X).Gen, Gen0);
  Cache.release(Pool);
  EXPECT_FALSE(Cache.enabled());

  // The next owner gets the same dirty table back with a bumped
  // generation: the stale entry is physically present but can never
  // satisfy a probe, and displacing it is not an eviction.
  TestCache Next;
  Next.acquire(Pool, 8);
  ASSERT_TRUE(Next.enabled());
  EXPECT_NE(Next.generation(), Gen0);
  EXPECT_EQ(Next.entryFor(X).Addr, X);
  EXPECT_NE(Next.entryFor(X).Gen, Next.generation());
  EXPECT_FALSE(Next.stamp(collidingAddress(Next, X), &Meta, &Local, 6, 0, 0,
                          false, false));
  Next.release(Pool);
}

TEST(AccessCache, ClearAndReleaseDropEntries) {
  TestCache Cache;
  Cache.init(8);
  FakeGlobal Meta;
  FakeLocal Local;
  Cache.stamp(X, &Meta, &Local, 5, 0, 0, true, true);
  Cache.stamp(Y, &Meta, &Local, 5, 0, 0, true, true);

  Cache.clear();
  EXPECT_TRUE(Cache.enabled());
  EXPECT_EQ(Cache.entryFor(X).Addr, 0u);
  EXPECT_EQ(Cache.entryFor(Y).Addr, 0u);

  Cache.releaseStorage();
  EXPECT_FALSE(Cache.enabled());
}

//===----------------------------------------------------------------------===//
// Checker-level verdict-tier behavior
//===----------------------------------------------------------------------===//

/// Unlocked repeated accesses: the second access of a kind forms and
/// promotes the same-step pattern (RR/WW), after which further accesses of
/// that kind are provably redundant. 5 writes then 5 reads by one step:
/// writes 3-5 and reads 3-5 take the verdict tier; write 2 and reads 1-2
/// miss the verdict but reuse the resolved pointers (path tier).
TEST(CheckerFastPath, RepeatedAccessesHitOncePatternPromoted) {
  TraceBuilder T;
  for (int I = 0; I < 5; ++I)
    T.write(0, X);
  for (int I = 0; I < 5; ++I)
    T.read(0, X);
  T.end(0);

  auto Checker = runOptimized(T);
  CheckerStats Stats = Checker->stats();
  EXPECT_TRUE(Stats.AccessCacheEnabled);
  EXPECT_EQ(Stats.NumWrites, 5u); // cached accesses still count
  EXPECT_EQ(Stats.NumReads, 5u);
  EXPECT_EQ(Stats.NumLocations, 1u);
  EXPECT_EQ(Stats.NumCacheHitWrites, 3u);
  EXPECT_EQ(Stats.NumCacheHitReads, 3u);
  EXPECT_EQ(Stats.NumCacheHits, 6u);
  EXPECT_EQ(Stats.NumCachePathHits, 3u); // write 2, reads 1-2
  EXPECT_EQ(Stats.NumCacheEvictions, 0u);
  EXPECT_DOUBLE_EQ(Stats.cacheHitRate(), 60.0);
  EXPECT_TRUE(Checker->violations().empty());
}

/// With the cache disabled every access walks the full slow path and the
/// hit counters stay zero, but the access counters are identical.
TEST(CheckerFastPath, DisabledCacheCountsNoHits) {
  TraceBuilder T;
  for (int I = 0; I < 5; ++I)
    T.write(0, X);
  T.end(0);

  AtomicityChecker::Options Opts;
  Opts.EnableAccessCache = false;
  auto Checker = runOptimized(T, Opts);
  CheckerStats Stats = Checker->stats();
  EXPECT_FALSE(Stats.AccessCacheEnabled);
  EXPECT_EQ(Stats.NumWrites, 5u);
  EXPECT_EQ(Stats.NumCacheHits, 0u);
  EXPECT_EQ(Stats.NumCachePathHits, 0u);
  EXPECT_DOUBLE_EQ(Stats.cacheHitRate(), 0.0);
}

/// Inside one critical section a repeated access is redundant (the interim
/// and current locksets share the acquire token, so no pattern can form
/// between them). Write 1 claims the slot with no verdicts (proofs are
/// lazy), write 2 re-touches via the path tier and proves redundancy, and
/// writes 3-5 take the verdict tier.
TEST(CheckerFastPath, LockedRepeatsRedundantImmediately) {
  TraceBuilder T;
  T.acq(0, L1);
  for (int I = 0; I < 5; ++I)
    T.write(0, X);
  T.rel(0, L1).end(0);

  CheckerStats Stats = runOptimized(T)->stats();
  EXPECT_EQ(Stats.NumWrites, 5u);
  EXPECT_EQ(Stats.NumCacheHitWrites, 3u);
  EXPECT_EQ(Stats.NumCachePathHits, 1u); // write 2
}

/// The fig13 verdict-tier finding (EXPERIMENTS.md): blackscholes and
/// bodytrack report thousands of evictions with *zero* verdict hits. That
/// is correct accounting, not a priming bug — a streaming access shape
/// touches each location once per kind per step, and the verdict tier
/// only pays from the third same-kind same-step touch on (touch 2 is the
/// proof that stamps the verdict). This test pins the invariant with the
/// same shape at unit scale: read+write per location, tiny cache so the
/// stream also evicts, and the verdict counter must stay exactly zero
/// while the path tier and eviction counters run.
TEST(CheckerFastPath, StreamingShapeNeverPrimesVerdictTier) {
  TraceBuilder T;
  for (int I = 0; I < 128; ++I) {
    MemAddr Addr = 0x40000 + 8 * I;
    T.read(0, Addr).write(0, Addr);
  }
  T.end(0);

  AtomicityChecker::Options Tiny;
  Tiny.AccessCacheSlots = 2;
  CheckerStats Stats = runOptimized(T, Tiny)->stats();
  EXPECT_EQ(Stats.NumReads, 128u);
  EXPECT_EQ(Stats.NumWrites, 128u);
  EXPECT_EQ(Stats.NumCacheHits, 0u) << "two touches per kind cannot hit";
  EXPECT_GT(Stats.NumCacheEvictions, 0u) << "the stream must thrash slots";
  EXPECT_GT(Stats.NumCachePathHits, 0u)
      << "the write re-touch still rides the path tier";
  EXPECT_DOUBLE_EQ(Stats.cacheHitRate(), 0.0);
}

/// A sync starts a new step node; verdicts recorded for the previous step
/// must not match. Three writes before and after a sync: only the third
/// write of each step takes the verdict tier, but the stale-step probe
/// still reuses the resolved pointers.
TEST(CheckerFastPath, StepChangeForcesSlowPath) {
  TraceBuilder T;
  T.write(0, X).write(0, X).write(0, X);
  T.sync(0);
  T.write(0, X).write(0, X).write(0, X);
  T.end(0);

  CheckerStats Stats = runOptimized(T)->stats();
  EXPECT_EQ(Stats.NumWrites, 6u);
  EXPECT_EQ(Stats.NumCacheHitWrites, 2u);
  EXPECT_EQ(Stats.NumCachePathHits, 3u); // writes 2, 4, 5
}

/// Releasing a lock bumps the task's cache epoch: the write after rel()
/// must take the slow path (its lockset is now disjoint from the interim
/// write's, forming the WW pattern a parallel reader then violates). With
/// a stale cached verdict the pattern would never form and the violation
/// would be lost.
TEST(CheckerFastPath, LockReleaseInvalidatesAndPatternStillForms) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L1).write(1, X).write(1, X).write(1, X).rel(1, L1).write(1, X);
  T.read(2, X);
  T.end(1).end(2).sync(0).end(0);

  auto Checker = runOptimized(T);
  CheckerStats Stats = Checker->stats();
  // write1 claims, write2 proves redundancy (path tier), write3 hits the
  // verdict tier; write4's epoch no longer matches (bumped by rel), so it
  // re-enters the slow path and forms the WW pattern.
  EXPECT_EQ(Stats.NumCacheHitWrites, 1u);
  std::set<MemAddr> Found;
  for (const Violation &V : Checker->violations().snapshot())
    Found.insert(V.Addr);
  EXPECT_EQ(Found, std::set<MemAddr>{X}) << "WRW across the release";
}

/// Acquiring a lock does NOT invalidate: fresh tokens can never intersect
/// an older interim lockset, so redundancy verdicts survive acquires.
TEST(CheckerFastPath, LockAcquirePreservesHits) {
  TraceBuilder T;
  T.write(0, X).write(0, X).write(0, X); // third write is redundant
  T.acq(0, L1);
  T.write(0, X); // still redundant: WW already promoted, acquire is free
  T.rel(0, L1).end(0);

  CheckerStats Stats = runOptimized(T)->stats();
  EXPECT_EQ(Stats.NumWrites, 4u);
  EXPECT_EQ(Stats.NumCacheHitWrites, 2u);
}

//===----------------------------------------------------------------------===//
// Version-cached lockset snapshots
//===----------------------------------------------------------------------===//

/// The initial empty lockset view is valid without ever materializing a
/// snapshot (both versions start at zero), and a snapshot is taken only
/// when the held set actually changed since the last slow-path access —
/// not once per access.
TEST(LockSnapshots, OnlyOnVersionChange) {
  TraceBuilder T;
  T.write(0, X).write(0, Y).read(0, X); // lock-free: no snapshots at all
  T.end(0);
  EXPECT_EQ(runOptimized(T)->stats().NumLockSnapshots, 0u);

  TraceBuilder U;
  U.write(0, X);      // version 0: initial view, no snapshot
  U.acq(0, L1);       // version 1
  U.write(0, X);      // snapshot #1
  U.write(0, Y);      // same version: no snapshot
  U.write(0, Y);      // path-tier re-touch, still no snapshot
  U.rel(0, L1);       // version 2
  U.write(0, X);      // snapshot #2
  U.write(0, Y);      // same version: no snapshot
  U.end(0);
  EXPECT_EQ(runOptimized(U)->stats().NumLockSnapshots, 2u);
}

//===----------------------------------------------------------------------===//
// Direct-mapped collisions and eviction
//===----------------------------------------------------------------------===//

/// Two addresses aliasing one slot of a deliberately tiny cache. The
/// claim() aging policy keeps the first claimant resident — it hits the
/// verdict tier while the colliding neighbor stays store-free on the slow
/// path — until the neighbor's ClaimPeriod-th conflict finally displaces
/// it (counted as an eviction). Detection still matches a spacious run.
TEST(CheckerCollisions, AliasedSlotThrashesButStaysCorrect) {
  TestCache Probe;
  Probe.init(2);
  TestCache Wide;
  Wide.init(DefaultAccessCacheSlots);
  MemAddr A = 0x8000;
  // Collides with A in the tiny table but not in the default-sized one,
  // so the spacious control run is collision-free by construction.
  MemAddr B = collidingAddress(Probe, A);
  while (Wide.slotIndexFor(B) == Wide.slotIndexFor(A))
    B = collidingAddress(Probe, B);

  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  for (int I = 0; I < 8; ++I)
    T.write(1, A).write(1, B); // alternate: A and B fight over one slot
  T.read(2, A).read(2, B);
  T.end(1).end(2).sync(0).end(0);

  AtomicityChecker::Options Tiny;
  Tiny.AccessCacheSlots = 2;
  auto Thrashed = runOptimized(T, Tiny);
  CheckerStats Stats = Thrashed->stats();
  // A claims the slot, write 2 of A proves WW redundancy (path tier), A's
  // writes 3-8 hit; B's eight conflicts age the resident entry out on the
  // last one (B's 8th write — ClaimPeriod = 8).
  EXPECT_EQ(Stats.NumCacheEvictions, 1u);
  EXPECT_EQ(Stats.NumCacheHits, 6u);

  // With separate slots both addresses promote and hit from write 3 on,
  // and nothing is ever displaced.
  auto Spacious = runOptimized(T);
  EXPECT_EQ(Spacious->stats().NumCacheEvictions, 0u);
  EXPECT_EQ(Spacious->stats().NumCacheHits, 12u);

  std::set<MemAddr> ThrashedFound, SpaciousFound;
  for (const Violation &V : Thrashed->violations().snapshot())
    ThrashedFound.insert(V.Addr);
  for (const Violation &V : Spacious->violations().snapshot())
    SpaciousFound.insert(V.Addr);
  EXPECT_EQ(ThrashedFound, SpaciousFound);
  EXPECT_EQ(ThrashedFound, (std::set<MemAddr>{A, B}));
}

/// Runs of repeated accesses between collisions still earn verdict hits:
/// eviction only costs the next probe, not the whole run.
TEST(CheckerCollisions, HitsBetweenEvictions) {
  TestCache Probe;
  Probe.init(2);
  MemAddr A = 0x8000;
  MemAddr B = collidingAddress(Probe, A);

  TraceBuilder T;
  for (int Block = 0; Block < 3; ++Block) {
    for (int I = 0; I < 4; ++I)
      T.write(0, A);
    for (int I = 0; I < 4; ++I)
      T.write(0, B);
  }
  T.end(0);

  AtomicityChecker::Options Tiny;
  Tiny.AccessCacheSlots = 2;
  CheckerStats Stats = runOptimized(T, Tiny)->stats();
  // A claims the slot in block 1 (A2 proves WW via the path tier; A3-A4
  // hit) and stays resident through block 2 (A5-A8 hit: the aging policy
  // kept B out store-free). B's 8th conflicting claim — its block-2 run —
  // displaces A: the single eviction. Block 3: A's four conflicts are
  // waited out, B re-proves on its first re-touch (WW is still promoted
  // globally) and hits from write 2 of the block on.
  EXPECT_EQ(Stats.NumCacheEvictions, 1u);
  EXPECT_EQ(Stats.NumCacheHitWrites, 2u + 4u + 3u);
  EXPECT_EQ(Stats.NumCachePathHits, 2u); // A's write 2, B's block-3 write 1
}

//===----------------------------------------------------------------------===//
// PointerMap growth invalidates the path tier
//===----------------------------------------------------------------------===//

TEST(PointerMapGeneration, GrowAndClearBumpGeneration) {
  PointerMap<int *, int> Map;
  uint32_t Gen = Map.generation();
  std::vector<int> Keys(256);
  for (int &K : Keys) {
    Map[&K] = 1;
    if (Map.generation() != Gen)
      break;
  }
  EXPECT_NE(Map.generation(), Gen) << "growth must bump the generation";
  uint32_t Grown = Map.generation();
  Map.clear();
  EXPECT_NE(Map.generation(), Grown) << "clear must bump the generation";
}

/// Touching many fresh locations forces the task's local PointerMap to
/// rehash, which silently invalidates every memoized LocalLoc*. The stale
/// entry for the first address must then miss the path tier (MapGen
/// mismatch) and re-resolve — returning to the first address after the
/// churn must neither crash nor change verdicts.
TEST(PointerMapGeneration, GrowthInvalidatesCachedPaths) {
  TraceBuilder T;
  T.write(0, X).write(0, X);
  for (MemAddr Addr = 0x90000; Addr < 0x90000 + 8 * 512; Addr += 8)
    T.write(0, Addr); // forces PointerMap growth mid-task
  T.write(0, X).write(0, X).write(0, X);
  T.end(0);

  auto Checker = runOptimized(T);
  CheckerStats Stats = Checker->stats();
  EXPECT_EQ(Stats.NumLocations, 513u); // X plus 512 distinct addresses
  EXPECT_TRUE(Checker->violations().empty());

  // Same trace, cache off: identical verdicts and counters.
  AtomicityChecker::Options Off;
  Off.EnableAccessCache = false;
  CheckerStats OffStats = runOptimized(T, Off)->stats();
  EXPECT_EQ(OffStats.NumLocations, Stats.NumLocations);
  EXPECT_EQ(OffStats.NumWrites, Stats.NumWrites);
}

//===----------------------------------------------------------------------===//
// Randomized equivalence: the cache never changes detection verdicts
//===----------------------------------------------------------------------===//

std::set<MemAddr> verdicts(const Trace &Events, bool EnableCache,
                           unsigned Slots) {
  AtomicityChecker::Options Opts;
  Opts.EnableAccessCache = EnableCache;
  Opts.AccessCacheSlots = Slots;
  AtomicityChecker Checker(Opts);
  replayTrace(Events, Checker);
  std::set<MemAddr> Out;
  for (const Violation &V : Checker.violations().snapshot())
    Out.insert(V.Addr);
  return Out;
}

class CacheEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CacheEquivalence, SameViolationsAcrossCacheConfigurations) {
  uint64_t Seed = GetParam();
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = 4 + Seed % 12;
  Opts.NumLocations = 1 + Seed % 4;
  Opts.NumLocks = Seed % 3;
  Opts.MinOpsPerTask = 3;
  Opts.MaxOpsPerTask = 6 + Seed % 10; // long op runs: repeats are common
  Opts.LockedFraction = (Seed % 5) * 0.2;
  Opts.SyncFraction = (Seed % 4) * 0.1;
  GenProgram Program = generateProgram(Opts);

  for (const Trace &Events :
       {linearizeSerial(Program), linearizeRandom(Program, Seed * 31 + 1)}) {
    std::set<MemAddr> Reference =
        verdicts(Events, false, DefaultAccessCacheSlots);
    // The matrix: default cache, a 2-slot cache (maximal collisions), and
    // an oversized one must all agree with the uncached reference.
    EXPECT_EQ(verdicts(Events, true, DefaultAccessCacheSlots), Reference)
        << "seed " << Seed << " (default slots)";
    EXPECT_EQ(verdicts(Events, true, 2), Reference)
        << "seed " << Seed << " (2 slots)";
    EXPECT_EQ(verdicts(Events, true, 4096), Reference)
        << "seed " << Seed << " (4096 slots)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheEquivalence,
                         ::testing::Range<uint64_t>(1, 41),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Multi-threaded live regression: concurrent first accesses + fast path
//===----------------------------------------------------------------------===//

/// Many parallel tasks perform their first accesses to the same tracked
/// locations at once — racing metadataFor's install CAS (the loser must
/// adopt the winner's metadata, not its own dead pool entry) — and then
/// repeat accesses so the fast path engages while other workers mutate the
/// same GlobalMetadata. Every location carries a WW pattern and parallel
/// interleaving writes, so the full violation set must be reported under
/// every schedule, with the cache on and off.
TEST(LiveConcurrency, ConcurrentFirstAccessesKeepFullDetection) {
  constexpr unsigned NumTasks = 16;
  constexpr unsigned NumLocations = 8;
  constexpr unsigned Iters = 4; // repeats make the fast path engage
  constexpr unsigned Threads = 4;

  for (bool Cache : {true, false}) {
    for (int Rep = 0; Rep < 3; ++Rep) {
      ToolContext::Options ToolOpts;
      ToolOpts.Tool = ToolKind::Atomicity;
      ToolOpts.Checker.NumThreads = Threads;
      ToolOpts.Checker.EnableAccessCache = Cache;
      ToolContext Tool(ToolOpts);

      TrackedArray<int> Data(NumLocations);
      Tool.run([&] {
        for (unsigned T = 0; T < NumTasks; ++T)
          spawn([&Data] {
            for (unsigned I = 0; I < Iters; ++I)
              for (unsigned L = 0; L < NumLocations; ++L) {
                Data[L].store(1);
                Data[L].load();
                Data[L].load();
                Data[L].store(2);
              }
          });
      });

      std::set<MemAddr> Expected;
      for (unsigned L = 0; L < NumLocations; ++L)
        Expected.insert(Data[L].address());
      std::set<MemAddr> Found;
      for (const Violation &V :
           Tool.atomicityChecker()->violations().snapshot())
        Found.insert(V.Addr);
      EXPECT_EQ(Found, Expected)
          << "cache " << (Cache ? "on" : "off") << " rep " << Rep;

      CheckerStats Stats = Tool.atomicityChecker()->stats();
      EXPECT_EQ(Stats.NumReads, uint64_t(NumTasks) * Iters * NumLocations * 2);
      EXPECT_EQ(Stats.NumWrites,
                uint64_t(NumTasks) * Iters * NumLocations * 2);
      EXPECT_EQ(Stats.NumCacheHits > 0, Cache);
    }
  }
}

} // namespace
