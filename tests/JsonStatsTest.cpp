//===- tests/JsonStatsTest.cpp - Cross-engine JSON-stats drift guard ------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every engine publishes its counters through one seam
/// (CheckerTool::visitStats), and the JSON compatibility view plus the
/// metrics-registry publication are both derived from it. This test is
/// the drift guard the sixth and seventh engines will hit: for every
/// registered tool it asserts that the enumerated stats carry the common
/// keys (violations, reads, writes, and pre_* when pre-analysis ran),
/// that keys are unique and values finite, and that the rendered JSON
/// report actually parses.
///
//===----------------------------------------------------------------------===//

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checker/CheckerTool.h"
#include "checker/ToolRegistry.h"
#include "support/JsonReport.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON acceptor — enough grammar to reject malformed output
// (unbalanced structure, bare NaN, trailing garbage) without an external
// dependency.
//===----------------------------------------------------------------------===//

class JsonAcceptor {
public:
  explicit JsonAcceptor(const std::string &Text) : Text(Text) {}

  bool accept() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == Text.size();
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  bool consume(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }
  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }
  bool literal(const char *Word) {
    size_t Len = std::char_traits<char>::length(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }
  bool string() {
    if (!consume('"'))
      return false;
    while (Pos < Text.size() && Text[Pos] != '"') {
      if (Text[Pos] == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return false;
      }
      ++Pos;
    }
    return consume('"');
  }
  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      ++Pos;
    if (peek() == '.') {
      ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start && std::isdigit(static_cast<unsigned char>(
                              Text[Pos - 1]));
  }
  bool members(char Close, bool Keyed) {
    skipWs();
    if (consume(Close))
      return true;
    while (true) {
      skipWs();
      if (Keyed) {
        if (!string())
          return false;
        skipWs();
        if (!consume(':'))
          return false;
        skipWs();
      }
      if (!value())
        return false;
      skipWs();
      if (consume(','))
        continue;
      return consume(Close);
    }
  }
  bool value() {
    switch (peek()) {
    case '{':
      ++Pos;
      return members('}', true);
    case '[':
      ++Pos;
      return members(']', false);
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// A deterministic workload big enough that every engine counts reads,
/// writes, and pre-analysis sites.
Trace statsTrace() {
  TraceGenOptions Opts;
  Opts.Seed = 42;
  Opts.NumTasks = 12;
  Opts.NumLocations = 6;
  Opts.NumLocks = 2;
  return linearizeSerial(generateProgram(Opts));
}

/// Runs \p Reg's engine over the shared trace and returns its enumerated
/// stats in visit order.
std::vector<std::pair<std::string, double>>
collectStats(const ToolRegistration &Reg, const ToolOptions &Opts,
             std::unique_ptr<CheckerTool> *ToolOut = nullptr) {
  std::unique_ptr<CheckerTool> Tool = Reg.Factory(Opts, nullptr);
  replayTraceTwoPass(statsTrace(), *Tool);
  std::vector<std::pair<std::string, double>> Stats;
  Tool->visitStats([&Stats](const char *Key, double Value) {
    Stats.emplace_back(Key, Value);
  });
  if (ToolOut)
    *ToolOut = std::move(Tool);
  return Stats;
}

TEST(JsonAcceptorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonAcceptor("{\"a\": [1, 2.5, -3e-2], \"b\": \"x\"}").accept());
  EXPECT_TRUE(JsonAcceptor("{\"meta\": {}, \"rows\": []}").accept());
  EXPECT_FALSE(JsonAcceptor("{\"a\": }").accept());
  EXPECT_FALSE(JsonAcceptor("{\"a\": 1").accept());
  EXPECT_FALSE(JsonAcceptor("{\"a\": nan}").accept());
  EXPECT_FALSE(JsonAcceptor("{} trailing").accept());
}

TEST(JsonStatsDrift, EveryToolCarriesTheCommonKeys) {
  for (const ToolRegistration &Reg : ToolRegistry::instance().all()) {
    if (!Reg.Factory)
      continue; // the "none" pseudo-tool runs nothing
    std::unique_ptr<CheckerTool> Tool;
    auto Stats = collectStats(Reg, ToolOptions(), &Tool);
    ASSERT_FALSE(Stats.empty()) << Reg.Name;

    std::map<std::string, double> ByKey;
    for (const auto &[Key, Value] : Stats) {
      EXPECT_TRUE(ByKey.emplace(Key, Value).second)
          << Reg.Name << " emits duplicate stats key '" << Key << "'";
      EXPECT_TRUE(std::isfinite(Value))
          << Reg.Name << " emits non-finite '" << Key << "'";
    }

    // The ToolOptions-level contract every front end relies on.
    ASSERT_TRUE(ByKey.count("violations")) << Reg.Name;
    ASSERT_TRUE(ByKey.count("reads")) << Reg.Name;
    ASSERT_TRUE(ByKey.count("writes")) << Reg.Name;
    EXPECT_EQ(ByKey["violations"], double(Tool->numViolations()))
        << Reg.Name << ": the violations stat must mirror numViolations()";
    EXPECT_GT(ByKey["reads"] + ByKey["writes"], 0)
        << Reg.Name << " saw no accesses on a trace full of them";

    // Engines with the shared access-cache block carry its counters too.
    if (ByKey.count("cache_hits")) {
      EXPECT_TRUE(ByKey.count("cache_hit_reads")) << Reg.Name;
      EXPECT_TRUE(ByKey.count("cache_hit_writes")) << Reg.Name;
      EXPECT_TRUE(ByKey.count("cache_hit_pct")) << Reg.Name;
    }
  }
}

TEST(JsonStatsDrift, PreanalysisKeysAppearWhenEnabled) {
  ToolOptions Opts;
  Opts.Preanalysis = PreanalysisMode::On;
  for (const ToolRegistration &Reg : ToolRegistry::instance().all()) {
    if (!Reg.Factory)
      continue;
    auto Stats = collectStats(Reg, Opts);
    std::map<std::string, double> ByKey(Stats.begin(), Stats.end());
    EXPECT_TRUE(ByKey.count("pre_seq_skips")) << Reg.Name;
    EXPECT_TRUE(ByKey.count("pre_site_skips")) << Reg.Name;
    EXPECT_TRUE(ByKey.count("pre_sites")) << Reg.Name;
    EXPECT_TRUE(ByKey.count("pre_downgrades")) << Reg.Name;
  }
}

TEST(JsonStatsDrift, EmittedJsonParsesAndMatchesVisitStats) {
  for (const ToolRegistration &Reg : ToolRegistry::instance().all()) {
    if (!Reg.Factory)
      continue;
    std::unique_ptr<CheckerTool> Tool;
    auto Stats = collectStats(Reg, ToolOptions(), &Tool);

    JsonReport Report;
    Report.meta("tool", Reg.Name);
    JsonReport::Row &Row = Report.row();
    Tool->emitJsonStats(Row);
    std::string Path = tempPath(("stats_" + Reg.Name + ".json").c_str());
    ASSERT_TRUE(Report.write(Path));
    std::string Text = slurp(Path);

    EXPECT_TRUE(JsonAcceptor(Text).accept())
        << Reg.Name << " wrote unparseable JSON:\n"
        << Text;
    // The compatibility view is derived from visitStats, so every
    // enumerated key must surface as a JSON field.
    for (const auto &[Key, Value] : Stats)
      EXPECT_NE(Text.find("\"" + Key + "\": "), std::string::npos)
          << Reg.Name << " dropped '" << Key << "' from the JSON view";
    EXPECT_NE(Text.find("\"tool\": \"" + Reg.Name + "\""), std::string::npos);
  }
}

} // namespace
