//===- tests/DpstBuilderTest.cpp - Event-driven tree construction ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/DpstBuilder.h"

#include <gtest/gtest.h>

#include "dpst/ArrayDpst.h"

using namespace avc;

namespace {

class DpstBuilderTest : public ::testing::Test {
protected:
  ArrayDpst Tree;
  DpstBuilder Builder{Tree};
  TaskFrame Root;

  void SetUp() override { Builder.initRoot(Root, 0); }
};

TEST_F(DpstBuilderTest, RootFrame) {
  EXPECT_EQ(Tree.numNodes(), 1u);
  EXPECT_EQ(Tree.kind(0), DpstNodeKind::Finish);
  EXPECT_EQ(Root.taskId(), 0u);
  EXPECT_EQ(Root.currentStepOrInvalid(), InvalidNodeId);
}

TEST_F(DpstBuilderTest, StepsAreLazyAndSticky) {
  // No step exists until an access asks for one.
  EXPECT_EQ(Tree.numNodes(), 1u);
  NodeId S = Builder.currentStep(Root);
  EXPECT_EQ(Tree.kind(S), DpstNodeKind::Step);
  EXPECT_EQ(Tree.parent(S), Tree.root());
  // Repeated accesses stay in the same maximal region.
  EXPECT_EQ(Builder.currentStep(Root), S);
  EXPECT_EQ(Tree.numNodes(), 2u);
}

TEST_F(DpstBuilderTest, SpawnOpensImplicitFinishAndResetsStep) {
  NodeId Before = Builder.currentStep(Root);
  TaskFrame Child;
  Builder.spawnTask(Root, nullptr, Child, 1);
  // Implicit finish under root, async under it.
  ASSERT_EQ(Tree.numNodes(), 4u);
  NodeId Finish = 2, Async = 3;
  EXPECT_EQ(Tree.kind(Finish), DpstNodeKind::Finish);
  EXPECT_EQ(Tree.parent(Finish), Tree.root());
  EXPECT_EQ(Tree.kind(Async), DpstNodeKind::Async);
  EXPECT_EQ(Tree.parent(Async), Finish);
  EXPECT_EQ(Tree.taskId(Async), 1u);

  // The child's first step lands under the async node.
  NodeId ChildStep = Builder.currentStep(Child);
  EXPECT_EQ(Tree.parent(ChildStep), Async);

  // The parent's continuation is a fresh step under the implicit finish,
  // parallel with the child and serial with the pre-spawn step.
  NodeId Cont = Builder.currentStep(Root);
  EXPECT_NE(Cont, Before);
  EXPECT_EQ(Tree.parent(Cont), Finish);
  EXPECT_TRUE(Tree.logicallyParallelUncached(ChildStep, Cont));
  EXPECT_FALSE(Tree.logicallyParallelUncached(ChildStep, Before));
}

TEST_F(DpstBuilderTest, SecondSpawnReusesOpenImplicitScope) {
  TaskFrame C1, C2;
  Builder.spawnTask(Root, nullptr, C1, 1);
  size_t NodesAfterFirst = Tree.numNodes();
  Builder.spawnTask(Root, nullptr, C2, 2);
  // Only one new async node: the implicit finish is shared.
  EXPECT_EQ(Tree.numNodes(), NodesAfterFirst + 1);
  NodeId S1 = Builder.currentStep(C1);
  NodeId S2 = Builder.currentStep(C2);
  EXPECT_TRUE(Tree.logicallyParallelUncached(S1, S2));
}

TEST_F(DpstBuilderTest, SyncClosesImplicitScope) {
  TaskFrame Child;
  Builder.spawnTask(Root, nullptr, Child, 1);
  NodeId ChildStep = Builder.currentStep(Child);
  Builder.sync(Root);
  NodeId After = Builder.currentStep(Root);
  // Post-sync work is ordered after the child.
  EXPECT_FALSE(Tree.logicallyParallelUncached(ChildStep, After));
  EXPECT_EQ(Tree.parent(After), Tree.root());
}

TEST_F(DpstBuilderTest, SyncWithoutSpawnOnlyEndsRegion) {
  NodeId Before = Builder.currentStep(Root);
  size_t Nodes = Tree.numNodes();
  Builder.sync(Root);
  EXPECT_EQ(Tree.numNodes(), Nodes); // no structural change
  NodeId After = Builder.currentStep(Root);
  EXPECT_NE(Before, After); // but the maximal region ended
  EXPECT_FALSE(Tree.logicallyParallelUncached(Before, After));
}

TEST_F(DpstBuilderTest, SpawnAfterSyncOpensFreshScope) {
  TaskFrame C1, C2;
  Builder.spawnTask(Root, nullptr, C1, 1);
  NodeId S1 = Builder.currentStep(C1);
  Builder.sync(Root);
  Builder.spawnTask(Root, nullptr, C2, 2);
  NodeId S2 = Builder.currentStep(C2);
  // Children separated by a sync are ordered.
  EXPECT_FALSE(Tree.logicallyParallelUncached(S1, S2));
}

TEST_F(DpstBuilderTest, ExplicitGroupsNestAndClose) {
  int GroupA = 0, GroupB = 0; // addresses serve as tags
  TaskFrame C1, C2;
  Builder.spawnTask(Root, &GroupA, C1, 1);
  EXPECT_EQ(Root.numOpenScopes(), 1u);
  Builder.spawnTask(Root, &GroupB, C2, 2);
  EXPECT_EQ(Root.numOpenScopes(), 2u);
  NodeId S1 = Builder.currentStep(C1);
  NodeId S2 = Builder.currentStep(C2);
  // B nests inside A, so both children are mutually parallel.
  EXPECT_TRUE(Tree.logicallyParallelUncached(S1, S2));

  Builder.waitGroup(Root, &GroupB);
  EXPECT_EQ(Root.numOpenScopes(), 1u);
  NodeId Between = Builder.currentStep(Root);
  // After B joined: serial with B's child, still parallel with A's.
  EXPECT_FALSE(Tree.logicallyParallelUncached(S2, Between));
  EXPECT_TRUE(Tree.logicallyParallelUncached(S1, Between));

  Builder.waitGroup(Root, &GroupA);
  EXPECT_EQ(Root.numOpenScopes(), 0u);
  NodeId After = Builder.currentStep(Root);
  EXPECT_FALSE(Tree.logicallyParallelUncached(S1, After));
}

TEST_F(DpstBuilderTest, WaitOnEmptyGroupIsStructuralNoop) {
  int Group = 0;
  size_t Nodes = Tree.numNodes();
  Builder.waitGroup(Root, &Group);
  EXPECT_EQ(Tree.numNodes(), Nodes);
}

TEST_F(DpstBuilderTest, EndTaskClosesOpenScopes) {
  TaskFrame Child, Grandchild;
  Builder.spawnTask(Root, nullptr, Child, 1);
  Builder.spawnTask(Child, nullptr, Grandchild, 2);
  NodeId GrandStep = Builder.currentStep(Grandchild);
  EXPECT_EQ(Child.numOpenScopes(), 1u);
  Builder.endTask(Child);
  EXPECT_EQ(Child.numOpenScopes(), 0u);
  // The grandchild joined at the child's implicit end-of-task sync, so the
  // root's post-join work is serial with it once the root syncs too.
  Builder.sync(Root);
  NodeId After = Builder.currentStep(Root);
  EXPECT_FALSE(Tree.logicallyParallelUncached(GrandStep, After));
}

TEST_F(DpstBuilderTest, GrandchildParallelWithUncle) {
  // root spawns C1; C1 spawns G; root spawns C2. G must be parallel with
  // C2's steps and with the root's continuation.
  TaskFrame C1, G, C2;
  Builder.spawnTask(Root, nullptr, C1, 1);
  Builder.spawnTask(C1, nullptr, G, 2);
  Builder.spawnTask(Root, nullptr, C2, 3);
  NodeId GStep = Builder.currentStep(G);
  NodeId C2Step = Builder.currentStep(C2);
  NodeId RootCont = Builder.currentStep(Root);
  EXPECT_TRUE(Tree.logicallyParallelUncached(GStep, C2Step));
  EXPECT_TRUE(Tree.logicallyParallelUncached(GStep, RootCont));
  NodeId C1Step = Builder.currentStep(C1);
  // C1's continuation after spawning G is parallel with G.
  EXPECT_TRUE(Tree.logicallyParallelUncached(GStep, C1Step));
}

} // namespace
