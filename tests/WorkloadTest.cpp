//===- tests/WorkloadTest.cpp - Benchmark kernel smoke tests --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Each of the thirteen Table 1 kernels must (a) run to completion under
/// every tool, (b) perform tracked accesses, and (c) be free of atomicity
/// violations — the paper measures overhead on these applications and
/// reports detection results separately, so a violation here would be a
/// kernel bug.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include "instrument/ToolContext.h"

using namespace avc;
using namespace avc::workloads;

namespace {

constexpr double TestScale = 0.02; // tiny inputs; structure is what matters

class WorkloadSmoke : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadSmoke, CleanUnderOptimizedChecker) {
  const Workload &W = GetParam();
  ToolContext Tool(ToolKind::Atomicity);
  Tool.run([&] { W.Run(TestScale); });
  EXPECT_EQ(Tool.numViolations(), 0u) << W.Name;
  CheckerStats Stats = Tool.atomicityChecker()->stats();
  EXPECT_GT(Stats.NumReads + Stats.NumWrites, 0u) << W.Name;
  EXPECT_GT(Stats.NumLocations, 0u) << W.Name;
  EXPECT_GT(Stats.NumDpstNodes, 1u) << W.Name;
}

TEST_P(WorkloadSmoke, CleanUnderVelodrome) {
  const Workload &W = GetParam();
  ToolContext Tool(ToolKind::Velodrome);
  Tool.run([&] { W.Run(TestScale); });
  EXPECT_EQ(Tool.numViolations(), 0u) << W.Name;
}

TEST_P(WorkloadSmoke, RunsUninstrumentedMultithreaded) {
  const Workload &W = GetParam();
  ToolContext Tool(ToolKind::None, /*NumThreads=*/4);
  Tool.run([&] { W.Run(TestScale); });
  EXPECT_EQ(Tool.numViolations(), 0u) << W.Name;
}

TEST_P(WorkloadSmoke, CheckerDeterministicAcrossRuns) {
  const Workload &W = GetParam();
  // The access cache's slot mapping is keyed by runtime addresses, so the
  // number of LCA queries it elides can vary with heap layout; disable it
  // so every counter below is address-independent.
  ToolContext::Options Opts;
  Opts.Checker.EnableAccessCache = false;
  CheckerStats First, Second;
  for (int Round = 0; Round < 2; ++Round) {
    ToolContext Tool(Opts);
    Tool.run([&] { W.Run(TestScale); });
    (Round == 0 ? First : Second) = Tool.atomicityChecker()->stats();
  }
  // Addresses differ between runs, but structural counters must not.
  EXPECT_EQ(First.NumLocations, Second.NumLocations) << W.Name;
  EXPECT_EQ(First.NumReads, Second.NumReads) << W.Name;
  EXPECT_EQ(First.NumWrites, Second.NumWrites) << W.Name;
  EXPECT_EQ(First.NumDpstNodes, Second.NumDpstNodes) << W.Name;
  EXPECT_EQ(First.Lca.NumQueries, Second.Lca.NumQueries) << W.Name;
}

std::vector<Workload> workloadList() {
  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  return std::vector<Workload>(Table, Table + Count);
}

INSTANTIATE_TEST_SUITE_P(AllThirteen, WorkloadSmoke,
                         ::testing::ValuesIn(workloadList()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(WorkloadRegistry, ThirteenBenchmarksInTableOrder) {
  size_t Count = 0;
  const Workload *Table = allWorkloads(Count);
  ASSERT_EQ(Count, 13u);
  EXPECT_STREQ(Table[0].Name, "blackscholes");
  EXPECT_STREQ(Table[12].Name, "sort");
}

/// blackscholes' defining Table 1 property: zero LCA queries (every
/// location is touched by exactly one step).
TEST(WorkloadCharacteristics, BlackscholesPerformsNoLcaQueries) {
  ToolContext Tool(ToolKind::Atomicity);
  Tool.run([] { runBlackscholes(TestScale); });
  EXPECT_EQ(Tool.atomicityChecker()->stats().Lca.NumQueries, 0u);
}

/// kmeans' defining property: LCA queries vastly outnumber locations
/// (shared centroids are re-read by every step).
TEST(WorkloadCharacteristics, KmeansIsLcaQueryHeavy) {
  ToolContext Tool(ToolKind::Atomicity);
  Tool.run([] { runKmeans(TestScale); });
  CheckerStats Stats = Tool.atomicityChecker()->stats();
  EXPECT_GT(Stats.Lca.NumQueries, Stats.NumLocations);
}

} // namespace
