//===- tests/ToolRegistryTest.cpp - CheckerTool registry contract ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ToolRegistry is the seam every front end (taskcheck, ToolContext,
/// batch replay, the benches) dispatches through, so its contract is
/// pinned here: the canonical instance carries all built-in engines with
/// working factories, lookups resolve by name and by kind, duplicate names
/// are rejected without mutating the table, and factories hand out fully
/// isolated engine instances.
///
//===----------------------------------------------------------------------===//

#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"
#include "checker/AtomicityChecker.h"
#include "checker/ToolRegistry.h"
#include "checker/VectorClockAtomicity.h"

using namespace avc;

namespace {

TEST(ToolRegistry, InstanceCarriesEveryBuiltin) {
  ToolRegistry &Reg = ToolRegistry::instance();
  const std::set<std::string> Expected = {"atomicity", "basic", "velodrome",
                                          "vclock",    "race",  "determinism",
                                          "none"};
  std::set<std::string> Found;
  for (const ToolRegistration &R : Reg.all())
    Found.insert(R.Name);
  EXPECT_EQ(Found, Expected);

  for (const ToolRegistration &R : Reg.all()) {
    EXPECT_FALSE(R.Description.empty()) << R.Name;
    if (R.Kind == ToolKind::None) {
      EXPECT_FALSE(R.Factory) << "the pseudo-tool runs nothing";
      continue;
    }
    ASSERT_TRUE(R.Factory) << R.Name;
    std::unique_ptr<CheckerTool> Tool = R.Factory(ToolOptions(), nullptr);
    ASSERT_NE(Tool, nullptr) << R.Name;
    EXPECT_EQ(Tool->name(), R.Name)
        << "engine self-reported name must match its registration";
    EXPECT_EQ(Tool->numViolations(), 0u) << R.Name << " must start clean";
  }
}

TEST(ToolRegistry, FindByNameAndKind) {
  ToolRegistry &Reg = ToolRegistry::instance();

  const ToolRegistration *ByName = Reg.find("vclock");
  ASSERT_NE(ByName, nullptr);
  EXPECT_EQ(ByName->Kind, ToolKind::VClock);

  const ToolRegistration *ByKind = Reg.find(ToolKind::VClock);
  ASSERT_NE(ByKind, nullptr);
  EXPECT_EQ(ByKind, ByName) << "name and kind lookups hit the same row";

  EXPECT_EQ(Reg.find("no-such-engine"), nullptr);
  EXPECT_EQ(Reg.find(""), nullptr);

  // toolKindName round-trips through the registry rows.
  for (const ToolRegistration &R : Reg.all())
    EXPECT_STREQ(toolKindName(R.Kind), R.Name.c_str());
}

TEST(ToolRegistry, NamesListsEveryRegistration) {
  ToolRegistry &Reg = ToolRegistry::instance();
  std::string Names = Reg.names();
  for (const ToolRegistration &R : Reg.all())
    EXPECT_NE(Names.find(R.Name), std::string::npos) << R.Name;
}

TEST(ToolRegistry, DuplicateNamesAreRejected) {
  ToolRegistry Reg; // private table: tests never mutate the instance()
  auto Factory = [](const ToolOptions &Opts,
                    const ToolExtras *) -> std::unique_ptr<CheckerTool> {
    VectorClockAtomicity::Options EngineOpts;
    static_cast<ToolOptions &>(EngineOpts) = Opts;
    return std::make_unique<VectorClockAtomicity>(EngineOpts);
  };
  EXPECT_TRUE(Reg.add({ToolKind::VClock, "mytool", "first", Factory}));
  EXPECT_FALSE(Reg.add({ToolKind::Atomicity, "mytool", "imposter", Factory}))
      << "second registration under a taken name must be rejected";

  ASSERT_EQ(Reg.all().size(), 1u) << "rejected add must not grow the table";
  const ToolRegistration *Found = Reg.find("mytool");
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->Kind, ToolKind::VClock);
  EXPECT_EQ(Found->Description, "first")
      << "rejected add must not overwrite the original row";
}

TEST(ToolRegistry, FactoriesProduceIsolatedInstances) {
  const ToolRegistration *Row = ToolRegistry::instance().find("vclock");
  ASSERT_NE(Row, nullptr);
  std::unique_ptr<CheckerTool> A = Row->Factory(ToolOptions(), nullptr);
  std::unique_ptr<CheckerTool> B = Row->Factory(ToolOptions(), nullptr);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(A.get(), B.get());

  // Drive a violating trace through A only; B must stay pristine.
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, 0x1000).write(2, 0x1000).read(1, 0x1000);
  T.end(1).end(2).sync(0).end(0);
  replayTrace(T.finish(), *A);

  EXPECT_GT(A->numViolations(), 0u)
      << "the interleaved read-write-read must close a cycle";
  EXPECT_EQ(B->numViolations(), 0u)
      << "sibling instance from the same factory must share no state";
}

} // namespace
