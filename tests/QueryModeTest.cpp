//===- tests/QueryModeTest.cpp - Walk/Lift/Label equivalence --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Randomized cross-checks of the query-acceleration index
/// (DpstQueryIndex.h): on trees of every shape the builder can produce —
/// bushy 100k-node trees, degenerate deep chains, label-arena overflow —
/// the three query modes must agree on both logicallyParallel and
/// treeOrderedBefore for every sampled pair. Walk (the paper's LCA walk
/// over the layout) is the reference; Lift and Label answer from the side
/// index and must be behaviorally indistinguishable.
///
//===----------------------------------------------------------------------===//

#include "dpst/DpstQueryIndex.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dpst/Dpst.h"
#include "support/Random.h"

using namespace avc;

namespace {

struct TreeSample {
  std::unique_ptr<Dpst> Tree;
  std::vector<NodeId> Nodes; ///< every node, any kind
  std::vector<NodeId> Steps; ///< step leaves only
};

/// Random bushy tree (the shape real nested-parallel programs produce;
/// depth grows logarithmically with size).
TreeSample buildBushy(DpstLayout Layout, uint64_t Seed, size_t NumNodes) {
  TreeSample Sample;
  Sample.Tree = createDpst(Layout);
  SplitMix64 Rng(Seed);
  NodeId Root = Sample.Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  Sample.Nodes.push_back(Root);
  std::vector<NodeId> Scopes{Root};
  while (Sample.Tree->numNodes() < NumNodes) {
    NodeId Scope = Scopes[Rng.nextBelow(Scopes.size())];
    NodeId Added;
    switch (Rng.nextBelow(4)) {
    case 0:
      Added = Sample.Tree->addNode(Scope, DpstNodeKind::Finish, 0);
      Scopes.push_back(Added);
      break;
    case 1:
      Added = Sample.Tree->addNode(Scope, DpstNodeKind::Async, 0);
      Scopes.push_back(Added);
      break;
    default:
      Added = Sample.Tree->addNode(Scope, DpstNodeKind::Step, 0);
      Sample.Steps.push_back(Added);
      break;
    }
    Sample.Nodes.push_back(Added);
  }
  return Sample;
}

/// Degenerate deep chain: a finish spine of the requested depth with an
/// async/step fork sprinkled every \p ForkEvery levels. Step count stays
/// small, so total label memory is bounded even though each label is long.
TreeSample buildDeepSpine(DpstLayout Layout, uint32_t Depth,
                          uint32_t ForkEvery) {
  TreeSample Sample;
  Sample.Tree = createDpst(Layout);
  NodeId Spine = Sample.Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  Sample.Nodes.push_back(Spine);
  for (uint32_t I = 0; I < Depth; ++I) {
    if (I % ForkEvery == 0) {
      NodeId Async = Sample.Tree->addNode(Spine, DpstNodeKind::Async, 1);
      NodeId Forked = Sample.Tree->addNode(Async, DpstNodeKind::Step, 1);
      NodeId Serial = Sample.Tree->addNode(Spine, DpstNodeKind::Step, 0);
      Sample.Nodes.push_back(Async);
      Sample.Nodes.push_back(Forked);
      Sample.Nodes.push_back(Serial);
      Sample.Steps.push_back(Forked);
      Sample.Steps.push_back(Serial);
    }
    Spine = Sample.Tree->addNode(Spine, DpstNodeKind::Finish, 0);
    Sample.Nodes.push_back(Spine);
  }
  NodeId Bottom = Sample.Tree->addNode(Spine, DpstNodeKind::Step, 0);
  Sample.Nodes.push_back(Bottom);
  Sample.Steps.push_back(Bottom);
  return Sample;
}

/// Asserts all three modes agree on \p NumPairs random pairs from \p Pool,
/// for both the parallelism and the tree-order query.
void crossCheckPairs(const Dpst &Tree, const std::vector<NodeId> &Pool,
                     uint64_t Seed, int NumPairs) {
  SplitMix64 Rng(Seed);
  for (int I = 0; I < NumPairs; ++I) {
    NodeId A = Pool[Rng.nextBelow(Pool.size())];
    NodeId B = Pool[Rng.nextBelow(Pool.size())];
    if (A == B)
      continue;
    bool Walk = Tree.logicallyParallel(A, B, QueryMode::Walk);
    ASSERT_EQ(Walk, Tree.logicallyParallel(A, B, QueryMode::Lift))
        << "lift parallel mismatch: " << A << " vs " << B;
    ASSERT_EQ(Walk, Tree.logicallyParallel(A, B, QueryMode::Label))
        << "label parallel mismatch: " << A << " vs " << B;
    bool Order = Tree.treeOrderedBefore(A, B, QueryMode::Walk);
    ASSERT_EQ(Order, Tree.treeOrderedBefore(A, B, QueryMode::Lift))
        << "lift order mismatch: " << A << " vs " << B;
    ASSERT_EQ(Order, Tree.treeOrderedBefore(A, B, QueryMode::Label))
        << "label order mismatch: " << A << " vs " << B;
  }
}

TEST(QueryMode, ParseAndName) {
  QueryMode Mode = QueryMode::Walk;
  EXPECT_TRUE(parseQueryMode("label", Mode));
  EXPECT_EQ(Mode, QueryMode::Label);
  EXPECT_TRUE(parseQueryMode("lift", Mode));
  EXPECT_EQ(Mode, QueryMode::Lift);
  EXPECT_TRUE(parseQueryMode("walk", Mode));
  EXPECT_EQ(Mode, QueryMode::Walk);
  EXPECT_FALSE(parseQueryMode("bogus", Mode));
  EXPECT_STREQ(queryModeName(QueryMode::Walk), "walk");
  EXPECT_STREQ(queryModeName(QueryMode::Lift), "lift");
  EXPECT_STREQ(queryModeName(QueryMode::Label), "label");
}

TEST(QueryMode, RandomizedCrossCheckManySeeds) {
  // 56 seeds, alternating layouts; moderate trees so the sweep covers many
  // random shapes quickly. The 100k-node shapes get their own tests below.
  for (uint64_t Seed = 1; Seed <= 56; ++Seed) {
    DpstLayout Layout =
        (Seed % 2 == 0) ? DpstLayout::Array : DpstLayout::Linked;
    TreeSample Sample = buildBushy(Layout, Seed * 977, 2000);
    crossCheckPairs(*Sample.Tree, Sample.Nodes, Seed * 31 + 7, 400);
    crossCheckPairs(*Sample.Tree, Sample.Steps, Seed * 31 + 8, 400);
  }
}

TEST(QueryMode, HundredThousandNodeBushyTree) {
  for (DpstLayout Layout : {DpstLayout::Array, DpstLayout::Linked}) {
    TreeSample Sample = buildBushy(Layout, 4242, 120000);
    ASSERT_GE(Sample.Tree->numNodes(), 100000u);
    crossCheckPairs(*Sample.Tree, Sample.Nodes, 99, 3000);
    crossCheckPairs(*Sample.Tree, Sample.Steps, 100, 3000);
  }
}

TEST(QueryMode, DegenerateDeepChain) {
  // 100k-node spine; forks every 2048 levels keep the total label arena
  // bounded (~100 steps) while each label spans tens of thousands of
  // entries — the Label worst case, and the Walk worst case too.
  for (DpstLayout Layout : {DpstLayout::Array, DpstLayout::Linked}) {
    TreeSample Sample = buildDeepSpine(Layout, 100000, 2048);
    ASSERT_GE(Sample.Tree->numNodes(), 100000u);
    crossCheckPairs(*Sample.Tree, Sample.Steps, 7, 500);
    crossCheckPairs(*Sample.Tree, Sample.Nodes, 8, 500);
  }
}

TEST(QueryMode, LabelArenaCapFallsBackToLift) {
  // A tiny label budget starves later steps of labels; Label mode must
  // transparently fall back to lifting and still agree with Walk.
  std::unique_ptr<Dpst> Tree = createDpst(DpstLayout::Array);
  Tree->queryIndex().setLabelCapacityWords(8);
  SplitMix64 Rng(5);
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  std::vector<NodeId> Scopes{Root};
  std::vector<NodeId> Steps;
  while (Tree->numNodes() < 4000) {
    NodeId Scope = Scopes[Rng.nextBelow(Scopes.size())];
    switch (Rng.nextBelow(3)) {
    case 0:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Finish, 0));
      break;
    case 1:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Async, 0));
      break;
    default:
      Steps.push_back(Tree->addNode(Scope, DpstNodeKind::Step, 0));
      break;
    }
  }
  size_t Unlabeled = 0;
  for (NodeId Step : Steps)
    if (!Tree->queryIndex().hasLabel(Step))
      ++Unlabeled;
  EXPECT_GT(Unlabeled, Steps.size() / 2) << "cap did not engage";
  EXPECT_LE(Tree->queryIndex().labelArenaWords(), 8u);
  crossCheckPairs(*Tree, Steps, 11, 2000);
}

TEST(QueryMode, OversizedLabelThenSmallLabelsDoNotAlias) {
  // Regression: an oversized label (depth > the 65536-word label chunk)
  // gets a dedicated arena chunk, but the allocator used to keep bump-
  // allocating from LabelChunks.back() — which after the push IS the
  // dedicated chunk — so the next small labels overwrote the oversized
  // label's words and Label mode silently answered from corrupted data.
  std::unique_ptr<Dpst> Tree = createDpst(DpstLayout::Array);
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  std::vector<NodeId> Steps;

  // A small label first, so the common bump chunk is active.
  NodeId Async0 = Tree->addNode(Root, DpstNodeKind::Async, 1);
  Steps.push_back(Tree->addNode(Async0, DpstNodeKind::Step, 1));

  // Finish spine past the chunk size, with an (initially childless) async
  // fork planted at depth 1000 to the *left* of the spine continuation.
  NodeId Spine = Tree->addNode(Root, DpstNodeKind::Finish, 0);
  NodeId AsyncFork = InvalidNodeId;
  for (uint32_t Depth = 1; Depth < 70000; ++Depth) {
    if (Depth == 1000)
      AsyncFork = Tree->addNode(Spine, DpstNodeKind::Async, 2);
    Spine = Tree->addNode(Spine, DpstNodeKind::Finish, 0);
  }
  NodeId AsyncDeep = Tree->addNode(Spine, DpstNodeKind::Async, 3);
  NodeId DeepStep = Tree->addNode(AsyncDeep, DpstNodeKind::Step, 3);
  Steps.push_back(DeepStep);
  ASSERT_TRUE(Tree->queryIndex().hasLabel(DeepStep))
      << "oversized label not built: the regression is not exercised";

  // Small labels allocated *after* the oversized one; under the bug these
  // landed inside the oversized chunk, corrupting DeepStep's label.
  NodeId ForkStep = Tree->addNode(AsyncFork, DpstNodeKind::Step, 2);
  Steps.push_back(ForkStep);
  for (int I = 0; I < 32; ++I) {
    NodeId Async = Tree->addNode(Root, DpstNodeKind::Async, 4);
    Steps.push_back(Tree->addNode(Async, DpstNodeKind::Step, 4));
  }

  // ForkStep forked off the spine, so it runs parallel to DeepStep; the
  // corrupted label used to report them serial.
  EXPECT_TRUE(Tree->logicallyParallel(DeepStep, ForkStep, QueryMode::Walk));
  EXPECT_TRUE(Tree->logicallyParallel(DeepStep, ForkStep, QueryMode::Label));
  crossCheckPairs(*Tree, Steps, 21, 500);
}

TEST(QueryMode, WalkModeTreeSkipsIndexConstruction) {
  // A tree created for a Walk-only run must not build the query index (the
  // fig13/fig14 Walk ablation measures the paper's baseline cost); Lift
  // and Label queries against it degrade to Walk.
  std::unique_ptr<Dpst> Tree = createDpst(DpstLayout::Array, QueryMode::Walk);
  EXPECT_FALSE(Tree->hasQueryIndex());
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId Async = Tree->addNode(Root, DpstNodeKind::Async, 1);
  NodeId A = Tree->addNode(Async, DpstNodeKind::Step, 1);
  NodeId B = Tree->addNode(Root, DpstNodeKind::Step, 0);
  EXPECT_EQ(Tree->queryIndex().numNodes(), 0u);
  EXPECT_EQ(Tree->queryIndex().labelArenaWords(), 0u);
  for (QueryMode Mode : {QueryMode::Walk, QueryMode::Lift, QueryMode::Label}) {
    EXPECT_TRUE(Tree->logicallyParallel(A, B, Mode));
    EXPECT_TRUE(Tree->treeOrderedBefore(A, B, Mode));
  }

  std::unique_ptr<Dpst> Labeled =
      createDpst(DpstLayout::Linked, QueryMode::Label);
  EXPECT_TRUE(Labeled->hasQueryIndex());
  Labeled->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  EXPECT_EQ(Labeled->queryIndex().numNodes(), 1u);
}

TEST(QueryMode, LabelMemoryAccounting) {
  // A balanced-ish tree's arena stays near (steps * avg depth) words and
  // far below the default cap.
  TreeSample Sample = buildBushy(DpstLayout::Array, 17, 10000);
  size_t Words = Sample.Tree->queryIndex().labelArenaWords();
  EXPECT_GT(Words, Sample.Steps.size()); // every step labeled, depth >= 1
  EXPECT_LT(Words, (size_t(1) << 24));
  for (NodeId Step : Sample.Steps)
    EXPECT_TRUE(Sample.Tree->queryIndex().hasLabel(Step));
}

} // namespace
