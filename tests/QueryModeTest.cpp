//===- tests/QueryModeTest.cpp - Walk/Lift/Label equivalence --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Randomized cross-checks of the query-acceleration index
/// (DpstQueryIndex.h): on trees of every shape the builder can produce —
/// bushy 100k-node trees, degenerate deep chains, label-arena overflow —
/// the three query modes must agree on both logicallyParallel and
/// treeOrderedBefore for every sampled pair. Walk (the paper's LCA walk
/// over the layout) is the reference; Lift and Label answer from the side
/// index and must be behaviorally indistinguishable.
///
//===----------------------------------------------------------------------===//

#include "dpst/DpstQueryIndex.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dpst/Dpst.h"
#include "support/Random.h"

using namespace avc;

namespace {

struct TreeSample {
  std::unique_ptr<Dpst> Tree;
  std::vector<NodeId> Nodes; ///< every node, any kind
  std::vector<NodeId> Steps; ///< step leaves only
};

/// Random bushy tree (the shape real nested-parallel programs produce;
/// depth grows logarithmically with size).
TreeSample buildBushy(DpstLayout Layout, uint64_t Seed, size_t NumNodes) {
  TreeSample Sample;
  Sample.Tree = createDpst(Layout);
  SplitMix64 Rng(Seed);
  NodeId Root = Sample.Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  Sample.Nodes.push_back(Root);
  std::vector<NodeId> Scopes{Root};
  while (Sample.Tree->numNodes() < NumNodes) {
    NodeId Scope = Scopes[Rng.nextBelow(Scopes.size())];
    NodeId Added;
    switch (Rng.nextBelow(4)) {
    case 0:
      Added = Sample.Tree->addNode(Scope, DpstNodeKind::Finish, 0);
      Scopes.push_back(Added);
      break;
    case 1:
      Added = Sample.Tree->addNode(Scope, DpstNodeKind::Async, 0);
      Scopes.push_back(Added);
      break;
    default:
      Added = Sample.Tree->addNode(Scope, DpstNodeKind::Step, 0);
      Sample.Steps.push_back(Added);
      break;
    }
    Sample.Nodes.push_back(Added);
  }
  return Sample;
}

/// Degenerate deep chain: a finish spine of the requested depth with an
/// async/step fork sprinkled every \p ForkEvery levels. Step count stays
/// small, so total label memory is bounded even though each label is long.
TreeSample buildDeepSpine(DpstLayout Layout, uint32_t Depth,
                          uint32_t ForkEvery) {
  TreeSample Sample;
  Sample.Tree = createDpst(Layout);
  NodeId Spine = Sample.Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  Sample.Nodes.push_back(Spine);
  for (uint32_t I = 0; I < Depth; ++I) {
    if (I % ForkEvery == 0) {
      NodeId Async = Sample.Tree->addNode(Spine, DpstNodeKind::Async, 1);
      NodeId Forked = Sample.Tree->addNode(Async, DpstNodeKind::Step, 1);
      NodeId Serial = Sample.Tree->addNode(Spine, DpstNodeKind::Step, 0);
      Sample.Nodes.push_back(Async);
      Sample.Nodes.push_back(Forked);
      Sample.Nodes.push_back(Serial);
      Sample.Steps.push_back(Forked);
      Sample.Steps.push_back(Serial);
    }
    Spine = Sample.Tree->addNode(Spine, DpstNodeKind::Finish, 0);
    Sample.Nodes.push_back(Spine);
  }
  NodeId Bottom = Sample.Tree->addNode(Spine, DpstNodeKind::Step, 0);
  Sample.Nodes.push_back(Bottom);
  Sample.Steps.push_back(Bottom);
  return Sample;
}

/// Asserts all three modes agree on \p NumPairs random pairs from \p Pool,
/// for both the parallelism and the tree-order query.
void crossCheckPairs(const Dpst &Tree, const std::vector<NodeId> &Pool,
                     uint64_t Seed, int NumPairs) {
  SplitMix64 Rng(Seed);
  for (int I = 0; I < NumPairs; ++I) {
    NodeId A = Pool[Rng.nextBelow(Pool.size())];
    NodeId B = Pool[Rng.nextBelow(Pool.size())];
    if (A == B)
      continue;
    bool Walk = Tree.logicallyParallel(A, B, QueryMode::Walk);
    ASSERT_EQ(Walk, Tree.logicallyParallel(A, B, QueryMode::Lift))
        << "lift parallel mismatch: " << A << " vs " << B;
    ASSERT_EQ(Walk, Tree.logicallyParallel(A, B, QueryMode::Label))
        << "label parallel mismatch: " << A << " vs " << B;
    bool Order = Tree.treeOrderedBefore(A, B, QueryMode::Walk);
    ASSERT_EQ(Order, Tree.treeOrderedBefore(A, B, QueryMode::Lift))
        << "lift order mismatch: " << A << " vs " << B;
    ASSERT_EQ(Order, Tree.treeOrderedBefore(A, B, QueryMode::Label))
        << "label order mismatch: " << A << " vs " << B;
  }
}

TEST(QueryMode, ParseAndName) {
  QueryMode Mode = QueryMode::Walk;
  EXPECT_TRUE(parseQueryMode("label", Mode));
  EXPECT_EQ(Mode, QueryMode::Label);
  EXPECT_TRUE(parseQueryMode("lift", Mode));
  EXPECT_EQ(Mode, QueryMode::Lift);
  EXPECT_TRUE(parseQueryMode("walk", Mode));
  EXPECT_EQ(Mode, QueryMode::Walk);
  EXPECT_FALSE(parseQueryMode("bogus", Mode));
  EXPECT_STREQ(queryModeName(QueryMode::Walk), "walk");
  EXPECT_STREQ(queryModeName(QueryMode::Lift), "lift");
  EXPECT_STREQ(queryModeName(QueryMode::Label), "label");
}

TEST(QueryMode, RandomizedCrossCheckManySeeds) {
  // 56 seeds, alternating layouts; moderate trees so the sweep covers many
  // random shapes quickly. The 100k-node shapes get their own tests below.
  for (uint64_t Seed = 1; Seed <= 56; ++Seed) {
    DpstLayout Layout =
        (Seed % 2 == 0) ? DpstLayout::Array : DpstLayout::Linked;
    TreeSample Sample = buildBushy(Layout, Seed * 977, 2000);
    crossCheckPairs(*Sample.Tree, Sample.Nodes, Seed * 31 + 7, 400);
    crossCheckPairs(*Sample.Tree, Sample.Steps, Seed * 31 + 8, 400);
  }
}

TEST(QueryMode, HundredThousandNodeBushyTree) {
  for (DpstLayout Layout : {DpstLayout::Array, DpstLayout::Linked}) {
    TreeSample Sample = buildBushy(Layout, 4242, 120000);
    ASSERT_GE(Sample.Tree->numNodes(), 100000u);
    crossCheckPairs(*Sample.Tree, Sample.Nodes, 99, 3000);
    crossCheckPairs(*Sample.Tree, Sample.Steps, 100, 3000);
  }
}

TEST(QueryMode, DegenerateDeepChain) {
  // 100k-node spine; forks every 2048 levels keep the total label arena
  // bounded (~100 steps) while each label spans tens of thousands of
  // entries — the Label worst case, and the Walk worst case too.
  for (DpstLayout Layout : {DpstLayout::Array, DpstLayout::Linked}) {
    TreeSample Sample = buildDeepSpine(Layout, 100000, 2048);
    ASSERT_GE(Sample.Tree->numNodes(), 100000u);
    crossCheckPairs(*Sample.Tree, Sample.Steps, 7, 500);
    crossCheckPairs(*Sample.Tree, Sample.Nodes, 8, 500);
  }
}

TEST(QueryMode, LabelArenaCapFallsBackToLift) {
  // A tiny label budget starves later steps of labels; Label mode must
  // transparently fall back to lifting and still agree with Walk.
  std::unique_ptr<Dpst> Tree = createDpst(DpstLayout::Array);
  Tree->queryIndex().setLabelCapacityWords(8);
  SplitMix64 Rng(5);
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  std::vector<NodeId> Scopes{Root};
  std::vector<NodeId> Steps;
  while (Tree->numNodes() < 4000) {
    NodeId Scope = Scopes[Rng.nextBelow(Scopes.size())];
    switch (Rng.nextBelow(3)) {
    case 0:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Finish, 0));
      break;
    case 1:
      Scopes.push_back(Tree->addNode(Scope, DpstNodeKind::Async, 0));
      break;
    default:
      Steps.push_back(Tree->addNode(Scope, DpstNodeKind::Step, 0));
      break;
    }
  }
  size_t Unlabeled = 0;
  for (NodeId Step : Steps)
    if (!Tree->queryIndex().hasLabel(Step))
      ++Unlabeled;
  EXPECT_GT(Unlabeled, Steps.size() / 2) << "cap did not engage";
  EXPECT_LE(Tree->queryIndex().labelArenaWords(), 8u);
  crossCheckPairs(*Tree, Steps, 11, 2000);
}

TEST(QueryMode, LabelMemoryAccounting) {
  // A balanced-ish tree's arena stays near (steps * avg depth) words and
  // far below the default cap.
  TreeSample Sample = buildBushy(DpstLayout::Array, 17, 10000);
  size_t Words = Sample.Tree->queryIndex().labelArenaWords();
  EXPECT_GT(Words, Sample.Steps.size()); // every step labeled, depth >= 1
  EXPECT_LT(Words, (size_t(1) << 24));
  for (NodeId Step : Sample.Steps)
    EXPECT_TRUE(Sample.Tree->queryIndex().hasLabel(Step));
}

} // namespace
