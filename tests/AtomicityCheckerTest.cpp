//===- tests/AtomicityCheckerTest.cpp - Optimized checker unit tests ------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/AtomicityChecker.h"

#include <set>

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x1008;
constexpr LockId L = 1;

/// The paper's running example (Figures 1, 5, 10): T1 writes X, spawns T2
/// and T3; T3 writes X; T2 reads then writes X. The observed trace has no
/// violation, but S2's read-write pattern can be interleaved by S3's
/// parallel write (unserializable RWW) in another schedule.
TEST(AtomicityChecker, PaperRunningExampleFindsRWW) {
  TraceBuilder T;
  T.write(0, X);         // S11: X = 10
  T.spawn(0, 1);         // spawn T2
  T.read(0, Y).write(0, Y); // S12: Y = Y + 1 (accesses to Y only)
  T.spawn(0, 2);         // spawn T3
  T.write(2, X);         // S3: X = Y (the write to X)
  T.read(2, Y);
  T.write(2, Y);
  T.read(1, X);          // S2: a = X
  T.write(1, X);         // S2: X = a
  T.end(2).end(1).sync(0).end(0);

  auto Checker = runOptimized(T);
  ASSERT_EQ(Checker->violations().size(), 1u);
  Violation V = Checker->violations().snapshot().front();
  EXPECT_EQ(V.Addr, X);
  EXPECT_EQ(V.A1, AccessKind::Read);
  EXPECT_EQ(V.A2, AccessKind::Write);
  EXPECT_EQ(V.A3, AccessKind::Write);
  EXPECT_EQ(V.PatternTask, 1u);     // T2's step
  EXPECT_EQ(V.InterleaverTask, 2u); // T3's write interleaves

  // Y has no violation: S12 and S3 are serial.
  expectViolatingLocations(T, {X});
}

/// Figure 11/12: the data-race-free variant with lock L protecting X in S2
/// and S3. S2's two critical sections over the same lock still form a
/// vulnerable pattern (lock versioning), and S3's locked write interleaves.
TEST(AtomicityChecker, PaperLockExampleStillViolates) {
  TraceBuilder T;
  T.write(0, X); // S11 (unprotected, serial prefix)
  T.spawn(0, 1);
  T.spawn(0, 2);
  T.acq(2, L).write(2, X).rel(2, L); // S3's critical section
  T.acq(1, L).read(1, X).rel(1, L);  // S2: first critical section
  T.acq(1, L).write(1, X).rel(1, L); // S2: re-acquired -> new version
  T.end(2).end(1).sync(0).end(0);

  expectViolatingLocations(T, {X});
}

/// Same shape, but S2 keeps the lock across both accesses: one critical
/// section, no vulnerable pattern, no violation.
TEST(AtomicityChecker, SingleCriticalSectionIsAtomic) {
  TraceBuilder T;
  T.write(0, X);
  T.spawn(0, 1);
  T.spawn(0, 2);
  T.acq(2, L).write(2, X).rel(2, L);
  T.acq(1, L).read(1, X).write(1, X).rel(1, L);
  T.end(2).end(1).sync(0).end(0);

  expectViolatingLocations(T, {});
}

TEST(AtomicityChecker, SerialTasksNeverViolate) {
  // Spawn, sync, then spawn again: the two children are ordered.
  TraceBuilder T;
  T.spawn(0, 1);
  T.read(1, X).write(1, X);
  T.end(1).sync(0);
  T.spawn(0, 2);
  T.write(2, X);
  T.end(2).sync(0).end(0);

  expectViolatingLocations(T, {});
}

TEST(AtomicityChecker, ParallelReadsAreSerializable) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).read(1, X); // RR pattern
  T.read(2, X);            // parallel read: RRR is serializable
  T.end(1).end(2).sync(0).end(0);

  expectViolatingLocations(T, {});
}

TEST(AtomicityChecker, WRWPatternDetected) {
  // Pattern WW by task 1, interleaved read by parallel task 2 (WRW).
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(1, X);
  T.read(2, X);
  T.end(1).end(2).sync(0).end(0);

  expectViolatingLocations(T, {X});
}

TEST(AtomicityChecker, WWRPatternDetected) {
  // Pattern WR by task 1, interleaved write by parallel task 2 (WWR).
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).read(1, X);
  T.write(2, X);
  T.end(1).end(2).sync(0).end(0);

  expectViolatingLocations(T, {X});
}

TEST(AtomicityChecker, RWRPatternDetected) {
  // Pattern RR by task 1, interleaved write by parallel task 2 (RWR).
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).read(1, X);
  T.write(2, X);
  T.end(1).end(2).sync(0).end(0);

  expectViolatingLocations(T, {X});
}

TEST(AtomicityChecker, WWWPatternDetected) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(1, X);
  T.write(2, X);
  T.end(1).end(2).sync(0).end(0);

  expectViolatingLocations(T, {X});
}

/// The interleaver can be observed before, between, or after the pattern's
/// accesses — the DPST makes the verdict schedule independent.
TEST(AtomicityChecker, InterleaverObservationOrderIrrelevant) {
  for (int Order = 0; Order < 3; ++Order) {
    TraceBuilder T;
    T.spawn(0, 1).spawn(0, 2);
    if (Order == 0)
      T.write(2, X);
    T.read(1, X);
    if (Order == 1)
      T.write(2, X);
    T.write(1, X);
    if (Order == 2)
      T.write(2, X);
    T.end(1).end(2).sync(0).end(0);
    expectViolatingLocations(T, {X});
  }
}

/// Accesses by the same task in *different steps* (separated by a spawn) do
/// not form a pattern: the region was broken by task management.
TEST(AtomicityChecker, SpawnBreaksTwoAccessPattern) {
  TraceBuilder T;
  T.spawn(0, 1);
  T.read(1, X);
  T.spawn(1, 2); // breaks task 1's region
  T.write(1, X);
  T.end(2).end(1).sync(0);
  T.spawn(0, 3);
  T.write(3, X); // would interleave if the pattern existed... but 3 is
                 // serial with 1 anyway; use a parallel interleaver below.
  T.end(3).sync(0).end(0);
  expectViolatingLocations(T, {});
}

TEST(AtomicityChecker, SpawnBreaksPatternEvenWithParallelWriter) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(2, X); // parallel writer
  T.read(1, X);
  T.spawn(1, 3); // break task 1's region between its two accesses
  T.write(1, X);
  T.end(3).end(2).end(1).sync(0).end(0);
  expectViolatingLocations(T, {});
}

/// A sync between the two accesses also breaks the pattern.
TEST(AtomicityChecker, SyncBreaksTwoAccessPattern) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(2, X);
  T.read(1, X);
  T.sync(1); // no children, still a region boundary
  T.write(1, X);
  T.end(2).end(1).sync(0).end(0);
  expectViolatingLocations(T, {});
}

/// Three parallel readers: only two read entries exist, yet a later WW
/// pattern by a step parallel to all of them is still caught through one of
/// the retained entries.
TEST(AtomicityChecker, TwoReadEntriesSufficeForWW) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2).spawn(0, 3).spawn(0, 4);
  T.read(1, X).read(2, X).read(3, X); // three parallel single reads
  T.write(4, X).write(4, X);          // parallel WW pattern -> WRW
  T.end(1).end(2).end(3).end(4).sync(0).end(0);
  expectViolatingLocations(T, {X});
}

/// Multi-variable atomicity: X and Y share metadata; a read of X and a
/// write of Y by one step form a pattern on the group.
TEST(AtomicityChecker, MultiVariableGroupViolation) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).write(1, Y); // RW pattern on the group
  T.write(2, X);            // parallel write to a group member -> RWW
  T.end(1).end(2).sync(0).end(0);

  AtomicityChecker Checker;
  MemAddr Members[] = {X, Y};
  EXPECT_TRUE(Checker.registerAtomicGroup(Members, 2));
  replayTrace(T.finish(), Checker);
  EXPECT_EQ(Checker.violations().size(), 1u);

  // Without the grouping there is no violation (different locations).
  auto Ungrouped = runOptimized(T);
  EXPECT_EQ(Ungrouped->violations().size(), 0u);
}

/// Re-registering a group is idempotent, and a fresh (never accessed)
/// location merges into an existing group losslessly.
TEST(AtomicityChecker, GroupRegistrationIdempotentAndMergesEmpty) {
  constexpr MemAddr Z = 0x1010;
  AtomicityChecker Checker;
  MemAddr Members[] = {X, Y};
  EXPECT_TRUE(Checker.registerAtomicGroup(Members, 2));
  EXPECT_TRUE(Checker.registerAtomicGroup(Members, 2));
  MemAddr Extended[] = {X, Z};
  EXPECT_TRUE(Checker.registerAtomicGroup(Extended, 2));
}

/// A member with recorded accesses cannot join a group: its private history
/// would be silently discarded. Both directions — member accessed before
/// registration, and representative accessed before registration — must be
/// rejected (not just assert in debug builds).
TEST(AtomicityChecker, GroupRegistrationRejectsAccessedMember) {
  TraceBuilder T;
  T.write(0, Y).end(0);

  AtomicityChecker Checker;
  replayTrace(T.finish(), Checker);
  MemAddr Members[] = {X, Y};
  EXPECT_FALSE(Checker.registerAtomicGroup(Members, 2));
  MemAddr Reversed[] = {Y, X};
  EXPECT_FALSE(Checker.registerAtomicGroup(Reversed, 2));
}

/// A location already belonging to one group cannot be claimed by another.
TEST(AtomicityChecker, GroupRegistrationRejectsCrossGroupClaim) {
  constexpr MemAddr Z = 0x1010;
  AtomicityChecker Checker;
  MemAddr First[] = {X, Y};
  EXPECT_TRUE(Checker.registerAtomicGroup(First, 2));
  MemAddr Second[] = {Z, Y};
  EXPECT_FALSE(Checker.registerAtomicGroup(Second, 2));
}

TEST(AtomicityChecker, StatsCountLocationsAndAccesses) {
  TraceBuilder T;
  T.spawn(0, 1);
  T.read(1, X).write(1, X).read(1, Y);
  T.end(1).sync(0).end(0);
  auto Checker = runOptimized(T);
  CheckerStats Stats = Checker->stats();
  EXPECT_EQ(Stats.NumLocations, 2u);
  EXPECT_EQ(Stats.NumReads, 2u);
  EXPECT_EQ(Stats.NumWrites, 1u);
  EXPECT_EQ(Stats.NumViolations, 0u);
  EXPECT_GT(Stats.NumDpstNodes, 0u);
}

/// First accesses never query the DPST: a trace where every location is
/// touched by exactly one step performs zero LCA queries (the blackscholes
/// row of Table 1).
TEST(AtomicityChecker, FirstAccessesCostNoLcaQueries) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).read(1, X); // same step: pattern forms, but the global
                            // space has no *other* entries to test
  T.write(2, Y).read(2, Y);
  T.end(1).end(2).sync(0).end(0);
  auto Checker = runOptimized(T);
  EXPECT_EQ(Checker->stats().Lca.NumQueries, 0u);
  EXPECT_EQ(Checker->violations().size(), 0u);
}

/// Violation reports deduplicate: re-triggering the same triple through
/// repeated accesses yields one report.
TEST(AtomicityChecker, DuplicateTriplesReportedOnce) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(2, X);
  T.read(1, X).write(1, X).write(1, X).write(1, X);
  T.end(1).end(2).sync(0).end(0);
  auto Checker = runOptimized(T);
  // RWW and WWW (and WRW/WWR depending on update order) may differ, but
  // each distinct triple appears exactly once.
  std::set<std::string> Messages;
  for (const Violation &V : Checker->violations().snapshot())
    EXPECT_TRUE(Messages.insert(V.toString()).second) << V.toString();
  EXPECT_GE(Checker->violations().size(), 1u);
  EXPECT_EQ(Checker->stats().NumViolatingLocations, 1u);
}

/// The ExtraInterleaverChecks option is sound: it may add reports but never
/// flags a clean trace.
TEST(AtomicityChecker, ExtraChecksStayPrecise) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(2, L).write(2, X).rel(2, L);
  T.acq(1, L).read(1, X).write(1, X).rel(1, L);
  T.end(2).end(1).sync(0).end(0);

  AtomicityChecker::Options Opts;
  Opts.ExtraInterleaverChecks = true;
  auto Checker = runOptimized(T, Opts);
  EXPECT_EQ(Checker->violations().size(), 0u);
}

/// Regression (found by the randomized equivalence sweep, seed 1199): the
/// interleaver step reads the location first and writes it later. Its
/// write is then a non-first access, which the paper's Figure 9 never
/// tests as an interleaver against the recorded WR pattern — the default
/// ExtraInterleaverChecks correction catches the WWR triple.
TEST(AtomicityChecker, InterleaverWhoReadFirstIsStillCaught) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).read(1, X); // parallel WR pattern (recorded in GS.WR)
  // The interleaver reads then writes inside ONE critical section: its own
  // read-write pair forms no pattern (shared lockset), so only the A2 role
  // of its write can expose the WWR triple against task 1's pattern.
  T.acq(2, L).read(2, X).write(2, X).rel(2, L);
  T.end(1).end(2).sync(0).end(0);

  expectViolatingLocations(T, {X});

  // The paper-literal mode misses exactly this shape.
  AtomicityChecker::Options Literal;
  Literal.ExtraInterleaverChecks = false;
  auto Checker = runOptimized(T, Literal);
  EXPECT_EQ(Checker->violations().size(), 0u)
      << "documented incompleteness of the literal Figure 9 algorithm";
}

/// Both DPST layouts produce identical verdicts.
TEST(AtomicityChecker, LayoutsAgree) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(1, X);
  T.read(2, X);
  T.end(1).end(2).sync(0).end(0);

  AtomicityChecker::Options Arr, Lnk;
  Arr.Layout = DpstLayout::Array;
  Lnk.Layout = DpstLayout::Linked;
  EXPECT_EQ(runOptimized(T, Arr)->violations().size(),
            runOptimized(T, Lnk)->violations().size());
}

/// Disabling the LCA cache changes performance, never verdicts.
TEST(AtomicityChecker, CacheDoesNotChangeVerdicts) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).read(1, X);
  T.write(2, X);
  T.end(1).end(2).sync(0).end(0);

  AtomicityChecker::Options NoCache;
  NoCache.EnableLcaCache = false;
  auto WithCache = runOptimized(T);
  auto WithoutCache = runOptimized(T, NoCache);
  EXPECT_EQ(WithCache->violations().size(), WithoutCache->violations().size());
  EXPECT_EQ(WithoutCache->stats().Lca.NumCacheHits, 0u);
}

} // namespace
