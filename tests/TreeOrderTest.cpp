//===- tests/TreeOrderTest.cpp - DPST left-to-right order queries ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "dpst/Dpst.h"

using namespace avc;

namespace {

class TreeOrderTest : public ::testing::TestWithParam<DpstLayout> {
protected:
  void SetUp() override { Tree = createDpst(GetParam()); }
  std::unique_ptr<Dpst> Tree;
};

TEST_P(TreeOrderTest, SiblingOrder) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId A = Tree->addNode(Root, DpstNodeKind::Step, 0);
  NodeId B = Tree->addNode(Root, DpstNodeKind::Step, 0);
  EXPECT_TRUE(Tree->treeOrderedBefore(A, B));
  EXPECT_FALSE(Tree->treeOrderedBefore(B, A));
}

TEST_P(TreeOrderTest, AncestorPrecedesDescendant) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId Async = Tree->addNode(Root, DpstNodeKind::Async, 1);
  NodeId Step = Tree->addNode(Async, DpstNodeKind::Step, 1);
  EXPECT_TRUE(Tree->treeOrderedBefore(Root, Step));
  EXPECT_FALSE(Tree->treeOrderedBefore(Step, Root));
  EXPECT_TRUE(Tree->treeOrderedBefore(Async, Step));
}

TEST_P(TreeOrderTest, CrossSubtreeOrderFollowsSiblingOrder) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId A1 = Tree->addNode(Root, DpstNodeKind::Async, 1);
  NodeId A2 = Tree->addNode(Root, DpstNodeKind::Async, 2);
  // Steps created in an order *opposite* to the subtree order: creation id
  // must not leak into the answer.
  NodeId SUnderA2 = Tree->addNode(A2, DpstNodeKind::Step, 2);
  NodeId SUnderA1 = Tree->addNode(A1, DpstNodeKind::Step, 1);
  EXPECT_GT(SUnderA1, SUnderA2); // created later...
  EXPECT_TRUE(Tree->treeOrderedBefore(SUnderA1, SUnderA2)); // ...but left
  EXPECT_FALSE(Tree->treeOrderedBefore(SUnderA2, SUnderA1));
}

TEST_P(TreeOrderTest, DifferentDepths) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId Finish = Tree->addNode(Root, DpstNodeKind::Finish, 0);
  NodeId Async = Tree->addNode(Finish, DpstNodeKind::Async, 1);
  NodeId Deep = Tree->addNode(Async, DpstNodeKind::Step, 1);
  NodeId Shallow = Tree->addNode(Root, DpstNodeKind::Step, 0);
  // Deep lives under the finish (sibling index 0), Shallow after it.
  EXPECT_TRUE(Tree->treeOrderedBefore(Deep, Shallow));
  EXPECT_FALSE(Tree->treeOrderedBefore(Shallow, Deep));
}

TEST_P(TreeOrderTest, TotalOrderOverLeaves) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  std::vector<NodeId> Steps;
  for (int I = 0; I < 8; ++I) {
    NodeId Async = Tree->addNode(Root, DpstNodeKind::Async, I + 1);
    Steps.push_back(Tree->addNode(Async, DpstNodeKind::Step, I + 1));
  }
  for (size_t I = 0; I < Steps.size(); ++I)
    for (size_t J = 0; J < Steps.size(); ++J) {
      if (I == J)
        continue;
      EXPECT_EQ(Tree->treeOrderedBefore(Steps[I], Steps[J]), I < J);
    }
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, TreeOrderTest,
                         ::testing::Values(DpstLayout::Array,
                                           DpstLayout::Linked),
                         [](const auto &Info) {
                           return std::string(dpstLayoutName(Info.param));
                         });

} // namespace
