//===- tests/FlatGrowVectorTest.cpp - Flat retiring vector tests ----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FlatGrowVector.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "support/Timing.h"

using namespace avc;

namespace {

TEST(FlatGrowVector, PushAndIndex) {
  FlatGrowVector<int> Vec;
  EXPECT_TRUE(Vec.empty());
  for (int I = 0; I < 5000; ++I)
    EXPECT_EQ(Vec.pushBack(I * 2), static_cast<size_t>(I));
  EXPECT_EQ(Vec.size(), 5000u);
  for (int I = 0; I < 5000; ++I)
    EXPECT_EQ(Vec[I], I * 2);
}

TEST(FlatGrowVector, GrowthPreservesContents) {
  FlatGrowVector<uint64_t> Vec;
  // Push well past several doublings of the initial capacity.
  for (uint64_t I = 0; I < 100000; ++I)
    Vec.pushBack(I ^ 0xabcdef);
  for (uint64_t I = 0; I < 100000; ++I)
    EXPECT_EQ(Vec[I], I ^ 0xabcdef);
}

TEST(FlatGrowVector, SnapshotStaysValidAcrossGrowth) {
  FlatGrowVector<int> Vec;
  for (int I = 0; I < 1000; ++I)
    Vec.pushBack(I);
  const int *Snapshot = Vec.snapshot();
  // Force growth: the old block is retired, not freed.
  for (int I = 1000; I < 50000; ++I)
    Vec.pushBack(I);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Snapshot[I], I);
}

TEST(FlatGrowVector, PushBackSpanAppendsContiguously) {
  FlatGrowVector<uint32_t> Vec;
  Vec.pushBack(7);
  uint32_t Row[5] = {10, 11, 12, 13, 14};
  size_t Offset = Vec.pushBackSpan(Row, 5);
  EXPECT_EQ(Offset, 1u);
  EXPECT_EQ(Vec.size(), 6u);
  for (uint32_t I = 0; I < 5; ++I)
    EXPECT_EQ(Vec[Offset + I], Row[I]);
}

TEST(FlatGrowVector, PushBackSpanAcrossGrowth) {
  FlatGrowVector<uint64_t> Vec;
  // Variable-length rows, sized to straddle several capacity doublings;
  // each row must stay contiguous and intact afterwards.
  std::vector<size_t> Offsets;
  std::vector<size_t> Lengths;
  uint64_t Value = 0;
  for (size_t Round = 0; Round < 2000; ++Round) {
    size_t Len = (Round % 31) + 1;
    std::vector<uint64_t> Row(Len);
    for (size_t I = 0; I < Len; ++I)
      Row[I] = Value++;
    Offsets.push_back(Vec.pushBackSpan(Row.data(), Len));
    Lengths.push_back(Len);
  }
  uint64_t Expected = 0;
  for (size_t Round = 0; Round < Offsets.size(); ++Round)
    for (size_t I = 0; I < Lengths[Round]; ++I)
      EXPECT_EQ(Vec[Offsets[Round] + I], Expected++);
  EXPECT_EQ(Vec.size(), static_cast<size_t>(Expected));
}

TEST(FlatGrowVector, PushBackSpanSnapshotSurvivesGrowth) {
  FlatGrowVector<int> Vec;
  int Row[3] = {1, 2, 3};
  size_t Offset = Vec.pushBackSpan(Row, 3);
  const int *Snap = Vec.snapshot();
  for (int I = 0; I < 50000; ++I)
    Vec.pushBack(I);
  EXPECT_EQ(Snap[Offset], 1);
  EXPECT_EQ(Snap[Offset + 2], 3);
}

TEST(FlatGrowVector, UpdateMutatesInPlace) {
  FlatGrowVector<int> Vec;
  Vec.pushBack(5);
  Vec.update(0, [](int &Value) { Value = 9; });
  EXPECT_EQ(Vec[0], 9);
}

TEST(FlatGrowVector, ConcurrentReadersDuringGrowth) {
  FlatGrowVector<size_t> Vec;
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load()) {
      size_t N = Vec.size();
      const size_t *Snap = Vec.snapshot();
      for (size_t I = 0; I < N; ++I)
        EXPECT_EQ(Snap[I], I) << "index " << I;
    }
  });
  for (size_t I = 0; I < 200000; ++I)
    Vec.pushBack(I);
  Stop.store(true);
  Reader.join();
  EXPECT_EQ(Vec.size(), 200000u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer T;
  uint64_t Before = nowNanos();
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + 1.0;
  uint64_t Elapsed = T.elapsedNanos();
  EXPECT_GT(Elapsed, 0u);
  EXPECT_GE(nowNanos(), Before);
  EXPECT_NEAR(T.elapsedSeconds(), static_cast<double>(T.elapsedNanos()) * 1e-9,
              1e-3);
  T.reset();
  EXPECT_LT(T.elapsedNanos(), Elapsed + 1000000000ull);
}

} // namespace
