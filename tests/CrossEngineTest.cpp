//===- tests/CrossEngineTest.cpp - vclock vs Velodrome vs DPST checker ----===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing of the three atomicity engines on every suite
/// scenario:
///
///  - The two trace-bound engines — Velodrome (graph cycle detection) and
///    the vector-clock engine — implement the same specification (conflict
///    serializability of the observed trace) by entirely different
///    algorithms, so on ANY trace their violation sets and counts must be
///    identical: in replay, live on one worker, and on traces recorded
///    from contended 8-worker runs.
///
///  - The DPST checker covers all schedules of the observed input, so its
///    set must contain everything a trace-bound engine can find in the one
///    schedule it saw. Scenarios where the built trace does not itself
///    interleave the unserializable pattern are exactly where the paper's
///    checker wins: the trace-bound engines report nothing, the DPST
///    checker still flags the location (kObservedTraceBlind below; the
///    same list is documented in EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "LiveSuiteLowering.h"
#include "ViolationSuiteData.h"
#include "checker/AtomicityChecker.h"
#include "checker/VectorClockAtomicity.h"
#include "checker/Velodrome.h"
#include "instrument/ToolContext.h"
#include "trace/TraceRecorder.h"

using namespace avc;
using namespace avc::suite;

namespace {

class CrossEngine : public ::testing::TestWithParam<Scenario> {};
class CrossEngineClean : public ::testing::TestWithParam<Scenario> {};

/// One replay of \p Events through a fresh \p ToolT, via the uniform
/// CheckerTool surface (keys + total count).
template <typename ToolT>
std::pair<std::set<MemAddr>, size_t> replayEngine(const Trace &Events) {
  typename ToolT::Options Opts;
  ToolT Tool(Opts);
  replayTrace(Events, Tool);
  const CheckerTool &Iface = Tool;
  return {Iface.violationKeys(), Iface.numViolations()};
}

/// Collapses group members onto the group's representative address, the
/// translation the DPST checker applies when a group is registered. The
/// trace-bound engines have no group concept and report raw addresses.
std::set<MemAddr> collapseGroups(const std::set<MemAddr> &Keys,
                                 const Scenario &S) {
  if (S.Group.empty())
    return Keys;
  std::set<MemAddr> Out;
  for (MemAddr Addr : Keys) {
    bool InGroup = false;
    for (MemAddr Member : S.Group)
      InGroup |= (Addr == Member);
    Out.insert(InGroup ? S.Group.front() : Addr);
  }
  return Out;
}

/// Scenarios whose built trace never interleaves the unserializable
/// pattern: the violation exists in *another* schedule of the same input,
/// which the trace-bound engines cannot see. Kept in sync with the
/// detection-set comparison in EXPERIMENTS.md; a scenario appearing here
/// must still be caught by the DPST checker (asserted below), and a
/// scenario NOT here must be caught by all three engines.
const std::set<std::string> &observedTraceBlind() {
  // 34 of the 36 violating programs build their trace in an order where
  // the pattern does not interleave — e.g. 01_rwr_siblings emits both of
  // task 1's reads before task 2's write, so the observed schedule is
  // serializable even though swapping the write between the reads is a
  // legal schedule of the same program. Only 20 (the interleaver lands
  // between the pattern accesses by construction) and 31 (its X and Y
  // conflict edges point in opposite directions between the same two step
  // transactions, closing a cycle in the observed order) are visible
  // trace-bound.
  static const std::set<std::string> Blind = {
      "01_rwr_siblings",
      "02_rww_siblings",
      "03_wrw_siblings",
      "04_wwr_siblings",
      "05_www_siblings",
      "06_interleaver_is_grandchild",
      "07_interleaver_is_parent_continuation",
      "08_pattern_in_parent_interleaver_in_child",
      "09_explicit_task_group",
      "10_nested_groups",
      "11_cross_subtree_cousins",
      "12_paper_fig11_lock_versioning",
      "13_www_two_critical_sections_same_lock",
      "14_locked_interleaver_unlocked_pattern",
      "15_pattern_under_two_different_locks",
      "16_nested_locks_disjoint_pattern",
      "17_group_rww_across_variables",
      "18_group_wrw_reader_on_other_member",
      "19_interleaver_before_pattern",
      "21_serial_depth_first_observation",
      "22_three_readers_then_ww",
      "23_three_writers_then_rr",
      "24_deep_spawn_chain",
      "25_uncle_and_nephew",
      "26_wide_fanout_last_child_violates",
      "27_counter_increment_race",
      "28_bank_check_then_act",
      "29_double_check_flag",
      "30_pattern_from_later_critical_sections",
      "32_violating_and_clean_locations_mixed",
      "33_root_step_is_interleaver",
      "34_sibling_after_nested_join",
      "35_second_write_slot_carries_violation",
      "36_group_with_locks",
  };
  return Blind;
}

//===----------------------------------------------------------------------===//
// Replay: twin equality and DPST coverage on every scenario trace
//===----------------------------------------------------------------------===//

void checkReplayParity(const Scenario &S) {
  Trace Events = S.Build().finish();

  auto [VeloKeys, VeloCount] = replayEngine<VelodromeChecker>(Events);
  auto [VcKeys, VcCount] = replayEngine<VectorClockAtomicity>(Events);
  EXPECT_EQ(VcKeys, VeloKeys) << S.Name << ": trace-bound twins disagree";
  EXPECT_EQ(VcCount, VeloCount)
      << S.Name << ": twin engines found different cycle counts";

  // DPST checker on the same trace (group registered, as the suite runs
  // it): its set must cover everything the trace-bound engines saw.
  AtomicityChecker::Options Opts;
  AtomicityChecker Dpst(Opts);
  if (!S.Group.empty()) {
    ASSERT_TRUE(Dpst.registerAtomicGroup(S.Group.data(), S.Group.size()));
  }
  replayTrace(Events, Dpst);
  std::set<MemAddr> DpstKeys =
      static_cast<const CheckerTool &>(Dpst).violationKeys();

  std::set<MemAddr> Translated = collapseGroups(VeloKeys, S);
  for (MemAddr Addr : Translated)
    EXPECT_TRUE(DpstKeys.count(Addr))
        << S.Name << ": trace-bound engines flagged 0x" << std::hex << Addr
        << " but the DPST checker missed it";

  // The divergence list is exact: a violating scenario is either visible
  // in its own trace (all three engines fire) or listed as blind (only
  // the DPST checker fires).
  if (!S.ViolatingLocations.empty()) {
    bool Blind = observedTraceBlind().count(S.Name) != 0;
    EXPECT_EQ(VeloKeys.empty(), Blind)
        << S.Name << ": observed-trace detectability changed — update "
        << "observedTraceBlind() and EXPERIMENTS.md";
  }
}

TEST_P(CrossEngine, ReplayParity) { checkReplayParity(GetParam()); }
TEST_P(CrossEngineClean, ReplayParity) {
  const Scenario &S = GetParam();
  checkReplayParity(S);
  // Clean twins are serializable under every schedule, so both trace-bound
  // engines must stay silent on the built trace too.
  Trace Events = S.Build().finish();
  EXPECT_TRUE(replayEngine<VelodromeChecker>(Events).first.empty()) << S.Name;
  EXPECT_TRUE(replayEngine<VectorClockAtomicity>(Events).first.empty())
      << S.Name;
}

//===----------------------------------------------------------------------===//
// Live: twin equality on the runtime, 1 worker and recorded 8-worker runs
//===----------------------------------------------------------------------===//

/// One live run of \p S under \p Kind, returning the found locations
/// translated to synthetic addresses, and (optionally) the recorded trace.
std::set<MemAddr> runLiveEngine(const Scenario &S, const LiveProgram &P,
                                ToolKind Kind, unsigned Threads,
                                Trace *Recorded = nullptr) {
  ToolContext::Options Opts;
  Opts.Tool = Kind;
  Opts.Checker.NumThreads = Threads;
  ToolContext Tool(Opts);
  TraceRecorder Recorder;
  if (Recorded)
    Tool.runtime().addObserver(&Recorder);

  SuiteRunner Runner(P);
  Runner.run(Tool);
  if (Recorded)
    *Recorded = Recorder.trace();

  std::map<MemAddr, MemAddr> Translate = Runner.liveToSynthetic();
  std::set<MemAddr> Out;
  for (MemAddr Addr : Tool.tool()->violationKeys()) {
    auto It = Translate.find(Addr);
    EXPECT_NE(It, Translate.end())
        << S.Name << ": finding on an untracked location";
    if (It != Translate.end())
      Out.insert(It->second);
  }
  return Out;
}

/// On one worker the runtime executes the lowered program in one
/// deterministic serial order, so both trace-bound engines observe a total
/// order of step transactions — no cycle can close, and both must agree
/// on the empty set however the scenario violates under other schedules.
TEST_P(CrossEngine, LiveSingleWorkerTwinsAgree) {
  const Scenario &S = GetParam();
  LiveProgram P = compileToLive(S.Build().finish());
  if (!P.Supported)
    GTEST_SKIP() << "task-group events have no live lowering";

  std::set<MemAddr> Velo = runLiveEngine(S, P, ToolKind::Velodrome, 1);
  std::set<MemAddr> Vc = runLiveEngine(S, P, ToolKind::VClock, 1);
  EXPECT_EQ(Vc, Velo) << S.Name;
  EXPECT_EQ(Velo, std::set<MemAddr>())
      << S.Name << ": a serial schedule cannot close a transaction cycle";
}

/// Contended runs schedule differently every time, so two independent live
/// runs are not comparable — instead record ONE 8-worker run (executing
/// under the vclock engine, which also exercises its concurrent paths
/// under TSan) and replay the recorded linearization through both engines:
/// same trace in, same violations out.
void checkRecordedRunParity(const Scenario &S, bool ExpectClean) {
  LiveProgram P = compileToLive(S.Build().finish());
  if (!P.Supported)
    GTEST_SKIP() << "task-group events have no live lowering";

  Trace Recorded;
  runLiveEngine(S, P, ToolKind::VClock, 8, &Recorded);
  ASSERT_FALSE(Recorded.empty()) << S.Name;

  auto [VeloKeys, VeloCount] = replayEngine<VelodromeChecker>(Recorded);
  auto [VcKeys, VcCount] = replayEngine<VectorClockAtomicity>(Recorded);
  EXPECT_EQ(VcKeys, VeloKeys)
      << S.Name << ": twins disagree on a recorded 8-worker trace";
  EXPECT_EQ(VcCount, VeloCount) << S.Name;
  if (ExpectClean) {
    EXPECT_TRUE(VcKeys.empty())
        << S.Name << ": clean twin produced a cycle on a live schedule";
  }
}

TEST_P(CrossEngine, Recorded8WorkerTraceParity) {
  checkRecordedRunParity(GetParam(), /*ExpectClean=*/false);
}
TEST_P(CrossEngineClean, Recorded8WorkerTraceParity) {
  checkRecordedRunParity(GetParam(), /*ExpectClean=*/true);
}

INSTANTIATE_TEST_SUITE_P(Suite36, CrossEngine,
                         ::testing::ValuesIn(buildSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });
INSTANTIATE_TEST_SUITE_P(CleanTwins, CrossEngineClean,
                         ::testing::ValuesIn(buildCleanSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
