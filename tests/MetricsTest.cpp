//===- tests/MetricsTest.cpp - Metrics registry and exporters -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the metrics plane's contract: sharded counters fold to exact
/// totals under concurrent increments, histograms bucket by powers of two
/// microseconds, registration is get-or-create with stable references,
/// the Prometheus exposition renders cumulative buckets, and the atomic
/// file writer / NDJSON log produce the formats the serve loop's scrape
/// surface promises.
///
//===----------------------------------------------------------------------===//

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/Metrics.h"
#include "obs/MetricsExport.h"

using namespace avc;
using namespace avc::metrics;

namespace {

std::string tempPath(const char *Name) {
  return testing::TempDir() + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

TEST(MetricsCounter, FoldsConcurrentIncrementsExactly) {
  Counter C;
  constexpr int NumThreads = 8;
  constexpr uint64_t PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (uint64_t I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(C.value(), uint64_t(NumThreads) * PerThread);

  C.add(42);
  EXPECT_EQ(C.value(), uint64_t(NumThreads) * PerThread + 42);
}

TEST(MetricsGauge, LastWriteWins) {
  Gauge G;
  EXPECT_EQ(G.value(), 0.0);
  G.set(1.5);
  EXPECT_EQ(G.value(), 1.5);
  G.set(-3.25);
  EXPECT_EQ(G.value(), -3.25);
}

TEST(MetricsHistogram, BucketsByPowerOfTwoMicroseconds) {
  Histogram H;
  // Bucket i holds observations <= 2^i us.
  H.observe(0.5e-6); // bucket 0 (le 1us)
  H.observe(1.0e-6); // bucket 0 (boundary is inclusive)
  H.observe(3.0e-6); // bucket 2 (le 4us)
  H.observe(1.0e-3); // 1000us -> bucket 10 (le 1024us)
  H.observe(100.0);  // beyond 2^23 us -> +Inf
  H.observe(-1.0);   // clamped to zero -> bucket 0

  std::vector<uint64_t> Buckets = H.bucketCounts();
  ASSERT_EQ(Buckets.size(), Histogram::NumBuckets + 1);
  EXPECT_EQ(Buckets[0], 3u);
  EXPECT_EQ(Buckets[1], 0u);
  EXPECT_EQ(Buckets[2], 1u);
  EXPECT_EQ(Buckets[10], 1u);
  EXPECT_EQ(Buckets[Histogram::NumBuckets], 1u) << "+Inf overflow bucket";
  EXPECT_EQ(H.count(), 6u);
  EXPECT_NEAR(H.sum(), 0.5e-6 + 1.0e-6 + 3.0e-6 + 1.0e-3 + 100.0, 1e-9);

  EXPECT_DOUBLE_EQ(Histogram::bucketBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::bucketBound(10), 1024e-6);
}

TEST(MetricsNames, PrometheusGrammar) {
  EXPECT_TRUE(isValidMetricName("taskcheck_traces_checked_total"));
  EXPECT_TRUE(isValidMetricName("_leading_underscore"));
  EXPECT_TRUE(isValidMetricName("ns:subsystem:metric"));
  EXPECT_FALSE(isValidMetricName(""));
  EXPECT_FALSE(isValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(isValidMetricName("has-dash"));
  EXPECT_FALSE(isValidMetricName("has space"));
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistryTest, GetOrCreateReturnsStableReferences) {
  MetricsRegistry Registry;
  Counter &A = Registry.counter("test_total", "a test counter");
  Counter &B = Registry.counter("test_total", "ignored on re-registration");
  EXPECT_EQ(&A, &B) << "second registration must hand out the first counter";
  A.add(3);
  B.add(4);

  Gauge &G = Registry.gauge("test_gauge", "a gauge");
  G.set(7.5);
  Histogram &H = Registry.histogram("test_seconds", "a histogram");
  H.observe(2e-6);

  Snapshot S = Registry.snapshot();
  ASSERT_EQ(S.Metrics.size(), 3u);
  // Registration order is exposition order.
  EXPECT_EQ(S.Metrics[0].Name, "test_total");
  EXPECT_EQ(S.Metrics[1].Name, "test_gauge");
  EXPECT_EQ(S.Metrics[2].Name, "test_seconds");

  const MetricSample *CS = S.find("test_total");
  ASSERT_NE(CS, nullptr);
  EXPECT_EQ(CS->Type, MetricType::Counter);
  EXPECT_EQ(CS->Value, 7.0);
  EXPECT_EQ(CS->Help, "a test counter");

  const MetricSample *GS = S.find("test_gauge");
  ASSERT_NE(GS, nullptr);
  EXPECT_EQ(GS->Value, 7.5);

  const MetricSample *HS = S.find("test_seconds");
  ASSERT_NE(HS, nullptr);
  EXPECT_EQ(HS->Count, 1u);
  EXPECT_NE(S.find("no_such_metric"), HS);
  EXPECT_EQ(S.find("no_such_metric"), nullptr);
}

TEST(MetricsRegistryTest, ProcessInstanceIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::instance(), &MetricsRegistry::instance());
}

TEST(MetricsRegistryTest, TimingGateToggles) {
  EXPECT_FALSE(timingEnabled()) << "timing must default off (bench gate)";
  setTimingEnabled(true);
  EXPECT_TRUE(timingEnabled());
  setTimingEnabled(false);
  EXPECT_FALSE(timingEnabled());
}

//===----------------------------------------------------------------------===//
// Exposition formats
//===----------------------------------------------------------------------===//

TEST(MetricsExport, PrometheusTextExposition) {
  MetricsRegistry Registry;
  Registry.counter("demo_total", "Demo counter.").add(5);
  Registry.gauge("demo_depth", "Demo gauge.").set(2.5);
  Histogram &H = Registry.histogram("demo_seconds", "Demo histogram.");
  H.observe(3e-6);  // bucket le="4e-06"
  H.observe(3e-6);
  H.observe(100.0); // +Inf only

  std::string Text = toPrometheusText(Registry.snapshot());
  EXPECT_NE(Text.find("# HELP demo_total Demo counter.\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE demo_total counter\n"), std::string::npos);
  EXPECT_NE(Text.find("\ndemo_total 5\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE demo_depth gauge\n"), std::string::npos);
  EXPECT_NE(Text.find("demo_depth 2.5\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE demo_seconds histogram\n"), std::string::npos);
  // Buckets are cumulative: the 4us bucket holds both small observations,
  // +Inf holds all three.
  EXPECT_NE(Text.find("demo_seconds_bucket{le=\"4e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("demo_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("demo_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(Text.find("demo_seconds_sum "), std::string::npos);
  // Every non-comment line is "name[{labels}] value".
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    EXPECT_NE(Line.find(' '), std::string::npos) << Line;
  }
}

TEST(MetricsExport, JsonSnapshotCarriesEveryMetric) {
  MetricsRegistry Registry;
  Registry.counter("demo_total", "Demo \"quoted\" counter.").add(2);
  Registry.histogram("demo_seconds", "Demo histogram.").observe(1e-6);
  std::string Json = toJsonText(Registry.snapshot());
  EXPECT_NE(Json.find("\"name\": \"demo_total\""), std::string::npos);
  EXPECT_NE(Json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(Json.find("\"value\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos)
      << "help strings must be JSON-escaped";
  EXPECT_NE(Json.find("\"le\": \"+Inf\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// File plumbing
//===----------------------------------------------------------------------===//

TEST(MetricsExport, AtomicWriteReplacesContents) {
  std::string Path = tempPath("metrics_atomic.txt");
  ASSERT_TRUE(writeFileAtomic(Path, "first\n"));
  EXPECT_EQ(slurp(Path), "first\n");
  ASSERT_TRUE(writeFileAtomic(Path, "second\n"));
  EXPECT_EQ(slurp(Path), "second\n");
}

TEST(MetricsExport, NdjsonAppendsOneObjectPerLine) {
  std::string Path = tempPath("metrics_rows.ndjson");
  std::remove(Path.c_str());
  {
    NdjsonWriter Log(Path);
    ASSERT_TRUE(Log.ok());
    NdjsonWriter::Row A;
    A.field("trace", std::string("t1.trace")).field("violations", 2.0);
    EXPECT_TRUE(Log.append(A));
    NdjsonWriter::Row B;
    B.field("trace", std::string("we \"escape\""))
        .field("ts_unix_ms", uint64_t(1754500000123));
    EXPECT_TRUE(Log.append(B));
  }
  {
    // Re-opening appends instead of truncating (the serve restart case).
    NdjsonWriter Log(Path);
    NdjsonWriter::Row C;
    C.field("trace", std::string("t3.trace"));
    EXPECT_TRUE(Log.append(C));
  }
  std::istringstream Lines(slurp(Path));
  std::vector<std::string> Rows;
  std::string Line;
  while (std::getline(Lines, Line))
    Rows.push_back(Line);
  ASSERT_EQ(Rows.size(), 3u);
  for (const std::string &Row : Rows) {
    EXPECT_EQ(Row.front(), '{') << Row;
    EXPECT_EQ(Row.back(), '}') << Row;
  }
  EXPECT_NE(Rows[0].find("\"violations\": 2"), std::string::npos);
  EXPECT_NE(Rows[1].find("\\\"escape\\\""), std::string::npos);
  EXPECT_NE(Rows[1].find("1754500000123"), std::string::npos)
      << "integer fields must not lose precision to %.6g";
}

} // namespace
