//===- tests/DeterminismCheckerTest.cpp - Tardis-style checker tests ------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/DeterminismChecker.h"

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"

#include "trace/TraceGenerator.h"
#include "checker/RaceDetector.h"
#include "instrument/ToolContext.h"
#include "runtime/Mutex.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x1008;
constexpr LockId L = 1;

size_t determinismViolations(const TraceBuilder &T) {
  DeterminismChecker Checker;
  replayTrace(T.finish(), Checker);
  return Checker.numViolations();
}

TEST(DeterminismChecker, ParallelConflictIsNondeterministic) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(2, X);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(determinismViolations(T), 1u);
}

TEST(DeterminismChecker, ParallelReadsAreDeterministic) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).read(2, X);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(determinismViolations(T), 0u);
}

TEST(DeterminismChecker, SerialConflictsAreDeterministic) {
  TraceBuilder T;
  T.spawn(0, 1);
  T.write(1, X);
  T.end(1).sync(0);
  T.spawn(0, 2);
  T.write(2, X);
  T.end(2).sync(0).end(0);
  EXPECT_EQ(determinismViolations(T), 0u);
}

/// The defining contrast with the race detector: locks serialize the
/// conflict but the winner still depends on the schedule.
TEST(DeterminismChecker, LocksDoNotRestoreDeterminism) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L).write(1, X).rel(1, L);
  T.acq(2, L).write(2, X).rel(2, L);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(determinismViolations(T), 1u);

  RaceDetector Races;
  replayTrace(T.finish(), Races);
  EXPECT_EQ(Races.numRaces(), 0u) << "race-free, yet nondeterministic";
}

/// The full Section 5 strength ordering on one program: a lock-protected
/// read-modify-write per task is (a) nondeterministic, (b) race free, and
/// (c) atomic per step — each tool answers its own question.
TEST(DeterminismChecker, ToolTrioStrengthOrdering) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L).read(1, X).write(1, X).rel(1, L);
  T.acq(2, L).read(2, X).write(2, X).rel(2, L);
  T.end(1).end(2).sync(0).end(0);

  DeterminismChecker Determinism;
  RaceDetector Races;
  AtomicityChecker Atomicity;
  replayTrace(T.finish(), std::vector<ExecutionObserver *>{
                              &Determinism, &Races, &Atomicity});
  // The two increments commute numerically, but the values each task's
  // read observes differ per schedule: internally nondeterministic.
  EXPECT_GE(Determinism.numViolations(), 1u);
  EXPECT_EQ(Races.numRaces(), 0u);
  EXPECT_TRUE(Atomicity.violations().empty());
}

TEST(DeterminismChecker, DistinctLocationsIndependent) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(2, Y);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(determinismViolations(T), 0u);
}

TEST(DeterminismChecker, ReportFormatting) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).write(2, X);
  T.end(1).end(2).sync(0).end(0);
  DeterminismChecker Checker;
  replayTrace(T.finish(), Checker);
  ASSERT_EQ(Checker.violations().size(), 1u);
  std::string Text = Checker.violations().front().toString();
  EXPECT_NE(Text.find("determinism violation"), std::string::npos);
  EXPECT_NE(Text.find("locks cannot fix this"), std::string::npos);
}

TEST(DeterminismChecker, ToolContextIntegration) {
  ToolContext Tool(ToolKind::Determinism);
  Tracked<int> Shared;
  Mutex Lock;
  Tool.run([&] {
    spawn([&] {
      MutexGuard Guard(Lock);
      Shared += 1;
    });
    spawn([&] {
      MutexGuard Guard(Lock);
      Shared += 1;
    });
  });
  EXPECT_GE(Tool.numViolations(), 1u);
  ASSERT_NE(Tool.determinismChecker(), nullptr);
}

/// Every violation the race detector reports is also a determinism
/// violation (the strength ordering, on random traces).
TEST(DeterminismChecker, SupersetOfRaces) {
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    TraceGenOptions Opts;
    Opts.Seed = Seed;
    Opts.NumTasks = 3 + Seed % 10;
    Opts.NumLocations = 1 + Seed % 3;
    Opts.NumLocks = Seed % 3;
    Opts.LockedFraction = (Seed % 4) * 0.25;
    Trace Events = linearizeSerial(generateProgram(Opts));

    RaceDetector Races;
    DeterminismChecker Determinism;
    replayTrace(Events,
                std::vector<ExecutionObserver *>{&Races, &Determinism});
    std::set<MemAddr> RaceLocs, DetLocs;
    for (const Race &R : Races.races())
      RaceLocs.insert(R.Addr);
    for (const DeterminismViolation &V : Determinism.violations())
      DetLocs.insert(V.Addr);
    for (MemAddr Addr : RaceLocs)
      EXPECT_TRUE(DetLocs.count(Addr))
          << "seed " << Seed << ": racy location 0x" << std::hex << Addr
          << " not flagged as nondeterministic";
  }
}

} // namespace
