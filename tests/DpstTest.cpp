//===- tests/DpstTest.cpp - DPST structure and parallel query -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/Dpst.h"

#include <gtest/gtest.h>

#include "dpst/DpstDot.h"

using namespace avc;

namespace {

/// Runs every structural test against both layouts (the Figure 14 pair).
class DpstLayoutTest : public ::testing::TestWithParam<DpstLayout> {
protected:
  void SetUp() override { Tree = createDpst(GetParam()); }
  std::unique_ptr<Dpst> Tree;
};

TEST_P(DpstLayoutTest, RootConstruction) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  EXPECT_EQ(Root, 0u);
  EXPECT_EQ(Tree->numNodes(), 1u);
  EXPECT_EQ(Tree->kind(Root), DpstNodeKind::Finish);
  EXPECT_EQ(Tree->parent(Root), InvalidNodeId);
  EXPECT_EQ(Tree->depth(Root), 0u);
  EXPECT_EQ(Tree->siblingIndex(Root), 0u);
  EXPECT_EQ(Tree->root(), Root);
}

TEST_P(DpstLayoutTest, ChildDepthAndSiblingOrder) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId A = Tree->addNode(Root, DpstNodeKind::Async, 1);
  NodeId S = Tree->addNode(Root, DpstNodeKind::Step, 0);
  NodeId B = Tree->addNode(Root, DpstNodeKind::Async, 2);
  EXPECT_EQ(Tree->depth(A), 1u);
  EXPECT_EQ(Tree->siblingIndex(A), 0u);
  EXPECT_EQ(Tree->siblingIndex(S), 1u);
  EXPECT_EQ(Tree->siblingIndex(B), 2u);
  EXPECT_EQ(Tree->parent(B), Root);
  EXPECT_EQ(Tree->taskId(A), 1u);
  EXPECT_EQ(Tree->taskId(S), 0u);
}

TEST_P(DpstLayoutTest, SameNodeIsSerial) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId S = Tree->addNode(Root, DpstNodeKind::Step, 0);
  EXPECT_FALSE(Tree->logicallyParallelUncached(S, S));
}

TEST_P(DpstLayoutTest, AncestorIsSerial) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId A = Tree->addNode(Root, DpstNodeKind::Async, 1);
  NodeId S = Tree->addNode(A, DpstNodeKind::Step, 1);
  EXPECT_FALSE(Tree->logicallyParallelUncached(Root, S));
  EXPECT_FALSE(Tree->logicallyParallelUncached(S, Root));
  EXPECT_FALSE(Tree->logicallyParallelUncached(A, S));
}

/// The paper's Figure 2 tree:
///   F11 -> [S11, F12], F12 -> [A2, S12, A3], A2 -> S2, A3 -> S3.
class Figure2Test : public DpstLayoutTest {
protected:
  void SetUp() override {
    DpstLayoutTest::SetUp();
    F11 = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
    S11 = Tree->addNode(F11, DpstNodeKind::Step, 0);
    F12 = Tree->addNode(F11, DpstNodeKind::Finish, 0);
    A2 = Tree->addNode(F12, DpstNodeKind::Async, 1);
    S2 = Tree->addNode(A2, DpstNodeKind::Step, 1);
    S12 = Tree->addNode(F12, DpstNodeKind::Step, 0);
    A3 = Tree->addNode(F12, DpstNodeKind::Async, 2);
    S3 = Tree->addNode(A3, DpstNodeKind::Step, 2);
  }
  NodeId F11, S11, F12, A2, S2, S12, A3, S3;
};

TEST_P(Figure2Test, PaperParallelismRelations) {
  // "The step nodes S2 and S12 can occur in parallel since the LCA(S2, S12)
  // is F12 and its left child is an async node."
  EXPECT_TRUE(Tree->logicallyParallelUncached(S2, S12));
  EXPECT_TRUE(Tree->logicallyParallelUncached(S12, S2));
  // "Similarly, S2 and S3 can occur in parallel."
  EXPECT_TRUE(Tree->logicallyParallelUncached(S2, S3));
  EXPECT_TRUE(Tree->logicallyParallelUncached(S3, S2));
  // "Step nodes S11 and S2 cannot occur in parallel."
  EXPECT_FALSE(Tree->logicallyParallelUncached(S11, S2));
  EXPECT_FALSE(Tree->logicallyParallelUncached(S2, S11));
  // "Similarly, step nodes S12 and S3 cannot occur in parallel."
  EXPECT_FALSE(Tree->logicallyParallelUncached(S12, S3));
  EXPECT_FALSE(Tree->logicallyParallelUncached(S3, S12));
  // S11 precedes everything.
  EXPECT_FALSE(Tree->logicallyParallelUncached(S11, S3));
  EXPECT_FALSE(Tree->logicallyParallelUncached(S11, S12));
}

TEST_P(Figure2Test, AncestorQueries) {
  EXPECT_TRUE(Tree->isAncestorOrSelf(F11, S3));
  EXPECT_TRUE(Tree->isAncestorOrSelf(F12, S2));
  EXPECT_TRUE(Tree->isAncestorOrSelf(S2, S2));
  EXPECT_FALSE(Tree->isAncestorOrSelf(A2, S3));
  EXPECT_FALSE(Tree->isAncestorOrSelf(S11, S2));
}

TEST_P(Figure2Test, DotDumpMentionsEveryNode) {
  std::string Dot = dpstToDot(*Tree);
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  for (NodeId Id = 0; Id < Tree->numNodes(); ++Id) {
    char Needle[16];
    std::snprintf(Needle, sizeof(Needle), "n%u ", Id);
    EXPECT_NE(Dot.find(Needle), std::string::npos) << "missing node " << Id;
  }
}

/// Nested finish inside an async: steps after the inner finish are serial
/// with the finish's children but parallel with outer asyncs.
TEST_P(DpstLayoutTest, NestedFinishScopes) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId OuterAsync = Tree->addNode(Root, DpstNodeKind::Async, 1);
  NodeId OuterStep = Tree->addNode(OuterAsync, DpstNodeKind::Step, 1);
  NodeId InnerFinish = Tree->addNode(OuterAsync, DpstNodeKind::Finish, 1);
  NodeId InnerAsync = Tree->addNode(InnerFinish, DpstNodeKind::Async, 2);
  NodeId InnerStep = Tree->addNode(InnerAsync, DpstNodeKind::Step, 2);
  NodeId AfterFinish = Tree->addNode(OuterAsync, DpstNodeKind::Step, 1);
  NodeId RootStep = Tree->addNode(Root, DpstNodeKind::Step, 0);

  EXPECT_FALSE(Tree->logicallyParallelUncached(OuterStep, InnerStep));
  EXPECT_FALSE(Tree->logicallyParallelUncached(InnerStep, AfterFinish));
  EXPECT_TRUE(Tree->logicallyParallelUncached(InnerStep, RootStep));
  EXPECT_TRUE(Tree->logicallyParallelUncached(AfterFinish, RootStep));
  EXPECT_TRUE(Tree->logicallyParallelUncached(OuterStep, RootStep));
}

/// Two asyncs under one finish are parallel with each other; a step after
/// both (same finish) is parallel with both too.
TEST_P(DpstLayoutTest, SiblingAsyncsAreParallel) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId Finish = Tree->addNode(Root, DpstNodeKind::Finish, 0);
  NodeId A1 = Tree->addNode(Finish, DpstNodeKind::Async, 1);
  NodeId S1 = Tree->addNode(A1, DpstNodeKind::Step, 1);
  NodeId A2 = Tree->addNode(Finish, DpstNodeKind::Async, 2);
  NodeId S2 = Tree->addNode(A2, DpstNodeKind::Step, 2);
  NodeId Cont = Tree->addNode(Finish, DpstNodeKind::Step, 0);
  NodeId After = Tree->addNode(Root, DpstNodeKind::Step, 0);

  EXPECT_TRUE(Tree->logicallyParallelUncached(S1, S2));
  EXPECT_TRUE(Tree->logicallyParallelUncached(S1, Cont));
  EXPECT_TRUE(Tree->logicallyParallelUncached(S2, Cont));
  // The finish joins its asyncs before the parent continues.
  EXPECT_FALSE(Tree->logicallyParallelUncached(S1, After));
  EXPECT_FALSE(Tree->logicallyParallelUncached(S2, After));
  EXPECT_FALSE(Tree->logicallyParallelUncached(Cont, After));
}

/// Left-to-right sibling order decides: a step *before* an async (to its
/// left) is serial with it; a step *after* (to its right) is parallel.
TEST_P(DpstLayoutTest, StepPositionRelativeToAsync) {
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId Before = Tree->addNode(Root, DpstNodeKind::Step, 0);
  NodeId Async = Tree->addNode(Root, DpstNodeKind::Async, 1);
  NodeId Child = Tree->addNode(Async, DpstNodeKind::Step, 1);
  NodeId After = Tree->addNode(Root, DpstNodeKind::Step, 0);

  EXPECT_FALSE(Tree->logicallyParallelUncached(Before, Child));
  EXPECT_TRUE(Tree->logicallyParallelUncached(After, Child));
  EXPECT_TRUE(Tree->logicallyParallelUncached(Child, After));
}

TEST_P(DpstLayoutTest, DeepChainQueries) {
  // A long spine of alternating finish/async nodes with steps hanging off:
  // exercises the depth-equalizing walk.
  NodeId Root = Tree->addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
  NodeId Spine = Root;
  NodeId FirstStep = InvalidNodeId;
  for (int I = 0; I < 64; ++I) {
    NodeId Async = Tree->addNode(Spine, DpstNodeKind::Async, I + 1);
    NodeId Step = Tree->addNode(Async, DpstNodeKind::Step, I + 1);
    if (FirstStep == InvalidNodeId)
      FirstStep = Step;
    Spine = Tree->addNode(Spine, DpstNodeKind::Finish, 0);
  }
  NodeId DeepStep = Tree->addNode(Spine, DpstNodeKind::Step, 0);
  // The first async's step is parallel with everything spawned later in
  // the same scope chain... including the deep step: LCA = Root, left
  // child on the path to FirstStep is the async.
  EXPECT_TRUE(Tree->logicallyParallelUncached(FirstStep, DeepStep));
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, DpstLayoutTest,
                         ::testing::Values(DpstLayout::Array,
                                           DpstLayout::Linked),
                         [](const auto &Info) {
                           return std::string(dpstLayoutName(Info.param));
                         });
INSTANTIATE_TEST_SUITE_P(AllLayouts, Figure2Test,
                         ::testing::Values(DpstLayout::Array,
                                           DpstLayout::Linked),
                         [](const auto &Info) {
                           return std::string(dpstLayoutName(Info.param));
                         });

} // namespace
