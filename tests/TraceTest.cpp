//===- tests/TraceTest.cpp - Generator, linearizers, IO, replay -----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceGenerator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "checker/AtomicityChecker.h"
#include "instrument/Tracked.h"
#include "runtime/Mutex.h"
#include "runtime/TaskRuntime.h"
#include "trace/TraceIO.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(TraceGenerator, DeterministicInSeed) {
  TraceGenOptions Opts;
  Opts.Seed = 12345;
  GenProgram A = generateProgram(Opts);
  GenProgram B = generateProgram(Opts);
  ASSERT_EQ(A.Tasks.size(), B.Tasks.size());
  for (size_t I = 0; I < A.Tasks.size(); ++I) {
    ASSERT_EQ(A.Tasks[I].Ops.size(), B.Tasks[I].Ops.size());
    for (size_t J = 0; J < A.Tasks[I].Ops.size(); ++J) {
      EXPECT_EQ(A.Tasks[I].Ops[J].K, B.Tasks[I].Ops[J].K);
      EXPECT_EQ(A.Tasks[I].Ops[J].Index, B.Tasks[I].Ops[J].Index);
    }
  }
  Opts.Seed = 54321;
  GenProgram C = generateProgram(Opts);
  EXPECT_EQ(linearizeSerial(A) == linearizeSerial(C), false);
}

TEST(TraceGenerator, EveryTaskSpawnedExactlyOnce) {
  TraceGenOptions Opts;
  Opts.NumTasks = 20;
  Opts.Seed = 7;
  GenProgram Program = generateProgram(Opts);
  std::map<uint32_t, int> SpawnCount;
  for (const GenTask &Task : Program.Tasks)
    for (const GenOp &Op : Task.Ops)
      if (Op.K == GenOp::Kind::Spawn)
        ++SpawnCount[Op.Index];
  EXPECT_EQ(SpawnCount.size(), 19u);
  for (const auto &[Child, Count] : SpawnCount)
    EXPECT_EQ(Count, 1) << "task " << Child;
}

TEST(TraceGenerator, CriticalSectionsWellNested) {
  TraceGenOptions Opts;
  Opts.NumTasks = 16;
  Opts.LockedFraction = 0.8;
  Opts.Seed = 99;
  GenProgram Program = generateProgram(Opts);
  for (const GenTask &Task : Program.Tasks) {
    int Depth = 0;
    for (const GenOp &Op : Task.Ops) {
      if (Op.K == GenOp::Kind::Acquire) {
        ++Depth;
      } else if (Op.K == GenOp::Kind::Release) {
        --Depth;
      } else if (Op.K == GenOp::Kind::Spawn) {
        EXPECT_EQ(Depth, 0) << "spawn inside a critical section";
      }
      EXPECT_GE(Depth, 0);
    }
    EXPECT_EQ(Depth, 0);
  }
}

//===----------------------------------------------------------------------===//
// Linearizers
//===----------------------------------------------------------------------===//

/// Structural sanity of a trace: framing, per-task lifecycle, balanced
/// locks per task.
void expectWellFormed(const Trace &Events, uint32_t NumTasks) {
  ASSERT_FALSE(Events.empty());
  EXPECT_EQ(Events.front().Kind, TraceEventKind::ProgramStart);
  EXPECT_EQ(Events.back().Kind, TraceEventKind::ProgramEnd);

  std::set<TaskId> Spawned{0}, Ended;
  std::map<TaskId, std::map<uint64_t, int>> Locks;
  for (const TraceEvent &Event : Events) {
    switch (Event.Kind) {
    case TraceEventKind::TaskSpawn:
      EXPECT_TRUE(Spawned.count(Event.Task)) << "spawn by unknown task";
      EXPECT_FALSE(Ended.count(Event.Task)) << "spawn by ended task";
      EXPECT_TRUE(Spawned.insert(static_cast<TaskId>(Event.Arg1)).second);
      break;
    case TraceEventKind::TaskEnd:
      EXPECT_TRUE(Spawned.count(Event.Task));
      EXPECT_TRUE(Ended.insert(Event.Task).second) << "double end";
      break;
    case TraceEventKind::LockAcquire:
      ++Locks[Event.Task][Event.Arg1];
      break;
    case TraceEventKind::LockRelease:
      EXPECT_GT(Locks[Event.Task][Event.Arg1], 0);
      --Locks[Event.Task][Event.Arg1];
      break;
    default:
      break;
    }
  }
  EXPECT_EQ(Spawned.size(), NumTasks);
  EXPECT_EQ(Ended.size(), NumTasks);
}

TEST(TraceGenerator, SerialLinearizationWellFormed) {
  TraceGenOptions Opts;
  Opts.NumTasks = 25;
  Opts.Seed = 11;
  GenProgram Program = generateProgram(Opts);
  expectWellFormed(linearizeSerial(Program), Opts.NumTasks);
}

TEST(TraceGenerator, RandomLinearizationWellFormed) {
  TraceGenOptions Opts;
  Opts.NumTasks = 25;
  Opts.LockedFraction = 0.5;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Opts.Seed = Seed;
    GenProgram Program = generateProgram(Opts);
    expectWellFormed(linearizeRandom(Program, Seed * 31), Opts.NumTasks);
  }
}

TEST(TraceGenerator, RandomLinearizationRespectsLockExclusion) {
  TraceGenOptions Opts;
  Opts.NumTasks = 16;
  Opts.LockedFraction = 0.7;
  Opts.NumLocks = 2;
  Opts.Seed = 3;
  GenProgram Program = generateProgram(Opts);
  Trace Events = linearizeRandom(Program, 77);
  std::map<uint64_t, TaskId> Owner;
  for (const TraceEvent &Event : Events) {
    if (Event.Kind == TraceEventKind::LockAcquire) {
      EXPECT_EQ(Owner.count(Event.Arg1), 0u) << "lock already owned";
      Owner[Event.Arg1] = Event.Task;
    } else if (Event.Kind == TraceEventKind::LockRelease) {
      ASSERT_EQ(Owner.count(Event.Arg1), 1u);
      EXPECT_EQ(Owner[Event.Arg1], Event.Task);
      Owner.erase(Event.Arg1);
    }
  }
  EXPECT_TRUE(Owner.empty());
}

TEST(TraceGenerator, LinearizationsPreservePerTaskAccessOrder) {
  TraceGenOptions Opts;
  Opts.NumTasks = 12;
  Opts.Seed = 5;
  GenProgram Program = generateProgram(Opts);
  Trace Serial = linearizeSerial(Program);
  Trace Random = linearizeRandom(Program, 42);

  auto PerTaskAccesses = [](const Trace &Events) {
    std::map<TaskId, std::vector<std::pair<TraceEventKind, uint64_t>>> Out;
    for (const TraceEvent &Event : Events)
      if (Event.Kind == TraceEventKind::Read ||
          Event.Kind == TraceEventKind::Write)
        Out[Event.Task].push_back({Event.Kind, Event.Arg1});
    return Out;
  };
  // Task ids may differ between linearizations (spawn order differs), so
  // compare the *multiset* of per-task access sequences.
  auto CollectSequences = [&](const Trace &Events) {
    std::multiset<std::vector<std::pair<TraceEventKind, uint64_t>>> Seqs;
    for (auto &[Task, Seq] : PerTaskAccesses(Events))
      Seqs.insert(Seq);
    return Seqs;
  };
  EXPECT_EQ(CollectSequences(Serial), CollectSequences(Random));
}

//===----------------------------------------------------------------------===//
// Text IO
//===----------------------------------------------------------------------===//

TEST(TraceIO, RoundTrip) {
  TraceGenOptions Opts;
  Opts.NumTasks = 10;
  Opts.LockedFraction = 0.4;
  Opts.Seed = 17;
  Trace Original = linearizeSerial(generateProgram(Opts));
  std::string Text = traceToText(Original);
  std::optional<Trace> Parsed = traceFromText(Text);
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(*Parsed, Original);
}

TEST(TraceIO, CommentsAndBlanksIgnored) {
  std::optional<Trace> Parsed = traceFromText("# hello\n\nstart 0\nstop\n");
  ASSERT_TRUE(Parsed.has_value());
  ASSERT_EQ(Parsed->size(), 2u);
  EXPECT_EQ((*Parsed)[0].Kind, TraceEventKind::ProgramStart);
}

TEST(TraceIO, MalformedLineReported) {
  size_t ErrorLine = 0;
  std::optional<Trace> Parsed =
      traceFromText("start 0\nbogus 1 2\nstop\n", &ErrorLine);
  EXPECT_FALSE(Parsed.has_value());
  EXPECT_EQ(ErrorLine, 2u);
}

TEST(TraceIO, MnemonicNames) {
  EXPECT_STREQ(traceEventKindName(TraceEventKind::TaskSpawn), "spawn");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::Read), "rd");
  EXPECT_STREQ(traceEventKindName(TraceEventKind::ProgramEnd), "stop");
}

/// Parses \p Text expecting failure; returns the (line, message) pair.
std::pair<size_t, std::string> expectParseError(const std::string &Text) {
  size_t Line = 0;
  std::string Msg;
  std::optional<Trace> Parsed = traceFromText(Text, &Line, &Msg);
  EXPECT_FALSE(Parsed.has_value()) << Text;
  EXPECT_FALSE(Msg.empty()) << Text;
  return {Line, Msg};
}

TEST(TraceIOHardening, Uint64OverflowRejected) {
  // One digit past UINT64_MAX in decimal and in hex.
  auto [Line, Msg] = expectParseError("start 0\nrd 1 18446744073709551616\n");
  EXPECT_EQ(Line, 2u);
  EXPECT_NE(Msg.find("overflow"), std::string::npos) << Msg;
  expectParseError("start 0\nwr 1 0x1ffffffffffffffff\n");
}

TEST(TraceIOHardening, Uint64MaxAccepted) {
  std::optional<Trace> Parsed =
      traceFromText("start 0\nrd 1 0xffffffffffffffff\nstop\n");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ((*Parsed)[1].Arg1, UINT64_MAX);
}

TEST(TraceIOHardening, TaskIdOverflowRejected) {
  auto [Line, Msg] = expectParseError("end 4294967296\n");
  EXPECT_EQ(Line, 1u);
  EXPECT_NE(Msg.find("task id"), std::string::npos) << Msg;
}

TEST(TraceIOHardening, SpawnMissingGroupRejected) {
  auto [Line, Msg] = expectParseError("start 0\nspawn 0 1\nstop\n");
  EXPECT_EQ(Line, 2u);
  EXPECT_NE(Msg.find("spawn"), std::string::npos) << Msg;
  // A full spawn on the same line parses.
  std::optional<Trace> Parsed = traceFromText("start 0\nspawn 0 1 2\nstop\n");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ((*Parsed)[1].Arg1, 1u);
  EXPECT_EQ((*Parsed)[1].Arg2, 2u);
}

TEST(TraceIOHardening, FieldCountMismatchRejected) {
  expectParseError("rd 1\n");          // missing address
  expectParseError("rd 1 0x10 9\n");   // trailing field
  expectParseError("stop 3\n");        // stop takes no fields
  expectParseError("wait 1\n");        // missing group id
}

TEST(TraceIOHardening, NonNumericTokensRejected) {
  expectParseError("rd one 0x10\n");
  expectParseError("rd 1 -5\n");      // negative
  expectParseError("rd 1 +5\n");      // explicit sign
  expectParseError("rd 1 0x10zz\n");  // trailing junk inside a token
  expectParseError("rd 1 0x\n");      // bare hex prefix
}

TEST(TraceIOHardening, TruncatedFinalLineReported) {
  // No trailing newline: the dangling final line must still be parsed and
  // its error attributed to the right line number.
  auto [Line, Msg] = expectParseError("start 0\nrd 1");
  EXPECT_EQ(Line, 2u);
  EXPECT_NE(Msg.find("field"), std::string::npos) << Msg;
  // And a *well-formed* final line without a newline is accepted.
  std::optional<Trace> Parsed = traceFromText("start 0\nstop");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->size(), 2u);
}

TEST(TraceIOHardening, CarriageReturnsTolerated) {
  std::optional<Trace> Parsed = traceFromText("start 0\r\nrd 1 0x10\r\nstop\r\n");
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(Parsed->size(), 3u);
}

//===----------------------------------------------------------------------===//
// Record a live run, replay it offline: verdicts must match.
//===----------------------------------------------------------------------===//

TEST(TraceRecorderReplay, LiveAndOfflineVerdictsAgree) {
  for (unsigned Threads : {1u, 4u}) {
    TraceRecorder Recorder;
    AtomicityChecker Live;
    Tracked<int> Shared;
    {
      TaskRuntime::Options Opts;
      Opts.NumThreads = Threads;
      TaskRuntime RT(Opts);
      RT.addObserver(&Recorder);
      RT.addObserver(&Live);
      RT.run([&] {
        spawn([&] {
          int V = Shared.load();
          Shared.store(V + 1);
        });
        spawn([&] { Shared.store(7); });
      });
    }
    // The program has an RWW violation; the live checker sees it...
    EXPECT_EQ(Live.violations().size(), 1u) << Threads << " threads";
    // ...and replaying the recorded trace reproduces the verdict.
    AtomicityChecker Offline;
    replayTrace(Recorder.trace(), Offline);
    EXPECT_EQ(Offline.violations().size(), 1u) << Threads << " threads";
  }
}

} // namespace
