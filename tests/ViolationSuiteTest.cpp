//===- tests/ViolationSuiteTest.cpp - The 36-program violation suite ------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The paper validates its prototype on "a test suite of 36 programs that
/// exercise various kinds of atomicity violations. Our prototype detected
/// all these violations without false positives" (Section 4). The suite
/// itself lives in ViolationSuiteData.h (shared with the multicore matrix
/// test); here every scenario runs through the optimized checker (both
/// DPST layouts, cache on/off, all query modes) and the basic reference
/// checker, and all must agree on exactly which locations violate.
///
//===----------------------------------------------------------------------===//

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "ViolationSuiteData.h"

using namespace avc;
using namespace avc::suite;

namespace {

class ViolationSuite : public ::testing::TestWithParam<Scenario> {};
class CleanSuite : public ::testing::TestWithParam<Scenario> {};

void runScenario(const Scenario &S) {
  TraceBuilder T = S.Build();

  // Every scenario runs under both DPST layouts, with the access-path
  // cache both on and off, and under all three parallelism-query modes:
  // none of these knobs may change which locations are reported.
  for (DpstLayout Layout : {DpstLayout::Array, DpstLayout::Linked}) {
    for (bool Cache : {true, false}) {
      for (QueryMode Query :
           {QueryMode::Walk, QueryMode::Lift, QueryMode::Label}) {
        AtomicityChecker::Options Opts;
        Opts.Layout = Layout;
        Opts.EnableAccessCache = Cache;
        Opts.Query = Query;
        AtomicityChecker Optimized(Opts);
        if (!S.Group.empty()) {
          EXPECT_TRUE(
              Optimized.registerAtomicGroup(S.Group.data(), S.Group.size()));
        }
        replayTrace(T.finish(), Optimized);

        std::set<MemAddr> Found;
        for (const Violation &V : Optimized.violations().snapshot())
          Found.insert(V.Addr);
        // Grouped locations report under the group's representative
        // address.
        std::set<MemAddr> Expected = S.ViolatingLocations;
        if (!S.Group.empty() && !Expected.empty())
          Expected = {S.Group.front()};
        EXPECT_EQ(Found, Expected)
            << S.Name << " with " << dpstLayoutName(Layout)
            << " DPST, cache " << (Cache ? "on" : "off") << ", "
            << queryModeName(Query) << " queries";
      }
    }
  }

  BasicChecker Basic;
  if (!S.Group.empty())
    Basic.registerAtomicGroup(S.Group.data(), S.Group.size());
  replayTrace(T.finish(), Basic);
  EXPECT_EQ(Basic.violations().empty(), S.ViolatingLocations.empty())
      << S.Name << " (basic reference checker)";
}

TEST_P(ViolationSuite, DetectedByAllCheckers) { runScenario(GetParam()); }
TEST_P(CleanSuite, NoFalsePositives) { runScenario(GetParam()); }

INSTANTIATE_TEST_SUITE_P(All36, ViolationSuite,
                         ::testing::ValuesIn(buildSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });
INSTANTIATE_TEST_SUITE_P(CleanTwins, CleanSuite,
                         ::testing::ValuesIn(buildCleanSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(ViolationSuiteMeta, HasExactlyThirtySixPrograms) {
  EXPECT_EQ(buildSuite().size(), 36u);
}

} // namespace
