//===- tests/ViolationSuiteTest.cpp - The 36-program violation suite ------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// The paper validates its prototype on "a test suite of 36 programs that
/// exercise various kinds of atomicity violations. Our prototype detected
/// all these violations without false positives" (Section 4). The suite
/// itself lives in ViolationSuiteData.h (shared with the multicore matrix
/// test); here every scenario runs through the optimized checker (both
/// DPST layouts, cache on/off, all query modes) and the basic reference
/// checker, and all must agree on exactly which locations violate.
///
//===----------------------------------------------------------------------===//

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "ViolationSuiteData.h"
#include "checker/DeterminismChecker.h"
#include "checker/RaceDetector.h"
#include "checker/VectorClockAtomicity.h"
#include "checker/Velodrome.h"
#include "trace/TraceCodec.h"
#include "trace/TraceIO.h"

using namespace avc;
using namespace avc::suite;

namespace {

class ViolationSuite : public ::testing::TestWithParam<Scenario> {};
class CleanSuite : public ::testing::TestWithParam<Scenario> {};

//===----------------------------------------------------------------------===//
// Pre-analysis parity plumbing
//===----------------------------------------------------------------------===//

/// Live-mode warmup for the profile leg. The suite's scenarios never put
/// four same-phase reads on one address before its first write, so
/// profile:4 speculation stays inside its sound window here (the unsound
/// in-phase downgrade is exercised deliberately in SitePreanalysisTest).
constexpr uint32_t SuiteProfileWarmup = 4;

void registerGroup(AtomicityChecker &Tool, const Scenario &S) {
  if (!S.Group.empty()) {
    EXPECT_TRUE(Tool.registerAtomicGroup(S.Group.data(), S.Group.size()));
  }
}
void registerGroup(BasicChecker &Tool, const Scenario &S) {
  if (!S.Group.empty())
    Tool.registerAtomicGroup(S.Group.data(), S.Group.size());
}
template <typename ToolT> void registerGroup(ToolT &, const Scenario &) {}

std::set<MemAddr> findingAddrs(const AtomicityChecker &Tool) {
  std::set<MemAddr> Out;
  for (const Violation &V : Tool.violations().snapshot())
    Out.insert(V.Addr);
  return Out;
}
std::set<MemAddr> findingAddrs(const BasicChecker &Tool) {
  std::set<MemAddr> Out;
  for (const Violation &V : Tool.violations().snapshot())
    Out.insert(V.Addr);
  return Out;
}
std::set<MemAddr> findingAddrs(const RaceDetector &Tool) {
  std::set<MemAddr> Out;
  for (const Race &R : Tool.races())
    Out.insert(R.Addr);
  return Out;
}
std::set<MemAddr> findingAddrs(const DeterminismChecker &Tool) {
  std::set<MemAddr> Out;
  for (const DeterminismViolation &V : Tool.violations())
    Out.insert(V.Addr);
  return Out;
}
std::set<MemAddr> findingAddrs(const VelodromeChecker &Tool) {
  std::set<MemAddr> Out;
  for (const VelodromeCycle &C : Tool.cycles())
    Out.insert(C.Addr);
  return Out;
}
std::set<MemAddr> findingAddrs(const VectorClockAtomicity &Tool) {
  std::set<MemAddr> Out;
  for (const VClockCycle &C : Tool.cycles())
    Out.insert(C.Addr);
  return Out;
}

/// One replay of \p S through \p ToolT under the given pre-analysis mode
/// (On goes through the two-pass classifying replay, exactly as taskcheck
/// drives trace files).
template <typename ToolT>
std::set<MemAddr> replayFindings(const Scenario &S, PreanalysisMode Mode) {
  typename ToolT::Options Opts;
  Opts.Preanalysis = Mode;
  if (Mode == PreanalysisMode::Profile)
    Opts.PreanalysisWarmup = SuiteProfileWarmup;
  ToolT Tool(Opts);
  registerGroup(Tool, S);
  TraceBuilder T = S.Build();
  replayTraceTwoPass(T.finish(), Tool);
  return findingAddrs(Tool);
}

/// The verdict set must be invariant under the pre-analysis knob: off is
/// the baseline, on adopts exact two-pass classifications, profile runs
/// the live warmup speculation.
template <typename ToolT>
void checkPreanalysisParity(const Scenario &S, const char *ToolName) {
  std::set<MemAddr> Off = replayFindings<ToolT>(S, PreanalysisMode::Off);
  for (PreanalysisMode Mode :
       {PreanalysisMode::On, PreanalysisMode::Profile}) {
    EXPECT_EQ(replayFindings<ToolT>(S, Mode), Off)
        << S.Name << " with " << ToolName << ", preanalysis "
        << preanalysisModeName(Mode);
  }
}

/// Replays already-parsed \p Events through a fresh \p ToolT.
template <typename ToolT>
std::set<MemAddr> replayEventsFindings(const Scenario &S,
                                       const Trace &Events) {
  typename ToolT::Options Opts;
  ToolT Tool(Opts);
  registerGroup(Tool, S);
  replayTrace(Events, Tool);
  return findingAddrs(Tool);
}

/// Serialization must not change verdicts: the scenario's trace pushed
/// through the text writer/parser and through the binary codec must yield
/// the same violation set as the in-memory trace for every tool.
template <typename ToolT>
void checkCodecParity(const Scenario &S, const char *ToolName) {
  Trace Events = S.Build().finish();
  std::set<MemAddr> Direct = replayEventsFindings<ToolT>(S, Events);

  std::optional<Trace> FromText = traceFromText(traceToText(Events));
  ASSERT_TRUE(FromText.has_value()) << S.Name;
  EXPECT_EQ(replayEventsFindings<ToolT>(S, *FromText), Direct)
      << S.Name << " with " << ToolName << " via text round-trip";

  std::optional<Trace> FromBinary = decodeTrace(encodeTrace(Events));
  ASSERT_TRUE(FromBinary.has_value()) << S.Name;
  EXPECT_EQ(replayEventsFindings<ToolT>(S, *FromBinary), Direct)
      << S.Name << " with " << ToolName << " via binary round-trip";
}

void runScenario(const Scenario &S) {
  TraceBuilder T = S.Build();

  // Every scenario runs under both DPST layouts, with the access-path
  // cache both on and off, and under all three parallelism-query modes:
  // none of these knobs may change which locations are reported.
  for (DpstLayout Layout : {DpstLayout::Array, DpstLayout::Linked}) {
    for (bool Cache : {true, false}) {
      for (QueryMode Query :
           {QueryMode::Walk, QueryMode::Lift, QueryMode::Label}) {
        AtomicityChecker::Options Opts;
        Opts.Layout = Layout;
        Opts.EnableAccessCache = Cache;
        Opts.Query = Query;
        AtomicityChecker Optimized(Opts);
        if (!S.Group.empty()) {
          EXPECT_TRUE(
              Optimized.registerAtomicGroup(S.Group.data(), S.Group.size()));
        }
        replayTrace(T.finish(), Optimized);

        std::set<MemAddr> Found;
        for (const Violation &V : Optimized.violations().snapshot())
          Found.insert(V.Addr);
        // Grouped locations report under the group's representative
        // address.
        std::set<MemAddr> Expected = S.ViolatingLocations;
        if (!S.Group.empty() && !Expected.empty())
          Expected = {S.Group.front()};
        EXPECT_EQ(Found, Expected)
            << S.Name << " with " << dpstLayoutName(Layout)
            << " DPST, cache " << (Cache ? "on" : "off") << ", "
            << queryModeName(Query) << " queries";
      }
    }
  }

  BasicChecker Basic;
  if (!S.Group.empty())
    Basic.registerAtomicGroup(S.Group.data(), S.Group.size());
  replayTrace(T.finish(), Basic);
  EXPECT_EQ(Basic.violations().empty(), S.ViolatingLocations.empty())
      << S.Name << " (basic reference checker)";

  // All six tools must report the same locations with the pre-analysis
  // gate off, on (exact two-pass), and in profile mode (live warmup).
  checkPreanalysisParity<AtomicityChecker>(S, "atomicity");
  checkPreanalysisParity<BasicChecker>(S, "basic");
  checkPreanalysisParity<RaceDetector>(S, "race");
  checkPreanalysisParity<DeterminismChecker>(S, "determinism");
  checkPreanalysisParity<VelodromeChecker>(S, "velodrome");
  checkPreanalysisParity<VectorClockAtomicity>(S, "vclock");

  // And the stored forms — text and compact binary — must replay to the
  // same verdicts as the in-memory trace for all six tools.
  checkCodecParity<AtomicityChecker>(S, "atomicity");
  checkCodecParity<BasicChecker>(S, "basic");
  checkCodecParity<RaceDetector>(S, "race");
  checkCodecParity<DeterminismChecker>(S, "determinism");
  checkCodecParity<VelodromeChecker>(S, "velodrome");
  checkCodecParity<VectorClockAtomicity>(S, "vclock");
}

TEST_P(ViolationSuite, DetectedByAllCheckers) { runScenario(GetParam()); }
TEST_P(CleanSuite, NoFalsePositives) { runScenario(GetParam()); }

INSTANTIATE_TEST_SUITE_P(All36, ViolationSuite,
                         ::testing::ValuesIn(buildSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });
INSTANTIATE_TEST_SUITE_P(CleanTwins, CleanSuite,
                         ::testing::ValuesIn(buildCleanSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(ViolationSuiteMeta, HasExactlyThirtySixPrograms) {
  EXPECT_EQ(buildSuite().size(), 36u);
}

} // namespace
