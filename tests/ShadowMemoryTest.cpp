//===- tests/ShadowMemoryTest.cpp - Shadow map tests ----------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/ShadowMemory.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

using namespace avc;

namespace {

TEST(ShadowMemory, SlotsDefaultConstruct) {
  ShadowMemory<int> Shadow;
  EXPECT_EQ(Shadow.getOrCreate(0x1234), 0);
  Shadow.getOrCreate(0x1234) = 7;
  EXPECT_EQ(Shadow.getOrCreate(0x1234), 7);
}

TEST(ShadowMemory, DistinctAddressesDistinctSlots) {
  ShadowMemory<int> Shadow;
  Shadow.getOrCreate(0x1000) = 1;
  Shadow.getOrCreate(0x1001) = 2;
  Shadow.getOrCreate(0xdeadbeef) = 3;
  EXPECT_EQ(Shadow.getOrCreate(0x1000), 1);
  EXPECT_EQ(Shadow.getOrCreate(0x1001), 2);
  EXPECT_EQ(Shadow.getOrCreate(0xdeadbeef), 3);
}

TEST(ShadowMemory, LookupDoesNotMaterialize) {
  ShadowMemory<int> Shadow;
  EXPECT_EQ(Shadow.lookup(0x5000), nullptr);
  Shadow.getOrCreate(0x5000) = 4;
  ASSERT_NE(Shadow.lookup(0x5000), nullptr);
  EXPECT_EQ(*Shadow.lookup(0x5000), 4);
  // A neighbouring address in the same leaf exists (zeroed) but a far one
  // does not.
  EXPECT_NE(Shadow.lookup(0x5001), nullptr);
  EXPECT_EQ(Shadow.lookup(0x500000000000ULL), nullptr);
}

TEST(ShadowMemory, SlotAddressesStable) {
  ShadowMemory<int> Shadow;
  int *Slot = &Shadow.getOrCreate(0x77777);
  for (MemAddr Addr = 0; Addr < 100000; Addr += 97)
    Shadow.getOrCreate(Addr);
  EXPECT_EQ(Slot, &Shadow.getOrCreate(0x77777));
}

TEST(ShadowMemory, SparseAddressesAcrossLevels) {
  ShadowMemory<uint64_t> Shadow;
  // Addresses differing only in the top, middle, and bottom 16 bits.
  std::vector<MemAddr> Addrs = {0x000100000000ULL, 0x000000010000ULL,
                                0x000000000001ULL, 0xffffffffffffULL};
  for (size_t I = 0; I < Addrs.size(); ++I)
    Shadow.getOrCreate(Addrs[I]) = I + 1;
  for (size_t I = 0; I < Addrs.size(); ++I)
    EXPECT_EQ(Shadow.getOrCreate(Addrs[I]), I + 1);
}

TEST(ShadowMemory, ConcurrentFirstTouch) {
  ShadowMemory<std::atomic<int>> Shadow;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&Shadow] {
      for (MemAddr Addr = 0; Addr < 5000; ++Addr)
        Shadow.getOrCreate(Addr * 64).fetch_add(1,
                                                std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  for (MemAddr Addr = 0; Addr < 5000; ++Addr)
    EXPECT_EQ(Shadow.getOrCreate(Addr * 64).load(), 4);
}

} // namespace
