//===- tests/TaskRuntimeTest.cpp - Scheduler and parallel algorithms ------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/TaskRuntime.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/Mutex.h"
#include "runtime/Parallel.h"
#include "trace/TraceRecorder.h"

using namespace avc;

namespace {

/// Every behavioural test runs single- and multi-threaded.
class RuntimeTest : public ::testing::TestWithParam<unsigned> {
protected:
  TaskRuntime::Options options() const {
    TaskRuntime::Options Opts;
    Opts.NumThreads = GetParam();
    return Opts;
  }
};

TEST_P(RuntimeTest, RootRunsOnCaller) {
  TaskRuntime RT(options());
  bool Ran = false;
  RT.run([&] {
    Ran = true;
    EXPECT_EQ(TaskRuntime::current(), &RT);
    EXPECT_EQ(TaskRuntime::currentTaskId(), 0u);
  });
  EXPECT_TRUE(Ran);
  EXPECT_EQ(TaskRuntime::current(), nullptr);
}

TEST_P(RuntimeTest, SpawnSyncCompletesChildren) {
  TaskRuntime RT(options());
  std::atomic<int> Counter{0};
  RT.run([&] {
    for (int I = 0; I < 100; ++I)
      spawn([&] { Counter.fetch_add(1); });
    avc::sync();
    EXPECT_EQ(Counter.load(), 100);
  });
  EXPECT_EQ(Counter.load(), 100);
}

TEST_P(RuntimeTest, ImplicitSyncAtTaskEnd) {
  TaskRuntime RT(options());
  std::atomic<int> Counter{0};
  RT.run([&] {
    for (int I = 0; I < 50; ++I)
      spawn([&] { Counter.fetch_add(1); });
    // No explicit sync: run() must still wait for everything.
  });
  EXPECT_EQ(Counter.load(), 50);
}

TEST_P(RuntimeTest, NestedSpawns) {
  TaskRuntime RT(options());
  std::atomic<int> Counter{0};
  RT.run([&] {
    for (int I = 0; I < 8; ++I)
      spawn([&] {
        for (int J = 0; J < 8; ++J)
          spawn([&] { Counter.fetch_add(1); });
      });
  });
  EXPECT_EQ(Counter.load(), 64);
}

TEST_P(RuntimeTest, TaskGroupWait) {
  TaskRuntime RT(options());
  std::atomic<int> Counter{0};
  RT.run([&] {
    TaskGroup Group;
    for (int I = 0; I < 20; ++I)
      Group.run([&] { Counter.fetch_add(1); });
    Group.wait();
    EXPECT_EQ(Counter.load(), 20);
    // A group is reusable after wait.
    Group.run([&] { Counter.fetch_add(1); });
    Group.wait();
    EXPECT_EQ(Counter.load(), 21);
  });
}

TEST_P(RuntimeTest, TaskIdsAreDenseAndUnique) {
  TaskRuntime RT(options());
  std::vector<std::atomic<int>> Seen(101);
  for (auto &S : Seen)
    S.store(0);
  RT.run([&] {
    for (int I = 0; I < 100; ++I)
      spawn([&] { Seen[TaskRuntime::currentTaskId()].fetch_add(1); });
  });
  // Ids 1..100 each executed exactly once (0 is the root).
  for (int I = 1; I <= 100; ++I)
    EXPECT_EQ(Seen[I].load(), 1) << "task id " << I;
}

TEST_P(RuntimeTest, ParallelForCoversRangeOnce) {
  TaskRuntime RT(options());
  std::vector<std::atomic<int>> Hits(1000);
  for (auto &H : Hits)
    H.store(0);
  RT.run([&] {
    parallelFor<size_t>(0, Hits.size(), 16, [&](size_t Lo, size_t Hi) {
      for (size_t I = Lo; I < Hi; ++I)
        Hits[I].fetch_add(1);
    });
  });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST_P(RuntimeTest, ParallelForEmptyAndTinyRanges) {
  TaskRuntime RT(options());
  std::atomic<int> Calls{0};
  RT.run([&] {
    parallelFor<int>(5, 5, 4, [&](int, int) { Calls.fetch_add(1); });
    EXPECT_EQ(Calls.load(), 0);
    parallelFor<int>(5, 6, 4, [&](int Lo, int Hi) {
      EXPECT_EQ(Lo, 5);
      EXPECT_EQ(Hi, 6);
      Calls.fetch_add(1);
    });
    EXPECT_EQ(Calls.load(), 1);
  });
}

TEST_P(RuntimeTest, ParallelReduceSums) {
  TaskRuntime RT(options());
  long Result = 0;
  RT.run([&] {
    Result = parallelReduce<size_t, long>(
        0, 10000, 64, 0L,
        [](size_t Lo, size_t Hi) {
          long Sum = 0;
          for (size_t I = Lo; I < Hi; ++I)
            Sum += static_cast<long>(I);
          return Sum;
        },
        [](long A, long B) { return A + B; });
  });
  EXPECT_EQ(Result, 10000L * 9999L / 2);
}

TEST_P(RuntimeTest, ParallelInvokeRunsAll) {
  TaskRuntime RT(options());
  std::atomic<int> Mask{0};
  RT.run([&] {
    parallelInvoke([&] { Mask.fetch_or(1); }, [&] { Mask.fetch_or(2); },
                   [&] { Mask.fetch_or(4); }, [&] { Mask.fetch_or(8); });
  });
  EXPECT_EQ(Mask.load(), 15);
}

TEST_P(RuntimeTest, MutexProtectsCounter) {
  TaskRuntime RT(options());
  Mutex Lock;
  int Unguarded = 0;
  RT.run([&] {
    parallelForEach<int>(0, 1000, 8, [&](int) {
      MutexGuard Guard(Lock);
      ++Unguarded;
    });
  });
  EXPECT_EQ(Unguarded, 1000);
}

INSTANTIATE_TEST_SUITE_P(Threads, RuntimeTest, ::testing::Values(1u, 4u),
                         [](const auto &Info) {
                           return "threads" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Observer event sequences (single-threaded for determinism)
//===----------------------------------------------------------------------===//

TEST(RuntimeObserver, SpawnSyncEventOrder) {
  TaskRuntime RT;
  TraceRecorder Recorder;
  RT.addObserver(&Recorder);
  RT.run([&] {
    spawn([] {});
    avc::sync();
  });
  const Trace &Events = Recorder.trace();
  ASSERT_GE(Events.size(), 6u);
  EXPECT_EQ(Events.front().Kind, TraceEventKind::ProgramStart);
  EXPECT_EQ(Events.back().Kind, TraceEventKind::ProgramEnd);

  // Spawn precedes the child's end; the explicit sync follows the child's
  // end; the runtime then emits the trailing implicit sync and root end.
  size_t SpawnAt = 0, ChildEndAt = 0, SyncAt = 0, RootEndAt = 0;
  for (size_t I = 0; I < Events.size(); ++I) {
    if (Events[I].Kind == TraceEventKind::TaskSpawn)
      SpawnAt = I;
    if (Events[I].Kind == TraceEventKind::TaskEnd && Events[I].Task == 1)
      ChildEndAt = I;
    if (Events[I].Kind == TraceEventKind::Sync && SyncAt == 0)
      SyncAt = I;
    if (Events[I].Kind == TraceEventKind::TaskEnd && Events[I].Task == 0)
      RootEndAt = I;
  }
  EXPECT_LT(SpawnAt, ChildEndAt);
  EXPECT_LT(ChildEndAt, SyncAt);
  EXPECT_LT(SyncAt, RootEndAt);

  // The spawn used the implicit scope.
  EXPECT_EQ(Events[SpawnAt].Arg2, 0u);
}

TEST(RuntimeObserver, GroupWaitCarriesTag) {
  TaskRuntime RT;
  TraceRecorder Recorder;
  RT.addObserver(&Recorder);
  RT.run([&] {
    TaskGroup Group;
    Group.run([] {});
    Group.wait();
  });
  bool SawSpawnWithGroup = false, SawWait = false;
  uint64_t SpawnGroup = 0, WaitGroup = 0;
  for (const TraceEvent &Event : Recorder.trace()) {
    if (Event.Kind == TraceEventKind::TaskSpawn && Event.Arg2 != 0) {
      SawSpawnWithGroup = true;
      SpawnGroup = Event.Arg2;
    }
    if (Event.Kind == TraceEventKind::GroupWait) {
      SawWait = true;
      WaitGroup = Event.Arg1;
    }
  }
  EXPECT_TRUE(SawSpawnWithGroup);
  EXPECT_TRUE(SawWait);
  EXPECT_EQ(SpawnGroup, WaitGroup);
}

TEST(RuntimeObserver, LockEventsBracketCriticalSection) {
  TaskRuntime RT;
  TraceRecorder Recorder;
  RT.addObserver(&Recorder);
  Mutex Lock;
  RT.run([&] {
    MutexGuard Guard(Lock);
    TaskRuntime::notifyWrite(&Lock); // any address; order marker
  });
  const Trace &Events = Recorder.trace();
  size_t AcqAt = 0, WriteAt = 0, RelAt = 0;
  for (size_t I = 0; I < Events.size(); ++I) {
    if (Events[I].Kind == TraceEventKind::LockAcquire)
      AcqAt = I;
    if (Events[I].Kind == TraceEventKind::Write)
      WriteAt = I;
    if (Events[I].Kind == TraceEventKind::LockRelease)
      RelAt = I;
  }
  EXPECT_LT(AcqAt, WriteAt);
  EXPECT_LT(WriteAt, RelAt);
  EXPECT_EQ(Events[AcqAt].Arg1, Lock.lockId());
}

TEST(RuntimeObserver, NotifyOutsideTaskIsIgnored) {
  int Dummy = 0;
  // Outside any runtime: must not crash, must not require a runtime.
  TaskRuntime::notifyRead(&Dummy);
  TaskRuntime::notifyWrite(&Dummy);
  TaskRuntime::notifyLockAcquire(1);
  TaskRuntime::notifyLockRelease(1);
  SUCCEED();
}

TEST(RuntimeObserver, DistinctMutexesGetDistinctIds) {
  Mutex A, B;
  EXPECT_NE(A.lockId(), B.lockId());
}

} // namespace
