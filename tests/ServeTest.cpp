//===- tests/ServeTest.cpp - Queue-draining serve loop --------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the serve daemon's queue protocol: rename-to-claim admits exactly
/// one winner per file under concurrent claimers, the stop sentinel shuts
/// the loop down cleanly, malformed traces are quarantined to failed/
/// without stopping service, and the NDJSON result log carries one valid
/// row per trace.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include <gtest/gtest.h>

#include "trace/ServeLoop.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceIO.h"

using namespace avc;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

void writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Contents;
  ASSERT_TRUE(Out.good()) << Path;
}

bool exists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Fresh queue directory (with inflight/) under the gtest temp dir.
std::string makeQueue(const char *Name) {
  std::string Dir = testing::TempDir() + "serve_" + Name;
  std::string Cmd = "rm -rf '" + Dir + "'";
  EXPECT_EQ(std::system(Cmd.c_str()), 0);
  ::mkdir(Dir.c_str(), 0777);
  ::mkdir((Dir + "/inflight").c_str(), 0777);
  return Dir;
}

/// A small well-formed text trace.
std::string tinyTraceText(uint64_t Seed) {
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = 6;
  Opts.NumLocations = 4;
  return traceToText(linearizeSerial(generateProgram(Opts)));
}

//===----------------------------------------------------------------------===//
// Claim protocol
//===----------------------------------------------------------------------===//

TEST(ServeClaim, SingleFileAdmitsOneWinner) {
  std::string Dir = makeQueue("one_winner");
  writeFile(Dir + "/only.trace", "payload");

  // Two claimers race for one file; rename-to-claim must admit exactly
  // one. Repeated start barriers make the race actually overlap.
  uint64_t RacesA = 0, RacesB = 0;
  std::string WonA, WonB;
  std::atomic<bool> Go{false};
  std::thread A([&] {
    while (!Go.load(std::memory_order_acquire))
      ;
    WonA = serveClaimOne(Dir, Dir + "/inflight", "a", RacesA);
  });
  std::thread B([&] {
    while (!Go.load(std::memory_order_acquire))
      ;
    WonB = serveClaimOne(Dir, Dir + "/inflight", "b", RacesB);
  });
  Go.store(true, std::memory_order_release);
  A.join();
  B.join();

  EXPECT_NE(WonA.empty(), WonB.empty())
      << "exactly one claimer wins: A='" << WonA << "' B='" << WonB << "'";
  const std::string &Winner = WonA.empty() ? WonB : WonA;
  EXPECT_TRUE(exists(Winner));
  EXPECT_FALSE(exists(Dir + "/only.trace"));
  EXPECT_EQ(serveQueueDepth(Dir), 0u);
}

TEST(ServeClaim, ConcurrentClaimersPartitionTheQueue) {
  std::string Dir = makeQueue("partition");
  constexpr int NumFiles = 40;
  for (int I = 0; I < NumFiles; ++I)
    writeFile(Dir + "/t" + std::to_string(I) + ".trace", "payload");
  ASSERT_EQ(serveQueueDepth(Dir), uint64_t(NumFiles));

  // Two servers drain the same queue; every file must be claimed exactly
  // once across both.
  std::vector<std::string> ClaimedA, ClaimedB;
  uint64_t RacesA = 0, RacesB = 0;
  auto Drain = [&Dir](const char *Suffix, std::vector<std::string> &Out,
                      uint64_t &Races) {
    while (true) {
      std::string P = serveClaimOne(Dir, Dir + "/inflight", Suffix, Races);
      if (P.empty())
        break;
      Out.push_back(P);
    }
  };
  std::thread A(Drain, "a", std::ref(ClaimedA), std::ref(RacesA));
  std::thread B(Drain, "b", std::ref(ClaimedB), std::ref(RacesB));
  A.join();
  B.join();

  EXPECT_EQ(ClaimedA.size() + ClaimedB.size(), size_t(NumFiles));
  std::set<std::string> Names;
  for (const std::string &P : ClaimedA)
    Names.insert(P);
  for (const std::string &P : ClaimedB)
    Names.insert(P);
  EXPECT_EQ(Names.size(), size_t(NumFiles)) << "no file claimed twice";
  EXPECT_EQ(serveQueueDepth(Dir), 0u);
}

TEST(ServeClaim, SentinelAndHiddenFilesAreNotClaimable) {
  std::string Dir = makeQueue("unclaimable");
  writeFile(Dir + "/stop", "");
  writeFile(Dir + "/.hidden", "x");
  writeFile(Dir + "/snapshot.tmp.123", "x");
  EXPECT_EQ(serveQueueDepth(Dir), 0u);
  uint64_t Races = 0;
  EXPECT_EQ(serveClaimOne(Dir, Dir + "/inflight", "a", Races), "");
  EXPECT_EQ(Races, 0u);
}

//===----------------------------------------------------------------------===//
// Serve loop
//===----------------------------------------------------------------------===//

TEST(ServeLoopTest, StopSentinelShutsDownCleanly) {
  std::string Dir = makeQueue("stop");
  ServeOptions Opts;
  Opts.QueueDir = Dir;
  Opts.PollMs = 5;
  Opts.SnapshotMs = 10;
  Opts.HealthPath = Dir + "/.health.json";

  std::thread Server([&] {
    ServeStats Stats = runServe(Opts);
    EXPECT_TRUE(Stats.Ok);
    EXPECT_GE(Stats.NumHeartbeats, 1u);
    EXPECT_EQ(Stats.NumClaimed, 0u);
  });
  // Let it idle through at least one poll, then request shutdown.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  writeFile(Dir + "/stop", "");
  Server.join();

  EXPECT_TRUE(exists(Dir + "/stop")) << "the sentinel is left in place";
  std::string Health = slurp(Dir + "/.health.json");
  EXPECT_NE(Health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(Health.find("\"queue_depth\": 0"), std::string::npos);
}

TEST(ServeLoopTest, DrainsQueueAndQuarantinesMalformedTraces) {
  std::string Dir = makeQueue("drain");
  writeFile(Dir + "/good1.trace", tinyTraceText(7));
  writeFile(Dir + "/good2.trace", tinyTraceText(8));
  writeFile(Dir + "/broken.trace", "not a trace\n");

  ServeOptions Opts;
  Opts.QueueDir = Dir;
  Opts.Batch.Tool = ToolKind::Atomicity;
  Opts.PollMs = 5;
  Opts.SnapshotMs = 10;
  Opts.ResultsPath = Dir + "/.results.ndjson";

  std::thread Server([&] {
    ServeStats Stats = runServe(Opts);
    EXPECT_TRUE(Stats.Ok);
    EXPECT_EQ(Stats.NumClaimed, 3u);
    EXPECT_EQ(Stats.NumChecked, 2u);
    EXPECT_EQ(Stats.NumFailed, 1u)
        << "a malformed trace must not stop service";
  });
  // The failure path must keep serving: wait for all three files to reach
  // a resting directory, then stop.
  for (int I = 0; I < 1000 && serveQueueDepth(Dir) > 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  while (!exists(Dir + "/failed/broken.trace") ||
         !exists(Dir + "/done/good1.trace") ||
         !exists(Dir + "/done/good2.trace"))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  writeFile(Dir + "/stop", "");
  Server.join();

  EXPECT_FALSE(exists(Dir + "/good1.trace"));
  EXPECT_FALSE(exists(Dir + "/broken.trace"));
  EXPECT_TRUE(exists(Dir + "/failed/broken.trace"));

  // One valid NDJSON row per trace.
  std::istringstream Lines(slurp(Dir + "/.results.ndjson"));
  std::vector<std::string> Rows;
  std::string Line;
  while (std::getline(Lines, Line))
    Rows.push_back(Line);
  ASSERT_EQ(Rows.size(), 3u);
  size_t NumOk = 0, NumError = 0;
  for (const std::string &Row : Rows) {
    EXPECT_EQ(Row.front(), '{') << Row;
    EXPECT_EQ(Row.back(), '}') << Row;
    EXPECT_NE(Row.find("\"trace\": "), std::string::npos) << Row;
    EXPECT_NE(Row.find("\"tool\": \"atomicity\""), std::string::npos) << Row;
    EXPECT_NE(Row.find("\"verdict\": "), std::string::npos) << Row;
    if (Row.find("\"verdict\": \"error\"") != std::string::npos) {
      ++NumError;
      EXPECT_NE(Row.find("\"error\": "), std::string::npos) << Row;
    } else {
      ++NumOk;
      EXPECT_NE(Row.find("\"events\": "), std::string::npos) << Row;
      EXPECT_NE(Row.find("\"violations\": "), std::string::npos) << Row;
    }
  }
  EXPECT_EQ(NumOk, 2u);
  EXPECT_EQ(NumError, 1u);
}

TEST(ServeLoopTest, FilesEnqueuedWhileServingAreChecked) {
  std::string Dir = makeQueue("live_enqueue");
  ServeOptions Opts;
  Opts.QueueDir = Dir;
  Opts.Batch.Tool = ToolKind::Atomicity;
  Opts.PollMs = 5;
  Opts.SnapshotMs = 10;

  std::thread Server([&] {
    ServeStats Stats = runServe(Opts);
    EXPECT_TRUE(Stats.Ok);
    EXPECT_EQ(Stats.NumChecked, 1u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Producer protocol: write to a temp name, rename in as the commit.
  writeFile(Dir + "/.tmp_late", tinyTraceText(11));
  ASSERT_EQ(std::rename((Dir + "/.tmp_late").c_str(),
                        (Dir + "/late.trace").c_str()),
            0);
  while (!exists(Dir + "/done/late.trace"))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  writeFile(Dir + "/stop", "");
  Server.join();
}

} // namespace
