//===- tests/VelodromeTest.cpp - Trace-bound baseline tests ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/Velodrome.h"

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x1008;

size_t velodromeViolations(const TraceBuilder &T) {
  VelodromeChecker Checker;
  replayTrace(T.finish(), Checker);
  return Checker.numViolations();
}

/// W-W-W interleaving observed in the trace: edge 1->2 then 2->1, a cycle.
TEST(Velodrome, ObservedWWWInterleavingIsACycle) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X); // txn S1 writes first
  T.write(2, X); // S2 interleaves: edge S1 -> S2
  T.write(1, X); // S1 again: edge S2 -> S1 => cycle
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(velodromeViolations(T), 1u);
}

/// The same program observed *without* the interleaving: no cycle — this is
/// exactly the schedule-sensitivity the paper contrasts with the DPST
/// approach, which flags this trace (see AtomicityCheckerTest).
TEST(Velodrome, SerialObservationHidesTheViolation) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X);
  T.write(1, X); // S1's accesses adjacent in the observed trace
  T.write(2, X);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(velodromeViolations(T), 0u);
}

/// R-W-R: two reads by one step observing different writes.
TEST(Velodrome, ObservedRWRInterleaving) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(2, X); // S2 writes (last writer)
  T.read(1, X);  // edge S2 -> S1
  T.write(2, X); // reader S1 -> writer S2: edge S1 -> S2 => cycle
  T.read(1, X);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(velodromeViolations(T), 1u);
}

/// Cross-variable cycle: S1 and S2 conflict on X in one order and on Y in
/// the other.
TEST(Velodrome, CrossVariableCycle) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X);
  T.write(2, X); // S1 -> S2 on X
  T.write(2, Y);
  T.write(1, Y); // S2 -> S1 on Y => cycle
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(velodromeViolations(T), 1u);
}

TEST(Velodrome, ForwardOnlyConflictsAreSerializable) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X);
  T.write(1, Y);
  T.write(2, X); // S1 -> S2
  T.write(2, Y); // S1 -> S2 again: same direction, no cycle
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(velodromeViolations(T), 0u);
}

TEST(Velodrome, ReadersDoNotConflictWithEachOther) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2).spawn(0, 3);
  T.read(1, X).read(2, X).read(3, X);
  T.read(1, X).read(2, X);
  T.end(1).end(2).end(3).sync(0).end(0);
  EXPECT_EQ(velodromeViolations(T), 0u);
}

TEST(Velodrome, StatsCountEdgesAndTransactions) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X);
  T.write(2, X);
  T.write(1, X);
  T.end(1).end(2).sync(0).end(0);
  VelodromeChecker Checker;
  replayTrace(T.finish(), Checker);
  VelodromeStats Stats = Checker.stats();
  EXPECT_EQ(Stats.NumWrites, 3u);
  EXPECT_EQ(Stats.NumEdges, 2u);
  EXPECT_EQ(Stats.NumCycles, 1u);
  ASSERT_EQ(Checker.cycles().size(), 1u);
  EXPECT_EQ(Checker.cycles().front().Addr, X);
}

/// A step's accesses to itself never create edges.
TEST(Velodrome, SelfConflictsIgnored) {
  TraceBuilder T;
  T.spawn(0, 1);
  T.write(1, X).read(1, X).write(1, X);
  T.end(1).sync(0).end(0);
  EXPECT_EQ(velodromeViolations(T), 0u);
}

} // namespace
