//===- tests/MulticoreMatrixTest.cpp - Live N-worker detection parity -----===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Executes the 36-program violation suite and its clean twins *live* on
/// the work-stealing runtime across 1/2/4/8 workers, for every tool, and
/// asserts the detected per-location sets equal the single-worker run's.
/// DPST-based tools judge parallelism structurally, so their verdicts must
/// be schedule-independent — any divergence across worker counts is a
/// concurrency bug in the checker itself (the sharded metadata, the
/// seqlock probe, the deferred violation recording). Velodrome is the
/// exception: it bounds detection to the observed schedule, so a 1-worker
/// run (a total order of step transactions) never reports, and cross-count
/// equality only holds for the clean programs, where *no* schedule can
/// produce a cycle.
///
/// This matrix is the TSan target for the concurrent checker paths: the CI
/// thread-sanitizer job runs it alongside the existing live tests.
///
//===----------------------------------------------------------------------===//

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "LiveSuiteLowering.h"
#include "ViolationSuiteData.h"
#include "instrument/ToolContext.h"
#include "runtime/Mutex.h"

using namespace avc;
using namespace avc::suite;

namespace {

// The trace-to-live lowering (LiveOp/LiveProgram/compileToLive/SuiteRunner)
// lives in LiveSuiteLowering.h, shared with the cross-engine differential
// test.

/// The tool's findings as a location set, through the uniform CheckerTool
/// interface (every engine's report kind carries the address of the
/// offending location).
std::set<MemAddr> foundLocations(ToolContext &Tool) {
  const CheckerTool *Engine = Tool.tool();
  return Engine ? Engine->violationKeys() : std::set<MemAddr>();
}

/// Live-mode warmup for the profile leg of the pre-analysis matrix. The
/// live site is the whole 3-element TrackedArray, so its warmup counter
/// aggregates accesses across X, Y and Z *in scheduler order* — a small
/// threshold could cross into speculation at a schedule-dependent point
/// and make verdicts flicker across runs. A threshold above any
/// scenario's total access count keeps profile mode deterministic here
/// (seq-region skips + warmup counting, never mid-scenario speculation);
/// the speculation and downgrade paths are covered deterministically by
/// SitePreanalysisTest and the replay suite's profile leg.
constexpr uint32_t LiveProfileWarmup = 64;

/// One live run of \p S under \p Kind on \p Threads workers, returning the
/// found locations translated to the scenario's synthetic addresses.
std::set<MemAddr> runLive(const Scenario &S, const LiveProgram &P,
                          ToolKind Kind, unsigned Threads,
                          PreanalysisMode Pre = PreanalysisMode::Off) {
  ToolContext::Options Opts;
  Opts.Tool = Kind;
  Opts.Checker.NumThreads = Threads;
  Opts.Checker.Preanalysis = Pre;
  if (Pre == PreanalysisMode::Profile)
    Opts.Checker.PreanalysisWarmup = LiveProfileWarmup;
  ToolContext Tool(Opts);

  SuiteRunner Runner(P);
  if (!S.Group.empty()) {
    std::vector<MemAddr> Live;
    for (MemAddr Member : S.Group)
      Live.push_back(Runner.liveAddressOf(Member));
    EXPECT_TRUE(Tool.registerAtomicGroup(Live.data(), Live.size()))
        << S.Name;
  }
  Runner.run(Tool);

  std::map<MemAddr, MemAddr> Translate = Runner.liveToSynthetic();
  std::set<MemAddr> Out;
  for (MemAddr Addr : foundLocations(Tool)) {
    auto It = Translate.find(Addr);
    EXPECT_NE(It, Translate.end())
        << S.Name << ": finding on an untracked location";
    if (It != Translate.end())
      Out.insert(It->second);
  }
  return Out;
}

constexpr unsigned WorkerCounts[] = {2, 4, 8};

class ViolatingMatrix : public ::testing::TestWithParam<Scenario> {};
class CleanMatrix : public ::testing::TestWithParam<Scenario> {};

/// Violating programs: the four structural tools must report the same
/// location set on every worker count as on one worker — and for the two
/// atomicity checkers that set is the scenario's expected one (grouped
/// locations report under the group's representative address).
TEST_P(ViolatingMatrix, VerdictsMatchSingleWorker) {
  const Scenario &S = GetParam();
  LiveProgram P = compileToLive(S.Build().finish());
  if (!P.Supported)
    GTEST_SKIP() << "task-group events have no live lowering";

  for (ToolKind Kind : {ToolKind::Atomicity, ToolKind::Basic, ToolKind::Race,
                        ToolKind::Determinism}) {
    std::set<MemAddr> Baseline = runLive(S, P, Kind, 1);
    if (Kind == ToolKind::Atomicity || Kind == ToolKind::Basic) {
      std::set<MemAddr> Expected = S.ViolatingLocations;
      if (!S.Group.empty() && !Expected.empty())
        Expected = {S.Group.front()};
      EXPECT_EQ(Baseline, Expected)
          << S.Name << " live 1-worker run, tool " << toolKindName(Kind);
    }
    for (unsigned Threads : WorkerCounts)
      EXPECT_EQ(runLive(S, P, Kind, Threads), Baseline)
          << S.Name << " on " << Threads << " workers, tool "
          << toolKindName(Kind);
    // Pre-analysis parity: the live gate (seq-region skips, warmup) must
    // not change any verdict, single-threaded or contended.
    for (PreanalysisMode Pre :
         {PreanalysisMode::On, PreanalysisMode::Profile})
      for (unsigned Threads : {1u, 8u})
        EXPECT_EQ(runLive(S, P, Kind, Threads, Pre), Baseline)
            << S.Name << " on " << Threads << " workers, tool "
            << toolKindName(Kind) << ", preanalysis "
            << preanalysisModeName(Pre);
  }
}

/// Clean twins: every tool's verdicts must match its own 1-worker run on
/// every worker count. The atomicity checkers must additionally stay
/// *silent* (the suite is atomicity-clean — some twins still carry real
/// data races or nondeterminism, which the race and determinism tools
/// rightly flag on every count). The trace-bound engines — Velodrome and
/// its vector-clock twin — must also stay silent: a program serializable
/// under every schedule can never exhibit a transaction cycle, whichever
/// interleaving the workers produce — the strongest cross-schedule
/// statement available for a trace-bound tool.
TEST_P(CleanMatrix, VerdictsMatchSingleWorker) {
  const Scenario &S = GetParam();
  LiveProgram P = compileToLive(S.Build().finish());
  if (!P.Supported)
    GTEST_SKIP() << "task-group events have no live lowering";

  for (ToolKind Kind :
       {ToolKind::Atomicity, ToolKind::Basic, ToolKind::Race,
        ToolKind::Determinism, ToolKind::Velodrome, ToolKind::VClock}) {
    std::set<MemAddr> Baseline = runLive(S, P, Kind, 1);
    if (Kind != ToolKind::Race && Kind != ToolKind::Determinism) {
      EXPECT_EQ(Baseline, std::set<MemAddr>())
          << S.Name << " live 1-worker run, tool " << toolKindName(Kind);
    }
    for (unsigned Threads : WorkerCounts)
      EXPECT_EQ(runLive(S, P, Kind, Threads), Baseline)
          << S.Name << " on " << Threads << " workers, tool "
          << toolKindName(Kind);
    // Pre-analysis parity on the clean side covers all six tools
    // (the trace-bound pair included: a serializable-under-every-schedule
    // program stays silent whatever the gate skips).
    for (PreanalysisMode Pre :
         {PreanalysisMode::On, PreanalysisMode::Profile})
      for (unsigned Threads : {1u, 8u})
        EXPECT_EQ(runLive(S, P, Kind, Threads, Pre), Baseline)
            << S.Name << " on " << Threads << " workers, tool "
            << toolKindName(Kind) << ", preanalysis "
            << preanalysisModeName(Pre);
  }
}

INSTANTIATE_TEST_SUITE_P(Suite36, ViolatingMatrix,
                         ::testing::ValuesIn(buildSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });
INSTANTIATE_TEST_SUITE_P(CleanTwins, CleanMatrix,
                         ::testing::ValuesIn(buildCleanSuite()),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

//===----------------------------------------------------------------------===//
// Atomic-group workload: many tasks hammering one multi-member group
//===----------------------------------------------------------------------===//

/// A deterministic group workload: 8 tasks touch a 4-member atomic group,
/// half inside one shared mutex, half bare. The bare read-then-write pairs
/// are unserializable patterns against every parallel writer, so the
/// violating set (the group representative) is structural — identical on
/// every worker count — while the group's shared metadata instance takes
/// maximal cross-worker contention.
std::set<int> runGroupWorkload(ToolKind Kind, unsigned Threads) {
  ToolContext::Options Opts;
  Opts.Tool = Kind;
  Opts.Checker.NumThreads = Threads;
  ToolContext Tool(Opts);

  TrackedArray<int> Members(4);
  MemAddr Addrs[4];
  for (int I = 0; I < 4; ++I)
    Addrs[I] = Members[I].address();
  EXPECT_TRUE(Tool.registerAtomicGroup(Addrs, 4));

  Mutex Gate;
  Tool.run([&] {
    for (int T = 0; T < 8; ++T)
      spawn([&Members, &Gate, T] {
        if (T % 2 == 0) {
          Gate.lock();
          Members[T % 4].load();
          Members[(T + 1) % 4].store(T);
          Gate.unlock();
        } else {
          Members[T % 4].load();
          Members[(T + 1) % 4].store(T);
        }
      });
  });

  std::set<int> Out;
  for (MemAddr Addr : foundLocations(Tool))
    for (int I = 0; I < 4; ++I)
      if (Addr == Addrs[I])
        Out.insert(I);
  return Out;
}

TEST(AtomicGroupWorkload, ViolationSetStableAcrossWorkerCounts) {
  for (ToolKind Kind : {ToolKind::Atomicity, ToolKind::Basic}) {
    std::set<int> Baseline = runGroupWorkload(Kind, 1);
    EXPECT_FALSE(Baseline.empty())
        << toolKindName(Kind) << " must flag the bare group accesses";
    for (unsigned Threads : WorkerCounts)
      EXPECT_EQ(runGroupWorkload(Kind, Threads), Baseline)
          << toolKindName(Kind) << " on " << Threads << " workers";
  }
}

//===----------------------------------------------------------------------===//
// Task ending while holding locks: release-build recovery
//===----------------------------------------------------------------------===//

/// A task that ends while holding a lock is a malformed program; the
/// checker must recover (clear the lockset, keep checking) instead of
/// crashing or poisoning later verdicts with the stale held set.
TEST(TaskEndWithHeldLocks, RecoversAndKeepsDetecting) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L1).read(1, X);
  T.end(1); // ends with L1 still held
  T.read(2, X).write(2, X);
  T.end(2);
  T.write(0, X); // root continuation, parallel to task 2's pattern
  T.sync(0).end(0);

  AtomicityChecker Checker;
  replayTrace(T.finish(), Checker);

  std::set<MemAddr> Found;
  for (const Violation &V : Checker.violations().snapshot())
    Found.insert(V.Addr);
  EXPECT_EQ(Found, std::set<MemAddr>{X});
}

} // namespace
