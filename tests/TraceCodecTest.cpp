//===- tests/TraceCodecTest.cpp - Binary trace format + recorder ----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
//
// Round-trip property tests for the binary trace codec, the corrupted-file
// matrix (clean errors, never crashes), and validity of the lock-free
// recorder's merged linearization under real concurrency (this test runs
// in the TSan CI job).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceCodec.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "checker/AtomicityChecker.h"
#include "instrument/Tracked.h"
#include "runtime/Mutex.h"
#include "runtime/TaskRuntime.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceIO.h"
#include "trace/TraceRecorder.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

Trace genTrace(uint64_t Seed, bool Random, uint32_t NumTasks = 24) {
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = NumTasks;
  Opts.NumLocations = 5;
  Opts.NumLocks = 3;
  Opts.LockedFraction = 0.4;
  GenProgram Program = generateProgram(Opts);
  return Random ? linearizeRandom(Program, Seed * 31 + 1)
                : linearizeSerial(Program);
}

//===----------------------------------------------------------------------===//
// Round-trip properties
//===----------------------------------------------------------------------===//

TEST(TraceCodec, RoundTripFortySeeds) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    for (bool Random : {false, true}) {
      Trace Original = genTrace(Seed, Random);
      std::string Encoded = encodeTrace(Original);
      ASSERT_TRUE(isBinaryTrace(Encoded));
      std::string Error;
      std::optional<Trace> Decoded = decodeTrace(Encoded, &Error);
      ASSERT_TRUE(Decoded.has_value())
          << "seed " << Seed << ": " << Error;
      EXPECT_EQ(*Decoded, Original) << "seed " << Seed;
    }
  }
}

TEST(TraceCodec, TextToBinaryToTextIdentical) {
  for (uint64_t Seed : {3u, 17u, 29u}) {
    Trace Original = genTrace(Seed, true);
    std::string Text = traceToText(Original);
    std::optional<Trace> FromText = traceFromText(Text);
    ASSERT_TRUE(FromText.has_value());
    std::optional<Trace> Decoded = decodeTrace(encodeTrace(*FromText));
    ASSERT_TRUE(Decoded.has_value());
    EXPECT_EQ(traceToText(*Decoded), Text);
  }
}

TEST(TraceCodec, SmallBlocksRoundTrip) {
  Trace Original = genTrace(7, true);
  for (uint32_t BlockEvents : {1u, 2u, 7u, 64u}) {
    std::string Encoded = encodeTrace(Original, BlockEvents);
    std::optional<Trace> Decoded = decodeTrace(Encoded);
    ASSERT_TRUE(Decoded.has_value()) << BlockEvents << " events/block";
    EXPECT_EQ(*Decoded, Original) << BlockEvents << " events/block";
  }
}

TEST(TraceCodec, EmptyTraceRoundTrips) {
  std::string Encoded = encodeTrace(Trace{});
  std::optional<TraceFileInfo> Info = readTraceFileInfo(Encoded);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->TotalEvents, 0u);
  EXPECT_TRUE(Info->Blocks.empty());
  std::optional<Trace> Decoded = decodeTrace(Encoded);
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_TRUE(Decoded->empty());
}

TEST(TraceCodec, FileInfoDescribesBlocks) {
  Trace Original = genTrace(5, false);
  std::string Encoded = encodeTrace(Original, 50);
  std::optional<TraceFileInfo> Info = readTraceFileInfo(Encoded);
  ASSERT_TRUE(Info.has_value());
  EXPECT_EQ(Info->TotalEvents, Original.size());
  EXPECT_EQ(Info->Blocks.size(), (Original.size() + 49) / 50);
  uint64_t Tally = 0;
  for (const TraceBlockInfo &Block : Info->Blocks) {
    EXPECT_EQ(Block.FirstEvent, Tally);
    Tally += Block.NumEvents;
  }
  EXPECT_EQ(Tally, Original.size());
}

TEST(TraceCodec, BlocksDecodeIndependently) {
  Trace Original = genTrace(9, true);
  std::string Encoded = encodeTrace(Original, 37);
  std::optional<TraceFileInfo> Info = readTraceFileInfo(Encoded);
  ASSERT_TRUE(Info.has_value());
  ASSERT_GT(Info->Blocks.size(), 2u);
  // Decode blocks out of order, each standalone; the slices must match
  // the original exactly.
  for (size_t I = Info->Blocks.size(); I-- > 0;) {
    Trace Slice;
    std::string Error;
    ASSERT_TRUE(decodeTraceBlock(Encoded, Info->Blocks[I], Slice, &Error))
        << Error;
    ASSERT_EQ(Slice.size(), Info->Blocks[I].NumEvents);
    for (size_t J = 0; J < Slice.size(); ++J)
      EXPECT_EQ(Slice[J], Original[Info->Blocks[I].FirstEvent + J]);
  }
}

TEST(TraceCodec, ParallelDecodeMatchesSequential) {
  Trace Original = genTrace(21, true, 64);
  std::string Encoded = encodeTrace(Original, 29);
  for (unsigned Threads : {1u, 4u}) {
    std::string Error;
    std::optional<Trace> Decoded =
        decodeTraceParallel(Encoded, Threads, &Error);
    ASSERT_TRUE(Decoded.has_value()) << Error;
    EXPECT_EQ(*Decoded, Original) << Threads << " threads";
  }
}

TEST(TraceCodec, ParseAutoDispatchesOnMagic) {
  Trace Original = genTrace(2, false);
  std::optional<Trace> FromBinary = parseTraceAuto(encodeTrace(Original));
  ASSERT_TRUE(FromBinary.has_value());
  EXPECT_EQ(*FromBinary, Original);
  std::optional<Trace> FromText = parseTraceAuto(traceToText(Original));
  ASSERT_TRUE(FromText.has_value());
  EXPECT_EQ(*FromText, Original);

  std::string Error;
  EXPECT_FALSE(parseTraceAuto("start 0\nbogus\n", &Error).has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
}

TEST(TraceCodec, CompressionBeatsFourToOne) {
  Trace Original = genTrace(13, true, 64);
  std::string Text = traceToText(Original);
  std::string Encoded = encodeTrace(Original);
  EXPECT_LE(Encoded.size() * 4, Text.size())
      << "binary " << Encoded.size() << "B vs text " << Text.size() << "B";
}

//===----------------------------------------------------------------------===//
// Corrupted-file matrix: every mutation fails cleanly with a message.
//===----------------------------------------------------------------------===//

void expectCleanFailure(const std::string &Bytes, const char *What) {
  std::string Error;
  std::optional<Trace> Decoded = decodeTrace(Bytes, &Error);
  EXPECT_FALSE(Decoded.has_value()) << What;
  EXPECT_FALSE(Error.empty()) << What;
}

TEST(TraceCodecCorruption, BadMagic) {
  std::string Encoded = encodeTrace(genTrace(1, false));
  Encoded[0] = 'X';
  expectCleanFailure(Encoded, "bad magic");
  EXPECT_FALSE(isBinaryTrace(Encoded));
}

TEST(TraceCodecCorruption, UnsupportedVersion) {
  std::string Encoded = encodeTrace(genTrace(1, false));
  Encoded[8] = char(0x7f);
  std::string Error;
  EXPECT_FALSE(readTraceFileInfo(Encoded, &Error).has_value());
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(TraceCodecCorruption, EveryTruncationFailsCleanly) {
  Trace Original = genTrace(4, true, 12);
  std::string Encoded = encodeTrace(Original, 16);
  for (size_t Len = 0; Len < Encoded.size(); ++Len)
    expectCleanFailure(Encoded.substr(0, Len), "truncated file");
}

TEST(TraceCodecCorruption, WildVarintRejected) {
  // One event per block keeps the block layout obvious: overwrite a
  // block's whole payload with continuation bytes (every high bit set) so
  // the decoder sees a varint that never terminates.
  Trace Original = genTrace(6, false);
  std::string Encoded = encodeTrace(Original, 1);
  std::optional<TraceFileInfo> Info = readTraceFileInfo(Encoded);
  ASSERT_TRUE(Info.has_value());
  const TraceBlockInfo &Block = Info->Blocks[2];
  for (uint32_t I = 0; I < Block.PayloadBytes; ++I)
    Encoded[Block.Offset + 8 + I] = char(0x92); // spawn tag + continuation
  Trace Out;
  std::string Error;
  EXPECT_FALSE(decodeTraceBlock(Encoded, Block, Out, &Error));
  EXPECT_FALSE(Error.empty());
  expectCleanFailure(Encoded, "wild varint");
}

TEST(TraceCodecCorruption, TrailerMagicDamaged) {
  std::string Encoded = encodeTrace(genTrace(1, false));
  Encoded[Encoded.size() - 1] ^= char(0xff);
  expectCleanFailure(Encoded, "trailer magic");
}

TEST(TraceCodecCorruption, IndexBlockHeaderDisagreement) {
  std::string Encoded = encodeTrace(genTrace(1, false), 32);
  std::optional<TraceFileInfo> Info = readTraceFileInfo(Encoded);
  ASSERT_TRUE(Info.has_value());
  ASSERT_GT(Info->Blocks.size(), 1u);
  // Flip the second block's in-file event count; the index still carries
  // the original, and the cross-check must catch the disagreement.
  size_t CountOffset = Info->Blocks[1].Offset + 4;
  Encoded[CountOffset] ^= char(0x01);
  expectCleanFailure(Encoded, "index/header disagreement");
}

TEST(TraceCodecCorruption, ByteFlipFuzzNeverCrashes) {
  Trace Original = genTrace(8, true, 12);
  std::string Encoded = encodeTrace(Original, 16);
  for (size_t I = 0; I < Encoded.size(); ++I) {
    for (uint8_t Bit : {uint8_t(0x01), uint8_t(0x80)}) {
      std::string Mutated = Encoded;
      Mutated[I] = char(uint8_t(Mutated[I]) ^ Bit);
      std::string Error;
      std::optional<Trace> Decoded = decodeTrace(Mutated, &Error);
      // A flipped payload bit may still decode (to different events) —
      // that is fine; what matters is that failures carry a message and
      // nothing crashes or overruns (ASan/TSan-checked in CI).
      if (!Decoded) {
        EXPECT_FALSE(Error.empty()) << "byte " << I;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Concurrent recorder: the merged trace is a valid linearization.
//===----------------------------------------------------------------------===//

/// Structural validity of a merged recording: framing, no event before
/// the task's spawn or after its end, per-task balanced locks, and mutual
/// exclusion of critical sections across the whole linearization.
void expectValidLinearization(const Trace &Events) {
  ASSERT_FALSE(Events.empty());
  EXPECT_EQ(Events.front().Kind, TraceEventKind::ProgramStart);
  EXPECT_EQ(Events.back().Kind, TraceEventKind::ProgramEnd);

  std::set<TaskId> Spawned{0}, Ended;
  std::map<uint64_t, TaskId> LockOwner;
  for (size_t I = 1; I + 1 < Events.size(); ++I) {
    const TraceEvent &Event = Events[I];
    EXPECT_TRUE(Spawned.count(Event.Task))
        << "event " << I << " by unspawned task " << Event.Task;
    EXPECT_FALSE(Ended.count(Event.Task))
        << "event " << I << " by ended task " << Event.Task;
    switch (Event.Kind) {
    case TraceEventKind::TaskSpawn:
      EXPECT_TRUE(Spawned.insert(TaskId(Event.Arg1)).second)
          << "task " << Event.Arg1 << " spawned twice";
      break;
    case TraceEventKind::TaskEnd:
      EXPECT_TRUE(Ended.insert(Event.Task).second);
      break;
    case TraceEventKind::LockAcquire:
      EXPECT_EQ(LockOwner.count(Event.Arg1), 0u)
          << "lock " << Event.Arg1 << " acquired while held (event " << I
          << ")";
      LockOwner[Event.Arg1] = Event.Task;
      break;
    case TraceEventKind::LockRelease:
      ASSERT_EQ(LockOwner.count(Event.Arg1), 1u);
      EXPECT_EQ(LockOwner[Event.Arg1], Event.Task);
      LockOwner.erase(Event.Arg1);
      break;
    default:
      break;
    }
  }
  EXPECT_EQ(Spawned.size(), Ended.size());
  EXPECT_TRUE(LockOwner.empty());
}

/// A contended workload: 16 tasks increment counters under two mutexes
/// and touch unprotected state (one real violation).
void runRecordedWorkload(unsigned Threads, TraceRecorder &Recorder,
                         AtomicityChecker *Live) {
  Tracked<int> Counters[4];
  TrackedArray<int> Scratch(64);
  Mutex Locks[2];

  TaskRuntime::Options Opts;
  Opts.NumThreads = Threads;
  TaskRuntime RT(Opts);
  RT.addObserver(&Recorder);
  if (Live)
    RT.addObserver(Live);
  RT.run([&] {
    for (int T = 0; T < 16; ++T) {
      spawn([&, T] {
        for (int I = 0; I < 8; ++I) {
          {
            std::lock_guard<Mutex> Guard(Locks[T % 2]);
            int V = Counters[T % 2].load();
            Counters[T % 2].store(V + 1);
          }
          size_t Slot = size_t((T * 8 + I) % 64);
          Scratch[Slot].store(Scratch[Slot].load() + 1);
        }
        // Unsynchronized read-modify-write: the seeded violation.
        int V = Counters[2].load();
        Counters[2].store(V + 1);
      });
    }
  });
}

TEST(TraceRecorderConcurrent, SingleWorkerHasNoContendedMerges) {
  TraceRecorder Recorder;
  runRecordedWorkload(1, Recorder, nullptr);
  const TraceRecorderStats &Stats = Recorder.stats();
  EXPECT_EQ(Stats.NumContendedMerges, 0u);
  EXPECT_EQ(Stats.NumWorkerBuffers, 1u);
  EXPECT_EQ(Stats.NumEvents, Recorder.trace().size());
  expectValidLinearization(Recorder.trace());
}

TEST(TraceRecorderConcurrent, MergedTraceIsValidLinearization) {
  for (unsigned Threads : {2u, 4u, 8u}) {
    TraceRecorder Recorder;
    runRecordedWorkload(Threads, Recorder, nullptr);
    expectValidLinearization(Recorder.trace());
    EXPECT_LE(Recorder.stats().NumWorkerBuffers, uint64_t(Threads));
  }
}

TEST(TraceRecorderConcurrent, ReplayedVerdictsMatchLive) {
  for (unsigned Threads : {1u, 4u}) {
    TraceRecorder Recorder;
    AtomicityChecker Live;
    runRecordedWorkload(Threads, Recorder, &Live);

    AtomicityChecker Offline;
    replayTrace(Recorder.trace(), Offline);
    EXPECT_EQ(Offline.violations().size(), Live.violations().size())
        << Threads << " threads";

    // And the binary format preserves the verdict end to end.
    std::optional<Trace> Decoded = decodeTrace(encodeTrace(Recorder.trace()));
    ASSERT_TRUE(Decoded.has_value());
    AtomicityChecker FromBinary;
    replayTrace(*Decoded, FromBinary);
    EXPECT_EQ(FromBinary.violations().size(), Live.violations().size());
  }
}

} // namespace
