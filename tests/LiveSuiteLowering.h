//===- tests/LiveSuiteLowering.h - Suite scenarios on the live runtime ----===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers ViolationSuiteData.h scenarios from their traces to per-task op
/// programs executable on the live work-stealing runtime, with tracked
/// storage and real mutexes. Shared by the multicore matrix test (N-worker
/// verdict parity) and the cross-engine differential test (vclock vs
/// Velodrome vs the DPST checker).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TESTS_LIVESUITELOWERING_H
#define AVC_TESTS_LIVESUITELOWERING_H

#include <map>
#include <memory>
#include <vector>

#include "ViolationSuiteData.h"
#include "instrument/ToolContext.h"
#include "runtime/Mutex.h"

namespace avc {
namespace suite {

/// One interpretable op of a live task body.
struct LiveOp {
  enum class Kind { Read, Write, Acquire, Release, Sync, Spawn } K;
  uint32_t Index; ///< location index, lock id, or child task id
};

/// A suite scenario lowered from its trace to per-task op programs. The
/// trace's per-task event subsequence *is* that task's program order, so
/// the lowering preserves the spawn/sync structure exactly; only the
/// interleaving between tasks is left to the live scheduler, which is the
/// point of running live.
struct LiveProgram {
  std::map<TaskId, std::vector<LiveOp>> Tasks;
  /// False for scenarios using explicit task groups (09/10): the trace
  /// events have no portable live-API equivalent, and the grouped-wait
  /// structure is covered by the runtime's own finish-scope tests.
  bool Supported = true;
};

inline uint32_t locationIndexOf(MemAddr Addr) {
  return static_cast<uint32_t>((Addr - X) / 8); // X, Y, Z are contiguous
}

inline LiveProgram compileToLive(const Trace &Tr) {
  LiveProgram P;
  P.Tasks.try_emplace(0);
  for (const TraceEvent &E : Tr) {
    switch (E.Kind) {
    case TraceEventKind::ProgramStart:
    case TraceEventKind::ProgramEnd:
    case TraceEventKind::TaskEnd:
      break; // live task bodies end when their ops run out
    case TraceEventKind::TaskSpawn:
      if (E.Arg2 != 0) {
        P.Supported = false;
        return P;
      }
      P.Tasks[E.Task].push_back(
          {LiveOp::Kind::Spawn, static_cast<uint32_t>(E.Arg1)});
      P.Tasks.try_emplace(static_cast<TaskId>(E.Arg1));
      break;
    case TraceEventKind::GroupWait:
      P.Supported = false;
      return P;
    case TraceEventKind::Sync:
      P.Tasks[E.Task].push_back({LiveOp::Kind::Sync, 0});
      break;
    case TraceEventKind::LockAcquire:
      P.Tasks[E.Task].push_back(
          {LiveOp::Kind::Acquire, static_cast<uint32_t>(E.Arg1)});
      break;
    case TraceEventKind::LockRelease:
      P.Tasks[E.Task].push_back(
          {LiveOp::Kind::Release, static_cast<uint32_t>(E.Arg1)});
      break;
    case TraceEventKind::Read:
      P.Tasks[E.Task].push_back(
          {LiveOp::Kind::Read, locationIndexOf(E.Arg1)});
      break;
    case TraceEventKind::Write:
      P.Tasks[E.Task].push_back(
          {LiveOp::Kind::Write, locationIndexOf(E.Arg1)});
      break;
    }
  }
  return P;
}

/// Runs a lowered scenario on the live runtime with tracked storage and
/// real mutexes. One instance per run (addresses are fresh each time).
class SuiteRunner {
public:
  SuiteRunner(const LiveProgram &P)
      : P(P), Data(3), Locks(std::make_unique<Mutex[]>(4)) {}

  void run(ToolContext &Tool) {
    Tool.run([this] { runTask(0); });
  }

  /// The live address of the scenario location \p Synthetic (X, Y or Z).
  MemAddr liveAddressOf(MemAddr Synthetic) const {
    return Data[locationIndexOf(Synthetic)].address();
  }

  /// Maps the live addresses back to the scenario's synthetic ones so sets
  /// from independent runs are comparable.
  std::map<MemAddr, MemAddr> liveToSynthetic() const {
    std::map<MemAddr, MemAddr> Out;
    for (uint32_t L = 0; L < 3; ++L)
      Out[Data[L].address()] = X + 8 * L;
    return Out;
  }

private:
  void runTask(TaskId Id) {
    auto It = P.Tasks.find(Id);
    if (It == P.Tasks.end())
      return;
    for (const LiveOp &Op : It->second) {
      switch (Op.K) {
      case LiveOp::Kind::Read:
        Data[Op.Index].load();
        break;
      case LiveOp::Kind::Write:
        Data[Op.Index].store(1);
        break;
      case LiveOp::Kind::Acquire:
        Locks[Op.Index].lock();
        break;
      case LiveOp::Kind::Release:
        Locks[Op.Index].unlock();
        break;
      case LiveOp::Kind::Sync:
        avc::sync();
        break;
      case LiveOp::Kind::Spawn: {
        uint32_t Child = Op.Index;
        spawn([this, Child] { runTask(Child); });
        break;
      }
      }
    }
  }

  const LiveProgram &P;
  TrackedArray<int> Data;
  std::unique_ptr<Mutex[]> Locks;
};

} // namespace suite
} // namespace avc

#endif // AVC_TESTS_LIVESUITELOWERING_H
