//===- tests/SupportTest.cpp - support/ utility tests ---------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/ArgParse.h"
#include "support/ChunkedVector.h"
#include "support/PointerMap.h"
#include "support/RadixTable.h"
#include "support/Random.h"
#include "support/SpinLock.h"
#include "support/Statistics.h"

using namespace avc;

namespace {

//===----------------------------------------------------------------------===//
// ChunkedVector
//===----------------------------------------------------------------------===//

TEST(ChunkedVector, AppendAndIndex) {
  ChunkedVector<int> Vec;
  EXPECT_TRUE(Vec.empty());
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(Vec.emplaceBack(I * 3), static_cast<size_t>(I));
  EXPECT_EQ(Vec.size(), 10000u);
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(Vec[I], I * 3);
}

TEST(ChunkedVector, ElementAddressesAreStable) {
  ChunkedVector<int, 4> Vec; // tiny chunks to force many allocations
  Vec.emplaceBack(42);
  int *First = &Vec[0];
  for (int I = 0; I < 1000; ++I)
    Vec.emplaceBack(I);
  EXPECT_EQ(First, &Vec[0]);
  EXPECT_EQ(*First, 42);
}

TEST(ChunkedVector, DestroysElements) {
  static int Live = 0;
  struct Probe {
    Probe() { ++Live; }
    ~Probe() { --Live; }
  };
  {
    ChunkedVector<Probe, 3> Vec;
    for (int I = 0; I < 100; ++I)
      Vec.emplaceBack();
    EXPECT_EQ(Live, 100);
  }
  EXPECT_EQ(Live, 0);
}

TEST(ChunkedVector, ConcurrentAppendAndRead) {
  ChunkedVector<size_t, 6> Vec;
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load()) {
      size_t N = Vec.size();
      for (size_t I = 0; I < N; ++I)
        EXPECT_EQ(Vec[I], I);
    }
  });
  for (size_t I = 0; I < 20000; ++I)
    Vec.emplaceBack(I);
  Stop.store(true);
  Reader.join();
  EXPECT_EQ(Vec.size(), 20000u);
}

//===----------------------------------------------------------------------===//
// RadixTable
//===----------------------------------------------------------------------===//

TEST(RadixTable, GetOrCreateDefaultConstructs) {
  RadixTable<int> Table;
  EXPECT_EQ(Table.getOrCreate(123), 0);
  Table.getOrCreate(123) = 7;
  EXPECT_EQ(Table.getOrCreate(123), 7);
  EXPECT_EQ(Table.getOrCreate(124), 0); // same leaf, different slot
}

TEST(RadixTable, LookupWithoutCreate) {
  RadixTable<int> Table;
  EXPECT_EQ(Table.lookup(5000), nullptr);
  Table.getOrCreate(5000) = 9;
  ASSERT_NE(Table.lookup(5000), nullptr);
  EXPECT_EQ(*Table.lookup(5000), 9);
}

TEST(RadixTable, SlotsAreStable) {
  RadixTable<int, 4, 4> Table;
  int *Slot = &Table.getOrCreate(3);
  for (uint64_t Key = 0; Key < 200; ++Key)
    Table.getOrCreate(Key);
  EXPECT_EQ(Slot, &Table.getOrCreate(3));
}

TEST(RadixTable, ConcurrentCreationRaces) {
  RadixTable<std::atomic<int>, 6, 6> Table;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&Table] {
      for (uint64_t Key = 0; Key < 2000; ++Key)
        Table.getOrCreate(Key).fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  for (uint64_t Key = 0; Key < 2000; ++Key)
    EXPECT_EQ(Table.getOrCreate(Key).load(), 4);
}

//===----------------------------------------------------------------------===//
// PointerMap
//===----------------------------------------------------------------------===//

TEST(PointerMap, InsertLookupDefaultConstruct) {
  int A = 0, B = 0;
  PointerMap<int *, int> Map;
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(&A), nullptr);
  Map[&A] = 7;
  Map[&B] = 9;
  EXPECT_EQ(Map.size(), 2u);
  ASSERT_NE(Map.lookup(&A), nullptr);
  EXPECT_EQ(*Map.lookup(&A), 7);
  EXPECT_EQ(Map[&B], 9);
  EXPECT_EQ(Map[&A], 7); // existing key: no duplicate
  EXPECT_EQ(Map.size(), 2u);
}

TEST(PointerMap, GrowthKeepsAllEntries) {
  std::vector<int> Keys(5000);
  PointerMap<int *, size_t> Map;
  for (size_t I = 0; I < Keys.size(); ++I)
    Map[&Keys[I]] = I;
  EXPECT_EQ(Map.size(), Keys.size());
  for (size_t I = 0; I < Keys.size(); ++I) {
    ASSERT_NE(Map.lookup(&Keys[I]), nullptr) << I;
    EXPECT_EQ(*Map.lookup(&Keys[I]), I);
  }
}

TEST(PointerMap, ClearResets) {
  int A = 0;
  PointerMap<int *, int> Map;
  Map[&A] = 3;
  Map.clear();
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(&A), nullptr);
  Map[&A] = 4;
  EXPECT_EQ(*Map.lookup(&A), 4);
}

TEST(PointerMap, NonTrivialValues) {
  std::vector<int> Keys(100);
  PointerMap<int *, std::vector<int>> Map;
  for (size_t I = 0; I < Keys.size(); ++I)
    Map[&Keys[I]].push_back(static_cast<int>(I));
  for (size_t I = 0; I < Keys.size(); ++I) {
    ASSERT_EQ(Map[&Keys[I]].size(), 1u);
    EXPECT_EQ(Map[&Keys[I]].front(), static_cast<int>(I));
  }
}

//===----------------------------------------------------------------------===//
// SplitMix64
//===----------------------------------------------------------------------===//

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(SplitMix64, BoundsRespected) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 10000; ++I) {
    EXPECT_LT(Rng.nextBelow(17), 17u);
    uint64_t V = Rng.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(SplitMix64, RoughlyUniform) {
  SplitMix64 Rng(99);
  int Buckets[10] = {0};
  for (int I = 0; I < 100000; ++I)
    ++Buckets[Rng.nextBelow(10)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, 9000);
    EXPECT_LT(Count, 11000);
  }
}

TEST(SplitMix64, ChanceEdgeCases) {
  SplitMix64 Rng(5);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.nextChance(0, 10));
    EXPECT_TRUE(Rng.nextChance(10, 10));
  }
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Statistics, Means) {
  EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(geometricMean({1.0, 4.0, 16.0}), 4.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(minimum({3.0, 1.0, 2.0}), 1.0);
}

TEST(Statistics, GeometricMeanMatchesPaperStyle) {
  // A 4.2x-ish slowdown set: the geomean sits between min and max.
  std::vector<double> Slowdowns = {1.5, 3.0, 4.0, 5.0, 11.0};
  double G = geometricMean(Slowdowns);
  EXPECT_GT(G, 1.5);
  EXPECT_LT(G, 11.0);
  EXPECT_NEAR(G, 3.88, 0.1);
}

//===----------------------------------------------------------------------===//
// SpinLock
//===----------------------------------------------------------------------===//

TEST(SpinLock, MutualExclusion) {
  SpinLock Lock;
  int Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 10000; ++I) {
        std::lock_guard<SpinLock> Guard(Lock);
        ++Counter;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 40000);
}

TEST(SpinLock, TryLock) {
  SpinLock Lock;
  EXPECT_TRUE(Lock.try_lock());
  EXPECT_FALSE(Lock.try_lock());
  Lock.unlock();
  EXPECT_TRUE(Lock.try_lock());
  Lock.unlock();
}

//===----------------------------------------------------------------------===//
// ArgParse
//===----------------------------------------------------------------------===//

/// Builds a mutable argv from literals (parseKnown compacts in place).
struct ArgvFixture {
  explicit ArgvFixture(std::initializer_list<const char *> Args) {
    Storage.emplace_back("prog");
    for (const char *Arg : Args)
      Storage.emplace_back(Arg);
    for (std::string &S : Storage)
      Pointers.push_back(S.data());
    Argc = static_cast<int>(Pointers.size());
  }

  std::vector<std::string> Storage;
  std::vector<char *> Pointers;
  int Argc;

  char **argv() { return Pointers.data(); }
};

TEST(ArgParse, TypedOptionsBothSpellings) {
  std::string Name;
  double Scale = 0;
  unsigned Threads = 0;
  uint64_t Seed = 0;
  bool Flag = false;
  ArgvFixture Args{"--name=alpha", "--scale", "2.5", "--threads=8",
                   "--seed", "12345678901", "--flag"};
  ArgParser Parser;
  Parser.stringOption("name", Name)
      .doubleOption("scale", Scale)
      .unsignedOption("threads", Threads)
      .u64Option("seed", Seed)
      .flag("flag", Flag);
  ASSERT_TRUE(Parser.parse(Args.Argc, Args.argv()));
  EXPECT_EQ(Name, "alpha");
  EXPECT_EQ(Scale, 2.5);
  EXPECT_EQ(Threads, 8u);
  EXPECT_EQ(Seed, 12345678901ull);
  EXPECT_TRUE(Flag);
}

TEST(ArgParse, StrictParseRejectsUnknownArguments) {
  bool Flag = false;
  ArgvFixture Args{"--flag", "--bogus"};
  ArgParser Parser;
  Parser.flag("flag", Flag);
  EXPECT_FALSE(Parser.parse(Args.Argc, Args.argv()));
}

TEST(ArgParse, ParseErrors) {
  {
    double Out = 0;
    ArgvFixture Args{"--scale=abc"};
    ArgParser Parser;
    Parser.doubleOption("scale", Out);
    EXPECT_FALSE(Parser.parse(Args.Argc, Args.argv()));
  }
  {
    unsigned Out = 0;
    ArgvFixture Args{"--threads=-3"};
    ArgParser Parser;
    Parser.unsignedOption("threads", Out);
    EXPECT_FALSE(Parser.parse(Args.Argc, Args.argv()));
  }
  {
    std::string Out;
    ArgvFixture Args{"--json"}; // detached value missing
    ArgParser Parser;
    Parser.stringOption("json", Out);
    EXPECT_FALSE(Parser.parse(Args.Argc, Args.argv()));
  }
  {
    bool Out = false;
    ArgvFixture Args{"--flag=yes"}; // flags take no value
    ArgParser Parser;
    Parser.flag("flag", Out);
    EXPECT_FALSE(Parser.parse(Args.Argc, Args.argv()));
  }
}

TEST(ArgParse, RemovedOptionIsAHardError) {
  bool Cache = true;
  ArgvFixture Equals{"--no-filter"};
  ArgParser Parser;
  Parser.flag("unused", Cache).removed("no-filter",
                                       "was removed; use --access-cache=off");
  EXPECT_FALSE(Parser.parse(Equals.Argc, Equals.argv()));
  // Removed options error in extraction mode too — a silent pass-through
  // would hand the flag to a downstream parser that knows even less.
  ArgvFixture Known{"--no-filter", "--other"};
  EXPECT_FALSE(Parser.parseKnown(Known.Argc, Known.argv()));
}

TEST(ArgParse, ParseKnownExtractsAndCompacts) {
  std::string Json;
  ArgvFixture Args{"--alpha", "--json=out.json", "--beta", "b", "--json",
                   "final.json"};
  ArgParser Parser;
  Parser.stringOption("json", Json);
  ASSERT_TRUE(Parser.parseKnown(Args.Argc, Args.argv()));
  EXPECT_EQ(Json, "final.json") << "later occurrences win";
  ASSERT_EQ(Args.Argc, 4);
  EXPECT_STREQ(Args.argv()[1], "--alpha");
  EXPECT_STREQ(Args.argv()[2], "--beta");
  EXPECT_STREQ(Args.argv()[3], "b");
}

TEST(ArgParse, CustomHandlerFailureStopsParsing) {
  int Calls = 0;
  ArgvFixture Args{"--mode=bad", "--mode=good"};
  ArgParser Parser;
  Parser.option("mode", [&Calls](const char *V) {
    ++Calls;
    return std::string(V) == "good";
  });
  EXPECT_FALSE(Parser.parse(Args.Argc, Args.argv()));
  EXPECT_EQ(Calls, 1);
}

TEST(ArgParse, EnsureWritableFile) {
  std::string Good = testing::TempDir() + "argparse_probe.json";
  EXPECT_TRUE(ensureWritableFile(Good));
  EXPECT_FALSE(ensureWritableFile("/nonexistent-dir/trace.json"));
  // The probe must not truncate an existing file.
  {
    std::ofstream Out(Good);
    Out << "content";
  }
  EXPECT_TRUE(ensureWritableFile(Good));
  std::ifstream In(Good);
  std::string Line;
  std::getline(In, Line);
  EXPECT_EQ(Line, "content");
  std::remove(Good.c_str());
}

} // namespace
