//===- tests/SupportTest.cpp - support/ utility tests ---------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/ChunkedVector.h"
#include "support/PointerMap.h"
#include "support/RadixTable.h"
#include "support/Random.h"
#include "support/SpinLock.h"
#include "support/Statistics.h"

using namespace avc;

namespace {

//===----------------------------------------------------------------------===//
// ChunkedVector
//===----------------------------------------------------------------------===//

TEST(ChunkedVector, AppendAndIndex) {
  ChunkedVector<int> Vec;
  EXPECT_TRUE(Vec.empty());
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(Vec.emplaceBack(I * 3), static_cast<size_t>(I));
  EXPECT_EQ(Vec.size(), 10000u);
  for (int I = 0; I < 10000; ++I)
    EXPECT_EQ(Vec[I], I * 3);
}

TEST(ChunkedVector, ElementAddressesAreStable) {
  ChunkedVector<int, 4> Vec; // tiny chunks to force many allocations
  Vec.emplaceBack(42);
  int *First = &Vec[0];
  for (int I = 0; I < 1000; ++I)
    Vec.emplaceBack(I);
  EXPECT_EQ(First, &Vec[0]);
  EXPECT_EQ(*First, 42);
}

TEST(ChunkedVector, DestroysElements) {
  static int Live = 0;
  struct Probe {
    Probe() { ++Live; }
    ~Probe() { --Live; }
  };
  {
    ChunkedVector<Probe, 3> Vec;
    for (int I = 0; I < 100; ++I)
      Vec.emplaceBack();
    EXPECT_EQ(Live, 100);
  }
  EXPECT_EQ(Live, 0);
}

TEST(ChunkedVector, ConcurrentAppendAndRead) {
  ChunkedVector<size_t, 6> Vec;
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load()) {
      size_t N = Vec.size();
      for (size_t I = 0; I < N; ++I)
        EXPECT_EQ(Vec[I], I);
    }
  });
  for (size_t I = 0; I < 20000; ++I)
    Vec.emplaceBack(I);
  Stop.store(true);
  Reader.join();
  EXPECT_EQ(Vec.size(), 20000u);
}

//===----------------------------------------------------------------------===//
// RadixTable
//===----------------------------------------------------------------------===//

TEST(RadixTable, GetOrCreateDefaultConstructs) {
  RadixTable<int> Table;
  EXPECT_EQ(Table.getOrCreate(123), 0);
  Table.getOrCreate(123) = 7;
  EXPECT_EQ(Table.getOrCreate(123), 7);
  EXPECT_EQ(Table.getOrCreate(124), 0); // same leaf, different slot
}

TEST(RadixTable, LookupWithoutCreate) {
  RadixTable<int> Table;
  EXPECT_EQ(Table.lookup(5000), nullptr);
  Table.getOrCreate(5000) = 9;
  ASSERT_NE(Table.lookup(5000), nullptr);
  EXPECT_EQ(*Table.lookup(5000), 9);
}

TEST(RadixTable, SlotsAreStable) {
  RadixTable<int, 4, 4> Table;
  int *Slot = &Table.getOrCreate(3);
  for (uint64_t Key = 0; Key < 200; ++Key)
    Table.getOrCreate(Key);
  EXPECT_EQ(Slot, &Table.getOrCreate(3));
}

TEST(RadixTable, ConcurrentCreationRaces) {
  RadixTable<std::atomic<int>, 6, 6> Table;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&Table] {
      for (uint64_t Key = 0; Key < 2000; ++Key)
        Table.getOrCreate(Key).fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  for (uint64_t Key = 0; Key < 2000; ++Key)
    EXPECT_EQ(Table.getOrCreate(Key).load(), 4);
}

//===----------------------------------------------------------------------===//
// PointerMap
//===----------------------------------------------------------------------===//

TEST(PointerMap, InsertLookupDefaultConstruct) {
  int A = 0, B = 0;
  PointerMap<int *, int> Map;
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(&A), nullptr);
  Map[&A] = 7;
  Map[&B] = 9;
  EXPECT_EQ(Map.size(), 2u);
  ASSERT_NE(Map.lookup(&A), nullptr);
  EXPECT_EQ(*Map.lookup(&A), 7);
  EXPECT_EQ(Map[&B], 9);
  EXPECT_EQ(Map[&A], 7); // existing key: no duplicate
  EXPECT_EQ(Map.size(), 2u);
}

TEST(PointerMap, GrowthKeepsAllEntries) {
  std::vector<int> Keys(5000);
  PointerMap<int *, size_t> Map;
  for (size_t I = 0; I < Keys.size(); ++I)
    Map[&Keys[I]] = I;
  EXPECT_EQ(Map.size(), Keys.size());
  for (size_t I = 0; I < Keys.size(); ++I) {
    ASSERT_NE(Map.lookup(&Keys[I]), nullptr) << I;
    EXPECT_EQ(*Map.lookup(&Keys[I]), I);
  }
}

TEST(PointerMap, ClearResets) {
  int A = 0;
  PointerMap<int *, int> Map;
  Map[&A] = 3;
  Map.clear();
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(&A), nullptr);
  Map[&A] = 4;
  EXPECT_EQ(*Map.lookup(&A), 4);
}

TEST(PointerMap, NonTrivialValues) {
  std::vector<int> Keys(100);
  PointerMap<int *, std::vector<int>> Map;
  for (size_t I = 0; I < Keys.size(); ++I)
    Map[&Keys[I]].push_back(static_cast<int>(I));
  for (size_t I = 0; I < Keys.size(); ++I) {
    ASSERT_EQ(Map[&Keys[I]].size(), 1u);
    EXPECT_EQ(Map[&Keys[I]].front(), static_cast<int>(I));
  }
}

//===----------------------------------------------------------------------===//
// SplitMix64
//===----------------------------------------------------------------------===//

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
}

TEST(SplitMix64, BoundsRespected) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 10000; ++I) {
    EXPECT_LT(Rng.nextBelow(17), 17u);
    uint64_t V = Rng.nextInRange(5, 9);
    EXPECT_GE(V, 5u);
    EXPECT_LE(V, 9u);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(SplitMix64, RoughlyUniform) {
  SplitMix64 Rng(99);
  int Buckets[10] = {0};
  for (int I = 0; I < 100000; ++I)
    ++Buckets[Rng.nextBelow(10)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, 9000);
    EXPECT_LT(Count, 11000);
  }
}

TEST(SplitMix64, ChanceEdgeCases) {
  SplitMix64 Rng(5);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.nextChance(0, 10));
    EXPECT_TRUE(Rng.nextChance(10, 10));
  }
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Statistics, Means) {
  EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(geometricMean({1.0, 4.0, 16.0}), 4.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_DOUBLE_EQ(minimum({3.0, 1.0, 2.0}), 1.0);
}

TEST(Statistics, GeometricMeanMatchesPaperStyle) {
  // A 4.2x-ish slowdown set: the geomean sits between min and max.
  std::vector<double> Slowdowns = {1.5, 3.0, 4.0, 5.0, 11.0};
  double G = geometricMean(Slowdowns);
  EXPECT_GT(G, 1.5);
  EXPECT_LT(G, 11.0);
  EXPECT_NEAR(G, 3.88, 0.1);
}

//===----------------------------------------------------------------------===//
// SpinLock
//===----------------------------------------------------------------------===//

TEST(SpinLock, MutualExclusion) {
  SpinLock Lock;
  int Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 10000; ++I) {
        std::lock_guard<SpinLock> Guard(Lock);
        ++Counter;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 40000);
}

TEST(SpinLock, TryLock) {
  SpinLock Lock;
  EXPECT_TRUE(Lock.try_lock());
  EXPECT_FALSE(Lock.try_lock());
  Lock.unlock();
  EXPECT_TRUE(Lock.try_lock());
  Lock.unlock();
}

} // namespace
