//===- tests/FinishScopeTest.cpp - async/finish API tests -----------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Finish.h"

#include <atomic>

#include <gtest/gtest.h>

#include "instrument/ToolContext.h"
#include "trace/TraceRecorder.h"

using namespace avc;

namespace {

class FinishTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FinishTest, FinishJoinsDirectAsyncs) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = GetParam();
  TaskRuntime RT(Opts);
  std::atomic<int> Counter{0};
  RT.run([&] {
    finish([&] {
      for (int I = 0; I < 32; ++I)
        async([&] { Counter.fetch_add(1); });
    });
    EXPECT_EQ(Counter.load(), 32); // joined at the closing brace
  });
}

TEST_P(FinishTest, FinishJoinsTransitively) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = GetParam();
  TaskRuntime RT(Opts);
  std::atomic<int> Counter{0};
  RT.run([&] {
    finish([&] {
      async([&] {
        // Grandchildren spawned by the child are joined at the child's
        // implicit end-of-task sync, which the finish waits for.
        for (int I = 0; I < 8; ++I)
          async([&] { Counter.fetch_add(1); });
      });
    });
    EXPECT_EQ(Counter.load(), 8);
  });
}

TEST_P(FinishTest, NestedFinishScopes) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = GetParam();
  TaskRuntime RT(Opts);
  std::atomic<int> Inner{0}, Outer{0};
  RT.run([&] {
    finish([&] {
      async([&] { Outer.fetch_add(1); });
      finish([&] {
        async([&] { Inner.fetch_add(1); });
      });
      EXPECT_EQ(Inner.load(), 1); // inner scope joined here
      async([&] { Outer.fetch_add(1); });
    });
    EXPECT_EQ(Outer.load(), 2);
  });
}

TEST_P(FinishTest, AsyncOutsideFinishUsesImplicitScope) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = GetParam();
  TaskRuntime RT(Opts);
  std::atomic<int> Counter{0};
  RT.run([&] {
    async([&] { Counter.fetch_add(1); });
    avc::sync();
    EXPECT_EQ(Counter.load(), 1);
  });
}

INSTANTIATE_TEST_SUITE_P(Threads, FinishTest, ::testing::Values(1u, 4u),
                         [](const auto &Info) {
                           return "threads" + std::to_string(Info.param);
                         });

/// DPST shape: finish() scopes surface as explicit group events, so the
/// checker sees proper finish nodes.
TEST(FinishScope, ProducesGroupEvents) {
  TaskRuntime RT;
  TraceRecorder Recorder;
  RT.addObserver(&Recorder);
  RT.run([&] {
    finish([&] { async([] {}); });
  });
  bool SawGroupSpawn = false, SawGroupWait = false;
  for (const TraceEvent &Event : Recorder.trace()) {
    if (Event.Kind == TraceEventKind::TaskSpawn && Event.Arg2 != 0)
      SawGroupSpawn = true;
    if (Event.Kind == TraceEventKind::GroupWait)
      SawGroupWait = true;
  }
  EXPECT_TRUE(SawGroupSpawn);
  EXPECT_TRUE(SawGroupWait);
}

/// The atomicity checker works identically across the programming styles:
/// the Figure 1 bug expressed with async/finish.
TEST(FinishScope, CheckerSeesThroughAsyncFinish) {
  ToolContext Tool(ToolKind::Atomicity);
  Tracked<int> X;
  Tool.run([&] {
    finish([&] {
      async([&] {
        int V = X.load();
        X.store(V + 1);
      });
      async([&] { X.store(7); });
    });
  });
  EXPECT_EQ(Tool.numViolations(), 1u);
}

/// A helping worker blocked in finish() must not leak its scope into an
/// unrelated task it executes inline: the unrelated task's asyncs join its
/// own implicit scope (this deadlocks or miscounts if the scope pointer
/// were thread-local).
TEST(FinishScope, HelpingDoesNotLeakScopes) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = 1; // forces the finish() waiter to execute children
  TaskRuntime RT(Opts);
  std::atomic<int> Leaked{0};
  RT.run([&] {
    finish([&] {
      async([&] {
        // Executed inline by the worker blocked in the outer finish's
        // wait(); its asyncs must bind to THIS task, not the outer scope.
        async([&] { Leaked.fetch_add(1); });
        avc::sync();
        EXPECT_EQ(Leaked.load(), 1);
      });
    });
  });
  EXPECT_EQ(Leaked.load(), 1);
}

} // namespace
