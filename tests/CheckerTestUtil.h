//===- tests/CheckerTestUtil.h - Trace-building test helpers ----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny DSL for writing checker tests as traces:
///
///   TraceBuilder T;
///   T.write(0, X).spawn(0, 1).read(1, X).write(1, X).end(1).end(0);
///   expectViolations(T, {X});
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TESTS_CHECKERTESTUTIL_H
#define AVC_TESTS_CHECKERTESTUTIL_H

#include <initializer_list>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "checker/AtomicityChecker.h"
#include "checker/BasicChecker.h"
#include "trace/TraceEvent.h"
#include "trace/TraceReplayer.h"

namespace avc {

/// Builds a trace with implicit start/stop framing and auto-closed tasks.
class TraceBuilder {
public:
  TraceBuilder() { Events.push_back({TraceEventKind::ProgramStart, 0, 0, 0}); }

  TraceBuilder &spawn(TaskId Parent, TaskId Child, uint64_t Group = 0) {
    Events.push_back({TraceEventKind::TaskSpawn, Parent, Child, Group});
    return *this;
  }
  TraceBuilder &end(TaskId Task) {
    Events.push_back({TraceEventKind::TaskEnd, Task, 0, 0});
    return *this;
  }
  TraceBuilder &sync(TaskId Task) {
    Events.push_back({TraceEventKind::Sync, Task, 0, 0});
    return *this;
  }
  TraceBuilder &wait(TaskId Task, uint64_t Group) {
    Events.push_back({TraceEventKind::GroupWait, Task, Group, 0});
    return *this;
  }
  TraceBuilder &acq(TaskId Task, LockId Lock) {
    Events.push_back({TraceEventKind::LockAcquire, Task, Lock, 0});
    return *this;
  }
  TraceBuilder &rel(TaskId Task, LockId Lock) {
    Events.push_back({TraceEventKind::LockRelease, Task, Lock, 0});
    return *this;
  }
  TraceBuilder &read(TaskId Task, MemAddr Addr) {
    Events.push_back({TraceEventKind::Read, Task, Addr, 0});
    return *this;
  }
  TraceBuilder &write(TaskId Task, MemAddr Addr) {
    Events.push_back({TraceEventKind::Write, Task, Addr, 0});
    return *this;
  }

  /// The finished trace (adds the final stop).
  Trace finish() const {
    Trace Out = Events;
    Out.push_back({TraceEventKind::ProgramEnd, 0, 0, 0});
    return Out;
  }

private:
  Trace Events;
};

/// Replays \p Builder into a fresh optimized checker with \p Opts.
inline std::unique_ptr<AtomicityChecker>
runOptimized(const TraceBuilder &Builder,
             AtomicityChecker::Options Opts = AtomicityChecker::Options()) {
  auto Checker = std::make_unique<AtomicityChecker>(Opts);
  replayTrace(Builder.finish(), *Checker);
  return Checker;
}

/// Replays \p Builder into a fresh basic (reference) checker.
inline std::unique_ptr<BasicChecker>
runBasic(const TraceBuilder &Builder,
         BasicChecker::Options Opts = BasicChecker::Options()) {
  auto Checker = std::make_unique<BasicChecker>(Opts);
  replayTrace(Builder.finish(), *Checker);
  return Checker;
}

/// Expects both checkers to find violations exactly on \p Addrs.
inline void expectViolatingLocations(const TraceBuilder &Builder,
                                     std::initializer_list<MemAddr> Addrs) {
  auto Optimized = runOptimized(Builder);
  auto Basic = runBasic(Builder);

  std::set<MemAddr> Expected(Addrs);
  std::set<MemAddr> OptimizedFound, BasicFound;
  for (const Violation &V : Optimized->violations().snapshot())
    OptimizedFound.insert(V.Addr);
  for (const Violation &V : Basic->violations().snapshot())
    BasicFound.insert(V.Addr);

  EXPECT_EQ(OptimizedFound, Expected) << "optimized checker verdicts";
  EXPECT_EQ(BasicFound, Expected) << "basic checker verdicts";
}

} // namespace avc

#endif // AVC_TESTS_CHECKERTESTUTIL_H
