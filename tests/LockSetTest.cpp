//===- tests/LockSetTest.cpp - Versioned lockset tests --------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/LockSet.h"

#include <gtest/gtest.h>

using namespace avc;

namespace {

TEST(LockSet, EmptySetsAreDisjoint) {
  LockSet A, B;
  EXPECT_TRUE(A.empty());
  EXPECT_TRUE(A.disjointWith(B));
  EXPECT_TRUE(B.disjointWith(A));
}

TEST(LockSet, SharedTokenNotDisjoint) {
  LockSet A({1, 2, 3});
  LockSet B({3, 4});
  EXPECT_FALSE(A.disjointWith(B));
  EXPECT_FALSE(B.disjointWith(A));
}

TEST(LockSet, DistinctTokensDisjoint) {
  LockSet A({1, 3, 5});
  LockSet B({2, 4, 6});
  EXPECT_TRUE(A.disjointWith(B));
}

TEST(LockSet, UnsortedInputIsNormalized) {
  LockSet A({5, 1, 3});
  EXPECT_TRUE(A.contains(1));
  EXPECT_TRUE(A.contains(3));
  EXPECT_TRUE(A.contains(5));
  EXPECT_FALSE(A.contains(2));
  LockSet B({3});
  EXPECT_FALSE(A.disjointWith(B));
}

TEST(LockSet, EqualityIsStructural) {
  EXPECT_EQ(LockSet({2, 1}), LockSet({1, 2}));
  EXPECT_FALSE(LockSet({1}) == LockSet({2}));
}

TEST(HeldLocks, SnapshotReflectsStack) {
  HeldLocks Held;
  EXPECT_EQ(Held.depth(), 0u);
  Held.acquire(/*Lock=*/10, /*Token=*/100);
  Held.acquire(/*Lock=*/11, /*Token=*/101);
  LockSet Snap = Held.snapshot();
  EXPECT_EQ(Snap.size(), 2u);
  EXPECT_TRUE(Snap.contains(100));
  EXPECT_TRUE(Snap.contains(101));
  Held.release(10);
  EXPECT_EQ(Held.depth(), 1u);
  EXPECT_FALSE(Held.snapshot().contains(100));
  EXPECT_TRUE(Held.snapshot().contains(101));
  Held.release(11);
  EXPECT_TRUE(Held.snapshot().empty());
}

TEST(HeldLocks, OutOfOrderRelease) {
  HeldLocks Held;
  Held.acquire(1, 100);
  Held.acquire(2, 200);
  Held.release(1); // release outer first
  EXPECT_TRUE(Held.snapshot().contains(200));
  EXPECT_FALSE(Held.snapshot().contains(100));
  Held.release(2);
  EXPECT_EQ(Held.depth(), 0u);
}

/// Lock versioning (Section 3.3): the same lock re-acquired carries a new
/// token, so snapshots from different critical-section instances are
/// disjoint — the property that lets the checker see "two critical
/// sections" instead of "the same lock".
TEST(HeldLocks, ReacquisitionYieldsDisjointSnapshots) {
  HeldLocks Held;
  Held.acquire(7, 1000);
  LockSet First = Held.snapshot();
  Held.release(7);
  Held.acquire(7, 1001); // fresh token from the checker's global counter
  LockSet Second = Held.snapshot();
  Held.release(7);
  EXPECT_TRUE(First.disjointWith(Second));
}

/// Two snapshots inside the same critical section share the token.
TEST(HeldLocks, SameCriticalSectionSharesToken) {
  HeldLocks Held;
  Held.acquire(7, 1000);
  LockSet First = Held.snapshot();
  LockSet Second = Held.snapshot();
  Held.release(7);
  EXPECT_FALSE(First.disjointWith(Second));
  EXPECT_EQ(First, Second);
}

} // namespace
