//===- tests/SerializabilityTest.cpp - Figure 4 triple table --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/AccessKind.h"

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"

using namespace avc;

namespace {

struct TripleCase {
  AccessKind A1, A2, A3;
  bool Unserializable;
};

class SerializabilityTable : public ::testing::TestWithParam<TripleCase> {};

/// The eight rows of Figure 4.
constexpr AccessKind R = AccessKind::Read;
constexpr AccessKind W = AccessKind::Write;
const TripleCase Figure4[] = {
    {R, R, R, false}, // serializable
    {R, R, W, false}, // serializable
    {W, R, R, false}, // serializable
    {W, R, W, true},  // two writes split by a foreign read
    {R, W, R, true},  // two reads see different values
    {R, W, W, true},  // foreign write lost between read and write
    {W, W, R, true},  // read sees the foreign write, not the local one
    {W, W, W, true},  // intermediate write observed/clobbered
};

TEST_P(SerializabilityTable, PredicateMatchesFigure4) {
  const TripleCase &Case = GetParam();
  EXPECT_EQ(isUnserializableTriple(Case.A1, Case.A2, Case.A3),
            Case.Unserializable);
}

/// End-to-end: drive each triple through the full checker with two parallel
/// tasks and confirm the verdict matches the table.
TEST_P(SerializabilityTable, CheckerAgreesEndToEnd) {
  const TripleCase &Case = GetParam();
  constexpr MemAddr X = 0x2000;

  auto Access = [](TraceBuilder &T, TaskId Task, AccessKind Kind) {
    if (Kind == AccessKind::Read)
      T.read(Task, X);
    else
      T.write(Task, X);
  };

  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  Access(T, 1, Case.A1);
  Access(T, 2, Case.A2);
  Access(T, 1, Case.A3);
  T.end(1).end(2).sync(0).end(0);

  if (Case.Unserializable)
    expectViolatingLocations(T, {X});
  else
    expectViolatingLocations(T, {});
}

INSTANTIATE_TEST_SUITE_P(
    Figure4Rows, SerializabilityTable, ::testing::ValuesIn(Figure4),
    [](const ::testing::TestParamInfo<TripleCase> &Info) {
      auto Letter = [](AccessKind Kind) {
        return Kind == AccessKind::Read ? "R" : "W";
      };
      return std::string(Letter(Info.param.A1)) + Letter(Info.param.A2) +
             Letter(Info.param.A3);
    });

TEST(Serializability, KindNames) {
  EXPECT_STREQ(accessKindName(AccessKind::Read), "read");
  EXPECT_STREQ(accessKindName(AccessKind::Write), "write");
}

} // namespace
