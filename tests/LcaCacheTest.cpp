//===- tests/LcaCacheTest.cpp - LCA cache and oracle tests ----------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/LcaCache.h"

#include <gtest/gtest.h>

#include "dpst/ArrayDpst.h"
#include "dpst/ParallelismOracle.h"

using namespace avc;

namespace {

TEST(LcaCache, MissThenHit) {
  LcaCache Cache(8);
  EXPECT_FALSE(Cache.lookup(1, 2).has_value());
  Cache.insert(1, 2, true);
  ASSERT_TRUE(Cache.lookup(1, 2).has_value());
  EXPECT_TRUE(*Cache.lookup(1, 2));
  Cache.insert(1, 3, false);
  ASSERT_TRUE(Cache.lookup(1, 3).has_value());
  EXPECT_FALSE(*Cache.lookup(1, 3));
}

TEST(LcaCache, ZeroIdsAreValidKeys) {
  LcaCache Cache(4);
  Cache.insert(0, 1, false);
  ASSERT_TRUE(Cache.lookup(0, 1).has_value());
  EXPECT_FALSE(*Cache.lookup(0, 1));
}

TEST(LcaCache, CollisionEvictsNotCorrupts) {
  LcaCache Cache(1); // two slots: guaranteed collisions
  for (NodeId A = 0; A < 100; ++A)
    Cache.insert(A, A + 1, (A % 2) == 0);
  // Whatever remains cached must be correct for its own key.
  int Hits = 0;
  for (NodeId A = 0; A < 100; ++A)
    if (std::optional<bool> Hit = Cache.lookup(A, A + 1)) {
      ++Hits;
      EXPECT_EQ(*Hit, (A % 2) == 0);
    }
  EXPECT_GT(Hits, 0);
  EXPECT_LE(Hits, 2);
}

TEST(LcaCache, ClearDropsEverything) {
  LcaCache Cache(4);
  Cache.insert(5, 9, true);
  Cache.clear();
  EXPECT_FALSE(Cache.lookup(5, 9).has_value());
}

//===----------------------------------------------------------------------===//
// ParallelismOracle
//===----------------------------------------------------------------------===//

class OracleTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = Tree.addNode(InvalidNodeId, DpstNodeKind::Finish, 0);
    NodeId Finish = Tree.addNode(Root, DpstNodeKind::Finish, 0);
    NodeId A1 = Tree.addNode(Finish, DpstNodeKind::Async, 1);
    S1 = Tree.addNode(A1, DpstNodeKind::Step, 1);
    NodeId A2 = Tree.addNode(Finish, DpstNodeKind::Async, 2);
    S2 = Tree.addNode(A2, DpstNodeKind::Step, 2);
    After = Tree.addNode(Root, DpstNodeKind::Step, 0);
  }
  ArrayDpst Tree;
  NodeId Root, S1, S2, After;
};

TEST_F(OracleTest, CachedQueriesCountHits) {
  ParallelismOracle::Options Opts;
  // The cache only exists in Walk mode (Lift/Label queries are cheaper
  // than a cache probe), so request it explicitly.
  Opts.Mode = QueryMode::Walk;
  Opts.TrackUniquePairs = true;
  ParallelismOracle Oracle(Tree, Opts);

  EXPECT_TRUE(Oracle.logicallyParallel(S1, S2));
  EXPECT_TRUE(Oracle.logicallyParallel(S2, S1)); // normalized: cache hit
  EXPECT_FALSE(Oracle.logicallyParallel(S1, After));

  LcaQueryStats Stats = Oracle.stats();
  EXPECT_EQ(Stats.NumQueries, 3u);
  EXPECT_EQ(Stats.NumCacheHits, 1u);
  EXPECT_EQ(Stats.NumUniquePairs, 2u);
  EXPECT_NEAR(Stats.percentUnique(), 66.67, 0.1);
}

TEST_F(OracleTest, SameNodeQueriesAreFree) {
  ParallelismOracle Oracle(Tree);
  EXPECT_FALSE(Oracle.logicallyParallel(S1, S1));
  EXPECT_EQ(Oracle.stats().NumQueries, 0u);
}

TEST_F(OracleTest, CacheDisabled) {
  ParallelismOracle::Options Opts;
  Opts.EnableCache = false;
  ParallelismOracle Oracle(Tree, Opts);
  EXPECT_TRUE(Oracle.logicallyParallel(S1, S2));
  EXPECT_TRUE(Oracle.logicallyParallel(S1, S2));
  EXPECT_EQ(Oracle.stats().NumCacheHits, 0u);
  EXPECT_EQ(Oracle.stats().NumQueries, 2u);
}

TEST_F(OracleTest, UniqueTrackingDisabledReportsZeroPercent) {
  ParallelismOracle Oracle(Tree);
  Oracle.logicallyParallel(S1, S2);
  EXPECT_FALSE(Oracle.stats().UniquePairsTracked);
  EXPECT_DOUBLE_EQ(Oracle.stats().percentUnique(), 0.0);
}

} // namespace
