//===- tests/PropertyTest.cpp - Randomized equivalence properties ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Property-based validation on generator-produced programs:
///
///  1. *Reference equivalence*: on any trace, the optimized fixed-metadata
///     checker and the unbounded-history basic checker agree, per location,
///     on whether an atomicity violation exists (the paper's soundness +
///     completeness claim for the 12-entry design).
///  2. *Schedule independence*: the optimized checker's per-location
///     verdicts are identical across different linearizations of the same
///     program (the "detects violations in other schedules" claim).
///  3. *Configuration independence*: DPST layout, LCA caching, and the
///     extra interleaver checks never change verdicts.
///
//===----------------------------------------------------------------------===//

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "checker/AtomicityChecker.h"
#include "checker/BasicChecker.h"
#include "trace/TraceGenerator.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

/// Per-location verdict set of a replayed trace under the given options.
std::set<MemAddr> optimizedVerdicts(const Trace &Events,
                                    AtomicityChecker::Options Opts) {
  AtomicityChecker Checker(Opts);
  replayTrace(Events, Checker);
  std::set<MemAddr> Found;
  for (const Violation &V : Checker.violations().snapshot())
    Found.insert(V.Addr);
  return Found;
}

std::set<MemAddr> basicVerdicts(const Trace &Events) {
  BasicChecker Checker;
  replayTrace(Events, Checker);
  std::set<MemAddr> Found;
  for (const Violation &V : Checker.violations().snapshot())
    Found.insert(V.Addr);
  return Found;
}

TraceGenOptions variedOptions(uint64_t Seed) {
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  // Vary the program shape with the seed so the sweep covers sparse and
  // dense sharing, lock-free and lock-heavy programs, narrow and wide
  // spawn trees.
  Opts.NumTasks = 3 + Seed % 14;
  Opts.NumLocations = 1 + Seed % 5;
  Opts.NumLocks = Seed % 3;
  Opts.MinOpsPerTask = 2;
  Opts.MaxOpsPerTask = 4 + Seed % 9;
  Opts.WriteFraction = 0.3 + 0.05 * (Seed % 9);
  Opts.LockedFraction = (Seed % 4) * 0.2;
  Opts.SyncFraction = (Seed % 5) * 0.08;
  return Opts;
}

class PropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropertySweep, OptimizedMatchesReferencePerLocation) {
  uint64_t Seed = GetParam();
  GenProgram Program = generateProgram(variedOptions(Seed));
  Trace Events = linearizeSerial(Program);

  std::set<MemAddr> Reference = basicVerdicts(Events);
  std::set<MemAddr> Fixed =
      optimizedVerdicts(Events, AtomicityChecker::Options());
  EXPECT_EQ(Fixed, Reference) << "seed " << Seed;
}

TEST_P(PropertySweep, VerdictsAreScheduleIndependent) {
  uint64_t Seed = GetParam();
  GenProgram Program = generateProgram(variedOptions(Seed));
  std::set<MemAddr> Serial = optimizedVerdicts(
      linearizeSerial(Program), AtomicityChecker::Options());
  for (uint64_t Schedule = 1; Schedule <= 4; ++Schedule) {
    Trace Random = linearizeRandom(Program, Seed * 1000 + Schedule);
    std::set<MemAddr> Verdicts =
        optimizedVerdicts(Random, AtomicityChecker::Options());
    EXPECT_EQ(Verdicts, Serial)
        << "seed " << Seed << " schedule " << Schedule;
  }
}

TEST_P(PropertySweep, BasicCheckerIsScheduleIndependentToo) {
  uint64_t Seed = GetParam();
  GenProgram Program = generateProgram(variedOptions(Seed));
  std::set<MemAddr> Serial = basicVerdicts(linearizeSerial(Program));
  Trace Random = linearizeRandom(Program, Seed * 7919 + 1);
  EXPECT_EQ(basicVerdicts(Random), Serial) << "seed " << Seed;
}

TEST_P(PropertySweep, ConfigurationDoesNotChangeVerdicts) {
  uint64_t Seed = GetParam();
  GenProgram Program = generateProgram(variedOptions(Seed));
  Trace Events = linearizeSerial(Program);

  AtomicityChecker::Options Default;
  std::set<MemAddr> Baseline = optimizedVerdicts(Events, Default);

  AtomicityChecker::Options Linked = Default;
  Linked.Layout = DpstLayout::Linked;
  EXPECT_EQ(optimizedVerdicts(Events, Linked), Baseline)
      << "linked layout, seed " << Seed;

  AtomicityChecker::Options NoCache = Default;
  NoCache.EnableLcaCache = false;
  EXPECT_EQ(optimizedVerdicts(Events, NoCache), Baseline)
      << "no cache, seed " << Seed;

  // The paper-literal mode (without the interleaver-check fix) may miss
  // violations but must never invent one: its verdicts are a subset.
  AtomicityChecker::Options PaperLiteral = Default;
  PaperLiteral.ExtraInterleaverChecks = false;
  std::set<MemAddr> Literal = optimizedVerdicts(Events, PaperLiteral);
  for (MemAddr Addr : Literal)
    EXPECT_TRUE(Baseline.count(Addr))
        << "paper-literal mode invented a violation, seed " << Seed;
}

TEST_P(PropertySweep, ReplayIsDeterministic) {
  uint64_t Seed = GetParam();
  GenProgram Program = generateProgram(variedOptions(Seed));
  Trace Events = linearizeSerial(Program);
  AtomicityChecker A, B;
  replayTrace(Events, A);
  replayTrace(Events, B);
  EXPECT_EQ(A.violations().size(), B.violations().size());
  EXPECT_EQ(A.stats().Lca.NumQueries, B.stats().Lca.NumQueries);
  EXPECT_EQ(A.stats().NumDpstNodes, B.stats().NumDpstNodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range<uint64_t>(1, 81));

/// Heavier adversarial sweep in one test: many seeds, violations must be a
/// subset relationship checked both ways (kept separate from the
/// parameterized sweep to bound ctest case count).
TEST(PropertyBulk, FourHundredSeedsAgree) {
  for (uint64_t Seed = 1000; Seed < 1400; ++Seed) {
    GenProgram Program = generateProgram(variedOptions(Seed));
    Trace Events = linearizeSerial(Program);
    std::set<MemAddr> Reference = basicVerdicts(Events);
    std::set<MemAddr> Fixed =
        optimizedVerdicts(Events, AtomicityChecker::Options());
    ASSERT_EQ(Fixed, Reference) << "seed " << Seed;
  }
}

} // namespace
