//===- tests/SitePreanalysisTest.cpp - Pre-analysis engine proofs ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the site pre-analysis (DESIGN.md §11), one per
/// classification proof: the sequential-region skip, live warmup
/// speculation to ReadOnlyAfterInit, the downgrade-mid-run scenario (both
/// the lossless cross-phase case and the counted in-phase one),
/// FixedLockset as a reporting-only verdict, grouped-site pinning, exact
/// adoption from the trace classifier, and the registration machinery
/// (registry tombstones, TrackedArray bulk ranges, address reuse).
///
//===----------------------------------------------------------------------===//

#include <set>

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"
#include "analysis/SitePreanalysis.h"
#include "analysis/SiteRegistry.h"
#include "analysis/TraceClassifier.h"
#include "instrument/Tracked.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x2000;
constexpr MemAddr Z = 0x3000;

using TaskView = SitePreanalysis::TaskView;
using SiteRecord = SitePreanalysis::SiteRecord;

SitePreanalysis::Options liveOpts(uint32_t Warmup = 4) {
  SitePreanalysis::Options O;
  O.Mode = PreanalysisMode::Profile;
  O.WarmupThreshold = Warmup;
  return O;
}

//===----------------------------------------------------------------------===//
// Sequential-region tracking and the tier-1 skip
//===----------------------------------------------------------------------===//

TEST(SequentialRegion, TracksRootQuiescenceAndPhases) {
  SitePreanalysis Pre(liveOpts());
  Pre.noteProgramStart(0);
  EXPECT_TRUE(Pre.inSequentialRegion());
  EXPECT_EQ(Pre.currentPhase(), 0u);

  Pre.noteSpawn(0, nullptr);
  EXPECT_FALSE(Pre.inSequentialRegion());

  // Non-root spawns never touch the tracker.
  Pre.noteSync(3);
  EXPECT_FALSE(Pre.inSequentialRegion());

  // The phase advances on every re-entry, before the region reopens.
  Pre.noteSync(0);
  EXPECT_TRUE(Pre.inSequentialRegion());
  EXPECT_EQ(Pre.currentPhase(), 1u);

  // Two outstanding scopes: one wait drains only its tag.
  const int TagStorage = 0;
  const void *Tag = &TagStorage;
  Pre.noteSpawn(0, nullptr);
  Pre.noteSpawn(0, Tag);
  Pre.noteGroupWait(0, Tag);
  EXPECT_FALSE(Pre.inSequentialRegion());
  Pre.noteSync(0);
  EXPECT_TRUE(Pre.inSequentialRegion());
  EXPECT_EQ(Pre.currentPhase(), 2u);
}

TEST(SequentialRegion, GateSkipsOnlyRootAccesses) {
  SitePreanalysis Pre(liveOpts());
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);

  TaskView Root;
  EXPECT_TRUE(Pre.gate(Root, 0, X, AccessKind::Read));
  EXPECT_TRUE(Pre.gate(Root, 0, X, AccessKind::Write));
  EXPECT_EQ(Root.SeqSkips, 2u);

  // The skip is attributed to the site record for reporting.
  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->SeqReads.load(), 1u);
  EXPECT_EQ(Rec->SeqWrites.load(), 1u);

  // A non-root access during the sequential region is NOT skipped (it
  // belongs to a task already spawned in an earlier scope shape; only the
  // root's own steps are proven in series with everything).
  TaskView Child;
  EXPECT_FALSE(Pre.gate(Child, 7, X, AccessKind::Read));
  EXPECT_EQ(Child.SeqSkips, 0u);

  // Once the root spawns, its accesses take the generic path too.
  Pre.noteSpawn(0, nullptr);
  EXPECT_FALSE(Pre.gate(Root, 0, X, AccessKind::Read));

  Pre.foldView(Root);
  EXPECT_EQ(Pre.stats().NumSeqSkips, 2u);
}

//===----------------------------------------------------------------------===//
// Live warmup speculation
//===----------------------------------------------------------------------===//

TEST(LiveWarmup, ClassifiesReadOnlySiteAndSkipsLaterReads) {
  SitePreanalysis Pre(liveOpts(4));
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V;
  for (int I = 0; I < 4; ++I)
    EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read)) << "warmup access " << I;

  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Action.load(), uint8_t(SiteAction::SkipReads));
  EXPECT_TRUE(Rec->Flags.load() & SitePreanalysis::FlagSpeculativeRO);

  // Post-classification reads retire at the gate.
  EXPECT_TRUE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_EQ(V.SiteSkips, 1u);

  Pre.foldView(V);
  PreanalysisStats S = Pre.stats();
  EXPECT_EQ(S.NumSiteSkips, 1u);
  EXPECT_EQ(S.NumReadOnlyAfterInit, 1u);
  EXPECT_EQ(S.NumDowngrades, 0u);
}

TEST(LiveWarmup, WriteDuringWarmupPreventsSpeculation) {
  SitePreanalysis Pre(liveOpts(4));
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V;
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Write));
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read)); // completes the window

  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Action.load(), uint8_t(SiteAction::Generic));
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_EQ(V.SiteSkips, 0u);
}

/// The downgrade-mid-run scenario: a site speculated ReadOnlyAfterInit is
/// written in the *same* quiescent phase as a skipped read — the one
/// lossy window of live speculation, and it must be counted as such.
TEST(LiveWarmup, InPhaseDowngradeCountsUnsafe) {
  SitePreanalysis Pre(liveOpts(4));
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V1;
  for (int I = 0; I < 4; ++I)
    Pre.gate(V1, 1, X, AccessKind::Read);
  EXPECT_TRUE(Pre.gate(V1, 1, X, AccessKind::Read)); // stamps phase 0

  uint64_t GenBefore = Pre.downgradeGen();
  TaskView V2;
  EXPECT_FALSE(Pre.gate(V2, 2, X, AccessKind::Write)); // write falls through
  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Action.load(), uint8_t(SiteAction::Generic));
  EXPECT_TRUE(Rec->Flags.load() & SitePreanalysis::FlagDowngraded);
  EXPECT_EQ(Pre.downgradeGen(), GenBefore + 1); // cache epochs invalidate

  PreanalysisStats S = Pre.stats();
  EXPECT_EQ(S.NumDowngrades, 1u);
  EXPECT_EQ(S.NumUnsafeDowngrades, 1u);
  // A downgraded site reports Generic whatever its counters say.
  EXPECT_EQ(Pre.finalClassOf(*Rec), SiteClass::Generic);
}

/// The lossless variant: a quiescent point separates the skipped reads
/// from the write, so every skipped read is in series with it and the
/// downgrade provably misses nothing.
TEST(LiveWarmup, CrossPhaseDowngradeIsSafe) {
  SitePreanalysis Pre(liveOpts(4));
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V1;
  for (int I = 0; I < 4; ++I)
    Pre.gate(V1, 1, X, AccessKind::Read);
  EXPECT_TRUE(Pre.gate(V1, 1, X, AccessKind::Read)); // skip stamped in phase 0

  Pre.noteSync(0); // quiescent point: phase 0 -> 1
  Pre.noteSpawn(0, nullptr);

  TaskView V2;
  EXPECT_FALSE(Pre.gate(V2, 2, X, AccessKind::Write));
  PreanalysisStats S = Pre.stats();
  EXPECT_EQ(S.NumDowngrades, 1u);
  EXPECT_EQ(S.NumUnsafeDowngrades, 0u);
}

/// FixedLockset proves nothing under versioned lock tokens, so it must
/// never become a skipping action — it is a reporting verdict only.
TEST(LiveWarmup, FixedLocksetIsReportingOnly) {
  SitePreanalysis Pre(liveOpts(4));
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V;
  Pre.noteLockAcquire(V, 7);
  Pre.gate(V, 1, X, AccessKind::Read);
  Pre.gate(V, 1, X, AccessKind::Write);
  Pre.gate(V, 1, X, AccessKind::Read);
  Pre.gate(V, 1, X, AccessKind::Write);
  Pre.noteLockRelease(V, 7);

  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Action.load(), uint8_t(SiteAction::Generic));
  EXPECT_EQ(Pre.finalClassOf(*Rec), SiteClass::FixedLockset);
  EXPECT_EQ(Pre.stats().NumFixedLockset, 1u);
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read));
}

/// A mixed lockset (or a bare access) disqualifies the verdict.
TEST(LiveWarmup, MixedLocksetsReportGeneric) {
  SitePreanalysis Pre(liveOpts(4));
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V;
  Pre.noteLockAcquire(V, 7);
  Pre.gate(V, 1, X, AccessKind::Write);
  Pre.noteLockRelease(V, 7);
  Pre.gate(V, 1, X, AccessKind::Write); // bare
  Pre.gate(V, 1, X, AccessKind::Write);
  Pre.gate(V, 1, X, AccessKind::Write);

  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_TRUE(Rec->Flags.load() & SitePreanalysis::FlagLockSigMixed);
  EXPECT_EQ(Pre.finalClassOf(*Rec), SiteClass::Generic);
}

TEST(LiveWarmup, GroupedSitePinnedToGeneric) {
  SitePreanalysis Pre(liveOpts(2));
  Pre.registerRange(X, 8, 8);
  MemAddr Members[] = {X, Y};
  Pre.markGrouped(Members, 2);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  // Registered before grouping: pinned in place.
  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Action.load(), uint8_t(SiteAction::Generic));

  // Registered after grouping: born pinned.
  Pre.registerRange(Y, 8, 8);
  SiteRecord *Late = Pre.findSite(Y);
  ASSERT_NE(Late, nullptr);
  EXPECT_EQ(Late->Action.load(), uint8_t(SiteAction::Generic));

  // Read-only warmup traffic must not re-classify a grouped site (group
  // violations span member locations, per-site reasoning does not apply).
  TaskView V;
  for (int I = 0; I < 4; ++I)
    EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_EQ(Rec->Action.load(), uint8_t(SiteAction::Generic));
  EXPECT_EQ(Pre.finalClassOf(*Rec), SiteClass::Generic);

  PreanalysisStats S = Pre.stats();
  EXPECT_EQ(S.NumSites, 2u);
  EXPECT_EQ(S.NumNonGrouped, 0u);
}

//===----------------------------------------------------------------------===//
// Site table mechanics
//===----------------------------------------------------------------------===//

TEST(SiteTable, LazyScalarSitesForUnregisteredAddresses) {
  SitePreanalysis Pre(liveOpts(8));
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V;
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read));
  SiteRecord *Rec = Pre.findSite(X);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Base, X);
  EXPECT_EQ(Rec->Size, 8u);
  // The MRU now short-circuits the repeat without growing the table.
  size_t Sites = Pre.numSites();
  EXPECT_FALSE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_EQ(Pre.numSites(), Sites);
}

TEST(SiteTable, AddressReuseRetiresOverlappingRange) {
  SitePreanalysis Pre(liveOpts());
  Pre.registerRange(X, 32, 8);
  SiteRecord *Old = Pre.findSite(X + 8);
  ASSERT_NE(Old, nullptr);

  // A fresh range over reused memory shadows the stale one; the retired
  // record drops to Generic so stale MRU references stay sound.
  Pre.registerRange(X + 8, 8, 8);
  EXPECT_EQ(Old->Action.load(), uint8_t(SiteAction::Generic));
  EXPECT_EQ(Pre.numSites(), 1u);
  SiteRecord *Fresh = Pre.findSite(X + 8);
  ASSERT_NE(Fresh, nullptr);
  EXPECT_NE(Fresh, Old);
  EXPECT_EQ(Pre.findSite(X), nullptr);

  // Identical re-registration reuses the record.
  Pre.registerRange(X + 8, 8, 8);
  EXPECT_EQ(Pre.findSite(X + 8), Fresh);
  EXPECT_EQ(Pre.numSites(), 1u);
}

TEST(SiteTable, FoldViewResetsTaskState) {
  SitePreanalysis Pre(liveOpts(1));
  Pre.registerRange(X, 8, 8);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V;
  Pre.noteLockAcquire(V, 3);
  Pre.gate(V, 1, X, AccessKind::Read); // classifies at threshold 1
  EXPECT_TRUE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_EQ(V.SiteSkips, 1u);

  Pre.foldView(V);
  EXPECT_EQ(V.SiteSkips, 0u);
  EXPECT_TRUE(V.HeldLocks.empty());
  EXPECT_EQ(V.HeldSig, 0u);
  EXPECT_EQ(Pre.stats().NumSiteSkips, 1u);
  // Folding twice adds nothing.
  Pre.foldView(V);
  EXPECT_EQ(Pre.stats().NumSiteSkips, 1u);
}

//===----------------------------------------------------------------------===//
// Exact adoption (replay mode)
//===----------------------------------------------------------------------===//

TEST(ExactAdoption, CompilesHandlersAndNeverDowngrades) {
  SitePreanalysis::Options O;
  O.Mode = PreanalysisMode::On;
  SitePreanalysis Pre(O);

  std::vector<ExactSiteClass> Classes(2);
  Classes[0].Base = X;
  Classes[0].Size = 8;
  Classes[0].Class = SiteClass::SequentialOnly;
  Classes[0].Action = SiteAction::SkipAll;
  Classes[1].Base = Y;
  Classes[1].Size = 8;
  Classes[1].Class = SiteClass::ReadOnlyAfterInit;
  Classes[1].Action = SiteAction::SkipReads;
  Classes[1].NonSeqReads = 5;
  Pre.adoptExact(Classes);
  Pre.noteProgramStart(0);
  Pre.noteSpawn(0, nullptr);

  TaskView V;
  EXPECT_TRUE(Pre.gate(V, 1, X, AccessKind::Read));
  EXPECT_TRUE(Pre.gate(V, 1, X, AccessKind::Write));
  EXPECT_TRUE(Pre.gate(V, 1, Y, AccessKind::Read));
  EXPECT_EQ(V.SiteSkips, 3u);

  // The exact sweep proved no write is parallel with any access, so a
  // write keeps the classification (unlike live speculation).
  EXPECT_FALSE(Pre.gate(V, 1, Y, AccessKind::Write));
  SiteRecord *Rec = Pre.findSite(Y);
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Action.load(), uint8_t(SiteAction::SkipReads));
  EXPECT_TRUE(Pre.gate(V, 1, Y, AccessKind::Read));

  PreanalysisStats S = Pre.stats();
  EXPECT_EQ(S.NumSequentialOnly, 1u);
  EXPECT_EQ(S.NumReadOnlyAfterInit, 1u);
  EXPECT_EQ(S.NumDowngrades, 0u);

  // Addresses outside the adopted set never speculate after adoption.
  EXPECT_FALSE(Pre.gate(V, 1, Z, AccessKind::Read));
  SiteRecord *Lazy = Pre.findSite(Z);
  ASSERT_NE(Lazy, nullptr);
  EXPECT_EQ(Lazy->Action.load(), uint8_t(SiteAction::Generic));
}

TEST(TraceClassifierSweep, ComputesExactClassesFromTrace) {
  TraceBuilder T;
  T.write(0, X).write(0, X); // root init, globally sequential
  T.write(0, Z);
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).read(2, X); // parallel reads, never written in parallel
  T.write(1, Y).read(2, Y); // genuine parallel write/read conflict
  T.end(1).end(2).sync(0).end(0);

  TraceClassifier Classifier;
  replayTrace(T.finish(), Classifier);

  std::vector<ExactSiteClass> Classes = Classifier.classes();
  ASSERT_EQ(Classes.size(), 3u);
  SiteClass ByAddr[3] = {SiteClass::Unclassified, SiteClass::Unclassified,
                         SiteClass::Unclassified};
  SiteAction ActByAddr[3] = {SiteAction::Generic, SiteAction::Generic,
                             SiteAction::Generic};
  for (const ExactSiteClass &C : Classes) {
    int I = C.Base == X ? 0 : C.Base == Y ? 1 : 2;
    ByAddr[I] = C.Class;
    ActByAddr[I] = C.Action;
  }
  EXPECT_EQ(ByAddr[0], SiteClass::ReadOnlyAfterInit);
  EXPECT_EQ(ActByAddr[0], SiteAction::SkipReads);
  EXPECT_EQ(ByAddr[1], SiteClass::Generic);
  EXPECT_EQ(ActByAddr[1], SiteAction::Generic);
  EXPECT_EQ(ByAddr[2], SiteClass::SequentialOnly);
  EXPECT_EQ(ActByAddr[2], SiteAction::SkipAll);
}

/// End-to-end two-pass replay: the checking replay with adopted exact
/// verdicts skips accesses yet reports the identical violation set.
TEST(TwoPassReplay, SameViolationsWithExactSkips) {
  TraceBuilder T;
  T.write(0, Y).write(0, Y); // sequential init, skippable
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).read(1, X).write(2, X); // RWR violation on X
  T.read(1, Y).read(2, Y);             // read-only in parallel, skippable
  T.end(1).end(2).sync(0).end(0);

  auto RunWith = [&](PreanalysisMode Mode) {
    AtomicityChecker::Options Opts;
    Opts.Preanalysis = Mode;
    auto Checker = std::make_unique<AtomicityChecker>(Opts);
    replayTraceTwoPass(T.finish(), *Checker);
    return Checker;
  };

  auto Off = RunWith(PreanalysisMode::Off);
  auto On = RunWith(PreanalysisMode::On);

  std::set<MemAddr> OffFound, OnFound;
  for (const Violation &V : Off->violations().snapshot())
    OffFound.insert(V.Addr);
  for (const Violation &V : On->violations().snapshot())
    OnFound.insert(V.Addr);
  EXPECT_EQ(OffFound, std::set<MemAddr>{X});
  EXPECT_EQ(OnFound, OffFound);

  CheckerStats Stats = On->stats();
  EXPECT_EQ(Stats.Pre.Mode, PreanalysisMode::On);
  EXPECT_EQ(Stats.Pre.NumSeqSkips, 2u);  // the two root init writes
  EXPECT_EQ(Stats.Pre.NumSiteSkips, 2u); // the two parallel Y reads
  EXPECT_EQ(Stats.Pre.NumDowngrades, 0u);
  // Skipped accesses never enter the access counters.
  EXPECT_EQ(Stats.NumReads + Stats.NumWrites,
            Off->stats().NumReads + Off->stats().NumWrites - 4);
}

//===----------------------------------------------------------------------===//
// Registration machinery
//===----------------------------------------------------------------------===//

TEST(SiteRegistryTest, TombstonesAndReregistration) {
  SiteRegistry &Reg = SiteRegistry::instance();
  size_t Before = Reg.numLive();

  uint64_t Id1 = Reg.registerRange(0x9000, 64, 8);
  uint64_t Id2 = Reg.registerRange(0xA000, 8, 8);
  EXPECT_LT(Id1, Id2);
  EXPECT_EQ(Reg.numLive(), Before + 2);

  Reg.unregisterRange(0x9000);
  EXPECT_EQ(Reg.numLive(), Before + 1);
  bool SawDead = false, SawLive = false;
  for (const SiteRegistry::Entry &E : Reg.snapshot()) {
    SawDead |= E.Base == 0x9000;
    SawLive |= E.Base == 0xA000;
  }
  EXPECT_FALSE(SawDead) << "tombstoned entry leaked into the snapshot";
  EXPECT_TRUE(SawLive);

  // Double-unregister is harmless; reuse of the address gets a fresh id.
  Reg.unregisterRange(0x9000);
  uint64_t Id3 = Reg.registerRange(0x9000, 16, 8);
  EXPECT_GT(Id3, Id2);

  Reg.unregisterRange(0x9000);
  Reg.unregisterRange(0xA000);
  EXPECT_EQ(Reg.numLive(), Before);
}

TEST(SiteRegistryTest, TrackedArrayRegistersOneBulkRange) {
  SiteRegistry &Reg = SiteRegistry::instance();
  size_t Before = Reg.numLive();
  {
    TrackedArray<int> Arr(16);
    EXPECT_EQ(Reg.numLive(), Before + 1) << "per-element sites leaked";

    MemAddr First = Arr[0].address();
    MemAddr Last = Arr[15].address();
    bool Covered = false;
    for (const SiteRegistry::Entry &E : Reg.snapshot())
      if (First - E.Base < E.Size && Last - E.Base < E.Size) {
        Covered = true;
        EXPECT_GT(E.Stride, 0u);
        EXPECT_EQ((Last - First) % E.Stride, 0u);
      }
    EXPECT_TRUE(Covered) << "no single bulk range covers the whole array";

    Tracked<int> Scalar;
    EXPECT_EQ(Reg.numLive(), Before + 2);
  }
  EXPECT_EQ(Reg.numLive(), Before) << "destructors must tombstone sites";
}

} // namespace
