//===- tests/BasicCheckerTest.cpp - Reference checker tests ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/BasicChecker.h"

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x1008;
constexpr LockId L = 1;

TEST(BasicChecker, PaperRunningExample) {
  TraceBuilder T;
  T.write(0, X);
  T.spawn(0, 1).spawn(0, 2);
  T.write(2, X);
  T.read(1, X).write(1, X);
  T.end(2).end(1).sync(0).end(0);
  auto Checker = runBasic(T);
  EXPECT_EQ(Checker->violations().size(), 1u);
  EXPECT_TRUE(Checker->locationHasViolation(X));
  EXPECT_FALSE(Checker->locationHasViolation(Y));
}

/// Figure 3's pseudocode only covers the current access completing a
/// pattern (role A3); this case — interleaver observed last — requires the
/// A2 role our implementation adds.
TEST(BasicChecker, InterleaverObservedLast) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(1, X); // the pattern completes first
  T.read(2, X);              // the interleaver arrives last (WRW)
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(runBasic(T)->violations().size(), 1u);
}

TEST(BasicChecker, LockVersioningAcrossCriticalSections) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(2, L).write(2, X).rel(2, L);
  T.acq(1, L).read(1, X).rel(1, L);
  T.acq(1, L).write(1, X).rel(1, L);
  T.end(2).end(1).sync(0).end(0);
  EXPECT_GE(runBasic(T)->violations().size(), 1u);
}

TEST(BasicChecker, SameCriticalSectionProtects) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(2, L).write(2, X).rel(2, L);
  T.acq(1, L).read(1, X).write(1, X).rel(1, L);
  T.end(2).end(1).sync(0).end(0);
  EXPECT_EQ(runBasic(T)->violations().size(), 0u);
}

/// The unbounded history retains *all* accesses: a pattern formed from the
/// third and fifth access by a step is still found. (The optimized checker
/// covers this with first-access buffering; the basic checker by brute
/// force.)
TEST(BasicChecker, PatternsFromLaterAccesses) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  // Step 1: R under lock (protected), R bare, R under lock again — the two
  // bare-lockset-disjoint reads form patterns.
  T.acq(1, L).read(1, X).rel(1, L);
  T.read(1, X);
  T.acq(1, L).read(1, X).rel(1, L);
  T.write(2, X);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_GE(runBasic(T)->violations().size(), 1u);
}

TEST(BasicChecker, MultiVariableGroups) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).write(1, Y);
  T.write(2, X);
  T.end(1).end(2).sync(0).end(0);

  BasicChecker Checker;
  MemAddr Members[] = {X, Y};
  Checker.registerAtomicGroup(Members, 2);
  replayTrace(T.finish(), Checker);
  EXPECT_EQ(Checker.violations().size(), 1u);
  // Both member addresses map to the violating group.
  EXPECT_TRUE(Checker.locationHasViolation(X));
  EXPECT_TRUE(Checker.locationHasViolation(Y));
}

TEST(BasicChecker, StatsMatchTrace) {
  TraceBuilder T;
  T.spawn(0, 1);
  T.read(1, X).read(1, Y).write(1, X);
  T.end(1).sync(0).end(0);
  auto Checker = runBasic(T);
  CheckerStats Stats = Checker->stats();
  EXPECT_EQ(Stats.NumLocations, 2u);
  EXPECT_EQ(Stats.NumReads, 2u);
  EXPECT_EQ(Stats.NumWrites, 1u);
}

TEST(BasicChecker, LocationWithoutHistoryHasNoViolation) {
  BasicChecker Checker;
  EXPECT_FALSE(Checker.locationHasViolation(0xdead));
}

} // namespace
