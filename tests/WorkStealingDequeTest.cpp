//===- tests/WorkStealingDequeTest.cpp - Chase-Lev deque tests ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/WorkStealingDeque.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

using namespace avc;

namespace {

TEST(WorkStealingDeque, LifoForOwner) {
  WorkStealingDeque<int> Deque;
  int A = 1, B = 2, C = 3;
  Deque.push(&A);
  Deque.push(&B);
  Deque.push(&C);
  EXPECT_EQ(Deque.pop(), &C);
  EXPECT_EQ(Deque.pop(), &B);
  EXPECT_EQ(Deque.pop(), &A);
  EXPECT_EQ(Deque.pop(), nullptr);
}

TEST(WorkStealingDeque, FifoForThieves) {
  WorkStealingDeque<int> Deque;
  int A = 1, B = 2, C = 3;
  Deque.push(&A);
  Deque.push(&B);
  Deque.push(&C);
  EXPECT_EQ(Deque.steal(), &A);
  EXPECT_EQ(Deque.steal(), &B);
  EXPECT_EQ(Deque.steal(), &C);
  EXPECT_EQ(Deque.steal(), nullptr);
}

TEST(WorkStealingDeque, GrowthPreservesContents) {
  WorkStealingDeque<int> Deque(2); // force several growths
  std::vector<int> Values(1000);
  for (int I = 0; I < 1000; ++I) {
    Values[I] = I;
    Deque.push(&Values[I]);
  }
  EXPECT_EQ(Deque.sizeHint(), 1000);
  for (int I = 999; I >= 0; --I)
    EXPECT_EQ(Deque.pop(), &Values[I]);
}

TEST(WorkStealingDeque, MixedPopAndSteal) {
  WorkStealingDeque<int> Deque;
  int Items[6] = {0, 1, 2, 3, 4, 5};
  for (int &Item : Items)
    Deque.push(&Item);
  EXPECT_EQ(Deque.steal(), &Items[0]); // oldest
  EXPECT_EQ(Deque.pop(), &Items[5]);   // newest
  EXPECT_EQ(Deque.steal(), &Items[1]);
  EXPECT_EQ(Deque.pop(), &Items[4]);
  EXPECT_EQ(Deque.pop(), &Items[3]);
  EXPECT_EQ(Deque.pop(), &Items[2]);
  EXPECT_EQ(Deque.pop(), nullptr);
  EXPECT_EQ(Deque.steal(), nullptr);
}

/// Stress: one owner pushing/popping, three thieves stealing. Every item
/// must be taken exactly once (no loss, no duplication).
TEST(WorkStealingDeque, ConcurrentStealStress) {
  constexpr int NumItems = 50000;
  WorkStealingDeque<int> Deque(8);
  std::vector<int> Values(NumItems);
  std::atomic<int> Taken{0};
  std::vector<std::atomic<int>> SeenCount(NumItems);
  for (auto &Count : SeenCount)
    Count.store(0);

  std::atomic<bool> Done{false};
  auto Thief = [&] {
    while (!Done.load(std::memory_order_acquire)) {
      if (int *Item = Deque.steal()) {
        SeenCount[Item - Values.data()].fetch_add(1);
        Taken.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> Thieves;
  for (int T = 0; T < 3; ++T)
    Thieves.emplace_back(Thief);

  for (int I = 0; I < NumItems; ++I) {
    Values[I] = I;
    Deque.push(&Values[I]);
    if (I % 3 == 0) {
      if (int *Item = Deque.pop()) {
        SeenCount[Item - Values.data()].fetch_add(1);
        Taken.fetch_add(1);
      }
    }
  }
  while (int *Item = Deque.pop()) {
    SeenCount[Item - Values.data()].fetch_add(1);
    Taken.fetch_add(1);
  }
  // Let thieves drain any remainder, then stop them.
  while (Taken.load() < NumItems)
    std::this_thread::yield();
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  EXPECT_EQ(Taken.load(), NumItems);
  for (int I = 0; I < NumItems; ++I)
    EXPECT_EQ(SeenCount[I].load(), 1) << "item " << I;
}

} // namespace
