//===- tests/RaceDetectorTest.cpp - All-Sets race detector tests ----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/RaceDetector.h"

#include "dpst/ArrayDpst.h"
#include "workloads/Workloads.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "CheckerTestUtil.h"
#include "instrument/ToolContext.h"
#include "trace/TraceGenerator.h"

using namespace avc;

namespace {

constexpr MemAddr X = 0x1000;
constexpr MemAddr Y = 0x1008;
constexpr LockId L1 = 1;
constexpr LockId L2 = 2;

size_t racesIn(const TraceBuilder &T) {
  RaceDetector Detector;
  replayTrace(T.finish(), Detector);
  return Detector.numRaces();
}

TEST(RaceDetector, ParallelWriteWriteRaces) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(2, X);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 1u);
}

TEST(RaceDetector, ParallelReadWriteRaces) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).write(2, X);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 1u);
}

TEST(RaceDetector, ParallelReadsDoNotRace) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2).spawn(0, 3);
  T.read(1, X).read(2, X).read(3, X);
  T.end(1).end(2).end(3).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 0u);
}

TEST(RaceDetector, SerialAccessesDoNotRace) {
  TraceBuilder T;
  T.spawn(0, 1);
  T.write(1, X);
  T.end(1).sync(0);
  T.spawn(0, 2);
  T.write(2, X);
  T.end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 0u);
}

TEST(RaceDetector, CommonLockPreventsRace) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L1).write(1, X).rel(1, L1);
  T.acq(2, L1).write(2, X).rel(2, L1);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 0u);
}

/// The key difference from the atomicity checker's versioned locksets:
/// re-acquisition of the same lock still prevents a *race* (while the main
/// checker still reports the atomicity violation — see
/// AtomicityChecker.PaperLockExampleStillViolates).
TEST(RaceDetector, ReacquiredLockStillPreventsRace) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(2, L1).write(2, X).rel(2, L1);
  T.acq(1, L1).read(1, X).rel(1, L1);
  T.acq(1, L1).write(1, X).rel(1, L1);
  T.end(2).end(1).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 0u);

  AtomicityChecker Checker;
  replayTrace(T.finish(), Checker);
  EXPECT_GE(Checker.violations().size(), 1u)
      << "race-free but not atomic: the paper's Figure 11";
}

TEST(RaceDetector, DifferentLocksRace) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L1).write(1, X).rel(1, L1);
  T.acq(2, L2).write(2, X).rel(2, L2);
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 1u);
}

TEST(RaceDetector, NestedLocksShareTheOuter) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L1).acq(1, L2).write(1, X).rel(1, L2).rel(1, L1);
  T.acq(2, L1).write(2, X).rel(2, L1); // shares L1: no race
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 0u);
}

TEST(RaceDetector, LockedAgainstUnlockedRaces) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.acq(1, L1).write(1, X).rel(1, L1);
  T.read(2, X); // no lock at all
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 1u);
}

TEST(RaceDetector, DistinctLocationsIndependent) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.write(1, X).write(2, Y); // different locations: no conflict
  T.end(1).end(2).sync(0).end(0);
  EXPECT_EQ(racesIn(T), 0u);
}

TEST(RaceDetector, ReportsCarryStepsAndKinds) {
  TraceBuilder T;
  T.spawn(0, 1).spawn(0, 2);
  T.read(1, X).write(2, X);
  T.end(1).end(2).sync(0).end(0);
  RaceDetector Detector;
  replayTrace(T.finish(), Detector);
  ASSERT_EQ(Detector.races().size(), 1u);
  Race R = Detector.races().front();
  EXPECT_EQ(R.Addr, X);
  EXPECT_EQ(R.FirstKind, AccessKind::Read);
  EXPECT_EQ(R.SecondKind, AccessKind::Write);
  EXPECT_NE(R.toString().find("data race"), std::string::npos);
  RaceStats Stats = Detector.stats();
  EXPECT_EQ(Stats.NumRaces, 1u);
  EXPECT_EQ(Stats.NumReads, 1u);
  EXPECT_EQ(Stats.NumWrites, 1u);
  EXPECT_EQ(Stats.NumLocations, 1u);
}

TEST(RaceDetector, ToolContextIntegration) {
  ToolContext Tool(ToolKind::Race);
  Tracked<int> Shared;
  Tool.run([&] {
    spawn([&] { Shared.store(1); });
    spawn([&] { Shared.store(2); });
  });
  EXPECT_EQ(Tool.numViolations(), 1u);
  ASSERT_NE(Tool.raceDetector(), nullptr);
}

//===----------------------------------------------------------------------===//
// Property: agreement with a brute-force oracle on random traces
//===----------------------------------------------------------------------===//

/// O(n^2) reference: a race exists on a location iff two accesses by
/// logically parallel steps conflict and share no lock identity.
std::set<MemAddr> bruteForceRacyLocations(const Trace &Events) {
  // Reuse the basic checker's infrastructure by replaying into a detector
  // configured trivially... the oracle here is standalone: collect every
  // access with (step, kind, lock-id set) via a RaceDetector-independent
  // replay.
  struct Collector : ExecutionObserver {
    ArrayDpst Tree;
    DpstBuilder Builder{Tree};
    RadixTable<std::atomic<TaskFrame *>> Frames;
    ChunkedVector<std::unique_ptr<TaskFrame>> Storage;
    std::map<TaskId, HeldLocks> Locks;
    struct Access {
      NodeId Step;
      AccessKind Kind;
      LockSet Ids;
    };
    std::map<MemAddr, std::vector<Access>> Log;

    TaskFrame &frame(TaskId Task) {
      return *Frames.lookup(Task)->load();
    }
    TaskFrame &make(TaskId Task) {
      auto Owned = std::make_unique<TaskFrame>();
      TaskFrame *Raw = Owned.get();
      Storage.emplaceBack(std::move(Owned));
      Frames.getOrCreate(Task).store(Raw);
      return *Raw;
    }
    void onProgramStart(TaskId Root) override {
      Builder.initRoot(make(Root), Root);
    }
    void onTaskSpawn(TaskId Parent, const void *Tag, TaskId Child) override {
      Builder.spawnTask(frame(Parent), Tag, make(Child), Child);
    }
    void onTaskEnd(TaskId Task) override { Builder.endTask(frame(Task)); }
    void onSync(TaskId Task) override { Builder.sync(frame(Task)); }
    void onGroupWait(TaskId Task, const void *Tag) override {
      Builder.waitGroup(frame(Task), Tag);
    }
    void onLockAcquire(TaskId Task, LockId Lock) override {
      Locks[Task].acquire(Lock, Lock);
    }
    void onLockRelease(TaskId Task, LockId Lock) override {
      Locks[Task].release(Lock);
    }
    void record(TaskId Task, MemAddr Addr, AccessKind Kind) {
      Log[Addr].push_back(
          {Builder.currentStep(frame(Task)), Kind, Locks[Task].snapshotIds()});
    }
    void onRead(TaskId Task, MemAddr Addr) override {
      record(Task, Addr, AccessKind::Read);
    }
    void onWrite(TaskId Task, MemAddr Addr) override {
      record(Task, Addr, AccessKind::Write);
    }
  };

  Collector C;
  replayTrace(Events, C);
  std::set<MemAddr> Racy;
  for (const auto &[Addr, Accesses] : C.Log) {
    for (size_t I = 0; I < Accesses.size() && !Racy.count(Addr); ++I)
      for (size_t J = I + 1; J < Accesses.size(); ++J) {
        const auto &A = Accesses[I];
        const auto &B = Accesses[J];
        if (A.Kind == AccessKind::Read && B.Kind == AccessKind::Read)
          continue;
        if (!A.Ids.disjointWith(B.Ids))
          continue;
        if (A.Step != B.Step &&
            C.Tree.logicallyParallelUncached(A.Step, B.Step)) {
          Racy.insert(Addr);
          break;
        }
      }
  }
  return Racy;
}

class RaceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaceSweep, MatchesBruteForceOracle) {
  uint64_t Seed = GetParam();
  TraceGenOptions Opts;
  Opts.Seed = Seed;
  Opts.NumTasks = 3 + Seed % 12;
  Opts.NumLocations = 1 + Seed % 4;
  Opts.NumLocks = Seed % 3;
  Opts.MaxOpsPerTask = 4 + Seed % 8;
  Opts.LockedFraction = (Seed % 4) * 0.25;
  Opts.SyncFraction = (Seed % 5) * 0.08;
  Trace Events = linearizeSerial(generateProgram(Opts));

  std::set<MemAddr> Expected = bruteForceRacyLocations(Events);
  RaceDetector Detector;
  replayTrace(Events, Detector);
  std::set<MemAddr> Found;
  for (const Race &R : Detector.races())
    Found.insert(R.Addr);
  EXPECT_EQ(Found, Expected) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceSweep, ::testing::Range<uint64_t>(1, 61));

/// The 13 workload kernels must also be race free (their racy-read cases
/// are excluded by design... if this fails, a kernel regressed).
TEST(RaceDetector, WorkloadKmeansHasOnlyTheDocumentedBenignRace) {
  // kmeans deliberately contains a racy (but serializable) neighbour read;
  // the race detector flags it, the atomicity checker does not. This test
  // documents that intended difference.
  ToolContext RaceTool(ToolKind::Race);
  RaceTool.run([] { workloads::runKmeans(0.02); });
  EXPECT_GE(RaceTool.numViolations(), 1u);

  ToolContext AtomTool(ToolKind::Atomicity);
  AtomTool.run([] { workloads::runKmeans(0.02); });
  EXPECT_EQ(AtomTool.numViolations(), 0u);
}

} // namespace
