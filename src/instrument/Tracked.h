//===- instrument/Tracked.h - Annotated (tracked) locations ----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-level stand-in for the paper's annotation + LLVM instrumentation
/// pipeline: the paper's programmers mark locations with type qualifiers
/// and a compiler pass inserts checker calls on every access to them
/// (Section 4). Here, wrapping a value in Tracked<T> plays the role of the
/// annotation, and the wrapper's accessors emit exactly the events the
/// pass would insert. Unwrapped data is invisible to the checker, matching
/// the annotation-driven (not whole-program) instrumentation model.
///
/// Construction doubles as *site registration* for the pre-analysis
/// (DESIGN.md §11): a scalar Tracked<T> registers one site; TrackedArray
/// registers a single bulk range for the whole array (one site record, not
/// one per element — per-element constructors are suppressed with a
/// BulkScope), so whole arrays classify at once and the per-element
/// metadata footprint is one registry entry total.
///
/// Storage is a relaxed std::atomic so that programs containing the very
/// data races the checker analyzes remain well-defined C++.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_INSTRUMENT_TRACKED_H
#define AVC_INSTRUMENT_TRACKED_H

#include <atomic>
#include <cstddef>
#include <memory>

#include "analysis/SiteRegistry.h"
#include "runtime/TaskRuntime.h"

namespace avc {

/// A memory location whose accesses are reported to the checker.
template <typename T> class Tracked {
public:
  Tracked() : Value(T()) { registerSite(); }
  explicit Tracked(T Initial) : Value(Initial) { registerSite(); }

  ~Tracked() {
    if (!SiteRegistry::bulkSuppressed())
      SiteRegistry::instance().unregisterRange(address());
  }

  Tracked(const Tracked &) = delete;
  Tracked &operator=(const Tracked &) = delete;

  /// Instrumented read.
  T load() const {
    TaskRuntime::notifyRead(&Value);
    return Value.load(std::memory_order_relaxed);
  }

  /// Instrumented write.
  void store(T NewValue) {
    TaskRuntime::notifyWrite(&Value);
    Value.store(NewValue, std::memory_order_relaxed);
  }

  operator T() const { return load(); }

  Tracked &operator=(T NewValue) {
    store(NewValue);
    return *this;
  }

  /// Instrumented read-modify-write (one read event + one write event,
  /// exactly what the compiler pass emits for `x = x + d`).
  T operator+=(T Delta) {
    T NewValue = load() + Delta;
    store(NewValue);
    return NewValue;
  }

  T operator-=(T Delta) {
    T NewValue = load() - Delta;
    store(NewValue);
    return NewValue;
  }

  T operator++() { return *this += T(1); }
  T operator--() { return *this -= T(1); }

  /// The identity the checker tracks this location under.
  MemAddr address() const { return reinterpret_cast<MemAddr>(&Value); }

  /// Uninstrumented peek, for test assertions about final values.
  T raw() const { return Value.load(std::memory_order_relaxed); }

  /// Uninstrumented poke, for (re-)initialization outside checked code.
  void rawStore(T NewValue) {
    Value.store(NewValue, std::memory_order_relaxed);
  }

private:
  void registerSite() {
    // Elements of a TrackedArray register as one bulk range instead.
    if (SiteRegistry::bulkSuppressed())
      return;
    SiteRegistry::instance().registerRange(address(), sizeof(Value),
                                           sizeof(Value));
    TaskRuntime::notifySiteRegister(&Value, sizeof(Value), sizeof(Value));
  }

  std::atomic<T> Value;
};

/// A fixed-size array of tracked locations (one checker location per
/// element), the shape of most of the paper's benchmark data. Registers a
/// single bulk site covering every element.
template <typename T> class TrackedArray {
public:
  explicit TrackedArray(size_t Count) : Count(Count) {
    {
      SiteRegistry::BulkScope Bulk;
      Elements = std::make_unique<Tracked<T>[]>(Count);
    }
    if (Count == 0)
      return;
    MemAddr Base = Elements[0].address();
    uint64_t Span = Count * sizeof(Tracked<T>);
    SiteRegistry::instance().registerRange(
        Base, Span, static_cast<uint32_t>(sizeof(Tracked<T>)));
    TaskRuntime::notifySiteRegister(
        reinterpret_cast<const void *>(Base), Span,
        static_cast<uint32_t>(sizeof(Tracked<T>)));
  }

  ~TrackedArray() {
    if (Count != 0)
      SiteRegistry::instance().unregisterRange(Elements[0].address());
    // Element destructors must not tombstone the bulk range per element.
    SiteRegistry::BulkScope Bulk;
    Elements.reset();
  }

  Tracked<T> &operator[](size_t Index) {
    assert(Index < Count && "tracked array index out of range");
    return Elements[Index];
  }

  const Tracked<T> &operator[](size_t Index) const {
    assert(Index < Count && "tracked array index out of range");
    return Elements[Index];
  }

  size_t size() const { return Count; }

private:
  size_t Count;
  std::unique_ptr<Tracked<T>[]> Elements;
};

} // namespace avc

#endif // AVC_INSTRUMENT_TRACKED_H
