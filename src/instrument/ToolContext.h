//===- instrument/ToolContext.h - One-stop tool front end ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles a task runtime with a selected analysis tool, the way the
/// paper's build pipeline links an instrumented binary against the checker
/// runtime library. This is the recommended entry point for applications:
///
/// \code
///   avc::ToolContext Tool(avc::ToolKind::Atomicity);
///   Tool.run([&] { ...spawn tasks, access Tracked<T> data... });
///   Tool.printReport();
/// \endcode
///
/// The context holds exactly one CheckerTool built through the
/// ToolRegistry and talks to it through the polymorphic interface; the
/// typed accessors below are dynamic_cast shims kept so engine-specific
/// call sites (tests, benches, --dot) compile unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_INSTRUMENT_TOOLCONTEXT_H
#define AVC_INSTRUMENT_TOOLCONTEXT_H

#include <cstdio>
#include <functional>
#include <initializer_list>
#include <memory>

#include "checker/AtomicityChecker.h"
#include "checker/BasicChecker.h"
#include "checker/CheckerTool.h"
#include "checker/DeterminismChecker.h"
#include "checker/RaceDetector.h"
#include "checker/VectorClockAtomicity.h"
#include "checker/Velodrome.h"
#include "instrument/Tracked.h"
#include "runtime/TaskRuntime.h"

namespace avc {

/// A runtime plus the selected tool, wired together.
class ToolContext {
public:
  struct Options {
    ToolKind Tool = ToolKind::Atomicity;
    /// Shared tool configuration, handed to whichever engine is selected.
    /// Checker.NumThreads sizes the runtime's worker pool *and* tells the
    /// tool how much concurrency to defend against — one knob, one value,
    /// no way for them to disagree. Checker.ProfilePath, when set, makes
    /// run() record an observability session and export a Perfetto trace
    /// there.
    ToolOptions Checker;
    /// Engine-specific construction knobs (e.g. AtomicityExtras), passed
    /// through to the registry factory. Not owned; must outlive the
    /// ToolContext constructor call.
    const ToolExtras *Extras = nullptr;
  };

  ToolContext(Options Opts);
  explicit ToolContext(ToolKind Kind, unsigned NumThreads = 1);
  ~ToolContext();

  ToolContext(const ToolContext &) = delete;
  ToolContext &operator=(const ToolContext &) = delete;

  /// Executes \p Root under the runtime with the tool observing. One-shot.
  void run(std::function<void()> Root);

  /// Declares that the given tracked locations form a multi-variable
  /// atomic group (they share checker metadata). Call before run().
  /// Returns false if any member could not be merged into the group (it was
  /// accessed before registration or belongs to another group); see
  /// AtomicityChecker::registerAtomicGroup.
  template <typename T>
  bool atomicGroup(std::initializer_list<const Tracked<T> *> Members) {
    std::vector<MemAddr> Addrs;
    Addrs.reserve(Members.size());
    for (const Tracked<T> *Member : Members)
      Addrs.push_back(Member->address());
    return registerAtomicGroup(Addrs.data(), Addrs.size());
  }

  /// Address-based overload of atomicGroup.
  bool registerAtomicGroup(const MemAddr *Members, size_t Count);

  /// Gives \p Location a display name used in reports.
  template <typename T>
  void nameLocation(const Tracked<T> &Location, std::string Name) {
    if (Tool_)
      Tool_->nameLocation(Location.address(), std::move(Name));
  }

  /// Violations found (atomicity/basic report triples; the trace-bound
  /// engines report cycles; None reports zero).
  size_t numViolations() const;

  /// Writes a human-readable summary of the findings to \p Out.
  void printReport(std::FILE *Out = stdout) const;

  ToolKind kind() const { return Kind; }
  TaskRuntime &runtime() { return RT; }

  /// The active engine (null for ToolKind::None).
  CheckerTool *tool() { return Tool_.get(); }
  const CheckerTool *tool() const { return Tool_.get(); }

  /// Typed accessors (null unless that engine was selected): dynamic_cast
  /// shims over the single polymorphic member.
  AtomicityChecker *atomicityChecker() {
    return dynamic_cast<AtomicityChecker *>(Tool_.get());
  }
  const AtomicityChecker *atomicityChecker() const {
    return dynamic_cast<const AtomicityChecker *>(Tool_.get());
  }
  BasicChecker *basicChecker() {
    return dynamic_cast<BasicChecker *>(Tool_.get());
  }
  const BasicChecker *basicChecker() const {
    return dynamic_cast<const BasicChecker *>(Tool_.get());
  }
  VelodromeChecker *velodromeChecker() {
    return dynamic_cast<VelodromeChecker *>(Tool_.get());
  }
  const VelodromeChecker *velodromeChecker() const {
    return dynamic_cast<const VelodromeChecker *>(Tool_.get());
  }
  VectorClockAtomicity *vectorClockChecker() {
    return dynamic_cast<VectorClockAtomicity *>(Tool_.get());
  }
  const VectorClockAtomicity *vectorClockChecker() const {
    return dynamic_cast<const VectorClockAtomicity *>(Tool_.get());
  }
  RaceDetector *raceDetector() {
    return dynamic_cast<RaceDetector *>(Tool_.get());
  }
  const RaceDetector *raceDetector() const {
    return dynamic_cast<const RaceDetector *>(Tool_.get());
  }
  DeterminismChecker *determinismChecker() {
    return dynamic_cast<DeterminismChecker *>(Tool_.get());
  }
  const DeterminismChecker *determinismChecker() const {
    return dynamic_cast<const DeterminismChecker *>(Tool_.get());
  }

private:
  /// Registers the selected tool's gauges with the active obs session.
  void registerObsGauges();

  ToolKind Kind;
  std::string ProfilePath;
  std::unique_ptr<CheckerTool> Tool_;
  TaskRuntime RT;
};

} // namespace avc

#endif // AVC_INSTRUMENT_TOOLCONTEXT_H
