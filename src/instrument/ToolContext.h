//===- instrument/ToolContext.h - One-stop tool front end ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bundles a task runtime with a selected analysis tool, the way the
/// paper's build pipeline links an instrumented binary against the checker
/// runtime library. This is the recommended entry point for applications:
///
/// \code
///   avc::ToolContext Tool(avc::ToolKind::Atomicity);
///   Tool.run([&] { ...spawn tasks, access Tracked<T> data... });
///   Tool.printReport();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef AVC_INSTRUMENT_TOOLCONTEXT_H
#define AVC_INSTRUMENT_TOOLCONTEXT_H

#include <cstdio>
#include <functional>
#include <initializer_list>
#include <memory>

#include "checker/AtomicityChecker.h"
#include "checker/BasicChecker.h"
#include "checker/DeterminismChecker.h"
#include "checker/RaceDetector.h"
#include "checker/Velodrome.h"
#include "instrument/Tracked.h"
#include "runtime/TaskRuntime.h"

namespace avc {

/// Selects the analysis attached to the runtime.
enum class ToolKind : uint8_t {
  None,      ///< Uninstrumented baseline (overhead denominator).
  Atomicity, ///< The paper's optimized checker.
  Basic,     ///< The unbounded-history reference checker.
  Velodrome, ///< The trace-bound baseline.
  Race,      ///< The All-Sets data race detector (the paper's substrate).
  Determinism, ///< Tardis-style internal-determinism checker (Section 5).
};

/// Returns a short name for \p Kind.
const char *toolKindName(ToolKind Kind);

/// A runtime plus the selected tool, wired together.
class ToolContext {
public:
  struct Options {
    ToolKind Tool = ToolKind::Atomicity;
    /// Tool configuration. The shared ToolOptions slice of this struct
    /// configures whichever tool is selected (the ctor slices it into the
    /// other tools' Options); the atomicity-specific extras only matter
    /// for ToolKind::Atomicity. Checker.NumThreads sizes the runtime's
    /// worker pool *and* tells the tool how much concurrency to defend
    /// against — one knob, one value, no way for them to disagree.
    /// Checker.ProfilePath, when set, makes run() record an observability
    /// session and export a Perfetto trace there.
    AtomicityChecker::Options Checker;
  };

  ToolContext(Options Opts);
  explicit ToolContext(ToolKind Kind, unsigned NumThreads = 1);
  ~ToolContext();

  ToolContext(const ToolContext &) = delete;
  ToolContext &operator=(const ToolContext &) = delete;

  /// Executes \p Root under the runtime with the tool observing. One-shot.
  void run(std::function<void()> Root);

  /// Declares that the given tracked locations form a multi-variable
  /// atomic group (they share checker metadata). Call before run().
  /// Returns false if any member could not be merged into the group (it was
  /// accessed before registration or belongs to another group); see
  /// AtomicityChecker::registerAtomicGroup.
  template <typename T>
  bool atomicGroup(std::initializer_list<const Tracked<T> *> Members) {
    std::vector<MemAddr> Addrs;
    Addrs.reserve(Members.size());
    for (const Tracked<T> *Member : Members)
      Addrs.push_back(Member->address());
    return registerAtomicGroup(Addrs.data(), Addrs.size());
  }

  /// Address-based overload of atomicGroup.
  bool registerAtomicGroup(const MemAddr *Members, size_t Count);

  /// Gives \p Location a display name used in reports.
  template <typename T>
  void nameLocation(const Tracked<T> &Location, std::string Name) {
    if (Atomicity)
      Atomicity->nameLocation(Location.address(), std::move(Name));
  }

  /// Violations found (atomicity/basic report triples; Velodrome reports
  /// cycles; None reports zero).
  size_t numViolations() const;

  /// Writes a human-readable summary of the findings to \p Out.
  void printReport(std::FILE *Out = stdout) const;

  ToolKind kind() const { return Kind; }
  TaskRuntime &runtime() { return RT; }

  /// The active checkers (null unless that tool was selected).
  AtomicityChecker *atomicityChecker() { return Atomicity.get(); }
  const AtomicityChecker *atomicityChecker() const { return Atomicity.get(); }
  BasicChecker *basicChecker() { return Basic.get(); }
  const BasicChecker *basicChecker() const { return Basic.get(); }
  VelodromeChecker *velodromeChecker() { return Velodrome.get(); }
  const VelodromeChecker *velodromeChecker() const { return Velodrome.get(); }
  RaceDetector *raceDetector() { return Races.get(); }
  const RaceDetector *raceDetector() const { return Races.get(); }
  DeterminismChecker *determinismChecker() { return Determinism.get(); }
  const DeterminismChecker *determinismChecker() const {
    return Determinism.get();
  }

private:
  /// Registers the selected tool's gauges with the active obs session.
  void registerObsGauges();

  ToolKind Kind;
  std::string ProfilePath;
  std::unique_ptr<AtomicityChecker> Atomicity;
  std::unique_ptr<BasicChecker> Basic;
  std::unique_ptr<VelodromeChecker> Velodrome;
  std::unique_ptr<RaceDetector> Races;
  std::unique_ptr<DeterminismChecker> Determinism;
  TaskRuntime RT;
};

} // namespace avc

#endif // AVC_INSTRUMENT_TOOLCONTEXT_H
