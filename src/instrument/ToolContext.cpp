//===- instrument/ToolContext.cpp - One-stop tool front end ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "instrument/ToolContext.h"

#include "support/Compiler.h"

using namespace avc;

const char *avc::toolKindName(ToolKind Kind) {
  switch (Kind) {
  case ToolKind::None:
    return "none";
  case ToolKind::Atomicity:
    return "atomicity";
  case ToolKind::Basic:
    return "basic";
  case ToolKind::Velodrome:
    return "velodrome";
  case ToolKind::Race:
    return "race";
  case ToolKind::Determinism:
    return "determinism";
  }
  avc_unreachable("unknown tool kind");
}

static TaskRuntime::Options runtimeOptions(unsigned NumThreads) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = NumThreads;
  return Opts;
}

ToolContext::ToolContext(Options Opts)
    : Kind(Opts.Tool), RT(runtimeOptions(Opts.NumThreads)) {
  switch (Kind) {
  case ToolKind::None:
    break;
  case ToolKind::Atomicity:
    Atomicity = std::make_unique<AtomicityChecker>(Opts.Checker);
    RT.addObserver(Atomicity.get());
    break;
  case ToolKind::Basic: {
    BasicChecker::Options BasicOpts;
    BasicOpts.Layout = Opts.Checker.Layout;
    BasicOpts.Query = Opts.Checker.Query;
    BasicOpts.EnableLcaCache = Opts.Checker.EnableLcaCache;
    Basic = std::make_unique<BasicChecker>(BasicOpts);
    RT.addObserver(Basic.get());
    break;
  }
  case ToolKind::Velodrome:
    Velodrome = std::make_unique<VelodromeChecker>();
    RT.addObserver(Velodrome.get());
    break;
  case ToolKind::Race: {
    RaceDetector::Options RaceOpts;
    RaceOpts.Layout = Opts.Checker.Layout;
    RaceOpts.Query = Opts.Checker.Query;
    RaceOpts.EnableLcaCache = Opts.Checker.EnableLcaCache;
    Races = std::make_unique<RaceDetector>(RaceOpts);
    RT.addObserver(Races.get());
    break;
  }
  case ToolKind::Determinism: {
    DeterminismChecker::Options DetOpts;
    DetOpts.Layout = Opts.Checker.Layout;
    DetOpts.Query = Opts.Checker.Query;
    DetOpts.EnableLcaCache = Opts.Checker.EnableLcaCache;
    Determinism = std::make_unique<DeterminismChecker>(DetOpts);
    RT.addObserver(Determinism.get());
    break;
  }
  }
}

ToolContext::ToolContext(ToolKind Kind, unsigned NumThreads)
    : ToolContext([&] {
        Options Opts;
        Opts.Tool = Kind;
        Opts.NumThreads = NumThreads;
        return Opts;
      }()) {}

ToolContext::~ToolContext() = default;

void ToolContext::run(std::function<void()> Root) { RT.run(std::move(Root)); }

bool ToolContext::registerAtomicGroup(const MemAddr *Members, size_t Count) {
  bool Ok = true;
  if (Atomicity)
    Ok = Atomicity->registerAtomicGroup(Members, Count);
  if (Basic)
    Basic->registerAtomicGroup(Members, Count);
  // Velodrome and None have no notion of grouped metadata.
  return Ok;
}

size_t ToolContext::numViolations() const {
  switch (Kind) {
  case ToolKind::None:
    return 0;
  case ToolKind::Atomicity:
    return Atomicity->violations().size();
  case ToolKind::Basic:
    return Basic->violations().size();
  case ToolKind::Velodrome:
    return Velodrome->numViolations();
  case ToolKind::Race:
    return Races->numRaces();
  case ToolKind::Determinism:
    return Determinism->numViolations();
  }
  avc_unreachable("unknown tool kind");
}

void ToolContext::printReport(std::FILE *Out) const {
  std::fprintf(Out, "[%s] %zu violation(s)\n", toolKindName(Kind),
               numViolations());
  auto PrintLog = [&](const ViolationLog &Log) {
    for (const Violation &V : Log.snapshot())
      std::fprintf(Out, "  %s\n", V.toString().c_str());
  };
  if (Atomicity)
    PrintLog(Atomicity->violations());
  if (Basic)
    PrintLog(Basic->violations());
  if (Races)
    for (const Race &R : Races->races())
      std::fprintf(Out, "  %s\n", R.toString().c_str());
  if (Determinism)
    for (const DeterminismViolation &V : Determinism->violations())
      std::fprintf(Out, "  %s\n", V.toString().c_str());
  if (Velodrome)
    for (const VelodromeCycle &Cycle : Velodrome->cycles())
      std::fprintf(Out,
                   "  unserializable transaction in observed trace: edge "
                   "S%u -> S%u closed a cycle (location 0x%llx)\n",
                   Cycle.Source, Cycle.Target,
                   static_cast<unsigned long long>(Cycle.Addr));
}
