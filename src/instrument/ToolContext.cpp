//===- instrument/ToolContext.cpp - One-stop tool front end ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "instrument/ToolContext.h"

#include "obs/Obs.h"
#include "support/Compiler.h"

using namespace avc;

const char *avc::toolKindName(ToolKind Kind) {
  switch (Kind) {
  case ToolKind::None:
    return "none";
  case ToolKind::Atomicity:
    return "atomicity";
  case ToolKind::Basic:
    return "basic";
  case ToolKind::Velodrome:
    return "velodrome";
  case ToolKind::Race:
    return "race";
  case ToolKind::Determinism:
    return "determinism";
  }
  avc_unreachable("unknown tool kind");
}

static TaskRuntime::Options runtimeOptions(unsigned NumThreads) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = NumThreads;
  return Opts;
}

/// Every tool's Options derives from ToolOptions, so configuring any tool
/// is one slice-assignment — the single place shared configuration flows
/// from the front end into a tool.
template <typename OptionsT>
static OptionsT toolOptionsFor(const ToolOptions &Shared) {
  OptionsT Opts;
  static_cast<ToolOptions &>(Opts) = Shared;
  return Opts;
}

ToolContext::ToolContext(Options Opts)
    : Kind(Opts.Tool), ProfilePath(Opts.Checker.ProfilePath),
      RT(runtimeOptions(Opts.Checker.NumThreads)) {
  const ToolOptions &Shared = Opts.Checker;
  switch (Kind) {
  case ToolKind::None:
    break;
  case ToolKind::Atomicity:
    Atomicity = std::make_unique<AtomicityChecker>(Opts.Checker);
    RT.addObserver(Atomicity.get());
    break;
  case ToolKind::Basic:
    Basic = std::make_unique<BasicChecker>(
        toolOptionsFor<BasicChecker::Options>(Shared));
    RT.addObserver(Basic.get());
    break;
  case ToolKind::Velodrome:
    Velodrome = std::make_unique<VelodromeChecker>(
        toolOptionsFor<VelodromeChecker::Options>(Shared));
    RT.addObserver(Velodrome.get());
    break;
  case ToolKind::Race:
    Races = std::make_unique<RaceDetector>(
        toolOptionsFor<RaceDetector::Options>(Shared));
    RT.addObserver(Races.get());
    break;
  case ToolKind::Determinism:
    Determinism = std::make_unique<DeterminismChecker>(
        toolOptionsFor<DeterminismChecker::Options>(Shared));
    RT.addObserver(Determinism.get());
    break;
  }
}

ToolContext::ToolContext(ToolKind Kind, unsigned NumThreads)
    : ToolContext([&] {
        Options Opts;
        Opts.Tool = Kind;
        Opts.Checker.NumThreads = NumThreads;
        return Opts;
      }()) {}

ToolContext::~ToolContext() = default;

void ToolContext::registerObsGauges() {
  if (Atomicity)
    Atomicity->registerObsGauges();
  if (Basic)
    Basic->registerObsGauges();
  if (Velodrome)
    Velodrome->registerObsGauges();
  if (Races)
    Races->registerObsGauges();
  if (Determinism)
    Determinism->registerObsGauges();
}

void ToolContext::run(std::function<void()> Root) {
  if (ProfilePath.empty()) {
    RT.run(std::move(Root));
    return;
  }
  // Profiled run: record between session begin and end. RT.run returns
  // only after the root group drains and onProgramEnd fires, so the drain
  // in endSession happens at task quiescence (workers may still spin for
  // work, but record nothing — steal *attempts* are not instrumented).
  bool Recording = obs::beginSession();
  if (Recording)
    registerObsGauges();
  RT.run(std::move(Root));
  if (Recording)
    obs::endSession(ProfilePath);
}

bool ToolContext::registerAtomicGroup(const MemAddr *Members, size_t Count) {
  bool Ok = true;
  if (Atomicity)
    Ok = Atomicity->registerAtomicGroup(Members, Count);
  if (Basic)
    Basic->registerAtomicGroup(Members, Count);
  // Velodrome and None have no notion of grouped metadata.
  return Ok;
}

size_t ToolContext::numViolations() const {
  switch (Kind) {
  case ToolKind::None:
    return 0;
  case ToolKind::Atomicity:
    return Atomicity->violations().size();
  case ToolKind::Basic:
    return Basic->violations().size();
  case ToolKind::Velodrome:
    return Velodrome->numViolations();
  case ToolKind::Race:
    return Races->numRaces();
  case ToolKind::Determinism:
    return Determinism->numViolations();
  }
  avc_unreachable("unknown tool kind");
}

void ToolContext::printReport(std::FILE *Out) const {
  std::fprintf(Out, "[%s] %zu violation(s)\n", toolKindName(Kind),
               numViolations());
  auto PrintLog = [&](const ViolationLog &Log) {
    for (const Violation &V : Log.snapshot())
      std::fprintf(Out, "  %s\n", V.toString().c_str());
  };
  if (Atomicity)
    PrintLog(Atomicity->violations());
  if (Basic)
    PrintLog(Basic->violations());
  if (Races)
    for (const Race &R : Races->races())
      std::fprintf(Out, "  %s\n", R.toString().c_str());
  if (Determinism)
    for (const DeterminismViolation &V : Determinism->violations())
      std::fprintf(Out, "  %s\n", V.toString().c_str());
  if (Velodrome)
    for (const VelodromeCycle &Cycle : Velodrome->cycles())
      std::fprintf(Out,
                   "  unserializable transaction in observed trace: edge "
                   "S%u -> S%u closed a cycle (location 0x%llx)\n",
                   Cycle.Source, Cycle.Target,
                   static_cast<unsigned long long>(Cycle.Addr));
}
