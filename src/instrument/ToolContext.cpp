//===- instrument/ToolContext.cpp - One-stop tool front end ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "instrument/ToolContext.h"

#include <cassert>

#include "checker/ToolRegistry.h"
#include "obs/Obs.h"
#include "support/Compiler.h"

using namespace avc;

static TaskRuntime::Options runtimeOptions(unsigned NumThreads) {
  TaskRuntime::Options Opts;
  Opts.NumThreads = NumThreads;
  return Opts;
}

ToolContext::ToolContext(Options Opts)
    : Kind(Opts.Tool), ProfilePath(Opts.Checker.ProfilePath),
      RT(runtimeOptions(Opts.Checker.NumThreads)) {
  const ToolRegistration *Reg = ToolRegistry::instance().find(Kind);
  assert(Reg && "tool kind missing from the registry");
  if (Reg && Reg->Factory) {
    Tool_ = Reg->Factory(Opts.Checker, Opts.Extras);
    RT.addObserver(Tool_.get());
  }
}

ToolContext::ToolContext(ToolKind Kind, unsigned NumThreads)
    : ToolContext([&] {
        Options Opts;
        Opts.Tool = Kind;
        Opts.Checker.NumThreads = NumThreads;
        return Opts;
      }()) {}

ToolContext::~ToolContext() = default;

void ToolContext::registerObsGauges() {
  if (Tool_)
    Tool_->registerObsGauges();
}

void ToolContext::run(std::function<void()> Root) {
  if (ProfilePath.empty()) {
    RT.run(std::move(Root));
    return;
  }
  // Profiled run: record between session begin and end. RT.run returns
  // only after the root group drains and onProgramEnd fires, so the drain
  // in endSession happens at task quiescence (workers may still spin for
  // work, but record nothing — steal *attempts* are not instrumented).
  bool Recording = obs::beginSession();
  if (Recording)
    registerObsGauges();
  RT.run(std::move(Root));
  if (Recording)
    obs::endSession(ProfilePath);
}

bool ToolContext::registerAtomicGroup(const MemAddr *Members, size_t Count) {
  if (!Tool_)
    return true;
  return Tool_->registerAtomicGroup(Members, Count);
}

size_t ToolContext::numViolations() const {
  return Tool_ ? Tool_->numViolations() : 0;
}

void ToolContext::printReport(std::FILE *Out) const {
  std::fprintf(Out, "[%s] %zu violation(s)\n", toolKindName(Kind),
               numViolations());
  if (Tool_)
    Tool_->printReport(Out);
}
