//===- support/Statistics.h - Aggregation helpers --------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small numeric aggregation helpers used by the benchmark harnesses: the
/// paper reports per-benchmark averages over five runs and a geometric-mean
/// slowdown summary.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_STATISTICS_H
#define AVC_SUPPORT_STATISTICS_H

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace avc {

/// Returns the arithmetic mean of \p Values; 0 for an empty vector.
inline double arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

/// Returns the geometric mean of \p Values, which must all be positive;
/// 0 for an empty vector. Used for the Figure 13/14 slowdown summaries.
inline double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Returns the minimum of \p Values; 0 for an empty vector.
inline double minimum(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Min = Values.front();
  for (double V : Values)
    Min = V < Min ? V : Min;
  return Min;
}

} // namespace avc

#endif // AVC_SUPPORT_STATISTICS_H
