//===- support/RadixTable.h - Concurrent two-level radix table -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free-on-read two-level radix table mapping dense integer keys to
/// default-constructed slots. Used for the task-id -> checker-state table:
/// task ids are assigned densely by the runtime but spawn callbacks can
/// arrive out of order across workers, so an append-only vector does not
/// work, and a hash map on the memory-access hot path would be too slow.
///
/// Leaves are allocated on demand with a CAS; a losing allocator deletes its
/// copy. Existing slots never move, so references remain valid for the table
/// lifetime. Two threads may touch the *same* slot only under their own
/// synchronization (our usage gives each task id a single owner at a time).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_RADIXTABLE_H
#define AVC_SUPPORT_RADIXTABLE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace avc {

/// Concurrent radix table over keys in [0, 2^(TopBits + LeafBits)).
template <typename T, unsigned TopBits = 14, unsigned LeafBits = 12>
class RadixTable {
  static constexpr size_t TopSize = size_t(1) << TopBits;
  static constexpr size_t LeafSize = size_t(1) << LeafBits;
  static constexpr size_t LeafMask = LeafSize - 1;

public:
  RadixTable() {
    Top = std::make_unique<std::atomic<T *>[]>(TopSize);
    for (size_t I = 0; I < TopSize; ++I)
      Top[I].store(nullptr, std::memory_order_relaxed);
  }

  RadixTable(const RadixTable &) = delete;
  RadixTable &operator=(const RadixTable &) = delete;

  ~RadixTable() {
    for (size_t I = 0; I < TopSize; ++I)
      delete[] Top[I].load(std::memory_order_relaxed);
  }

  /// Returns the slot for \p Key, allocating its leaf if needed.
  T &getOrCreate(uint64_t Key) {
    assert(Key < (uint64_t(1) << (TopBits + LeafBits)) &&
           "radix table key out of range");
    size_t TopIndex = Key >> LeafBits;
    T *Leaf = Top[TopIndex].load(std::memory_order_acquire);
    if (!Leaf) {
      T *Fresh = new T[LeafSize]();
      if (Top[TopIndex].compare_exchange_strong(Leaf, Fresh,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        Leaf = Fresh;
      } else {
        delete[] Fresh; // another thread won the race
      }
    }
    return Leaf[Key & LeafMask];
  }

  /// Returns the slot for \p Key, or nullptr if its leaf was never created.
  T *lookup(uint64_t Key) {
    size_t TopIndex = Key >> LeafBits;
    if (TopIndex >= TopSize)
      return nullptr;
    T *Leaf = Top[TopIndex].load(std::memory_order_acquire);
    return Leaf ? &Leaf[Key & LeafMask] : nullptr;
  }

private:
  std::unique_ptr<std::atomic<T *>[]> Top;
};

} // namespace avc

#endif // AVC_SUPPORT_RADIXTABLE_H
