//===- support/Timing.h - Monotonic wall-clock timer -----------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timing helpers for the overhead experiments (Figures 13/14).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_TIMING_H
#define AVC_SUPPORT_TIMING_H

#include <chrono>
#include <cstdint>

namespace avc {

/// Returns a monotonic timestamp in nanoseconds.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Measures elapsed wall-clock time from construction.
class Timer {
public:
  Timer() : Start(nowNanos()) {}

  uint64_t elapsedNanos() const { return nowNanos() - Start; }

  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

  void reset() { Start = nowNanos(); }

private:
  uint64_t Start;
};

} // namespace avc

#endif // AVC_SUPPORT_TIMING_H
