//===- support/PointerMap.h - Open-addressing pointer-keyed map -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linear-probing hash map keyed by non-null pointers, tuned for the
/// checker's per-task local metadata: one lookup per tracked memory access
/// is the hot path of the entire tool, and std::unordered_map's node
/// allocation and bucket indirection cost several times more than this
/// flat table. Not thread safe (each task's map has a single owner).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_POINTERMAP_H
#define AVC_SUPPORT_POINTERMAP_H

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace avc {

/// Flat hash map from non-null pointers to values.
template <typename KeyT, typename ValueT> class PointerMap {
  static_assert(std::is_pointer_v<KeyT>, "keys must be pointers");

public:
  PointerMap() { Slots.resize(InitialSlots); }

  /// Returns the value for \p Key, default-constructing it on first use.
  ValueT &operator[](KeyT Key) {
    assert(Key != nullptr && "null keys are reserved for empty slots");
    if ((Count + 1) * 4 > Slots.size() * 3)
      grow();
    size_t Index = probeFor(Key);
    if (Slots[Index].Key == nullptr) {
      Slots[Index].Key = Key;
      ++Count;
    }
    return Slots[Index].Value;
  }

  /// Returns the value for \p Key or nullptr if absent.
  ValueT *lookup(KeyT Key) {
    size_t Index = probeFor(Key);
    return Slots[Index].Key == Key ? &Slots[Index].Value : nullptr;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Storage generation: bumped whenever value references may have been
  /// invalidated (a rehashing grow() or a clear()). Callers that memoize
  /// `&map[key]` (the checker's access-path cache) compare generations
  /// instead of re-probing; a stale generation costs one re-lookup.
  uint32_t generation() const { return Gen; }

  /// Drops all entries (keeps the table storage).
  void clear() {
    for (Slot &S : Slots) {
      S.Key = nullptr;
      S.Value = ValueT();
    }
    Count = 0;
    ++Gen;
  }

private:
  static constexpr size_t InitialSlots = 16;

  struct Slot {
    KeyT Key = nullptr;
    ValueT Value;
  };

  static size_t hashPointer(KeyT Key) {
    // Fibonacci hash over the address; low bits of heap pointers repeat.
    return static_cast<size_t>(
        (reinterpret_cast<uintptr_t>(Key) >> 4) * 0x9e3779b97f4a7c15ULL);
  }

  size_t probeFor(KeyT Key) const {
    size_t Mask = Slots.size() - 1;
    size_t Index = hashPointer(Key) & Mask;
    while (Slots[Index].Key != nullptr && Slots[Index].Key != Key)
      Index = (Index + 1) & Mask;
    return Index;
  }

  void grow() {
    ++Gen; // every value reference moves
    std::vector<Slot> Old = std::move(Slots);
    Slots.clear();
    Slots.resize(Old.size() * 2);
    Count = 0;
    for (Slot &S : Old)
      if (S.Key != nullptr) {
        size_t Index = probeFor(S.Key);
        Slots[Index].Key = S.Key;
        Slots[Index].Value = std::move(S.Value);
        ++Count;
      }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
  uint32_t Gen = 0;
};

} // namespace avc

#endif // AVC_SUPPORT_POINTERMAP_H
