//===- support/Compiler.h - Portable compiler annotations -------*- C++ -*-===//
//
// Part of TaskCheck, a reproduction of "Atomicity Violation Checker for Task
// Parallel Programs" (Yoga & Nagarakatte, CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used throughout the library. The library avoids
/// exceptions and RTTI; programmatic errors abort via avc_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_COMPILER_H
#define AVC_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define AVC_LIKELY(X) __builtin_expect(!!(X), 1)
#define AVC_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define AVC_NOINLINE __attribute__((noinline))
#define AVC_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define AVC_LIKELY(X) (X)
#define AVC_UNLIKELY(X) (X)
#define AVC_NOINLINE
#define AVC_ALWAYS_INLINE inline
#endif

/// Presumed cache-line size for alignment of per-worker / per-task hot
/// state (std::hardware_destructive_interference_size is still flaky
/// across standard libraries).
#define AVC_CACHELINE_SIZE 64

namespace avc {

/// Prints \p Msg with source location and aborts. Used to document control
/// flow that must be unreachable when the library's invariants hold.
[[noreturn]] inline void unreachableInternal(const char *Msg, const char *File,
                                             unsigned Line) {
  std::fprintf(stderr, "fatal: unreachable executed at %s:%u: %s\n", File,
               Line, Msg);
  std::abort();
}

} // namespace avc

#define avc_unreachable(MSG) ::avc::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // AVC_SUPPORT_COMPILER_H
