//===- support/SpinLock.h - Tiny test-and-test-and-set lock -----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A one-byte spin lock used to protect per-location checker metadata, where
/// critical sections are a handful of loads and stores and a full std::mutex
/// (40 bytes, futex syscalls under contention) would dominate the metadata
/// footprint the paper is trying to keep fixed.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_SPINLOCK_H
#define AVC_SUPPORT_SPINLOCK_H

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace avc {

/// Pauses the CPU briefly inside a spin-wait loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

/// A test-and-test-and-set spin lock. Satisfies BasicLockable so it works
/// with std::lock_guard.
class SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() {
    while (Flag.exchange(true, std::memory_order_acquire)) {
      // Spin briefly, then yield: with more workers than cores the holder
      // may be descheduled, and burning the holder's quantum on pause
      // loops inverts the lock's cost model.
      unsigned Spins = 0;
      while (Flag.load(std::memory_order_relaxed)) {
        if (++Spins < 64)
          cpuRelax();
        else {
          Spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

  bool try_lock() { return !Flag.exchange(true, std::memory_order_acquire); }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace avc

#endif // AVC_SUPPORT_SPINLOCK_H
