//===- support/Random.h - Deterministic PRNG for tests/benches -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based pseudo-random generator. The trace generator, property
/// tests, and workload input synthesis all need *reproducible* randomness so
/// a failing seed can be replayed; std::mt19937 would work but this is
/// smaller, faster, and trivially seedable per test case.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_RANDOM_H
#define AVC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace avc {

/// Deterministic 64-bit PRNG (SplitMix64). Never returns the same stream for
/// two different seeds in practice and passes basic statistical tests; good
/// enough for workload synthesis, not for cryptography.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniformly distributed value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift trick; bias is negligible for our bounds (<< 2^32).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Returns a value in the inclusive range [Lo, Hi].
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Returns true with probability \p Num / \p Den.
  bool nextChance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && "zero denominator");
    return nextBelow(Den) < Num;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  uint64_t State;
};

} // namespace avc

#endif // AVC_SUPPORT_RANDOM_H
