//===- support/ArgParse.h - Tiny command-line parser ------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared `--name=value` / `--name value` parsing for the front-end
/// binaries (taskcheck and the bench harness). Two modes:
///
///   - parse():      strict; an unregistered argument is an error.
///   - parseKnown(): extraction; registered arguments are consumed and
///                   argv is compacted in place, everything else is left
///                   for a downstream parser (google-benchmark rejects
///                   flags it does not know, so ours must not reach it).
///
/// Options registered with removed() produce a hard error pointing the
/// user at the replacement — the one-release migration path for renamed
/// flags.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_ARGPARSE_H
#define AVC_SUPPORT_ARGPARSE_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace avc {

/// Returns true if \p Path can be opened for writing. Probes in append
/// mode so an existing file is not truncated by the check itself; the
/// point is to let --json/--profile fail before a long run, not after.
inline bool ensureWritableFile(const std::string &Path) {
  std::ofstream Probe(Path, std::ios::app);
  return Probe.good();
}

class ArgParser {
public:
  /// Receives the option's value; returns false to abort parsing after
  /// printing its own diagnostic.
  using ValueHandler = std::function<bool(const char *Value)>;

  /// Registers `--name` (no value); presence sets \p Out to true.
  ArgParser &flag(std::string Name, bool &Out) {
    Specs.push_back({std::move(Name), Kind::Flag, &Out, nullptr, {}});
    return *this;
  }

  /// Registers `--name=V` / `--name V` with a custom handler.
  ArgParser &option(std::string Name, ValueHandler Handler) {
    Specs.push_back(
        {std::move(Name), Kind::Value, nullptr, std::move(Handler), {}});
    return *this;
  }

  /// Registers a removed option: any use errors with \p Message appended
  /// after the option name (e.g. "was removed; use --access-cache=off").
  ArgParser &removed(std::string Name, std::string Message) {
    Specs.push_back(
        {std::move(Name), Kind::Removed, nullptr, nullptr,
         std::move(Message)});
    return *this;
  }

  /// Typed conveniences over option().
  ArgParser &stringOption(std::string Name, std::string &Out) {
    return option(std::move(Name), [&Out](const char *V) {
      Out = V;
      return true;
    });
  }

  ArgParser &doubleOption(std::string Name, double &Out) {
    std::string Diag = Name;
    return option(std::move(Name), [Diag, &Out](const char *V) {
      char *End = nullptr;
      double Parsed = std::strtod(V, &End);
      if (End == V || *End != '\0') {
        std::fprintf(stderr, "error: --%s wants a number, got '%s'\n",
                     Diag.c_str(), V);
        return false;
      }
      Out = Parsed;
      return true;
    });
  }

  ArgParser &unsignedOption(std::string Name, unsigned &Out) {
    std::string Diag = Name;
    return option(std::move(Name), [Diag, &Out](const char *V) {
      uint64_t Parsed;
      if (!parseUint(Diag.c_str(), V, UINT32_MAX, Parsed))
        return false;
      Out = static_cast<unsigned>(Parsed);
      return true;
    });
  }

  ArgParser &u32Option(std::string Name, uint32_t &Out) {
    std::string Diag = Name;
    return option(std::move(Name), [Diag, &Out](const char *V) {
      uint64_t Parsed;
      if (!parseUint(Diag.c_str(), V, UINT32_MAX, Parsed))
        return false;
      Out = static_cast<uint32_t>(Parsed);
      return true;
    });
  }

  ArgParser &u64Option(std::string Name, uint64_t &Out) {
    std::string Diag = Name;
    return option(std::move(Name), [Diag, &Out](const char *V) {
      return parseUint(Diag.c_str(), V, UINT64_MAX, Out);
    });
  }

  /// Registers `--name=V` whose value must be one of a set of choices
  /// supplied by \p Choices — a callback so the set can come from a
  /// runtime registry rather than a literal. An out-of-set value errors
  /// listing every accepted choice; an in-set value is stored in \p Out.
  ArgParser &
  choiceOption(std::string Name, std::string &Out,
               std::function<std::vector<std::string>()> Choices) {
    std::string Diag = Name;
    return option(std::move(Name),
                  [Diag, &Out, Choices = std::move(Choices)](const char *V) {
                    std::vector<std::string> Allowed = Choices();
                    for (const std::string &Choice : Allowed)
                      if (Choice == V) {
                        Out = V;
                        return true;
                      }
                    std::string List;
                    for (const std::string &Choice : Allowed) {
                      if (!List.empty())
                        List += ", ";
                      List += Choice;
                    }
                    std::fprintf(stderr,
                                 "error: --%s got unknown value '%s' "
                                 "(choices: %s)\n",
                                 Diag.c_str(), V, List.c_str());
                    return false;
                  });
  }

  /// Strict parse: every argument must match a registered option.
  bool parse(int Argc, char **Argv) {
    for (int I = 1; I < Argc; ++I) {
      int Result = consume(Argc, Argv, I);
      if (Result < 0)
        return false;
      if (Result == 0) {
        std::fprintf(stderr, "error: unknown argument '%s'\n", Argv[I]);
        return false;
      }
    }
    return true;
  }

  /// Extraction parse: consumes registered options, compacting \p Argv in
  /// place so unmatched arguments survive for a downstream parser.
  bool parseKnown(int &Argc, char **Argv) {
    int Out = 1;
    for (int I = 1; I < Argc; ++I) {
      int Start = I;
      int Result = consume(Argc, Argv, I);
      if (Result < 0)
        return false;
      if (Result == 0)
        Argv[Out++] = Argv[Start];
    }
    Argc = Out;
    return true;
  }

private:
  enum class Kind : uint8_t { Flag, Value, Removed };

  struct Spec {
    std::string Name; ///< without the leading "--"
    Kind K;
    bool *FlagOut;
    ValueHandler Handler;
    std::string RemovedMessage;
  };

  static bool parseUint(const char *Name, const char *V, uint64_t Max,
                        uint64_t &Out) {
    char *End = nullptr;
    unsigned long long Parsed = std::strtoull(V, &End, 10);
    if (End == V || *End != '\0' || V[0] == '-' || Parsed > Max) {
      std::fprintf(stderr,
                   "error: --%s wants a non-negative integer, got '%s'\n",
                   Name, V);
      return false;
    }
    Out = Parsed;
    return true;
  }

  /// Tries to match Argv[I] (advancing I past a detached value). Returns
  /// 1 on match, 0 if unregistered, -1 on a reported error.
  int consume(int Argc, char **Argv, int &I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-' || Arg[1] != '-')
      return 0;
    const char *Body = Arg + 2;
    const char *Eq = std::strchr(Body, '=');
    size_t NameLen = Eq ? static_cast<size_t>(Eq - Body) : std::strlen(Body);
    for (const Spec &S : Specs) {
      if (S.Name.size() != NameLen ||
          std::memcmp(S.Name.data(), Body, NameLen) != 0)
        continue;
      switch (S.K) {
      case Kind::Removed:
        std::fprintf(stderr, "error: --%s %s\n", S.Name.c_str(),
                     S.RemovedMessage.c_str());
        return -1;
      case Kind::Flag:
        if (Eq) {
          std::fprintf(stderr, "error: --%s does not take a value\n",
                       S.Name.c_str());
          return -1;
        }
        *S.FlagOut = true;
        return 1;
      case Kind::Value: {
        const char *Value;
        if (Eq) {
          Value = Eq + 1;
        } else if (I + 1 < Argc) {
          Value = Argv[++I];
        } else {
          std::fprintf(stderr, "error: --%s requires a value\n",
                       S.Name.c_str());
          return -1;
        }
        return S.Handler(Value) ? 1 : -1;
      }
      }
    }
    return 0;
  }

  std::vector<Spec> Specs;
};

} // namespace avc

#endif // AVC_SUPPORT_ARGPARSE_H
