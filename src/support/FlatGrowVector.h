//===- support/FlatGrowVector.h - Flat array with retiring growth -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A truly *flat* growable array for the DPST's hot node records: one
/// contiguous block, indexed with a single load per element — the layout
/// the paper's "DPST overlaid in a linear array of nodes" optimization
/// describes. Growth copies into a larger block and publishes it; the old
/// block is retired (not freed) until destruction, so a reader that
/// snapshotted the previous block still sees valid data for every index it
/// could legitimately know about.
///
/// Element addresses are NOT stable across growth (unlike ChunkedVector);
/// readers must go through indices and may cache a snapshot() pointer for
/// the duration of one query. Requires trivially copyable elements.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_FLATGROWVECTOR_H
#define AVC_SUPPORT_FLATGROWVECTOR_H

#include <atomic>
#include <cassert>
#include <cstring>
#include <mutex>
#include <type_traits>
#include <vector>

#include "support/SpinLock.h"

namespace avc {

/// Contiguous growable array with copy-and-retire growth.
template <typename T> class FlatGrowVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "growth memcpys elements into the larger block");
  static constexpr size_t InitialCapacity = 1024;

public:
  FlatGrowVector() {
    Base.store(new T[InitialCapacity], std::memory_order_relaxed);
    Capacity = InitialCapacity;
  }

  FlatGrowVector(const FlatGrowVector &) = delete;
  FlatGrowVector &operator=(const FlatGrowVector &) = delete;

  ~FlatGrowVector() {
    delete[] Base.load(std::memory_order_relaxed);
    for (T *Old : Retired)
      delete[] Old;
  }

  /// Appends a copy of \p Value; returns its index. Serialized internally.
  size_t pushBack(const T &Value) {
    std::lock_guard<SpinLock> Guard(GrowLock);
    size_t Index = Count.load(std::memory_order_relaxed);
    T *Block = Base.load(std::memory_order_relaxed);
    if (Index == Capacity) {
      T *Bigger = new T[Capacity * 2];
      std::memcpy(Bigger, Block, sizeof(T) * Capacity);
      Base.store(Bigger, std::memory_order_release);
      Retired.push_back(Block);
      Block = Bigger;
      Capacity *= 2;
    }
    Block[Index] = Value;
    Count.store(Index + 1, std::memory_order_release);
    return Index;
  }

  /// Appends \p N contiguous elements from \p Data in one locked section;
  /// returns the index of the first. The elements are published together,
  /// so a reader never observes a partial row (the DPST query index stores
  /// variable-length binary-lifting rows this way).
  size_t pushBackSpan(const T *Data, size_t N) {
    std::lock_guard<SpinLock> Guard(GrowLock);
    size_t Index = Count.load(std::memory_order_relaxed);
    T *Block = Base.load(std::memory_order_relaxed);
    if (Index + N > Capacity) {
      size_t NewCapacity = Capacity;
      while (Index + N > NewCapacity)
        NewCapacity *= 2;
      T *Bigger = new T[NewCapacity];
      std::memcpy(Bigger, Block, sizeof(T) * Index);
      Base.store(Bigger, std::memory_order_release);
      Retired.push_back(Block);
      Block = Bigger;
      Capacity = NewCapacity;
    }
    std::memcpy(Block + Index, Data, sizeof(T) * N);
    Count.store(Index + N, std::memory_order_release);
    return Index;
  }

  /// Mutates an existing element under the growth lock (rare, e.g. a
  /// parent's child counter); safe against concurrent growth.
  template <typename FnT> void update(size_t Index, FnT Fn) {
    std::lock_guard<SpinLock> Guard(GrowLock);
    assert(Index < Count.load(std::memory_order_relaxed) &&
           "update out of range");
    Fn(Base.load(std::memory_order_relaxed)[Index]);
  }

  /// Read access; safe concurrently with appends.
  T operator[](size_t Index) const {
    assert(Index < size() && "FlatGrowVector index out of range");
    return Base.load(std::memory_order_acquire)[Index];
  }

  /// Snapshot of the current block for batched reads (one query's walk).
  /// Valid for every index published before the snapshot was taken.
  const T *snapshot() const { return Base.load(std::memory_order_acquire); }

  size_t size() const { return Count.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

private:
  std::atomic<T *> Base{nullptr};
  std::vector<T *> Retired; // guarded by GrowLock
  size_t Capacity = 0;      // guarded by GrowLock
  std::atomic<size_t> Count{0};
  SpinLock GrowLock;
};

} // namespace avc

#endif // AVC_SUPPORT_FLATGROWVECTOR_H
