//===- support/ChunkedVector.h - Stable-address growable array -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector-of-fixed-chunks container whose elements never move on growth.
/// The DPST needs this: the paper observes that "the path from a node to the
/// root ... do[es] not change" once a node exists, so concurrent LCA queries
/// may read nodes while other workers append — which a reallocating
/// std::vector would break. Indexing is O(1) (shift + mask).
///
/// The chunk-pointer table itself grows by copy-and-publish: the old table
/// is retired (not freed) until destruction, so a reader holding the old
/// table still sees valid chunk pointers for every index it could have
/// legitimately obtained.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_CHUNKEDVECTOR_H
#define AVC_SUPPORT_CHUNKEDVECTOR_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "support/SpinLock.h"

namespace avc {

/// Growable array with pointer-stable elements, organized as fixed-size
/// chunks of 2^ChunkBits elements.
///
/// Concurrency contract (exactly what the DPST needs):
///  - emplaceBack() calls are serialized by an internal lock;
///  - operator[] / unsafeAt() on an index < size() is safe concurrently
///    with appends;
///  - size() uses acquire ordering so a reader that obtained an index from
///    another thread sees the fully constructed element.
template <typename T, unsigned ChunkBits = 12> class ChunkedVector {
  static constexpr size_t ChunkSize = size_t(1) << ChunkBits;
  static constexpr size_t ChunkMask = ChunkSize - 1;
  static constexpr size_t InitialTableCapacity = 16;

public:
  ChunkedVector() {
    Table.store(newTable(InitialTableCapacity), std::memory_order_relaxed);
  }

  ChunkedVector(const ChunkedVector &) = delete;
  ChunkedVector &operator=(const ChunkedVector &) = delete;

  ~ChunkedVector() {
    clear();
    delete[] Table.load(std::memory_order_relaxed)->Slots;
    delete Table.load(std::memory_order_relaxed);
    for (PtrTable *Old : Retired) {
      delete[] Old->Slots;
      delete Old;
    }
  }

  /// Appends a new element and returns its index.
  template <typename... ArgTs> size_t emplaceBack(ArgTs &&...Args) {
    std::lock_guard<SpinLock> Guard(GrowLock);
    size_t Index = Count.load(std::memory_order_relaxed);
    size_t Chunk = Index >> ChunkBits;
    PtrTable *Current = Table.load(std::memory_order_relaxed);
    if (Chunk == NumChunks) {
      if (Chunk == Current->Capacity)
        Current = growTable(Current);
      Current->Slots[Chunk] = static_cast<T *>(::operator new(
          sizeof(T) * ChunkSize, std::align_val_t(alignof(T))));
      ++NumChunks;
    }
    ::new (&Current->Slots[Chunk][Index & ChunkMask])
        T(std::forward<ArgTs>(Args)...);
    Count.store(Index + 1, std::memory_order_release);
    return Index;
  }

  T &operator[](size_t Index) {
    assert(Index < size() && "ChunkedVector index out of range");
    return slotsAcquire()[Index >> ChunkBits][Index & ChunkMask];
  }

  const T &operator[](size_t Index) const {
    assert(Index < size() && "ChunkedVector index out of range");
    return slotsAcquire()[Index >> ChunkBits][Index & ChunkMask];
  }

  /// Unchecked access for hot read paths (an LCA walk dereferences a
  /// parent chain whose indices are valid by construction; the checked
  /// operator[] pays an extra acquire load of the size per hop).
  const T &unsafeAt(size_t Index) const {
    return slotsAcquire()[Index >> ChunkBits][Index & ChunkMask];
  }

  size_t size() const { return Count.load(std::memory_order_acquire); }

  bool empty() const { return size() == 0; }

  /// Destroys all elements and releases chunk storage. Not thread safe.
  void clear() {
    size_t N = Count.load(std::memory_order_relaxed);
    PtrTable *Current = Table.load(std::memory_order_relaxed);
    for (size_t I = 0; I < N; ++I)
      Current->Slots[I >> ChunkBits][I & ChunkMask].~T();
    for (size_t C = 0; C < NumChunks; ++C)
      ::operator delete(Current->Slots[C], std::align_val_t(alignof(T)));
    NumChunks = 0;
    Count.store(0, std::memory_order_relaxed);
  }

private:
  struct PtrTable {
    size_t Capacity;
    T **Slots;
  };

  static PtrTable *newTable(size_t Capacity) {
    PtrTable *Fresh = new PtrTable;
    Fresh->Capacity = Capacity;
    Fresh->Slots = new T *[Capacity]();
    return Fresh;
  }

  PtrTable *growTable(PtrTable *Current) {
    PtrTable *Bigger = newTable(Current->Capacity * 2);
    for (size_t C = 0; C < NumChunks; ++C)
      Bigger->Slots[C] = Current->Slots[C];
    Table.store(Bigger, std::memory_order_release);
    Retired.push_back(Current); // readers may still hold it
    return Bigger;
  }

  T *const *slotsAcquire() const {
    return Table.load(std::memory_order_acquire)->Slots;
  }

  std::atomic<PtrTable *> Table{nullptr};
  std::vector<PtrTable *> Retired; // guarded by GrowLock
  size_t NumChunks = 0;            // guarded by GrowLock
  std::atomic<size_t> Count{0};
  SpinLock GrowLock;
};

} // namespace avc

#endif // AVC_SUPPORT_CHUNKEDVECTOR_H
