//===- support/JsonReport.h - Machine-readable result emitter --*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The {"meta": {...}, "rows": [...]} JSON emitter shared by the bench
/// binaries (--json=PATH) and taskcheck --json. Lives in support/ so the
/// tools can emit per-run counter reports without depending on the bench
/// harness; one shape everywhere keeps downstream tooling
/// (tools/bench_compare.py, CI smoke checks) trivial.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_SUPPORT_JSONREPORT_H
#define AVC_SUPPORT_JSONREPORT_H

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace avc {

/// Renders a JSON string literal. Quotes, backslashes, and control bytes
/// are the only escapes our identifiers can need.
inline std::string jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      (Out += '\\') += C;
    else if (static_cast<unsigned char>(C) < 0x20) {
      char Buffer[8];
      std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
      Out += Buffer;
    } else
      Out += C;
  }
  Out += '"';
  return Out;
}

/// Renders a JSON number; non-finite values (a zero-time baseline makes a
/// slowdown infinite) become null rather than invalid JSON.
inline std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%.6g", V);
  return std::string(Buffer);
}

/// Accumulates one experiment's results as {"meta": {...}, "rows": [...]}
/// and writes them to the path given via --json. One shape across
/// taskcheck/fig13/fig14/micro binaries so downstream tooling parses them
/// uniformly.
class JsonReport {
public:
  class Row {
  public:
    Row &field(const std::string &Key, const std::string &Value) {
      Fields.push_back({Key, jsonQuote(Value)});
      return *this;
    }
    Row &field(const std::string &Key, const char *Value) {
      return field(Key, std::string(Value));
    }
    Row &field(const std::string &Key, double Value) {
      Fields.push_back({Key, jsonNumber(Value)});
      return *this;
    }

  private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> Fields;
  };

  void meta(const std::string &Key, const std::string &Value) {
    Meta.push_back({Key, jsonQuote(Value)});
  }
  void meta(const std::string &Key, double Value) {
    Meta.push_back({Key, jsonNumber(Value)});
  }

  /// Starts a new result row; fill it with chained field() calls.
  Row &row() {
    Rows.emplace_back();
    return Rows.back();
  }

  /// Writes the report; returns false (with a message on stderr) if the
  /// file cannot be created.
  bool write(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return false;
    }
    Out << "{\n  \"meta\": {";
    for (size_t I = 0; I < Meta.size(); ++I)
      Out << (I ? ", " : "") << jsonQuote(Meta[I].first) << ": "
          << Meta[I].second;
    Out << "},\n  \"rows\": [\n";
    for (size_t R = 0; R < Rows.size(); ++R) {
      Out << "    {";
      const auto &Fields = Rows[R].Fields;
      for (size_t I = 0; I < Fields.size(); ++I)
        Out << (I ? ", " : "") << jsonQuote(Fields[I].first) << ": "
            << Fields[I].second;
      Out << (R + 1 < Rows.size() ? "},\n" : "}\n");
    }
    Out << "  ]\n}\n";
    std::printf("wrote %s\n", Path.c_str());
    return true;
  }

private:
  std::vector<std::pair<std::string, std::string>> Meta;
  std::vector<Row> Rows;
};

} // namespace avc

#endif // AVC_SUPPORT_JSONREPORT_H
