//===- workloads/Delrefine.cpp - Delaunay refinement worklist -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PBBS delrefine analogue: repeated parallel sweeps over a triangle
/// quality array; "bad" triangles and a neighbour are repaired under a
/// region lock. The same tracked locations are revisited by new steps every
/// round, producing the high LCA-query count of the Table 1 row.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <memory>

#include "instrument/Tracked.h"
#include "runtime/Mutex.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runDelrefine(double Scale) {
  const size_t NumTriangles = scaled(20000, Scale, 128);
  const size_t NumRegions = 64;
  const size_t NumRounds = 8;
  const size_t RegionSize = (NumTriangles + NumRegions - 1) / NumRegions;

  TrackedArray<double> Quality(NumTriangles);
  auto RegionLocks = std::make_unique<Mutex[]>(NumRegions);

  for (size_t I = 0; I < NumTriangles; ++I)
    Quality[I].rawStore(hashToUnit(I));

  for (size_t Round = 0; Round < NumRounds; ++Round) {
    // The worklist is re-packed every round, shifting the triangle-to-
    // worker assignment so re-visits pair fresh step combinations.
    size_t Stride = coprimeStride(Round * 2473 + 5, NumTriangles);
    parallelFor<size_t>(0, NumTriangles, 64, [&, Round, Stride](size_t Lo,
                                                                size_t Hi) {
      for (size_t L = Lo; L < Hi; ++L) {
        size_t T = (L * Stride) % NumTriangles;
        // The quality test and the repair must sit in one critical
        // section: a neighbouring repair can rewrite Quality[T] at any
        // time, and a check outside the lock would be the classic
        // check-then-act atomicity bug (the checker flags it).
        size_t Region = T / RegionSize;
        size_t Neighbour = T + 1 < (Region + 1) * RegionSize &&
                                   T + 1 < NumTriangles
                               ? T + 1
                               : T;
        MutexGuard Guard(RegionLocks[Region]);
        double Q = Quality[T].load();
        if (Q + burnFlops(Q, 10) * 1e-12 >= 0.25) // well shaped
          continue;
        Quality[T].store(burnFlops(Q + 0.5, 20));
        if (Neighbour != T) {
          double NQ = Quality[Neighbour].load();
          Quality[Neighbour].store(NQ * 0.5 + 0.5);
        }
      }
    });
  }
}
