//===- workloads/Raycast.cpp - Ray-triangle casting -----------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PBBS raycast analogue: batches of rays traverse a large tracked
/// triangle soup, each ray probing a pseudo-random subset; between batches
/// a sequential refit pass rewrites a sliver of the triangles. Any given
/// triangle is touched by few, essentially random ray steps, so the
/// (step, step) pairs the checker queries almost never repeat — the
/// Table 1 row with the highest unique-LCA fraction (91%), which defeats
/// the LCA cache and makes raycast one of the most expensive benchmarks.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runRaycast(double Scale) {
  const size_t NumTriangles = scaled(48000, Scale, 64);
  const size_t NumRays = scaled(60000, Scale, 128);
  const size_t NumBatches = 4;
  const size_t TrianglesPerRay = 6;
  const size_t RaysPerBatch = NumRays / NumBatches;

  TrackedArray<double> Triangles(NumTriangles);
  TrackedArray<double> Hits(NumRays);

  for (size_t I = 0; I < NumTriangles; ++I)
    Triangles[I].rawStore(hashToUnit(I));

  for (size_t Batch = 0; Batch < NumBatches; ++Batch) {
    size_t Begin = Batch * RaysPerBatch;
    size_t End = Batch + 1 == NumBatches ? NumRays : Begin + RaysPerBatch;

    parallelFor<size_t>(Begin, End, 64, [&](size_t Lo, size_t Hi) {
      for (size_t Ray = Lo; Ray < Hi; ++Ray) {
        double Nearest = 1e30;
        for (size_t K = 0; K < TrianglesPerRay; ++K) {
          size_t T = static_cast<size_t>(
              hashToUnit(Ray * TrianglesPerRay + K) *
              static_cast<double>(NumTriangles));
          if (T >= NumTriangles)
            T = NumTriangles - 1;
          double Plane = Triangles[T].load();
          double Dist = burnFlops(Plane + hashToUnit(Ray), 8);
          Nearest = Dist < Nearest ? Dist : Nearest;
        }
        Hits[Ray].store(Nearest);
      }
    });

    // Sequential BVH refit between batches: rewrites a sliver of the soup
    // so the next batch's reads pair against fresh writer steps.
    size_t RefitBegin = (Batch * 131) % NumTriangles;
    for (size_t I = 0; I < NumTriangles / 32; ++I) {
      size_t T = (RefitBegin + I) % NumTriangles;
      Triangles[T].store(Triangles[T].load() * 0.5 + 0.5);
    }
  }
}
