//===- workloads/Nearestneigh.cpp - kd-tree nearest neighbours ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PBBS nearestneigh analogue: a kd-tree-like structure is built by
/// recursive parallel splitting (each split writes one tracked record),
/// then a parallel query phase walks the shared tracked splits — queries by
/// many parallel steps against data written by the (serial) build steps.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "runtime/TaskRuntime.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

namespace {

struct KdState {
  TrackedArray<double> Splits;
  size_t NumSplits;

  explicit KdState(size_t NumSplits)
      : Splits(NumSplits), NumSplits(NumSplits) {}
};

/// Builds the implicit tree node \p Node (heap order), spawning children.
void buildNode(KdState &State, size_t Node, size_t Depth) {
  if (Node >= State.NumSplits)
    return;
  State.Splits[Node].store(burnFlops(hashToUnit(Node), 8));
  if (Depth > 3) { // deep levels build serially, as PBBS does
    buildNode(State, 2 * Node + 1, Depth + 1);
    buildNode(State, 2 * Node + 2, Depth + 1);
    return;
  }
  TaskGroup Group;
  Group.run([&State, Node, Depth] {
    buildNode(State, 2 * Node + 1, Depth + 1);
  });
  buildNode(State, 2 * Node + 2, Depth + 1);
  Group.wait();
}

} // namespace

void avc::workloads::runNearestneigh(double Scale) {
  const size_t NumSplits = scaled(4095, Scale, 63);
  const size_t NumQueries = scaled(30000, Scale, 64);
  KdState State(NumSplits);

  buildNode(State, 0, 0);

  TrackedArray<double> Answers(NumQueries);
  constexpr size_t CachedTop = 127; // top 7 levels, cached per step
  parallelFor<size_t>(0, NumQueries, 64, [&](size_t Lo, size_t Hi) {
    // The hot top of the tree is read once per step (any real traversal
    // keeps it in cache); deeper nodes are probed per query, and each
    // query's path is distinct, pairing the step with varied builders.
    double Top[CachedTop];
    size_t TopCount =
        State.NumSplits < CachedTop ? State.NumSplits : CachedTop;
    for (size_t I = 0; I < TopCount; ++I)
      Top[I] = State.Splits[I].load();
    for (size_t Q = Lo; Q < Hi; ++Q) {
      size_t Node = 0;
      double Key = hashToUnit(Q);
      double Best = 1e30;
      while (Node < State.NumSplits) {
        double Split =
            Node < TopCount ? Top[Node] : State.Splits[Node].load();
        double Dist = (Key > Split ? Key - Split : Split - Key) +
                      burnFlops(Split, 2) * 1e-12;
        Best = Dist < Best ? Dist : Best;
        Node = Key < Split ? 2 * Node + 1 : 2 * Node + 2;
      }
      Answers[Q].store(burnFlops(Best, 12));
    }
  });
}
