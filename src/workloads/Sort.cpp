//===- workloads/Sort.cpp - Parallel sample sort --------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Structured Parallel Programming sort analogue, shaped like PBBS sample
/// sort: a parallel scatter redistributes elements into buckets (a
/// value-independent coprime-stride shuffle keeps it deterministic), a
/// parallel phase sorts each bucket, and the sorted buckets scatter back.
/// Each element is therefore touched by a handful of unrelated steps —
/// writer/reader pairs rarely repeat, matching the smallest Table 1 row's
/// profile (27K locations, 8K LCA queries, 57% unique).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <algorithm>
#include <vector>

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runSort(double Scale) {
  const size_t NumElements = scaled(20000, Scale, 64);
  TrackedArray<double> Data(NumElements);
  TrackedArray<double> Scratch(NumElements);

  for (size_t I = 0; I < NumElements; ++I)
    Data[I].rawStore(hashToUnit(I));

  const size_t ScatterStride = coprimeStride(48271, NumElements);
  const size_t GatherStride = coprimeStride(69621, NumElements);

  // Phase 1: scatter into buckets (read the input, write a shuffled slot).
  parallelFor<size_t>(0, NumElements, 128, [&](size_t Lo, size_t Hi) {
    for (size_t I = Lo; I < Hi; ++I) {
      double Value = Data[I].load();
      Scratch[(I * ScatterStride) % NumElements].store(
          Value + burnFlops(Value, 20) * 1e-12);
    }
  });

  // Phase 2: sort each bucket locally and scatter the ranks back. The
  // bucket's elements were written by many different phase-1 steps, and
  // the rank positions land in many different phase-1 reader steps.
  parallelFor<size_t>(0, NumElements, 128, [&](size_t Lo, size_t Hi) {
    std::vector<double> Bucket;
    Bucket.reserve(Hi - Lo);
    for (size_t I = Lo; I < Hi; ++I)
      Bucket.push_back(Scratch[I].load());
    std::sort(Bucket.begin(), Bucket.end());
    for (size_t I = Lo; I < Hi; ++I)
      Data[(I * GatherStride) % NumElements].store(
          Bucket[I - Lo] + burnFlops(Bucket[I - Lo], 20) * 1e-12);
  });

  // Phase 3: scattered order-verification scan. Each element's third
  // access pairs its phase-1/2 steps against an unrelated verifier step.
  const size_t VerifyStride = coprimeStride(16807, NumElements);
  parallelFor<size_t>(0, NumElements, 128, [&](size_t Lo, size_t Hi) {
    double Checksum = 0.0;
    for (size_t I = Lo; I < Hi; ++I)
      Checksum += burnFlops(Data[(I * VerifyStride) % NumElements].load(), 10);
    volatile double Sink = Checksum; // keep the scan alive
    (void)Sink;
  });
}
