//===- workloads/Karatsuba.cpp - Recursive big-number multiply ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Structured Parallel Programming karatsuba analogue: the classic 3-way
/// recursive multiplication. Each recursion level spawns two subproblems
/// and computes the third inline; leaves read tracked digit ranges and
/// write (then carry-fix, i.e. re-read and rewrite) tracked result digits.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/TaskRuntime.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

namespace {

struct KaratsubaState {
  TrackedArray<double> DigitsA;
  TrackedArray<double> DigitsB;
  TrackedArray<double> Result;

  explicit KaratsubaState(size_t NumDigits)
      : DigitsA(NumDigits), DigitsB(NumDigits), Result(NumDigits * 2) {}
};

/// Multiplies the digit range [Lo, Hi) of A and B into Result[2*Lo ...).
void multiplyRange(KaratsubaState &State, size_t Lo, size_t Hi,
                   size_t Leaf) {
  if (Hi - Lo <= Leaf) {
    // Schoolbook leaf: one pass reading inputs, one pass writing partial
    // products, one carry pass re-reading and rewriting them.
    for (size_t I = Lo; I < Hi; ++I) {
      double A = State.DigitsA[I].load();
      double B = State.DigitsB[I].load();
      State.Result[2 * I].store(burnFlops(A * B, 26));
    }
    for (size_t I = Lo; I < Hi; ++I) {
      double Partial = State.Result[2 * I].load();
      State.Result[2 * I + 1].store(Partial * 0.1 + burnFlops(Partial, 20) * 1e-12);
    }
    return;
  }
  size_t Third = (Hi - Lo) / 3;
  TaskGroup Group;
  Group.run([&State, Lo, Third, Leaf] {
    multiplyRange(State, Lo, Lo + Third, Leaf);
  });
  Group.run([&State, Lo, Third, Leaf] {
    multiplyRange(State, Lo + Third, Lo + 2 * Third, Leaf);
  });
  multiplyRange(State, Lo + 2 * Third, Hi, Leaf);
  Group.wait();

  // Karatsuba's recombination: the parent samples digits across the whole
  // child range (the shifted additions touch every leaf's output), re-
  // reading and rewriting what the now-joined child steps produced. These
  // cross-step accesses are where the real benchmark's LCA queries come
  // from, and each probe pairs the parent with a different leaf step.
  size_t Span = Hi - Lo;
  for (size_t K = 0; K < 32; ++K) {
    size_t I = Lo + (K * Span) / 32 + static_cast<size_t>(hashToUnit(Lo * 31 + K) * static_cast<double>(Span / 32 ? Span / 32 : 1));
    if (I >= Hi)
      I = Hi - 1;
    double Low = State.Result[2 * I].load();
    double High = State.Result[2 * I + 1].load();
    State.Result[2 * I].store(Low + High * 0.1);
  }
}

} // namespace

void avc::workloads::runKaratsuba(double Scale) {
  const size_t NumDigits = scaled(30000, Scale, 81);
  KaratsubaState State(NumDigits);
  for (size_t I = 0; I < NumDigits; ++I) {
    State.DigitsA[I].rawStore(hashToUnit(I * 2));
    State.DigitsB[I].rawStore(hashToUnit(I * 2 + 1));
  }
  multiplyRange(State, 0, NumDigits, 128);
}
