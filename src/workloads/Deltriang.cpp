//===- workloads/Deltriang.cpp - Incremental Delaunay triangulation -------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PBBS deltriang analogue: vertices are inserted in sequential batches;
/// each batch triangulates its vertices in parallel, writing fresh tracked
/// triangle records (locations mostly touched once) while consulting a
/// handful of shared tracked mesh roots — the Table 1 row with many
/// locations but relatively few LCA queries.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runDeltriang(double Scale) {
  const size_t NumVertices = scaled(40000, Scale, 256);
  const size_t NumBatches = 20;
  const size_t NumRoots = 4;
  const size_t BatchSize = NumVertices / NumBatches;

  TrackedArray<double> Triangles(NumVertices * 2);
  TrackedArray<double> MeshRoots(NumRoots);

  for (size_t I = 0; I < NumRoots; ++I)
    MeshRoots[I].rawStore(hashToUnit(I));

  for (size_t Batch = 0; Batch < NumBatches; ++Batch) {
    size_t Begin = Batch * BatchSize;
    size_t End = Batch + 1 == NumBatches ? NumVertices : Begin + BatchSize;

    parallelFor<size_t>(Begin, End, 128, [&](size_t Lo, size_t Hi) {
      // The walk roots are read once per step (the real code caches the
      // top of the mesh history DAG while inserting a batch).
      double LocalRoots[8];
      for (size_t R = 0; R < NumRoots; ++R)
        LocalRoots[R] = MeshRoots[R].load();
      for (size_t V = Lo; V < Hi; ++V) {
        double Root = LocalRoots[V % NumRoots];
        double Where = burnFlops(Root + hashToUnit(V), 14);
        // ... and emit two fresh triangle records (write then read-write:
        // the insertion fixes up the record it just created).
        Triangles[V * 2].store(Where);
        Triangles[V * 2 + 1].store(Triangles[V * 2].load() * 0.5);
      }
    });

    // The sequential parent advances the mesh roots between batches.
    for (size_t I = 0; I < NumRoots; ++I)
      MeshRoots[I].store(MeshRoots[I].load() + 1.0);
  }
}
