//===- workloads/Workloads.cpp - Benchmark registry ------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace avc::workloads;

const Workload *avc::workloads::allWorkloads(size_t &Count) {
  // Table 1 order.
  static const Workload Table[] = {
      {"blackscholes", runBlackscholes},
      {"bodytrack", runBodytrack},
      {"streamcluster", runStreamcluster},
      {"swaptions", runSwaptions},
      {"fluidanimate", runFluidanimate},
      {"convexhull", runConvexhull},
      {"delrefine", runDelrefine},
      {"deltriang", runDeltriang},
      {"karatsuba", runKaratsuba},
      {"kmeans", runKmeans},
      {"nearestneigh", runNearestneigh},
      {"raycast", runRaycast},
      {"sort", runSort},
  };
  Count = sizeof(Table) / sizeof(Table[0]);
  return Table;
}
