//===- workloads/Convexhull.cpp - Recursive quickhull ---------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PBBS convexhull analogue: quickhull-style recursive divide-and-conquer
/// over a point set. Deep spawn recursion (a large DPST), tracked reads of
/// the point coordinates in the leaves, and a lock-protected tracked hull
/// accumulator shared by all leaves.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/Mutex.h"
#include "runtime/TaskRuntime.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

namespace {

struct HullState {
  TrackedArray<double> PointX;
  Tracked<double> HullArea;
  Mutex HullLock;

  explicit HullState(size_t NumPoints) : PointX(NumPoints) {}
};

/// Recursively partitions [Lo, Hi); leaves scan their points and fold the
/// local extreme into the shared accumulator under the hull lock.
void solveRange(HullState &State, size_t Lo, size_t Hi, size_t Leaf) {
  if (Hi - Lo <= Leaf) {
    double Extreme = -1.0;
    for (size_t I = Lo; I < Hi; ++I) {
      double X = State.PointX[I].load();
      double Score = burnFlops(X, 10);
      Extreme = Score > Extreme ? Score : Extreme;
    }
    MutexGuard Guard(State.HullLock);
    State.HullArea.store(State.HullArea.load() + Extreme);
    return;
  }
  size_t Mid = Lo + (Hi - Lo) / 2;
  TaskGroup Group;
  Group.run([&State, Mid, Hi, Leaf] { solveRange(State, Mid, Hi, Leaf); });
  solveRange(State, Lo, Mid, Leaf);
  Group.wait();
}

} // namespace

void avc::workloads::runConvexhull(double Scale) {
  const size_t NumPoints = scaled(120000, Scale, 128);
  HullState State(NumPoints);
  for (size_t I = 0; I < NumPoints; ++I)
    State.PointX[I].rawStore(hashToUnit(I) * 2.0 - 1.0);
  solveRange(State, 0, NumPoints, 64);
}
