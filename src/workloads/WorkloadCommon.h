//===- workloads/WorkloadCommon.h - Shared kernel helpers ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the benchmark kernels: deterministic input synthesis
/// and a cheap transcendental-ish flop kernel that stands in for the real
/// applications' per-element computation (the compute-to-tracked-access
/// ratio is what positions the instrumentation overhead).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_WORKLOADS_WORKLOADCOMMON_H
#define AVC_WORKLOADS_WORKLOADCOMMON_H

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "support/Random.h"

namespace avc {
namespace workloads {

/// Scales a default size, with a floor of \p Min.
inline size_t scaled(size_t Default, double Scale, size_t Min = 1) {
  double Value = static_cast<double>(Default) * Scale;
  if (Value < static_cast<double>(Min))
    return Min;
  return static_cast<size_t>(Value);
}

/// A few dozen floating-point operations; the stand-in "real work" between
/// tracked accesses. Returns a value derived from \p X so the compiler
/// cannot elide the computation.
inline double burnFlops(double X, unsigned Rounds = 4) {
  double Acc = X;
  for (unsigned I = 0; I < Rounds; ++I) {
    Acc = Acc * 1.6180339887 + 0.5772156649;
    Acc = Acc - static_cast<double>(static_cast<long long>(Acc));
    Acc = Acc * Acc + 0.25;
    Acc = Acc / (1.0 + Acc);
  }
  return Acc;
}

/// Deterministic pseudo-random double in [0, 1) from an index.
inline double hashToUnit(uint64_t Index) {
  SplitMix64 Rng(Index * 0x9e3779b97f4a7c15ULL + 1);
  return Rng.nextDouble();
}

/// Smallest odd stride >= Seed coprime with N; L -> (L * Stride) % N is
/// then a bijection on [0, N). The kernels use this to reshuffle the
/// element-to-worker assignment between rounds, the way work stealing and
/// repartitioning do in the real applications.
inline size_t coprimeStride(size_t Seed, size_t N) {
  size_t Stride = Seed | 1;
  auto Gcd = [](size_t A, size_t B) {
    while (B != 0) {
      size_t T = A % B;
      A = B;
      B = T;
    }
    return A;
  };
  while (Gcd(Stride, N) != 1)
    Stride += 2;
  return Stride;
}

} // namespace workloads
} // namespace avc

#endif // AVC_WORKLOADS_WORKLOADCOMMON_H
