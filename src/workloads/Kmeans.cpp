//===- workloads/Kmeans.cpp - Iterative clustering ------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Structured Parallel Programming kmeans analogue. Every iteration
/// re-reads and rewrites the tracked per-point feature vector; the points
/// are visited in an iteration-dependent coprime-stride permutation (work
/// stealing and repartitioning shuffle point-to-worker assignment in the
/// real benchmark), so the (previous step, current step) pairs the checker
/// queries rarely repeat — the Table 1 kmeans row with the largest LCA
/// query count and one of the highest unique fractions (18.29M queries,
/// 84% unique), which is why kmeans benefits least from LCA caching.
///
/// The per-chunk partial sums are deliberately *unannotated* (a plain
/// buffer under a lock): the paper's model tracks only locations the
/// programmer marked, and reduction scratch that is trivially protected is
/// the canonical thing one leaves unannotated. A tracked, lock-protected
/// progress counter keeps the lockset machinery exercised.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <vector>

#include "instrument/Tracked.h"
#include "runtime/Mutex.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runKmeans(double Scale) {
  const size_t NumPoints = scaled(24000, Scale, 256);
  const size_t NumClusters = 12;
  const size_t Dims = 4;
  const size_t NumIters = 8;

  TrackedArray<double> Features(NumPoints); // folded per-point feature
  // The centroid table is only written while the workers are joined, so
  // it needs no atomicity annotation; the per-point features are the
  // annotated shared state (the paper's model tracks annotated locations
  // only).
  std::vector<double> Centroids(NumClusters * Dims);
  Tracked<double> Progress;
  std::vector<double> Sums(NumClusters * Dims, 0.0); // unannotated scratch
  Mutex SumLock;

  for (size_t I = 0; I < Centroids.size(); ++I)
    Centroids[I] = hashToUnit(I);
  for (size_t P = 0; P < NumPoints; ++P)
    Features[P].rawStore(hashToUnit(P * 977));

  for (size_t Iter = 0; Iter < NumIters; ++Iter) {
    for (double &Sum : Sums)
      Sum = 0.0;
    const size_t Stride = coprimeStride(Iter * 7919 + 3, NumPoints);

    parallelFor<size_t>(0, NumPoints, 64, [&, Stride](size_t Lo,
                                                      size_t Hi) {
      double Partial[48] = {0.0}; // NumClusters * Dims, untracked scratch
      for (size_t L = Lo; L < Hi; ++L) {
        size_t P = (L * Stride) % NumPoints;
        double Feature = Features[P].load();
        // Affinity smoothing reads the neighbouring point's feature; the
        // neighbour is owned by an unrelated parallel step (the stride
        // scatters ownership), so every feature location has two parallel
        // readers per round — a read of the latest value is racy but
        // serializable (RRW), not an atomicity violation.
        double Neighbour = Features[(P + 1) % NumPoints].load();
        Feature += 1e-12 * Neighbour;
        size_t Candidate =
            static_cast<size_t>(hashToUnit(P + Iter) * NumClusters) %
            NumClusters;
        double Dist = 0.0;
        for (size_t D = 0; D < Dims; ++D) {
          double Coord = Centroids[Candidate * Dims + D];
          double Delta = Coord - Feature * hashToUnit(P * Dims + D);
          Dist += Delta * Delta + burnFlops(Delta, 4) * 1e-12;
        }
        Features[P].store(Feature * 0.9 + 0.1 * Dist);
        for (size_t D = 0; D < Dims; ++D)
          Partial[Candidate * Dims + D] += Feature;
      }
      // Fold the chunk's partial sums under the lock; the tracked progress
      // counter is updated in the same critical section (atomic by lock).
      MutexGuard Guard(SumLock);
      for (size_t I = 0; I < NumClusters * Dims; ++I)
        Sums[I] += Partial[I];
      Progress.store(Progress.load() + 1.0);
    });

    // Sequential recenter.
    for (size_t I = 0; I < Centroids.size(); ++I)
      Centroids[I] = 0.5 * Centroids[I] +
                     0.5 * Sums[I] / static_cast<double>(NumPoints);
  }
}
