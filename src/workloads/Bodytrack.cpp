//===- workloads/Bodytrack.cpp - Particle filter over frames --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PARSEC bodytrack analogue: a particle filter that re-weights a small set
/// of particles frame after frame. Few tracked locations (the particle
/// weights) but many task-management constructs (one parallel_for per
/// frame), and the sequential normalization step of each frame re-reads
/// weights written by the frame's parallel steps — the Table 1 row with
/// ~5K locations and a modest number of LCA queries.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runBodytrack(double Scale) {
  const size_t NumParticles = scaled(800, Scale, 16);
  const size_t NumFrames = scaled(40, Scale, 2);
  TrackedArray<double> Weight(NumParticles);

  for (size_t I = 0; I < NumParticles; ++I)
    Weight[I].rawStore(1.0 / static_cast<double>(NumParticles));

  for (size_t Frame = 0; Frame < NumFrames; ++Frame) {
    // Parallel likelihood evaluation: each step reads and rewrites a slice
    // of weights (read-write patterns within one step). Resampling shifts
    // the particle-to-worker assignment every frame, so a particle's
    // consecutive-frame steps are unrelated.
    size_t Offset = (Frame * 97) % NumParticles;
    parallelFor<size_t>(0, NumParticles, 1, [&, Frame, Offset](size_t Lo,
                                                               size_t Hi) {
      for (size_t L = Lo; L < Hi; ++L) {
        size_t I = (L + Offset) % NumParticles;
        double Old = Weight[I].load();
        double Likelihood =
            burnFlops(Old + hashToUnit(Frame * NumParticles + I), 32);
        Weight[I].store(Old * (0.5 + Likelihood));
      }
    });

    // Sequential normalization by the parent step: re-reads every weight
    // written by the frame's (now joined) steps, then rescales.
    double Total = 0.0;
    for (size_t I = 0; I < NumParticles; ++I)
      Total += Weight[I].load();
    double Inv = Total > 0.0 ? 1.0 / Total : 1.0;
    for (size_t I = 0; I < NumParticles; ++I)
      Weight[I].store(Weight[I].load() * Inv);
  }
}
