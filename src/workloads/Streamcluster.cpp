//===- workloads/Streamcluster.cpp - Streaming k-median -------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PARSEC streamcluster analogue: points arrive in chunks; every chunk is
/// assigned to the nearest median in parallel (all steps read the shared
/// tracked median coordinates), then the medians are recentered
/// sequentially. Shared read-mostly data plus per-point tracked outputs.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runStreamcluster(double Scale) {
  const size_t NumPoints = scaled(60000, Scale, 256);
  const size_t NumChunks = 8;
  const size_t NumMedians = 256; // streamcluster opens many local centers
  const size_t Dims = 1;
  const size_t ChunkSize = NumPoints / NumChunks;

  TrackedArray<double> Medians(NumMedians * Dims);
  TrackedArray<double> Cost(NumPoints);

  for (size_t I = 0; I < Medians.size(); ++I)
    Medians[I].rawStore(hashToUnit(I));

  for (size_t Chunk = 0; Chunk < NumChunks; ++Chunk) {
    size_t Begin = Chunk * ChunkSize;
    size_t End = Chunk + 1 == NumChunks ? NumPoints : Begin + ChunkSize;

    parallelFor<size_t>(Begin, End, 256, [&, Chunk](size_t Lo, size_t Hi) {
      for (size_t I = Lo; I < Hi; ++I) {
        // Evaluate the point against its candidate median (the real
        // benchmark's gain computation compares against the currently
        // assigned center, not all of them).
        size_t M = static_cast<size_t>(hashToUnit(I + Chunk * 31) *
                                       NumMedians) %
                   NumMedians;
        double Dist = 0.0;
        for (size_t D = 0; D < Dims; ++D) {
          double Coord = Medians[M * Dims + D].load();
          double Delta = Coord - hashToUnit(I * Dims + D);
          Dist += Delta * Delta + burnFlops(Delta, 16) * 1e-12;
        }
        Cost[I].store(burnFlops(Dist, 10));
      }
    });

    // Sequential recenter between chunks: the parent rewrites the medians
    // that the chunk's steps just read (write-after-parallel-reads, all in
    // series once the group has joined).
    for (size_t M = 0; M < NumMedians; ++M)
      for (size_t D = 0; D < Dims; ++D) {
        double Old = Medians[M * Dims + D].load();
        Medians[M * Dims + D].store(Old * 0.9 +
                                    0.1 * hashToUnit(Chunk * 131 + M * Dims +
                                                     D));
      }
  }
}
