//===- workloads/Workloads.h - The 13 evaluation benchmarks ----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaled-down kernels of the paper's thirteen TBB applications (Table 1):
/// five PARSEC applications, five PBBS geometry/graphics applications, and
/// three applications from the Structured Parallel Programming book. Each
/// kernel reproduces the parallel structure (parallel_for, recursive
/// divide-and-conquer, lock-protected reductions, iterative rounds) and
/// tracked-data access pattern of its namesake, which is what determines
/// the Table 1 characteristics (#locations, #DPST nodes, #LCA queries,
/// %unique) and the Figure 13/14 overhead shape. Inputs are synthetic.
///
/// Every kernel body runs as the root task of a TaskRuntime; tracked data
/// is allocated inside the body and accessed through Tracked<T>.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_WORKLOADS_WORKLOADS_H
#define AVC_WORKLOADS_WORKLOADS_H

#include <cstddef>

namespace avc {
namespace workloads {

// PARSEC-derived kernels.
void runBlackscholes(double Scale);  ///< parallel_for option pricing
void runBodytrack(double Scale);     ///< particle filter over frames
void runStreamcluster(double Scale); ///< streaming k-median clustering
void runSwaptions(double Scale);     ///< HJM Monte-Carlo pricing
void runFluidanimate(double Scale);  ///< grid SPH with per-cell locks

// PBBS-derived kernels.
void runConvexhull(double Scale);    ///< recursive quickhull
void runDelrefine(double Scale);     ///< Delaunay refinement worklist
void runDeltriang(double Scale);     ///< incremental Delaunay triangulation
void runNearestneigh(double Scale);  ///< kd-tree nearest neighbours
void runRaycast(double Scale);       ///< ray-triangle casting

// Structured Parallel Programming kernels.
void runKaratsuba(double Scale);     ///< recursive big-number multiply
void runKmeans(double Scale);        ///< iterative clustering
void runSort(double Scale);          ///< parallel mergesort

/// A registered benchmark.
struct Workload {
  const char *Name;
  void (*Run)(double Scale);
};

/// All thirteen benchmarks in the paper's Table 1 order.
const Workload *allWorkloads(size_t &Count);

} // namespace workloads
} // namespace avc

#endif // AVC_WORKLOADS_WORKLOADS_H
