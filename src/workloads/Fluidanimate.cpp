//===- workloads/Fluidanimate.cpp - Grid SPH with cell locks --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PARSEC fluidanimate analogue: iterative smoothed-particle hydrodynamics
/// over a grid, where neighbouring cells are updated under per-cell locks.
/// The lock-dense workload: most tracked accesses happen inside critical
/// sections, exercising the lockset snapshots and the disjointness rule of
/// Section 3.3 on every access.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <memory>

#include "instrument/Tracked.h"
#include "runtime/Mutex.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runFluidanimate(double Scale) {
  const size_t Side = scaled(44, Scale, 4);
  const size_t NumCells = Side * Side;
  const size_t NumIters = 6;

  TrackedArray<double> Density(NumCells);
  auto CellLocks = std::make_unique<Mutex[]>(NumCells);

  for (size_t I = 0; I < NumCells; ++I)
    Density[I].rawStore(1.0 + hashToUnit(I));

  for (size_t Iter = 0; Iter < NumIters; ++Iter) {
    // Particle migration re-bins cells between iterations; model the
    // shifting cell-to-worker assignment with a rotated processing order.
    size_t Stride = coprimeStride(Iter * 389 + 7, NumCells);
    parallelFor<size_t>(0, NumCells, 32, [&, Iter, Stride](size_t Lo,
                                                           size_t Hi) {
      for (size_t L = Lo; L < Hi; ++L) {
        size_t Cell = (L * Stride) % NumCells;
        // Update own density under the cell lock (read-modify-write inside
        // one critical section: protected, no vulnerable pattern).
        double Contribution;
        {
          MutexGuard Guard(CellLocks[Cell]);
          double D = Density[Cell].load();
          Contribution = burnFlops(D + hashToUnit(Iter * NumCells + Cell), 22);
          Density[Cell].store(D * 0.95 + 0.05 * Contribution);
        }
        // Scatter into the right neighbour under its lock (a different
        // critical section of a different lock: cross-cell sharing).
        size_t Neighbour = (Cell + 1) % NumCells;
        {
          MutexGuard Guard(CellLocks[Neighbour]);
          double D = Density[Neighbour].load();
          Density[Neighbour].store(D + 0.01 * Contribution);
        }
      }
    });
  }
}
