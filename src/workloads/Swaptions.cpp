//===- workloads/Swaptions.cpp - HJM Monte-Carlo pricing ------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PARSEC swaptions analogue: nested parallelism (swaptions x Monte-Carlo
/// trials) with per-trial tracked scratch that each trial writes and then
/// re-reads — the Table 1 row with the largest DPST (fine-grained nested
/// tasks) and many tracked locations.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

void avc::workloads::runSwaptions(double Scale) {
  const size_t NumSwaptions = scaled(24, Scale, 2);
  const size_t NumTrials = scaled(400, Scale, 8);
  const size_t NumSteps = 8; // simulated HJM path length

  TrackedArray<double> Params(NumSwaptions);       // shared, read by trials
  TrackedArray<double> Scratch(NumSwaptions * NumTrials);
  TrackedArray<double> Result(NumSwaptions);

  for (size_t S = 0; S < NumSwaptions; ++S)
    Params[S].rawStore(0.01 + 0.05 * hashToUnit(S));

  parallelFor<size_t>(0, NumSwaptions, 1, [&](size_t SLo, size_t SHi) {
    for (size_t S = SLo; S < SHi; ++S) {
      parallelFor<size_t>(0, NumTrials, 8, [&, S](size_t TLo, size_t THi) {
        for (size_t T = TLo; T < THi; ++T) {
          // Every trial reads the shared swaption parameters (parallel
          // reads of the same location across sibling trials).
          double Rate = Params[S].load();
          double Path = Rate;
          for (size_t Step = 0; Step < NumSteps; ++Step)
            Path = burnFlops(Path + hashToUnit((S * NumTrials + T) *
                                               NumSteps + Step), 2);
          // Write, then read-modify-write the trial's scratch slot: a
          // write-read and a read-write pattern inside one step node.
          Tracked<double> &Slot = Scratch[S * NumTrials + T];
          Slot.store(Path);
          Slot.store(Slot.load() * std::max(0.0, Path - Rate));
        }
      });
      // Sequential payoff average over the trials just joined.
      double Sum = 0.0;
      for (size_t T = 0; T < NumTrials; ++T)
        Sum += Scratch[S * NumTrials + T].load();
      Result[S].store(Sum / static_cast<double>(NumTrials));
    }
  });
}
