//===- workloads/Blackscholes.cpp - Option-pricing parallel_for -----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// PARSEC blackscholes analogue: a flat parallel_for over independent
/// options. Each tracked location (one input and one output per option) is
/// accessed exactly once, by exactly one step node, so the checker never
/// needs an LCA query — the Table 1 row with 10M locations, zero LCAs.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <cmath>

#include "instrument/Tracked.h"
#include "runtime/Parallel.h"
#include "workloads/WorkloadCommon.h"

using namespace avc;
using namespace avc::workloads;

namespace {

/// Cheap cumulative-normal approximation (the flavor of math the real
/// benchmark performs per option).
double cumulativeNormal(double X) {
  return 0.5 * (1.0 + std::tanh(0.7978845608 * (X + 0.044715 * X * X * X)));
}

} // namespace

void avc::workloads::runBlackscholes(double Scale) {
  const size_t NumOptions = scaled(200000, Scale, 64);
  TrackedArray<double> Spot(NumOptions);
  TrackedArray<double> Price(NumOptions);

  // Untracked initialization would also work, but the real benchmark's
  // option table is loaded before the parallel region; model that as
  // untracked raw stores.
  for (size_t I = 0; I < NumOptions; ++I)
    Spot[I].rawStore(80.0 + 40.0 * hashToUnit(I));

  parallelFor<size_t>(0, NumOptions, 2048, [&](size_t Lo, size_t Hi) {
    for (size_t I = Lo; I < Hi; ++I) {
      double S = Spot[I].load();
      double K = 100.0;
      double Sigma = 0.3 + 0.1 * hashToUnit(I * 7 + 1);
      double T = 0.5 + hashToUnit(I * 13 + 2);
      double D1 = (std::log(S / K) + (0.05 + 0.5 * Sigma * Sigma) * T) /
                  (Sigma * std::sqrt(T));
      double D2 = D1 - Sigma * std::sqrt(T);
      double Call =
          S * cumulativeNormal(D1) - K * std::exp(-0.05 * T) *
                                         cumulativeNormal(D2);
      Price[I].store(burnFlops(Call, 30));
    }
  });
}
