//===- runtime/TaskRuntime.cpp - Work-stealing task runtime ----------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/TaskRuntime.h"

#include <cassert>
#include <chrono>

#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "runtime/WorkStealingDeque.h"
#include "support/Compiler.h"
#include "support/Random.h"
#include "support/Timing.h"

using namespace avc;

namespace avc {
namespace detail {

struct Worker {
  explicit Worker(TaskRuntime *RT) : Runtime(RT) {}
  TaskRuntime *Runtime;
  WorkStealingDeque<TaskNode> Deque;
  SplitMix64 StealRng{0x6b79a3f2d15e4c01ULL};
};

} // namespace detail
} // namespace avc

namespace {

/// The worker servicing this thread (for the current runtime), if any.
thread_local detail::Worker *CurWorker = nullptr;

/// The task executing on this thread, if any.
thread_local detail::TaskContext *CurCtx = nullptr;

/// Registry handles resolved once; afterwards each hit is a relaxed
/// sharded increment. The latency histogram is only fed when
/// metrics::timingEnabled() — it needs two clock reads per task.
struct RuntimeMetrics {
  metrics::Counter &Tasks;
  metrics::Counter &Steals;
  metrics::Histogram &TaskLatency;

  RuntimeMetrics()
      : Tasks(metrics::MetricsRegistry::instance().counter(
            metrics::names::RuntimeTasksTotal, "Tasks executed.")),
        Steals(metrics::MetricsRegistry::instance().counter(
            metrics::names::RuntimeStealsTotal, "Successful deque steals.")),
        TaskLatency(metrics::MetricsRegistry::instance().histogram(
            metrics::names::RuntimeTaskLatencySeconds,
            "Wall time per executed task body (timing-gated).")) {}

  static RuntimeMetrics &get() {
    static RuntimeMetrics M;
    return M;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// TaskGroup
//===----------------------------------------------------------------------===//

static detail::TaskContext &currentContextChecked() {
  assert(CurCtx && "operation requires a running task");
  return *CurCtx;
}

TaskGroup::TaskGroup(TaskRuntime &RT, bool Implicit)
    : RT(RT), Implicit(Implicit) {}

TaskGroup::TaskGroup()
    : TaskGroup(*[] {
        TaskRuntime *RT = TaskRuntime::current();
        assert(RT && "TaskGroup created outside a running task");
        return RT;
      }(), /*Implicit=*/false) {}

TaskGroup::~TaskGroup() {
  if (Pending.load(std::memory_order_acquire) != 0)
    wait();
}

void TaskGroup::run(std::function<void()> Fn) {
  detail::TaskContext &Ctx = currentContextChecked();
  assert(&RT == Ctx.Runtime && "TaskGroup used from a foreign runtime");
  TaskId Child = RT.allocateTaskId();
  // The async node must exist before the child can be stolen, so the spawn
  // event fires before the task is published.
  RT.notifyAll([&](ExecutionObserver &Obs) {
    Obs.onTaskSpawn(Ctx.Id, Implicit ? nullptr : this, Child);
  });
  obs::instant(obs::Cat::Runtime, "task/spawn", Child);
  auto *Node = new detail::TaskNode{std::move(Fn), this, Child};
  Pending.fetch_add(1, std::memory_order_acq_rel);
  RT.pushTask(Node);
}

void TaskGroup::wait() {
  AVC_OBS_SPAN(obs::Cat::Runtime,
               Implicit ? "task/sync" : "task/group-wait");
  RT.waitUntilZero(Pending);
  // The finish scope closes only once all children are done; tools see the
  // completion event in that order.
  detail::TaskContext &Ctx = currentContextChecked();
  RT.notifyAll([&](ExecutionObserver &Obs) {
    if (Implicit)
      Obs.onSync(Ctx.Id);
    else
      Obs.onGroupWait(Ctx.Id, this);
  });
}

//===----------------------------------------------------------------------===//
// TaskRuntime
//===----------------------------------------------------------------------===//

TaskRuntime::TaskRuntime(Options Opts) {
  NumThreads = Opts.NumThreads;
  if (NumThreads == 0) {
    NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
  }
  // Workers beyond the run() caller start immediately and idle until work
  // appears.
  for (unsigned I = 1; I < NumThreads; ++I) {
    detail::Worker &W = registerWorker();
    Threads.emplace_back([this, &W] { workerMain(W); });
  }
}

TaskRuntime::~TaskRuntime() {
  Stop.store(true, std::memory_order_release);
  IdleCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void TaskRuntime::addObserver(ExecutionObserver *Obs) {
  assert(!Started && "observers must be registered before run()");
  assert(Obs && "null observer");
  Observers.push_back(Obs);
}

detail::Worker &TaskRuntime::registerWorker() {
  size_t Index = Workers.emplaceBack(std::make_unique<detail::Worker>(this));
  return *Workers[Index];
}

TaskId TaskRuntime::allocateTaskId() {
  return NextTaskId.fetch_add(1, std::memory_order_relaxed);
}

void TaskRuntime::pushTask(detail::TaskNode *Node) {
  assert(CurWorker && CurWorker->Runtime == this &&
         "tasks can only be spawned from a worker of this runtime");
  CurWorker->Deque.push(Node);
  if (NumSleeping.load(std::memory_order_relaxed) > 0)
    IdleCv.notify_one();
}

detail::TaskNode *TaskRuntime::findWork(detail::Worker &W) {
  if (detail::TaskNode *Node = W.Deque.pop())
    return Node;
  // Steal scan: start at a random victim, visit each worker once.
  size_t N = Workers.size();
  if (N <= 1)
    return nullptr;
  size_t Start = W.StealRng.nextBelow(N);
  for (size_t I = 0; I < N; ++I) {
    detail::Worker &Victim = *Workers[(Start + I) % N];
    if (&Victim == &W)
      continue;
    if (detail::TaskNode *Node = Victim.Deque.steal()) {
      // Only successful steals are recorded; failed scans would keep idle
      // workers producing events after the run goes quiescent.
      obs::instant(obs::Cat::Runtime, "task/steal", Node->Id);
      RuntimeMetrics::get().Steals.inc();
      return Node;
    }
  }
  return nullptr;
}

void TaskRuntime::execute(detail::TaskNode *Node) {
  detail::TaskContext Ctx{Node->Id, this, nullptr, nullptr};
  detail::TaskContext *Prev = CurCtx;
  CurCtx = &Ctx;
  RuntimeMetrics::get().Tasks.inc();
  uint64_t LatencyStartNs = metrics::timingEnabled() ? nowNanos() : 0;
  notifyAll([&](ExecutionObserver &Obs) { Obs.onTaskExecuteBegin(Ctx.Id); });
  {
    AVC_OBS_SPAN(obs::Cat::Runtime, "task/execute", Ctx.Id);
    Node->Fn();
    // Cilk semantics: implicit sync of outstanding children at task end.
    if (Ctx.ImplicitGroup) {
      Ctx.ImplicitGroup->wait();
      delete Ctx.ImplicitGroup;
      Ctx.ImplicitGroup = nullptr;
    }
  }
  notifyAll([&](ExecutionObserver &Obs) { Obs.onTaskEnd(Ctx.Id); });
  if (LatencyStartNs)
    RuntimeMetrics::get().TaskLatency.observe(
        static_cast<double>(nowNanos() - LatencyStartNs) * 1e-9);
  if (obs::enabled())
    obs::tick();
  CurCtx = Prev;
  TaskGroup *Group = Node->Group;
  delete Node;
  // Last: once Pending drops, a waiting parent may proceed and tear down
  // anything the task referenced.
  Group->Pending.fetch_sub(1, std::memory_order_acq_rel);
}

void TaskRuntime::waitUntilZero(std::atomic<int64_t> &Pending) {
  while (Pending.load(std::memory_order_acquire) != 0) {
    if (CurWorker && CurWorker->Runtime == this) {
      if (detail::TaskNode *Node = findWork(*CurWorker)) {
        execute(Node);
        continue;
      }
    }
    std::this_thread::yield();
  }
}

void TaskRuntime::workerMain(detail::Worker &W) {
  CurWorker = &W;
  unsigned IdleSpins = 0;
  while (true) {
    if (detail::TaskNode *Node = findWork(W)) {
      execute(Node);
      IdleSpins = 0;
      continue;
    }
    if (Stop.load(std::memory_order_acquire))
      break;
    if (++IdleSpins < 64) {
      std::this_thread::yield();
      continue;
    }
    NumSleeping.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> Lock(IdleMutex);
      IdleCv.wait_for(Lock, std::chrono::microseconds(200));
    }
    NumSleeping.fetch_sub(1, std::memory_order_relaxed);
    IdleSpins = 0;
  }
  CurWorker = nullptr;
}

void TaskRuntime::run(std::function<void()> Root) {
  assert(!Started && "TaskRuntime::run is one-shot");
  Started = true;

  detail::Worker &Caller = registerWorker();
  detail::Worker *PrevWorker = CurWorker;
  CurWorker = &Caller;

  TaskId RootId = allocateTaskId();
  assert(RootId == 0 && "root task must have id 0");
  notifyAll([&](ExecutionObserver &Obs) { Obs.onProgramStart(RootId); });

  TaskGroup RootGroup(*this, /*Implicit=*/false);
  auto *Node = new detail::TaskNode{std::move(Root), &RootGroup, RootId};
  RootGroup.Pending.store(1, std::memory_order_relaxed);
  execute(Node);
  assert(RootGroup.Pending.load(std::memory_order_relaxed) == 0 &&
         "root group must be drained by execute");

  notifyAll([&](ExecutionObserver &Obs) { Obs.onProgramEnd(); });
  CurWorker = PrevWorker;
}

TaskRuntime *TaskRuntime::current() {
  return CurCtx ? CurCtx->Runtime : nullptr;
}

TaskId TaskRuntime::currentTaskId() {
  return currentContextChecked().Id;
}

void TaskRuntime::notifyRead(const void *Addr) {
  detail::TaskContext *Ctx = CurCtx;
  if (AVC_UNLIKELY(!Ctx))
    return; // untracked sequential context (e.g. setup before run())
  Ctx->Runtime->notifyAll([&](ExecutionObserver &Obs) {
    Obs.onRead(Ctx->Id, reinterpret_cast<MemAddr>(Addr));
  });
}

void TaskRuntime::notifyWrite(const void *Addr) {
  detail::TaskContext *Ctx = CurCtx;
  if (AVC_UNLIKELY(!Ctx))
    return;
  Ctx->Runtime->notifyAll([&](ExecutionObserver &Obs) {
    Obs.onWrite(Ctx->Id, reinterpret_cast<MemAddr>(Addr));
  });
}

void TaskRuntime::notifySiteRegister(const void *Base, uint64_t Size,
                                     uint32_t Stride) {
  detail::TaskContext *Ctx = CurCtx;
  if (AVC_UNLIKELY(!Ctx))
    return; // pre-run construction: the SiteRegistry snapshot covers it
  Ctx->Runtime->notifyAll([&](ExecutionObserver &Obs) {
    Obs.onSiteRegister(reinterpret_cast<MemAddr>(Base), Size, Stride);
  });
}

void TaskRuntime::notifyLockAcquire(LockId Lock) {
  detail::TaskContext *Ctx = CurCtx;
  if (AVC_UNLIKELY(!Ctx))
    return;
  Ctx->Runtime->notifyAll(
      [&](ExecutionObserver &Obs) { Obs.onLockAcquire(Ctx->Id, Lock); });
}

void TaskRuntime::notifyLockRelease(LockId Lock) {
  detail::TaskContext *Ctx = CurCtx;
  if (AVC_UNLIKELY(!Ctx))
    return;
  Ctx->Runtime->notifyAll(
      [&](ExecutionObserver &Obs) { Obs.onLockRelease(Ctx->Id, Lock); });
}

//===----------------------------------------------------------------------===//
// Cilk-style free functions
//===----------------------------------------------------------------------===//

TaskGroup *TaskRuntime::currentFinishScope() {
  return currentContextChecked().CurrentFinish;
}

TaskGroup *TaskRuntime::swapCurrentFinishScope(TaskGroup *Scope) {
  detail::TaskContext &Ctx = currentContextChecked();
  TaskGroup *Previous = Ctx.CurrentFinish;
  Ctx.CurrentFinish = Scope;
  return Previous;
}

void avc::spawn(std::function<void()> Fn) {
  detail::TaskContext &Ctx = currentContextChecked();
  if (!Ctx.ImplicitGroup)
    Ctx.ImplicitGroup = new TaskGroup(*Ctx.Runtime, /*Implicit=*/true);
  Ctx.ImplicitGroup->run(std::move(Fn));
}

void avc::sync() {
  detail::TaskContext &Ctx = currentContextChecked();
  if (Ctx.ImplicitGroup) {
    Ctx.ImplicitGroup->wait();
    return;
  }
  // No spawn since the last sync: structurally a no-op, but tools still see
  // the region boundary.
  Ctx.Runtime->notifyAll([&](ExecutionObserver &Obs) { Obs.onSync(Ctx.Id); });
}
