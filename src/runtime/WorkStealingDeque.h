//===- runtime/WorkStealingDeque.h - Chase-Lev deque ------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Growable Chase-Lev work-stealing deque, memory orders per Lê, Pop,
/// Cocchini, Nguyễn & Zappa Nardelli, "Correct and Efficient Work-Stealing
/// for Weak Memory Models" (PPoPP'13). The owner pushes/pops at the bottom
/// (LIFO, cache-friendly for divide-and-conquer tasks); thieves steal from
/// the top (FIFO, steals the largest remaining subtree first). This is the
/// load-balancing substrate the paper relies on TBB for: work stealing is
/// what makes DPST-based detection schedule-independent rather than
/// trace-bound.
///
/// Retired ring buffers are kept alive until the deque is destroyed, the
/// standard safe reclamation for this structure (a thief may still be
/// reading an old buffer).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_RUNTIME_WORKSTEALINGDEQUE_H
#define AVC_RUNTIME_WORKSTEALINGDEQUE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "obs/Metrics.h"
#include "obs/Obs.h"

namespace avc {

/// Single-owner, multi-thief lock-free deque of pointers.
template <typename T> class WorkStealingDeque {
public:
  explicit WorkStealingDeque(int64_t InitialCapacity = 64) {
    assert(InitialCapacity > 0 &&
           (InitialCapacity & (InitialCapacity - 1)) == 0 &&
           "capacity must be a positive power of two");
    Buffer.store(new Ring(InitialCapacity), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  ~WorkStealingDeque() {
    delete Buffer.load(std::memory_order_relaxed);
    for (Ring *Old : Retired)
      delete Old;
  }

  /// Owner only: pushes \p Item at the bottom.
  void push(T *Item) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Ti = Top.load(std::memory_order_acquire);
    Ring *R = Buffer.load(std::memory_order_relaxed);
    if (B - Ti > R->Capacity - 1)
      R = grow(R, B, Ti);
    R->put(B, Item);
    // Release store publishes the slot; the fence-free formulation keeps
    // the deque analyzable by TSan (which does not model fences).
    Bottom.store(B + 1, std::memory_order_release);
  }

  /// Owner only: pops the most recently pushed item, or nullptr.
  T *pop() {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *R = Buffer.load(std::memory_order_relaxed);
    // The seq_cst store/load pair replaces the classic seq_cst fence: the
    // owner's Bottom decrement and a thief's Top increment take a total
    // order, so at most one of them can win the last item.
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Ti = Top.load(std::memory_order_seq_cst);
    if (Ti > B) {
      // Deque was already empty; restore.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T *Item = R->get(B);
    if (Ti != B)
      return Item; // more than one item left: no race with thieves
    // Single item: race with thieves via CAS on Top.
    if (!Top.compare_exchange_strong(Ti, Ti + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      Item = nullptr; // a thief got it
    Bottom.store(B + 1, std::memory_order_relaxed);
    return Item;
  }

  /// Any thread: steals the oldest item, or nullptr if empty or lost race.
  T *steal() {
    int64_t Ti = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Ti >= B)
      return nullptr;
    Ring *R = Buffer.load(std::memory_order_acquire);
    T *Item = R->get(Ti);
    if (!Top.compare_exchange_strong(Ti, Ti + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return nullptr; // lost the race
    return Item;
  }

  /// Approximate size; exact only when quiescent.
  int64_t sizeHint() const {
    return Bottom.load(std::memory_order_relaxed) -
           Top.load(std::memory_order_relaxed);
  }

private:
  struct Ring {
    explicit Ring(int64_t Cap)
        : Capacity(Cap), Mask(Cap - 1),
          Slots(new std::atomic<T *>[static_cast<size_t>(Cap)]) {}
    ~Ring() { delete[] Slots; }

    T *get(int64_t Index) const {
      return Slots[Index & Mask].load(std::memory_order_relaxed);
    }
    void put(int64_t Index, T *Item) {
      Slots[Index & Mask].store(Item, std::memory_order_relaxed);
    }

    const int64_t Capacity;
    const int64_t Mask;
    std::atomic<T *> *Slots;
  };

  Ring *grow(Ring *Old, int64_t B, int64_t Ti) {
    obs::instant(obs::Cat::Runtime, "deque/grow",
                 static_cast<uint64_t>(Old->Capacity * 2));
    // Growth is amortized-rare, so the one-time registry resolution (and
    // the guarded static load afterwards) is off any hot path.
    static metrics::Counter &Grows =
        metrics::MetricsRegistry::instance().counter(
            metrics::names::RuntimeDequeGrowthTotal,
            "Chase-Lev ring-buffer doublings.");
    Grows.inc();
    Ring *Fresh = new Ring(Old->Capacity * 2);
    for (int64_t I = Ti; I < B; ++I)
      Fresh->put(I, Old->get(I));
    Buffer.store(Fresh, std::memory_order_release);
    Retired.push_back(Old); // thieves may still read it; free at destruction
    return Fresh;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buffer{nullptr};
  std::vector<Ring *> Retired; // owner-only
};

} // namespace avc

#endif // AVC_RUNTIME_WORKSTEALINGDEQUE_H
