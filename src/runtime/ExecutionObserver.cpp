//===- runtime/ExecutionObserver.cpp - Instrumentation hook API -----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutionObserver.h"

using namespace avc;

// Default implementations ignore every event so observers override only what
// they need; the out-of-line definitions also anchor the vtable.
ExecutionObserver::~ExecutionObserver() = default;
void ExecutionObserver::onProgramStart(TaskId) {}
void ExecutionObserver::onProgramEnd() {}
void ExecutionObserver::onTaskSpawn(TaskId, const void *, TaskId) {}
void ExecutionObserver::onTaskExecuteBegin(TaskId) {}
void ExecutionObserver::onTaskEnd(TaskId) {}
void ExecutionObserver::onSync(TaskId) {}
void ExecutionObserver::onGroupWait(TaskId, const void *) {}
void ExecutionObserver::onLockAcquire(TaskId, LockId) {}
void ExecutionObserver::onLockRelease(TaskId, LockId) {}
void ExecutionObserver::onRead(TaskId, MemAddr) {}
void ExecutionObserver::onWrite(TaskId, MemAddr) {}
void ExecutionObserver::onSiteRegister(MemAddr, uint64_t, uint32_t) {}
