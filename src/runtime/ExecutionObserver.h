//===- runtime/ExecutionObserver.h - Instrumentation hook API --*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The callback interface between the task runtime and dynamic-analysis
/// tools. The paper modified the Intel TBB library "to add calls to our
/// instrumentation functions on task creation, task completion,
/// synchronization, and to pass task and thread identifiers" (Section 4);
/// this interface is the equivalent seam in our runtime. Memory-access
/// callbacks are emitted by the instrumentation layer (src/instrument) for
/// annotated locations only, mirroring the paper's annotation-driven
/// LLVM instrumentation pass.
///
/// All callbacks may fire concurrently from different worker threads, but
/// callbacks carrying the same task id are totally ordered (a task executes
/// on one worker at a time).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_RUNTIME_EXECUTIONOBSERVER_H
#define AVC_RUNTIME_EXECUTIONOBSERVER_H

#include <cstdint>

namespace avc {

/// Dense task identifier assigned at spawn time; the root task is 0.
using TaskId = uint32_t;

/// Identifier of a lock object, unique per lock for the program lifetime.
using LockId = uint64_t;

/// Identifier of a tracked memory location (its address).
using MemAddr = uint64_t;

/// Receives the execution events of a task-parallel program.
class ExecutionObserver {
public:
  ExecutionObserver() = default;
  ExecutionObserver(const ExecutionObserver &) = delete;
  ExecutionObserver &operator=(const ExecutionObserver &) = delete;
  virtual ~ExecutionObserver();

  /// The root task is about to start executing.
  virtual void onProgramStart(TaskId RootTask);

  /// All tasks have completed.
  virtual void onProgramEnd();

  /// \p Parent spawned \p Child. \p GroupTag identifies the explicit task
  /// group (finish scope) the child was spawned into, or nullptr for a
  /// Cilk-style spawn into the implicit scope. Fires in the parent's
  /// program order, before the child can run.
  virtual void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child);

  /// \p Task is about to start executing its body on a worker thread.
  /// Unlike onTaskSpawn (which fires in the parent), this fires on the
  /// worker that will run the task, making it the natural drain/attach
  /// point for per-worker recording state.
  virtual void onTaskExecuteBegin(TaskId Task);

  /// \p Task finished executing (after its implicit end-of-task sync).
  virtual void onTaskEnd(TaskId Task);

  /// \p Task completed a Cilk-style sync (implicit scope closed).
  virtual void onSync(TaskId Task);

  /// \p Task completed an explicit group wait for \p GroupTag.
  virtual void onGroupWait(TaskId Task, const void *GroupTag);

  /// \p Task acquired lock \p Lock (fires while the lock is held).
  virtual void onLockAcquire(TaskId Task, LockId Lock);

  /// \p Task is about to release lock \p Lock (fires while still held).
  virtual void onLockRelease(TaskId Task, LockId Lock);

  /// \p Task read the tracked location \p Addr.
  virtual void onRead(TaskId Task, MemAddr Addr);

  /// \p Task wrote the tracked location \p Addr.
  virtual void onWrite(TaskId Task, MemAddr Addr);

  /// A tracked site covering [\p Base, \p Base + \p Size) was registered
  /// while the runtime was live (a Tracked<T>/TrackedArray constructed
  /// mid-run). \p Stride is the element stride (== Size for scalars).
  /// Sites registered before the run are pulled from the process-wide
  /// SiteRegistry at onProgramStart instead.
  virtual void onSiteRegister(MemAddr Base, uint64_t Size, uint32_t Stride);
};

} // namespace avc

#endif // AVC_RUNTIME_EXECUTIONOBSERVER_H
