//===- runtime/Mutex.h - Observer-instrumented mutex ------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock type checked programs use (the analogue of TBB's mutexes with
/// the paper's instrumentation inserted). Acquire events fire while the
/// lock is held and release events before it is dropped, so a task's
/// lockset — which the checker's local metadata snapshots at each access
/// (Section 3.3) — always reflects locks actually held.
///
/// Lock ids come from a global counter, not the object address, so a mutex
/// allocated at a reused address is never confused with its predecessor.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_RUNTIME_MUTEX_H
#define AVC_RUNTIME_MUTEX_H

#include <atomic>
#include <mutex>

#include "runtime/TaskRuntime.h"

namespace avc {

/// A mutual-exclusion lock whose operations are visible to observers.
class Mutex {
public:
  Mutex() : Id(NextLockId.fetch_add(1, std::memory_order_relaxed)) {}

  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() {
    Impl.lock();
    TaskRuntime::notifyLockAcquire(Id);
  }

  void unlock() {
    TaskRuntime::notifyLockRelease(Id);
    Impl.unlock();
  }

  bool try_lock() {
    if (!Impl.try_lock())
      return false;
    TaskRuntime::notifyLockAcquire(Id);
    return true;
  }

  LockId lockId() const { return Id; }

private:
  static inline std::atomic<LockId> NextLockId{1};
  std::mutex Impl;
  const LockId Id;
};

/// RAII guard for avc::Mutex.
using MutexGuard = std::lock_guard<Mutex>;

} // namespace avc

#endif // AVC_RUNTIME_MUTEX_H
