//===- runtime/Parallel.h - parallel_for/reduce/invoke ---------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TBB-style parallel algorithms built on TaskGroup with recursive binary
/// range splitting, the same divide-and-conquer structure TBB's
/// parallel_for produces. Each split level is one finish scope with an
/// async child, so these algorithms generate the deep series-parallel trees
/// the paper's benchmarks exhibit (e.g. blackscholes is "just" a
/// parallel_for).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_RUNTIME_PARALLEL_H
#define AVC_RUNTIME_PARALLEL_H

#include <cassert>
#include <utility>

#include "runtime/TaskRuntime.h"

namespace avc {

/// Applies \p Body(Lo, Hi) over [Begin, End) in parallel chunks of at most
/// \p Grain elements. \p Body must be safe to copy and to invoke
/// concurrently on disjoint subranges.
template <typename IndexT, typename BodyT>
void parallelFor(IndexT Begin, IndexT End, IndexT Grain, BodyT Body) {
  assert(Grain > 0 && "grain must be positive");
  if (Begin >= End)
    return;
  if (End - Begin <= Grain) {
    Body(Begin, End);
    return;
  }
  IndexT Mid = Begin + (End - Begin) / 2;
  TaskGroup Group;
  Group.run([=] { parallelFor(Mid, End, Grain, Body); });
  parallelFor(Begin, Mid, Grain, Body);
  Group.wait();
}

/// Convenience overload invoking \p Body once per index.
template <typename IndexT, typename BodyT>
void parallelForEach(IndexT Begin, IndexT End, IndexT Grain, BodyT Body) {
  parallelFor(Begin, End, Grain, [Body](IndexT Lo, IndexT Hi) {
    for (IndexT I = Lo; I < Hi; ++I)
      Body(I);
  });
}

/// Parallel map-reduce over [Begin, End): \p Map(Lo, Hi) produces a partial
/// value per leaf chunk; \p Combine folds two partial values. \p Combine
/// must be associative; \p Identity is its neutral element.
template <typename IndexT, typename ValueT, typename MapT, typename CombineT>
ValueT parallelReduce(IndexT Begin, IndexT End, IndexT Grain, ValueT Identity,
                      MapT Map, CombineT Combine) {
  assert(Grain > 0 && "grain must be positive");
  if (Begin >= End)
    return Identity;
  if (End - Begin <= Grain)
    return Map(Begin, End);
  IndexT Mid = Begin + (End - Begin) / 2;
  ValueT Right = Identity;
  TaskGroup Group;
  Group.run([=, &Right] {
    Right = parallelReduce(Mid, End, Grain, Identity, Map, Combine);
  });
  ValueT Left = parallelReduce(Begin, Mid, Grain, Identity, Map, Combine);
  Group.wait();
  return Combine(std::move(Left), std::move(Right));
}

/// Runs \p F1 and \p F2 in parallel (the last callable executes on the
/// calling worker; overloads below extend to three and four callables).
template <typename F1T, typename F2T> void parallelInvoke(F1T &&F1, F2T &&F2) {
  TaskGroup Group;
  Group.run(std::forward<F1T>(F1));
  F2();
  Group.wait();
}

/// Runs three callables in parallel.
template <typename F1T, typename F2T, typename F3T>
void parallelInvoke(F1T &&F1, F2T &&F2, F3T &&F3) {
  TaskGroup Group;
  Group.run(std::forward<F1T>(F1));
  Group.run(std::forward<F2T>(F2));
  F3();
  Group.wait();
}

/// Runs four callables in parallel.
template <typename F1T, typename F2T, typename F3T, typename F4T>
void parallelInvoke(F1T &&F1, F2T &&F2, F3T &&F3, F4T &&F4) {
  TaskGroup Group;
  Group.run(std::forward<F1T>(F1));
  Group.run(std::forward<F2T>(F2));
  Group.run(std::forward<F3T>(F3));
  F4();
  Group.wait();
}

} // namespace avc

#endif // AVC_RUNTIME_PARALLEL_H
