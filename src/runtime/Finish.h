//===- runtime/Finish.h - Habanero-style finish scopes ---------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Async-finish programming on top of TaskGroup, for programs written in
/// the Habanero/X10 style the paper's DPST also models ("DPST can handle
/// both spawn-sync constructs in Cilk/Intel TBB and async-finish
/// constructs in Habanero Java", Section 2):
///
/// \code
///   finish([&] {          // a finish scope
///     async([&] { ... }); // runs asynchronously within it
///     async([&] { ... });
///   });                   // joins every async (transitively) here
/// \endcode
///
/// Each finish() maps to one explicit finish node in the DPST; async()
/// outside any finish() falls back to the Cilk-style implicit scope.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_RUNTIME_FINISH_H
#define AVC_RUNTIME_FINISH_H

#include <cassert>
#include <functional>

#include "runtime/TaskRuntime.h"

namespace avc {

/// Spawns \p Fn inside the innermost finish scope, or the task's implicit
/// Cilk-style scope when no finish is open. The scope pointer lives in the
/// task's context (not thread-local state), so a worker helping with an
/// unrelated task while blocked in wait() cannot leak its scope into it;
/// a spawned child task starts with no open finish, and its own asyncs are
/// still joined transitively through its implicit end-of-task sync.
inline void async(std::function<void()> Fn) {
  if (TaskGroup *Scope = TaskRuntime::currentFinishScope()) {
    Scope->run(std::move(Fn));
    return;
  }
  spawn(std::move(Fn));
}

/// Runs \p Body inside a new finish scope and joins all asyncs spawned
/// within it (directly or by nested tasks of this scope) before returning.
template <typename BodyT> void finish(BodyT &&Body) {
  TaskGroup Scope;
  TaskGroup *Previous = TaskRuntime::swapCurrentFinishScope(&Scope);
  Body();
  TaskRuntime::swapCurrentFinishScope(Previous);
  Scope.wait();
}

} // namespace avc

#endif // AVC_RUNTIME_FINISH_H
