//===- runtime/TaskRuntime.h - Work-stealing task runtime ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TBB-like task-parallel runtime: programmers express *tasks* (spawn/sync
/// in the Cilk style, or TaskGroup run/wait in the TBB task_group style) and
/// the runtime maps them onto worker threads with work stealing. This is
/// the substrate the paper instruments; every task-management operation and
/// every lock operation is reported to the registered ExecutionObservers,
/// which is where the atomicity checker plugs in.
///
/// Model restrictions (documented, asserted where cheap): a TaskGroup is
/// used only by the task that created it; groups obey stack discipline
/// within a task; a task implicitly syncs its outstanding children when it
/// returns (Cilk semantics).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_RUNTIME_TASKRUNTIME_H
#define AVC_RUNTIME_TASKRUNTIME_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"

namespace avc {

class TaskRuntime;
class TaskGroup;

namespace detail {

/// A spawned-but-not-finished task: the closure, the group it joins, and
/// the task id assigned at spawn.
struct TaskNode {
  std::function<void()> Fn;
  TaskGroup *Group;
  TaskId Id;
};

/// Per-worker scheduling state (deque lives behind a pimpl in the .cpp).
struct Worker;

/// Execution state of the task currently running on a thread.
struct TaskContext {
  TaskId Id;
  TaskRuntime *Runtime;
  TaskGroup *ImplicitGroup; // lazily created for Cilk-style spawn/sync
  TaskGroup *CurrentFinish; // innermost open finish() scope of this task
};

} // namespace detail

/// A set of tasks that can be waited on together; equivalent to TBB's
/// task_group and, through the observers, to one finish scope in the DPST.
class TaskGroup {
public:
  /// Creates a group owned by the currently executing task.
  TaskGroup();

  /// Waits for outstanding tasks (a safety net mirroring task_group's
  /// "must be waited" contract).
  ~TaskGroup();

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Spawns \p Fn as a child task of the current task into this group.
  void run(std::function<void()> Fn);

  /// Blocks until every task run() into this group has completed. The
  /// waiting worker executes other pending tasks meanwhile (TBB-style
  /// helping), so wait() never wastes the thread.
  void wait();

private:
  friend class TaskRuntime;
  friend void spawn(std::function<void()> Fn);
  TaskGroup(TaskRuntime &RT, bool Implicit);

  TaskRuntime &RT;
  std::atomic<int64_t> Pending{0};
  const bool Implicit;
};

/// The scheduler. One instance per checked program execution.
class TaskRuntime {
public:
  struct Options {
    /// Total worker count including the thread that calls run().
    /// 1 executes everything on the caller (deterministic; the default for
    /// tests), 0 means std::thread::hardware_concurrency().
    unsigned NumThreads = 1;
  };

  TaskRuntime(Options Opts);
  TaskRuntime() : TaskRuntime(Options()) {}
  ~TaskRuntime();

  TaskRuntime(const TaskRuntime &) = delete;
  TaskRuntime &operator=(const TaskRuntime &) = delete;

  /// Registers \p Obs to receive execution events. Must be called before
  /// run(). Not owned.
  void addObserver(ExecutionObserver *Obs);

  /// Executes \p Root as the root task (id 0) on the calling thread and
  /// returns when it and all of its descendants have completed. One-shot.
  void run(std::function<void()> Root);

  /// Number of workers (including the run() caller).
  unsigned numThreads() const { return NumThreads; }

  /// The runtime executing the current task, or nullptr outside run().
  static TaskRuntime *current();

  /// The id of the task executing on this thread; asserts inside a task.
  static TaskId currentTaskId();

  /// Reports a read/write of a tracked location by the current task to the
  /// observers. No-ops outside a task (e.g. global initialization),
  /// mirroring the paper's instrumentation which only covers task code.
  static void notifyRead(const void *Addr);
  static void notifyWrite(const void *Addr);

  /// Reports lock operations for the current task (used by avc::Mutex).
  static void notifyLockAcquire(LockId Lock);
  static void notifyLockRelease(LockId Lock);

  /// Reports a tracked-site registration (Tracked/TrackedArray ctor) to
  /// the observers of the live runtime. No-op outside run(); sites that
  /// exist before the run are pulled from the process SiteRegistry at
  /// program start instead, so this only covers mid-run construction.
  static void notifySiteRegister(const void *Base, uint64_t Size,
                                 uint32_t Stride);

  /// The current task's innermost open finish() scope, or nullptr
  /// (supports runtime/Finish.h; asserts inside a task).
  static TaskGroup *currentFinishScope();
  static TaskGroup *swapCurrentFinishScope(TaskGroup *Scope);

private:
  friend class TaskGroup;
  friend void sync();
  friend void spawn(std::function<void()> Fn);

  TaskId allocateTaskId();
  void pushTask(detail::TaskNode *Node);
  detail::TaskNode *findWork(detail::Worker &W);
  void execute(detail::TaskNode *Node);
  void waitUntilZero(std::atomic<int64_t> &Pending);
  void workerMain(detail::Worker &W);
  detail::Worker &registerWorker();

  template <typename FnT> void notifyAll(FnT Fn) {
    for (ExecutionObserver *Obs : Observers)
      Fn(*Obs);
  }

  std::vector<ExecutionObserver *> Observers;
  unsigned NumThreads;
  std::atomic<uint32_t> NextTaskId{0};
  std::atomic<bool> Stop{false};
  bool Started = false;

  ChunkedVector<std::unique_ptr<detail::Worker>> Workers;
  std::vector<std::thread> Threads;

  std::mutex IdleMutex;
  std::condition_variable IdleCv;
  std::atomic<int> NumSleeping{0};
};

/// Cilk-style spawn: runs \p Fn as a child task of the current task in its
/// implicit group. Must be called from inside a task.
void spawn(std::function<void()> Fn);

/// Cilk-style sync: waits for all children spawned by the current task
/// since the last sync (or task start).
void sync();

} // namespace avc

#endif // AVC_RUNTIME_TASKRUNTIME_H
