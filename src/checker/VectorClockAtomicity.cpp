//===- checker/VectorClockAtomicity.cpp - Linear-time vclock engine -------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/VectorClockAtomicity.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <mutex>

#include "obs/Obs.h"

using namespace avc;

VectorClockAtomicity::VectorClockAtomicity(Options Opts)
    : Opts(Opts), Pre(Opts.preanalysisOptions()), PreEnabled(Pre.enabled()),
      Tree(createDpst(Opts.Layout)), Builder(*Tree) {}

VectorClockAtomicity::~VectorClockAtomicity() = default;

void VectorClockAtomicity::registerObsGauges() {
  if (!obs::sessionActive())
    return;
  obs::addGauge("gauge/dpst-nodes",
                [this] { return double(Tree->numNodes()); });
  obs::addGauge("gauge/vclock-transactions",
                [this] { return double(TxnPool.size()); });
}

//===----------------------------------------------------------------------===//
// Task lifecycle: step nodes delimit transactions
//===----------------------------------------------------------------------===//

VectorClockAtomicity::TaskState &
VectorClockAtomicity::createState(TaskId Task) {
  auto State = std::make_unique<TaskState>();
  TaskState *Raw = State.get();
  TaskStorage.emplaceBack(std::move(State));
  Tasks.getOrCreate(Task).store(Raw, std::memory_order_release);
  return *Raw;
}

VectorClockAtomicity::TaskState &VectorClockAtomicity::stateFor(TaskId Task) {
  std::atomic<TaskState *> *Slot = Tasks.lookup(Task);
  assert(Slot && "event for a task that was never spawned");
  TaskState *State = Slot->load(std::memory_order_acquire);
  assert(State && "event for a task that was never spawned");
  return *State;
}

void VectorClockAtomicity::onProgramStart(TaskId RootTask) {
  if (PreEnabled)
    Pre.noteProgramStart(RootTask);
  Builder.initRoot(createState(RootTask).Frame, RootTask);
}

void VectorClockAtomicity::onTaskSpawn(TaskId Parent, const void *GroupTag,
                                       TaskId Child) {
  if (PreEnabled)
    Pre.noteSpawn(Parent, GroupTag);
  TaskState &ParentState = stateFor(Parent);
  TaskState &ChildState = createState(Child);
  Builder.spawnTask(ParentState.Frame, GroupTag, ChildState.Frame, Child);
}

void VectorClockAtomicity::retireCurrent(TaskState &State) {
  if (Txn *Cur = State.Current) {
    Cur->Superseded.store(true, std::memory_order_relaxed);
    State.Current = nullptr;
  }
}

void VectorClockAtomicity::onTaskEnd(TaskId Task) {
  TaskState &State = stateFor(Task);
  // The task will never access again: its transaction is finished for
  // good, so future joins may prune it.
  retireCurrent(State);
  if (PreEnabled)
    Pre.foldView(State.PreView);
  Builder.endTask(State.Frame);
  Totals.NumReads.fetch_add(State.NumReads, std::memory_order_relaxed);
  Totals.NumWrites.fetch_add(State.NumWrites, std::memory_order_relaxed);
  State.NumReads = State.NumWrites = 0;
}

void VectorClockAtomicity::onSync(TaskId Task) {
  if (PreEnabled)
    Pre.noteSync(Task);
  Builder.sync(stateFor(Task).Frame);
}

void VectorClockAtomicity::onGroupWait(TaskId Task, const void *GroupTag) {
  if (PreEnabled)
    Pre.noteGroupWait(Task, GroupTag);
  Builder.waitGroup(stateFor(Task).Frame, GroupTag);
}

void VectorClockAtomicity::onSiteRegister(MemAddr Base, uint64_t Size,
                                          uint32_t Stride) {
  if (PreEnabled)
    Pre.registerRange(Base, Size, Stride);
}

//===----------------------------------------------------------------------===//
// Transactions and clock joins
//===----------------------------------------------------------------------===//

VectorClockAtomicity::VcLoc &VectorClockAtomicity::locFor(ShadowSlot &Slot) {
  VcLoc *Loc = Slot.Loc.load(std::memory_order_acquire);
  if (Loc)
    return *Loc;
  size_t Index = LocPool.emplaceBack();
  VcLoc *Fresh = &LocPool[Index];
  if (Slot.Loc.compare_exchange_strong(Loc, Fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire))
    return *Fresh;
  return *Loc;
}

/// The task's transaction for its current step, rolled lazily: when the
/// step advanced (spawn/sync moved the continuation), the old transaction
/// is superseded and a fresh one allocated. Step-node ids are never
/// reused, so each step has at most one Txn and pointer equality matches
/// step equality.
VectorClockAtomicity::Txn &
VectorClockAtomicity::currentTxn(TaskState &State) {
  NodeId Step = Builder.currentStep(State.Frame);
  Txn *Cur = State.Current;
  if (Cur && Cur->Step == Step)
    return *Cur;
  if (Cur)
    Cur->Superseded.store(true, std::memory_order_relaxed);
  size_t Index = TxnPool.emplaceBack();
  Txn *Fresh = &TxnPool[Index];
  Fresh->Step = Step;
  State.Current = Fresh;
  return *Fresh;
}

void VectorClockAtomicity::joinInto(
    Txn *Dst, Txn *Entry, std::vector<std::pair<Txn *, Txn *>> &Work) {
  if (Entry == Dst)
    return;
  auto It = std::lower_bound(Dst->Clock.begin(), Dst->Clock.end(), Entry,
                             [](const Txn *A, const Txn *B) {
                               return A->Step < B->Step;
                             });
  if (It != Dst->Clock.end() && (*It)->Step == Entry->Step)
    return;
  Dst->Clock.insert(It, Entry);
  ++NumJoinsTotal;
  // Dst's clock grew: every transaction that ever consumed an edge out of
  // Dst must learn about Entry too, or a later membership probe would
  // miss a real path.
  for (Txn *Dep : Dst->Dependents)
    Work.emplace_back(Dep, Entry);
}

void VectorClockAtomicity::joinEdge(Txn *Pred, Txn *Succ, MemAddr Addr) {
  if (Pred == Succ)
    return;
  std::lock_guard<SpinLock> Guard(ClockLock);
  // Same dedup key and order as Velodrome::addEdge: a repeated edge is a
  // no-op before any check, so both engines see identical edge streams.
  uint64_t Key = (uint64_t(Pred->Step) << 32) | uint64_t(Succ->Step);
  if (!EdgeSet.insert(Key).second)
    return;
  // The edge says Pred's conflicting access was observed before Succ's;
  // if Succ already reaches Pred — i.e. Succ is in Pred's predecessor
  // clock — the transactions depend on each other in both directions and
  // the trace is not conflict serializable.
  auto It = std::lower_bound(Pred->Clock.begin(), Pred->Clock.end(),
                             Succ->Step, [](const Txn *A, NodeId Step) {
                               return A->Step < Step;
                             });
  if (It != Pred->Clock.end() && (*It)->Step == Succ->Step) {
    ++NumCyclesTotal;
    if (Cycles.size() < Opts.MaxRetainedReports)
      Cycles.push_back(VClockCycle{Pred->Step, Succ->Step, Addr});
  }
  // Join Pred's predecessors (and Pred itself) into Succ's clock, then
  // flush the growth transitively. Superseded transactions are skipped:
  // they can never again be the subject of a membership probe, so
  // dropping them bounds clock width by the live-transaction count.
  Pred->Dependents.push_back(Succ);
  std::vector<std::pair<Txn *, Txn *>> Work;
  if (!Pred->Superseded.load(std::memory_order_relaxed))
    joinInto(Succ, Pred, Work);
  for (Txn *Entry : Pred->Clock)
    if (!Entry->Superseded.load(std::memory_order_relaxed))
      joinInto(Succ, Entry, Work);
  while (!Work.empty()) {
    auto [Dst, Entry] = Work.back();
    Work.pop_back();
    ++NumPropagationsTotal;
    joinInto(Dst, Entry, Work);
  }
}

void VectorClockAtomicity::onRead(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, /*IsWrite=*/false);
}

void VectorClockAtomicity::onWrite(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, /*IsWrite=*/true);
}

void VectorClockAtomicity::onAccess(TaskId Task, MemAddr Addr, bool IsWrite) {
  TaskState &State = stateFor(Task);
  if (PreEnabled &&
      Pre.gate(State.PreView, Task, Addr,
               IsWrite ? AccessKind::Write : AccessKind::Read))
    return;
  if (IsWrite)
    ++State.NumWrites;
  else
    ++State.NumReads;
  Txn *Cur = &currentTxn(State);
  VcLoc &Loc = locFor(Shadow.getOrCreate(Addr));

  std::lock_guard<SpinLock> Guard(Loc.Lock);
  if (!IsWrite) {
    if (Loc.LastWriter)
      joinEdge(Loc.LastWriter, Cur, Addr);
    for (Txn *Reader : Loc.Readers)
      if (Reader == Cur)
        return;
    Loc.Readers.push_back(Cur);
    return;
  }
  if (Loc.LastWriter)
    joinEdge(Loc.LastWriter, Cur, Addr);
  for (Txn *Reader : Loc.Readers)
    joinEdge(Reader, Cur, Addr);
  Loc.Readers.clear();
  Loc.LastWriter = Cur;
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

VClockStats VectorClockAtomicity::stats() const {
  VClockStats Stats;
  Stats.NumReads = Totals.NumReads.load(std::memory_order_relaxed);
  Stats.NumWrites = Totals.NumWrites.load(std::memory_order_relaxed);
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.NumReads += State.NumReads;
    Stats.NumWrites += State.NumWrites;
  }
  Stats.Pre = Pre.stats();
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.Pre.NumSeqSkips += State.PreView.SeqSkips;
    Stats.Pre.NumSiteSkips += State.PreView.SiteSkips;
  }
  Stats.NumTransactions = TxnPool.size();
  std::lock_guard<SpinLock> Guard(ClockLock);
  Stats.NumEdges = EdgeSet.size();
  Stats.NumCycles = NumCyclesTotal;
  Stats.NumJoins = NumJoinsTotal;
  Stats.NumPropagations = NumPropagationsTotal;
  return Stats;
}

std::vector<VClockCycle> VectorClockAtomicity::cycles() const {
  std::lock_guard<SpinLock> Guard(ClockLock);
  return Cycles;
}

size_t VectorClockAtomicity::numViolations() const {
  std::lock_guard<SpinLock> Guard(ClockLock);
  return NumCyclesTotal;
}

std::set<MemAddr> VectorClockAtomicity::violationKeys() const {
  std::set<MemAddr> Keys;
  for (const VClockCycle &Cycle : cycles())
    Keys.insert(Cycle.Addr);
  return Keys;
}

void VectorClockAtomicity::printReport(std::FILE *Out) const {
  for (const VClockCycle &Cycle : cycles())
    std::fprintf(Out,
                 "  unserializable transaction in observed trace: edge "
                 "S%u -> S%u closed a cycle (location 0x%llx)\n",
                 Cycle.Source, Cycle.Target,
                 static_cast<unsigned long long>(Cycle.Addr));
}

void VectorClockAtomicity::visitStats(const StatVisitor &Visit) const {
  VClockStats Stats = stats();
  Visit("violations", double(Stats.NumCycles));
  Visit("transactions", double(Stats.NumTransactions));
  Visit("edges", double(Stats.NumEdges));
  Visit("joins", double(Stats.NumJoins));
  Visit("propagations", double(Stats.NumPropagations));
  Visit("reads", double(Stats.NumReads));
  Visit("writes", double(Stats.NumWrites));
  visitPreanalysisStats(Visit, Stats.Pre);
}
