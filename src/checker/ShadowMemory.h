//===- checker/ShadowMemory.h - Address-keyed metadata map -----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps 48-bit virtual addresses of tracked locations to per-location
/// analysis slots through a three-level radix tree (16/16/16 bits). Levels
/// are allocated on demand with a CAS; slots never move, so a slot
/// reference stays valid for the map's lifetime and lookups are lock-free.
/// Both the atomicity checker (global metadata space) and the Velodrome
/// baseline (last-writer/reader records) instantiate this with their own
/// slot type.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_SHADOWMEMORY_H
#define AVC_CHECKER_SHADOWMEMORY_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/ExecutionObserver.h"
#include "support/SpinLock.h"

namespace avc {

/// Three-level shadow map from MemAddr to a default-constructed SlotT.
template <typename SlotT> class ShadowMemory {
  static constexpr unsigned LevelBits = 16;
  static constexpr size_t LevelSize = size_t(1) << LevelBits;
  static constexpr size_t LevelMask = LevelSize - 1;

public:
  ShadowMemory() : Root(new TopTable()) {}

  ShadowMemory(const ShadowMemory &) = delete;
  ShadowMemory &operator=(const ShadowMemory &) = delete;

  ~ShadowMemory() {
    for (size_t I = 0; I < LevelSize; ++I) {
      MidTable *Mid = (*Root)[I].load(std::memory_order_relaxed);
      if (!Mid)
        continue;
      for (size_t J = 0; J < LevelSize; ++J)
        delete[] (*Mid)[J].load(std::memory_order_relaxed);
      delete Mid;
    }
    delete Root;
  }

  /// Bytes of shadow tables materialized so far (top, mid, and leaf
  /// levels). Relaxed-atomic accounting, so the observability layer can
  /// sample it as a gauge while tasks run.
  uint64_t footprintBytes() const {
    return FootprintBytes.load(std::memory_order_relaxed);
  }

  /// Returns the slot for \p Addr, materializing intermediate tables and
  /// the leaf as needed. Thread safe.
  SlotT &getOrCreate(MemAddr Addr) {
    assert((Addr >> 48) == 0 && "address beyond 48-bit shadow space");
    size_t TopIndex = (Addr >> (2 * LevelBits)) & LevelMask;
    size_t MidIndex = (Addr >> LevelBits) & LevelMask;
    size_t LeafIndex = Addr & LevelMask;

    MidTable *Mid = loadOrCreate<MidTable>((*Root)[TopIndex]);
    SlotT *Leaf = loadOrCreateLeaf((*Mid)[MidIndex]);
    return Leaf[LeafIndex];
  }

  /// Returns the slot for \p Addr, or nullptr if never materialized.
  SlotT *lookup(MemAddr Addr) const {
    if ((Addr >> 48) != 0)
      return nullptr;
    MidTable *Mid =
        (*Root)[(Addr >> (2 * LevelBits)) & LevelMask].load(
            std::memory_order_acquire);
    if (!Mid)
      return nullptr;
    SlotT *Leaf =
        (*Mid)[(Addr >> LevelBits) & LevelMask].load(std::memory_order_acquire);
    return Leaf ? &Leaf[Addr & LevelMask] : nullptr;
  }

private:
  using LeafTable = SlotT;
  struct MidTable : std::vector<std::atomic<SlotT *>> {
    MidTable() : std::vector<std::atomic<SlotT *>>(LevelSize) {}
  };
  struct TopTable : std::vector<std::atomic<MidTable *>> {
    TopTable() : std::vector<std::atomic<MidTable *>>(LevelSize) {}
  };

  template <typename TableT>
  TableT *loadOrCreate(std::atomic<TableT *> &Cell) {
    TableT *Table = Cell.load(std::memory_order_acquire);
    if (Table)
      return Table;
    TableT *Fresh = new TableT();
    if (Cell.compare_exchange_strong(Table, Fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      FootprintBytes.fetch_add(LevelSize * sizeof(std::atomic<SlotT *>),
                               std::memory_order_relaxed);
      return Fresh;
    }
    delete Fresh;
    return Table;
  }

  SlotT *loadOrCreateLeaf(std::atomic<SlotT *> &Cell) {
    SlotT *Leaf = Cell.load(std::memory_order_acquire);
    if (Leaf)
      return Leaf;
    SlotT *Fresh = new SlotT[LevelSize]();
    if (Cell.compare_exchange_strong(Leaf, Fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      FootprintBytes.fetch_add(LevelSize * sizeof(SlotT),
                               std::memory_order_relaxed);
      return Fresh;
    }
    delete[] Fresh;
    return Leaf;
  }

  TopTable *Root;
  std::atomic<uint64_t> FootprintBytes{LevelSize *
                                       sizeof(std::atomic<void *>)};
};

} // namespace avc

#endif // AVC_CHECKER_SHADOWMEMORY_H
