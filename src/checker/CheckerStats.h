//===- checker/CheckerStats.h - Aggregated analysis statistics -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-run statistics the paper's evaluation reports: Table 1's
/// characterization columns (unique locations, DPST nodes, LCA queries,
/// percentage of unique LCA queries) plus access and violation counts.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_CHECKERSTATS_H
#define AVC_CHECKER_CHECKERSTATS_H

#include <cstdint>

#include "analysis/SiteClass.h"
#include "dpst/ParallelismOracle.h"

namespace avc {

/// Snapshot of one checked execution's characteristics.
struct CheckerStats {
  /// Distinct tracked memory locations accessed (Table 1 column 2).
  uint64_t NumLocations = 0;
  /// Nodes in the DPST at program end (Table 1 column 3).
  uint64_t NumDpstNodes = 0;
  /// LCA query counters (Table 1 columns 4-5).
  LcaQueryStats Lca;
  /// Tracked reads / writes processed.
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  /// Distinct violations recorded and distinct locations they involve.
  uint64_t NumViolations = 0;
  uint64_t NumViolatingLocations = 0;
  /// Accesses retired by the access-path cache's *verdict* tier — provably
  /// redundant, returned before touching the shadow map or any shared state
  /// (included in NumReads/NumWrites). Split by kind for characterization.
  uint64_t NumCacheHits = 0;
  uint64_t NumCacheHitReads = 0;
  uint64_t NumCacheHitWrites = 0;
  /// Slow-path accesses that skipped the shadow radix walk and the local
  /// map probe because the cache still held valid resolved pointers (the
  /// *path* tier).
  uint64_t NumCachePathHits = 0;
  /// Stamps that displaced a live entry for a different address (the
  /// direct-mapped collision cost).
  uint64_t NumCacheEvictions = 0;
  /// LockSet snapshots actually materialized; every other slow-path access
  /// reused the version-cached snapshot.
  uint64_t NumLockSnapshots = 0;
  /// Slow-path re-touches retired by the lock-free redundancy probe: the
  /// seqlock-validated snapshot proved the access redundant, so it never
  /// took the per-location lock.
  uint64_t NumSeqlockSkips = 0;
  /// True if the access-path cache was enabled for the run.
  bool AccessCacheEnabled = false;
  /// Site pre-analysis counters: skipped accesses (not included in
  /// NumReads/NumWrites), downgrades, and per-class site counts. Mode is
  /// Off when the gate was disabled.
  PreanalysisStats Pre;

  /// Percentage of tracked accesses answered by the verdict tier.
  double cacheHitRate() const {
    uint64_t Total = NumReads + NumWrites;
    if (Total == 0)
      return 0.0;
    return 100.0 * static_cast<double>(NumCacheHits) /
           static_cast<double>(Total);
  }

  /// Percentage of tracked accesses that skipped resolution via the path
  /// tier (disjoint from cacheHitRate's accesses).
  double cachePathHitRate() const {
    uint64_t Total = NumReads + NumWrites;
    if (Total == 0)
      return 0.0;
    return 100.0 * static_cast<double>(NumCachePathHits) /
           static_cast<double>(Total);
  }
};

} // namespace avc

#endif // AVC_CHECKER_CHECKERSTATS_H
