//===- checker/CheckerStats.h - Aggregated analysis statistics -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-run statistics the paper's evaluation reports: Table 1's
/// characterization columns (unique locations, DPST nodes, LCA queries,
/// percentage of unique LCA queries) plus access and violation counts.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_CHECKERSTATS_H
#define AVC_CHECKER_CHECKERSTATS_H

#include <cstdint>

#include "dpst/ParallelismOracle.h"

namespace avc {

/// Snapshot of one checked execution's characteristics.
struct CheckerStats {
  /// Distinct tracked memory locations accessed (Table 1 column 2).
  uint64_t NumLocations = 0;
  /// Nodes in the DPST at program end (Table 1 column 3).
  uint64_t NumDpstNodes = 0;
  /// LCA query counters (Table 1 columns 4-5).
  LcaQueryStats Lca;
  /// Tracked reads / writes processed.
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  /// Distinct violations recorded and distinct locations they involve.
  uint64_t NumViolations = 0;
  uint64_t NumViolatingLocations = 0;
  /// Accesses retired by the per-task redundant-access fast path before
  /// touching the shadow map or any shared state (included in
  /// NumReads/NumWrites). Split by kind for workload characterization.
  uint64_t NumFilterHits = 0;
  uint64_t NumFilterHitReads = 0;
  uint64_t NumFilterHitWrites = 0;
  /// True if the access filter was enabled for the run.
  bool AccessFilterEnabled = false;

  /// Percentage of tracked accesses answered by the fast path.
  double filterHitRate() const {
    uint64_t Total = NumReads + NumWrites;
    if (Total == 0)
      return 0.0;
    return 100.0 * static_cast<double>(NumFilterHits) /
           static_cast<double>(Total);
  }
};

} // namespace avc

#endif // AVC_CHECKER_CHECKERSTATS_H
