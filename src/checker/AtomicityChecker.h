//===- checker/AtomicityChecker.h - The optimized checker ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's atomicity violation detector (Section 3): an
/// ExecutionObserver that builds the DPST from task-management events and,
/// on every tracked memory access, propagates and checks the fixed-size
/// global metadata space (12 entries per location, Figures 6-9) against the
/// per-task local metadata space (first read/write by the current step
/// node, with the lockset held at each access, Section 3.3).
///
/// The checker detects atomicity violations that can occur in *any*
/// schedule for the observed input — not just the observed interleaving —
/// because parallelism is judged structurally via the DPST rather than
/// temporally.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_ATOMICITYCHECKER_H
#define AVC_CHECKER_ATOMICITYCHECKER_H

#include <atomic>
#include <cassert>
#include <memory>
#include <vector>

#include "analysis/SitePreanalysis.h"
#include "checker/AccessCache.h"
#include "checker/AccessKind.h"
#include "checker/CheckerStats.h"
#include "checker/CheckerTool.h"
#include "checker/GlobalMetadata.h"
#include "checker/LocationNames.h"
#include "checker/LockSet.h"
#include "checker/MetadataShards.h"
#include "checker/ShadowMemory.h"
#include "checker/ToolOptions.h"
#include "checker/ViolationReport.h"
#include "dpst/Dpst.h"
#include "dpst/DpstBuilder.h"
#include "dpst/ParallelismOracle.h"
#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"
#include "support/Compiler.h"
#include "support/PointerMap.h"
#include "support/RadixTable.h"

namespace avc {

/// Registry extras for the atomicity engine: the two beyond-the-paper
/// completeness knobs that only this checker has. Passed through the
/// opaque ToolExtras hook so the shared ToolOptions surface stays
/// engine-agnostic (bench/ablation_modes uses this to build the
/// paper-literal configuration).
struct AtomicityExtras : ToolExtras {
  bool ExtraInterleaverChecks = true;
  bool CompleteMetadata = true;
};

/// Optimized atomicity violation checker with fixed-size metadata.
class AtomicityChecker : public CheckerTool {
public:
  /// Shared tool configuration (ToolOptions) plus the knobs only this
  /// checker has.
  struct Options : ToolOptions {
    /// Also test every repeated access as an interleaver (A2) against the
    /// global two-access patterns. The paper's Figure 9 checks a repeated
    /// access only as a pattern-former (A1/A3), which misses triples where
    /// the interleaver step read the location before writing it (its write
    /// is then a "non-first" access and Figure 8's A2 checks never run);
    /// the randomized equivalence suite found concrete traces where the
    /// literal algorithm is incomplete (see DESIGN.md). Enabled by default
    /// as a correctness fix — still O(1) checks per access; disable for a
    /// paper-literal reproduction.
    bool ExtraInterleaverChecks = true;
    /// Keep *two* records per two-access-pattern kind and retain the
    /// leftmost and rightmost (tree-order) parallel owners in every
    /// entry pair. The paper's single pattern record and first-fit
    /// retention can evict the one pattern a later access violates (two
    /// parallel steps own RR patterns; a writer parallel only to the
    /// evicted one escapes) — the randomized suite found such traces, and
    /// the leftmost/rightmost rule is the classic fix (Mellor-Crummey'91).
    /// Still fixed-size metadata (20 entries vs the paper's 12). Enabled
    /// by default; disable for a paper-literal reproduction.
    bool CompleteMetadata = true;
  };

  AtomicityChecker(Options Opts);
  AtomicityChecker() : AtomicityChecker(Options()) {}
  ~AtomicityChecker() override;

  /// Declares that the locations \p Members (byte addresses of the tracked
  /// objects) must be accessed atomically *together*: they share one
  /// metadata instance ("we provide the same metadata to all those
  /// locations", Section 3). Must be called before any member is accessed.
  /// A member already tracked with *empty* private metadata is merged into
  /// the group; a member with recorded accesses or one belonging to another
  /// group cannot be merged — the conflict is reported on stderr, that
  /// member keeps its old metadata, and false is returned.
  bool registerAtomicGroup(const MemAddr *Members, size_t Count);

  /// Registers a display name for a tracked location; reports mentioning
  /// it then print the name instead of the raw address.
  void nameLocation(MemAddr Addr, std::string Name) override {
    Names.set(Addr, std::move(Name));
  }

  // CheckerTool reporting interface.
  const char *name() const override { return "atomicity"; }
  size_t numViolations() const override { return Log.size(); }
  std::set<MemAddr> violationKeys() const override;
  void printReport(std::FILE *Out) const override;
  void visitStats(const StatVisitor &Visit) const override;
  /// The human-readable statistics block taskcheck prints after a run
  /// (location/access/query totals, cache and pre-analysis counters).
  void printStats(std::FILE *Out) const override;

  // ExecutionObserver interface.
  void onProgramStart(TaskId RootTask) override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onLockAcquire(TaskId Task, LockId Lock) override;
  void onLockRelease(TaskId Task, LockId Lock) override;
  void onRead(TaskId Task, MemAddr Addr) override {
    onAccess(Task, Addr, AccessKind::Read);
  }
  void onWrite(TaskId Task, MemAddr Addr) override {
    onAccess(Task, Addr, AccessKind::Write);
  }
  void onSiteRegister(MemAddr Base, uint64_t Size, uint32_t Stride) override;

  /// The detected violations.
  const ViolationLog &violations() const { return Log; }

  /// Statistics snapshot (Table 1 columns and more).
  CheckerStats stats() const;

  /// Registers this checker's gauges with the active observability session
  /// (DPST node count, shadow-memory footprint, access totals, cache hit
  /// rates, violation count). Every callback reads only atomics or
  /// internally locked counters, so sampling is safe while tasks run.
  /// No-op without an active session.
  void registerObsGauges();

  /// The DPST built from the execution (for inspection and tests).
  const Dpst &dpst() const { return *Tree; }

  /// The parallel-query front end (for inspection and tests).
  ParallelismOracle &oracle() { return *Oracle; }

  /// The site pre-analysis engine (two-pass replay adoption, tests).
  SitePreanalysis &preanalysis() { return Pre; }

private:
  /// Local metadata space entry for one (task, location): the first read
  /// and first write by the current step node, each with the lockset held
  /// at the time (Sections 3.2.1 and 3.3).
  struct LocalLoc {
    NodeId RStep = InvalidNodeId;
    NodeId WStep = InvalidNodeId;
    LockSet RLocks;
    LockSet WLocks;
  };

  using CacheT = AccessCache<GlobalMetadata, LocalLoc>;

  /// Per-task checker state; owned by the checker, mutated only by the
  /// worker currently executing the task. Cache-line aligned so one task's
  /// hot state never shares a line with another's.
  ///
  /// Single-owner counter invariant: a task executes on exactly one worker
  /// at a time, so the statistics counters below are *plain* integers
  /// written only by that worker — no per-access fetch_add. onTaskEnd()
  /// folds them into the checker-wide atomic Totals and zeroes them;
  /// stats() returns Totals plus the counters of tasks that have not ended
  /// yet, which is exact whenever no task is mid-execution (ToolContext::
  /// run guarantees quiescence on return, and every in-tree stats() caller
  /// runs after it returns).
  struct alignas(AVC_CACHELINE_SIZE) TaskState {
    TaskFrame Frame;
    /// Pre-analysis gate state (MRU site ranges, skip counters, held-lock
    /// signature); folded and reset at task end.
    SitePreanalysis::TaskView PreView;
    PointerMap<GlobalMetadata *, LocalLoc> Local;
    HeldLocks Locks;
    /// The access-path cache for this task (see AccessCache.h).
    AccessCache<GlobalMetadata, LocalLoc> Cache;
    /// Critical-section epoch: bumped on every lock release, which is the
    /// only lock event that can widen the set of patterns a future access
    /// forms (acquires add fresh tokens that never intersect an interim
    /// lockset). Cache entries from older epochs never give a verdict hit.
    /// 64-bit so a wrapped epoch can never alias a live one.
    uint64_t CacheEpoch = 0;
    /// Version-cached lockset snapshot: exact while LockViewVersion ==
    /// Locks.version(). Both start at zero with an empty held set, so the
    /// initial view is valid without ever materializing a snapshot.
    LockSet LockView;
    uint64_t LockViewVersion = 0;
    /// Block of pre-reserved lock tokens (see onLockAcquire): the global
    /// token counter is touched once per block, not once per acquire.
    LockToken TokenNext = 0;
    LockToken TokenEnd = 0;
    /// Violations found under the location lock, recorded into the shared
    /// log only after the lock is released (no lock may be taken under a
    /// location lock). Owner-private; reused across accesses.
    std::vector<Violation> Pending;
    // Plain owner-written statistics (see the invariant above).
    uint64_t NumReads = 0;
    uint64_t NumWrites = 0;
    uint64_t NumLocations = 0;
    uint64_t NumCacheHitReads = 0;
    uint64_t NumCacheHitWrites = 0;
    uint64_t NumCachePathHits = 0;
    uint64_t NumCacheEvictions = 0;
    uint64_t NumLockSnapshots = 0;
    uint64_t NumSeqlockSkips = 0;
  };

  /// Checker-wide counter totals, folded from TaskState at task end (the
  /// only shared-counter writes left; one batch per task, not per access).
  struct CounterTotals {
    std::atomic<uint64_t> NumReads{0};
    std::atomic<uint64_t> NumWrites{0};
    std::atomic<uint64_t> NumLocations{0};
    std::atomic<uint64_t> NumCacheHitReads{0};
    std::atomic<uint64_t> NumCacheHitWrites{0};
    std::atomic<uint64_t> NumCachePathHits{0};
    std::atomic<uint64_t> NumCacheEvictions{0};
    std::atomic<uint64_t> NumLockSnapshots{0};
    std::atomic<uint64_t> NumSeqlockSkips{0};
  };

  /// Shadow slot per tracked address: the (possibly shared) global
  /// metadata. First-touch accounting lives in GlobalMetadata::Counted,
  /// taken under the per-location lock — no extra per-access atomic here.
  struct ShadowSlot {
    std::atomic<GlobalMetadata *> Meta{nullptr};
  };

  /// Hot-path task lookup; header-inline so onAccess stays call-free until
  /// the slow path.
  TaskState &stateFor(TaskId Task) {
    std::atomic<TaskState *> *Slot = Tasks.lookup(Task);
    assert(Slot && "event for a task that was never spawned");
    TaskState *State = Slot->load(std::memory_order_acquire);
    assert(State && "event for a task that was never spawned");
    return *State;
  }

  TaskState &createState(TaskId Task);
  GlobalMetadata &metadataFor(MemAddr Addr, ShadowSlot &Slot);

  /// Par() of the algorithms: false for empty entries, true iff the steps
  /// can logically execute in parallel.
  bool par(NodeId Entry, NodeId Si);

  /// The per-access hot path, header-inline: resolve the current step from
  /// the task frame's cache (refreshed by the builder on task-management
  /// events), bump a plain counter, and probe the access-path cache. A
  /// verdict hit returns here; everything else is a single out-of-line
  /// call.
  AVC_ALWAYS_INLINE void onAccess(TaskId Task, MemAddr Addr,
                                  AccessKind Kind) {
    TaskState &State = stateFor(Task);
    // Pre-analysis gate, ahead of everything — the DPST step is not even
    // materialized for a skipped access (see SitePreanalysis.h).
    if (PreEnabled && Pre.gate(State.PreView, Task, Addr, Kind))
      return;
    NodeId Si = State.Frame.currentStepOrInvalid();
    if (AVC_UNLIKELY(Si == InvalidNodeId))
      Si = Builder.currentStep(State.Frame);

    if (Kind == AccessKind::Read)
      ++State.NumReads;
    else
      ++State.NumWrites;

    if (AVC_LIKELY(State.Cache.enabled())) {
      CacheT::Entry &E = State.Cache.entryFor(Addr);
      if (AVC_LIKELY(E.Addr == Addr && E.Gen == State.Cache.generation())) {
        if (E.Step == Si && E.Epoch == cacheEpoch(State) &&
            (E.Bits & CacheT::bitFor(Kind)) != 0) {
          // Verdict tier: a previous slow-path trip proved this access
          // redundant — no shadow walk, no snapshot, no location lock.
          if (Kind == AccessKind::Read)
            ++State.NumCacheHitReads;
          else
            ++State.NumCacheHitWrites;
          return;
        }
        if (AVC_LIKELY(E.MapGen == State.Local.generation())) {
          // Path tier: the memoized pointers are still valid; skip the
          // radix walk and the local-map probe. The redundancy proofs are
          // worth computing only when the previous touch was by this same
          // step and epoch — only then can a verdict stamped now be served
          // to a further repeat; cross-step re-touches (the kmeans
          // profile) would pay for proofs that expire before use.
          ++State.NumCachePathHits;
          accessResolved(State, Addr, *E.Meta, *E.Local, Si, Kind,
                         /*ComputeVerdicts=*/E.Step == Si &&
                             E.Epoch == cacheEpoch(State));
          return;
        }
      }
    }
    accessMiss(State, Addr, Si, Kind);
  }

  /// Cache miss (or cache disabled): resolve the full access path — shadow
  /// radix walk, metadata materialization, local-map probe — then hand off
  /// to accessResolved.
  void accessMiss(TaskState &State, MemAddr Addr, NodeId Si,
                  AccessKind Kind);

  /// The common slow path with the access path in hand: stale-buffer
  /// invalidation, the Figure 6 dispatch under the location lock, and the
  /// cache re-stamp. Verdict proofs are lazy: a first touch of a slot
  /// (\p ComputeVerdicts false) stamps the resolved pointers only — most
  /// addresses are never re-touched in the same step window, so running
  /// the proofs there is pure overhead. A path-tier re-touch passes true
  /// and pays for the proofs, which then serve every further repeat from
  /// the verdict tier.
  void accessResolved(TaskState &State, MemAddr Addr, GlobalMetadata &GS,
                      LocalLoc &LS, NodeId Si, AccessKind Kind,
                      bool ComputeVerdicts);

  /// The task's current lockset, re-snapshotted only when Locks.version()
  /// moved since the cached view was taken.
  const LockSet &heldLockView(TaskState &State);

  /// The epoch cache entries are stamped with and compared against. The
  /// per-task critical-section epoch plus the engine's downgrade
  /// generation: a pre-analysis downgrade anywhere retires every cached
  /// verdict at once (entries stamped while a site's reads were skipped
  /// may encode "safe" against incomplete metadata). Both components are
  /// monotonic, so the sum never revalidates an old entry.
  uint64_t cacheEpoch(const TaskState &State) const {
    return State.CacheEpoch + (PreEnabled ? Pre.downgradeGen() : 0);
  }

  /// Folds a finished task's plain counters into Totals and zeroes them.
  void flushCounters(TaskState &State);

  /// Drains \p State.Pending into the shared violation log. Called after
  /// GS.Lock is released: the log has its own lock, and no lock may be
  /// taken under a location lock.
  void recordPending(TaskState &State, GlobalMetadata &GS);

  /// Lock-free redundancy probe: evaluates both redundancy proofs against
  /// a seqlock-validated snapshot of the global entries. Returns true iff
  /// the snapshot was consistent (no concurrent locked writer); the
  /// verdicts are then as trustworthy as ones computed under the lock.
  bool probeRedundant(const GlobalMetadata &GS, const LocalLoc &LS,
                      NodeId Si, const LockSet &Locks, bool &ReadRedundant,
                      bool &WriteRedundant);

  /// Redundancy proofs for the access filter, evaluated under GS.Lock (or
  /// against a validated seqlock snapshot) after an access was handled:
  /// true iff a further access of that kind by step \p Si at the current
  /// lockset provably re-derives metadata that is already promoted (see
  /// DESIGN.md "Access filtering").
  static bool readIsRedundant(const GlobalMetadata &GS, const LocalLoc &LS,
                              NodeId Si, const LockSet &Locks);
  static bool writeIsRedundant(const GlobalMetadata &GS, const LocalLoc &LS,
                               NodeId Si, const LockSet &Locks);

  void handleFirstAccess(GlobalMetadata &GS, LocalLoc &LS, NodeId Si,
                         AccessKind Kind, const LockSet &Locks);
  void handleFirstAccessCurrentTask(GlobalMetadata &GS, LocalLoc &LS,
                                    NodeId Si, AccessKind Kind,
                                    const LockSet &Locks,
                                    std::vector<Violation> &Pending);
  void handleNonFirstAccess(GlobalMetadata &GS, LocalLoc &LS, NodeId Si,
                            AccessKind Kind, const LockSet &Locks,
                            std::vector<Violation> &Pending);

  /// Check(): queues a violation into \p Pending if \p PatternStep's
  /// (K1, K3) pattern and the interleaving access (\p InterleaverStep, K2)
  /// form an unserializable triple by logically parallel steps. Either
  /// step may be InvalidNodeId (no-op). Runs under GS.Lock; the queued
  /// candidates are recorded by recordPending after release.
  void check(GlobalMetadata &GS, NodeId PatternStep, AccessKind K1,
             AccessKind K3, NodeId InterleaverStep, AccessKind K2,
             std::vector<Violation> &Pending);

  /// Tests the recorded two-access patterns against the current access as
  /// the interleaver (Figure 8's Check() calls, over both slots of each
  /// vulnerable kind).
  void checkPatternsAgainstRead(GlobalMetadata &GS, NodeId Si,
                                std::vector<Violation> &Pending);
  void checkPatternsAgainstWrite(GlobalMetadata &GS, NodeId Si,
                                 std::vector<Violation> &Pending);

  /// Records \p Si into the entry pair (\p E1, \p E2). Paper-literal mode:
  /// first-fit into an empty or in-series slot (Figure 8 lines 6-9/16-19).
  /// Complete mode: replace dominated (in-series) entries, then keep the
  /// leftmost and rightmost parallel entries in tree order. Slots are only
  /// stored when their value actually changes (concurrent probers retry on
  /// any store's seqlock bump).
  void retainEntry(MetaSlot &E1, MetaSlot &E2, NodeId Si);

  /// Records the pattern owner \p Si into the pattern slot pair. The
  /// paper-literal mode uses the single slot \p P1 with the Figure 9 rule
  /// (store when empty or in series); complete mode uses both slots with
  /// the retention policy above.
  void retainPattern(MetaSlot &P1, MetaSlot &P2, NodeId Si);

  Options Opts;
  /// Site pre-analysis engine: the gate consulted ahead of the access
  /// cache, fed by registration events and the classification front ends.
  SitePreanalysis Pre;
  /// Gate enabled for this run (const so the per-access branch predicts
  /// perfectly and dead-codes in the Off configuration).
  const bool PreEnabled;
  /// True when the runtime may execute tasks on more than one worker: the
  /// locked writers then publish their slot mutations through the seqlock
  /// (GlobalMetadata::beginWrite/endWrite) and the lock-free probe
  /// validates against it. Single-worker runs skip both — no concurrent
  /// prober can exist.
  const bool Concurrent;
  std::unique_ptr<Dpst> Tree;
  std::unique_ptr<ParallelismOracle> Oracle;
  DpstBuilder Builder;

  ShadowMemory<ShadowSlot> Shadow;
  /// Global-metadata allocation, sharded by address hash so concurrent
  /// first touches do not funnel through one pool lock.
  MetadataShards MetaShards;
  /// Recycled access-cache tables: a task's table is acquired lazily on
  /// its first access (tasks that never touch memory pay nothing) and
  /// returned at task end with its entries left dirty — the table
  /// generation invalidates them (see AccessCache::Pool).
  CacheT::Pool CachePool;

  RadixTable<std::atomic<TaskState *>> Tasks;
  ChunkedVector<std::unique_ptr<TaskState>> TaskStorage;
  CounterTotals Totals;

  /// Tokens handed to each task in blocks of this size, so the shared
  /// counter below is touched once per block instead of once per acquire.
  /// Uniqueness is all the lock-versioning scheme needs; cross-task token
  /// order is meaningless.
  static constexpr LockToken LockTokenBlock = 64;
  std::atomic<LockToken> NextLockToken{1};
  std::atomic<uint64_t> NumViolatingLocations{0};
  LocationNames Names;
  ViolationLog Log;
};

} // namespace avc

#endif // AVC_CHECKER_ATOMICITYCHECKER_H
