//===- checker/VectorClockAtomicity.h - Linear-time vclock engine -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AeroDrome-style conflict-serializability checker ("Atomicity Checking
/// in Linear Time using Vector Clocks", Mathur & Viswanathan, ASPLOS'20)
/// at the same step-node transaction granularity as the Velodrome
/// baseline: each step node is one transaction, conflicting accesses
/// induce happens-before edges in observed order, and a cycle means the
/// observed trace is not conflict serializable.
///
/// Where Velodrome answers each cycle query with a DFS over the full
/// transaction graph, this engine maintains a per-transaction predecessor
/// clock — the set of transactions known to reach it — updated
/// incrementally as edges arrive, so an edge P -> S closes a cycle exactly
/// when S is already in P's clock: one sorted-set membership probe instead
/// of a graph walk. Clocks grow monotonically; finished ("superseded")
/// transactions are pruned from future joins, which keeps clock width
/// proportional to the number of live transactions rather than the trace
/// length and makes the whole pass linear in practice (the trace_scale
/// bench gates per-event throughput within 2x across a 10x trace-length
/// range).
///
/// Like Velodrome, the verdict is trace-bound: only the observed schedule
/// is judged, so a single-threaded run gives it nothing to find. The
/// engine is constructed so its detection set is *identical* to
/// Velodrome's on any trace — same edges, same dedup, same check order —
/// which the cross-engine differential suite asserts.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_VECTORCLOCKATOMICITY_H
#define AVC_CHECKER_VECTORCLOCKATOMICITY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "analysis/SitePreanalysis.h"
#include "checker/CheckerTool.h"
#include "checker/ShadowMemory.h"
#include "checker/ToolOptions.h"
#include "dpst/Dpst.h"
#include "dpst/DpstBuilder.h"
#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"
#include "support/RadixTable.h"

namespace avc {

/// Counters for a vector-clock run.
struct VClockStats {
  uint64_t NumTransactions = 0; ///< Transactions allocated (with accesses).
  uint64_t NumEdges = 0;        ///< Distinct conflict edges added.
  uint64_t NumCycles = 0;       ///< Cycles detected (= violations in trace).
  uint64_t NumJoins = 0;        ///< Clock entries inserted across all joins.
  uint64_t NumPropagations = 0; ///< Worklist steps forwarding clock growth.
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  /// Site pre-analysis counters (Mode is Off when the gate was disabled).
  PreanalysisStats Pre;
};

/// One detected cycle: adding Source -> Target closed a cycle, i.e. Target
/// already reached Source; Target's transaction is unserializable in the
/// observed trace. Field-compatible with VelodromeCycle so the
/// differential tests can compare reports structurally.
struct VClockCycle {
  NodeId Source;
  NodeId Target;
  MemAddr Addr;
};

/// The linear-time trace-bound engine (second backend beside Velodrome).
class VectorClockAtomicity : public CheckerTool {
public:
  /// All configuration is the shared ToolOptions surface. Like Velodrome
  /// there is no parallelism oracle, so the query/cache fields are unused;
  /// Layout picks the DPST implementation that mints step-node ids.
  struct Options : ToolOptions {};

  VectorClockAtomicity(Options Opts);
  VectorClockAtomicity() : VectorClockAtomicity(Options()) {}
  ~VectorClockAtomicity() override;

  // ExecutionObserver interface.
  void onProgramStart(TaskId RootTask) override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;
  void onSiteRegister(MemAddr Base, uint64_t Size, uint32_t Stride) override;

  // CheckerTool interface.
  const char *name() const override { return "vclock"; }
  size_t numViolations() const override;
  std::set<MemAddr> violationKeys() const override;
  void printReport(std::FILE *Out) const override;
  void visitStats(const StatVisitor &Visit) const override;
  void registerObsGauges() override;
  SitePreanalysis &preanalysis() override { return Pre; }

  VClockStats stats() const;
  std::vector<VClockCycle> cycles() const;

private:
  /// One transaction: a step node that performed tracked accesses. Clock
  /// and Dependents are guarded by ClockLock; Superseded is a monotone
  /// flag flipped by the owning task when it moves to a new step (a stale
  /// read only costs pruning, never soundness).
  struct Txn {
    NodeId Step = InvalidNodeId;
    std::atomic<bool> Superseded{false};
    /// Known predecessor transactions, sorted by Step for O(log n)
    /// membership. Entries are inserted while live and never removed.
    std::vector<Txn *> Clock;
    /// Transactions subscribed to this one's clock growth. Kept for the
    /// whole run: an edge out of a finished transaction still forwards
    /// later growth of its clock (correctness depends on it).
    std::vector<Txn *> Dependents;
  };

  /// Last-writer transaction and readers-since-last-write per location.
  struct VcLoc {
    SpinLock Lock;
    Txn *LastWriter = nullptr;
    std::vector<Txn *> Readers;
  };

  struct ShadowSlot {
    std::atomic<VcLoc *> Loc{nullptr};
  };

  /// Per-task state. Counters are plain integers under the single-owner
  /// invariant (see AtomicityChecker::TaskState): folded into Totals at
  /// task end, exact under quiescence.
  struct TaskState {
    TaskFrame Frame;
    SitePreanalysis::TaskView PreView;
    Txn *Current = nullptr;
    uint64_t NumReads = 0;
    uint64_t NumWrites = 0;
  };

  struct CounterTotals {
    std::atomic<uint64_t> NumReads{0};
    std::atomic<uint64_t> NumWrites{0};
  };

  TaskState &stateFor(TaskId Task);
  TaskState &createState(TaskId Task);
  VcLoc &locFor(ShadowSlot &Slot);
  Txn &currentTxn(TaskState &State);
  void retireCurrent(TaskState &State);
  void onAccess(TaskId Task, MemAddr Addr, bool IsWrite);

  /// Adds the conflict edge Pred -> Succ; reports a cycle if Succ already
  /// reaches Pred (one clock membership probe), then joins Pred's clock
  /// into Succ's and forwards any growth. No-op for self edges and
  /// duplicates. Takes ClockLock; called with the location lock held
  /// (lock order: location lock, then ClockLock — never the reverse).
  void joinEdge(Txn *Pred, Txn *Succ, MemAddr Addr);

  /// Inserts \p Entry into \p Dst's clock; on growth, queues Dst's
  /// dependents for delta propagation. Requires ClockLock held.
  void joinInto(Txn *Dst, Txn *Entry,
                std::vector<std::pair<Txn *, Txn *>> &Work);

  Options Opts;
  SitePreanalysis Pre;
  const bool PreEnabled;
  std::unique_ptr<Dpst> Tree; // provides the step-node transaction ids
  DpstBuilder Builder;

  ShadowMemory<ShadowSlot> Shadow;
  ChunkedVector<VcLoc> LocPool;
  ChunkedVector<Txn> TxnPool;

  RadixTable<std::atomic<TaskState *>> Tasks;
  ChunkedVector<std::unique_ptr<TaskState>> TaskStorage;

  mutable SpinLock ClockLock;
  std::unordered_set<uint64_t> EdgeSet;
  std::vector<VClockCycle> Cycles;
  uint64_t NumCyclesTotal = 0;
  uint64_t NumJoinsTotal = 0;
  uint64_t NumPropagationsTotal = 0;

  CounterTotals Totals;
};

} // namespace avc

#endif // AVC_CHECKER_VECTORCLOCKATOMICITY_H
