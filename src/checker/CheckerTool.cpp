//===- checker/CheckerTool.cpp - Polymorphic analysis-engine API ----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/CheckerTool.h"

#include "checker/CheckerStats.h"

using namespace avc;

ToolExtras::~ToolExtras() = default;

CheckerTool::~CheckerTool() = default;

void avc::emitPreanalysisJson(JsonReport::Row &Row,
                              const PreanalysisStats &Pre) {
  if (Pre.Mode == PreanalysisMode::Off)
    return;
  Row.field("pre_seq_skips", double(Pre.NumSeqSkips))
      .field("pre_site_skips", double(Pre.NumSiteSkips))
      .field("pre_downgrades", double(Pre.NumDowngrades))
      .field("pre_unsafe_downgrades", double(Pre.NumUnsafeDowngrades))
      .field("pre_sites", double(Pre.NumSites))
      .field("pre_sequential_only", double(Pre.NumSequentialOnly))
      .field("pre_read_only_after_init", double(Pre.NumReadOnlyAfterInit))
      .field("pre_fixed_lockset", double(Pre.NumFixedLockset))
      .field("pre_non_grouped", double(Pre.NumNonGrouped))
      .field("pre_generic", double(Pre.NumGeneric));
}

void avc::emitCheckerStatsJson(JsonReport::Row &Row, const CheckerStats &Stats,
                               size_t Violations) {
  Row.field("violations", double(Violations))
      .field("violating_locations", double(Stats.NumViolatingLocations))
      .field("locations", double(Stats.NumLocations))
      .field("reads", double(Stats.NumReads))
      .field("writes", double(Stats.NumWrites))
      .field("dpst_nodes", double(Stats.NumDpstNodes))
      .field("lca_queries", double(Stats.Lca.NumQueries))
      .field("cache_hits", double(Stats.NumCacheHits))
      .field("cache_hit_reads", double(Stats.NumCacheHitReads))
      .field("cache_hit_writes", double(Stats.NumCacheHitWrites))
      .field("cache_path_hits", double(Stats.NumCachePathHits))
      .field("cache_evictions", double(Stats.NumCacheEvictions))
      .field("lockset_snapshots", double(Stats.NumLockSnapshots))
      .field("cache_hit_pct", Stats.cacheHitRate())
      .field("cache_path_hit_pct", Stats.cachePathHitRate());
  emitPreanalysisJson(Row, Stats.Pre);
}
