//===- checker/CheckerTool.cpp - Polymorphic analysis-engine API ----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/CheckerTool.h"

#include <cstring>
#include <string>

#include "checker/CheckerStats.h"
#include "obs/Metrics.h"

using namespace avc;

ToolExtras::~ToolExtras() = default;

CheckerTool::~CheckerTool() = default;

void CheckerTool::emitJsonStats(JsonReport::Row &Row) const {
  visitStats([&Row](const char *Key, double Value) { Row.field(Key, Value); });
}

void CheckerTool::publishMetrics() const {
  metrics::MetricsRegistry &Registry = metrics::MetricsRegistry::instance();
  visitStats([&](const char *Key, double Value) {
    size_t Len = std::strlen(Key);
    // Derived percentages are JSON-report sugar; a cumulative counter of
    // a rate is meaningless, and scrapers recompute rates themselves.
    if (Len >= 4 && std::strcmp(Key + Len - 4, "_pct") == 0)
      return;
    Registry
        .counter("taskcheck_tool_" + std::string(Key) + "_total",
                 "Engine stat '" + std::string(Key) +
                     "' accumulated across checked traces.")
        .add(static_cast<uint64_t>(Value));
  });
  Registry
      .counter("taskcheck_tool_runs_total",
               "Finished engine runs folded into the tool counters.")
      .inc();
}

void avc::visitPreanalysisStats(const CheckerTool::StatVisitor &Visit,
                                const PreanalysisStats &Pre) {
  if (Pre.Mode == PreanalysisMode::Off)
    return;
  Visit("pre_seq_skips", double(Pre.NumSeqSkips));
  Visit("pre_site_skips", double(Pre.NumSiteSkips));
  Visit("pre_downgrades", double(Pre.NumDowngrades));
  Visit("pre_unsafe_downgrades", double(Pre.NumUnsafeDowngrades));
  Visit("pre_sites", double(Pre.NumSites));
  Visit("pre_sequential_only", double(Pre.NumSequentialOnly));
  Visit("pre_read_only_after_init", double(Pre.NumReadOnlyAfterInit));
  Visit("pre_fixed_lockset", double(Pre.NumFixedLockset));
  Visit("pre_non_grouped", double(Pre.NumNonGrouped));
  Visit("pre_generic", double(Pre.NumGeneric));
}

void avc::visitCheckerStats(const CheckerTool::StatVisitor &Visit,
                            const CheckerStats &Stats, size_t Violations) {
  Visit("violations", double(Violations));
  Visit("violating_locations", double(Stats.NumViolatingLocations));
  Visit("locations", double(Stats.NumLocations));
  Visit("reads", double(Stats.NumReads));
  Visit("writes", double(Stats.NumWrites));
  Visit("dpst_nodes", double(Stats.NumDpstNodes));
  Visit("lca_queries", double(Stats.Lca.NumQueries));
  Visit("cache_hits", double(Stats.NumCacheHits));
  Visit("cache_hit_reads", double(Stats.NumCacheHitReads));
  Visit("cache_hit_writes", double(Stats.NumCacheHitWrites));
  Visit("cache_path_hits", double(Stats.NumCachePathHits));
  Visit("cache_evictions", double(Stats.NumCacheEvictions));
  Visit("lockset_snapshots", double(Stats.NumLockSnapshots));
  Visit("cache_hit_pct", Stats.cacheHitRate());
  Visit("cache_path_hit_pct", Stats.cachePathHitRate());
  visitPreanalysisStats(Visit, Stats.Pre);
}
