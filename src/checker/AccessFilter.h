//===- checker/AccessFilter.h - Per-task redundant-access filter -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker's per-access fast path: a small per-task direct-mapped filter
/// that remembers, for the current step node and critical-section epoch,
/// that further reads/writes of a location are provably redundant — the
/// Figure 7-9 metadata state machine cannot change and no new violation can
/// surface, so the access returns before the shadow-map walk, the local-map
/// lookup, the lockset snapshot, and the per-location spin lock.
///
/// An entry's verdict is computed by the slow path *under the location's
/// metadata lock* (see AtomicityChecker::onAccess): an access of kind K is
/// marked redundant once (a) the step's interim buffer for K is populated,
/// (b) the step is retained in the corresponding global single-access entry
/// pair, and (c) every two-access pattern the next K-access would re-form
/// (a pattern forms iff the interim lockset is disjoint from the current
/// lockset, Section 3.3) has already been promoted into the global pattern
/// slots. Under those conditions a repeated access only re-runs checks that
/// the promoted metadata already exposes to every future interleaver and
/// re-offers retention decisions that cannot change — see DESIGN.md
/// ("Access filtering") for the idempotence argument.
///
/// Invalidation is implicit: entries are keyed by (address, step, lock
/// epoch). A new step never matches an old entry, and the owning task bumps
/// its epoch on every lock *release* (releases can shrink the held lockset
/// and make a previously impossible pattern form; acquires only add fresh
/// tokens, which can never intersect an older interim lockset, so verdicts
/// survive them — the "equal-or-smaller lockset" condition).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_ACCESSFILTER_H
#define AVC_CHECKER_ACCESSFILTER_H

#include <cstddef>
#include <cstdint>

#include "checker/AccessKind.h"
#include "dpst/DpstNodeKind.h"
#include "runtime/ExecutionObserver.h"

namespace avc {

/// Direct-mapped, task-private filter of provably redundant accesses.
/// Lossy by design: a collision evicts, which only costs a slow-path trip.
/// Not thread safe — one instance per task, touched only by the worker
/// currently executing that task.
class AccessFilter {
public:
  /// Slots in the table; small enough that a per-task instance is cheap
  /// (tasks number in the thousands), large enough for the handful of hot
  /// locations a step's inner loop typically touches.
  static constexpr size_t NumSlots = 64;

  /// Returns true if an access of \p Kind to \p Addr by step \p Step at
  /// lock epoch \p Epoch was proven redundant by an earlier slow-path trip.
  bool isRedundant(MemAddr Addr, NodeId Step, uint32_t Epoch,
                   AccessKind Kind) const {
    const Entry &E = Entries[slotFor(Addr)];
    return E.Addr == Addr && E.Step == Step && E.Epoch == Epoch &&
           (E.Bits & bitFor(Kind)) != 0;
  }

  /// Records the slow path's verdict for \p Addr at (\p Step, \p Epoch).
  /// Both bits are recomputed on every slow-path access because an access
  /// of one kind can un-prove the other kind's redundancy (a first write
  /// arms the WR/WW patterns a future read/write would form).
  void record(MemAddr Addr, NodeId Step, uint32_t Epoch, bool ReadRedundant,
              bool WriteRedundant) {
    Entry &E = Entries[slotFor(Addr)];
    uint8_t Bits = (ReadRedundant ? ReadBit : 0u) |
                   (WriteRedundant ? WriteBit : 0u);
    // Never evict a neighbor for a verdict that cannot produce a hit.
    if (Bits == 0 && E.Addr != Addr)
      return;
    E = {Addr, Step, Epoch, Bits};
  }

  /// Drops every entry (task end; also handy in tests).
  void clear() {
    for (Entry &E : Entries)
      E = Entry();
  }

private:
  static constexpr uint8_t ReadBit = 1;
  static constexpr uint8_t WriteBit = 2;

  struct Entry {
    MemAddr Addr = 0; ///< 0 = empty (address 0 is never tracked).
    NodeId Step = InvalidNodeId;
    uint32_t Epoch = 0;
    uint8_t Bits = 0;
  };

  static uint8_t bitFor(AccessKind Kind) {
    return Kind == AccessKind::Read ? ReadBit : WriteBit;
  }

  static size_t slotFor(MemAddr Addr) {
    // Fibonacci hash; tracked addresses share low alignment bits.
    return static_cast<size_t>(((Addr >> 3) * 0x9e3779b97f4a7c15ULL) >>
                               (64 - 6)) &
           (NumSlots - 1);
  }

  Entry Entries[NumSlots];
};

} // namespace avc

#endif // AVC_CHECKER_ACCESSFILTER_H
