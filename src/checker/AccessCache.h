//===- checker/AccessCache.h - Per-task access-path cache -------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker's per-access fast path: a direct-mapped, cacheline-aligned,
/// task-private table keyed by address that memoizes the *fully resolved
/// access path* for recently touched locations — the location's global
/// metadata, the task's local interim buffer, the owning step node, and the
/// redundancy verdicts last computed by the slow path. It absorbs and
/// replaces the PR 1 AccessFilter (which cached only the verdicts): one
/// probe now answers in two tiers.
///
///   1. *Verdict hit*: the entry matches (address, step, lock epoch) and the
///      access kind's redundancy bit is set. A previous slow-path trip
///      proved, under the location's metadata lock, that a further access of
///      this kind cannot change the Figure 7-9 metadata state machine or
///      surface a new violation (see AtomicityChecker::readIsRedundant /
///      writeIsRedundant and DESIGN.md "Access filtering"). The access
///      returns immediately — no shadow-map walk, no lockset snapshot, no
///      per-location lock.
///
///   2. *Path hit*: the verdict is stale (new step, new lock epoch, or never
///      proven) but the resolved pointers are still valid. The access skips
///      the 3-level ShadowMemory radix walk and the PointerMap probe and
///      goes straight to the per-location lock with the memoized
///      GlobalMetadata* / LocalLoc*.
///
/// Pointer validity is the new invariant the two-tier design depends on:
///   - GlobalMetadata* is stable for the shadow map's lifetime: a shadow
///     slot's metadata pointer only ever transitions null -> non-null
///     (atomic groups must be registered before any member is accessed).
///   - LocalLoc* points into the task's PointerMap, which *rehashes* when it
///     grows; each entry therefore records the map's generation() at stamp
///     time and a path hit requires an exact match. A rehash (or clear)
///     silently invalidates every memoized pointer at the cost of one
///     re-resolve per entry.
///
/// Verdict validity keeps the AccessFilter key: a new step never matches,
/// and the owning task bumps its epoch on every lock *release* (a shrunken
/// lockset can make a previously impossible pattern form; acquires add
/// fresh tokens that never intersect an older interim lockset, so verdicts
/// survive them — the "equal-or-smaller lockset" condition).
///
/// Lossy by design: a collision eventually evicts (see claim()'s aging
/// policy), which only costs a slow-path trip.
/// Not thread safe — one instance per task, touched only by the worker
/// currently executing that task. Storage is heap-allocated on task start
/// and released on task end (task states outlive their tasks).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_ACCESSCACHE_H
#define AVC_CHECKER_ACCESSCACHE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "checker/AccessKind.h"
#include "dpst/DpstNodeKind.h"
#include "runtime/ExecutionObserver.h"
#include "support/Compiler.h"
#include "support/SpinLock.h"

namespace avc {

// The default slot count (DefaultAccessCacheSlots) lives in
// checker/ToolOptions.h with the rest of the shared tool configuration.

/// Direct-mapped per-task cache of resolved access paths and redundancy
/// verdicts. Templated on the checker's metadata types so the header stays
/// free of AtomicityChecker internals.
template <typename GlobalT, typename LocalT> class AccessCache {
public:
  static constexpr uint8_t ReadBit = 1;
  static constexpr uint8_t WriteBit = 2;

  /// One cache line per entry: a probe never touches a second line and
  /// never splits a field across lines.
  struct alignas(AVC_CACHELINE_SIZE) Entry {
    MemAddr Addr = 0; ///< 0 = empty (address 0 is never tracked).
    GlobalT *Meta = nullptr;
    LocalT *Local = nullptr;
    /// Owning task's lock epoch at stamp time. 64-bit: after 2^32 lock
    /// releases a 32-bit epoch would wrap and a stale entry could alias a
    /// live epoch, serving a false verdict hit.
    uint64_t Epoch = 0;
    NodeId Step = InvalidNodeId;
    uint32_t MapGen = 0; ///< local PointerMap generation at stamp time
    uint32_t Gen = 0;    ///< table generation at stamp time (see Pool)
    uint8_t Bits = 0;    ///< redundancy verdicts (ReadBit | WriteBit)
  };

  /// Recycles table storage across tasks. Zero-initializing a fresh table
  /// on every task start is the dominant cache cost for programs that
  /// spawn many short tasks (thousands of 16 KiB memsets); a pooled table
  /// is re-issued *without* clearing — each entry records the table
  /// generation that stamped it, the generation is bumped per reuse, and a
  /// probe only honors entries of the current generation. Stale entries
  /// (which hold dangling LocalT pointers into an ended task's map) can
  /// therefore never match. Thread safe; one pool per checker.
  class Pool {
    friend AccessCache;
    struct Storage {
      std::unique_ptr<Entry[]> Table;
      unsigned NumSlots = 0;
      uint32_t Gen = 0;
    };
    SpinLock Lock;
    std::vector<Storage> Free;
  };

  static uint8_t bitFor(AccessKind Kind) {
    return Kind == AccessKind::Read ? ReadBit : WriteBit;
  }

  /// \p Slots rounded to the power of two a table would actually use.
  static unsigned roundedSlots(unsigned Slots) {
    unsigned Log = 1;
    while ((1u << Log) < Slots && Log < 20)
      ++Log;
    return 1u << Log;
  }

  /// Allocates \p Slots entries (rounded up to a power of two); 0 disables
  /// the cache (enabled() goes false, the checker takes the full slow path).
  void init(unsigned Slots) {
    if (Slots == 0) {
      releaseStorage();
      return;
    }
    NumSlots = roundedSlots(Slots);
    Shift = 64 - log2Of(NumSlots);
    Table = std::make_unique<Entry[]>(NumSlots);
    TableGen = 0;
    ConflictTick = 0;
  }

  /// Takes a table from \p P (or allocates one if the pool is dry / holds
  /// tables of another size). Pooled tables come back dirty: the bumped
  /// generation invalidates every stale entry without touching it.
  void acquire(Pool &P, unsigned Slots) {
    if (Slots == 0) {
      releaseStorage();
      return;
    }
    unsigned Want = roundedSlots(Slots);
    {
      std::lock_guard<SpinLock> Guard(P.Lock);
      while (!P.Free.empty()) {
        typename Pool::Storage S = std::move(P.Free.back());
        P.Free.pop_back();
        if (S.NumSlots != Want)
          continue; // slot config changed; let the stray table die
        Table = std::move(S.Table);
        NumSlots = S.NumSlots;
        Shift = 64 - log2Of(NumSlots);
        TableGen = S.Gen + 1;
        ConflictTick = 0;
        break;
      }
    }
    if (!Table) {
      init(Slots);
      return;
    }
    if (AVC_UNLIKELY(TableGen == 0)) {
      // Generation wrapped (one reuse per task, ~4G tasks): entries from
      // generation 0 of this storage could alias, so clear once.
      clear();
    }
  }

  /// Returns the table to \p P for the next task; the cache reads as
  /// disabled afterwards. No-op when no table is held.
  void release(Pool &P) {
    if (!Table)
      return;
    typename Pool::Storage S;
    S.Table = std::move(Table);
    S.NumSlots = NumSlots;
    S.Gen = TableGen;
    NumSlots = 0;
    Shift = 64;
    std::lock_guard<SpinLock> Guard(P.Lock);
    P.Free.push_back(std::move(S));
  }

  bool enabled() const { return Table != nullptr; }
  size_t numSlots() const { return Table ? NumSlots : 0; }

  /// The current table generation; only entries stamped with it are valid
  /// (a pooled table's stale entries carry older generations).
  uint32_t generation() const { return TableGen; }

  /// The unique slot \p Addr maps to. Exposed so tests and benchmarks can
  /// construct colliding addresses deliberately.
  size_t slotIndexFor(MemAddr Addr) const {
    // Fibonacci hash; tracked addresses share low alignment bits.
    return static_cast<size_t>(((Addr >> 3) * 0x9e3779b97f4a7c15ULL) >> Shift);
  }

  Entry &entryFor(MemAddr Addr) { return Table[slotIndexFor(Addr)]; }

  /// Records the slow path's resolution and verdicts for \p Addr,
  /// unconditionally overwriting the slot. Used on path-tier re-touches,
  /// where the slot already belongs to \p Addr and the stamp upgrades it
  /// with fresh verdicts. Returns true if a live neighbor (a different
  /// address with a current \p MapGen) was evicted.
  bool stamp(MemAddr Addr, GlobalT *Meta, LocalT *Local, NodeId Step,
             uint64_t Epoch, uint32_t MapGen, bool ReadRedundant,
             bool WriteRedundant) {
    Entry &E = Table[slotIndexFor(Addr)];
    bool Evicted = E.Gen == TableGen && E.Addr != 0 && E.Addr != Addr &&
                   E.MapGen == MapGen;
    E.Addr = Addr;
    E.Meta = Meta;
    E.Local = Local;
    E.Step = Step;
    E.Epoch = Epoch;
    E.MapGen = MapGen;
    E.Gen = TableGen;
    E.Bits = static_cast<uint8_t>((ReadRedundant ? ReadBit : 0u) |
                                  (WriteRedundant ? WriteBit : 0u));
    return Evicted;
  }

  /// Miss-path insert policy. A slot that is empty, stale (its MapGen no
  /// longer matches), or already owned by \p Addr is stamped immediately
  /// (no verdicts — proofs are deferred to the first re-touch). A *live*
  /// conflicting entry is displaced only every ClaimPeriod-th conflict:
  /// streaming access patterns (fresh address per access, the blackscholes
  /// profile) would otherwise dirty one cache line per access for entries
  /// that are never probed again — the dominant cost of an always-stamp
  /// policy — while the aging tick still lets a newly hot address take the
  /// slot within a bounded number of touches. Returns true when a live
  /// entry was displaced (an eviction).
  bool claim(MemAddr Addr, GlobalT *Meta, LocalT *Local, NodeId Step,
             uint64_t Epoch, uint32_t MapGen) {
    Entry &E = Table[slotIndexFor(Addr)];
    bool Live = E.Gen == TableGen && E.Addr != 0 && E.Addr != Addr &&
                E.MapGen == MapGen;
    if (Live && (++ConflictTick & (ClaimPeriod - 1)) != 0)
      return false;
    E.Addr = Addr;
    E.Meta = Meta;
    E.Local = Local;
    E.Step = Step;
    E.Epoch = Epoch;
    E.MapGen = MapGen;
    E.Gen = TableGen;
    E.Bits = 0;
    return Live;
  }

  /// Drops every entry but keeps the storage (tests).
  void clear() {
    for (size_t I = 0; I < NumSlots && Table; ++I)
      Table[I] = Entry();
  }

  /// Frees the table (a finished task can never probe again, and task
  /// states are retained for the program's lifetime). Prefer release():
  /// pooled storage spares the next task the allocation and the memset.
  void releaseStorage() {
    Table.reset();
    NumSlots = 0;
    Shift = 64;
  }

  /// A live conflicting entry survives this many claim() attempts before
  /// the newcomer displaces it (power of two; see claim()).
  static constexpr uint32_t ClaimPeriod = 8;

private:
  static unsigned log2Of(unsigned PowerOfTwo) {
    unsigned Log = 0;
    while ((1u << Log) < PowerOfTwo)
      ++Log;
    return Log;
  }

  std::unique_ptr<Entry[]> Table;
  unsigned NumSlots = 0;
  unsigned Shift = 64; ///< 64 - log2(NumSlots)
  uint32_t TableGen = 0;
  uint32_t ConflictTick = 0;
};

} // namespace avc

#endif // AVC_CHECKER_ACCESSCACHE_H
