//===- checker/CheckerTool.h - Polymorphic analysis-engine API --*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine seam: every analysis tool (the paper's checker, the basic
/// reference checker, Velodrome, the vector-clock engine, the race and
/// determinism detectors) derives from CheckerTool, which extends the
/// ExecutionObserver event interface with uniform reporting. ToolContext,
/// BatchReplay, taskcheck, and the benches construct tools through the
/// ToolRegistry and talk to them exclusively through this interface — no
/// per-tool switches anywhere downstream.
///
/// Engine-specific construction knobs that do not belong in the shared
/// ToolOptions surface travel as an opaque ToolExtras pointer; each
/// factory dynamic_casts to its own extras type and ignores anything else.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_CHECKERTOOL_H
#define AVC_CHECKER_CHECKERTOOL_H

#include <cstdio>
#include <functional>
#include <set>

#include "analysis/SitePreanalysis.h"
#include "runtime/ExecutionObserver.h"
#include "support/JsonReport.h"

namespace avc {

struct CheckerStats;

/// Which analysis runs during execution. The numeric identity of a tool;
/// names, descriptions, and factories live in the ToolRegistry.
enum class ToolKind : uint8_t {
  None,        ///< No instrumentation (timing baseline).
  Atomicity,   ///< The paper's checker (AtomicityChecker).
  Basic,       ///< Unbounded-history reference checker (Section 7.1).
  Velodrome,   ///< Velodrome baseline: graph cycles in the observed trace.
  Race,        ///< All-Sets race detector on the same DPST.
  Determinism, ///< Internal-determinism checker (Tardis-style).
  VClock,      ///< Linear-time vector-clock engine (Mathur & Viswanathan).
};

/// Registry-backed name of \p Kind ("atomicity", "vclock", ...).
const char *toolKindName(ToolKind Kind);

/// Base class for engine-specific construction extras. Factories receive a
/// `const ToolExtras *` and dynamic_cast it to their own derived struct;
/// a null pointer or a foreign type means "use the engine's defaults".
class ToolExtras {
public:
  virtual ~ToolExtras();
};

/// The polymorphic analysis-engine interface. A CheckerTool consumes the
/// runtime's event stream (ExecutionObserver) and answers the uniform
/// reporting questions every front end asks.
class CheckerTool : public ExecutionObserver {
public:
  ~CheckerTool() override;

  /// Registry name of this engine ("atomicity", "velodrome", ...).
  virtual const char *name() const = 0;

  /// Number of findings so far (violations, races, cycles — whatever the
  /// engine counts). Safe to call concurrently with event delivery.
  virtual size_t numViolations() const = 0;

  /// The distinct tracked addresses implicated in findings. Used by the
  /// differential tests to compare detection sets across engines.
  virtual std::set<MemAddr> violationKeys() const = 0;

  /// Prints one indented line per retained finding to \p Out. Callers
  /// print the uniform "[<name>] N violation(s)" header first.
  virtual void printReport(std::FILE *Out) const = 0;

  /// Receives one (field name, value) pair per engine counter. Keys use
  /// the historical taskcheck JSON field names ("violations",
  /// "cache_hits", "pre_seq_skips", ...).
  using StatVisitor = std::function<void(const char *, double)>;

  /// Enumerates this engine's counters through \p Visit. This is the one
  /// stats seam each engine implements; the JSON compatibility view
  /// (emitJsonStats) and the metrics-registry publication
  /// (publishMetrics) are both derived from it, so the two surfaces
  /// cannot drift apart.
  virtual void visitStats(const StatVisitor &Visit) const = 0;

  /// Emits this engine's counters into a JSON report row, preserving each
  /// engine's historical field names. Derived from visitStats.
  void emitJsonStats(JsonReport::Row &Row) const;

  /// Folds this engine's counters into the process-wide metrics registry
  /// as `taskcheck_tool_<field>_total` counters (derived `_pct` rates are
  /// skipped — scrapers recompute rates from the underlying counters).
  /// Call once per finished trace/run; counters accumulate across calls.
  void publishMetrics() const;

  /// Prints the engine's human-readable statistics block, if it has one.
  virtual void printStats(std::FILE *Out) const { (void)Out; }

  /// Declares \p Count tracked locations as one atomic group. Engines
  /// without group semantics accept and ignore the hint.
  virtual bool registerAtomicGroup(const MemAddr *Members, size_t Count) {
    (void)Members;
    (void)Count;
    return true;
  }

  /// Attaches a human-readable name to a tracked location for reports.
  virtual void nameLocation(MemAddr Addr, std::string Name) {
    (void)Addr;
    (void)Name;
  }

  /// Registers this engine's gauges with the active observability
  /// session; no-op without one.
  virtual void registerObsGauges() {}

  /// The embedded site pre-analysis engine (replay front end, tests).
  virtual SitePreanalysis &preanalysis() = 0;

  /// Convenience dispatch used by replay front ends.
  void onAccess(TaskId Task, MemAddr Addr, AccessKind Kind) {
    if (Kind == AccessKind::Write)
      onWrite(Task, Addr);
    else
      onRead(Task, Addr);
  }
};

/// Enumerates the shared CheckerStats counter block (atomicity and basic
/// use the same stats type) under the historical taskcheck field names.
void visitCheckerStats(const CheckerTool::StatVisitor &Visit,
                       const CheckerStats &Stats, size_t Violations);

/// Enumerates the pre-analysis counters shared by every engine's stats:
/// skip totals, downgrade audit, and the pruned-site census. No-op when
/// the gate was off.
void visitPreanalysisStats(const CheckerTool::StatVisitor &Visit,
                           const PreanalysisStats &Pre);

} // namespace avc

#endif // AVC_CHECKER_CHECKERTOOL_H
