//===- checker/RetentionPolicy.h - Entry retention policy ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Historical location of retainParallelPair. The rule moved to
/// dpst/Retention.h when the pre-analysis trace classifier (a non-checker
/// consumer) started sharing it; this forwarder keeps existing includes
/// working.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_RETENTIONPOLICY_H
#define AVC_CHECKER_RETENTIONPOLICY_H

#include "dpst/Retention.h"

#endif // AVC_CHECKER_RETENTIONPOLICY_H
