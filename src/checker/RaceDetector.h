//===- checker/RaceDetector.h - All-Sets data race detection ---*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate the paper builds on (Section 5): determinacy/data-race
/// detection for task-parallel programs over the series-parallel structure,
/// in the style of the All-Sets algorithm (Cheng, Feng, Leiserson, Randall
/// & Stark, SPAA'98) ported from SP-bags to the DPST. The paper's access
/// histories are "inspired by the access histories in the All-Sets
/// algorithm for Cilk"; this detector makes that lineage concrete and
/// doubles as a point of comparison: a data race is two logically parallel
/// accesses to one location, at least one a write, protected by no common
/// lock — a weaker property than the atomicity the main checker verifies
/// (bank_audit in examples/ is race-free yet non-atomic).
///
/// Unlike the atomicity checker's versioned locksets, race detection uses
/// *plain lock identities*: two critical sections of the same lock never
/// race, whichever acquisitions they are.
///
/// Per location the detector keeps one record per distinct lockset seen
/// (All-Sets' bound), each holding leftmost/rightmost reader and writer
/// steps under the same retention argument the main checker uses.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_RACEDETECTOR_H
#define AVC_CHECKER_RACEDETECTOR_H

#include <atomic>
#include <memory>
#include <vector>

#include "analysis/SitePreanalysis.h"
#include "checker/AccessKind.h"
#include "checker/CheckerTool.h"
#include "checker/LockSet.h"
#include "checker/ShadowMemory.h"
#include "checker/ToolOptions.h"
#include "checker/ViolationReport.h"
#include "dpst/Dpst.h"
#include "dpst/DpstBuilder.h"
#include "dpst/ParallelismOracle.h"
#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"
#include "support/RadixTable.h"

namespace avc {

/// One detected data race.
struct Race {
  MemAddr Addr = 0;
  NodeId FirstStep = InvalidNodeId;
  NodeId SecondStep = InvalidNodeId;
  AccessKind FirstKind = AccessKind::Read;
  AccessKind SecondKind = AccessKind::Write;
  uint32_t FirstTask = 0;
  uint32_t SecondTask = 0;

  /// Human-readable one-line description.
  std::string toString() const;
};

/// Statistics of a race-detection run.
struct RaceStats {
  uint64_t NumLocations = 0;
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  uint64_t NumRaces = 0;
  uint64_t NumDpstNodes = 0;
  LcaQueryStats Lca;
  /// Site pre-analysis counters (Mode is Off when the gate was disabled).
  PreanalysisStats Pre;
};

/// DPST-based All-Sets data race detector.
class RaceDetector : public CheckerTool {
public:
  /// All configuration is the shared ToolOptions surface; the detector has
  /// no tool-specific knobs.
  struct Options : ToolOptions {};

  RaceDetector(Options Opts);
  RaceDetector() : RaceDetector(Options()) {}
  ~RaceDetector() override;

  // ExecutionObserver interface.
  void onProgramStart(TaskId RootTask) override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onLockAcquire(TaskId Task, LockId Lock) override;
  void onLockRelease(TaskId Task, LockId Lock) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;
  void onSiteRegister(MemAddr Base, uint64_t Size, uint32_t Stride) override;

  /// The embedded pre-analysis engine (replay front end, tests).
  SitePreanalysis &preanalysis() override { return Pre; }

  /// Distinct races found (deduplicated by step pair and kinds).
  size_t numRaces() const;

  /// Snapshot of the retained reports.
  std::vector<Race> races() const;

  RaceStats stats() const;
  const Dpst &dpst() const { return *Tree; }

  // CheckerTool reporting interface.
  const char *name() const override { return "race"; }
  size_t numViolations() const override { return numRaces(); }
  std::set<MemAddr> violationKeys() const override;
  void printReport(std::FILE *Out) const override;
  void visitStats(const StatVisitor &Visit) const override;

  /// Registers this tool's gauges (DPST node count) with the active
  /// observability session; no-op without one.
  void registerObsGauges() override;

private:
  /// Access records for one (location, lockset) combination: the leftmost
  /// and rightmost parallel readers and writers under that lockset.
  struct LocksetRecord {
    LockSet Locks; ///< plain lock identities, not versions
    NodeId R1 = InvalidNodeId;
    NodeId R2 = InvalidNodeId;
    NodeId W1 = InvalidNodeId;
    NodeId W2 = InvalidNodeId;
  };

  struct LocationState {
    SpinLock Lock;
    std::vector<LocksetRecord> Records; ///< one per distinct lockset
    MemAddr ReportAddr = 0;
    /// Set under Lock when the unique-location statistic counts this
    /// location (first recorded access); replaces the per-slot atomic
    /// first-touch flag.
    bool Counted = false;
  };

  /// Per-task state. The counters are plain integers under the same
  /// single-owner invariant as the atomicity checker's: a task runs on one
  /// worker at a time, onTaskEnd folds them into the atomic Totals, and
  /// stats() is exact under quiescence.
  struct TaskState {
    TaskFrame Frame;
    SitePreanalysis::TaskView PreView;
    HeldLocks Locks;
    uint64_t NumReads = 0;
    uint64_t NumWrites = 0;
    uint64_t NumLocations = 0;
  };

  struct CounterTotals {
    std::atomic<uint64_t> NumReads{0};
    std::atomic<uint64_t> NumWrites{0};
    std::atomic<uint64_t> NumLocations{0};
  };

  struct ShadowSlot {
    std::atomic<LocationState *> Loc{nullptr};
  };

  TaskState &stateFor(TaskId Task);
  TaskState &createState(TaskId Task);
  LocationState &locationFor(MemAddr Addr, ShadowSlot &Slot);
  void onAccess(TaskId Task, MemAddr Addr, AccessKind Kind);
  bool par(NodeId Entry, NodeId Si);
  void retainEntry(NodeId &E1, NodeId &E2, NodeId Si);
  void report(LocationState &Loc, NodeId Prior, AccessKind PriorKind,
              NodeId Current, AccessKind CurrentKind);

  Options Opts;
  SitePreanalysis Pre;
  const bool PreEnabled;
  std::unique_ptr<Dpst> Tree;
  std::unique_ptr<ParallelismOracle> Oracle;
  DpstBuilder Builder;

  ShadowMemory<ShadowSlot> Shadow;
  ChunkedVector<LocationState> LocPool;

  RadixTable<std::atomic<TaskState *>> Tasks;
  ChunkedVector<std::unique_ptr<TaskState>> TaskStorage;
  CounterTotals Totals;

  mutable SpinLock RaceLock;
  std::vector<Race> Races;
  std::unordered_set<uint64_t> SeenRaces;
  uint64_t NumRacesTotal = 0;
};

} // namespace avc

#endif // AVC_CHECKER_RACEDETECTOR_H
