//===- checker/DeterminismChecker.h - Tardis-style determinism -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third related-work axis of the paper's Section 5: determinism
/// enforcement in the style of Tardis (Lu, Ji & Scott, PLDI'14), which
/// "checks for determinism by maintaining a log of accesses and identifying
/// conflicting accesses between tasks". A task-parallel program is
/// internally deterministic iff no two logically parallel steps perform
/// conflicting accesses to the same location — *regardless of locks*: a
/// lock serializes the conflict but the winner still depends on the
/// schedule, so the outcome is nondeterministic.
///
/// The trio of structural tools therefore orders strictly by strength:
///
///   determinism violation  ⊇  data race  ⊇  (lock-free) atomicity issues
///
/// A lock-protected counter update is flagged here, not by the race
/// detector; the paper's checker only complains when a step's own accesses
/// split across critical sections. Tests assert exactly this ordering.
///
/// Implementation: per location, the leftmost/rightmost parallel reader
/// and writer entries (the same retention as the other tools), with no
/// lockset handling at all — which is also why the paper contrasts itself
/// against Tardis: "our approach handles atomicity violations in the
/// presence of synchronization operations".
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_DETERMINISMCHECKER_H
#define AVC_CHECKER_DETERMINISMCHECKER_H

#include <atomic>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/SitePreanalysis.h"
#include "checker/AccessKind.h"
#include "checker/CheckerTool.h"
#include "checker/ShadowMemory.h"
#include "checker/ToolOptions.h"
#include "dpst/Dpst.h"
#include "dpst/DpstBuilder.h"
#include "dpst/ParallelismOracle.h"
#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"
#include "support/RadixTable.h"
#include "support/SpinLock.h"

namespace avc {

/// One detected determinism violation (a schedule-dependent conflict).
struct DeterminismViolation {
  MemAddr Addr = 0;
  NodeId FirstStep = InvalidNodeId;
  NodeId SecondStep = InvalidNodeId;
  AccessKind FirstKind = AccessKind::Read;
  AccessKind SecondKind = AccessKind::Write;

  std::string toString() const;
};

/// Statistics of a determinism-checking run (mirrors RaceStats so all four
/// tools report a uniform counter surface).
struct DeterminismStats {
  uint64_t NumLocations = 0;
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  uint64_t NumViolations = 0;
  uint64_t NumDpstNodes = 0;
  /// Site pre-analysis counters (Mode is Off when the gate was disabled).
  PreanalysisStats Pre;
};

/// Tardis-style internal-determinism checker over the DPST.
class DeterminismChecker : public CheckerTool {
public:
  /// All configuration is the shared ToolOptions surface; the determinism
  /// checker has no tool-specific knobs (locks are deliberately ignored).
  struct Options : ToolOptions {};

  DeterminismChecker(Options Opts);
  DeterminismChecker() : DeterminismChecker(Options()) {}
  ~DeterminismChecker() override;

  // ExecutionObserver interface (lock events are deliberately ignored:
  // locks do not restore determinism).
  void onProgramStart(TaskId RootTask) override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;
  void onSiteRegister(MemAddr Base, uint64_t Size, uint32_t Stride) override;

  /// The embedded pre-analysis engine (replay front end, tests). The
  /// determinism checker ignores lock events, so warmup never observes a
  /// lockset signature — sites classify only via the lock-free verdicts.
  SitePreanalysis &preanalysis() override { return Pre; }

  size_t numViolations() const override;
  std::vector<DeterminismViolation> violations() const;
  DeterminismStats stats() const;
  const Dpst &dpst() const { return *Tree; }

  // CheckerTool reporting interface.
  const char *name() const override { return "determinism"; }
  std::set<MemAddr> violationKeys() const override;
  void printReport(std::FILE *Out) const override;
  void visitStats(const StatVisitor &Visit) const override;

  /// Registers this tool's gauges (DPST node count) with the active
  /// observability session; no-op without one.
  void registerObsGauges() override;

private:
  struct LocationState {
    SpinLock Lock;
    NodeId R1 = InvalidNodeId;
    NodeId R2 = InvalidNodeId;
    NodeId W1 = InvalidNodeId;
    NodeId W2 = InvalidNodeId;
    MemAddr ReportAddr = 0;
    /// Set under Lock when the unique-location statistic counts this
    /// location (first recorded access).
    bool Counted = false;
  };

  /// Per-task state. Counters are plain integers under the single-owner
  /// invariant (see AtomicityChecker::TaskState): folded into Totals at
  /// task end, exact under quiescence.
  struct TaskState {
    TaskFrame Frame;
    SitePreanalysis::TaskView PreView;
    uint64_t NumReads = 0;
    uint64_t NumWrites = 0;
    uint64_t NumLocations = 0;
  };

  struct CounterTotals {
    std::atomic<uint64_t> NumReads{0};
    std::atomic<uint64_t> NumWrites{0};
    std::atomic<uint64_t> NumLocations{0};
  };

  struct ShadowSlot {
    std::atomic<LocationState *> Loc{nullptr};
  };

  TaskState &stateFor(TaskId Task);
  TaskState &createState(TaskId Task);
  LocationState &locationFor(MemAddr Addr, ShadowSlot &Slot);
  void onAccess(TaskId Task, MemAddr Addr, AccessKind Kind);
  bool par(NodeId Entry, NodeId Si);
  void report(LocationState &Loc, NodeId Prior, AccessKind PriorKind,
              NodeId Current, AccessKind CurrentKind);

  Options Opts;
  SitePreanalysis Pre;
  const bool PreEnabled;
  std::unique_ptr<Dpst> Tree;
  std::unique_ptr<ParallelismOracle> Oracle;
  DpstBuilder Builder;

  ShadowMemory<ShadowSlot> Shadow;
  ChunkedVector<LocationState> LocPool;

  RadixTable<std::atomic<TaskState *>> Tasks;
  ChunkedVector<std::unique_ptr<TaskState>> TaskStorage;
  CounterTotals Totals;

  mutable SpinLock ReportLock;
  std::vector<DeterminismViolation> Reports;
  std::unordered_set<uint64_t> Seen;
  uint64_t NumTotal = 0;
};

} // namespace avc

#endif // AVC_CHECKER_DETERMINISMCHECKER_H
