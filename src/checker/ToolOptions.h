//===- checker/ToolOptions.h - Shared checker-tool options -----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The options every checker tool shares. All five tools (AtomicityChecker,
/// BasicChecker, RaceDetector, DeterminismChecker, VelodromeChecker) derive
/// their Options struct from ToolOptions, so ToolContext and taskcheck can
/// configure the DPST layout, the parallelism-query algorithm, the caches,
/// and report retention in exactly one place instead of copying fields
/// tool by tool. Tool-specific knobs (e.g. the atomicity checker's
/// CompleteMetadata) stay in the derived struct.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_TOOLOPTIONS_H
#define AVC_CHECKER_TOOLOPTIONS_H

#include <cstddef>
#include <string>
#include <thread>

#include "analysis/SitePreanalysis.h"
#include "dpst/Dpst.h"
#include "dpst/ParallelismOracle.h"

namespace avc {

/// Default access-path cache slot count: large enough that a step's
/// inner-loop working set rarely thrashes one slot, small enough (64 B per
/// slot) that thousands of live tasks stay cheap. Runtime-configurable via
/// ToolOptions::AccessCacheSlots / --access-cache=N.
inline constexpr unsigned DefaultAccessCacheSlots = 256;

/// Options common to every checker tool. Not every tool consults every
/// field (only the atomicity checker has an access cache; Velodrome has no
/// parallelism oracle), but the *configuration surface* is uniform: any
/// ToolOptions configures any tool.
struct ToolOptions {
  /// Worker threads the runtime executes tasks on (1 = caller only, 0 =
  /// hardware concurrency). Lives here — not only in the runtime options —
  /// because the tools themselves adapt to it: the atomicity checker skips
  /// its seqlock publication bumps when no concurrent prober can exist.
  /// Plumbed from --threads through ToolContext into both the runtime and
  /// the selected tool.
  unsigned NumThreads = 1;
  /// DPST data layout (the Figure 14 ablation).
  DpstLayout Layout = DpstLayout::Array;
  /// Parallelism-query algorithm (the query-acceleration ablation, see
  /// DpstQueryIndex.h): Label answers the common step-vs-step query in
  /// O(1) by fork-path comparison, Lift in O(log depth) by binary lifting,
  /// Walk is the paper's O(depth) LCA walk.
  QueryMode Query = QueryMode::Label;
  /// Cache LCA query results (Section 4 optimization; Walk mode only —
  /// Lift/Label queries are cheaper than a cache probe).
  bool EnableLcaCache = true;
  /// log2 of LCA cache slots.
  unsigned CacheLogSlots = 16;
  /// Exactly count unique LCA query pairs (Table 1; characterization runs
  /// only — costs a hash insert per query).
  bool TrackUniquePairs = false;
  /// Per-task access-path cache: memoizes the resolved lookup chain
  /// (global metadata, local buffer, step, redundancy verdicts) per
  /// address, so a hit either returns immediately (provably redundant
  /// access) or goes straight to the per-location lock, skipping the
  /// shadow radix walk, the local-map probe, and the lockset snapshot
  /// (see AccessCache.h and DESIGN.md "Access-path cache"). Disable for
  /// ablation (bench/ablation_modes) or to cross-check detection parity.
  bool EnableAccessCache = true;
  /// Slots in the per-task cache (rounded up to a power of two; one cache
  /// line each).
  unsigned AccessCacheSlots = DefaultAccessCacheSlots;
  /// Maximum reports (violations, races, cycles — the tool's finding kind)
  /// retained verbatim; all findings are counted.
  size_t MaxRetainedReports = 4096;
  /// When non-empty, ToolContext profiles the run with the observability
  /// layer (src/obs/) and writes a Chrome trace-event JSON file here
  /// (taskcheck --profile=PATH; see DESIGN.md §9).
  std::string ProfilePath;
  /// Site pre-analysis front end (taskcheck --preanalysis=<on|off|
  /// profile:N>; see DESIGN.md §11): classify registered Tracked sites and
  /// consult the compiled per-site handler *before* the access cache.
  /// Replaying tools get exact classifications from a first trace sweep;
  /// live runs use the sequential-region skip plus an optional warmup
  /// profile.
  PreanalysisMode Preanalysis = PreanalysisMode::Off;
  /// Warmup accesses per site before a live-mode site is classified
  /// (profile:N sets N; plain "on" keeps the conservative default).
  uint32_t PreanalysisWarmup = DefaultPreanalysisWarmup;

  /// NumThreads with the 0 = "use the machine" convention resolved.
  unsigned resolvedThreads() const {
    if (NumThreads != 0)
      return NumThreads;
    unsigned Hardware = std::thread::hardware_concurrency();
    return Hardware != 0 ? Hardware : 1;
  }

  /// The oracle configuration every DPST-based tool derives from these
  /// options (previously copied field-by-field in each tool's ctor).
  ParallelismOracle::Options oracleOptions() const {
    ParallelismOracle::Options O;
    O.Mode = Query;
    O.EnableCache = EnableLcaCache;
    O.CacheLogSlots = CacheLogSlots;
    O.TrackUniquePairs = TrackUniquePairs;
    return O;
  }

  /// The pre-analysis engine configuration every tool derives from these
  /// options.
  SitePreanalysis::Options preanalysisOptions() const {
    SitePreanalysis::Options O;
    O.Mode = Preanalysis;
    O.WarmupThreshold = PreanalysisWarmup;
    return O;
  }
};

} // namespace avc

#endif // AVC_CHECKER_TOOLOPTIONS_H
