//===- checker/GlobalMetadata.h - Fixed global access history --*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-location *global metadata space* of Section 3.2: twelve access
/// history entries capturing every access shape an atomicity violation can
/// involve — the four two-access patterns performed by a single step node
/// (read-read, read-write, write-read, write-write; two entries each) and
/// four single-access entries (two reads R1/R2 and two writes W1/W2 by
/// pairwise-parallel steps) that can interleave into some other step's
/// pattern.
///
/// Because a pattern's two accesses always belong to one step node and the
/// pattern's kinds are implied by which field it occupies, each of the
/// twelve logical entries stores just the step node id; locks are tracked
/// only in the local metadata space (Section 3.3), exactly as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_GLOBALMETADATA_H
#define AVC_CHECKER_GLOBALMETADATA_H

#include "dpst/DpstNodeKind.h"
#include "runtime/ExecutionObserver.h"
#include "support/SpinLock.h"

namespace avc {

/// The global metadata space for one tracked location (or one multi-
/// variable atomic group, which shares a single instance across all member
/// locations). Guarded by its own spin lock; the checker's per-access
/// critical section is a handful of compares.
struct GlobalMetadata {
  /// Serializes metadata propagation and checking for this location.
  SpinLock Lock;

  /// Single-access entries: steps that read (R1, R2) / wrote (W1, W2) the
  /// location and may interleave into a parallel step's pattern.
  NodeId R1 = InvalidNodeId;
  NodeId R2 = InvalidNodeId;
  NodeId W1 = InvalidNodeId;
  NodeId W2 = InvalidNodeId;

  /// Two-access patterns: the step node that performed both accesses, per
  /// kind pair (first access, second access). The paper keeps one record
  /// per kind; in complete-metadata mode (the default, see
  /// AtomicityChecker::Options::CompleteMetadata) a second record per kind
  /// retains the leftmost/rightmost parallel pattern owners, which the
  /// randomized equivalence suite showed is necessary for completeness.
  /// The *b slots stay unused in paper-literal mode.
  NodeId RR = InvalidNodeId;
  NodeId RW = InvalidNodeId;
  NodeId WR = InvalidNodeId;
  NodeId WW = InvalidNodeId;
  NodeId RRb = InvalidNodeId;
  NodeId RWb = InvalidNodeId;
  NodeId WRb = InvalidNodeId;
  NodeId WWb = InvalidNodeId;

  /// Representative address for reports (the first address registered for
  /// the group, or the location's own address).
  MemAddr ReportAddr = 0;

  /// Set once a violation involving this location was recorded; used to
  /// count distinct violating locations.
  bool Reported = false;

  /// True if this instance is shared by a registered multi-variable atomic
  /// group. Lets registerAtomicGroup distinguish a location's mergeable
  /// private metadata from another group's (which must not be split).
  bool Grouped = false;

  /// True once the unique-location statistic counted this instance; set
  /// under Lock on the first recorded access, replacing the former
  /// per-slot atomic first-touch flag (an atomic group counts once).
  bool Counted = false;

  /// True if no access has been recorded yet (GS(l) == 0 in Figure 6).
  /// Every recorded access updates R1/W1 first, so testing the primary
  /// slots suffices.
  bool isEmpty() const {
    return R1 == InvalidNodeId && R2 == InvalidNodeId &&
           W1 == InvalidNodeId && W2 == InvalidNodeId &&
           RR == InvalidNodeId && RW == InvalidNodeId &&
           WR == InvalidNodeId && WW == InvalidNodeId;
  }
};

} // namespace avc

#endif // AVC_CHECKER_GLOBALMETADATA_H
