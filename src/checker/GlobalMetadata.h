//===- checker/GlobalMetadata.h - Fixed global access history --*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-location *global metadata space* of Section 3.2: twelve access
/// history entries capturing every access shape an atomicity violation can
/// involve — the four two-access patterns performed by a single step node
/// (read-read, read-write, write-read, write-write; two entries each) and
/// four single-access entries (two reads R1/R2 and two writes W1/W2 by
/// pairwise-parallel steps) that can interleave into some other step's
/// pattern.
///
/// Because a pattern's two accesses always belong to one step node and the
/// pattern's kinds are implied by which field it occupies, each of the
/// twelve logical entries stores just the step node id; locks are tracked
/// only in the local metadata space (Section 3.3), exactly as in the paper.
///
/// Concurrency (multicore checking): mutation is serialized by the
/// per-location spin lock, but the read-mostly fast path probes the entries
/// *without* the lock, validated by a seqlock. Entries are therefore atomic
/// (MetaSlot), and a locked writer brackets its slot stores with Seq bumps
/// (odd = write in progress). A reader that sees an even, unchanged Seq
/// across its loads observed a consistent snapshot. All data is atomic, so
/// the protocol is ThreadSanitizer-clean without fences: the writer's
/// release slot stores pair with the reader's acquire slot loads, which pin
/// the trailing Seq re-check after them.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_GLOBALMETADATA_H
#define AVC_CHECKER_GLOBALMETADATA_H

#include <atomic>
#include <cstdint>

#include "dpst/DpstNodeKind.h"
#include "runtime/ExecutionObserver.h"
#include "support/Compiler.h"
#include "support/SpinLock.h"

namespace avc {

/// One global-metadata entry: an atomic NodeId that reads/writes like a
/// plain one, so the Figure 7-9 handlers stay literal. Loads are acquire
/// (they pair with a concurrent writer's release store, see the seqlock
/// protocol above); stores are release. Uncontended, both compile to plain
/// moves on x86.
struct MetaSlot {
  std::atomic<NodeId> Value{InvalidNodeId};

  NodeId load() const { return Value.load(std::memory_order_acquire); }
  void store(NodeId N) { Value.store(N, std::memory_order_release); }

  operator NodeId() const { return load(); }
  MetaSlot &operator=(NodeId N) {
    store(N);
    return *this;
  }
  bool operator==(NodeId N) const { return load() == N; }
  bool operator!=(NodeId N) const { return load() != N; }
};

/// The global metadata space for one tracked location (or one multi-
/// variable atomic group, which shares a single instance across all member
/// locations). Mutated only under its own spin lock; probed without it
/// under the Seq seqlock. Cacheline-aligned so two hot locations never
/// false-share (instances live in pooled shard storage, MetadataShards.h).
struct alignas(AVC_CACHELINE_SIZE) GlobalMetadata {
  /// Serializes metadata propagation and checking for this location.
  SpinLock Lock;

  /// Seqlock word for lock-free probes: even = stable, odd = a locked
  /// writer is mutating the slots. Writers bump before and after their
  /// slot stores (beginWrite/endWrite); the single-thread configuration
  /// skips the bumps entirely (no concurrent probers exist).
  std::atomic<uint32_t> Seq{0};

  /// Single-access entries: steps that read (R1, R2) / wrote (W1, W2) the
  /// location and may interleave into a parallel step's pattern.
  MetaSlot R1;
  MetaSlot R2;
  MetaSlot W1;
  MetaSlot W2;

  /// Two-access patterns: the step node that performed both accesses, per
  /// kind pair (first access, second access). The paper keeps one record
  /// per kind; in complete-metadata mode (the default, see
  /// AtomicityChecker::Options::CompleteMetadata) a second record per kind
  /// retains the leftmost/rightmost parallel pattern owners, which the
  /// randomized equivalence suite showed is necessary for completeness.
  /// The *b slots stay unused in paper-literal mode.
  MetaSlot RR;
  MetaSlot RW;
  MetaSlot WR;
  MetaSlot WW;
  MetaSlot RRb;
  MetaSlot RWb;
  MetaSlot WRb;
  MetaSlot WWb;

  /// Representative address for reports (the first address registered for
  /// the group, or the location's own address).
  MemAddr ReportAddr = 0;

  /// Set once a violation involving this location was recorded; used to
  /// count distinct violating locations. Atomic because violations are
  /// recorded *after* the location lock is released (see
  /// AtomicityChecker::recordPending — no lock may be taken under a
  /// location lock, and the ViolationLog has its own).
  std::atomic<bool> Reported{false};

  /// True if this instance is shared by a registered multi-variable atomic
  /// group. Lets registerAtomicGroup distinguish a location's mergeable
  /// private metadata from another group's (which must not be split).
  /// Guarded by Lock.
  bool Grouped = false;

  /// True once the unique-location statistic counted this instance; set
  /// under Lock on the first recorded access (an atomic group counts
  /// once).
  bool Counted = false;

  /// Marks the start of a locked slot mutation for concurrent probers.
  /// The acq_rel bump keeps the following slot stores from being hoisted
  /// above it.
  void beginWrite() { Seq.fetch_add(1, std::memory_order_acq_rel); }

  /// Marks the end of a locked slot mutation; the release bump keeps the
  /// preceding slot stores from sinking below it.
  void endWrite() { Seq.fetch_add(1, std::memory_order_release); }

  /// True if no access has been recorded yet (GS(l) == 0 in Figure 6).
  /// Every recorded access updates R1/W1 first, so testing the primary
  /// slots suffices.
  bool isEmpty() const {
    return R1 == InvalidNodeId && R2 == InvalidNodeId &&
           W1 == InvalidNodeId && W2 == InvalidNodeId &&
           RR == InvalidNodeId && RW == InvalidNodeId &&
           WR == InvalidNodeId && WW == InvalidNodeId;
  }
};

} // namespace avc

#endif // AVC_CHECKER_GLOBALMETADATA_H
