//===- checker/DeterminismChecker.cpp - Tardis-style determinism ----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/DeterminismChecker.h"

#include <cassert>
#include <cstdio>
#include <mutex>

#include "checker/RetentionPolicy.h"
#include "obs/Obs.h"

using namespace avc;

std::string DeterminismViolation::toString() const {
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "determinism violation on location 0x%llx: %s by step S%u "
                "and %s by logically parallel step S%u conflict, so the "
                "outcome depends on the schedule (locks cannot fix this)",
                static_cast<unsigned long long>(Addr),
                accessKindName(FirstKind), FirstStep,
                accessKindName(SecondKind), SecondStep);
  return std::string(Buffer);
}

DeterminismChecker::DeterminismChecker(Options Opts)
    : Opts(Opts), Pre(Opts.preanalysisOptions()), PreEnabled(Pre.enabled()),
      Tree(createDpst(Opts.Layout, Opts.Query)), Builder(*Tree) {
  Oracle = std::make_unique<ParallelismOracle>(*Tree, Opts.oracleOptions());
}

DeterminismChecker::~DeterminismChecker() = default;

void DeterminismChecker::registerObsGauges() {
  if (!obs::sessionActive())
    return;
  obs::addGauge("gauge/dpst-nodes",
                [this] { return double(Tree->numNodes()); });
}

DeterminismChecker::TaskState &DeterminismChecker::createState(TaskId Task) {
  auto State = std::make_unique<TaskState>();
  TaskState *Raw = State.get();
  TaskStorage.emplaceBack(std::move(State));
  Tasks.getOrCreate(Task).store(Raw, std::memory_order_release);
  return *Raw;
}

DeterminismChecker::TaskState &DeterminismChecker::stateFor(TaskId Task) {
  std::atomic<TaskState *> *Slot = Tasks.lookup(Task);
  assert(Slot && "event for a task that was never spawned");
  TaskState *State = Slot->load(std::memory_order_acquire);
  assert(State && "event for a task that was never spawned");
  return *State;
}

void DeterminismChecker::onProgramStart(TaskId RootTask) {
  if (PreEnabled)
    Pre.noteProgramStart(RootTask);
  Builder.initRoot(createState(RootTask).Frame, RootTask);
}

void DeterminismChecker::onTaskSpawn(TaskId Parent, const void *GroupTag,
                                     TaskId Child) {
  if (PreEnabled)
    Pre.noteSpawn(Parent, GroupTag);
  TaskState &ParentState = stateFor(Parent);
  TaskState &ChildState = createState(Child);
  Builder.spawnTask(ParentState.Frame, GroupTag, ChildState.Frame, Child);
}

void DeterminismChecker::onTaskEnd(TaskId Task) {
  TaskState &State = stateFor(Task);
  if (PreEnabled)
    Pre.foldView(State.PreView);
  Builder.endTask(State.Frame);
  // Fold the task's plain counters into the shared totals (single-owner
  // invariant: this worker is the only writer of State's counters).
  Totals.NumReads.fetch_add(State.NumReads, std::memory_order_relaxed);
  Totals.NumWrites.fetch_add(State.NumWrites, std::memory_order_relaxed);
  Totals.NumLocations.fetch_add(State.NumLocations,
                                std::memory_order_relaxed);
  State.NumReads = State.NumWrites = State.NumLocations = 0;
}

void DeterminismChecker::onSync(TaskId Task) {
  if (PreEnabled)
    Pre.noteSync(Task);
  Builder.sync(stateFor(Task).Frame);
}

void DeterminismChecker::onGroupWait(TaskId Task, const void *GroupTag) {
  if (PreEnabled)
    Pre.noteGroupWait(Task, GroupTag);
  Builder.waitGroup(stateFor(Task).Frame, GroupTag);
}

void DeterminismChecker::onSiteRegister(MemAddr Base, uint64_t Size,
                                        uint32_t Stride) {
  if (PreEnabled)
    Pre.registerRange(Base, Size, Stride);
}

DeterminismChecker::LocationState &
DeterminismChecker::locationFor(MemAddr Addr, ShadowSlot &Slot) {
  LocationState *Loc = Slot.Loc.load(std::memory_order_acquire);
  if (Loc)
    return *Loc;
  size_t Index = LocPool.emplaceBack();
  LocationState *Fresh = &LocPool[Index];
  Fresh->ReportAddr = Addr;
  if (Slot.Loc.compare_exchange_strong(Loc, Fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire))
    return *Fresh;
  return *Loc;
}

bool DeterminismChecker::par(NodeId Entry, NodeId Si) {
  if (Entry == InvalidNodeId)
    return false;
  return Oracle->logicallyParallel(Entry, Si);
}

void DeterminismChecker::report(LocationState &Loc, NodeId Prior,
                                AccessKind PriorKind, NodeId Current,
                                AccessKind CurrentKind) {
  std::lock_guard<SpinLock> Guard(ReportLock);
  uint64_t Key = (uint64_t(Prior) << 33) ^ (uint64_t(Current) << 2) ^
                 (uint64_t(PriorKind == AccessKind::Write) << 1) ^
                 uint64_t(CurrentKind == AccessKind::Write) ^
                 (Loc.ReportAddr * 0x9e3779b97f4a7c15ULL);
  if (!Seen.insert(Key).second)
    return;
  ++NumTotal;
  if (Reports.size() >= Opts.MaxRetainedReports)
    return;
  DeterminismViolation V;
  V.Addr = Loc.ReportAddr;
  V.FirstStep = Prior;
  V.SecondStep = Current;
  V.FirstKind = PriorKind;
  V.SecondKind = CurrentKind;
  Reports.push_back(V);
}

void DeterminismChecker::onRead(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Read);
}

void DeterminismChecker::onWrite(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Write);
}

void DeterminismChecker::onAccess(TaskId Task, MemAddr Addr,
                                  AccessKind Kind) {
  TaskState &State = stateFor(Task);
  if (PreEnabled && Pre.gate(State.PreView, Task, Addr, Kind))
    return;
  if (Kind == AccessKind::Read)
    ++State.NumReads;
  else
    ++State.NumWrites;
  NodeId Si = Builder.currentStep(State.Frame);
  LocationState &Loc = locationFor(Addr, Shadow.getOrCreate(Addr));

  std::lock_guard<SpinLock> Guard(Loc.Lock);
  if (!Loc.Counted) {
    Loc.Counted = true;
    ++State.NumLocations;
  }
  // A conflict between logically parallel steps is nondeterministic no
  // matter what synchronization orders it at run time.
  if (Kind == AccessKind::Write) {
    for (NodeId Reader : {Loc.R1, Loc.R2})
      if (par(Reader, Si))
        report(Loc, Reader, AccessKind::Read, Si, AccessKind::Write);
  }
  for (NodeId Writer : {Loc.W1, Loc.W2})
    if (par(Writer, Si))
      report(Loc, Writer, AccessKind::Write, Si, Kind);

  if (Kind == AccessKind::Read)
    retainParallelPair(*Oracle, Loc.R1, Loc.R2, Si);
  else
    retainParallelPair(*Oracle, Loc.W1, Loc.W2, Si);
}

size_t DeterminismChecker::numViolations() const {
  std::lock_guard<SpinLock> Guard(ReportLock);
  return NumTotal;
}

std::vector<DeterminismViolation> DeterminismChecker::violations() const {
  std::lock_guard<SpinLock> Guard(ReportLock);
  return Reports;
}

DeterminismStats DeterminismChecker::stats() const {
  DeterminismStats Stats;
  Stats.Pre = Pre.stats();
  Stats.NumLocations = Totals.NumLocations.load(std::memory_order_relaxed);
  Stats.NumReads = Totals.NumReads.load(std::memory_order_relaxed);
  Stats.NumWrites = Totals.NumWrites.load(std::memory_order_relaxed);
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.NumLocations += State.NumLocations;
    Stats.NumReads += State.NumReads;
    Stats.NumWrites += State.NumWrites;
    Stats.Pre.NumSeqSkips += State.PreView.SeqSkips;
    Stats.Pre.NumSiteSkips += State.PreView.SiteSkips;
  }
  Stats.NumDpstNodes = Tree->numNodes();
  Stats.NumViolations = numViolations();
  return Stats;
}

std::set<MemAddr> DeterminismChecker::violationKeys() const {
  std::set<MemAddr> Keys;
  for (const DeterminismViolation &V : violations())
    Keys.insert(V.Addr);
  return Keys;
}

void DeterminismChecker::printReport(std::FILE *Out) const {
  for (const DeterminismViolation &V : violations())
    std::fprintf(Out, "  %s\n", V.toString().c_str());
}

void DeterminismChecker::visitStats(const StatVisitor &Visit) const {
  DeterminismStats Stats = stats();
  Visit("violations", double(Stats.NumViolations));
  Visit("locations", double(Stats.NumLocations));
  Visit("reads", double(Stats.NumReads));
  Visit("writes", double(Stats.NumWrites));
  Visit("dpst_nodes", double(Stats.NumDpstNodes));
  visitPreanalysisStats(Visit, Stats.Pre);
}
