//===- checker/LocationNames.h - Human names for locations -----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optional address-to-name registry so reports read "location 'balance'"
/// instead of a raw address. The paper's annotations are type qualifiers
/// on named program variables; this is the runtime-library equivalent of
/// carrying those names through to diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_LOCATIONNAMES_H
#define AVC_CHECKER_LOCATIONNAMES_H

#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/ExecutionObserver.h"
#include "support/SpinLock.h"

namespace avc {

/// Thread-safe address -> display-name map.
class LocationNames {
public:
  void set(MemAddr Addr, std::string Name) {
    std::lock_guard<SpinLock> Guard(Lock);
    Names[Addr] = std::move(Name);
  }

  /// Returns the registered name, or an empty string.
  std::string get(MemAddr Addr) const {
    std::lock_guard<SpinLock> Guard(Lock);
    auto It = Names.find(Addr);
    return It == Names.end() ? std::string() : It->second;
  }

  bool empty() const {
    std::lock_guard<SpinLock> Guard(Lock);
    return Names.empty();
  }

private:
  mutable SpinLock Lock;
  std::unordered_map<MemAddr, std::string> Names;
};

} // namespace avc

#endif // AVC_CHECKER_LOCATIONNAMES_H
