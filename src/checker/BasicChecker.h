//===- checker/BasicChecker.h - Unbounded-history checker ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's *basic approach* (Section 3.1, Figure 3): every dynamic
/// access to a tracked location is appended to an unbounded access history,
/// and each new access is checked against all pairs in the history. Memory
/// grows with the number of dynamic accesses — exactly the cost the
/// fixed-size global/local metadata of Section 3.2 eliminates.
///
/// This implementation enumerates *all* unserializable triples, treating
/// the current access both as the pattern-completing access (A3, as in
/// Figure 3) and as the interleaver (A2) of a pattern two prior accesses
/// already formed; the figure's pseudocode covers only the A3 role, but
/// completeness over arbitrary observation orders needs both (DESIGN.md).
/// It serves as the reference oracle the optimized checker is property-
/// tested against, and as the memory/time baseline for the ablation bench.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_BASICCHECKER_H
#define AVC_CHECKER_BASICCHECKER_H

#include <atomic>
#include <memory>
#include <vector>

#include "analysis/SitePreanalysis.h"
#include "checker/AccessKind.h"
#include "checker/CheckerStats.h"
#include "checker/CheckerTool.h"
#include "checker/LockSet.h"
#include "checker/ShadowMemory.h"
#include "checker/ToolOptions.h"
#include "checker/ViolationReport.h"
#include "dpst/Dpst.h"
#include "dpst/DpstBuilder.h"
#include "dpst/ParallelismOracle.h"
#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"
#include "support/RadixTable.h"

namespace avc {

/// Sound-and-complete reference checker with unbounded access histories.
class BasicChecker : public CheckerTool {
public:
  /// All configuration is the shared ToolOptions surface; the reference
  /// checker has no tool-specific knobs.
  struct Options : ToolOptions {};

  BasicChecker(Options Opts);
  BasicChecker() : BasicChecker(Options()) {}
  ~BasicChecker() override;

  /// Same multi-variable grouping as AtomicityChecker::registerAtomicGroup.
  /// Merging into this checker's empty histories always succeeds.
  bool registerAtomicGroup(const MemAddr *Members, size_t Count) override;

  // ExecutionObserver interface.
  void onProgramStart(TaskId RootTask) override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onLockAcquire(TaskId Task, LockId Lock) override;
  void onLockRelease(TaskId Task, LockId Lock) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;
  void onSiteRegister(MemAddr Base, uint64_t Size, uint32_t Stride) override;

  const ViolationLog &violations() const { return Log; }

  // CheckerTool reporting interface.
  const char *name() const override { return "basic"; }
  size_t numViolations() const override { return Log.size(); }
  std::set<MemAddr> violationKeys() const override;
  void printReport(std::FILE *Out) const override;
  void visitStats(const StatVisitor &Visit) const override;

  /// The embedded pre-analysis engine (replay front end, tests).
  SitePreanalysis &preanalysis() override { return Pre; }

  /// True if any violation was recorded for the location tracking \p Addr.
  /// The per-location verdict is the equivalence criterion against the
  /// optimized checker (which may report a different — but equally real —
  /// triple for the same broken location).
  bool locationHasViolation(MemAddr Addr) const;

  CheckerStats stats() const;
  const Dpst &dpst() const { return *Tree; }

  /// Registers this tool's gauges (DPST node count) with the active
  /// observability session; no-op without one.
  void registerObsGauges();

private:
  struct Entry {
    NodeId Step;
    AccessKind Kind;
    LockSet Locks;
  };

  struct LocationHistory {
    SpinLock Lock;
    std::vector<Entry> Entries;
    MemAddr ReportAddr = 0;
    bool Reported = false;
    /// Set under Lock when the unique-location statistic counts this
    /// history (first recorded access; an atomic group counts once).
    bool Counted = false;
  };

  /// Per-task state. Counters are plain integers under the single-owner
  /// invariant (see AtomicityChecker::TaskState): folded into Totals at
  /// task end, exact under quiescence.
  struct TaskState {
    TaskFrame Frame;
    SitePreanalysis::TaskView PreView;
    HeldLocks Locks;
    uint64_t NumReads = 0;
    uint64_t NumWrites = 0;
    uint64_t NumLocations = 0;
  };

  struct CounterTotals {
    std::atomic<uint64_t> NumReads{0};
    std::atomic<uint64_t> NumWrites{0};
    std::atomic<uint64_t> NumLocations{0};
  };

  struct ShadowSlot {
    std::atomic<LocationHistory *> History{nullptr};
  };

  TaskState &stateFor(TaskId Task);
  TaskState &createState(TaskId Task);
  LocationHistory &historyFor(MemAddr Addr, ShadowSlot &Slot);
  void onAccess(TaskId Task, MemAddr Addr, AccessKind Kind);
  void report(LocationHistory &History, NodeId PatternStep, AccessKind K1,
              AccessKind K3, NodeId InterleaverStep, AccessKind K2);

  Options Opts;
  SitePreanalysis Pre;
  const bool PreEnabled;
  std::unique_ptr<Dpst> Tree;
  std::unique_ptr<ParallelismOracle> Oracle;
  DpstBuilder Builder;

  ShadowMemory<ShadowSlot> Shadow;
  ChunkedVector<LocationHistory> HistoryPool;

  RadixTable<std::atomic<TaskState *>> Tasks;
  ChunkedVector<std::unique_ptr<TaskState>> TaskStorage;
  CounterTotals Totals;

  std::atomic<LockToken> NextLockToken{1};
  std::atomic<uint64_t> NumViolatingLocations{0};
  ViolationLog Log;
};

} // namespace avc

#endif // AVC_CHECKER_BASICCHECKER_H
