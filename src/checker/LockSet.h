//===- checker/LockSet.h - Versioned locksets -------------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locksets with the paper's lock *versioning* (Section 3.3): every acquire
/// of a lock yields a fresh token ("we provide a unique name for the lock
/// every time it is re-acquired"), so two accesses share a token iff they
/// execute inside the same dynamic critical-section instance. A two-access
/// pattern is vulnerable to an interleaving access exactly when the two
/// locksets are disjoint — the accesses sit in different critical sections
/// (or none), so a parallel task can slip between them even in a data-race-
/// free program.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_LOCKSET_H
#define AVC_CHECKER_LOCKSET_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "runtime/ExecutionObserver.h"

namespace avc {

/// A unique name for one dynamic acquire of one lock.
using LockToken = uint64_t;

/// An immutable snapshot of the lock instances held at an access. Tokens
/// are kept sorted; sets are tiny (tasks rarely hold more than a couple of
/// locks), so sorted vectors beat any hashing.
class LockSet {
public:
  LockSet() = default;

  /// Builds a set from \p Tokens (any order).
  explicit LockSet(std::vector<LockToken> Tokens) : Tokens(std::move(Tokens)) {
    std::sort(this->Tokens.begin(), this->Tokens.end());
  }

  bool empty() const { return Tokens.empty(); }
  size_t size() const { return Tokens.size(); }

  bool contains(LockToken Token) const {
    return std::binary_search(Tokens.begin(), Tokens.end(), Token);
  }

  /// Returns true if no critical-section instance covers both this access
  /// and \p Other — i.e. a parallel access can interleave between them.
  bool disjointWith(const LockSet &Other) const {
    auto I = Tokens.begin(), IE = Tokens.end();
    auto J = Other.Tokens.begin(), JE = Other.Tokens.end();
    while (I != IE && J != JE) {
      if (*I < *J)
        ++I;
      else if (*J < *I)
        ++J;
      else
        return false;
    }
    return true;
  }

  bool operator==(const LockSet &Other) const { return Tokens == Other.Tokens; }

private:
  std::vector<LockToken> Tokens;
};

/// Tracks the stack of locks a task currently holds, handing out versioned
/// tokens. One instance per task; not thread safe (a task runs on one
/// worker at a time).
class HeldLocks {
public:
  /// Records the acquisition of \p Lock with the fresh token \p Token.
  void acquire(LockId Lock, LockToken Token) {
    Held.push_back({Lock, Token});
    ++Version;
  }

  /// Records the release of \p Lock (the most recent acquisition wins, so
  /// nested distinct locks release in any order).
  void release(LockId Lock) {
    for (auto I = Held.rbegin(), E = Held.rend(); I != E; ++I) {
      if (I->first == Lock) {
        Held.erase(std::next(I).base());
        ++Version;
        return;
      }
    }
    assert(false && "release of a lock that is not held");
  }

  /// Drops every held lock at once (a task ended while still holding
  /// locks — release-build recovery, see AtomicityChecker::onTaskEnd).
  /// Bumps the version so cached snapshots are invalidated.
  void clear() {
    if (Held.empty())
      return;
    Held.clear();
    ++Version;
  }

  /// Monotonic mutation counter: bumped on every acquire and release. A
  /// snapshot taken at version V stays exact while version() == V, so the
  /// checker re-snapshots only when the held set actually changed — the
  /// common no-locks case degenerates to one integer compare per access.
  /// 64-bit: a uint32_t would wrap after 2^32 mutations and let a stale
  /// cached snapshot alias a live version.
  uint64_t version() const { return Version; }

  /// Snapshots the currently held tokens (versioned names; two snapshots
  /// share a token iff taken inside the same critical-section instance).
  LockSet snapshot() const {
    std::vector<LockToken> Tokens;
    Tokens.reserve(Held.size());
    for (const auto &[Lock, Token] : Held)
      Tokens.push_back(Token);
    return LockSet(std::move(Tokens));
  }

  /// Snapshots the currently held lock *identities* (unversioned). Race
  /// detection uses these: two critical sections of the same lock never
  /// race, whichever acquisitions they are.
  LockSet snapshotIds() const {
    std::vector<LockToken> Ids;
    Ids.reserve(Held.size());
    for (const auto &[Lock, Token] : Held)
      Ids.push_back(Lock);
    return LockSet(std::move(Ids));
  }

  size_t depth() const { return Held.size(); }

private:
  std::vector<std::pair<LockId, LockToken>> Held;
  uint64_t Version = 0;
};

} // namespace avc

#endif // AVC_CHECKER_LOCKSET_H
