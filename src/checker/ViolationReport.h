//===- checker/ViolationReport.h - Violation records and log ---*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records of detected atomicity violations: the unserializable triple
/// (A1, A2, A3) with A1/A3 by one step node and A2 by a logically parallel
/// step node, plus the location involved. The log deduplicates structurally
/// identical reports (same location, steps, and kinds), since the same
/// triple is often rediscovered on repeated accesses.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_VIOLATIONREPORT_H
#define AVC_CHECKER_VIOLATIONREPORT_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "checker/AccessKind.h"
#include "dpst/DpstNodeKind.h"
#include "runtime/ExecutionObserver.h"
#include "support/SpinLock.h"

namespace avc {

/// One detected atomicity violation.
struct Violation {
  /// Representative address of the location (or atomic group).
  MemAddr Addr = 0;
  /// The step node whose two-access pattern is broken.
  NodeId PatternStep = InvalidNodeId;
  /// The logically parallel step node whose access interleaves.
  NodeId InterleaverStep = InvalidNodeId;
  /// Kinds of the triple (A1 and A3 by PatternStep, A2 by the interleaver).
  AccessKind A1 = AccessKind::Read;
  AccessKind A2 = AccessKind::Read;
  AccessKind A3 = AccessKind::Read;
  /// Task that executed PatternStep / InterleaverStep.
  uint32_t PatternTask = 0;
  uint32_t InterleaverTask = 0;
  /// Display name of the location, when registered (see LocationNames).
  std::string LocationName;

  /// Human-readable one-line description.
  std::string toString() const;
};

/// Thread-safe, deduplicating violation log.
class ViolationLog {
public:
  /// Caps the number of retained reports (the rest are still counted).
  explicit ViolationLog(size_t MaxRetained = 4096) : MaxRetained(MaxRetained) {}

  /// Records \p V unless a structurally identical report exists. Returns
  /// true if the report was new.
  bool record(const Violation &V);

  /// Total distinct violations recorded.
  size_t size() const;

  /// Snapshot of the retained reports.
  std::vector<Violation> snapshot() const;

  bool empty() const { return size() == 0; }

private:
  static uint64_t dedupKey(const Violation &V);

  mutable SpinLock Lock;
  std::vector<Violation> Reports;
  std::unordered_set<uint64_t> Seen;
  size_t NumDistinct = 0;
  size_t MaxRetained;
};

} // namespace avc

#endif // AVC_CHECKER_VIOLATIONREPORT_H
