//===- checker/RaceDetector.cpp - All-Sets data race detection ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/RaceDetector.h"

#include <cassert>
#include <cstdio>
#include <mutex>

#include "checker/RetentionPolicy.h"
#include "obs/Obs.h"

using namespace avc;

std::string Race::toString() const {
  char Buffer[256];
  std::snprintf(Buffer, sizeof(Buffer),
                "data race on location 0x%llx: %s by step S%u (task %u) and "
                "%s by logically parallel step S%u (task %u) with no common "
                "lock",
                static_cast<unsigned long long>(Addr),
                accessKindName(FirstKind), FirstStep, FirstTask,
                accessKindName(SecondKind), SecondStep, SecondTask);
  return std::string(Buffer);
}

RaceDetector::RaceDetector(Options Opts)
    : Opts(Opts), Pre(Opts.preanalysisOptions()), PreEnabled(Pre.enabled()),
      Tree(createDpst(Opts.Layout, Opts.Query)), Builder(*Tree) {
  Oracle = std::make_unique<ParallelismOracle>(*Tree, Opts.oracleOptions());
}

RaceDetector::~RaceDetector() = default;

void RaceDetector::registerObsGauges() {
  if (!obs::sessionActive())
    return;
  obs::addGauge("gauge/dpst-nodes",
                [this] { return double(Tree->numNodes()); });
}

//===----------------------------------------------------------------------===//
// Task lifecycle (shared shape with the checkers)
//===----------------------------------------------------------------------===//

RaceDetector::TaskState &RaceDetector::createState(TaskId Task) {
  auto State = std::make_unique<TaskState>();
  TaskState *Raw = State.get();
  TaskStorage.emplaceBack(std::move(State));
  Tasks.getOrCreate(Task).store(Raw, std::memory_order_release);
  return *Raw;
}

RaceDetector::TaskState &RaceDetector::stateFor(TaskId Task) {
  std::atomic<TaskState *> *Slot = Tasks.lookup(Task);
  assert(Slot && "event for a task that was never spawned");
  TaskState *State = Slot->load(std::memory_order_acquire);
  assert(State && "event for a task that was never spawned");
  return *State;
}

void RaceDetector::onProgramStart(TaskId RootTask) {
  if (PreEnabled)
    Pre.noteProgramStart(RootTask);
  Builder.initRoot(createState(RootTask).Frame, RootTask);
}

void RaceDetector::onTaskSpawn(TaskId Parent, const void *GroupTag,
                               TaskId Child) {
  if (PreEnabled)
    Pre.noteSpawn(Parent, GroupTag);
  TaskState &ParentState = stateFor(Parent);
  TaskState &ChildState = createState(Child);
  Builder.spawnTask(ParentState.Frame, GroupTag, ChildState.Frame, Child);
}

void RaceDetector::onTaskEnd(TaskId Task) {
  TaskState &State = stateFor(Task);
  if (PreEnabled)
    Pre.foldView(State.PreView);
  Builder.endTask(State.Frame);
  // Fold the task's plain counters into the shared totals (single-owner
  // invariant: this worker is the only writer of State's counters).
  Totals.NumReads.fetch_add(State.NumReads, std::memory_order_relaxed);
  Totals.NumWrites.fetch_add(State.NumWrites, std::memory_order_relaxed);
  Totals.NumLocations.fetch_add(State.NumLocations,
                                std::memory_order_relaxed);
  State.NumReads = State.NumWrites = State.NumLocations = 0;
}

void RaceDetector::onSync(TaskId Task) {
  if (PreEnabled)
    Pre.noteSync(Task);
  Builder.sync(stateFor(Task).Frame);
}

void RaceDetector::onGroupWait(TaskId Task, const void *GroupTag) {
  if (PreEnabled)
    Pre.noteGroupWait(Task, GroupTag);
  Builder.waitGroup(stateFor(Task).Frame, GroupTag);
}

void RaceDetector::onLockAcquire(TaskId Task, LockId Lock) {
  TaskState &State = stateFor(Task);
  // Unversioned: the token is the lock identity itself.
  State.Locks.acquire(Lock, Lock);
  if (PreEnabled)
    Pre.noteLockAcquire(State.PreView, Lock);
}

void RaceDetector::onLockRelease(TaskId Task, LockId Lock) {
  TaskState &State = stateFor(Task);
  State.Locks.release(Lock);
  if (PreEnabled)
    Pre.noteLockRelease(State.PreView, Lock);
}

void RaceDetector::onSiteRegister(MemAddr Base, uint64_t Size,
                                  uint32_t Stride) {
  if (PreEnabled)
    Pre.registerRange(Base, Size, Stride);
}

//===----------------------------------------------------------------------===//
// All-Sets access checking
//===----------------------------------------------------------------------===//

RaceDetector::LocationState &RaceDetector::locationFor(MemAddr Addr,
                                                       ShadowSlot &Slot) {
  LocationState *Loc = Slot.Loc.load(std::memory_order_acquire);
  if (Loc)
    return *Loc;
  size_t Index = LocPool.emplaceBack();
  LocationState *Fresh = &LocPool[Index];
  Fresh->ReportAddr = Addr;
  if (Slot.Loc.compare_exchange_strong(Loc, Fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire))
    return *Fresh;
  return *Loc;
}

bool RaceDetector::par(NodeId Entry, NodeId Si) {
  if (Entry == InvalidNodeId)
    return false;
  return Oracle->logicallyParallel(Entry, Si);
}

void RaceDetector::retainEntry(NodeId &E1, NodeId &E2, NodeId Si) {
  retainParallelPair(*Oracle, E1, E2, Si);
}

void RaceDetector::report(LocationState &Loc, NodeId Prior,
                          AccessKind PriorKind, NodeId Current,
                          AccessKind CurrentKind) {
  std::lock_guard<SpinLock> Guard(RaceLock);
  uint64_t Key = (uint64_t(Prior) << 33) ^ (uint64_t(Current) << 2) ^
                 (uint64_t(PriorKind == AccessKind::Write) << 1) ^
                 uint64_t(CurrentKind == AccessKind::Write);
  Key ^= Loc.ReportAddr * 0x9e3779b97f4a7c15ULL;
  if (!SeenRaces.insert(Key).second)
    return;
  ++NumRacesTotal;
  if (Races.size() >= Opts.MaxRetainedReports)
    return;
  Race R;
  R.Addr = Loc.ReportAddr;
  R.FirstStep = Prior;
  R.SecondStep = Current;
  R.FirstKind = PriorKind;
  R.SecondKind = CurrentKind;
  R.FirstTask = Tree->taskId(Prior);
  R.SecondTask = Tree->taskId(Current);
  Races.push_back(R);
}

void RaceDetector::onRead(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Read);
}

void RaceDetector::onWrite(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Write);
}

void RaceDetector::onAccess(TaskId Task, MemAddr Addr, AccessKind Kind) {
  TaskState &State = stateFor(Task);
  if (PreEnabled && Pre.gate(State.PreView, Task, Addr, Kind))
    return;
  if (Kind == AccessKind::Read)
    ++State.NumReads;
  else
    ++State.NumWrites;
  NodeId Si = Builder.currentStep(State.Frame);
  ShadowSlot &Slot = Shadow.getOrCreate(Addr);
  LocationState &Loc = locationFor(Addr, Slot);
  LockSet Held = State.Locks.snapshotIds();

  std::lock_guard<SpinLock> Guard(Loc.Lock);
  if (!Loc.Counted) {
    Loc.Counted = true;
    ++State.NumLocations;
  }

  // Check against every record whose lockset shares no lock with ours: a
  // logically parallel conflicting access there is a race. (Records with a
  // common lock are mutually excluded — including our own record when the
  // lockset is non-empty.)
  for (const LocksetRecord &Record : Loc.Records) {
    if (!Record.Locks.disjointWith(Held))
      continue;
    if (Kind == AccessKind::Write) {
      for (NodeId Reader : {Record.R1, Record.R2})
        if (par(Reader, Si))
          report(Loc, Reader, AccessKind::Read, Si, AccessKind::Write);
    }
    for (NodeId Writer : {Record.W1, Record.W2})
      if (par(Writer, Si))
        report(Loc, Writer, AccessKind::Write, Si, Kind);
  }

  // Record the access under its own lockset (one record per distinct
  // lockset, the All-Sets bound).
  LocksetRecord *Mine = nullptr;
  for (LocksetRecord &Record : Loc.Records)
    if (Record.Locks == Held) {
      Mine = &Record;
      break;
    }
  if (!Mine) {
    Loc.Records.push_back(LocksetRecord());
    Mine = &Loc.Records.back();
    Mine->Locks = Held;
  }
  if (Kind == AccessKind::Read)
    retainEntry(Mine->R1, Mine->R2, Si);
  else
    retainEntry(Mine->W1, Mine->W2, Si);
}

//===----------------------------------------------------------------------===//
// Results
//===----------------------------------------------------------------------===//

size_t RaceDetector::numRaces() const {
  std::lock_guard<SpinLock> Guard(RaceLock);
  return NumRacesTotal;
}

std::vector<Race> RaceDetector::races() const {
  std::lock_guard<SpinLock> Guard(RaceLock);
  return Races;
}

RaceStats RaceDetector::stats() const {
  RaceStats Stats;
  Stats.Pre = Pre.stats();
  Stats.NumLocations = Totals.NumLocations.load(std::memory_order_relaxed);
  Stats.NumReads = Totals.NumReads.load(std::memory_order_relaxed);
  Stats.NumWrites = Totals.NumWrites.load(std::memory_order_relaxed);
  // Tasks that never ended still hold their counters (exact under
  // quiescence; ended tasks folded and zeroed theirs).
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.NumLocations += State.NumLocations;
    Stats.NumReads += State.NumReads;
    Stats.NumWrites += State.NumWrites;
    Stats.Pre.NumSeqSkips += State.PreView.SeqSkips;
    Stats.Pre.NumSiteSkips += State.PreView.SiteSkips;
  }
  Stats.NumDpstNodes = Tree->numNodes();
  Stats.Lca = Oracle->stats();
  {
    std::lock_guard<SpinLock> Guard(RaceLock);
    Stats.NumRaces = NumRacesTotal;
  }
  return Stats;
}

std::set<MemAddr> RaceDetector::violationKeys() const {
  std::set<MemAddr> Keys;
  for (const Race &R : races())
    Keys.insert(R.Addr);
  return Keys;
}

void RaceDetector::printReport(std::FILE *Out) const {
  for (const Race &R : races())
    std::fprintf(Out, "  %s\n", R.toString().c_str());
}

void RaceDetector::visitStats(const StatVisitor &Visit) const {
  RaceStats Stats = stats();
  Visit("violations", double(Stats.NumRaces));
  Visit("locations", double(Stats.NumLocations));
  Visit("reads", double(Stats.NumReads));
  Visit("writes", double(Stats.NumWrites));
  Visit("dpst_nodes", double(Stats.NumDpstNodes));
  visitPreanalysisStats(Visit, Stats.Pre);
}
