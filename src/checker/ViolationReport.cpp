//===- checker/ViolationReport.cpp - Violation records and log ------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/ViolationReport.h"

#include <cstdio>
#include <mutex>

using namespace avc;

std::string Violation::toString() const {
  char Location[80];
  if (LocationName.empty())
    std::snprintf(Location, sizeof(Location), "location 0x%llx",
                  static_cast<unsigned long long>(Addr));
  else
    std::snprintf(Location, sizeof(Location), "'%s'",
                  LocationName.c_str());
  char Buffer[320];
  std::snprintf(Buffer, sizeof(Buffer),
                "atomicity violation on %s: step S%u (task %u) "
                "performs %s..%s; parallel step S%u (task %u) can interleave "
                "a %s (unserializable %c%c%c)",
                Location, PatternStep,
                PatternTask, accessKindName(A1), accessKindName(A3),
                InterleaverStep, InterleaverTask, accessKindName(A2),
                A1 == AccessKind::Read ? 'R' : 'W',
                A2 == AccessKind::Read ? 'R' : 'W',
                A3 == AccessKind::Read ? 'R' : 'W');
  return std::string(Buffer);
}

uint64_t ViolationLog::dedupKey(const Violation &V) {
  // Steps are < 2^31; three kind bits; fold the address in with a multiply.
  uint64_t Key = (uint64_t(V.PatternStep) << 33) ^
                 (uint64_t(V.InterleaverStep) << 3) ^
                 (uint64_t(V.A1 == AccessKind::Write) << 2) ^
                 (uint64_t(V.A2 == AccessKind::Write) << 1) ^
                 uint64_t(V.A3 == AccessKind::Write);
  return Key ^ (V.Addr * 0x9e3779b97f4a7c15ULL);
}

bool ViolationLog::record(const Violation &V) {
  std::lock_guard<SpinLock> Guard(Lock);
  if (!Seen.insert(dedupKey(V)).second)
    return false;
  ++NumDistinct;
  if (Reports.size() < MaxRetained)
    Reports.push_back(V);
  return true;
}

size_t ViolationLog::size() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return NumDistinct;
}

std::vector<Violation> ViolationLog::snapshot() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Reports;
}
