//===- checker/Velodrome.h - Velodrome baseline reimplementation -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of the Velodrome atomicity checker (Flanagan, Freund &
/// Yi, PLDI'08) at step-node granularity, as the paper's evaluation does:
/// "We reimplemented it to check the atomicity of accesses performed by a
/// step node" (Section 4). Each step node is a transaction; conflicting
/// accesses add edges in *observed* order into a transactional
/// happens-before graph, and a cycle means the observed trace is not
/// conflict serializable.
///
/// Velodrome therefore detects atomicity violations only in the schedule it
/// observes — the contrast the paper draws against the DPST-based checker,
/// which covers all schedules for the input. In particular, a
/// single-threaded run gives Velodrome nothing to find.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_VELODROME_H
#define AVC_CHECKER_VELODROME_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/SitePreanalysis.h"
#include "checker/CheckerTool.h"
#include "checker/ShadowMemory.h"
#include "checker/ToolOptions.h"
#include "dpst/Dpst.h"
#include "dpst/DpstBuilder.h"
#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"
#include "support/RadixTable.h"

namespace avc {

/// Counters for the Velodrome run.
struct VelodromeStats {
  uint64_t NumTransactions = 0; ///< Step nodes that performed accesses.
  uint64_t NumEdges = 0;        ///< Distinct conflict edges added.
  uint64_t NumCycles = 0;       ///< Cycles detected (= violations in trace).
  uint64_t NumReads = 0;
  uint64_t NumWrites = 0;
  /// Site pre-analysis counters (Mode is Off when the gate was disabled).
  PreanalysisStats Pre;
};

/// One detected cycle: adding Source -> Target closed a cycle, i.e. Target
/// already reached Source; Target's transaction is unserializable in the
/// observed trace.
struct VelodromeCycle {
  NodeId Source;
  NodeId Target;
  MemAddr Addr;
};

/// The trace-bound atomicity checker used as the Figure 13 baseline.
class VelodromeChecker : public CheckerTool {
public:
  /// All configuration is the shared ToolOptions surface. Velodrome has no
  /// parallelism oracle, so the query/cache fields are unused, but Layout
  /// picks its DPST implementation like every other tool.
  struct Options : ToolOptions {};

  VelodromeChecker(Options Opts);
  VelodromeChecker() : VelodromeChecker(Options()) {}
  ~VelodromeChecker() override;

  // ExecutionObserver interface.
  void onProgramStart(TaskId RootTask) override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;
  void onSiteRegister(MemAddr Base, uint64_t Size, uint32_t Stride) override;

  /// The embedded pre-analysis engine (replay front end, tests). Skipping
  /// is sound here too: Velodrome transactions are step nodes, so an
  /// access in series with the whole run can close no conflict cycle.
  SitePreanalysis &preanalysis() override { return Pre; }

  VelodromeStats stats() const;
  std::vector<VelodromeCycle> cycles() const;

  // CheckerTool reporting interface.
  const char *name() const override { return "velodrome"; }
  size_t numViolations() const override;
  std::set<MemAddr> violationKeys() const override;
  void printReport(std::FILE *Out) const override;
  void visitStats(const StatVisitor &Visit) const override;

  /// Registers this tool's gauges (DPST node count) with the active
  /// observability session; no-op without one.
  void registerObsGauges() override;

private:
  /// Last-writer transaction and readers-since-last-write per location.
  struct VeloLoc {
    SpinLock Lock;
    NodeId LastWriter = InvalidNodeId;
    std::vector<NodeId> Readers;
  };

  struct ShadowSlot {
    std::atomic<VeloLoc *> Loc{nullptr};
  };

  /// Per-task state. Counters are plain integers under the single-owner
  /// invariant (see AtomicityChecker::TaskState): folded into Totals at
  /// task end, exact under quiescence.
  struct TaskState {
    TaskFrame Frame;
    SitePreanalysis::TaskView PreView;
    uint64_t NumReads = 0;
    uint64_t NumWrites = 0;
  };

  struct CounterTotals {
    std::atomic<uint64_t> NumReads{0};
    std::atomic<uint64_t> NumWrites{0};
  };

  TaskState &stateFor(TaskId Task);
  TaskState &createState(TaskId Task);
  VeloLoc &locFor(ShadowSlot &Slot);
  void onAccess(TaskId Task, MemAddr Addr, bool IsWrite);

  /// Adds the conflict edge From -> To; reports a cycle if To already
  /// reaches From. No-op for self edges and duplicates.
  void addEdge(NodeId From, NodeId To, MemAddr Addr);

  /// True if \p From reaches \p To in the transaction graph (DFS).
  /// Requires GraphLock held.
  bool reaches(NodeId From, NodeId To);

  Options Opts;
  SitePreanalysis Pre;
  const bool PreEnabled;
  std::unique_ptr<Dpst> Tree; // provides the step-node transaction ids
  DpstBuilder Builder;

  ShadowMemory<ShadowSlot> Shadow;
  ChunkedVector<VeloLoc> LocPool;

  RadixTable<std::atomic<TaskState *>> Tasks;
  ChunkedVector<std::unique_ptr<TaskState>> TaskStorage;

  mutable SpinLock GraphLock;
  std::unordered_map<NodeId, std::vector<NodeId>> Successors;
  std::unordered_set<uint64_t> EdgeSet;
  std::vector<VelodromeCycle> Cycles;
  uint64_t NumCyclesTotal = 0;

  CounterTotals Totals;
};

} // namespace avc

#endif // AVC_CHECKER_VELODROME_H
