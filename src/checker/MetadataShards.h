//===- checker/MetadataShards.h - Sharded metadata allocation --*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker's global-metadata allocator, sharded by address hash. A
/// single ChunkedVector pool serializes every first touch of every tracked
/// location on one internal grow lock — on N workers the cold phase of a
/// run (each benchmark's first sweep over its data) funnels through that
/// one line. Striping the pool across cacheline-aligned shards (the same
/// shape as ParallelismOracle's StatShards) splits both the lock and the
/// allocation bump counter, so concurrent first touches of different
/// addresses proceed in parallel.
///
/// Entries are pointer-stable (ChunkedVector never moves elements), which
/// the shadow map and the access-path cache rely on. A CAS loser in
/// ShadowMemory publication leaves its freshly allocated entry unused;
/// that waste is bounded by the number of workers racing on one address
/// and is not recycled (recycling would require knowing no stale pointer
/// survives, which the lock-free publication path cannot).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_METADATASHARDS_H
#define AVC_CHECKER_METADATASHARDS_H

#include <cstddef>

#include "checker/GlobalMetadata.h"
#include "runtime/ExecutionObserver.h"
#include "support/ChunkedVector.h"
#include "support/Compiler.h"

namespace avc {

/// Cacheline-aligned shards of GlobalMetadata pools, indexed by address
/// hash. Thread safe: each shard's ChunkedVector serializes its own
/// growth; distinct shards share no state.
class MetadataShards {
public:
  /// Matches ParallelismOracle::NumStatShards — enough to spread a
  /// 16-worker allocation burst, few enough that the idle footprint stays
  /// trivial.
  static constexpr unsigned NumShards = 16;

  /// Allocates a fresh metadata instance for \p Addr from its shard.
  GlobalMetadata &allocate(MemAddr Addr) {
    Shard &S = Shards[shardIndexFor(Addr)];
    size_t Index = S.Pool.emplaceBack();
    return S.Pool[Index];
  }

  /// The shard \p Addr hashes into (exposed for tests).
  static unsigned shardIndexFor(MemAddr Addr) {
    // Fibonacci hash; tracked addresses share low alignment bits.
    return static_cast<unsigned>(((Addr >> 3) * 0x9e3779b97f4a7c15ULL) >>
                                 (64 - ShardBits));
  }

  /// Total metadata instances allocated across all shards (includes CAS
  /// losers; statistics use GlobalMetadata::Counted instead).
  size_t sizeAllocated() const {
    size_t Total = 0;
    for (const Shard &S : Shards)
      Total += S.Pool.size();
    return Total;
  }

private:
  static constexpr unsigned ShardBits = 4;
  static_assert((1u << ShardBits) == NumShards, "shard count mismatch");

  struct alignas(AVC_CACHELINE_SIZE) Shard {
    ChunkedVector<GlobalMetadata> Pool;
  };

  Shard Shards[NumShards];
};

} // namespace avc

#endif // AVC_CHECKER_METADATASHARDS_H
