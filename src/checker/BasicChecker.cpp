//===- checker/BasicChecker.cpp - Unbounded-history checker ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/BasicChecker.h"

#include <cassert>
#include <mutex>

#include "obs/Obs.h"

using namespace avc;

BasicChecker::BasicChecker(Options Opts)
    : Opts(Opts), Pre(Opts.preanalysisOptions()), PreEnabled(Pre.enabled()),
      Tree(createDpst(Opts.Layout, Opts.Query)), Builder(*Tree),
      Log(Opts.MaxRetainedReports) {
  Oracle = std::make_unique<ParallelismOracle>(*Tree, Opts.oracleOptions());
}

BasicChecker::~BasicChecker() = default;

void BasicChecker::registerObsGauges() {
  if (!obs::sessionActive())
    return;
  obs::addGauge("gauge/dpst-nodes",
                [this] { return double(Tree->numNodes()); });
}

//===----------------------------------------------------------------------===//
// Task lifecycle (shared shape with AtomicityChecker)
//===----------------------------------------------------------------------===//

BasicChecker::TaskState &BasicChecker::createState(TaskId Task) {
  auto State = std::make_unique<TaskState>();
  TaskState *Raw = State.get();
  TaskStorage.emplaceBack(std::move(State));
  Tasks.getOrCreate(Task).store(Raw, std::memory_order_release);
  return *Raw;
}

BasicChecker::TaskState &BasicChecker::stateFor(TaskId Task) {
  std::atomic<TaskState *> *Slot = Tasks.lookup(Task);
  assert(Slot && "event for a task that was never spawned");
  TaskState *State = Slot->load(std::memory_order_acquire);
  assert(State && "event for a task that was never spawned");
  return *State;
}

void BasicChecker::onProgramStart(TaskId RootTask) {
  if (PreEnabled)
    Pre.noteProgramStart(RootTask);
  Builder.initRoot(createState(RootTask).Frame, RootTask);
}

void BasicChecker::onTaskSpawn(TaskId Parent, const void *GroupTag,
                               TaskId Child) {
  if (PreEnabled)
    Pre.noteSpawn(Parent, GroupTag);
  TaskState &ParentState = stateFor(Parent);
  TaskState &ChildState = createState(Child);
  Builder.spawnTask(ParentState.Frame, GroupTag, ChildState.Frame, Child);
}

void BasicChecker::onTaskEnd(TaskId Task) {
  TaskState &State = stateFor(Task);
  if (PreEnabled)
    Pre.foldView(State.PreView);
  Builder.endTask(State.Frame);
  // Fold the task's plain counters into the shared totals (single-owner
  // invariant: this worker is the only writer of State's counters).
  Totals.NumReads.fetch_add(State.NumReads, std::memory_order_relaxed);
  Totals.NumWrites.fetch_add(State.NumWrites, std::memory_order_relaxed);
  Totals.NumLocations.fetch_add(State.NumLocations,
                                std::memory_order_relaxed);
  State.NumReads = State.NumWrites = State.NumLocations = 0;
}

void BasicChecker::onSync(TaskId Task) {
  if (PreEnabled)
    Pre.noteSync(Task);
  Builder.sync(stateFor(Task).Frame);
}

void BasicChecker::onGroupWait(TaskId Task, const void *GroupTag) {
  if (PreEnabled)
    Pre.noteGroupWait(Task, GroupTag);
  Builder.waitGroup(stateFor(Task).Frame, GroupTag);
}

void BasicChecker::onLockAcquire(TaskId Task, LockId Lock) {
  TaskState &State = stateFor(Task);
  LockToken Token = NextLockToken.fetch_add(1, std::memory_order_relaxed);
  State.Locks.acquire(Lock, Token);
  if (PreEnabled)
    Pre.noteLockAcquire(State.PreView, Lock);
}

void BasicChecker::onLockRelease(TaskId Task, LockId Lock) {
  TaskState &State = stateFor(Task);
  State.Locks.release(Lock);
  if (PreEnabled)
    Pre.noteLockRelease(State.PreView, Lock);
}

void BasicChecker::onSiteRegister(MemAddr Base, uint64_t Size,
                                  uint32_t Stride) {
  if (PreEnabled)
    Pre.registerRange(Base, Size, Stride);
}

//===----------------------------------------------------------------------===//
// Locations
//===----------------------------------------------------------------------===//

BasicChecker::LocationHistory &BasicChecker::historyFor(MemAddr Addr,
                                                        ShadowSlot &Slot) {
  LocationHistory *History = Slot.History.load(std::memory_order_acquire);
  if (History)
    return *History;
  size_t Index = HistoryPool.emplaceBack();
  LocationHistory *Fresh = &HistoryPool[Index];
  Fresh->ReportAddr = Addr;
  if (Slot.History.compare_exchange_strong(History, Fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire))
    return *Fresh;
  return *History;
}

bool BasicChecker::registerAtomicGroup(const MemAddr *Members, size_t Count) {
  assert(Count > 0 && "empty atomic group");
  if (PreEnabled)
    Pre.markGrouped(Members, Count);
  ShadowSlot &First = Shadow.getOrCreate(Members[0]);
  LocationHistory &History = historyFor(Members[0], First);
  for (size_t I = 1; I < Count; ++I) {
    ShadowSlot &Slot = Shadow.getOrCreate(Members[I]);
    LocationHistory *Expected = nullptr;
    bool Installed = Slot.History.compare_exchange_strong(
        Expected, &History, std::memory_order_acq_rel,
        std::memory_order_acquire);
    assert((Installed || Expected == &History) &&
           "atomic group member already tracked with separate metadata");
    (void)Installed;
  }
  return true;
}

bool BasicChecker::locationHasViolation(MemAddr Addr) const {
  const ShadowSlot *Slot =
      const_cast<ShadowMemory<ShadowSlot> &>(Shadow).lookup(Addr);
  if (!Slot)
    return false;
  LocationHistory *History = Slot->History.load(std::memory_order_acquire);
  if (!History)
    return false;
  std::lock_guard<SpinLock> Guard(History->Lock);
  return History->Reported;
}

//===----------------------------------------------------------------------===//
// The basic algorithm (Figure 3, extended to both triple roles)
//===----------------------------------------------------------------------===//

void BasicChecker::onRead(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Read);
}

void BasicChecker::onWrite(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, AccessKind::Write);
}

void BasicChecker::onAccess(TaskId Task, MemAddr Addr, AccessKind Kind) {
  TaskState &State = stateFor(Task);
  if (PreEnabled && Pre.gate(State.PreView, Task, Addr, Kind))
    return;
  if (Kind == AccessKind::Read)
    ++State.NumReads;
  else
    ++State.NumWrites;
  NodeId Si = Builder.currentStep(State.Frame);

  ShadowSlot &Slot = Shadow.getOrCreate(Addr);
  LocationHistory &History = historyFor(Addr, Slot);

  LockSet Locks = State.Locks.snapshot();
  std::lock_guard<SpinLock> Guard(History.Lock);
  if (!History.Counted) {
    History.Counted = true;
    ++State.NumLocations;
  }
  const std::vector<Entry> &Entries = History.Entries;

  // Role A3: a prior access P by the current step plus the current access
  // form a two-access pattern (if no critical section spans both); any
  // prior access Q by a logically parallel step may interleave.
  for (const Entry &P : Entries) {
    if (P.Step != Si || !P.Locks.disjointWith(Locks))
      continue;
    for (const Entry &Q : Entries) {
      if (Q.Step == Si)
        continue;
      if (!isUnserializableTriple(P.Kind, Q.Kind, Kind))
        continue;
      if (Oracle->logicallyParallel(Q.Step, Si))
        report(History, Si, P.Kind, Kind, Q.Step, Q.Kind);
    }
  }

  // Role A2: the current access interleaves into a pattern that two prior
  // accesses of some other (parallel) step already formed. Figure 3 omits
  // this role; it is required when the interleaver is observed last.
  for (size_t I = 0, E = Entries.size(); I != E; ++I) {
    const Entry &P = Entries[I];
    if (P.Step == Si)
      continue;
    for (size_t J = I + 1; J != E; ++J) {
      const Entry &Q = Entries[J];
      if (Q.Step != P.Step || !P.Locks.disjointWith(Q.Locks))
        continue;
      if (!isUnserializableTriple(P.Kind, Kind, Q.Kind))
        continue;
      if (Oracle->logicallyParallel(P.Step, Si))
        report(History, P.Step, P.Kind, Q.Kind, Si, Kind);
    }
  }

  History.Entries.push_back(Entry{Si, Kind, std::move(Locks)});
}

void BasicChecker::report(LocationHistory &History, NodeId PatternStep,
                          AccessKind K1, AccessKind K3,
                          NodeId InterleaverStep, AccessKind K2) {
  Violation V;
  V.Addr = History.ReportAddr;
  V.PatternStep = PatternStep;
  V.InterleaverStep = InterleaverStep;
  V.A1 = K1;
  V.A2 = K2;
  V.A3 = K3;
  V.PatternTask = Tree->taskId(PatternStep);
  V.InterleaverTask = Tree->taskId(InterleaverStep);
  if (Log.record(V) && !History.Reported) {
    History.Reported = true;
    NumViolatingLocations.fetch_add(1, std::memory_order_relaxed);
  }
}

CheckerStats BasicChecker::stats() const {
  CheckerStats Stats;
  Stats.Pre = Pre.stats();
  Stats.NumLocations = Totals.NumLocations.load(std::memory_order_relaxed);
  Stats.NumReads = Totals.NumReads.load(std::memory_order_relaxed);
  Stats.NumWrites = Totals.NumWrites.load(std::memory_order_relaxed);
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.NumLocations += State.NumLocations;
    Stats.NumReads += State.NumReads;
    Stats.NumWrites += State.NumWrites;
    Stats.Pre.NumSeqSkips += State.PreView.SeqSkips;
    Stats.Pre.NumSiteSkips += State.PreView.SiteSkips;
  }
  Stats.NumDpstNodes = Tree->numNodes();
  Stats.Lca = Oracle->stats();
  Stats.NumViolations = Log.size();
  Stats.NumViolatingLocations =
      NumViolatingLocations.load(std::memory_order_relaxed);
  return Stats;
}

std::set<MemAddr> BasicChecker::violationKeys() const {
  std::set<MemAddr> Keys;
  for (const Violation &V : Log.snapshot())
    Keys.insert(V.Addr);
  return Keys;
}

void BasicChecker::printReport(std::FILE *Out) const {
  for (const Violation &V : Log.snapshot())
    std::fprintf(Out, "  %s\n", V.toString().c_str());
}

void BasicChecker::visitStats(const StatVisitor &Visit) const {
  visitCheckerStats(Visit, stats(), Log.size());
}
