//===- checker/AtomicityChecker.cpp - The optimized checker ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Implements the metadata propagation and checking of Figures 6-9 with the
/// lock handling of Section 3.3. Known corrections to the paper's figures
/// (documented in DESIGN.md):
///   - Figure 9 line 20 pairs the local *write* (not read) into the WW
///     pattern, as the surrounding prose says;
///   - the Check() calls of Figure 9 run whenever the current step has a
///     fresh two-access pattern, independently of whether the global
///     pattern slot is updated ("the algorithm checks ... It also updates",
///     Section 3.2.2).
///
//===----------------------------------------------------------------------===//

#include "checker/AtomicityChecker.h"

#include <cassert>
#include <cstdio>
#include <mutex>

#include "checker/RetentionPolicy.h"
#include "obs/Obs.h"
#include "support/Compiler.h"

using namespace avc;

AtomicityChecker::AtomicityChecker(Options Opts)
    : Opts(Opts), Pre(Opts.preanalysisOptions()), PreEnabled(Pre.enabled()),
      Concurrent(Opts.resolvedThreads() > 1),
      Tree(createDpst(Opts.Layout, Opts.Query)), Builder(*Tree),
      Log(Opts.MaxRetainedReports) {
  Oracle = std::make_unique<ParallelismOracle>(*Tree, Opts.oracleOptions());
}

void AtomicityChecker::registerObsGauges() {
  if (!obs::sessionActive())
    return;
  obs::addGauge("gauge/dpst-nodes",
                [this] { return double(Tree->numNodes()); });
  obs::addGauge("gauge/shadow-bytes",
                [this] { return double(Shadow.footprintBytes()); });
  obs::addGauge("gauge/violations", [this] { return double(Log.size()); });
  // Hit rates read only the atomic Totals, which fold in at task end; the
  // series advances at task granularity, which is what a profile can
  // attribute anyway (mid-task counters are owner-private by design).
  obs::addGauge("gauge/accesses", [this] {
    return double(Totals.NumReads.load(std::memory_order_relaxed) +
                  Totals.NumWrites.load(std::memory_order_relaxed));
  });
  obs::addGauge("gauge/cache-verdict-hit-pct", [this] {
    double Accesses =
        double(Totals.NumReads.load(std::memory_order_relaxed) +
               Totals.NumWrites.load(std::memory_order_relaxed));
    if (Accesses == 0)
      return 0.0;
    double Hits =
        double(Totals.NumCacheHitReads.load(std::memory_order_relaxed) +
               Totals.NumCacheHitWrites.load(std::memory_order_relaxed));
    return 100.0 * Hits / Accesses;
  });
  obs::addGauge("gauge/cache-path-hit-pct", [this] {
    double Accesses =
        double(Totals.NumReads.load(std::memory_order_relaxed) +
               Totals.NumWrites.load(std::memory_order_relaxed));
    if (Accesses == 0)
      return 0.0;
    return 100.0 *
           double(Totals.NumCachePathHits.load(std::memory_order_relaxed)) /
           Accesses;
  });
}

AtomicityChecker::~AtomicityChecker() = default;

//===----------------------------------------------------------------------===//
// Task lifecycle
//===----------------------------------------------------------------------===//

AtomicityChecker::TaskState &AtomicityChecker::createState(TaskId Task) {
  auto State = std::make_unique<TaskState>();
  TaskState *Raw = State.get();
  // The access cache is acquired lazily on the task's first access (see
  // accessMiss): spawn-and-sync tasks never pay for a table.
  TaskStorage.emplaceBack(std::move(State));
  Tasks.getOrCreate(Task).store(Raw, std::memory_order_release);
  return *Raw;
}

void AtomicityChecker::onProgramStart(TaskId RootTask) {
  TaskState &Root = createState(RootTask);
  Builder.initRoot(Root.Frame, RootTask);
  if (PreEnabled)
    Pre.noteProgramStart(RootTask);
}

void AtomicityChecker::onTaskSpawn(TaskId Parent, const void *GroupTag,
                                   TaskId Child) {
  TaskState &ParentState = stateFor(Parent);
  TaskState &ChildState = createState(Child);
  Builder.spawnTask(ParentState.Frame, GroupTag, ChildState.Frame, Child);
  if (PreEnabled)
    Pre.noteSpawn(Parent, GroupTag);
}

void AtomicityChecker::onSiteRegister(MemAddr Base, uint64_t Size,
                                      uint32_t Stride) {
  if (PreEnabled)
    Pre.registerRange(Base, Size, Stride);
}

void AtomicityChecker::onTaskEnd(TaskId Task) {
  TaskState &State = stateFor(Task);
  Builder.endTask(State.Frame);
  if (AVC_UNLIKELY(State.Locks.depth() != 0)) {
    // Malformed program: the task ended while holding locks. Recover
    // instead of silently carrying the stale lockset into a reused state
    // (which would shrink no critical section but poison every cached
    // verdict and snapshot): drop the held set and retire the verdicts
    // proved under it.
    std::fprintf(stderr,
                 "taskcheck: task %u ended while holding %zu lock(s); "
                 "clearing its lockset\n",
                 static_cast<unsigned>(Task), State.Locks.depth());
    State.Locks.clear();
    ++State.CacheEpoch;
  }
  // The task's interim buffers can never pair up again; drop them, return
  // the access-path cache table to the pool (task states outlive their
  // tasks), and fold the plain counters into the checker-wide totals.
  State.Local.clear();
  State.Cache.release(CachePool);
  if (PreEnabled)
    Pre.foldView(State.PreView);
  flushCounters(State);
}

void AtomicityChecker::flushCounters(TaskState &State) {
  Totals.NumReads.fetch_add(State.NumReads, std::memory_order_relaxed);
  Totals.NumWrites.fetch_add(State.NumWrites, std::memory_order_relaxed);
  Totals.NumLocations.fetch_add(State.NumLocations,
                                std::memory_order_relaxed);
  Totals.NumCacheHitReads.fetch_add(State.NumCacheHitReads,
                                    std::memory_order_relaxed);
  Totals.NumCacheHitWrites.fetch_add(State.NumCacheHitWrites,
                                     std::memory_order_relaxed);
  Totals.NumCachePathHits.fetch_add(State.NumCachePathHits,
                                    std::memory_order_relaxed);
  Totals.NumCacheEvictions.fetch_add(State.NumCacheEvictions,
                                     std::memory_order_relaxed);
  Totals.NumLockSnapshots.fetch_add(State.NumLockSnapshots,
                                    std::memory_order_relaxed);
  Totals.NumSeqlockSkips.fetch_add(State.NumSeqlockSkips,
                                   std::memory_order_relaxed);
  State.NumReads = State.NumWrites = State.NumLocations = 0;
  State.NumCacheHitReads = State.NumCacheHitWrites = 0;
  State.NumCachePathHits = State.NumCacheEvictions = 0;
  State.NumLockSnapshots = 0;
  State.NumSeqlockSkips = 0;
}

void AtomicityChecker::onSync(TaskId Task) {
  Builder.sync(stateFor(Task).Frame);
  if (PreEnabled)
    Pre.noteSync(Task);
}

void AtomicityChecker::onGroupWait(TaskId Task, const void *GroupTag) {
  Builder.waitGroup(stateFor(Task).Frame, GroupTag);
  if (PreEnabled)
    Pre.noteGroupWait(Task, GroupTag);
}

void AtomicityChecker::onLockAcquire(TaskId Task, LockId Lock) {
  // Lock versioning (Section 3.3): every acquire gets a unique token, so
  // re-acquiring the same lock names a new critical-section instance.
  // Tokens are drawn from a task-private block refilled from the shared
  // counter once per LockTokenBlock acquires — lock-heavy workloads on N
  // workers would otherwise contend on one counter line per acquire.
  TaskState &State = stateFor(Task);
  if (AVC_UNLIKELY(State.TokenNext == State.TokenEnd)) {
    State.TokenNext =
        NextLockToken.fetch_add(LockTokenBlock, std::memory_order_relaxed);
    State.TokenEnd = State.TokenNext + LockTokenBlock;
  }
  State.Locks.acquire(Lock, State.TokenNext++);
  if (PreEnabled)
    Pre.noteLockAcquire(State.PreView, Lock);
}

void AtomicityChecker::onLockRelease(TaskId Task, LockId Lock) {
  TaskState &State = stateFor(Task);
  State.Locks.release(Lock);
  if (PreEnabled)
    Pre.noteLockRelease(State.PreView, Lock);
  // A shrunken lockset can make a pattern form that previously could not
  // (interim and current locksets may become disjoint); recorded redundancy
  // verdicts are stale. Acquires need no bump: fresh tokens never intersect
  // an interim lockset, so verdicts survive them. (The *snapshot* view is
  // versioned separately by Locks.version(), which moves on both events.)
  ++State.CacheEpoch;
}

//===----------------------------------------------------------------------===//
// Locations and atomic groups
//===----------------------------------------------------------------------===//

GlobalMetadata &AtomicityChecker::metadataFor(MemAddr Addr, ShadowSlot &Slot) {
  GlobalMetadata *Meta = Slot.Meta.load(std::memory_order_acquire);
  if (AVC_LIKELY(Meta != nullptr))
    return *Meta;
  GlobalMetadata *Fresh = &MetaShards.allocate(Addr);
  Fresh->ReportAddr = Addr;
  if (Slot.Meta.compare_exchange_strong(Meta, Fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
    return *Fresh;
  return *Meta; // lost the race; the shard entry stays unused
}

bool AtomicityChecker::registerAtomicGroup(const MemAddr *Members,
                                           size_t Count) {
  assert(Count > 0 && "empty atomic group");
  // Group violations span member locations; the pre-analysis pins every
  // member site to the generic path (a per-site verdict proves nothing
  // about the merged metadata).
  if (PreEnabled)
    Pre.markGrouped(Members, Count);
  ShadowSlot &First = Shadow.getOrCreate(Members[0]);
  GlobalMetadata &Meta = metadataFor(Members[0], First);
  {
    std::lock_guard<SpinLock> Guard(Meta.Lock);
    if (!Meta.Grouped && !Meta.isEmpty()) {
      // The representative itself was accessed before the group existed;
      // its history is private and the group's shared history would start
      // from a lie. Refuse the whole registration.
      std::fprintf(stderr,
                   "taskcheck: atomic group rejected: member %#llx was "
                   "accessed before registerAtomicGroup\n",
                   static_cast<unsigned long long>(Members[0]));
      return false;
    }
    Meta.Grouped = true;
  }

  bool Ok = true;
  for (size_t I = 1; I < Count; ++I) {
    ShadowSlot &Slot = Shadow.getOrCreate(Members[I]);
    GlobalMetadata *Expected = nullptr;
    if (Slot.Meta.compare_exchange_strong(Expected, &Meta,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
      continue;
    if (Expected == &Meta)
      continue; // idempotent re-registration
    // The member is already tracked with separate metadata. A release
    // build used to keep the split silently and miss every cross-member
    // pattern; merge when that is provably lossless, report otherwise.
    // Capture the report fields while the *locked* instance is still the
    // one they describe: a failed CAS overwrites Expected with whatever
    // pointer the slot now holds, which the held guard does not cover —
    // dereferencing it would read another instance's fields unlocked.
    GlobalMetadata *Locked = Expected;
    std::lock_guard<SpinLock> Guard(Locked->Lock);
    bool WasGrouped = Locked->Grouped;
    if (!WasGrouped && Locked->isEmpty() &&
        Slot.Meta.compare_exchange_strong(Expected, &Meta,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire))
      continue; // empty private metadata: merged into the group
    std::fprintf(stderr,
                 "taskcheck: atomic group conflict: member %#llx is already "
                 "tracked with %s metadata; member keeps its old metadata\n",
                 static_cast<unsigned long long>(Members[I]),
                 WasGrouped ? "another group's" : "populated private");
    Ok = false;
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// Core access handling (Figure 6)
//===----------------------------------------------------------------------===//

const LockSet &AtomicityChecker::heldLockView(TaskState &State) {
  if (AVC_UNLIKELY(State.LockViewVersion != State.Locks.version())) {
    State.LockView = State.Locks.snapshot();
    State.LockViewVersion = State.Locks.version();
    ++State.NumLockSnapshots;
  }
  return State.LockView;
}

AVC_NOINLINE void AtomicityChecker::accessMiss(TaskState &State, MemAddr Addr,
                                               NodeId Si, AccessKind Kind) {
  // Sampled: a full span per miss would double the cost of the path it
  // measures; every 64th miss at this site is timed instead.
  AVC_OBS_SPAN_SAMPLED(obs::Cat::Checker, "checker/shadow-walk", 64);
  if (AVC_UNLIKELY(!State.Cache.enabled() && Opts.EnableAccessCache &&
                   Opts.AccessCacheSlots > 0))
    State.Cache.acquire(CachePool, Opts.AccessCacheSlots);
  ShadowSlot &Slot = Shadow.getOrCreate(Addr);
  GlobalMetadata &GS = metadataFor(Addr, Slot);
  LocalLoc &LS = State.Local[&GS];
  accessResolved(State, Addr, GS, LS, Si, Kind, /*ComputeVerdicts=*/false);
}

bool AtomicityChecker::probeRedundant(const GlobalMetadata &GS,
                                      const LocalLoc &LS, NodeId Si,
                                      const LockSet &Locks,
                                      bool &ReadRedundant,
                                      bool &WriteRedundant) {
  if (!Concurrent) {
    // No concurrent writer can exist; the snapshot is trivially
    // consistent (locked writers skip the Seq bumps in this mode).
    ReadRedundant = readIsRedundant(GS, LS, Si, Locks);
    WriteRedundant = writeIsRedundant(GS, LS, Si, Locks);
    return true;
  }
  uint32_t Seq0 = GS.Seq.load(std::memory_order_acquire);
  if (Seq0 & 1)
    return false; // a locked writer is mid-mutation
  ReadRedundant = readIsRedundant(GS, LS, Si, Locks);
  WriteRedundant = writeIsRedundant(GS, LS, Si, Locks);
  // The proofs' acquire slot loads pin this re-check after them; a torn
  // view (a writer's odd bump or completed write) fails validation. The
  // acquire slot loads also pair with a writer's release slot stores, so
  // observing any mutated slot implies observing its preceding bump.
  return GS.Seq.load(std::memory_order_relaxed) == Seq0;
}

void AtomicityChecker::accessResolved(TaskState &State, MemAddr Addr,
                                      GlobalMetadata &GS, LocalLoc &LS,
                                      NodeId Si, AccessKind Kind,
                                      bool ComputeVerdicts) {
  const LockSet &Locks = heldLockView(State);

  // A new maximal region invalidates the interim buffers: two-access
  // patterns pair accesses of one step node (Figure 4), so entries from an
  // earlier step of this task are dead.
  if (LS.RStep != InvalidNodeId && LS.RStep != Si) {
    LS.RStep = InvalidNodeId;
    LS.RLocks = LockSet();
  }
  if (LS.WStep != InvalidNodeId && LS.WStep != Si) {
    LS.WStep = InvalidNodeId;
    LS.WLocks = LockSet();
  }

  // Lock-free fast path (the read-mostly probe): on a re-touch by the same
  // step and epoch — exactly when the slow path would compute verdicts —
  // evaluate the redundancy proofs against a seqlock-validated snapshot
  // first. A provably redundant access cannot change the Figure 7-9 state
  // machine or surface a violation its counterpart access would not also
  // surface, so it completes without the location lock; the verdicts are
  // stamped for the verdict tier exactly as the locked path would.
  if (ComputeVerdicts) {
    bool ReadRedundant, WriteRedundant;
    if (probeRedundant(GS, LS, Si, Locks, ReadRedundant, WriteRedundant) &&
        (Kind == AccessKind::Read ? ReadRedundant : WriteRedundant)) {
      ++State.NumSeqlockSkips;
      if (State.Cache.enabled() &&
          State.Cache.stamp(Addr, &GS, &LS, Si, cacheEpoch(State),
                            State.Local.generation(), ReadRedundant,
                            WriteRedundant))
        ++State.NumCacheEvictions;
      return;
    }
  }

  {
    std::lock_guard<SpinLock> Guard(GS.Lock);
    if (AVC_UNLIKELY(!GS.Counted)) {
      // First recorded access to this location (or atomic group), counted
      // under the lock that already serializes it.
      GS.Counted = true;
      ++State.NumLocations;
    }
    // Publish the mutation window to concurrent lock-free probers. Only
    // worthwhile with real concurrency; single-worker runs skip the bumps.
    if (Concurrent)
      GS.beginWrite();
    bool LocalEmpty = LS.RStep == InvalidNodeId && LS.WStep == InvalidNodeId;
    if (GS.isEmpty() && LocalEmpty)
      handleFirstAccess(GS, LS, Si, Kind, Locks);
    else if (LocalEmpty)
      handleFirstAccessCurrentTask(GS, LS, Si, Kind, Locks, State.Pending);
    else
      handleNonFirstAccess(GS, LS, Si, Kind, Locks, State.Pending);
    if (Concurrent)
      GS.endWrite();

    // A path-tier re-touch recomputes both verdicts while GS.Lock is still
    // held — an access of one kind can un-prove the other kind's redundancy
    // (a first write arms the WR/WW patterns a future read/write would
    // form) — and stamps them unconditionally. A plain miss only *claims*
    // the slot under the cache's aging policy, with no proofs: most
    // first-touched addresses are never probed again, so both the proofs
    // and the line-dirtying store are deferred until an address shows reuse.
    if (State.Cache.enabled()) {
      if (ComputeVerdicts) {
        if (State.Cache.stamp(Addr, &GS, &LS, Si, cacheEpoch(State),
                              State.Local.generation(),
                              readIsRedundant(GS, LS, Si, Locks),
                              writeIsRedundant(GS, LS, Si, Locks)))
          ++State.NumCacheEvictions;
      } else if (State.Cache.claim(Addr, &GS, &LS, Si, cacheEpoch(State),
                                   State.Local.generation())) {
        ++State.NumCacheEvictions;
      }
    }
  }

  // Violations found under the lock are recorded only now: the log has its
  // own lock, and no lock may be taken under a location lock.
  if (AVC_UNLIKELY(!State.Pending.empty()))
    recordPending(State, GS);
}

AVC_NOINLINE void AtomicityChecker::recordPending(TaskState &State,
                                                  GlobalMetadata &GS) {
  for (Violation &V : State.Pending) {
    V.LocationName = Names.get(GS.ReportAddr);
    if (Log.record(V)) {
      obs::instant(obs::Cat::Checker, "checker/violation", GS.ReportAddr);
      if (!GS.Reported.exchange(true, std::memory_order_relaxed))
        NumViolatingLocations.fetch_add(1, std::memory_order_relaxed);
    }
  }
  State.Pending.clear();
}

/// A further read by \p Si at lockset \p Locks is redundant iff the interim
/// read buffer is populated, the step is retained as a global read entry
/// (so every later-formed WW pattern tests it as an interleaver), and each
/// pattern the read would re-form (RR always, WR when the interim write
/// exists; a pattern forms iff the locksets are disjoint, Section 3.3) is
/// already promoted into the global pattern slots (so every later write
/// tests it at Figure 8's Check() sites).
bool AtomicityChecker::readIsRedundant(const GlobalMetadata &GS,
                                       const LocalLoc &LS, NodeId Si,
                                       const LockSet &Locks) {
  if (LS.RStep != Si)
    return false;
  if (GS.R1 != Si && GS.R2 != Si)
    return false;
  if (LS.RLocks.disjointWith(Locks) && GS.RR != Si && GS.RRb != Si)
    return false;
  if (LS.WStep == Si && LS.WLocks.disjointWith(Locks) && GS.WR != Si &&
      GS.WRb != Si)
    return false;
  return true;
}

/// Mirror of readIsRedundant for writes: interim write buffer populated,
/// step retained as a global write entry (every pattern formation tests
/// W1/W2 as interleavers), and the RW/WW patterns a further write would
/// re-form already promoted.
bool AtomicityChecker::writeIsRedundant(const GlobalMetadata &GS,
                                        const LocalLoc &LS, NodeId Si,
                                        const LockSet &Locks) {
  if (LS.WStep != Si)
    return false;
  if (GS.W1 != Si && GS.W2 != Si)
    return false;
  if (LS.WLocks.disjointWith(Locks) && GS.WW != Si && GS.WWb != Si)
    return false;
  if (LS.RStep == Si && LS.RLocks.disjointWith(Locks) && GS.RW != Si &&
      GS.RWb != Si)
    return false;
  return true;
}

/// Figure 7: the very first access to the location by any task.
void AtomicityChecker::handleFirstAccess(GlobalMetadata &GS, LocalLoc &LS,
                                         NodeId Si, AccessKind Kind,
                                         const LockSet &Locks) {
  if (Kind == AccessKind::Read) {
    GS.R1 = Si;
    LS.RStep = Si;
    LS.RLocks = Locks;
    return;
  }
  GS.W1 = Si;
  LS.WStep = Si;
  LS.WLocks = Locks;
}

/// Figure 8: the location has history, but this is the first access by the
/// current step node. The only possible violation has the current access as
/// the interleaver (A2) of a recorded two-access pattern.
void AtomicityChecker::handleFirstAccessCurrentTask(
    GlobalMetadata &GS, LocalLoc &LS, NodeId Si, AccessKind Kind,
    const LockSet &Locks, std::vector<Violation> &Pending) {
  if (Kind == AccessKind::Read) {
    LS.RStep = Si;
    LS.RLocks = Locks;
    // A read only breaks a write-write pattern (WRW); every other pattern
    // stays serializable around an interleaved read (Figure 4).
    checkPatternsAgainstRead(GS, Si, Pending);
    retainEntry(GS.R1, GS.R2, Si);
    return;
  }
  LS.WStep = Si;
  LS.WLocks = Locks;
  // An interleaved write breaks all four patterns (WWW, RWW, RWR, WWR).
  checkPatternsAgainstWrite(GS, Si, Pending);
  retainEntry(GS.W1, GS.W2, Si);
}

/// Tests the recorded WW pattern(s) against an interleaving read (WRW).
void AtomicityChecker::checkPatternsAgainstRead(
    GlobalMetadata &GS, NodeId Si, std::vector<Violation> &Pending) {
  check(GS, GS.WW, AccessKind::Write, AccessKind::Write, Si, AccessKind::Read,
        Pending);
  check(GS, GS.WWb, AccessKind::Write, AccessKind::Write, Si,
        AccessKind::Read, Pending);
}

/// Tests all recorded pattern(s) against an interleaving write (WWW, RWW,
/// RWR, WWR).
void AtomicityChecker::checkPatternsAgainstWrite(
    GlobalMetadata &GS, NodeId Si, std::vector<Violation> &Pending) {
  check(GS, GS.WW, AccessKind::Write, AccessKind::Write, Si,
        AccessKind::Write, Pending);
  check(GS, GS.WWb, AccessKind::Write, AccessKind::Write, Si,
        AccessKind::Write, Pending);
  check(GS, GS.RW, AccessKind::Read, AccessKind::Write, Si, AccessKind::Write,
        Pending);
  check(GS, GS.RWb, AccessKind::Read, AccessKind::Write, Si,
        AccessKind::Write, Pending);
  check(GS, GS.RR, AccessKind::Read, AccessKind::Read, Si, AccessKind::Write,
        Pending);
  check(GS, GS.RRb, AccessKind::Read, AccessKind::Read, Si, AccessKind::Write,
        Pending);
  check(GS, GS.WR, AccessKind::Write, AccessKind::Read, Si, AccessKind::Write,
        Pending);
  check(GS, GS.WRb, AccessKind::Write, AccessKind::Read, Si,
        AccessKind::Write, Pending);
}

/// Figure 9: the current step node already accessed the location; together
/// with the interim buffer the current access forms a two-access pattern,
/// which is checked against the global single-access entries and promoted
/// into the global space. Lock handling (Section 3.3): the pattern only
/// exists if the two accesses' locksets are disjoint, i.e. no critical
/// section spans both.
void AtomicityChecker::handleNonFirstAccess(GlobalMetadata &GS, LocalLoc &LS,
                                            NodeId Si, AccessKind Kind,
                                            const LockSet &Locks,
                                            std::vector<Violation> &Pending) {
  assert((LS.RStep == InvalidNodeId || LS.RStep == Si) &&
         (LS.WStep == InvalidNodeId || LS.WStep == Si) &&
         "stale local entries must have been invalidated");
  if (Kind == AccessKind::Read) {
    if (LS.RStep != InvalidNodeId && LS.RLocks.disjointWith(Locks)) {
      // Fresh RR pattern: vulnerable to interleaved writes (RWR).
      check(GS, Si, AccessKind::Read, AccessKind::Read, GS.W1,
            AccessKind::Write, Pending);
      check(GS, Si, AccessKind::Read, AccessKind::Read, GS.W2,
            AccessKind::Write, Pending);
      retainPattern(GS.RR, GS.RRb, Si);
    }
    if (LS.WStep != InvalidNodeId && LS.WLocks.disjointWith(Locks)) {
      // Fresh WR pattern: vulnerable to interleaved writes (WWR).
      check(GS, Si, AccessKind::Write, AccessKind::Read, GS.W1,
            AccessKind::Write, Pending);
      check(GS, Si, AccessKind::Write, AccessKind::Read, GS.W2,
            AccessKind::Write, Pending);
      retainPattern(GS.WR, GS.WRb, Si);
    }
    if (LS.RStep == InvalidNodeId) {
      LS.RStep = Si;
      LS.RLocks = Locks;
    }
    if (Opts.ExtraInterleaverChecks)
      checkPatternsAgainstRead(GS, Si, Pending);
    retainEntry(GS.R1, GS.R2, Si);
    return;
  }

  if (LS.RStep != InvalidNodeId && LS.RLocks.disjointWith(Locks)) {
    // Fresh RW pattern: vulnerable to interleaved writes (RWW).
    check(GS, Si, AccessKind::Read, AccessKind::Write, GS.W1,
          AccessKind::Write, Pending);
    check(GS, Si, AccessKind::Read, AccessKind::Write, GS.W2,
          AccessKind::Write, Pending);
    retainPattern(GS.RW, GS.RWb, Si);
  }
  if (LS.WStep != InvalidNodeId && LS.WLocks.disjointWith(Locks)) {
    // Fresh WW pattern: vulnerable to interleaved writes (WWW) and
    // interleaved reads (WRW).
    check(GS, Si, AccessKind::Write, AccessKind::Write, GS.W1,
          AccessKind::Write, Pending);
    check(GS, Si, AccessKind::Write, AccessKind::Write, GS.W2,
          AccessKind::Write, Pending);
    check(GS, Si, AccessKind::Write, AccessKind::Write, GS.R1,
          AccessKind::Read, Pending);
    check(GS, Si, AccessKind::Write, AccessKind::Write, GS.R2,
          AccessKind::Read, Pending);
    retainPattern(GS.WW, GS.WWb, Si);
  }
  if (LS.WStep == InvalidNodeId) {
    LS.WStep = Si;
    LS.WLocks = Locks;
  }
  if (Opts.ExtraInterleaverChecks)
    checkPatternsAgainstWrite(GS, Si, Pending);
  retainEntry(GS.W1, GS.W2, Si);
}

//===----------------------------------------------------------------------===//
// Check() and single-entry propagation
//===----------------------------------------------------------------------===//

bool AtomicityChecker::par(NodeId Entry, NodeId Si) {
  if (Entry == InvalidNodeId)
    return false;
  return Oracle->logicallyParallel(Entry, Si);
}

void AtomicityChecker::check(GlobalMetadata &GS, NodeId PatternStep,
                             AccessKind K1, AccessKind K3,
                             NodeId InterleaverStep, AccessKind K2,
                             std::vector<Violation> &Pending) {
  if (PatternStep == InvalidNodeId || InterleaverStep == InvalidNodeId)
    return;
  // Every Check() site pairs a pattern with an access kind that makes the
  // triple unserializable by construction (the 12-entry design exists
  // precisely so that only vulnerable combinations are ever compared).
  assert(isUnserializableTriple(K1, K2, K3) &&
         "check called on a serializable shape");
  if (!par(PatternStep, InterleaverStep))
    return;

  // Runs under GS.Lock, so only queue: the violation log and the location
  // names each have their own lock, and no lock may be taken under a
  // location lock (recordPending finishes the report after release).
  Violation V;
  V.Addr = GS.ReportAddr;
  V.PatternStep = PatternStep;
  V.InterleaverStep = InterleaverStep;
  V.A1 = K1;
  V.A2 = K2;
  V.A3 = K3;
  V.PatternTask = Tree->taskId(PatternStep);
  V.InterleaverTask = Tree->taskId(InterleaverStep);
  Pending.push_back(std::move(V));
}

void AtomicityChecker::retainEntry(MetaSlot &E1, MetaSlot &E2, NodeId Si) {
  // Slots are atomic for the lock-free probe's benefit; the retention
  // policies below run on plain local copies (one acquire load per slot)
  // and only changed values are stored back, keeping slot writes minimal.
  NodeId V1 = E1, V2 = E2;
  if (V1 == Si || V2 == Si)
    return;
  if (!Opts.CompleteMetadata) {
    // Figure 8 lines 6-9/16-19: first-fit into an empty or in-series slot;
    // drop the access when both slots hold parallel steps.
    if (V1 == InvalidNodeId || !par(V1, Si)) {
      E1 = Si;
      return;
    }
    if (V2 == InvalidNodeId || !par(V2, Si))
      E2 = Si;
    return;
  }

  // Complete mode: dominated-entry replacement plus leftmost/rightmost
  // retention (shared with the race detector; see RetentionPolicy.h).
  const NodeId Orig1 = V1, Orig2 = V2;
  retainParallelPair(*Oracle, V1, V2, Si);
  if (V1 != Orig1)
    E1 = V1;
  if (V2 != Orig2)
    E2 = V2;
}

void AtomicityChecker::retainPattern(MetaSlot &P1, MetaSlot &P2, NodeId Si) {
  AVC_OBS_INSTANT_SAMPLED(obs::Cat::Checker, "checker/pattern-promote", 16);
  if (!Opts.CompleteMetadata) {
    // Figure 9: store the pattern when the slot is empty or in series with
    // the current step; the secondary slot stays unused.
    if (!par(P1, Si))
      P1 = Si;
    return;
  }
  retainEntry(P1, P2, Si);
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

CheckerStats AtomicityChecker::stats() const {
  CheckerStats Stats;
  Stats.NumDpstNodes = Tree->numNodes();
  Stats.Lca = Oracle->stats();
  Stats.NumViolations = Log.size();
  Stats.NumViolatingLocations =
      NumViolatingLocations.load(std::memory_order_relaxed);
  Stats.AccessCacheEnabled = Opts.EnableAccessCache;
  Stats.Pre = Pre.stats();
  // Finished tasks folded their counters into Totals; tasks that never saw
  // onTaskEnd still hold theirs (zeroed by the fold, so nothing is counted
  // twice). Exact under quiescence — see the TaskState counter invariant.
  Stats.NumReads = Totals.NumReads.load(std::memory_order_relaxed);
  Stats.NumWrites = Totals.NumWrites.load(std::memory_order_relaxed);
  Stats.NumLocations = Totals.NumLocations.load(std::memory_order_relaxed);
  Stats.NumCacheHitReads =
      Totals.NumCacheHitReads.load(std::memory_order_relaxed);
  Stats.NumCacheHitWrites =
      Totals.NumCacheHitWrites.load(std::memory_order_relaxed);
  Stats.NumCachePathHits =
      Totals.NumCachePathHits.load(std::memory_order_relaxed);
  Stats.NumCacheEvictions =
      Totals.NumCacheEvictions.load(std::memory_order_relaxed);
  Stats.NumLockSnapshots =
      Totals.NumLockSnapshots.load(std::memory_order_relaxed);
  Stats.NumSeqlockSkips =
      Totals.NumSeqlockSkips.load(std::memory_order_relaxed);
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.NumLocations += State.NumLocations;
    Stats.NumReads += State.NumReads;
    Stats.NumWrites += State.NumWrites;
    Stats.NumCacheHitReads += State.NumCacheHitReads;
    Stats.NumCacheHitWrites += State.NumCacheHitWrites;
    Stats.NumCachePathHits += State.NumCachePathHits;
    Stats.NumCacheEvictions += State.NumCacheEvictions;
    Stats.NumLockSnapshots += State.NumLockSnapshots;
    Stats.NumSeqlockSkips += State.NumSeqlockSkips;
    Stats.Pre.NumSeqSkips += State.PreView.SeqSkips;
    Stats.Pre.NumSiteSkips += State.PreView.SiteSkips;
  }
  Stats.NumCacheHits = Stats.NumCacheHitReads + Stats.NumCacheHitWrites;
  return Stats;
}

std::set<MemAddr> AtomicityChecker::violationKeys() const {
  std::set<MemAddr> Keys;
  for (const Violation &V : Log.snapshot())
    Keys.insert(V.Addr);
  return Keys;
}

void AtomicityChecker::printReport(std::FILE *Out) const {
  for (const Violation &V : Log.snapshot())
    std::fprintf(Out, "  %s\n", V.toString().c_str());
}

void AtomicityChecker::visitStats(const StatVisitor &Visit) const {
  visitCheckerStats(Visit, stats(), Log.size());
}

void AtomicityChecker::printStats(std::FILE *Out) const {
  CheckerStats Stats = stats();
  std::fprintf(Out,
               "\nstatistics: %llu locations, %llu reads, %llu writes, "
               "%llu DPST nodes, %llu parallelism queries via %s "
               "(%.1f%% cache hits, %llu trivial same-step)\n",
               static_cast<unsigned long long>(Stats.NumLocations),
               static_cast<unsigned long long>(Stats.NumReads),
               static_cast<unsigned long long>(Stats.NumWrites),
               static_cast<unsigned long long>(Stats.NumDpstNodes),
               static_cast<unsigned long long>(Stats.Lca.NumQueries),
               queryModeName(Stats.Lca.Mode), Stats.Lca.percentCacheHits(),
               static_cast<unsigned long long>(Stats.Lca.NumTrivialSame));
  if (Stats.AccessCacheEnabled)
    std::fprintf(Out,
                 "access cache: %llu verdict hits (%llu reads, %llu writes, "
                 "%.1f%% of accesses), %llu path hits (%.1f%%), "
                 "%llu evictions, %llu lockset snapshots\n",
                 static_cast<unsigned long long>(Stats.NumCacheHits),
                 static_cast<unsigned long long>(Stats.NumCacheHitReads),
                 static_cast<unsigned long long>(Stats.NumCacheHitWrites),
                 Stats.cacheHitRate(),
                 static_cast<unsigned long long>(Stats.NumCachePathHits),
                 Stats.cachePathHitRate(),
                 static_cast<unsigned long long>(Stats.NumCacheEvictions),
                 static_cast<unsigned long long>(Stats.NumLockSnapshots));
  if (Stats.Pre.Mode != PreanalysisMode::Off)
    std::fprintf(Out,
                 "preanalysis (%s): %llu seq skips, %llu site skips, "
                 "%llu downgrades (%llu unsafe); %llu sites: "
                 "%llu sequential-only, %llu read-only-after-init, "
                 "%llu fixed-lockset, %llu generic\n",
                 preanalysisModeName(Stats.Pre.Mode),
                 static_cast<unsigned long long>(Stats.Pre.NumSeqSkips),
                 static_cast<unsigned long long>(Stats.Pre.NumSiteSkips),
                 static_cast<unsigned long long>(Stats.Pre.NumDowngrades),
                 static_cast<unsigned long long>(
                     Stats.Pre.NumUnsafeDowngrades),
                 static_cast<unsigned long long>(Stats.Pre.NumSites),
                 static_cast<unsigned long long>(
                     Stats.Pre.NumSequentialOnly),
                 static_cast<unsigned long long>(
                     Stats.Pre.NumReadOnlyAfterInit),
                 static_cast<unsigned long long>(Stats.Pre.NumFixedLockset),
                 static_cast<unsigned long long>(Stats.Pre.NumGeneric));
}
