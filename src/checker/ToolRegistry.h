//===- checker/ToolRegistry.h - Name -> engine factory registry -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps tool names ("atomicity", "vclock", ...) to descriptions and
/// factories. The process-wide instance() carries every built-in engine;
/// the CLI resolves --tool= against it, --tool=list iterates it, and
/// ToolContext/BatchReplay construct engines through it. Registries are
/// also plain value types so tests can build private ones.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_TOOLREGISTRY_H
#define AVC_CHECKER_TOOLREGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "checker/CheckerTool.h"
#include "checker/ToolOptions.h"

namespace avc {

/// Builds a fresh engine instance. \p Extras is an optional engine-specific
/// knob block (dynamic_cast to the engine's own type; foreign or null
/// means defaults). Factories must be safe to call concurrently: batch
/// replay constructs isolated instances from worker threads.
using ToolFactory = std::function<std::unique_ptr<CheckerTool>(
    const ToolOptions &, const ToolExtras *)>;

/// One registered engine.
struct ToolRegistration {
  ToolKind Kind = ToolKind::None;
  std::string Name;
  std::string Description;
  /// Null for pseudo-tools that run nothing (ToolKind::None).
  ToolFactory Factory;
};

/// A name -> registration table. instance() is the canonical registry with
/// all built-in engines; default-constructed registries start empty.
class ToolRegistry {
public:
  ToolRegistry() = default;

  /// Adds \p Reg; rejects (returns false, leaves the registry unchanged)
  /// when the name is already taken.
  bool add(ToolRegistration Reg);

  /// Registration for \p Name, or null if unknown.
  const ToolRegistration *find(std::string_view Name) const;

  /// Registration for \p Kind, or null if unknown.
  const ToolRegistration *find(ToolKind Kind) const;

  /// All registrations in registration order.
  const std::vector<ToolRegistration> &all() const { return Registrations; }

  /// Comma-separated name list ("atomicity, basic, ...") for error
  /// messages and choice validation.
  std::string names() const;

  /// The process-wide registry, populated with every built-in engine on
  /// first use (lazy: static-library builds must not rely on registration
  /// objects the linker may drop).
  static ToolRegistry &instance();

private:
  std::vector<ToolRegistration> Registrations;
};

} // namespace avc

#endif // AVC_CHECKER_TOOLREGISTRY_H
