//===- checker/Velodrome.cpp - Velodrome baseline reimplementation --------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/Velodrome.h"

#include <cassert>
#include <mutex>

#include "obs/Obs.h"

using namespace avc;

VelodromeChecker::VelodromeChecker(Options Opts)
    : Opts(Opts), Pre(Opts.preanalysisOptions()), PreEnabled(Pre.enabled()),
      Tree(createDpst(Opts.Layout)), Builder(*Tree) {}

VelodromeChecker::~VelodromeChecker() = default;

void VelodromeChecker::registerObsGauges() {
  if (!obs::sessionActive())
    return;
  obs::addGauge("gauge/dpst-nodes",
                [this] { return double(Tree->numNodes()); });
}

//===----------------------------------------------------------------------===//
// Task lifecycle: step nodes delimit transactions
//===----------------------------------------------------------------------===//

VelodromeChecker::TaskState &VelodromeChecker::createState(TaskId Task) {
  auto State = std::make_unique<TaskState>();
  TaskState *Raw = State.get();
  TaskStorage.emplaceBack(std::move(State));
  Tasks.getOrCreate(Task).store(Raw, std::memory_order_release);
  return *Raw;
}

VelodromeChecker::TaskState &VelodromeChecker::stateFor(TaskId Task) {
  std::atomic<TaskState *> *Slot = Tasks.lookup(Task);
  assert(Slot && "event for a task that was never spawned");
  TaskState *State = Slot->load(std::memory_order_acquire);
  assert(State && "event for a task that was never spawned");
  return *State;
}

void VelodromeChecker::onProgramStart(TaskId RootTask) {
  if (PreEnabled)
    Pre.noteProgramStart(RootTask);
  Builder.initRoot(createState(RootTask).Frame, RootTask);
}

void VelodromeChecker::onTaskSpawn(TaskId Parent, const void *GroupTag,
                                   TaskId Child) {
  if (PreEnabled)
    Pre.noteSpawn(Parent, GroupTag);
  TaskState &ParentState = stateFor(Parent);
  TaskState &ChildState = createState(Child);
  Builder.spawnTask(ParentState.Frame, GroupTag, ChildState.Frame, Child);
}

void VelodromeChecker::onTaskEnd(TaskId Task) {
  TaskState &State = stateFor(Task);
  if (PreEnabled)
    Pre.foldView(State.PreView);
  Builder.endTask(State.Frame);
  // Fold the task's plain counters into the shared totals (single-owner
  // invariant: this worker is the only writer of State's counters).
  Totals.NumReads.fetch_add(State.NumReads, std::memory_order_relaxed);
  Totals.NumWrites.fetch_add(State.NumWrites, std::memory_order_relaxed);
  State.NumReads = State.NumWrites = 0;
}

void VelodromeChecker::onSync(TaskId Task) {
  if (PreEnabled)
    Pre.noteSync(Task);
  Builder.sync(stateFor(Task).Frame);
}

void VelodromeChecker::onGroupWait(TaskId Task, const void *GroupTag) {
  if (PreEnabled)
    Pre.noteGroupWait(Task, GroupTag);
  Builder.waitGroup(stateFor(Task).Frame, GroupTag);
}

void VelodromeChecker::onSiteRegister(MemAddr Base, uint64_t Size,
                                      uint32_t Stride) {
  if (PreEnabled)
    Pre.registerRange(Base, Size, Stride);
}

//===----------------------------------------------------------------------===//
// Conflict edges and cycle detection
//===----------------------------------------------------------------------===//

VelodromeChecker::VeloLoc &VelodromeChecker::locFor(ShadowSlot &Slot) {
  VeloLoc *Loc = Slot.Loc.load(std::memory_order_acquire);
  if (Loc)
    return *Loc;
  size_t Index = LocPool.emplaceBack();
  VeloLoc *Fresh = &LocPool[Index];
  if (Slot.Loc.compare_exchange_strong(Loc, Fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire))
    return *Fresh;
  return *Loc;
}

bool VelodromeChecker::reaches(NodeId From, NodeId To) {
  if (From == To)
    return true;
  std::vector<NodeId> Stack{From};
  std::unordered_set<NodeId> Visited{From};
  while (!Stack.empty()) {
    NodeId Node = Stack.back();
    Stack.pop_back();
    auto It = Successors.find(Node);
    if (It == Successors.end())
      continue;
    for (NodeId Succ : It->second) {
      if (Succ == To)
        return true;
      if (Visited.insert(Succ).second)
        Stack.push_back(Succ);
    }
  }
  return false;
}

void VelodromeChecker::addEdge(NodeId From, NodeId To, MemAddr Addr) {
  if (From == To)
    return;
  std::lock_guard<SpinLock> Guard(GraphLock);
  uint64_t Key = (uint64_t(From) << 32) | uint64_t(To);
  if (!EdgeSet.insert(Key).second)
    return;
  // The edge says From's conflicting access was observed before To's; if To
  // already reaches From, the transactions depend on each other in both
  // directions and the trace is not conflict serializable.
  if (reaches(To, From)) {
    ++NumCyclesTotal;
    if (Cycles.size() < Opts.MaxRetainedReports)
      Cycles.push_back(VelodromeCycle{From, To, Addr});
  }
  Successors[From].push_back(To);
}

void VelodromeChecker::onRead(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, /*IsWrite=*/false);
}

void VelodromeChecker::onWrite(TaskId Task, MemAddr Addr) {
  onAccess(Task, Addr, /*IsWrite=*/true);
}

void VelodromeChecker::onAccess(TaskId Task, MemAddr Addr, bool IsWrite) {
  TaskState &State = stateFor(Task);
  if (PreEnabled &&
      Pre.gate(State.PreView, Task, Addr,
               IsWrite ? AccessKind::Write : AccessKind::Read))
    return;
  if (IsWrite)
    ++State.NumWrites;
  else
    ++State.NumReads;
  NodeId Txn = Builder.currentStep(State.Frame);
  VeloLoc &Loc = locFor(Shadow.getOrCreate(Addr));

  std::lock_guard<SpinLock> Guard(Loc.Lock);
  if (!IsWrite) {
    if (Loc.LastWriter != InvalidNodeId)
      addEdge(Loc.LastWriter, Txn, Addr);
    for (NodeId Reader : Loc.Readers)
      if (Reader == Txn)
        return;
    Loc.Readers.push_back(Txn);
    return;
  }
  if (Loc.LastWriter != InvalidNodeId)
    addEdge(Loc.LastWriter, Txn, Addr);
  for (NodeId Reader : Loc.Readers)
    addEdge(Reader, Txn, Addr);
  Loc.Readers.clear();
  Loc.LastWriter = Txn;
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

VelodromeStats VelodromeChecker::stats() const {
  VelodromeStats Stats;
  Stats.NumReads = Totals.NumReads.load(std::memory_order_relaxed);
  Stats.NumWrites = Totals.NumWrites.load(std::memory_order_relaxed);
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.NumReads += State.NumReads;
    Stats.NumWrites += State.NumWrites;
  }
  Stats.Pre = Pre.stats();
  for (size_t I = 0, N = TaskStorage.size(); I < N; ++I) {
    const TaskState &State = *TaskStorage[I];
    Stats.Pre.NumSeqSkips += State.PreView.SeqSkips;
    Stats.Pre.NumSiteSkips += State.PreView.SiteSkips;
  }
  std::lock_guard<SpinLock> Guard(GraphLock);
  Stats.NumEdges = EdgeSet.size();
  Stats.NumCycles = NumCyclesTotal;
  Stats.NumTransactions = Successors.size();
  return Stats;
}

std::vector<VelodromeCycle> VelodromeChecker::cycles() const {
  std::lock_guard<SpinLock> Guard(GraphLock);
  return Cycles;
}

size_t VelodromeChecker::numViolations() const {
  std::lock_guard<SpinLock> Guard(GraphLock);
  return NumCyclesTotal;
}

std::set<MemAddr> VelodromeChecker::violationKeys() const {
  std::set<MemAddr> Keys;
  for (const VelodromeCycle &Cycle : cycles())
    Keys.insert(Cycle.Addr);
  return Keys;
}

void VelodromeChecker::printReport(std::FILE *Out) const {
  for (const VelodromeCycle &Cycle : cycles())
    std::fprintf(Out,
                 "  unserializable transaction in observed trace: edge "
                 "S%u -> S%u closed a cycle (location 0x%llx)\n",
                 Cycle.Source, Cycle.Target,
                 static_cast<unsigned long long>(Cycle.Addr));
}

void VelodromeChecker::visitStats(const StatVisitor &Visit) const {
  VelodromeStats Stats = stats();
  Visit("violations", double(Stats.NumCycles));
  Visit("transactions", double(Stats.NumTransactions));
  Visit("edges", double(Stats.NumEdges));
  Visit("reads", double(Stats.NumReads));
  Visit("writes", double(Stats.NumWrites));
  visitPreanalysisStats(Visit, Stats.Pre);
}
