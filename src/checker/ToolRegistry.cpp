//===- checker/ToolRegistry.cpp - Name -> engine factory registry ---------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "checker/ToolRegistry.h"

#include "checker/AtomicityChecker.h"
#include "checker/BasicChecker.h"
#include "checker/DeterminismChecker.h"
#include "checker/RaceDetector.h"
#include "checker/VectorClockAtomicity.h"
#include "checker/Velodrome.h"

using namespace avc;

namespace {

/// Slices the shared ToolOptions surface into an engine's own Options
/// struct (every engine's Options derives from ToolOptions) and builds it.
template <typename ToolT>
std::unique_ptr<CheckerTool> makeSliced(const ToolOptions &Base) {
  typename ToolT::Options Opts;
  static_cast<ToolOptions &>(Opts) = Base;
  return std::make_unique<ToolT>(Opts);
}

} // namespace

bool ToolRegistry::add(ToolRegistration Reg) {
  if (find(Reg.Name))
    return false;
  Registrations.push_back(std::move(Reg));
  return true;
}

const ToolRegistration *ToolRegistry::find(std::string_view Name) const {
  for (const ToolRegistration &Reg : Registrations)
    if (Reg.Name == Name)
      return &Reg;
  return nullptr;
}

const ToolRegistration *ToolRegistry::find(ToolKind Kind) const {
  for (const ToolRegistration &Reg : Registrations)
    if (Reg.Kind == Kind)
      return &Reg;
  return nullptr;
}

std::string ToolRegistry::names() const {
  std::string Out;
  for (const ToolRegistration &Reg : Registrations) {
    if (!Out.empty())
      Out += ", ";
    Out += Reg.Name;
  }
  return Out;
}

ToolRegistry &ToolRegistry::instance() {
  static ToolRegistry Registry = [] {
    ToolRegistry R;
    R.add({ToolKind::Atomicity, "atomicity",
           "the paper's schedule-generalizing checker",
           [](const ToolOptions &Base, const ToolExtras *Extras) {
             AtomicityChecker::Options Opts;
             static_cast<ToolOptions &>(Opts) = Base;
             if (const auto *A = dynamic_cast<const AtomicityExtras *>(Extras)) {
               Opts.ExtraInterleaverChecks = A->ExtraInterleaverChecks;
               Opts.CompleteMetadata = A->CompleteMetadata;
             }
             return std::make_unique<AtomicityChecker>(Opts);
           }});
    R.add({ToolKind::Basic, "basic", "unbounded-history reference checker",
           [](const ToolOptions &Base, const ToolExtras *) {
             return makeSliced<BasicChecker>(Base);
           }});
    R.add({ToolKind::Velodrome, "velodrome",
           "trace-bound baseline (observed schedule only)",
           [](const ToolOptions &Base, const ToolExtras *) {
             return makeSliced<VelodromeChecker>(Base);
           }});
    R.add({ToolKind::VClock, "vclock",
           "linear-time vector-clock atomicity (observed schedule only)",
           [](const ToolOptions &Base, const ToolExtras *) {
             return makeSliced<VectorClockAtomicity>(Base);
           }});
    R.add({ToolKind::Race, "race", "All-Sets data race detector",
           [](const ToolOptions &Base, const ToolExtras *) {
             return makeSliced<RaceDetector>(Base);
           }});
    R.add({ToolKind::Determinism, "determinism",
           "Tardis-style internal-determinism checker",
           [](const ToolOptions &Base, const ToolExtras *) {
             return makeSliced<DeterminismChecker>(Base);
           }});
    R.add({ToolKind::None, "none", "uninstrumented baseline",
           ToolFactory()});
    return R;
  }();
  return Registry;
}

const char *avc::toolKindName(ToolKind Kind) {
  const ToolRegistration *Reg = ToolRegistry::instance().find(Kind);
  return Reg ? Reg->Name.c_str() : "unknown";
}
