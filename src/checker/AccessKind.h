//===- checker/AccessKind.h - Access kinds and serializability -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory access kinds and the conflict-serializability rule for access
/// triples (Figure 4 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_CHECKER_ACCESSKIND_H
#define AVC_CHECKER_ACCESSKIND_H

#include <cstdint>

namespace avc {

/// Read or write.
enum class AccessKind : uint8_t { Read, Write };

/// Returns "read" or "write".
inline const char *accessKindName(AccessKind Kind) {
  return Kind == AccessKind::Read ? "read" : "write";
}

/// Decides conflict serializability of the triple (A1, A2, A3) where A1 and
/// A3 are performed by one step node and A2 by a logically parallel step
/// node (Figure 4).
///
/// Two accesses conflict iff they target the same location, belong to
/// different tasks, and at least one is a write. A2 can be commuted past a
/// non-conflicting neighbour, so the triple is serializable unless A2
/// conflicts with both A1 and A3:
///   - A2 == Write conflicts with anything: RWR, RWW, WWR, WWW are
///     unserializable;
///   - A2 == Read conflicts only with writes: only WRW is unserializable.
/// The serializable patterns are RRR, RRW, WRR — three of eight, matching
/// Figure 4.
inline bool isUnserializableTriple(AccessKind A1, AccessKind A2,
                                   AccessKind A3) {
  if (A2 == AccessKind::Write)
    return true;
  return A1 == AccessKind::Write && A3 == AccessKind::Write;
}

} // namespace avc

#endif // AVC_CHECKER_ACCESSKIND_H
