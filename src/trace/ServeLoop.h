//===- trace/ServeLoop.h - Long-running queue-draining checker -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `taskcheck serve`: a daemon loop that drains trace files from a queue
/// directory, batch-replays them through one registry-selected engine,
/// and exposes its state through the metrics plane (obs/Metrics.h).
///
/// Queue protocol (DESIGN.md §14): producers drop finished trace files
/// into QueueDir (write to a temp name, rename in — rename is the commit
/// point). The server claims a pending file by renaming it into
/// `QueueDir/inflight/<name>.<pid>`; rename(2) is atomic within a
/// filesystem, so when several servers share one queue exactly one
/// claimer wins and the losers see ENOENT and move on. After checking,
/// the file moves to `QueueDir/done/`; files that fail to load or parse
/// are quarantined in `QueueDir/failed/` and the loop keeps serving. A
/// sentinel file `QueueDir/stop` requests a clean shutdown: the server
/// finishes in-flight work, writes a final snapshot, and exits without
/// deleting the sentinel (so one touch stops every server on the queue).
///
/// Observability: one NDJSON row per trace appended to the results log,
/// a Prometheus text snapshot and a JSON health/heartbeat file atomically
/// rewritten every SnapshotMs, headline latency histograms
/// (taskcheck_trace_{decode,check,total}_seconds) and violation counters
/// published by the shared checkTraceFile path.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_SERVELOOP_H
#define AVC_TRACE_SERVELOOP_H

#include <cstdint>
#include <string>

#include "trace/BatchReplay.h"

namespace avc {

/// Configuration of one serve run.
struct ServeOptions {
  /// Queue directory (required). Created if missing, as are its
  /// inflight/, done/, and failed/ subdirectories.
  std::string QueueDir;
  /// Tool selection and shared checker configuration per claimed trace.
  BatchOptions Batch;
  /// Prometheus text snapshot path; empty disables the snapshot file.
  std::string MetricsPath;
  /// JSON heartbeat/health path; empty disables the health file.
  std::string HealthPath;
  /// NDJSON per-trace result log; empty disables the log.
  std::string ResultsPath;
  /// Idle poll interval when the queue is empty.
  uint64_t PollMs = 50;
  /// Metrics/health rewrite interval.
  uint64_t SnapshotMs = 1000;
  /// Maximum files claimed per drain cycle (bounds replay-batch size and
  /// claim fairness between servers sharing a queue).
  unsigned MaxBatch = 16;
};

/// Aggregate outcome of one serve run (also the health-file payload).
struct ServeStats {
  uint64_t NumClaimed = 0;
  uint64_t NumChecked = 0;
  uint64_t NumFailed = 0; ///< quarantined to failed/
  uint64_t NumFlagged = 0;
  uint64_t NumViolations = 0;
  uint64_t NumHeartbeats = 0;
  uint64_t NumClaimRaces = 0; ///< claims lost to a concurrent server
  /// False only when the queue directory could not be set up.
  bool Ok = true;
  std::string Error;
};

/// Claims the next pending trace in \p QueueDir by renaming it into
/// \p InflightDir with a `.<suffix>` tag. Returns the claimed (inflight)
/// path, or "" when no pending file exists. Lost races (another claimer
/// renamed the file first) bump \p ClaimRaces and the scan continues.
/// Exposed for the claim-race unit tests; serve uses it internally.
std::string serveClaimOne(const std::string &QueueDir,
                          const std::string &InflightDir,
                          const std::string &Suffix, uint64_t &ClaimRaces);

/// Number of pending (unclaimed) trace files in \p QueueDir.
uint64_t serveQueueDepth(const std::string &QueueDir);

/// Runs the serve loop until `QueueDir/stop` appears. Returns the run's
/// aggregate stats; stats.Ok is false if the queue could not be set up.
ServeStats runServe(const ServeOptions &Opts);

} // namespace avc

#endif // AVC_TRACE_SERVELOOP_H
