//===- trace/TraceRecorder.cpp - Observer that records traces -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceRecorder.h"

#include <mutex>

using namespace avc;

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::append(TraceEvent Event) {
  std::lock_guard<SpinLock> Guard(Lock);
  Events.push_back(Event);
}

uint64_t TraceRecorder::groupIdFor(const void *GroupTag) {
  if (!GroupTag)
    return 0;
  // Called with Lock *not* held; group ids are only created on spawn and
  // wait events, which are rare next to accesses.
  std::lock_guard<SpinLock> Guard(Lock);
  auto [It, Inserted] = GroupIds.try_emplace(GroupTag, NextGroupId);
  if (Inserted)
    ++NextGroupId;
  return It->second;
}

void TraceRecorder::onProgramStart(TaskId RootTask) {
  append({TraceEventKind::ProgramStart, RootTask, 0, 0});
}

void TraceRecorder::onProgramEnd() {
  append({TraceEventKind::ProgramEnd, 0, 0, 0});
}

void TraceRecorder::onTaskSpawn(TaskId Parent, const void *GroupTag,
                                TaskId Child) {
  uint64_t Group = groupIdFor(GroupTag);
  append({TraceEventKind::TaskSpawn, Parent, Child, Group});
}

void TraceRecorder::onTaskEnd(TaskId Task) {
  append({TraceEventKind::TaskEnd, Task, 0, 0});
}

void TraceRecorder::onSync(TaskId Task) {
  append({TraceEventKind::Sync, Task, 0, 0});
}

void TraceRecorder::onGroupWait(TaskId Task, const void *GroupTag) {
  uint64_t Group = groupIdFor(GroupTag);
  append({TraceEventKind::GroupWait, Task, Group, 0});
}

void TraceRecorder::onLockAcquire(TaskId Task, LockId Lock) {
  append({TraceEventKind::LockAcquire, Task, Lock, 0});
}

void TraceRecorder::onLockRelease(TaskId Task, LockId Lock) {
  append({TraceEventKind::LockRelease, Task, Lock, 0});
}

void TraceRecorder::onRead(TaskId Task, MemAddr Addr) {
  append({TraceEventKind::Read, Task, Addr, 0});
}

void TraceRecorder::onWrite(TaskId Task, MemAddr Addr) {
  append({TraceEventKind::Write, Task, Addr, 0});
}
