//===- trace/TraceRecorder.cpp - Observer that records traces -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceRecorder.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "obs/Metrics.h"

using namespace avc;

namespace {

std::atomic<uint64_t> NextRecorderId{1};

/// Per-thread pointer to the calling thread's buffer in one recorder.
/// Cached by recorder id, not pointer: ids are never reused, so a recorder
/// allocated at a dead recorder's address misses and re-resolves.
struct BufCache {
  uint64_t RecorderId = 0;
  void *Buf = nullptr;
};
thread_local BufCache LocalCache;

} // namespace

TraceRecorder::TraceRecorder()
    : RecorderId(NextRecorderId.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::WorkerBuf &TraceRecorder::localBuf() {
  if (LocalCache.RecorderId == RecorderId)
    return *static_cast<WorkerBuf *>(LocalCache.Buf);
  // First event from this thread (or the cache points at another
  // recorder): resolve through the registry. Once per thread per
  // recorder in the common case.
  std::lock_guard<SpinLock> Guard(BufLock);
  std::thread::id Self = std::this_thread::get_id();
  WorkerBuf *Buf = nullptr;
  for (std::unique_ptr<WorkerBuf> &B : Bufs)
    if (B->Owner == Self) {
      Buf = B.get();
      break;
    }
  if (!Buf) {
    Bufs.push_back(std::make_unique<WorkerBuf>());
    Buf = Bufs.back().get();
    Buf->Owner = Self;
  }
  LocalCache = {RecorderId, Buf};
  return *Buf;
}

void TraceRecorder::startRun(WorkerBuf &B, uint64_t Key) {
  uint64_t N = B.PublishedEvents.load(std::memory_order_relaxed);
  if (!B.Runs.empty() && B.Runs.back().Begin == N) {
    // The previous run never received an event; reuse it. Keys only grow
    // within a buffer, so overwriting keeps them monotone.
    B.Runs.back().Key = Key;
    return;
  }
  B.Runs.push_back({Key, N});
  B.PublishedRuns.store(B.Runs.size(), std::memory_order_release);
}

void TraceRecorder::append(TraceEvent Event) {
  WorkerBuf &B = localBuf();
  if (B.Runs.empty()) {
    // No sync-class event on this thread yet (possible for helper threads
    // that only ever see reads): open a run at the current global key.
    startRun(B, Seq.load(std::memory_order_acquire));
  }
  uint64_t N = B.PublishedEvents.load(std::memory_order_relaxed);
  size_t Chunk = N / EventChunk::Capacity;
  if (Chunk == B.Chunks.size())
    B.Chunks.push_back(std::make_unique<EventChunk>());
  B.Chunks[Chunk]->Events[N % EventChunk::Capacity] = Event;
  B.PublishedEvents.store(N + 1, std::memory_order_release);
}

void TraceRecorder::appendKeyed(uint64_t Key, TraceEvent Event) {
  startRun(localBuf(), Key);
  append(Event);
}

uint64_t TraceRecorder::groupIdFor(const void *GroupTag) {
  if (!GroupTag)
    return 0;
  // Group ids are only created on spawn and wait events, which are rare
  // next to accesses; a dedicated lock keeps them off the append path.
  std::lock_guard<SpinLock> Guard(GroupLock);
  auto [It, Inserted] = GroupIds.try_emplace(GroupTag, NextGroupId);
  if (Inserted)
    ++NextGroupId;
  return It->second;
}

void TraceRecorder::onProgramStart(TaskId RootTask) {
  // Key 0: sorts before every sampled or incremented key (Seq starts at 1).
  appendKeyed(0, {TraceEventKind::ProgramStart, RootTask, 0, 0});
}

void TraceRecorder::onTaskSpawn(TaskId Parent, const void *GroupTag,
                                TaskId Child) {
  uint64_t Group = groupIdFor(GroupTag);
  // The pre-increment value keys this run; the child's execute-begin
  // sample is ordered after this increment by the runtime's deque
  // publish/steal synchronization, so it reads a strictly greater key.
  uint64_t Key = Seq.fetch_add(1, std::memory_order_acq_rel);
  appendKeyed(Key, {TraceEventKind::TaskSpawn, Parent, Child, Group});
}

void TraceRecorder::onTaskExecuteBegin(TaskId) {
  // Sample, don't increment: beginning execution creates no new
  // happens-before edge beyond the spawn's, it only moves the task's
  // upcoming events onto this worker's buffer.
  startRun(localBuf(), Seq.load(std::memory_order_acquire));
}

void TraceRecorder::onTaskEnd(TaskId Task) {
  uint64_t Key = Seq.fetch_add(1, std::memory_order_acq_rel);
  appendKeyed(Key, {TraceEventKind::TaskEnd, Task, 0, 0});
}

void TraceRecorder::onSync(TaskId Task) {
  uint64_t Key = Seq.fetch_add(1, std::memory_order_acq_rel);
  appendKeyed(Key, {TraceEventKind::Sync, Task, 0, 0});
}

void TraceRecorder::onGroupWait(TaskId Task, const void *GroupTag) {
  uint64_t Group = groupIdFor(GroupTag);
  uint64_t Key = Seq.fetch_add(1, std::memory_order_acq_rel);
  appendKeyed(Key, {TraceEventKind::GroupWait, Task, Group, 0});
}

void TraceRecorder::onLockAcquire(TaskId Task, LockId Lock) {
  uint64_t Key = Seq.fetch_add(1, std::memory_order_acq_rel);
  appendKeyed(Key, {TraceEventKind::LockAcquire, Task, Lock, 0});
}

void TraceRecorder::onLockRelease(TaskId Task, LockId Lock) {
  uint64_t Key = Seq.fetch_add(1, std::memory_order_acq_rel);
  appendKeyed(Key, {TraceEventKind::LockRelease, Task, Lock, 0});
}

void TraceRecorder::onRead(TaskId Task, MemAddr Addr) {
  append({TraceEventKind::Read, Task, Addr, 0});
}

void TraceRecorder::onWrite(TaskId Task, MemAddr Addr) {
  append({TraceEventKind::Write, Task, Addr, 0});
}

void TraceRecorder::onProgramEnd() {
  // UINT64_MAX: sorts after every other run, and onProgramEnd fires only
  // after every task has completed, so nothing can follow it.
  appendKeyed(UINT64_MAX, {TraceEventKind::ProgramEnd, 0, 0, 0});
  mergeBuffers();
}

void TraceRecorder::mergeBuffers() {
  struct MergeRun {
    uint64_t Key;
    uint32_t BufIdx;
    uint32_t RunIdx;
    uint64_t Begin;
    uint64_t End;
  };

  // Snapshot under the registry lock; the acquire loads of the published
  // counts order all of each owner's plain stores before our reads.
  std::lock_guard<SpinLock> Guard(BufLock);
  std::vector<MergeRun> Order;
  uint64_t Total = 0;
  for (size_t BufIdx = 0; BufIdx < Bufs.size(); ++BufIdx) {
    WorkerBuf &B = *Bufs[BufIdx];
    uint64_t NumRuns = B.PublishedRuns.load(std::memory_order_acquire);
    uint64_t NumEvents = B.PublishedEvents.load(std::memory_order_acquire);
    Total += NumEvents;
    for (uint64_t R = 0; R < NumRuns; ++R) {
      uint64_t End = R + 1 < NumRuns ? B.Runs[R + 1].Begin : NumEvents;
      Order.push_back({B.Runs[R].Key, uint32_t(BufIdx), uint32_t(R),
                       B.Runs[R].Begin, End});
    }
  }

  // Keys are monotone within a buffer, so (Key, BufIdx, RunIdx) keeps each
  // buffer's runs in recorded order; cross-buffer ties carry no
  // happens-before edge and may break either way.
  std::sort(Order.begin(), Order.end(),
            [](const MergeRun &A, const MergeRun &B) {
              return std::tie(A.Key, A.BufIdx, A.RunIdx) <
                     std::tie(B.Key, B.BufIdx, B.RunIdx);
            });

  Events.clear();
  Events.reserve(Total);
  Stats = TraceRecorderStats();
  Stats.NumWorkerBuffers = Bufs.size();
  Stats.NumRuns = Order.size();
  uint32_t PrevBuf = UINT32_MAX;
  for (const MergeRun &Run : Order) {
    if (Run.Begin == Run.End)
      continue;
    if (PrevBuf != UINT32_MAX && Run.BufIdx != PrevBuf)
      ++Stats.NumContendedMerges;
    PrevBuf = Run.BufIdx;
    WorkerBuf &B = *Bufs[Run.BufIdx];
    for (uint64_t I = Run.Begin; I < Run.End; ++I)
      Events.push_back(
          B.Chunks[I / EventChunk::Capacity]
              ->Events[I % EventChunk::Capacity]);
  }
  Stats.NumEvents = Events.size();

  // Fold this recording into the process registry; merges happen once per
  // recorded program, so registry lookups here are off the hot path.
  metrics::MetricsRegistry &Registry = metrics::MetricsRegistry::instance();
  Registry
      .counter(metrics::names::RecorderEventsTotal,
               "Events merged out of worker buffers.")
      .add(Stats.NumEvents);
  Registry
      .counter(metrics::names::RecorderRunsTotal,
               "Per-worker runs stitched during merges.")
      .add(Stats.NumRuns);
  Registry
      .counter(metrics::names::RecorderContendedMergesTotal,
               "Adjacent merged runs that switched worker buffers.")
      .add(Stats.NumContendedMerges);
}
