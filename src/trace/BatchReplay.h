//===- trace/BatchReplay.h - Parallel batch trace checking -----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a fleet of stored traces — text or binary (TraceCodec) — through
/// one analysis tool, one isolated tool instance per trace, fanned out over
/// the work-stealing runtime. Each trace replay is sequential (the
/// checkers' offline mode), so parallelism comes from checking many traces
/// at once: the natural shape for a queue of recorded runs. Results
/// aggregate into one JSON report with per-trace rows and fleet totals.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_BATCHREPLAY_H
#define AVC_TRACE_BATCHREPLAY_H

#include <string>
#include <vector>

#include "checker/CheckerTool.h"
#include "checker/ToolOptions.h"
#include "support/JsonReport.h"

namespace avc {

/// Configuration of one batch run.
struct BatchOptions {
  ToolKind Tool = ToolKind::Atomicity;
  /// Shared tool configuration handed to the registry factory for every
  /// trace (query mode, pre-analysis, access cache, ...).
  ToolOptions Checker;
  /// Engine-specific construction knobs (e.g. AtomicityExtras), passed
  /// through to the registry factory. Not owned; must outlive the batch
  /// run.
  const ToolExtras *Extras = nullptr;
  /// Worker threads replaying traces (0 = hardware concurrency). Each
  /// trace is checked by exactly one worker; workers never share tool
  /// state.
  unsigned NumWorkers = 1;
};

/// Outcome of checking one trace.
struct BatchTraceResult {
  std::string Path;
  uint64_t NumEvents = 0;
  uint64_t NumViolations = 0;
  double WallMs = 0;   ///< end-to-end (load + decode + check)
  double DecodeMs = 0; ///< load + parse portion
  double CheckMs = 0;  ///< tool construction + replay portion
  std::string Error; ///< non-empty when the file failed to load or parse

  bool ok() const { return Error.empty(); }
};

/// Aggregated outcome of a batch run.
struct BatchResult {
  std::vector<BatchTraceResult> Traces;
  double WallMs = 0;        ///< end-to-end batch wall time
  uint64_t NumFailed = 0;   ///< traces that failed to load/parse
  uint64_t NumFlagged = 0;  ///< traces with at least one violation
  uint64_t TotalEvents = 0; ///< events across successfully checked traces
  uint64_t TotalViolations = 0;

  /// Process exit code: 2 if any trace failed to load, 1 if any violation
  /// was found, 0 otherwise.
  int exitCode() const {
    return NumFailed ? 2 : (TotalViolations ? 1 : 0);
  }
};

/// Loads, parses (text or binary), and checks one trace file with an
/// isolated tool instance, publishing per-trace counters and latency
/// histograms into the process metrics registry. This is the unit of work
/// runBatch fans out and the serve loop claims one file at a time.
BatchTraceResult checkTraceFile(const std::string &Path,
                                const BatchOptions &Opts);

/// Checks every trace in \p Paths under \p Opts. Order of Traces in the
/// result matches \p Paths regardless of worker scheduling.
BatchResult runBatch(const std::vector<std::string> &Paths,
                     const BatchOptions &Opts);

/// Fills \p Report with the batch meta block (tool, worker count, fleet
/// totals) and one row per trace.
void batchToJson(const BatchResult &Result, const BatchOptions &Opts,
                 JsonReport &Report);

} // namespace avc

#endif // AVC_TRACE_BATCHREPLAY_H
