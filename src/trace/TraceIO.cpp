//===- trace/TraceIO.cpp - Text serialization of traces -------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

using namespace avc;

const char *avc::traceEventKindName(TraceEventKind Kind) {
  switch (Kind) {
  case TraceEventKind::ProgramStart:
    return "start";
  case TraceEventKind::ProgramEnd:
    return "stop";
  case TraceEventKind::TaskSpawn:
    return "spawn";
  case TraceEventKind::TaskEnd:
    return "end";
  case TraceEventKind::Sync:
    return "sync";
  case TraceEventKind::GroupWait:
    return "wait";
  case TraceEventKind::LockAcquire:
    return "acq";
  case TraceEventKind::LockRelease:
    return "rel";
  case TraceEventKind::Read:
    return "rd";
  case TraceEventKind::Write:
    return "wr";
  }
  return "<invalid>";
}

std::string avc::traceToText(const Trace &Events) {
  std::string Out;
  char Line[128];
  for (const TraceEvent &Event : Events) {
    switch (Event.Kind) {
    case TraceEventKind::ProgramStart:
      std::snprintf(Line, sizeof(Line), "start %u\n", Event.Task);
      break;
    case TraceEventKind::ProgramEnd:
      std::snprintf(Line, sizeof(Line), "stop\n");
      break;
    case TraceEventKind::TaskSpawn:
      std::snprintf(Line, sizeof(Line), "spawn %u %" PRIu64 " %" PRIu64 "\n",
                    Event.Task, Event.Arg1, Event.Arg2);
      break;
    case TraceEventKind::TaskEnd:
      std::snprintf(Line, sizeof(Line), "end %u\n", Event.Task);
      break;
    case TraceEventKind::Sync:
      std::snprintf(Line, sizeof(Line), "sync %u\n", Event.Task);
      break;
    case TraceEventKind::GroupWait:
      std::snprintf(Line, sizeof(Line), "wait %u %" PRIu64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::LockAcquire:
      std::snprintf(Line, sizeof(Line), "acq %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::LockRelease:
      std::snprintf(Line, sizeof(Line), "rel %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::Read:
      std::snprintf(Line, sizeof(Line), "rd %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::Write:
      std::snprintf(Line, sizeof(Line), "wr %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    }
    Out += Line;
  }
  return Out;
}

std::optional<Trace> avc::traceFromText(const std::string &Text,
                                        size_t *ErrorLine) {
  Trace Events;
  std::istringstream Stream(Text);
  std::string Line;
  size_t LineNo = 0;

  auto Fail = [&]() -> std::optional<Trace> {
    if (ErrorLine)
      *ErrorLine = LineNo;
    return std::nullopt;
  };

  while (std::getline(Stream, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;

    char Mnemonic[16] = {0};
    unsigned Task = 0;
    uint64_t Arg1 = 0, Arg2 = 0;
    int Fields = std::sscanf(Line.c_str(), "%15s %u %" SCNi64 " %" SCNi64,
                             Mnemonic, &Task, &Arg1, &Arg2);
    TraceEvent Event;
    Event.Task = Task;
    Event.Arg1 = Arg1;
    Event.Arg2 = Arg2;
    if (std::strcmp(Mnemonic, "start") == 0 && Fields >= 2)
      Event.Kind = TraceEventKind::ProgramStart;
    else if (std::strcmp(Mnemonic, "stop") == 0 && Fields >= 1)
      Event.Kind = TraceEventKind::ProgramEnd;
    else if (std::strcmp(Mnemonic, "spawn") == 0 && Fields >= 3)
      Event.Kind = TraceEventKind::TaskSpawn;
    else if (std::strcmp(Mnemonic, "end") == 0 && Fields >= 2)
      Event.Kind = TraceEventKind::TaskEnd;
    else if (std::strcmp(Mnemonic, "sync") == 0 && Fields >= 2)
      Event.Kind = TraceEventKind::Sync;
    else if (std::strcmp(Mnemonic, "wait") == 0 && Fields >= 3)
      Event.Kind = TraceEventKind::GroupWait;
    else if (std::strcmp(Mnemonic, "acq") == 0 && Fields >= 3)
      Event.Kind = TraceEventKind::LockAcquire;
    else if (std::strcmp(Mnemonic, "rel") == 0 && Fields >= 3)
      Event.Kind = TraceEventKind::LockRelease;
    else if (std::strcmp(Mnemonic, "rd") == 0 && Fields >= 3)
      Event.Kind = TraceEventKind::Read;
    else if (std::strcmp(Mnemonic, "wr") == 0 && Fields >= 3)
      Event.Kind = TraceEventKind::Write;
    else
      return Fail();
    Events.push_back(Event);
  }
  return Events;
}
