//===- trace/TraceIO.cpp - Text serialization of traces -------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

using namespace avc;

const char *avc::traceEventKindName(TraceEventKind Kind) {
  switch (Kind) {
  case TraceEventKind::ProgramStart:
    return "start";
  case TraceEventKind::ProgramEnd:
    return "stop";
  case TraceEventKind::TaskSpawn:
    return "spawn";
  case TraceEventKind::TaskEnd:
    return "end";
  case TraceEventKind::Sync:
    return "sync";
  case TraceEventKind::GroupWait:
    return "wait";
  case TraceEventKind::LockAcquire:
    return "acq";
  case TraceEventKind::LockRelease:
    return "rel";
  case TraceEventKind::Read:
    return "rd";
  case TraceEventKind::Write:
    return "wr";
  }
  return "<invalid>";
}

std::string avc::traceToText(const Trace &Events) {
  std::string Out;
  char Line[128];
  for (const TraceEvent &Event : Events) {
    switch (Event.Kind) {
    case TraceEventKind::ProgramStart:
      std::snprintf(Line, sizeof(Line), "start %u\n", Event.Task);
      break;
    case TraceEventKind::ProgramEnd:
      std::snprintf(Line, sizeof(Line), "stop\n");
      break;
    case TraceEventKind::TaskSpawn:
      std::snprintf(Line, sizeof(Line), "spawn %u %" PRIu64 " %" PRIu64 "\n",
                    Event.Task, Event.Arg1, Event.Arg2);
      break;
    case TraceEventKind::TaskEnd:
      std::snprintf(Line, sizeof(Line), "end %u\n", Event.Task);
      break;
    case TraceEventKind::Sync:
      std::snprintf(Line, sizeof(Line), "sync %u\n", Event.Task);
      break;
    case TraceEventKind::GroupWait:
      std::snprintf(Line, sizeof(Line), "wait %u %" PRIu64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::LockAcquire:
      std::snprintf(Line, sizeof(Line), "acq %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::LockRelease:
      std::snprintf(Line, sizeof(Line), "rel %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::Read:
      std::snprintf(Line, sizeof(Line), "rd %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    case TraceEventKind::Write:
      std::snprintf(Line, sizeof(Line), "wr %u %#" PRIx64 "\n", Event.Task,
                    Event.Arg1);
      break;
    }
    Out += Line;
  }
  return Out;
}

namespace {

/// Splits \p Line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Begin = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Begin)
      Tokens.push_back(Line.substr(Begin, I - Begin));
  }
  return Tokens;
}

/// Parses \p Token as an unsigned integer (decimal, or hex with an 0x
/// prefix). Rejects empty/negative/non-numeric tokens, trailing junk, and
/// values that overflow uint64_t, with a specific message in \p Error.
/// Formats a parse-error message about \p Token into \p Error.
/// (snprintf, not string concatenation: GCC 12's -Wrestrict misfires on
/// literal-plus-string chains under -Werror.)
void complain(std::string &Error, const char *Format,
              std::string_view Token) {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), Format, int(std::min<size_t>(64, Token.size())),
                Token.data());
  Error = Buf;
}

/// Parses \p Token as an unsigned integer (decimal, or hex with an 0x
/// prefix). Rejects empty/negative/non-numeric tokens, trailing junk, and
/// values that overflow uint64_t, with a specific message in \p Error.
bool parseU64(std::string_view Token, uint64_t &Out, std::string &Error) {
  std::string Buf(Token); // strtoull needs NUL termination
  if (Buf.empty() || Buf[0] == '-' || Buf[0] == '+') {
    complain(Error, "expected an unsigned integer, got '%.*s'", Token);
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(Buf.c_str(), &End, 0);
  if (errno == ERANGE) {
    complain(Error, "integer '%.*s' overflows uint64_t", Token);
    return false;
  }
  if (End != Buf.c_str() + Buf.size() || End == Buf.c_str()) {
    complain(Error, "malformed integer '%.*s'", Token);
    return false;
  }
  Out = V;
  return true;
}

} // namespace

std::optional<Trace> avc::traceFromText(const std::string &Text,
                                        size_t *ErrorLine,
                                        std::string *Error) {
  Trace Events;
  size_t LineNo = 0;
  std::string Msg;

  auto Fail = [&]() -> std::optional<Trace> {
    if (ErrorLine)
      *ErrorLine = LineNo;
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };

  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    // A final line without a newline is still a full line to parse: its
    // errors must be reported like any other line's, not dropped.
    std::string_view Line(Text.data() + Pos,
                          (Eol == std::string::npos ? Text.size() : Eol) -
                              Pos);
    Pos = Eol == std::string::npos ? Text.size() : Eol + 1;
    ++LineNo;
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);

    std::vector<std::string_view> Tokens = tokenize(Line);
    if (Tokens.empty() || Tokens[0][0] == '#')
      continue;

    std::string_view Mnemonic = Tokens[0];
    TraceEvent Event;
    Event.Task = 0;
    Event.Arg1 = 0;
    Event.Arg2 = 0;
    bool HasTask = true;
    size_t NumArgs; // operand fields after the task id
    if (Mnemonic == "start") {
      Event.Kind = TraceEventKind::ProgramStart;
      NumArgs = 0;
    } else if (Mnemonic == "stop") {
      Event.Kind = TraceEventKind::ProgramEnd;
      HasTask = false;
      NumArgs = 0;
    } else if (Mnemonic == "spawn") {
      Event.Kind = TraceEventKind::TaskSpawn;
      NumArgs = 2; // child and group; a groupless spawn is malformed
    } else if (Mnemonic == "end") {
      Event.Kind = TraceEventKind::TaskEnd;
      NumArgs = 0;
    } else if (Mnemonic == "sync") {
      Event.Kind = TraceEventKind::Sync;
      NumArgs = 0;
    } else if (Mnemonic == "wait") {
      Event.Kind = TraceEventKind::GroupWait;
      NumArgs = 1;
    } else if (Mnemonic == "acq") {
      Event.Kind = TraceEventKind::LockAcquire;
      NumArgs = 1;
    } else if (Mnemonic == "rel") {
      Event.Kind = TraceEventKind::LockRelease;
      NumArgs = 1;
    } else if (Mnemonic == "rd") {
      Event.Kind = TraceEventKind::Read;
      NumArgs = 1;
    } else if (Mnemonic == "wr") {
      Event.Kind = TraceEventKind::Write;
      NumArgs = 1;
    } else {
      complain(Msg, "unknown mnemonic '%.*s'", Mnemonic);
      return Fail();
    }

    size_t Expected = 1 + (HasTask ? 1 : 0) + NumArgs;
    if (Tokens.size() != Expected) {
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "'%.*s' takes %zu field(s), got %zu",
                    int(Mnemonic.size()), Mnemonic.data(), Expected - 1,
                    Tokens.size() - 1);
      Msg = Buf;
      return Fail();
    }

    if (HasTask) {
      uint64_t Task;
      if (!parseU64(Tokens[1], Task, Msg))
        return Fail();
      if (Task > UINT32_MAX) {
        complain(Msg, "task id '%.*s' overflows uint32_t", Tokens[1]);
        return Fail();
      }
      Event.Task = TaskId(Task);
    }
    if (NumArgs >= 1 && !parseU64(Tokens[2], Event.Arg1, Msg))
      return Fail();
    if (NumArgs >= 2 && !parseU64(Tokens[3], Event.Arg2, Msg))
      return Fail();
    Events.push_back(Event);
  }
  return Events;
}
