//===- trace/TraceEvent.h - Execution trace event model --------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A linearized execution trace: the sequence of observer events one run
/// produced (or one the generator synthesized). Traces decouple the
/// checkers from live execution — the paper's trace generator "takes the
/// number of tasks and memory accesses as parameter and generates execution
/// traces" to validate that the checker finds all violations from a single
/// observed trace (Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACEEVENT_H
#define AVC_TRACE_TRACEEVENT_H

#include <cstdint>
#include <vector>

#include "runtime/ExecutionObserver.h"

namespace avc {

/// Kinds of trace events, mirroring ExecutionObserver callbacks.
enum class TraceEventKind : uint8_t {
  ProgramStart, ///< Arg1 unused; Task = root task id.
  ProgramEnd,   ///< No operands.
  TaskSpawn,    ///< Task = parent, Arg1 = child id, Arg2 = group id (0 =
                ///< implicit Cilk-style scope).
  TaskEnd,      ///< Task completed.
  Sync,         ///< Cilk-style sync by Task.
  GroupWait,    ///< Task waited on group Arg1.
  LockAcquire,  ///< Task acquired lock Arg1.
  LockRelease,  ///< Task released lock Arg1.
  Read,         ///< Task read address Arg1.
  Write,        ///< Task wrote address Arg1.
};

/// Returns a short mnemonic ("spawn", "read", ...).
const char *traceEventKindName(TraceEventKind Kind);

/// One trace event. Group tags are opaque non-zero integers in traces and
/// are mapped to distinct pointers on replay.
struct TraceEvent {
  TraceEventKind Kind;
  TaskId Task = 0;
  uint64_t Arg1 = 0;
  uint64_t Arg2 = 0;

  bool operator==(const TraceEvent &Other) const {
    return Kind == Other.Kind && Task == Other.Task && Arg1 == Other.Arg1 &&
           Arg2 == Other.Arg2;
  }
};

/// An execution trace.
using Trace = std::vector<TraceEvent>;

} // namespace avc

#endif // AVC_TRACE_TRACEEVENT_H
