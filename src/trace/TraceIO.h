//===- trace/TraceIO.h - Text serialization of traces ----------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text trace format, one event per line:
///
///   start <task>
///   spawn <task> <child> <group>
///   end <task>
///   sync <task>
///   wait <task> <group>
///   acq <task> <lock>
///   rel <task> <lock>
///   rd <task> <addr>
///   wr <task> <addr>
///   stop
///
/// Addresses and locks print in hex. Lines starting with '#' and blank
/// lines are ignored on parse. Used by the trace explorer example and for
/// persisting generator output.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACEIO_H
#define AVC_TRACE_TRACEIO_H

#include <optional>
#include <string>

#include "trace/TraceEvent.h"

namespace avc {

/// Serializes \p Events to the text format.
std::string traceToText(const Trace &Events);

/// Parses the text format. Returns std::nullopt and sets \p ErrorLine (when
/// non-null, 1-based) on malformed input.
std::optional<Trace> traceFromText(const std::string &Text,
                                   size_t *ErrorLine = nullptr);

} // namespace avc

#endif // AVC_TRACE_TRACEIO_H
