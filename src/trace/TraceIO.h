//===- trace/TraceIO.h - Text serialization of traces ----------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain-text trace format, one event per line:
///
///   start <task>
///   spawn <task> <child> <group>
///   end <task>
///   sync <task>
///   wait <task> <group>
///   acq <task> <lock>
///   rel <task> <lock>
///   rd <task> <addr>
///   wr <task> <addr>
///   stop
///
/// Addresses and locks print in hex. Lines starting with '#' and blank
/// lines are ignored on parse. Used by the trace explorer example and for
/// persisting generator output.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACEIO_H
#define AVC_TRACE_TRACEIO_H

#include <optional>
#include <string>

#include "trace/TraceEvent.h"

namespace avc {

/// Serializes \p Events to the text format.
std::string traceToText(const Trace &Events);

/// Parses the text format strictly: every line must carry exactly the
/// fields its mnemonic requires (a `spawn` without a group is an error, as
/// is trailing junk), integers must fit — task ids in uint32_t, operands in
/// uint64_t — and truncated final lines are rejected like any other
/// malformed line. Returns std::nullopt on malformed input, setting
/// \p ErrorLine (1-based) and \p Error (what was wrong) when non-null.
std::optional<Trace> traceFromText(const std::string &Text,
                                   size_t *ErrorLine = nullptr,
                                   std::string *Error = nullptr);

} // namespace avc

#endif // AVC_TRACE_TRACEIO_H
