//===- trace/ServeLoop.cpp - Long-running queue-draining checker ----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/ServeLoop.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/Metrics.h"
#include "obs/MetricsExport.h"
#include "support/JsonReport.h"
#include "support/Timing.h"

using namespace avc;

namespace {

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

bool ensureDir(const std::string &Path) {
  if (::mkdir(Path.c_str(), 0777) == 0 || errno == EEXIST)
    return true;
  std::fprintf(stderr, "serve: cannot create %s: %s\n", Path.c_str(),
               std::strerror(errno));
  return false;
}

/// A queue entry eligible for claiming: a regular file that is not the
/// stop sentinel, not hidden, and not an atomic-rewrite temp file still
/// being written next to a snapshot path inside the queue.
bool isClaimable(const std::string &QueueDir, const std::string &Name) {
  if (Name.empty() || Name[0] == '.' || Name == "stop")
    return false;
  if (Name.find(".tmp.") != std::string::npos)
    return false;
  struct stat St;
  if (::stat((QueueDir + "/" + Name).c_str(), &St) != 0)
    return false;
  return S_ISREG(St.st_mode);
}

/// Names of every claimable pending file in \p QueueDir.
std::vector<std::string> listPending(const std::string &QueueDir) {
  std::vector<std::string> Names;
  DIR *D = ::opendir(QueueDir.c_str());
  if (!D)
    return Names;
  while (struct dirent *E = ::readdir(D))
    if (isClaimable(QueueDir, E->d_name))
      Names.push_back(E->d_name);
  ::closedir(D);
  return Names;
}

uint64_t unixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Original queue name of a claimed inflight path:
/// "<dir>/inflight/<name>.<suffix>" -> "<name>".
std::string originalName(const std::string &InflightPath,
                         const std::string &Suffix) {
  std::string Base = InflightPath;
  size_t Slash = Base.find_last_of('/');
  if (Slash != std::string::npos)
    Base = Base.substr(Slash + 1);
  std::string Tail = "." + Suffix;
  if (Base.size() > Tail.size() &&
      Base.compare(Base.size() - Tail.size(), Tail.size(), Tail) == 0)
    Base.resize(Base.size() - Tail.size());
  return Base;
}

} // namespace

std::string avc::serveClaimOne(const std::string &QueueDir,
                               const std::string &InflightDir,
                               const std::string &Suffix,
                               uint64_t &ClaimRaces) {
  for (const std::string &Name : listPending(QueueDir)) {
    std::string From = QueueDir + "/" + Name;
    std::string To = InflightDir + "/" + Name + "." + Suffix;
    if (::rename(From.c_str(), To.c_str()) == 0)
      return To;
    if (errno == ENOENT) {
      // Another server renamed it between our readdir and our rename:
      // the defining race of the shared-queue protocol, and benign.
      ++ClaimRaces;
      continue;
    }
    std::fprintf(stderr, "serve: claim of %s failed: %s\n", From.c_str(),
                 std::strerror(errno));
  }
  return "";
}

uint64_t avc::serveQueueDepth(const std::string &QueueDir) {
  return listPending(QueueDir).size();
}

ServeStats avc::runServe(const ServeOptions &Opts) {
  ServeStats Stats;
  const std::string InflightDir = Opts.QueueDir + "/inflight";
  const std::string DoneDir = Opts.QueueDir + "/done";
  const std::string FailedDir = Opts.QueueDir + "/failed";
  const std::string StopPath = Opts.QueueDir + "/stop";
  if (!ensureDir(Opts.QueueDir) || !ensureDir(InflightDir) ||
      !ensureDir(DoneDir) || !ensureDir(FailedDir)) {
    Stats.Ok = false;
    Stats.Error = "cannot set up queue directory " + Opts.QueueDir;
    return Stats;
  }
  const std::string Suffix = std::to_string(static_cast<long>(::getpid()));
  const char *ToolName = toolKindName(Opts.Batch.Tool);

  metrics::MetricsRegistry &Registry = metrics::MetricsRegistry::instance();
  metrics::Gauge &QueueDepth = Registry.gauge(
      metrics::names::ServeQueueDepth, "Pending (unclaimed) queue files.");
  metrics::Gauge &Uptime = Registry.gauge(metrics::names::ServeUptimeSeconds,
                                          "Seconds since serve started.");
  metrics::Counter &Heartbeats =
      Registry.counter(metrics::names::ServeHeartbeatsTotal,
                       "Health/metrics snapshot rewrites.");
  metrics::Counter &ClaimRaces =
      Registry.counter(metrics::names::ServeClaimRacesTotal,
                       "Claims lost to a concurrent server on the queue.");
  // Eagerly register the headline trace metrics so the very first scrape
  // sees them at zero instead of absent.
  Registry.counter(metrics::names::TracesCheckedTotal,
                   "Trace files checked successfully.");
  Registry.counter(metrics::names::TracesFailedTotal,
                   "Trace files that failed to load/parse.");
  Registry.counter(metrics::names::TracesFlaggedTotal,
                   "Checked traces with at least one violation.");
  Registry.counter(metrics::names::ViolationsTotal,
                   "Violations reported across checked traces.");
  Registry.histogram(metrics::names::TraceDecodeSeconds,
                     "Per-trace load+parse latency.");
  Registry.histogram(metrics::names::TraceCheckSeconds,
                     "Per-trace tool construction+replay latency.");
  Registry.histogram(metrics::names::TraceTotalSeconds,
                     "Per-trace end-to-end checking latency.");
  Registry.counter(metrics::names::RuntimeTasksTotal, "Tasks executed.");
  Registry.counter(metrics::names::RuntimeStealsTotal,
                   "Successful deque steals.");
  Registry.counter(metrics::names::ObsRingDroppedTotal,
                   "Observability ring events lost to wraparound.");

  // The daemon is the one consumer that wants the timed runtime metrics
  // (task latency); one-shot benchmark runs leave this off.
  metrics::setTimingEnabled(true);

  metrics::NdjsonWriter *Results = nullptr;
  metrics::NdjsonWriter ResultsStorage(Opts.ResultsPath.empty() ? "/dev/null"
                                                       : Opts.ResultsPath);
  if (!Opts.ResultsPath.empty() && ResultsStorage.ok())
    Results = &ResultsStorage;

  Timer UptimeTimer;
  Timer SnapshotTimer;
  bool ForceSnapshot = true; // write one snapshot immediately at startup

  auto writeSnapshots = [&] {
    Heartbeats.inc();
    ++Stats.NumHeartbeats;
    QueueDepth.set(static_cast<double>(serveQueueDepth(Opts.QueueDir)));
    Uptime.set(UptimeTimer.elapsedSeconds());
    if (!Opts.MetricsPath.empty())
      metrics::writeFileAtomic(Opts.MetricsPath,
                               metrics::toPrometheusText(Registry.snapshot()));
    if (!Opts.HealthPath.empty()) {
      std::string Health = "{\"status\": \"ok\"";
      Health += ", \"pid\": " + std::to_string(static_cast<long>(::getpid()));
      Health += ", \"tool\": " + jsonQuote(ToolName);
      Health += ", \"uptime_seconds\": " +
                jsonNumber(UptimeTimer.elapsedSeconds());
      Health += ", \"ts_unix_ms\": " + std::to_string(unixMillis());
      Health += ", \"queue_depth\": " +
                std::to_string(serveQueueDepth(Opts.QueueDir));
      Health += ", \"heartbeats\": " + std::to_string(Stats.NumHeartbeats);
      Health += ", \"claimed\": " + std::to_string(Stats.NumClaimed);
      Health += ", \"checked\": " + std::to_string(Stats.NumChecked);
      Health += ", \"failed\": " + std::to_string(Stats.NumFailed);
      Health += ", \"flagged\": " + std::to_string(Stats.NumFlagged);
      Health += ", \"violations\": " + std::to_string(Stats.NumViolations);
      Health += ", \"claim_races\": " + std::to_string(Stats.NumClaimRaces);
      Health += "}\n";
      metrics::writeFileAtomic(Opts.HealthPath, Health);
    }
    SnapshotTimer.reset();
  };

  while (true) {
    bool StopRequested = fileExists(StopPath);

    // Claim up to MaxBatch pending files. Bounding the batch keeps claim
    // fairness between servers sharing the queue and bounds the latency
    // until the next stop-file/snapshot check.
    std::vector<std::string> Claimed;
    if (!StopRequested) {
      uint64_t Races = 0;
      while (Claimed.size() < Opts.MaxBatch) {
        std::string Path =
            serveClaimOne(Opts.QueueDir, InflightDir, Suffix, Races);
        if (Path.empty())
          break;
        Claimed.push_back(Path);
      }
      if (Races) {
        Stats.NumClaimRaces += Races;
        ClaimRaces.add(Races);
      }
    }

    if (!Claimed.empty()) {
      Stats.NumClaimed += Claimed.size();
      BatchResult Batch = runBatch(Claimed, Opts.Batch);
      for (const BatchTraceResult &R : Batch.Traces) {
        std::string Name = originalName(R.Path, Suffix);
        std::string RestingDir = R.ok() ? DoneDir : FailedDir;
        std::string RestingPath = RestingDir + "/" + Name;
        if (::rename(R.Path.c_str(), RestingPath.c_str()) != 0) {
          std::fprintf(stderr, "serve: cannot move %s to %s: %s\n",
                       R.Path.c_str(), RestingPath.c_str(),
                       std::strerror(errno));
          RestingPath = R.Path;
        }
        if (R.ok()) {
          ++Stats.NumChecked;
          Stats.NumViolations += R.NumViolations;
          if (R.NumViolations)
            ++Stats.NumFlagged;
        } else {
          ++Stats.NumFailed;
        }
        if (Results) {
          metrics::NdjsonWriter::Row Row;
          Row.field("trace", Name)
              .field("path", RestingPath)
              .field("tool", ToolName)
              .field("verdict", !R.ok()           ? "error"
                                : R.NumViolations ? "violations"
                                                  : "ok")
              .field("ts_unix_ms", unixMillis());
          if (R.ok())
            Row.field("events", double(R.NumEvents))
                .field("violations", double(R.NumViolations))
                .field("wall_ms", R.WallMs)
                .field("decode_ms", R.DecodeMs)
                .field("check_ms", R.CheckMs);
          else
            Row.field("error", R.Error);
          Results->append(Row);
        }
      }
    }

    if (ForceSnapshot ||
        SnapshotTimer.elapsedSeconds() * 1e3 >= double(Opts.SnapshotMs)) {
      writeSnapshots();
      ForceSnapshot = false;
    }

    if (StopRequested) {
      writeSnapshots(); // final state, after the last drain cycle
      break;
    }
    if (Claimed.empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(Opts.PollMs));
  }
  return Stats;
}
