//===- trace/BatchReplay.cpp - Parallel batch trace checking --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/BatchReplay.h"

#include <fstream>
#include <sstream>

#include "checker/AtomicityChecker.h"
#include "checker/BasicChecker.h"
#include "checker/DeterminismChecker.h"
#include "checker/RaceDetector.h"
#include "checker/Velodrome.h"
#include "runtime/TaskRuntime.h"
#include "support/Timing.h"
#include "trace/TraceCodec.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

/// Replays \p Events through a fresh instance of \p ToolT configured from
/// \p Opts (two-pass when pre-analysis is on) and returns the violation
/// count via \p Count — a callable hiding the per-tool accessor name.
template <typename ToolT, typename CountFn>
uint64_t checkWith(const Trace &Events, typename ToolT::Options ToolOpts,
                   CountFn Count) {
  ToolT Tool(ToolOpts);
  replayTraceTwoPass(Events, Tool);
  return Count(Tool);
}

/// Checks one already-parsed trace with an isolated tool instance.
uint64_t checkTrace(const Trace &Events, const BatchOptions &Opts) {
  switch (Opts.Tool) {
  case ToolKind::Atomicity: {
    AtomicityChecker::Options O;
    O.EnableAccessCache = Opts.CacheEnabled;
    O.AccessCacheSlots = Opts.CacheSlots;
    O.Query = Opts.Query;
    O.Preanalysis = Opts.Preanalysis;
    O.PreanalysisWarmup = Opts.PreanalysisWarmup;
    return checkWith<AtomicityChecker>(Events, O, [](AtomicityChecker &C) {
      return C.violations().size();
    });
  }
  case ToolKind::Basic: {
    BasicChecker::Options O;
    O.Query = Opts.Query;
    O.Preanalysis = Opts.Preanalysis;
    O.PreanalysisWarmup = Opts.PreanalysisWarmup;
    return checkWith<BasicChecker>(Events, O, [](BasicChecker &C) {
      return C.violations().size();
    });
  }
  case ToolKind::Velodrome: {
    VelodromeChecker::Options O;
    O.Preanalysis = Opts.Preanalysis;
    O.PreanalysisWarmup = Opts.PreanalysisWarmup;
    return checkWith<VelodromeChecker>(Events, O, [](VelodromeChecker &C) {
      return C.numViolations();
    });
  }
  case ToolKind::Race: {
    RaceDetector::Options O;
    O.Query = Opts.Query;
    O.Preanalysis = Opts.Preanalysis;
    O.PreanalysisWarmup = Opts.PreanalysisWarmup;
    return checkWith<RaceDetector>(Events, O, [](RaceDetector &D) {
      return D.numRaces();
    });
  }
  case ToolKind::Determinism: {
    DeterminismChecker::Options O;
    O.Query = Opts.Query;
    O.Preanalysis = Opts.Preanalysis;
    O.PreanalysisWarmup = Opts.PreanalysisWarmup;
    return checkWith<DeterminismChecker>(Events, O,
                                         [](DeterminismChecker &C) {
                                           return C.numViolations();
                                         });
  }
  case ToolKind::None:
    return 0;
  }
  return 0;
}

/// Loads, parses (text or binary), and checks one trace.
BatchTraceResult checkOne(const std::string &Path,
                          const BatchOptions &Opts) {
  BatchTraceResult Result;
  Result.Path = Path;
  Timer T;

  std::ifstream Input(Path, std::ios::binary);
  if (!Input) {
    Result.Error = "cannot open file";
    return Result;
  }
  std::stringstream Buffer;
  Buffer << Input.rdbuf();
  std::string Bytes = Buffer.str();

  std::string Error;
  std::optional<Trace> Events = parseTraceAuto(Bytes, &Error);
  if (!Events) {
    Result.Error = Error;
    return Result;
  }
  Result.NumEvents = Events->size();
  Result.NumViolations = checkTrace(*Events, Opts);
  Result.WallMs = T.elapsedSeconds() * 1e3;
  return Result;
}

} // namespace

BatchResult avc::runBatch(const std::vector<std::string> &Paths,
                          const BatchOptions &Opts) {
  BatchResult Result;
  Result.Traces.resize(Paths.size());
  Timer T;

  // One task per trace; each task writes only its own pre-sized slot, so
  // the fleet needs no synchronization beyond the runtime's quiescence.
  TaskRuntime::Options RtOpts;
  RtOpts.NumThreads = Opts.NumWorkers;
  TaskRuntime RT(RtOpts);
  RT.run([&] {
    for (size_t I = 0; I < Paths.size(); ++I)
      spawn([&, I] { Result.Traces[I] = checkOne(Paths[I], Opts); });
  });

  Result.WallMs = T.elapsedSeconds() * 1e3;
  for (const BatchTraceResult &Trace : Result.Traces) {
    if (!Trace.ok()) {
      ++Result.NumFailed;
      continue;
    }
    Result.TotalEvents += Trace.NumEvents;
    Result.TotalViolations += Trace.NumViolations;
    if (Trace.NumViolations)
      ++Result.NumFlagged;
  }
  return Result;
}

void avc::batchToJson(const BatchResult &Result, const BatchOptions &Opts,
                      JsonReport &Report) {
  Report.meta("experiment", "taskcheck_batch");
  Report.meta("tool", toolKindName(Opts.Tool));
  Report.meta("workers", double(Opts.NumWorkers));
  Report.meta("preanalysis", preanalysisModeName(Opts.Preanalysis));
  Report.meta("traces", double(Result.Traces.size()));
  Report.meta("failed", double(Result.NumFailed));
  Report.meta("flagged", double(Result.NumFlagged));
  Report.meta("total_events", double(Result.TotalEvents));
  Report.meta("total_violations", double(Result.TotalViolations));
  Report.meta("wall_ms", Result.WallMs);
  for (const BatchTraceResult &Trace : Result.Traces) {
    JsonReport::Row &Row = Report.row();
    Row.field("path", Trace.Path);
    if (!Trace.ok()) {
      Row.field("error", Trace.Error);
      continue;
    }
    Row.field("events", double(Trace.NumEvents))
        .field("violations", double(Trace.NumViolations))
        .field("wall_ms", Trace.WallMs);
  }
}
