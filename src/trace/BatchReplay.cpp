//===- trace/BatchReplay.cpp - Parallel batch trace checking --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/BatchReplay.h"

#include <fstream>
#include <memory>
#include <sstream>

#include "checker/ToolRegistry.h"
#include "obs/Metrics.h"
#include "runtime/TaskRuntime.h"
#include "support/Timing.h"
#include "trace/TraceCodec.h"
#include "trace/TraceReplayer.h"

using namespace avc;

namespace {

/// Per-trace headline metrics, resolved once per process. Counters are
/// always cheap; the latency histograms observe once per trace, so no
/// timing gate is needed (the clock reads here bound file I/O, not task
/// execution).
struct TraceMetrics {
  metrics::Counter &Checked;
  metrics::Counter &Failed;
  metrics::Counter &Flagged;
  metrics::Counter &Events;
  metrics::Counter &Violations;
  metrics::Histogram &DecodeSeconds;
  metrics::Histogram &CheckSeconds;
  metrics::Histogram &TotalSeconds;

  TraceMetrics()
      : Checked(registry().counter(metrics::names::TracesCheckedTotal,
                                   "Trace files checked successfully.")),
        Failed(registry().counter(metrics::names::TracesFailedTotal,
                                  "Trace files that failed to load/parse.")),
        Flagged(registry().counter(
            metrics::names::TracesFlaggedTotal,
            "Checked traces with at least one violation.")),
        Events(registry().counter(metrics::names::TraceEventsTotal,
                                  "Events replayed across checked traces.")),
        Violations(registry().counter(
            metrics::names::ViolationsTotal,
            "Violations reported across checked traces.")),
        DecodeSeconds(registry().histogram(
            metrics::names::TraceDecodeSeconds,
            "Per-trace load+parse latency.")),
        CheckSeconds(registry().histogram(
            metrics::names::TraceCheckSeconds,
            "Per-trace tool construction+replay latency.")),
        TotalSeconds(registry().histogram(
            metrics::names::TraceTotalSeconds,
            "Per-trace end-to-end checking latency.")) {}

  static metrics::MetricsRegistry &registry() {
    return metrics::MetricsRegistry::instance();
  }
  static TraceMetrics &get() {
    static TraceMetrics M;
    return M;
  }
};

/// Checks one already-parsed trace with an isolated tool instance built
/// through the registry. Unregistered kinds and kinds with no factory
/// (None) count zero violations.
uint64_t checkTrace(const Trace &Events, const BatchOptions &Opts) {
  const ToolRegistration *Reg = ToolRegistry::instance().find(Opts.Tool);
  if (!Reg || !Reg->Factory)
    return 0;
  std::unique_ptr<CheckerTool> Tool = Reg->Factory(Opts.Checker, Opts.Extras);
  replayTraceTwoPass(Events, *Tool);
  Tool->publishMetrics();
  return Tool->numViolations();
}

} // namespace

BatchTraceResult avc::checkTraceFile(const std::string &Path,
                                     const BatchOptions &Opts) {
  BatchTraceResult Result;
  Result.Path = Path;
  TraceMetrics &M = TraceMetrics::get();
  Timer T;

  std::ifstream Input(Path, std::ios::binary);
  if (!Input) {
    Result.Error = "cannot open file";
    M.Failed.inc();
    return Result;
  }
  std::stringstream Buffer;
  Buffer << Input.rdbuf();
  std::string Bytes = Buffer.str();

  std::string Error;
  std::optional<Trace> Events = parseTraceAuto(Bytes, &Error);
  if (!Events) {
    Result.Error = Error;
    M.Failed.inc();
    return Result;
  }
  Result.DecodeMs = T.elapsedSeconds() * 1e3;
  Result.NumEvents = Events->size();

  Timer CheckT;
  Result.NumViolations = checkTrace(*Events, Opts);
  Result.CheckMs = CheckT.elapsedSeconds() * 1e3;
  Result.WallMs = T.elapsedSeconds() * 1e3;

  M.Checked.inc();
  if (Result.NumViolations)
    M.Flagged.inc();
  M.Events.add(Result.NumEvents);
  M.Violations.add(Result.NumViolations);
  M.DecodeSeconds.observe(Result.DecodeMs * 1e-3);
  M.CheckSeconds.observe(Result.CheckMs * 1e-3);
  M.TotalSeconds.observe(Result.WallMs * 1e-3);
  return Result;
}

BatchResult avc::runBatch(const std::vector<std::string> &Paths,
                          const BatchOptions &Opts) {
  BatchResult Result;
  Result.Traces.resize(Paths.size());
  Timer T;

  // One task per trace; each task writes only its own pre-sized slot, so
  // the fleet needs no synchronization beyond the runtime's quiescence.
  TaskRuntime::Options RtOpts;
  RtOpts.NumThreads = Opts.NumWorkers;
  TaskRuntime RT(RtOpts);
  RT.run([&] {
    for (size_t I = 0; I < Paths.size(); ++I)
      spawn([&, I] { Result.Traces[I] = checkTraceFile(Paths[I], Opts); });
  });

  Result.WallMs = T.elapsedSeconds() * 1e3;
  for (const BatchTraceResult &Trace : Result.Traces) {
    if (!Trace.ok()) {
      ++Result.NumFailed;
      continue;
    }
    Result.TotalEvents += Trace.NumEvents;
    Result.TotalViolations += Trace.NumViolations;
    if (Trace.NumViolations)
      ++Result.NumFlagged;
  }
  return Result;
}

void avc::batchToJson(const BatchResult &Result, const BatchOptions &Opts,
                      JsonReport &Report) {
  Report.meta("experiment", "taskcheck_batch");
  Report.meta("tool", toolKindName(Opts.Tool));
  Report.meta("workers", double(Opts.NumWorkers));
  Report.meta("preanalysis", preanalysisModeName(Opts.Checker.Preanalysis));
  Report.meta("traces", double(Result.Traces.size()));
  Report.meta("failed", double(Result.NumFailed));
  Report.meta("flagged", double(Result.NumFlagged));
  Report.meta("total_events", double(Result.TotalEvents));
  Report.meta("total_violations", double(Result.TotalViolations));
  Report.meta("wall_ms", Result.WallMs);
  for (const BatchTraceResult &Trace : Result.Traces) {
    JsonReport::Row &Row = Report.row();
    Row.field("path", Trace.Path);
    if (!Trace.ok()) {
      Row.field("error", Trace.Error);
      continue;
    }
    Row.field("events", double(Trace.NumEvents))
        .field("violations", double(Trace.NumViolations))
        .field("wall_ms", Trace.WallMs)
        .field("decode_ms", Trace.DecodeMs)
        .field("check_ms", Trace.CheckMs);
  }
}
