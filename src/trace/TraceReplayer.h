//===- trace/TraceReplayer.h - Feed traces into observers ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a linearized trace into one or more ExecutionObservers — the
/// offline mode of the checkers. Replay is sequential; the observers see
/// the same event order every time, which makes trace-driven tests
/// deterministic regardless of scheduler behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACEREPLAYER_H
#define AVC_TRACE_TRACEREPLAYER_H

#include <vector>

#include "analysis/TraceClassifier.h"
#include "runtime/ExecutionObserver.h"
#include "trace/TraceEvent.h"

namespace avc {

/// Replays \p Events into \p Observers in order. Group ids are translated
/// to stable distinct pointers (id 0 becomes the implicit nullptr tag).
void replayTrace(const Trace &Events,
                 const std::vector<ExecutionObserver *> &Observers);

/// Convenience overload for a single observer.
void replayTrace(const Trace &Events, ExecutionObserver &Observer);

/// Two-pass replay: when \p Tool runs with --preanalysis=on, a first O(n)
/// classification sweep (TraceClassifier) computes exact per-site verdicts
/// and installs them before the checking replay. Profile mode deliberately
/// skips the sweep — it exists to exercise the live warmup path on a
/// deterministic event sequence — and Off degenerates to plain replay.
/// \p Tool is any checker tool exposing preanalysis() (all five do).
template <typename ToolT>
void replayTraceTwoPass(const Trace &Events, ToolT &Tool) {
  if (Tool.preanalysis().options().Mode == PreanalysisMode::On) {
    TraceClassifier Classifier;
    replayTrace(Events, Classifier);
    Tool.preanalysis().adoptExact(Classifier.classes());
  }
  replayTrace(Events, Tool);
}

} // namespace avc

#endif // AVC_TRACE_TRACEREPLAYER_H
