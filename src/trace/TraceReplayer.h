//===- trace/TraceReplayer.h - Feed traces into observers ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a linearized trace into one or more ExecutionObservers — the
/// offline mode of the checkers. Replay is sequential; the observers see
/// the same event order every time, which makes trace-driven tests
/// deterministic regardless of scheduler behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACEREPLAYER_H
#define AVC_TRACE_TRACEREPLAYER_H

#include <vector>

#include "runtime/ExecutionObserver.h"
#include "trace/TraceEvent.h"

namespace avc {

/// Replays \p Events into \p Observers in order. Group ids are translated
/// to stable distinct pointers (id 0 becomes the implicit nullptr tag).
void replayTrace(const Trace &Events,
                 const std::vector<ExecutionObserver *> &Observers);

/// Convenience overload for a single observer.
void replayTrace(const Trace &Events, ExecutionObserver &Observer);

} // namespace avc

#endif // AVC_TRACE_TRACEREPLAYER_H
