//===- trace/TraceCodec.cpp - Compact binary trace format ------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceCodec.h"

#include <cassert>
#include <cstring>
#include <unordered_map>

#include "runtime/TaskRuntime.h"
#include "trace/TraceIO.h"

using namespace avc;

namespace {

constexpr char FileMagic[8] = {'A', 'V', 'C', 'T', 'R', 'A', 'C', 'E'};
constexpr uint32_t FormatVersion = 1;
constexpr uint32_t TrailerMagic = 0x54435641; // "AVCT" little-endian
constexpr size_t HeaderBytes = 16;            // magic + version + flags
constexpr size_t BlockHeaderBytes = 8;        // payloadBytes + numEvents
constexpr size_t IndexEntryBytes = 16;        // offset + payloadBytes + events
constexpr size_t TrailerBytes = 24;           // indexOffset+events+blocks+magic

/// Decoder sanity bound on varint-decoded task ids: dense runtime ids never
/// get near it, and it keeps a corrupted varint from ballooning the
/// per-task state tables.
constexpr uint64_t MaxTaskId = 1u << 28;

//===----------------------------------------------------------------------===//
// Little-endian scalar IO and varints
//===----------------------------------------------------------------------===//

void putU32(std::string &Out, uint32_t V) {
  char Buf[4];
  for (int I = 0; I < 4; ++I)
    Buf[I] = char((V >> (8 * I)) & 0xff);
  Out.append(Buf, 4);
}

void putU64(std::string &Out, uint64_t V) {
  char Buf[8];
  for (int I = 0; I < 8; ++I)
    Buf[I] = char((V >> (8 * I)) & 0xff);
  Out.append(Buf, 8);
}

uint32_t getU32(const char *P) {
  uint32_t V = 0;
  for (int I = 0; I < 4; ++I)
    V |= uint32_t(uint8_t(P[I])) << (8 * I);
  return V;
}

uint64_t getU64(const char *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= uint64_t(uint8_t(P[I])) << (8 * I);
  return V;
}

void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(char(uint8_t(V) | 0x80));
    V >>= 7;
  }
  Out.push_back(char(uint8_t(V)));
}

uint64_t zigzag(int64_t V) {
  return (uint64_t(V) << 1) ^ uint64_t(V >> 63);
}

int64_t unzigzag(uint64_t V) {
  return int64_t(V >> 1) ^ -int64_t(V & 1);
}

/// Reads one LEB128 varint from [P, End). Returns false on truncation or a
/// varint that does not fit (or does not terminate within) 64 bits.
bool getVarint(const uint8_t *&P, const uint8_t *End, uint64_t &Out) {
  uint64_t V = 0;
  unsigned Shift = 0;
  while (P != End) {
    uint8_t Byte = *P++;
    if (Shift == 63 && (Byte & 0x7e))
      return false; // bits beyond 2^64: wild varint
    if (Shift >= 64)
      return false;
    V |= uint64_t(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80)) {
      Out = V;
      return true;
    }
    Shift += 7;
  }
  return false; // truncated inside a varint
}

//===----------------------------------------------------------------------===//
// Per-block delta state
//===----------------------------------------------------------------------===//

/// Tag-byte layout.
enum : uint8_t {
  TagKindMask = 0x0f,
  TagSameTask = 0x10,
  /// Read/Write: the address equals the task's previous address.
  /// Acquire/Release: the lock equals the task's previous lock.
  TagZeroDelta = 0x20,
  /// TaskSpawn: the child id is exactly previous-child + 1.
  TagChildIsNext = 0x20,
  /// TaskSpawn: the group is the implicit (0) group.
  TagGroupZero = 0x40,
};

struct PerTaskState {
  uint64_t LastAddr = 0;
  uint64_t LastLock = 0;
};

/// Delta context, reset at every block boundary. Task-indexed state lives
/// in a flat vector for the dense ids the runtime assigns, with a map
/// fallback so a hostile file cannot force a huge allocation.
struct BlockState {
  static constexpr size_t FlatTasks = 1u << 16;

  uint32_t PrevTask = 0;
  uint64_t LastSpawnChild = 0;
  std::vector<PerTaskState> Flat;
  std::unordered_map<uint32_t, PerTaskState> Sparse;

  PerTaskState &taskState(uint32_t Task) {
    if (Task < FlatTasks) {
      if (Task >= Flat.size())
        Flat.resize(size_t(Task) + 1);
      return Flat[Task];
    }
    return Sparse[Task];
  }

  void reset() {
    PrevTask = 0;
    LastSpawnChild = 0;
    Flat.clear();
    Sparse.clear();
  }
};

//===----------------------------------------------------------------------===//
// Event encode/decode
//===----------------------------------------------------------------------===//

void encodeEvent(std::string &Out, const TraceEvent &E, BlockState &S) {
  uint8_t Tag = uint8_t(E.Kind);
  assert((Tag & ~TagKindMask) == 0 && "kind must fit the tag nibble");
  bool SameTask = E.Task == S.PrevTask;
  if (SameTask)
    Tag |= TagSameTask;

  switch (E.Kind) {
  case TraceEventKind::Read:
  case TraceEventKind::Write:
  case TraceEventKind::LockAcquire:
  case TraceEventKind::LockRelease: {
    PerTaskState &T = S.taskState(E.Task);
    bool IsAccess = E.Kind == TraceEventKind::Read ||
                    E.Kind == TraceEventKind::Write;
    uint64_t &Last = IsAccess ? T.LastAddr : T.LastLock;
    int64_t Delta = int64_t(E.Arg1 - Last);
    if (Delta == 0)
      Tag |= TagZeroDelta;
    Out.push_back(char(Tag));
    if (!SameTask)
      putVarint(Out, zigzag(int64_t(E.Task) - int64_t(S.PrevTask)));
    if (Delta != 0)
      putVarint(Out, zigzag(Delta));
    Last = E.Arg1;
    break;
  }
  case TraceEventKind::TaskSpawn: {
    uint64_t ExpectedChild = S.LastSpawnChild + 1;
    if (E.Arg1 == ExpectedChild)
      Tag |= TagChildIsNext;
    if (E.Arg2 == 0)
      Tag |= TagGroupZero;
    Out.push_back(char(Tag));
    if (!SameTask)
      putVarint(Out, zigzag(int64_t(E.Task) - int64_t(S.PrevTask)));
    if (E.Arg1 != ExpectedChild)
      putVarint(Out, zigzag(int64_t(E.Arg1) - int64_t(ExpectedChild)));
    if (E.Arg2 != 0)
      putVarint(Out, E.Arg2);
    S.LastSpawnChild = E.Arg1;
    break;
  }
  case TraceEventKind::GroupWait:
    Out.push_back(char(Tag));
    if (!SameTask)
      putVarint(Out, zigzag(int64_t(E.Task) - int64_t(S.PrevTask)));
    putVarint(Out, E.Arg1);
    break;
  case TraceEventKind::ProgramStart:
  case TraceEventKind::ProgramEnd:
  case TraceEventKind::TaskEnd:
  case TraceEventKind::Sync:
    Out.push_back(char(Tag));
    if (!SameTask)
      putVarint(Out, zigzag(int64_t(E.Task) - int64_t(S.PrevTask)));
    break;
  }
  S.PrevTask = E.Task;
}

bool decodeEvent(const uint8_t *&P, const uint8_t *End, BlockState &S,
                 TraceEvent &E, std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (P == End)
    return Fail("truncated block: missing event tag");
  uint8_t Tag = *P++;
  uint8_t KindBits = Tag & TagKindMask;
  if (KindBits > uint8_t(TraceEventKind::Write))
    return Fail("corrupt event tag: unknown kind");
  E.Kind = TraceEventKind(KindBits);
  E.Arg1 = 0;
  E.Arg2 = 0;

  uint64_t Task = S.PrevTask;
  if (!(Tag & TagSameTask)) {
    uint64_t Raw;
    if (!getVarint(P, End, Raw))
      return Fail("truncated or wild varint in task delta");
    Task = uint64_t(int64_t(S.PrevTask) + unzigzag(Raw));
    if (Task >= MaxTaskId)
      return Fail("corrupt event: task id out of range");
  }
  E.Task = TaskId(Task);

  switch (E.Kind) {
  case TraceEventKind::Read:
  case TraceEventKind::Write:
  case TraceEventKind::LockAcquire:
  case TraceEventKind::LockRelease: {
    PerTaskState &T = S.taskState(E.Task);
    bool IsAccess = E.Kind == TraceEventKind::Read ||
                    E.Kind == TraceEventKind::Write;
    uint64_t &Last = IsAccess ? T.LastAddr : T.LastLock;
    if (!(Tag & TagZeroDelta)) {
      uint64_t Raw;
      if (!getVarint(P, End, Raw))
        return Fail("truncated or wild varint in operand delta");
      Last += uint64_t(unzigzag(Raw));
    }
    E.Arg1 = Last;
    break;
  }
  case TraceEventKind::TaskSpawn: {
    uint64_t Child = S.LastSpawnChild + 1;
    if (!(Tag & TagChildIsNext)) {
      uint64_t Raw;
      if (!getVarint(P, End, Raw))
        return Fail("truncated or wild varint in spawn child delta");
      Child = uint64_t(int64_t(Child) + unzigzag(Raw));
    }
    if (Child >= MaxTaskId)
      return Fail("corrupt spawn: child id out of range");
    E.Arg1 = Child;
    S.LastSpawnChild = Child;
    if (!(Tag & TagGroupZero)) {
      if (!getVarint(P, End, E.Arg2))
        return Fail("truncated or wild varint in spawn group");
    }
    break;
  }
  case TraceEventKind::GroupWait:
    if (!getVarint(P, End, E.Arg1))
      return Fail("truncated or wild varint in wait group");
    break;
  case TraceEventKind::ProgramStart:
  case TraceEventKind::ProgramEnd:
  case TraceEventKind::TaskEnd:
  case TraceEventKind::Sync:
    break;
  }
  S.PrevTask = E.Task;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

bool avc::isBinaryTrace(std::string_view Bytes) {
  return Bytes.size() >= sizeof(FileMagic) &&
         std::memcmp(Bytes.data(), FileMagic, sizeof(FileMagic)) == 0;
}

std::string avc::encodeTrace(const Trace &Events, uint32_t EventsPerBlock) {
  if (EventsPerBlock == 0)
    EventsPerBlock = 1;
  std::string Out;
  // Access events dominate and encode in 2-3 bytes.
  Out.reserve(HeaderBytes + Events.size() * 3 + TrailerBytes);
  Out.append(FileMagic, sizeof(FileMagic));
  putU32(Out, FormatVersion);
  putU32(Out, 0); // flags

  std::vector<TraceBlockInfo> Blocks;
  BlockState State;
  std::string Payload;
  for (size_t Begin = 0; Begin < Events.size(); Begin += EventsPerBlock) {
    size_t N = std::min<size_t>(EventsPerBlock, Events.size() - Begin);
    State.reset();
    Payload.clear();
    for (size_t I = 0; I < N; ++I)
      encodeEvent(Payload, Events[Begin + I], State);
    TraceBlockInfo Info;
    Info.Offset = Out.size();
    Info.PayloadBytes = uint32_t(Payload.size());
    Info.NumEvents = uint32_t(N);
    Info.FirstEvent = Begin;
    Blocks.push_back(Info);
    putU32(Out, Info.PayloadBytes);
    putU32(Out, Info.NumEvents);
    Out += Payload;
  }

  uint64_t IndexOffset = Out.size();
  for (const TraceBlockInfo &Info : Blocks) {
    putU64(Out, Info.Offset);
    putU32(Out, Info.PayloadBytes);
    putU32(Out, Info.NumEvents);
  }
  putU64(Out, IndexOffset);
  putU64(Out, Events.size());
  putU32(Out, uint32_t(Blocks.size()));
  putU32(Out, TrailerMagic);
  return Out;
}

std::optional<TraceFileInfo> avc::readTraceFileInfo(std::string_view Bytes,
                                                    std::string *Error) {
  auto Fail = [&](const char *Msg) -> std::optional<TraceFileInfo> {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };
  if (!isBinaryTrace(Bytes))
    return Fail("not a binary trace (bad magic)");
  if (Bytes.size() < HeaderBytes + TrailerBytes)
    return Fail("truncated file: missing trailer");
  TraceFileInfo Info;
  Info.Version = getU32(Bytes.data() + sizeof(FileMagic));
  if (Info.Version != FormatVersion)
    return Fail("unsupported format version");

  const char *Trailer = Bytes.data() + Bytes.size() - TrailerBytes;
  if (getU32(Trailer + 20) != TrailerMagic)
    return Fail("truncated or corrupt file: bad trailer magic");
  uint64_t IndexOffset = getU64(Trailer);
  Info.TotalEvents = getU64(Trailer + 8);
  uint64_t NumBlocks = getU32(Trailer + 16);

  uint64_t IndexEnd = Bytes.size() - TrailerBytes;
  if (IndexOffset < HeaderBytes || IndexOffset > IndexEnd ||
      (IndexEnd - IndexOffset) != NumBlocks * IndexEntryBytes)
    return Fail("corrupt trailer: index bounds do not match block count");

  Info.Blocks.reserve(NumBlocks);
  uint64_t ExpectedOffset = HeaderBytes;
  uint64_t EventTally = 0;
  for (uint64_t I = 0; I < NumBlocks; ++I) {
    const char *Entry = Bytes.data() + IndexOffset + I * IndexEntryBytes;
    TraceBlockInfo Block;
    Block.Offset = getU64(Entry);
    Block.PayloadBytes = getU32(Entry + 8);
    Block.NumEvents = getU32(Entry + 12);
    Block.FirstEvent = EventTally;
    if (Block.Offset != ExpectedOffset)
      return Fail("corrupt index: block offsets are not contiguous");
    if (Block.Offset + BlockHeaderBytes + Block.PayloadBytes > IndexOffset)
      return Fail("corrupt index: block extends past the index");
    const char *Header = Bytes.data() + Block.Offset;
    if (getU32(Header) != Block.PayloadBytes ||
        getU32(Header + 4) != Block.NumEvents)
      return Fail("corrupt block header: disagrees with the index");
    ExpectedOffset = Block.Offset + BlockHeaderBytes + Block.PayloadBytes;
    EventTally += Block.NumEvents;
    Info.Blocks.push_back(Block);
  }
  if (ExpectedOffset != IndexOffset)
    return Fail("corrupt file: gap between the last block and the index");
  if (EventTally != Info.TotalEvents)
    return Fail("corrupt trailer: event total disagrees with the blocks");
  return Info;
}

bool avc::decodeTraceBlock(std::string_view Bytes,
                           const TraceBlockInfo &Block, Trace &Out,
                           std::string *Error) {
  if (Block.Offset + BlockHeaderBytes + Block.PayloadBytes > Bytes.size()) {
    if (Error)
      *Error = "block out of file bounds";
    return false;
  }
  const uint8_t *P = reinterpret_cast<const uint8_t *>(Bytes.data()) +
                     Block.Offset + BlockHeaderBytes;
  const uint8_t *End = P + Block.PayloadBytes;
  BlockState State;
  for (uint32_t I = 0; I < Block.NumEvents; ++I) {
    TraceEvent E;
    if (!decodeEvent(P, End, State, E, Error))
      return false;
    Out.push_back(E);
  }
  if (P != End) {
    if (Error)
      *Error = "corrupt block: payload bytes left over after all events";
    return false;
  }
  return true;
}

std::optional<Trace> avc::decodeTrace(std::string_view Bytes,
                                      std::string *Error) {
  std::optional<TraceFileInfo> Info = readTraceFileInfo(Bytes, Error);
  if (!Info)
    return std::nullopt;
  Trace Out;
  Out.reserve(Info->TotalEvents);
  for (const TraceBlockInfo &Block : Info->Blocks)
    if (!decodeTraceBlock(Bytes, Block, Out, Error))
      return std::nullopt;
  return Out;
}

std::optional<Trace> avc::decodeTraceParallel(std::string_view Bytes,
                                              unsigned NumThreads,
                                              std::string *Error) {
  std::optional<TraceFileInfo> Info = readTraceFileInfo(Bytes, Error);
  if (!Info)
    return std::nullopt;

  // Decode every block into its final position: FirstEvent gives each
  // worker a disjoint destination span, so no post-merge pass is needed.
  Trace Out(Info->TotalEvents);
  std::vector<std::string> BlockErrors(Info->Blocks.size());
  std::vector<uint8_t> BlockOk(Info->Blocks.size(), 0);
  TaskRuntime::Options RtOpts;
  RtOpts.NumThreads = NumThreads;
  TaskRuntime RT(RtOpts);
  RT.run([&] {
    for (size_t I = 0; I < Info->Blocks.size(); ++I) {
      spawn([&, I] {
        const TraceBlockInfo &Block = Info->Blocks[I];
        Trace Decoded;
        Decoded.reserve(Block.NumEvents);
        if (decodeTraceBlock(Bytes, Block, Decoded, &BlockErrors[I])) {
          std::copy(Decoded.begin(), Decoded.end(),
                    Out.begin() + Block.FirstEvent);
          BlockOk[I] = 1;
        }
      });
    }
  });
  for (size_t I = 0; I < Info->Blocks.size(); ++I) {
    if (!BlockOk[I]) {
      if (Error)
        *Error = BlockErrors[I];
      return std::nullopt;
    }
  }
  return Out;
}

std::optional<Trace> avc::parseTraceAuto(const std::string &Bytes,
                                         std::string *Error) {
  if (isBinaryTrace(Bytes))
    return decodeTrace(Bytes, Error);
  size_t ErrorLine = 0;
  std::string ParseError;
  std::optional<Trace> Events = traceFromText(Bytes, &ErrorLine, &ParseError);
  if (!Events && Error) {
    *Error = "line " + std::to_string(ErrorLine) + ": " +
             (ParseError.empty() ? "malformed trace line" : ParseError);
  }
  return Events;
}
