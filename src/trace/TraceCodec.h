//===- trace/TraceCodec.h - Compact binary trace format --------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compact binary trace format (".avctrace"): the fleet-scale storage
/// form of a Trace, next to which the text format of trace/TraceIO.h is the
/// human-readable debug view. Layout:
///
///   file    := header block* index trailer
///   header  := magic "AVCTRACE" (8B), u32 version, u32 flags (0)
///   block   := u32 payloadBytes, u32 numEvents, payload
///   index   := per block { u64 offset, u32 payloadBytes, u32 numEvents }
///   trailer := u64 indexOffset, u64 totalEvents, u32 numBlocks,
///              u32 trailerMagic
///
/// All fixed-width integers are little-endian. Events are varint-encoded
/// with per-task delta state (previous address per task, previous lock per
/// task, previous child id for spawns, previous event task id) that resets
/// at every block boundary, so each block is independently decodable: a
/// reader can mmap the file, read the index from the trailer, and decode
/// blocks in parallel or shard replay work without touching the rest of
/// the file. A typical access event costs 2-3 bytes against ~14 bytes of
/// text.
///
/// Per-event payload encoding: one tag byte — bits 0..3 the
/// TraceEventKind, bit 4 "same task as previous event", bits 5..6
/// kind-specific shortcuts (zero address/lock delta, sequential spawn
/// child, implicit group) — followed by the varints the tag did not elide.
/// Deltas are zigzag-encoded LEB128.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACECODEC_H
#define AVC_TRACE_TRACECODEC_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/TraceEvent.h"

namespace avc {

/// Events per encoded block (the unit of independent decode). 64k events
/// keeps blocks around 100-200 KB while leaving thousands of shards in a
/// fleet-sized trace.
inline constexpr uint32_t DefaultTraceBlockEvents = 1u << 16;

/// One entry of the block index.
struct TraceBlockInfo {
  uint64_t Offset;       ///< file offset of the block header
  uint32_t PayloadBytes; ///< encoded payload size (excluding the header)
  uint32_t NumEvents;    ///< events in this block
  uint64_t FirstEvent;   ///< index of the block's first event in the trace
};

/// Parsed header + index of a binary trace.
struct TraceFileInfo {
  uint32_t Version = 0;
  uint64_t TotalEvents = 0;
  std::vector<TraceBlockInfo> Blocks;
};

/// Returns true when \p Bytes starts with the binary-trace magic.
bool isBinaryTrace(std::string_view Bytes);

/// Encodes \p Events into the binary format. \p EventsPerBlock bounds the
/// block granularity (clamped to >= 1).
std::string encodeTrace(const Trace &Events,
                        uint32_t EventsPerBlock = DefaultTraceBlockEvents);

/// Validates the header/trailer/index of \p Bytes without decoding any
/// payload. Returns std::nullopt and sets \p Error on a malformed file.
std::optional<TraceFileInfo> readTraceFileInfo(std::string_view Bytes,
                                               std::string *Error = nullptr);

/// Decodes one block (obtained from readTraceFileInfo) and appends its
/// events to \p Out. Blocks are self-contained, so any subset can be
/// decoded in any order or concurrently from the same immutable buffer.
bool decodeTraceBlock(std::string_view Bytes, const TraceBlockInfo &Block,
                      Trace &Out, std::string *Error = nullptr);

/// Decodes a whole binary trace. Returns std::nullopt and sets \p Error on
/// any structural or payload corruption (bad magic, truncated block, wild
/// varint, event-count mismatch, ...).
std::optional<Trace> decodeTrace(std::string_view Bytes,
                                 std::string *Error = nullptr);

/// Decodes a binary trace with its blocks fanned out over \p NumThreads
/// workers (0 = hardware concurrency). Identical output to decodeTrace.
std::optional<Trace> decodeTraceParallel(std::string_view Bytes,
                                         unsigned NumThreads,
                                         std::string *Error = nullptr);

/// Parses \p Bytes as a binary trace when the magic matches and as the
/// text format otherwise — the one entry point file-loading front ends
/// need. On failure returns std::nullopt and sets \p Error to a
/// human-readable message (including the 1-based line for text input).
std::optional<Trace> parseTraceAuto(const std::string &Bytes,
                                    std::string *Error = nullptr);

} // namespace avc

#endif // AVC_TRACE_TRACECODEC_H
