//===- trace/TraceGenerator.cpp - Random task-parallel programs -----------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceGenerator.h"

#include <cassert>
#include <cstddef>

#include "support/Compiler.h"
#include "support/Random.h"

using namespace avc;

//===----------------------------------------------------------------------===//
// Program generation
//===----------------------------------------------------------------------===//

namespace {

/// Emits one access to a random location.
void emitAccess(std::vector<GenOp> &Ops, SplitMix64 &Rng,
                const TraceGenOptions &Opts) {
  GenOp Op;
  Op.K = Rng.nextDouble() < Opts.WriteFraction ? GenOp::Kind::Write
                                               : GenOp::Kind::Read;
  Op.Index = static_cast<uint32_t>(Rng.nextBelow(Opts.NumLocations));
  Ops.push_back(Op);
}

} // namespace

GenProgram avc::generateProgram(const TraceGenOptions &Opts) {
  assert(Opts.NumTasks >= 1 && "program needs a root task");
  assert(Opts.NumLocations >= 1 && "program needs a location");
  assert(Opts.MinOpsPerTask <= Opts.MaxOpsPerTask && "bad op range");

  SplitMix64 Rng(Opts.Seed);
  GenProgram Program;
  Program.NumLocations = Opts.NumLocations;
  Program.NumLocks = Opts.NumLocks;
  Program.Tasks.resize(Opts.NumTasks);

  // Per-task body: a sequence of units (bare access or critical section),
  // optionally followed by syncs. Critical sections are well nested by
  // construction (generated as a block) and never span a spawn.
  for (GenTask &Task : Program.Tasks) {
    uint32_t NumUnits = static_cast<uint32_t>(
        Rng.nextInRange(Opts.MinOpsPerTask, Opts.MaxOpsPerTask));
    for (uint32_t U = 0; U < NumUnits; ++U) {
      bool Locked =
          Opts.NumLocks > 0 && Rng.nextDouble() < Opts.LockedFraction;
      if (Locked) {
        uint32_t Lock = static_cast<uint32_t>(Rng.nextBelow(Opts.NumLocks));
        Task.Ops.push_back({GenOp::Kind::Acquire, Lock});
        uint64_t Inner = Rng.nextInRange(1, 3);
        for (uint64_t I = 0; I < Inner; ++I)
          emitAccess(Task.Ops, Rng, Opts);
        Task.Ops.push_back({GenOp::Kind::Release, Lock});
      } else {
        emitAccess(Task.Ops, Rng, Opts);
      }
      if (Rng.nextDouble() < Opts.SyncFraction)
        Task.Ops.push_back({GenOp::Kind::Sync, 0});
    }
  }

  // Spawn edges: task I is spawned by a random earlier task, with the spawn
  // inserted at a random top-level position (outside critical sections).
  for (uint32_t I = 1; I < Opts.NumTasks; ++I) {
    uint32_t Parent = static_cast<uint32_t>(Rng.nextBelow(I));
    std::vector<GenOp> &Ops = Program.Tasks[Parent].Ops;

    std::vector<size_t> TopLevel; // insertion points at lock depth 0
    TopLevel.push_back(0);
    int Depth = 0;
    for (size_t P = 0; P < Ops.size(); ++P) {
      if (Ops[P].K == GenOp::Kind::Acquire)
        ++Depth;
      else if (Ops[P].K == GenOp::Kind::Release)
        --Depth;
      if (Depth == 0)
        TopLevel.push_back(P + 1);
    }
    size_t At = TopLevel[Rng.nextBelow(TopLevel.size())];
    Ops.insert(Ops.begin() + static_cast<ptrdiff_t>(At),
               GenOp{GenOp::Kind::Spawn, I});
  }

  return Program;
}

//===----------------------------------------------------------------------===//
// Serial (depth-first) linearization
//===----------------------------------------------------------------------===//

namespace {

struct SerialLinearizer {
  const GenProgram &Program;
  Trace Events;
  TaskId NextId = 0;

  explicit SerialLinearizer(const GenProgram &Program) : Program(Program) {}

  void runTask(uint32_t GenIndex, TaskId Tid) {
    bool EverSpawned = false;
    for (const GenOp &Op : Program.Tasks[GenIndex].Ops) {
      switch (Op.K) {
      case GenOp::Kind::Read:
        Events.push_back({TraceEventKind::Read, Tid,
                          GenProgram::addressOf(Op.Index), 0});
        break;
      case GenOp::Kind::Write:
        Events.push_back({TraceEventKind::Write, Tid,
                          GenProgram::addressOf(Op.Index), 0});
        break;
      case GenOp::Kind::Acquire:
        Events.push_back({TraceEventKind::LockAcquire, Tid,
                          GenProgram::lockIdOf(Op.Index), 0});
        break;
      case GenOp::Kind::Release:
        Events.push_back({TraceEventKind::LockRelease, Tid,
                          GenProgram::lockIdOf(Op.Index), 0});
        break;
      case GenOp::Kind::Sync:
        Events.push_back({TraceEventKind::Sync, Tid, 0, 0});
        break;
      case GenOp::Kind::Spawn: {
        TaskId Child = ++NextId;
        EverSpawned = true;
        Events.push_back({TraceEventKind::TaskSpawn, Tid, Child, 0});
        runTask(Op.Index, Child); // depth-first: child runs immediately
        break;
      }
      }
    }
    // Mirror the live runtime: a task that ever spawned performs an
    // implicit end-of-task sync, which surfaces as a Sync event.
    if (EverSpawned)
      Events.push_back({TraceEventKind::Sync, Tid, 0, 0});
    Events.push_back({TraceEventKind::TaskEnd, Tid, 0, 0});
  }
};

} // namespace

Trace avc::linearizeSerial(const GenProgram &Program) {
  SerialLinearizer Linearizer(Program);
  Linearizer.Events.push_back({TraceEventKind::ProgramStart, 0, 0, 0});
  Linearizer.runTask(0, 0);
  Linearizer.Events.push_back({TraceEventKind::ProgramEnd, 0, 0, 0});
  return std::move(Linearizer.Events);
}

//===----------------------------------------------------------------------===//
// Randomized-scheduler linearization
//===----------------------------------------------------------------------===//

namespace {

struct SimTask {
  uint32_t GenIndex = 0;
  TaskId Tid = 0;
  size_t Pc = 0;
  size_t Parent = SIZE_MAX;
  uint32_t LiveChildren = 0; ///< spawned descendants not yet ended
  bool EverSpawned = false;
  bool WaitingSync = false; ///< blocked in an explicit sync op
  bool BodyDone = false;    ///< all ops executed; waiting implicit sync
  bool Ended = false;
};

struct RandomLinearizer {
  const GenProgram &Program;
  SplitMix64 Rng;
  Trace Events;
  std::vector<SimTask> Sim;
  std::vector<size_t> LockOwner; ///< SIZE_MAX = free
  TaskId NextId = 0;
  size_t NumEnded = 0;

  RandomLinearizer(const GenProgram &Program, uint64_t Seed)
      : Program(Program), Rng(Seed),
        LockOwner(Program.NumLocks, SIZE_MAX) {}

  /// A task is eligible if it can make progress right now.
  bool eligible(const SimTask &Task) const {
    if (Task.Ended)
      return false;
    if (Task.WaitingSync || Task.BodyDone)
      return Task.LiveChildren == 0;
    const GenOp &Op = Program.Tasks[Task.GenIndex].Ops[Task.Pc];
    if (Op.K == GenOp::Kind::Acquire)
      return LockOwner[Op.Index] == SIZE_MAX;
    return true;
  }

  void finishTask(size_t Index) {
    SimTask &Task = Sim[Index];
    if (Task.EverSpawned)
      Events.push_back({TraceEventKind::Sync, Task.Tid, 0, 0});
    Events.push_back({TraceEventKind::TaskEnd, Task.Tid, 0, 0});
    Task.Ended = true;
    ++NumEnded;
    if (Task.Parent != SIZE_MAX) {
      assert(Sim[Task.Parent].LiveChildren > 0 && "child count underflow");
      --Sim[Task.Parent].LiveChildren;
    }
  }

  void step(size_t Index) {
    SimTask &Task = Sim[Index];
    if (Task.BodyDone) {
      assert(Task.LiveChildren == 0 && "stepping a blocked task");
      finishTask(Index);
      return;
    }
    if (Task.WaitingSync) {
      assert(Task.LiveChildren == 0 && "stepping a blocked task");
      // The sync completes now; the runtime emits the event on unblock.
      Events.push_back({TraceEventKind::Sync, Task.Tid, 0, 0});
      Task.WaitingSync = false;
      ++Task.Pc;
      checkBodyEnd(Index);
      return;
    }

    const GenOp &Op = Program.Tasks[Task.GenIndex].Ops[Task.Pc];
    switch (Op.K) {
    case GenOp::Kind::Read:
      Events.push_back({TraceEventKind::Read, Task.Tid,
                        GenProgram::addressOf(Op.Index), 0});
      break;
    case GenOp::Kind::Write:
      Events.push_back({TraceEventKind::Write, Task.Tid,
                        GenProgram::addressOf(Op.Index), 0});
      break;
    case GenOp::Kind::Acquire:
      assert(LockOwner[Op.Index] == SIZE_MAX && "acquire of an owned lock");
      LockOwner[Op.Index] = Index;
      Events.push_back({TraceEventKind::LockAcquire, Task.Tid,
                        GenProgram::lockIdOf(Op.Index), 0});
      break;
    case GenOp::Kind::Release:
      assert(LockOwner[Op.Index] == Index && "release by a non-owner");
      LockOwner[Op.Index] = SIZE_MAX;
      Events.push_back({TraceEventKind::LockRelease, Task.Tid,
                        GenProgram::lockIdOf(Op.Index), 0});
      break;
    case GenOp::Kind::Sync:
      if (Task.LiveChildren != 0) {
        Task.WaitingSync = true;
        return; // pc advances when the sync completes
      }
      Events.push_back({TraceEventKind::Sync, Task.Tid, 0, 0});
      break;
    case GenOp::Kind::Spawn: {
      TaskId ChildTid = ++NextId;
      Task.EverSpawned = true;
      ++Task.LiveChildren;
      Events.push_back({TraceEventKind::TaskSpawn, Task.Tid, ChildTid, 0});
      SimTask Child;
      Child.GenIndex = Op.Index;
      Child.Tid = ChildTid;
      Child.Parent = Index;
      Sim.push_back(Child); // note: may invalidate Task; done last
      checkBodyEndAfterSpawn(Index);
      return;
    }
    }
    ++Task.Pc;
    checkBodyEnd(Index);
  }

  void checkBodyEndAfterSpawn(size_t Index) {
    // Re-acquire the reference after the push_back above.
    SimTask &Task = Sim[Index];
    ++Task.Pc;
    if (Task.Pc >= Program.Tasks[Task.GenIndex].Ops.size())
      Task.BodyDone = true;
  }

  void checkBodyEnd(size_t Index) {
    SimTask &Task = Sim[Index];
    if (Task.Pc >= Program.Tasks[Task.GenIndex].Ops.size())
      Task.BodyDone = true;
  }

  Trace run() {
    Events.push_back({TraceEventKind::ProgramStart, 0, 0, 0});
    SimTask Root;
    Root.GenIndex = 0;
    Root.Tid = 0;
    Sim.push_back(Root);
    checkBodyEnd(0);

    std::vector<size_t> Eligible;
    while (NumEnded < Sim.size()) {
      Eligible.clear();
      for (size_t I = 0; I < Sim.size(); ++I)
        if (eligible(Sim[I]))
          Eligible.push_back(I);
      assert(!Eligible.empty() &&
             "scheduler deadlock in generated program (generator bug)");
      step(Eligible[Rng.nextBelow(Eligible.size())]);
    }
    Events.push_back({TraceEventKind::ProgramEnd, 0, 0, 0});
    return std::move(Events);
  }
};

} // namespace

Trace avc::linearizeRandom(const GenProgram &Program, uint64_t Seed) {
  RandomLinearizer Linearizer(Program, Seed);
  return Linearizer.run();
}
