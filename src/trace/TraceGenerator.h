//===- trace/TraceGenerator.h - Random task-parallel programs --*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's trace generator (Section 4): synthesizes random task
/// parallel programs — a spawn tree with per-task sequences of tracked
/// accesses, well-nested critical sections, and sync points — parameterized
/// by the number of tasks and memory accesses. A generated program can be
/// linearized into a trace either serially (depth-first, the schedule a
/// single worker produces) or under a randomized scheduler. Because the
/// checker judges parallelism structurally, its verdicts must not depend on
/// which linearization it observes; the property tests exploit exactly
/// that.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACEGENERATOR_H
#define AVC_TRACE_TRACEGENERATOR_H

#include <cstdint>
#include <vector>

#include "trace/TraceEvent.h"

namespace avc {

/// One operation of a generated task.
struct GenOp {
  enum class Kind : uint8_t { Read, Write, Acquire, Release, Spawn, Sync };
  Kind K;
  /// Location index (Read/Write), lock index (Acquire/Release), or child
  /// task index (Spawn).
  uint32_t Index = 0;
};

/// One generated task: a straight-line sequence of operations.
struct GenTask {
  std::vector<GenOp> Ops;
};

/// A generated task-parallel program. Tasks[0] is the root; every other
/// task is spawned by exactly one Spawn op.
struct GenProgram {
  std::vector<GenTask> Tasks;
  uint32_t NumLocations = 0;
  uint32_t NumLocks = 0;

  /// Synthetic tracked address of location \p Location.
  static MemAddr addressOf(uint32_t Location) {
    return 0x100000ULL + uint64_t(Location) * 8;
  }

  /// Lock id of lock index \p Lock (ids are 1-based in traces).
  static LockId lockIdOf(uint32_t Lock) { return LockId(Lock) + 1; }
};

/// Knobs of the generator.
struct TraceGenOptions {
  uint64_t Seed = 1;
  /// Total tasks including the root.
  uint32_t NumTasks = 8;
  uint32_t NumLocations = 4;
  uint32_t NumLocks = 2;
  /// Accesses (plus lock blocks/syncs) per task, uniform in this range.
  uint32_t MinOpsPerTask = 4;
  uint32_t MaxOpsPerTask = 12;
  /// Probability that an access is a write.
  double WriteFraction = 0.5;
  /// Probability that a generated unit is a critical section (1-3 accesses
  /// under a lock) instead of a bare access.
  double LockedFraction = 0.3;
  /// Probability of a sync after each top-level unit.
  double SyncFraction = 0.1;
};

/// Generates a random program. Deterministic in Opts.Seed.
GenProgram generateProgram(const TraceGenOptions &Opts);

/// Linearizes \p Program depth-first: each child runs to completion at its
/// spawn point (the schedule of a single-worker execution).
Trace linearizeSerial(const GenProgram &Program);

/// Linearizes \p Program under a randomized scheduler: at every step a
/// random eligible task executes one operation; Acquire blocks while
/// another task owns the lock, sync blocks until the children complete.
/// Deterministic in \p Seed.
Trace linearizeRandom(const GenProgram &Program, uint64_t Seed);

} // namespace avc

#endif // AVC_TRACE_TRACEGENERATOR_H
