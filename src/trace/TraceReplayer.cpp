//===- trace/TraceReplayer.cpp - Feed traces into observers ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "trace/TraceReplayer.h"

#include "support/Compiler.h"

using namespace avc;

void avc::replayTrace(const Trace &Events,
                      const std::vector<ExecutionObserver *> &Observers) {
  // Group ids are small dense integers; turn each into a distinct pointer
  // by indexing into a static-lifetime-free dummy block: the values only
  // need to be distinct and stable during this replay.
  auto TagFor = [](uint64_t GroupId) -> const void * {
    return GroupId == 0 ? nullptr
                        : reinterpret_cast<const void *>(GroupId);
  };

  for (const TraceEvent &Event : Events) {
    for (ExecutionObserver *Obs : Observers) {
      switch (Event.Kind) {
      case TraceEventKind::ProgramStart:
        Obs->onProgramStart(Event.Task);
        break;
      case TraceEventKind::ProgramEnd:
        Obs->onProgramEnd();
        break;
      case TraceEventKind::TaskSpawn:
        Obs->onTaskSpawn(Event.Task, TagFor(Event.Arg2),
                         static_cast<TaskId>(Event.Arg1));
        break;
      case TraceEventKind::TaskEnd:
        Obs->onTaskEnd(Event.Task);
        break;
      case TraceEventKind::Sync:
        Obs->onSync(Event.Task);
        break;
      case TraceEventKind::GroupWait:
        Obs->onGroupWait(Event.Task, TagFor(Event.Arg1));
        break;
      case TraceEventKind::LockAcquire:
        Obs->onLockAcquire(Event.Task, Event.Arg1);
        break;
      case TraceEventKind::LockRelease:
        Obs->onLockRelease(Event.Task, Event.Arg1);
        break;
      case TraceEventKind::Read:
        Obs->onRead(Event.Task, Event.Arg1);
        break;
      case TraceEventKind::Write:
        Obs->onWrite(Event.Task, Event.Arg1);
        break;
      }
    }
  }
}

void avc::replayTrace(const Trace &Events, ExecutionObserver &Observer) {
  replayTrace(Events, std::vector<ExecutionObserver *>{&Observer});
}
