//===- trace/TraceRecorder.h - Observer that records traces ----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExecutionObserver that records the event stream of a run without a
/// global lock. Each worker thread appends to its own chunked buffer with
/// plain stores and a release-published event count (the src/obs ring
/// discipline); buffers are carved into *runs* keyed by a global sequence
/// counter that is bumped only at synchronization-class events. At program
/// end the runs are merged by key into one trace that is a valid
/// linearization of the execution (see DESIGN.md §12 for the argument):
///
///  - A sync-class event (start, spawn, end, sync, wait, acq, rel) starts a
///    new run keyed with the counter's pre-increment value, so any event
///    that happens-after it observes a strictly greater counter.
///  - A task starting to execute on a worker starts a new run keyed with a
///    sampled (not incremented) counter value; the sample is ordered after
///    the spawn's increment by the runtime's own publish/steal
///    synchronization, so a child's events always merge after its spawn.
///  - Keys are non-decreasing within a buffer, and ties across buffers
///    carry no happens-before edge, so sorting runs by (key, buffer, run)
///    and concatenating yields a linearization that preserves every task's
///    program order, spawn-before-child, end-before-wait-return, and lock
///    exclusion.
///
/// Single-worker runs never contend on anything: the merge is a single
/// buffer walk and stats().NumContendedMerges == 0 proves it.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACERECORDER_H
#define AVC_TRACE_TRACERECORDER_H

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/ExecutionObserver.h"
#include "support/SpinLock.h"
#include "trace/TraceEvent.h"

namespace avc {

/// Counters describing a recording; valid after onProgramEnd.
struct TraceRecorderStats {
  uint64_t NumEvents = 0;        ///< events in the merged trace
  uint64_t NumWorkerBuffers = 0; ///< distinct threads that recorded
  uint64_t NumRuns = 0;          ///< key-delimited spans across all buffers
  /// Buffer switches between adjacent runs of the merged order — the
  /// number of times the merge had to interleave two workers' streams.
  /// Zero in single-worker runs (the lock-free fast path never pays for
  /// concurrency it does not have).
  uint64_t NumContendedMerges = 0;
};

/// Records the event stream of a run.
class TraceRecorder : public ExecutionObserver {
public:
  TraceRecorder();
  ~TraceRecorder() override;

  void onProgramStart(TaskId RootTask) override;
  void onProgramEnd() override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskExecuteBegin(TaskId Task) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onLockAcquire(TaskId Task, LockId Lock) override;
  void onLockRelease(TaskId Task, LockId Lock) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;

  /// The merged trace (valid once the run has finished).
  const Trace &trace() const { return Events; }

  /// Recording counters (valid once the run has finished).
  const TraceRecorderStats &stats() const { return Stats; }

private:
  /// Fixed-size chunk of one worker's event stream. The owner writes slots
  /// with plain stores; readers only touch slots below the buffer's
  /// release-published event count.
  struct EventChunk {
    static constexpr size_t Capacity = 8192;
    TraceEvent Events[Capacity];
  };

  /// A key-delimited span of one buffer: events [Begin, next run's Begin).
  struct Run {
    uint64_t Key;
    uint64_t Begin;
  };

  /// One thread's private event stream. Only the owning thread writes;
  /// the merge reads after acquiring the published counts.
  struct WorkerBuf {
    std::thread::id Owner;
    std::vector<std::unique_ptr<EventChunk>> Chunks;
    std::vector<Run> Runs;
    std::atomic<uint64_t> PublishedEvents{0};
    std::atomic<uint64_t> PublishedRuns{0};
  };

  WorkerBuf &localBuf();
  void startRun(WorkerBuf &B, uint64_t Key);
  void append(TraceEvent Event);
  void appendKeyed(uint64_t Key, TraceEvent Event);
  uint64_t groupIdFor(const void *GroupTag);
  void mergeBuffers();

  /// Globally unique id of this recorder instance; keys the per-thread
  /// buffer cache so a recorder reusing a dead one's address can never
  /// inherit its buffers.
  const uint64_t RecorderId;

  /// Run-key source. Starts at 1: key 0 is reserved for ProgramStart and
  /// UINT64_MAX for ProgramEnd, pinning them to the ends of the merge.
  std::atomic<uint64_t> Seq{1};

  SpinLock BufLock; ///< guards Bufs growth (once per thread)
  std::vector<std::unique_ptr<WorkerBuf>> Bufs;

  Trace Events; ///< merged linearization, materialized at program end
  TraceRecorderStats Stats;

  SpinLock GroupLock; ///< guards the group-id map (spawn/wait only)
  std::unordered_map<const void *, uint64_t> GroupIds;
  uint64_t NextGroupId = 1;
};

} // namespace avc

#endif // AVC_TRACE_TRACERECORDER_H
