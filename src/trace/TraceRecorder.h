//===- trace/TraceRecorder.h - Observer that records traces ----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ExecutionObserver that appends every event to a trace. The recorder
/// serializes concurrent events with a lock, producing one valid
/// linearization of the run (per-task order is preserved, which is all the
/// checkers require).
///
//===----------------------------------------------------------------------===//

#ifndef AVC_TRACE_TRACERECORDER_H
#define AVC_TRACE_TRACERECORDER_H

#include <unordered_map>

#include "runtime/ExecutionObserver.h"
#include "support/SpinLock.h"
#include "trace/TraceEvent.h"

namespace avc {

/// Records the event stream of a run.
class TraceRecorder : public ExecutionObserver {
public:
  TraceRecorder() = default;
  ~TraceRecorder() override;

  void onProgramStart(TaskId RootTask) override;
  void onProgramEnd() override;
  void onTaskSpawn(TaskId Parent, const void *GroupTag, TaskId Child) override;
  void onTaskEnd(TaskId Task) override;
  void onSync(TaskId Task) override;
  void onGroupWait(TaskId Task, const void *GroupTag) override;
  void onLockAcquire(TaskId Task, LockId Lock) override;
  void onLockRelease(TaskId Task, LockId Lock) override;
  void onRead(TaskId Task, MemAddr Addr) override;
  void onWrite(TaskId Task, MemAddr Addr) override;

  /// The recorded trace (valid once the run has finished).
  const Trace &trace() const { return Events; }

private:
  void append(TraceEvent Event);
  uint64_t groupIdFor(const void *GroupTag);

  SpinLock Lock;
  Trace Events;
  std::unordered_map<const void *, uint64_t> GroupIds;
  uint64_t NextGroupId = 1;
};

} // namespace avc

#endif // AVC_TRACE_TRACERECORDER_H
