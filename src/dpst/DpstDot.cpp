//===- dpst/DpstDot.cpp - Graphviz dump of a DPST --------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/DpstDot.h"

#include <cstdio>
#include <map>
#include <vector>

using namespace avc;

std::string avc::dpstToDot(const Dpst &Tree) {
  std::string Out;
  Out += "digraph dpst {\n  ordering=out;\n  node [fontname=\"monospace\"];\n";
  size_t N = Tree.numNodes();

  // Collect children in sibling order (ids are creation-ordered, so a simple
  // stable grouping by parent preserves left-to-right order).
  std::map<NodeId, std::vector<NodeId>> Children;
  for (size_t I = 0; I < N; ++I) {
    NodeId Id = static_cast<NodeId>(I);
    char Buffer[128];
    const char *Shape = "box";
    const char *Label = "F";
    switch (Tree.kind(Id)) {
    case DpstNodeKind::Finish:
      Shape = "box";
      Label = "F";
      break;
    case DpstNodeKind::Async:
      Shape = "ellipse";
      Label = "A";
      break;
    case DpstNodeKind::Step:
      Shape = "plaintext";
      Label = "S";
      break;
    }
    std::snprintf(Buffer, sizeof(Buffer),
                  "  n%u [shape=%s,label=\"%s%u\\nT%u\"];\n", Id, Shape,
                  Label, Id, Tree.taskId(Id));
    Out += Buffer;
    if (Tree.parent(Id) != InvalidNodeId)
      Children[Tree.parent(Id)].push_back(Id);
  }

  for (const auto &[Parent, Kids] : Children)
    for (NodeId Kid : Kids) {
      char Buffer[64];
      std::snprintf(Buffer, sizeof(Buffer), "  n%u -> n%u;\n", Parent, Kid);
      Out += Buffer;
    }

  Out += "}\n";
  return Out;
}
