//===- dpst/ParallelismOracle.cpp - Cached logically-parallel query -------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/ParallelismOracle.h"

#include <algorithm>
#include <cassert>
#include <mutex>

#include "obs/Obs.h"

using namespace avc;

ParallelismOracle::ParallelismOracle(const Dpst &Tree, Options Opts)
    : Tree(Tree), Opts(Opts),
      StatShards(std::make_unique<StatShard[]>(NumStatShards)) {
  if (Opts.EnableCache && Opts.Mode == QueryMode::Walk)
    Cache = std::make_unique<LcaCache>(Opts.CacheLogSlots);
  if (Opts.TrackUniquePairs) {
    UniqueShards.reserve(NumUniqueShards);
    for (unsigned I = 0; I < NumUniqueShards; ++I)
      UniqueShards.push_back(std::make_unique<UniqueShard>());
  }
}

ParallelismOracle::StatShard &ParallelismOracle::statShard() {
  // Process-wide thread ordinal: stable for a thread's lifetime, dense, so
  // up to NumStatShards concurrent workers land on distinct cache lines.
  static std::atomic<uint32_t> NextOrdinal{0};
  thread_local uint32_t Ordinal =
      NextOrdinal.fetch_add(1, std::memory_order_relaxed);
  return StatShards[Ordinal & (NumStatShards - 1)];
}

void ParallelismOracle::recordUniquePair(NodeId Lo, NodeId Hi) {
  // Ids are 31-bit by design (DpstNodeKind.h); a 32-bit shift keeps the
  // halves disjoint where the previous 31-bit shift aliased distinct pairs.
  assert(Lo < Hi && Hi <= MaxNodeId &&
         "node id exceeds the 31-bit pair-key space");
  uint64_t Key = uint64_t(Lo) << 32 | uint64_t(Hi);
  UniqueShard &Shard = *UniqueShards[Key % NumUniqueShards];
  std::lock_guard<SpinLock> Guard(Shard.Lock);
  if (++Shard.Keys[Key] == 1)
    NumUniquePairs.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<uint64_t, uint64_t>>
ParallelismOracle::hottestPairs(size_t N) const {
  std::vector<std::pair<uint64_t, uint64_t>> All;
  for (const auto &ShardPtr : UniqueShards) {
    std::lock_guard<SpinLock> Guard(ShardPtr->Lock);
    for (const auto &[Key, Count] : ShardPtr->Keys)
      All.push_back({Key, Count});
  }
  // Deterministic tiebreak (count desc, key asc): std::sort is unstable
  // and the shard iteration order varies run to run, so sorting on count
  // alone made Table-1 characterization output irreproducible.
  std::sort(All.begin(), All.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (All.size() > N)
    All.resize(N);
  return All;
}

bool ParallelismOracle::logicallyParallel(NodeId A, NodeId B) {
  assert(A != InvalidNodeId && B != InvalidNodeId &&
         "parallel query on an invalid node");
  // Sampled: a query is tens of nanoseconds in Label mode, so timing each
  // one would measure the tracer, not the oracle.
  AVC_OBS_SPAN_SAMPLED(obs::Cat::Dpst, "dpst/par-query", 64);
  StatShard &Shard = statShard();
  // A step is never parallel with itself; no LCA walk, not counted as a
  // query (blackscholes in Table 1 performs zero queries for this reason).
  if (A == B) {
    Shard.NumTrivialSame.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  NodeId Lo = A < B ? A : B;
  NodeId Hi = A < B ? B : A;
  // Ids are 31-bit by design (see DpstNodeKind.h) so an ordered pair packs
  // into one 64-bit key; a 31-bit shift would alias distinct pairs.
  assert(Hi <= MaxNodeId && "node id exceeds the 31-bit pair-key space");
  Shard.NumQueries.fetch_add(1, std::memory_order_relaxed);
  if (Opts.TrackUniquePairs)
    recordUniquePair(Lo, Hi);

  if (Opts.Mode != QueryMode::Walk)
    return Tree.logicallyParallel(Lo, Hi, Opts.Mode);

  if (Cache) {
    if (std::optional<bool> Hit = Cache->lookup(Lo, Hi)) {
      Shard.NumCacheHits.fetch_add(1, std::memory_order_relaxed);
      return *Hit;
    }
  }

  bool Parallel = Tree.logicallyParallelUncached(Lo, Hi);
  if (Cache)
    Cache->insert(Lo, Hi, Parallel);
  return Parallel;
}

LcaQueryStats ParallelismOracle::stats() const {
  LcaQueryStats Stats;
  for (unsigned I = 0; I < NumStatShards; ++I) {
    const StatShard &Shard = StatShards[I];
    Stats.NumQueries += Shard.NumQueries.load(std::memory_order_relaxed);
    Stats.NumCacheHits += Shard.NumCacheHits.load(std::memory_order_relaxed);
    Stats.NumTrivialSame +=
        Shard.NumTrivialSame.load(std::memory_order_relaxed);
  }
  Stats.NumUniquePairs = NumUniquePairs.load(std::memory_order_relaxed);
  Stats.UniquePairsTracked = Opts.TrackUniquePairs;
  Stats.Mode = Opts.Mode;
  return Stats;
}
