//===- dpst/DpstNodeKind.h - DPST node kinds and ids ------------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Node kinds of the Dynamic Program Structure Tree (Section 2 of the paper,
/// after Raman et al., PLDI'12): finish and async inner nodes, step leaves.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_DPSTNODEKIND_H
#define AVC_DPST_DPSTNODEKIND_H

#include <cstdint>

namespace avc {

/// Identifies a DPST node. Ids are dense, assigned in creation order, and
/// stable for the lifetime of the tree. Kept to 31 usable bits so an ordered
/// pair of ids packs into one 64-bit LCA-cache key.
using NodeId = uint32_t;

/// Sentinel for "no node" (e.g. the root's parent).
inline constexpr NodeId InvalidNodeId = 0x7fffffffu;

/// Maximum representable node id (2^31 - 2, leaving room for the sentinel).
inline constexpr NodeId MaxNodeId = InvalidNodeId - 1;

/// The three DPST node kinds.
enum class DpstNodeKind : uint8_t {
  /// Created when a task spawns a child and (transitively) waits for it;
  /// parent of everything directly executed within the scope.
  Finish,
  /// Captures the spawning of a task; executes asynchronously with the
  /// remainder of the parent task.
  Async,
  /// A maximal instruction sequence without task-management constructs.
  /// Always a leaf; all data accesses belong to some step node.
  Step,
};

/// Returns a short human-readable name ("finish", "async", "step").
inline const char *dpstNodeKindName(DpstNodeKind Kind) {
  switch (Kind) {
  case DpstNodeKind::Finish:
    return "finish";
  case DpstNodeKind::Async:
    return "async";
  case DpstNodeKind::Step:
    return "step";
  }
  return "<invalid>";
}

} // namespace avc

#endif // AVC_DPST_DPSTNODEKIND_H
