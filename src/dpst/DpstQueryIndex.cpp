//===- dpst/DpstQueryIndex.cpp - Constant-time parallelism queries --------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/DpstQueryIndex.h"

#include <bit>
#include <cassert>
#include <cstring>

#include "dpst/ParallelQueryImpl.h"
#include "obs/Obs.h"

using namespace avc;

const char *avc::queryModeName(QueryMode Mode) {
  switch (Mode) {
  case QueryMode::Walk:
    return "walk";
  case QueryMode::Lift:
    return "lift";
  case QueryMode::Label:
    return "label";
  }
  return "<invalid>";
}

bool avc::parseQueryMode(const char *Name, QueryMode &Mode) {
  if (std::strcmp(Name, "walk") == 0)
    Mode = QueryMode::Walk;
  else if (std::strcmp(Name, "lift") == 0)
    Mode = QueryMode::Lift;
  else if (std::strcmp(Name, "label") == 0)
    Mode = QueryMode::Label;
  else
    return false;
  return true;
}

DpstQueryIndex::DpstQueryIndex() = default;
DpstQueryIndex::~DpstQueryIndex() = default;

/// Number of binary-lifting levels a node at \p Depth stores: one per
/// power of two not exceeding the depth (level K holds the ancestor at
/// distance 2^K; the root stores none).
static unsigned jumpLevels(uint32_t Depth) {
  return static_cast<unsigned>(std::bit_width(Depth));
}

uint32_t *DpstQueryIndex::allocateLabel(uint32_t Len) {
  if (LabelWordsUsed + Len > LabelWordsCap)
    return nullptr; // arena budget exhausted: this node falls back to Lift
  if (Len > LabelChunkWords) {
    // Oversized labels get a dedicated exact-size chunk so the common
    // chunk's tail is not wasted on them. CurChunk/LabelChunkUsed are left
    // alone: the active bump chunk keeps serving later small labels
    // (LabelChunks.back() is NOT the bump chunk after this push).
    obs::instant(obs::Cat::Dpst, "dpst/label-arena-grow", Len);
    LabelChunks.push_back(std::make_unique<uint32_t[]>(Len));
    LabelWordsUsed += Len;
    return LabelChunks.back().get();
  }
  if (!CurChunk || LabelChunkUsed + Len > LabelChunkWords) {
    obs::instant(obs::Cat::Dpst, "dpst/label-arena-grow", LabelChunkWords);
    LabelChunks.push_back(std::make_unique<uint32_t[]>(LabelChunkWords));
    CurChunk = LabelChunks.back().get();
    LabelChunkUsed = 0;
  }
  uint32_t *Out = CurChunk + LabelChunkUsed;
  LabelChunkUsed += Len;
  LabelWordsUsed += Len;
  return Out;
}

void DpstQueryIndex::onNodeAdded([[maybe_unused]] NodeId Id, NodeId Parent,
                                 DpstNodeKind Kind, uint32_t Depth,
                                 uint32_t SiblingIndex) {
  assert(Id == Meta.size() && "index must be fed in id order");
  assert((Depth == 0) == (Parent == InvalidNodeId) &&
         "only the root has no parent");

  // Binary-lifting row: Row[0] is the parent; Row[K] is Row[K-1]'s
  // ancestor at distance 2^(K-1), read from the already-published rows.
  // 31 levels cover the whole 31-bit id space.
  NodeId Row[32];
  unsigned Levels = jumpLevels(Depth);
  uint64_t JumpOffset = 0;
  if (Levels > 0) {
    Row[0] = Parent;
    const NodeMeta *M = Meta.snapshot();
    const NodeId *J = Jumps.snapshot();
    for (unsigned K = 1; K < Levels; ++K)
      Row[K] = J[M[Row[K - 1]].JumpOffset + (K - 1)];
    JumpOffset = Jumps.pushBackSpan(Row, Levels);
  }

  // Fork-path label (steps only): entry I describes the path's node at
  // depth I+1, filled leaf-to-root by walking the published parent meta.
  LabelRef Label{nullptr, 0};
  if (Kind == DpstNodeKind::Step && Depth > 0) {
    if (uint32_t *Data = allocateLabel(Depth)) {
      const NodeMeta *M = Meta.snapshot();
      Data[Depth - 1] = (SiblingIndex << 1) | 0u; // the step itself
      NodeId Walk = Parent;
      for (uint32_t I = Depth - 1; I > 0; --I) {
        const NodeMeta &WalkMeta = M[Walk];
        uint32_t IsAsync =
            (WalkMeta.DepthKind & 3) ==
                    static_cast<uint32_t>(DpstNodeKind::Async)
                ? 1u
                : 0u;
        Data[I - 1] = (WalkMeta.SiblingIndex << 1) | IsAsync;
        Walk = Jumps[WalkMeta.JumpOffset]; // level 0 = parent
      }
      Label = {Data, Depth};
    }
  }

  NodeMeta Record;
  Record.JumpOffset = JumpOffset;
  Record.DepthKind = (Depth << 2) | static_cast<uint32_t>(Kind);
  Record.SiblingIndex = SiblingIndex;
  Meta.pushBack(Record);
  Labels.pushBack(Label);
}

bool DpstQueryIndex::hasLabel(NodeId Id) const {
  assert(Id < Labels.size() && "node id out of range");
  return Labels[Id].Data != nullptr;
}

//===----------------------------------------------------------------------===//
// Lift mode: ParallelQueryImpl's lifted algorithms over the flat arrays
//===----------------------------------------------------------------------===//

/// Adapter handing the lifted query templates snapshots of the two flat
/// arrays; one snapshot pair serves a whole query (every reachable node
/// was published before the queried ids escaped addNode).
struct DpstQueryIndex::LiftView {
  const NodeMeta *M;
  const NodeId *J;

  uint32_t depthOf(NodeId Id) const { return M[Id].DepthKind >> 2; }
  DpstNodeKind kindOf(NodeId Id) const {
    return static_cast<DpstNodeKind>(M[Id].DepthKind & 3);
  }
  uint32_t siblingIndexOf(NodeId Id) const { return M[Id].SiblingIndex; }
  NodeId parentOf(NodeId Id) const { return J[M[Id].JumpOffset]; }
  NodeId jumpOf(NodeId Id, unsigned K) const {
    return J[M[Id].JumpOffset + K];
  }
  bool sameNode(NodeId A, NodeId B) const { return A == B; }
};

bool DpstQueryIndex::logicallyParallelLifted(NodeId A, NodeId B) const {
  assert(A < Meta.size() && B < Meta.size() && "node id out of range");
  LiftView View{Meta.snapshot(), Jumps.snapshot()};
  return detail::queryLogicallyParallelLifted(View, A, B);
}

bool DpstQueryIndex::treeOrderedBeforeLifted(NodeId A, NodeId B) const {
  assert(A < Meta.size() && B < Meta.size() && "node id out of range");
  LiftView View{Meta.snapshot(), Jumps.snapshot()};
  return detail::queryTreeOrderedBeforeLifted(View, A, B);
}

//===----------------------------------------------------------------------===//
// Label mode: fork-path comparison
//===----------------------------------------------------------------------===//

namespace {

/// Index of the first differing entry between two labels, or MinLen if one
/// is a prefix of the other. Compares two packed entries per 64-bit load;
/// label starts are 4-byte aligned, so the loads use memcpy (free on
/// x86/arm) instead of assuming 8-byte alignment.
uint32_t firstDivergence(const uint32_t *LA, const uint32_t *LB,
                         uint32_t MinLen) {
  uint32_t I = 0;
  while (I + 2 <= MinLen) {
    uint64_t WA, WB;
    std::memcpy(&WA, LA + I, sizeof(WA));
    std::memcpy(&WB, LB + I, sizeof(WB));
    if (WA != WB)
      break;
    I += 2;
  }
  while (I < MinLen && LA[I] == LB[I])
    ++I;
  return I;
}

} // namespace

bool DpstQueryIndex::logicallyParallelLabeled(NodeId A, NodeId B) const {
  assert(A < Labels.size() && B < Labels.size() && "node id out of range");
  if (A == B)
    return false;
  LabelRef LA = Labels[A];
  LabelRef LB = Labels[B];
  if (LA.Data == nullptr || LB.Data == nullptr)
    return logicallyParallelLifted(A, B);
  uint32_t MinLen = LA.Len < LB.Len ? LA.Len : LB.Len;
  uint32_t I = firstDivergence(LA.Data, LB.Data, MinLen);
  if (I == MinLen)
    return false; // one path is a prefix of the other: ancestor, in series
  // The divergent entries are the two children of the LCA; the leftmost
  // (smaller sibling index) decides: async => parallel. The is-async bit
  // sits below the sibling index, so comparing the packed words compares
  // sibling order whenever the indices differ — and they do diverge here.
  uint32_t EA = LA.Data[I];
  uint32_t EB = LB.Data[I];
  assert((EA >> 1) != (EB >> 1) &&
         "distinct children of one parent must have distinct positions");
  uint32_t Left = (EA >> 1) < (EB >> 1) ? EA : EB;
  return (Left & 1u) != 0;
}

bool DpstQueryIndex::treeOrderedBeforeLabeled(NodeId A, NodeId B) const {
  assert(A < Labels.size() && B < Labels.size() && "node id out of range");
  assert(A != B && "tree-order query on identical nodes");
  LabelRef LA = Labels[A];
  LabelRef LB = Labels[B];
  if (LA.Data == nullptr || LB.Data == nullptr)
    return treeOrderedBeforeLifted(A, B);
  uint32_t MinLen = LA.Len < LB.Len ? LA.Len : LB.Len;
  uint32_t I = firstDivergence(LA.Data, LB.Data, MinLen);
  if (I == MinLen)
    return LA.Len < LB.Len; // ancestor precedes descendant in pre-order
  return (LA.Data[I] >> 1) < (LB.Data[I] >> 1);
}
