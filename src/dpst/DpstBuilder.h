//===- dpst/DpstBuilder.h - Event-driven DPST construction -----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates the task-management events of an execution (spawn, sync,
/// finish-scope begin/end, task end) into DPST mutations, maintaining one
/// TaskFrame per live task. Handles both programming styles the paper
/// supports (Section 2): Cilk/TBB spawn-sync (an *implicit* finish scope
/// opens at the first spawn after a sync point and closes at sync or task
/// end) and Habanero-style async-finish / TBB task_group (an *explicit*
/// finish scope identified by a caller-supplied tag).
///
/// Step nodes are created lazily: a step materializes on the first memory
/// access of a maximal region without task-management constructs, so regions
/// that perform no tracked accesses add no nodes (this is why blackscholes
/// has only 1,352 DPST nodes for 10M locations in Table 1).
///
/// Thread safety: each TaskFrame is owned by the single worker currently
/// executing that task; the underlying Dpst serializes appends internally.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_DPSTBUILDER_H
#define AVC_DPST_DPSTBUILDER_H

#include <cstdint>
#include <vector>

#include "dpst/Dpst.h"

namespace avc {

/// Per-task DPST construction state.
class TaskFrame {
  friend class DpstBuilder;

public:
  TaskFrame() = default;

  uint32_t taskId() const { return TaskId; }

  /// The step node of the current maximal region, or InvalidNodeId if no
  /// access has materialized it yet.
  NodeId currentStepOrInvalid() const { return CurrentStep; }

  /// Number of open finish scopes (the task's base scope excluded).
  size_t numOpenScopes() const { return Scopes.size() - 1; }

private:
  struct Scope {
    NodeId Node = InvalidNodeId;
    /// Identifies who opened the scope: nullptr for the implicit Cilk-style
    /// finish, a caller pointer (e.g. the TaskGroup address) for explicit
    /// scopes. The task's base scope uses the frame itself as tag.
    const void *Tag = nullptr;
  };

  uint32_t TaskId = 0;
  std::vector<Scope> Scopes;
  NodeId CurrentStep = InvalidNodeId;
};

/// Builds a DPST from task-management events.
class DpstBuilder {
public:
  explicit DpstBuilder(Dpst &Tree) : Tree(Tree) {}

  /// Creates the root finish node and the frame for the root task. Must be
  /// the first call.
  void initRoot(TaskFrame &Frame, uint32_t RootTaskId);

  /// Handles a spawn by \p Parent: opens the implicit finish scope if
  /// \p GroupTag is null and none is open, appends the async node, resets
  /// the parent's step, and initializes \p Child to execute under the async
  /// node. \p GroupTag identifies an explicit finish scope (TBB task_group
  /// style); scopes must nest (stack discipline).
  void spawnTask(TaskFrame &Parent, const void *GroupTag, TaskFrame &Child,
                 uint32_t ChildTaskId);

  /// Cilk-style sync: closes the implicit finish scope if one is open.
  /// Always ends the current step (sync is a task-management construct).
  void sync(TaskFrame &Frame);

  /// Closes the explicit finish scope opened for \p GroupTag, if any
  /// (a task_group::wait with no prior run leaves no scope). Ends the
  /// current step.
  void waitGroup(TaskFrame &Frame, const void *GroupTag);

  /// Task termination: closes any scopes still open (the implicit sync at
  /// the end of a Cilk task) back down to the base scope.
  void endTask(TaskFrame &Frame);

  /// Returns the step node for the current region, materializing it on
  /// first use. Every memory access maps to the result of this call.
  NodeId currentStep(TaskFrame &Frame);

  Dpst &tree() { return Tree; }

private:
  void openScope(TaskFrame &Frame, const void *Tag);
  void closeScope(TaskFrame &Frame);

  Dpst &Tree;
};

} // namespace avc

#endif // AVC_DPST_DPSTBUILDER_H
