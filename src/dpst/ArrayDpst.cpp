//===- dpst/ArrayDpst.cpp - DPST overlaid on a linear array ---------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/ArrayDpst.h"

#include <cassert>

#include "dpst/ParallelQueryImpl.h"
#include "support/Compiler.h"

using namespace avc;

NodeId ArrayDpst::addNode(NodeId Parent, DpstNodeKind Kind, uint32_t TaskId) {
  std::lock_guard<SpinLock> Guard(AppendLock);
  HotNode Record;
  Record.Parent = Parent;
  ColdNode Extra;
  Extra.TaskId = TaskId;
  Extra.NumChildren = 0;
  if (Parent == InvalidNodeId) {
    assert(Hot.empty() && "only the first node may be a root");
    assert(Kind == DpstNodeKind::Finish && "the root must be a finish node");
    Record.DepthKind = static_cast<uint32_t>(Kind);
    Record.SiblingIndex = 0;
  } else {
    assert(Parent < Hot.size() && "parent id out of range");
    HotNode ParentRecord = Hot[Parent];
    assert(static_cast<DpstNodeKind>(ParentRecord.DepthKind & 3) !=
               DpstNodeKind::Step &&
           "step nodes are leaves and cannot have children");
    uint32_t ParentDepth = ParentRecord.DepthKind >> 2;
    Record.DepthKind =
        ((ParentDepth + 1) << 2) | static_cast<uint32_t>(Kind);
    Record.SiblingIndex = Cold[Parent].NumChildren++;
  }
  size_t Id = Hot.pushBack(Record);
  Cold.emplaceBack(Extra);
  assert(Id <= MaxNodeId && "DPST node count exceeds id space");
  if (IndexEnabled)
    Index.onNodeAdded(static_cast<NodeId>(Id), Parent,
                      static_cast<DpstNodeKind>(Record.DepthKind & 3),
                      Record.DepthKind >> 2, Record.SiblingIndex);
  return static_cast<NodeId>(Id);
}

DpstNodeKind ArrayDpst::kind(NodeId Id) const {
  return static_cast<DpstNodeKind>(Hot[Id].DepthKind & 3);
}

NodeId ArrayDpst::parent(NodeId Id) const { return Hot[Id].Parent; }

uint32_t ArrayDpst::depth(NodeId Id) const { return Hot[Id].DepthKind >> 2; }

uint32_t ArrayDpst::siblingIndex(NodeId Id) const {
  return Hot[Id].SiblingIndex;
}

uint32_t ArrayDpst::taskId(NodeId Id) const { return Cold[Id].TaskId; }

size_t ArrayDpst::numNodes() const { return Hot.size(); }

struct ArrayDpst::QueryAdapter {
  const HotNode *Nodes; // snapshot for the duration of one walk

  uint32_t depthOf(NodeId Id) const { return Nodes[Id].DepthKind >> 2; }
  NodeId parentOf(NodeId Id) const { return Nodes[Id].Parent; }
  DpstNodeKind kindOf(NodeId Id) const {
    return static_cast<DpstNodeKind>(Nodes[Id].DepthKind & 3);
  }
  uint32_t siblingIndexOf(NodeId Id) const {
    return Nodes[Id].SiblingIndex;
  }
  bool sameNode(NodeId A, NodeId B) const { return A == B; }
};

bool ArrayDpst::logicallyParallelUncached(NodeId A, NodeId B) const {
  assert(A < Hot.size() && B < Hot.size() && "node id out of range");
  QueryAdapter Adapter{Hot.snapshot()};
  return detail::queryLogicallyParallel(Adapter, A, B);
}

bool ArrayDpst::treeOrderedBefore(NodeId A, NodeId B) const {
  assert(A < Hot.size() && B < Hot.size() && "node id out of range");
  QueryAdapter Adapter{Hot.snapshot()};
  return detail::queryTreeOrderedBefore(Adapter, A, B);
}
