//===- dpst/Dpst.cpp - DPST interface and factory --------------------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/Dpst.h"

#include <cassert>

#include "dpst/ArrayDpst.h"
#include "dpst/LinkedDpst.h"
#include "support/Compiler.h"

using namespace avc;

Dpst::~Dpst() = default;

NodeId Dpst::root() const {
  assert(numNodes() > 0 && "root() on an empty tree");
  return 0;
}

bool Dpst::logicallyParallel(NodeId A, NodeId B, QueryMode Mode) const {
  if (!IndexEnabled)
    Mode = QueryMode::Walk; // no index was built: only Walk can answer
  switch (Mode) {
  case QueryMode::Walk:
    return logicallyParallelUncached(A, B);
  case QueryMode::Lift:
    return Index.logicallyParallelLifted(A, B);
  case QueryMode::Label:
    return Index.logicallyParallelLabeled(A, B);
  }
  avc_unreachable("unknown query mode");
}

bool Dpst::treeOrderedBefore(NodeId A, NodeId B, QueryMode Mode) const {
  if (!IndexEnabled)
    Mode = QueryMode::Walk; // no index was built: only Walk can answer
  switch (Mode) {
  case QueryMode::Walk:
    return treeOrderedBefore(A, B);
  case QueryMode::Lift:
    return Index.treeOrderedBeforeLifted(A, B);
  case QueryMode::Label:
    return Index.treeOrderedBeforeLabeled(A, B);
  }
  avc_unreachable("unknown query mode");
}

bool Dpst::isAncestorOrSelf(NodeId Ancestor, NodeId Id) const {
  uint32_t TargetDepth = depth(Ancestor);
  while (depth(Id) > TargetDepth)
    Id = parent(Id);
  return Id == Ancestor;
}

std::unique_ptr<Dpst> avc::createDpst(DpstLayout Layout) {
  switch (Layout) {
  case DpstLayout::Array:
    return std::make_unique<ArrayDpst>();
  case DpstLayout::Linked:
    return std::make_unique<LinkedDpst>();
  }
  avc_unreachable("unknown DPST layout");
}

std::unique_ptr<Dpst> avc::createDpst(DpstLayout Layout, QueryMode Query) {
  bool BuildIndex = Query != QueryMode::Walk;
  switch (Layout) {
  case DpstLayout::Array:
    return std::make_unique<ArrayDpst>(BuildIndex);
  case DpstLayout::Linked:
    return std::make_unique<LinkedDpst>(BuildIndex);
  }
  avc_unreachable("unknown DPST layout");
}

const char *avc::dpstLayoutName(DpstLayout Layout) {
  switch (Layout) {
  case DpstLayout::Array:
    return "array";
  case DpstLayout::Linked:
    return "linked";
  }
  avc_unreachable("unknown DPST layout");
}
