//===- dpst/ParallelismOracle.h - Cached logically-parallel query -*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Front end for the Par(S_i, S_j) query of the paper's algorithms: wraps a
/// DPST with the LCA cache and the query statistics reported in Table 1
/// (number of LCA queries, percentage of unique queries) plus the cache hit
/// rate used in the evaluation discussion.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_PARALLELISMORACLE_H
#define AVC_DPST_PARALLELISMORACLE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dpst/Dpst.h"
#include "dpst/LcaCache.h"
#include "support/Compiler.h"
#include "support/SpinLock.h"

namespace avc {

/// Counters for the LCA-query columns of Table 1.
struct LcaQueryStats {
  /// Total LCA queries performed (distinct-node pairs reaching the walk or
  /// the cache; trivial same-node queries are free and not counted,
  /// matching the paper's observation that first accesses cost no query).
  uint64_t NumQueries = 0;
  /// Queries answered by the LCA cache.
  uint64_t NumCacheHits = 0;
  /// Number of distinct (unordered) node pairs ever queried. Only
  /// meaningful when unique-pair tracking is enabled.
  uint64_t NumUniquePairs = 0;
  /// Same-node queries answered by the oracle's trivial fast path without
  /// touching the cache or the tree (never included in NumQueries).
  uint64_t NumTrivialSame = 0;
  /// True if NumUniquePairs was collected.
  bool UniquePairsTracked = false;
  /// The query mode the oracle ran with.
  QueryMode Mode = QueryMode::Label;

  /// Percentage of queries that were unique pairs (Table 1 rightmost
  /// column); 0 when not tracked or no queries ran.
  double percentUnique() const {
    if (!UniquePairsTracked || NumQueries == 0)
      return 0.0;
    return 100.0 * static_cast<double>(NumUniquePairs) /
           static_cast<double>(NumQueries);
  }

  /// Percentage of counted queries the LCA cache answered.
  double percentCacheHits() const {
    if (NumQueries == 0)
      return 0.0;
    return 100.0 * static_cast<double>(NumCacheHits) /
           static_cast<double>(NumQueries);
  }
};

/// Answers logically-parallel queries against a DPST, with optional caching
/// and statistics. Thread safe.
class ParallelismOracle {
public:
  struct Options {
    /// Query algorithm (see DpstQueryIndex.h). Label resolves the common
    /// step-vs-step query in O(1) with no pointer chasing; Walk is the
    /// paper's O(depth) LCA walk.
    QueryMode Mode = QueryMode::Label;
    /// Use the LCA cache. Only consulted in Walk mode: a Lift/Label query
    /// is cheaper than the cache's hash-and-probe, so caching there would
    /// be pure overhead.
    bool EnableCache = true;
    /// log2 of the number of cache slots.
    unsigned CacheLogSlots = 16;
    /// Exactly count distinct queried pairs (Table 1). Costs a sharded
    /// hash-set insert per query; enable for characterization runs only.
    bool TrackUniquePairs = false;
  };

  ParallelismOracle(const Dpst &Tree, Options Opts);
  explicit ParallelismOracle(const Dpst &Tree)
      : ParallelismOracle(Tree, Options()) {}

  /// Returns true if step nodes \p A and \p B can logically execute in
  /// parallel. A == B returns false without touching the tree.
  bool logicallyParallel(NodeId A, NodeId B);

  /// Tree-order query under the oracle's mode (uncounted: retention-policy
  /// bookkeeping, not a Par() query of the algorithms).
  bool treeOrderedBefore(NodeId A, NodeId B) const {
    return Tree.treeOrderedBefore(A, B, Opts.Mode);
  }

  /// Snapshot of the query counters.
  LcaQueryStats stats() const;

  /// When unique-pair tracking is on, returns the \p N most frequently
  /// queried pairs as ((A << 32) | B, count), hottest first; equal counts
  /// order by ascending key so characterization output is reproducible
  /// across runs. Diagnostic aid for understanding a workload's
  /// query-repetition profile.
  std::vector<std::pair<uint64_t, uint64_t>> hottestPairs(size_t N) const;

  QueryMode mode() const { return Opts.Mode; }
  const Dpst &tree() const { return Tree; }

private:
  void recordUniquePair(NodeId Lo, NodeId Hi);

  static constexpr unsigned NumUniqueShards = 16;
  /// Power of two; threads hash to shards by a process-wide ordinal, so
  /// with up to 16 workers each typically owns a shard.
  static constexpr unsigned NumStatShards = 16;

  /// Per-thread-striped query counters. The former single atomics were
  /// all-thread contended on every tracked access (two fetch_adds on one
  /// cache line); striping makes the common case an uncontended RMW on a
  /// line owned by the current core (mirrors the checker's per-task
  /// counters from PR 1). Aggregated in stats().
  struct alignas(AVC_CACHELINE_SIZE) StatShard {
    std::atomic<uint64_t> NumQueries{0};
    std::atomic<uint64_t> NumCacheHits{0};
    std::atomic<uint64_t> NumTrivialSame{0};
  };

  StatShard &statShard();

  const Dpst &Tree;
  Options Opts;
  std::unique_ptr<LcaCache> Cache;
  std::unique_ptr<StatShard[]> StatShards;
  std::atomic<uint64_t> NumUniquePairs{0};

  struct UniqueShard {
    SpinLock Lock;
    std::unordered_map<uint64_t, uint64_t> Keys; // pair key -> query count
  };
  std::vector<std::unique_ptr<UniqueShard>> UniqueShards;
};

} // namespace avc

#endif // AVC_DPST_PARALLELISMORACLE_H
