//===- dpst/LcaCache.cpp - Direct-mapped cache of LCA queries -------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/LcaCache.h"

#include <cassert>

using namespace avc;

LcaCache::LcaCache(unsigned LogSlots) {
  assert(LogSlots >= 1 && LogSlots <= 28 && "unreasonable cache size");
  SlotCount = size_t(1) << LogSlots;
  SlotMask = SlotCount - 1;
  Slots = std::make_unique<std::atomic<uint64_t>[]>(SlotCount);
  clear();
}

void LcaCache::clear() {
  for (size_t I = 0; I < SlotCount; ++I)
    Slots[I].store(0, std::memory_order_relaxed);
}

uint64_t LcaCache::packKey(NodeId A, NodeId B, bool Parallel) {
  assert(A < B && "cache keys are ordered pairs");
  assert(B <= MaxNodeId && "node id exceeds 31-bit cache key space");
  // A full 32-bit shift keeps the halves disjoint (a 31-bit shift would
  // alias distinct pairs); A <= MaxNodeId < 2^31 so the 31+1(A) + 31(B) +
  // 1(result) bits still fit, and +1 marks the entry as non-empty without
  // overflowing.
  uint64_t Packed = ((uint64_t(A) << 32 | uint64_t(B)) << 1) |
                    uint64_t(Parallel);
  return Packed + 1;
}

size_t LcaCache::slotFor(NodeId A, NodeId B) const {
  // SplitMix64 finalizer over the pair; good avalanche for sequential ids.
  uint64_t Z = (uint64_t(A) << 32) | uint64_t(B);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  Z = Z ^ (Z >> 31);
  return static_cast<size_t>(Z) & SlotMask;
}

std::optional<bool> LcaCache::lookup(NodeId A, NodeId B) const {
  uint64_t Entry = Slots[slotFor(A, B)].load(std::memory_order_relaxed);
  if (Entry == 0)
    return std::nullopt;
  uint64_t Stored = Entry - 1;
  bool Parallel = Stored & 1;
  if (Stored >> 1 != (uint64_t(A) << 32 | uint64_t(B)))
    return std::nullopt;
  return Parallel;
}

void LcaCache::insert(NodeId A, NodeId B, bool Parallel) {
  Slots[slotFor(A, B)].store(packKey(A, B, Parallel),
                             std::memory_order_relaxed);
}
