//===- dpst/Retention.h - Parallel-entry retention policy ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed-size access-history retention rule shared by the atomicity
/// checker (complete-metadata mode), the race detector, the determinism
/// checker, and the pre-analysis trace classifier: given a pair of entry
/// slots and a new step, replace *dominated* entries (a step in series
/// with — and therefore observed before — the new one is subsumed by it
/// for every future parallelism query), and among three pairwise parallel
/// candidates keep the leftmost and rightmost in DPST order
/// (Mellor-Crummey's two-reader argument, SC'91): a future step parallel
/// with the dropped middle candidate is parallel with one of the extremes.
///
/// Lives in dpst/ because the rule is a pure property of the tree and the
/// oracle — every consumer above (checker tools, trace classification)
/// shares this one definition.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_RETENTION_H
#define AVC_DPST_RETENTION_H

#include <utility>

#include "dpst/Dpst.h"
#include "dpst/ParallelismOracle.h"

namespace avc {

/// Records \p Si into the entry pair (\p E1, \p E2) under the complete
/// retention policy. Uses \p Oracle for (counted) parallelism queries and
/// (uncounted) tree-order comparisons, both under the oracle's query mode.
inline void retainParallelPair(ParallelismOracle &Oracle, NodeId &E1,
                               NodeId &E2, NodeId Si) {
  if (E1 == Si || E2 == Si)
    return;
  bool Dominated1 = E1 != InvalidNodeId && !Oracle.logicallyParallel(E1, Si);
  bool Dominated2 = E2 != InvalidNodeId && !Oracle.logicallyParallel(E2, Si);
  if (Dominated1 && Dominated2) {
    E1 = Si;
    E2 = InvalidNodeId;
    return;
  }
  if (Dominated1) {
    E1 = Si;
    return;
  }
  if (Dominated2) {
    E2 = Si;
    return;
  }
  if (E1 == InvalidNodeId) {
    E1 = Si;
    return;
  }
  if (E2 == InvalidNodeId) {
    E2 = Si;
    return;
  }
  NodeId Lo = E1, Hi = E2;
  if (Oracle.treeOrderedBefore(Hi, Lo))
    std::swap(Lo, Hi);
  if (Oracle.treeOrderedBefore(Si, Lo)) {
    E1 = Si;
    E2 = Hi;
  } else if (Oracle.treeOrderedBefore(Hi, Si)) {
    E1 = Lo;
    E2 = Si;
  }
  // Otherwise Si lies between the extremes and is dropped.
}

} // namespace avc

#endif // AVC_DPST_RETENTION_H
