//===- dpst/DpstBuilder.cpp - Event-driven DPST construction --------------===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//

#include "dpst/DpstBuilder.h"

#include <cassert>

using namespace avc;

void DpstBuilder::initRoot(TaskFrame &Frame, uint32_t RootTaskId) {
  assert(Tree.numNodes() == 0 && "initRoot on a non-empty tree");
  NodeId Root = Tree.addNode(InvalidNodeId, DpstNodeKind::Finish, RootTaskId);
  Frame.TaskId = RootTaskId;
  Frame.Scopes.clear();
  Frame.Scopes.push_back({Root, &Frame});
  Frame.CurrentStep = InvalidNodeId;
}

void DpstBuilder::openScope(TaskFrame &Frame, const void *Tag) {
  NodeId Finish = Tree.addNode(Frame.Scopes.back().Node, DpstNodeKind::Finish,
                               Frame.TaskId);
  Frame.Scopes.push_back({Finish, Tag});
  Frame.CurrentStep = InvalidNodeId;
}

void DpstBuilder::closeScope(TaskFrame &Frame) {
  assert(Frame.Scopes.size() > 1 && "cannot close the task's base scope");
  Frame.Scopes.pop_back();
  Frame.CurrentStep = InvalidNodeId;
}

void DpstBuilder::spawnTask(TaskFrame &Parent, const void *GroupTag,
                            TaskFrame &Child, uint32_t ChildTaskId) {
  assert(!Parent.Scopes.empty() && "spawn from an uninitialized frame");
  // Open the matching finish scope unless it is already on top. Scopes obey
  // stack discipline: spawning into group A, then group B, then A again
  // without waiting on B is not supported (documented model restriction).
  const void *Tag = GroupTag; // nullptr selects the implicit Cilk scope.
  if (Parent.Scopes.back().Tag != Tag)
    openScope(Parent, Tag);

  NodeId Async = Tree.addNode(Parent.Scopes.back().Node, DpstNodeKind::Async,
                              ChildTaskId);
  // The spawn ends the parent's current maximal region; its continuation
  // lazily materializes a fresh step to the right of the async node.
  Parent.CurrentStep = InvalidNodeId;

  Child.TaskId = ChildTaskId;
  Child.Scopes.clear();
  Child.Scopes.push_back({Async, &Child});
  Child.CurrentStep = InvalidNodeId;
}

void DpstBuilder::sync(TaskFrame &Frame) {
  if (Frame.Scopes.size() > 1 && Frame.Scopes.back().Tag == nullptr) {
    closeScope(Frame);
    return;
  }
  // No spawn since the last sync point: the sync is a no-op structurally,
  // but it is still a task-management construct, so the region ends.
  Frame.CurrentStep = InvalidNodeId;
}

void DpstBuilder::waitGroup(TaskFrame &Frame, const void *GroupTag) {
  assert(GroupTag != nullptr && "waitGroup requires an explicit tag");
  if (Frame.Scopes.size() > 1 && Frame.Scopes.back().Tag == GroupTag) {
    closeScope(Frame);
    return;
  }
  assert((Frame.Scopes.size() <= 1 ||
          Frame.Scopes.back().Tag != nullptr) &&
         "group wait while an implicit sync scope is open (unsupported "
         "interleaving of spawn/sync and task groups)");
  Frame.CurrentStep = InvalidNodeId;
}

void DpstBuilder::endTask(TaskFrame &Frame) {
  // Implicit sync at task end: every scope the task left open is closed.
  while (Frame.Scopes.size() > 1)
    closeScope(Frame);
  Frame.CurrentStep = InvalidNodeId;
}

NodeId DpstBuilder::currentStep(TaskFrame &Frame) {
  assert(!Frame.Scopes.empty() && "access from an uninitialized frame");
  if (Frame.CurrentStep == InvalidNodeId)
    Frame.CurrentStep = Tree.addNode(Frame.Scopes.back().Node,
                                     DpstNodeKind::Step, Frame.TaskId);
  return Frame.CurrentStep;
}
