//===- dpst/ArrayDpst.h - DPST overlaid on a linear array ------*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's optimized DPST layout (Section 4, "Implementation
/// optimizations"): nodes live in a linear array and reference their parent
/// by index, which "avoids unnecessary pointer indirection, provides better
/// locality, and avoids the cost of frequent dynamic allocations". Storage
/// is a ChunkedVector so existing nodes never move while workers append.
///
/// The record is split hot/cold: LCA walks touch only a packed 12-byte
/// record (parent index, depth+kind, sibling position), so a cache line
/// holds five nodes of the walk's working set; construction-time and
/// reporting fields (child counter, task id) live in a parallel cold array.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_ARRAYDPST_H
#define AVC_DPST_ARRAYDPST_H

#include "dpst/Dpst.h"
#include "support/ChunkedVector.h"
#include "support/FlatGrowVector.h"

namespace avc {

/// Array-backed DPST: contiguous (chunked) node records indexed by id.
class ArrayDpst : public Dpst {
public:
  using Dpst::Dpst;

  NodeId addNode(NodeId Parent, DpstNodeKind Kind, uint32_t TaskId) override;
  DpstNodeKind kind(NodeId Id) const override;
  NodeId parent(NodeId Id) const override;
  uint32_t depth(NodeId Id) const override;
  uint32_t siblingIndex(NodeId Id) const override;
  uint32_t taskId(NodeId Id) const override;
  size_t numNodes() const override;
  bool logicallyParallelUncached(NodeId A, NodeId B) const override;
  bool treeOrderedBefore(NodeId A, NodeId B) const override;

private:
  /// Hot record: everything an LCA walk reads. Padded to 16 bytes so
  /// elements are aligned, never straddle cache lines, and index with a
  /// shift instead of a multiply.
  struct alignas(16) HotNode {
    NodeId Parent;
    uint32_t DepthKind; ///< (Depth << 2) | DpstNodeKind
    uint32_t SiblingIndex;
  };

  /// Construction/reporting fields, off the query path.
  struct ColdNode {
    uint32_t TaskId;
    uint32_t NumChildren;
  };

  /// Adapter giving ParallelQueryImpl unchecked access to the hot array.
  struct QueryAdapter;

  FlatGrowVector<HotNode> Hot;
  ChunkedVector<ColdNode> Cold;
  SpinLock AppendLock;
};

} // namespace avc

#endif // AVC_DPST_ARRAYDPST_H
