//===- dpst/LcaCache.h - Direct-mapped cache of LCA queries ----*- C++ -*-===//
//
// Part of TaskCheck (CGO'16 atomicity-checker reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper caches "frequently accessed LCA queries to reduce the overhead
/// of repeated traversals in the DPST" (Section 4). This is a fixed-size
/// direct-mapped cache from an ordered step-node pair to the boolean result
/// of the logically-parallel query. Entries are single 64-bit atomics, so
/// lookups and inserts are wait-free; a racing insert can only overwrite a
/// slot with another *correct* entry.
///
//===----------------------------------------------------------------------===//

#ifndef AVC_DPST_LCACACHE_H
#define AVC_DPST_LCACACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "dpst/DpstNodeKind.h"

namespace avc {

/// Direct-mapped, lossy, thread-safe cache of parallel-query results.
///
/// Keys are ordered pairs (A < B) of 31-bit node ids packed into one word
/// together with the result bit, so a hit is one atomic load plus a compare.
/// Collisions simply evict; correctness never depends on a hit.
class LcaCache {
public:
  /// Creates a cache with 2^\p LogSlots slots (default 2^16 = 512 KiB).
  explicit LcaCache(unsigned LogSlots = 16);

  /// Returns the cached result for the ordered pair (\p A, \p B) with
  /// A < B, or std::nullopt on a miss.
  std::optional<bool> lookup(NodeId A, NodeId B) const;

  /// Records the result for the ordered pair (\p A, \p B) with A < B.
  void insert(NodeId A, NodeId B, bool Parallel);

  /// Drops all entries. Not thread safe.
  void clear();

  size_t numSlots() const { return SlotCount; }

private:
  static uint64_t packKey(NodeId A, NodeId B, bool Parallel);
  size_t slotFor(NodeId A, NodeId B) const;

  std::unique_ptr<std::atomic<uint64_t>[]> Slots;
  size_t SlotCount;
  size_t SlotMask;
};

} // namespace avc

#endif // AVC_DPST_LCACACHE_H
